// The tenancy conformance suite: two tenants ("acme" and "bravo") drive
// every Engine backend — Embedded.Tenant sub-engines, a durable variant,
// authenticated Remote connections, and an authenticated 3-node Cluster —
// pinning zero cross-tenant visibility, quota enforcement on every
// dimension with wire-surviving sentinel identity, and the auth
// handshake's failure paths.
package unicache

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"unicache/internal/cache"
	"unicache/internal/rpc"
	"unicache/internal/tenant"
	"unicache/internal/types"
)

const (
	acmeToken  = "tok-acme"
	bravoToken = "tok-bravo"
)

// twoTenantRegistry builds a fresh acme+bravo registry, both under the
// same quota. Each cache instance gets its own registry — the same shape
// a per-node tenants.json gives a real cluster.
func twoTenantRegistry(t *testing.T, quota TenantQuota) *tenant.Registry {
	t.Helper()
	reg, err := tenant.NewRegistry(
		TenantSpec{Name: "acme", Token: acmeToken, Quota: quota},
		TenantSpec{Name: "bravo", Token: bravoToken, Quota: quota},
	)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// tenantPair is one backend's harness: an engine bound to each tenant,
// over the same underlying cache (or cluster of caches).
type tenantPair struct {
	acme  Engine
	bravo Engine
}

// forEachTenantBackend runs fn once per backend with a two-tenant cache
// underneath. quota applies to both tenants.
func forEachTenantBackend(t *testing.T, cfg Config, quota TenantQuota, fn func(t *testing.T, p tenantPair)) {
	t.Helper()
	if cfg.TimerPeriod == 0 {
		cfg.TimerPeriod = -1
	}
	if cfg.PrintWriter == nil {
		cfg.PrintWriter = &strings.Builder{}
	}
	if cfg.OnRuntimeError == nil {
		cfg.OnRuntimeError = func(int64, error) {}
	}
	t.Run("embedded", func(t *testing.T) {
		ecfg := cfg
		ecfg.Tenants = twoTenantRegistry(t, quota)
		e, err := NewEmbedded(ecfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = e.Close() })
		a, err := e.Tenant("acme")
		if err != nil {
			t.Fatal(err)
		}
		b, err := e.Tenant("bravo")
		if err != nil {
			t.Fatal(err)
		}
		fn(t, tenantPair{acme: a, bravo: b})
	})
	t.Run("durable", func(t *testing.T) {
		dcfg := cfg
		dcfg.DataDir = t.TempDir()
		dcfg.Tenants = twoTenantRegistry(t, quota)
		e, err := NewEmbedded(dcfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = e.Close() })
		a, err := e.Tenant("acme")
		if err != nil {
			t.Fatal(err)
		}
		b, err := e.Tenant("bravo")
		if err != nil {
			t.Fatal(err)
		}
		fn(t, tenantPair{acme: a, bravo: b})
	})
	t.Run("remote", func(t *testing.T) {
		rcfg := cfg
		rcfg.Tenants = twoTenantRegistry(t, quota)
		c, err := cache.New(rcfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		srv := rpc.NewServer(c)
		fn(t, tenantPair{
			acme:  dialTenantRemote(t, srv, acmeToken),
			bravo: dialTenantRemote(t, srv, bravoToken),
		})
	})
	t.Run("cluster", func(t *testing.T) {
		const nNodes = 3
		servers := make([]*rpc.Server, nNodes)
		names := make([]string, nNodes)
		for i := range servers {
			ncfg := cfg
			ncfg.Tenants = twoTenantRegistry(t, quota)
			c, err := cache.New(ncfg)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(c.Close)
			servers[i] = rpc.NewServer(c)
			names[i] = fmt.Sprintf("node%d", i)
		}
		dial := func(token string) Engine {
			clients := make([]*rpc.Client, nNodes)
			for i, srv := range servers {
				cEnd, sEnd := net.Pipe()
				go srv.ServeConn(sEnd)
				cl := rpc.NewClient(cEnd)
				if _, err := cl.Auth(token); err != nil {
					t.Fatal(err)
				}
				clients[i] = cl
			}
			e := clusterFromClients(names, clients)
			t.Cleanup(func() { _ = e.Close() })
			return e
		}
		fn(t, tenantPair{acme: dial(acmeToken), bravo: dial(bravoToken)})
	})
}

// dialTenantRemote opens an authenticated in-memory connection to srv.
func dialTenantRemote(t *testing.T, srv *rpc.Server, token string) *Remote {
	t.Helper()
	cEnd, sEnd := net.Pipe()
	go srv.ServeConn(sEnd)
	r := NewRemote(cEnd)
	t.Cleanup(func() { _ = r.Close() })
	if _, err := r.Auth(token); err != nil {
		t.Fatal(err)
	}
	return r
}

// TestTenantNamespaceIsolation: two tenants use the same logical table
// names over one cache and never see each other — not in rows, not in
// table listings, not in watch deliveries, not in stats.
func TestTenantNamespaceIsolation(t *testing.T) {
	forEachTenantBackend(t, Config{}, TenantQuota{}, func(t *testing.T, p tenantPair) {
		mustExecT(t, p.acme, `create table Flows (v integer)`)
		mustExecT(t, p.bravo, `create table Flows (v integer)`)
		mustExecT(t, p.bravo, `create table Secret (v integer)`)

		// Watches attach before the commits so each tenant's deliveries
		// are countable; each must observe only its own events, under the
		// logical topic name.
		var acmeSeen, bravoSeen, crossTopic int64
		var mu sync.Mutex
		wa, err := p.acme.Watch("Flows", func(ev *Event) {
			mu.Lock()
			acmeSeen++
			if ev.Topic != "Flows" {
				crossTopic++
			}
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = wa.Close() }()
		wb, err := p.bravo.Watch("Flows", func(ev *Event) {
			mu.Lock()
			bravoSeen++
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = wb.Close() }()

		for i := 0; i < 2; i++ {
			mustExecT(t, p.acme, fmt.Sprintf(`insert into Flows values (%d)`, i))
		}
		for i := 0; i < 3; i++ {
			mustExecT(t, p.bravo, fmt.Sprintf(`insert into Flows values (%d)`, 100+i))
		}

		// Rows are disjoint per namespace.
		if rows := selectRowsT(t, p.acme, `select v from Flows`); len(rows) != 2 {
			t.Fatalf("acme Flows has %d rows, want 2", len(rows))
		}
		if rows := selectRowsT(t, p.bravo, `select v from Flows`); len(rows) != 3 {
			t.Fatalf("bravo Flows has %d rows, want 3", len(rows))
		}

		// Table listings are disjoint too.
		at, err := p.acme.Tables()
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range at {
			if name == "Secret" || strings.Contains(name, "/") {
				t.Fatalf("acme table listing leaked %q (all: %v)", name, at)
			}
		}
		if _, err := p.acme.Exec(`select v from Secret`); err == nil {
			t.Fatal("acme read bravo's Secret table")
		}
		if _, err := p.acme.Watch("Secret", func(*Event) {}); err == nil {
			t.Fatal("acme watched bravo's Secret topic")
		}
		// The physical spelling of another namespace is not addressable
		// either: it just re-qualifies into the caller's own namespace.
		if _, err := p.acme.Exec(`select v from "bravo/Flows"`); err == nil {
			t.Fatal("acme addressed bravo's physical table name")
		}

		waitFor(t, 5*time.Second, "watch deliveries", func() bool {
			mu.Lock()
			defer mu.Unlock()
			return acmeSeen >= 2 && bravoSeen >= 3
		})
		time.Sleep(20 * time.Millisecond) // a leaked delivery would still be in flight
		mu.Lock()
		a, b, cross := acmeSeen, bravoSeen, crossTopic
		mu.Unlock()
		if a != 2 || b != 3 || cross != 0 {
			t.Fatalf("deliveries acme=%d bravo=%d crossTopic=%d, want 2/3/0", a, b, cross)
		}

		// Each engine's Stats rollup is its own tenant's.
		st, err := p.acme.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.Tenant == nil || st.Tenant.Name != "acme" {
			t.Fatalf("acme Stats.Tenant = %+v, want the acme rollup", st.Tenant)
		}
		if st.Tenant.Events != 2 {
			t.Fatalf("acme Tenant.Events = %d, want 2", st.Tenant.Events)
		}
		if st.Tenant.Tables != 1 {
			t.Fatalf("acme Tenant.Tables = %d, want 1", st.Tenant.Tables)
		}
		for _, w := range st.Watches {
			if strings.Contains(w.Topic, "/") {
				t.Fatalf("acme watch stats leaked physical topic %q", w.Topic)
			}
		}
		stb, err := p.bravo.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if stb.Tenant == nil || stb.Tenant.Name != "bravo" || stb.Tenant.Tables != 2 {
			t.Fatalf("bravo Stats.Tenant = %+v, want bravo with 2 tables", stb.Tenant)
		}
	})
}

// TestTenantAutomatonIsolation: automata registered by one tenant run in
// its namespace — they subscribe to and publish into the tenant's own
// topics, and the other tenant's identically-named topics never hear them.
func TestTenantAutomatonIsolation(t *testing.T) {
	forEachTenantBackend(t, Config{}, TenantQuota{}, func(t *testing.T, p tenantPair) {
		mustExecT(t, p.acme, `create table In (v integer)`)
		mustExecT(t, p.acme, `create table Out (v integer)`)
		mustExecT(t, p.bravo, `create table In (v integer)`)
		mustExecT(t, p.bravo, `create table Out (v integer)`)

		a, err := p.acme.Register(`subscribe e to In; behavior { publish('Out', e.v); send(e.v); }`)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = a.Close() }()

		mustExecT(t, p.acme, `insert into In values (7)`)
		mustExecT(t, p.bravo, `insert into In values (8)`)

		select {
		case vals := <-a.Events():
			if n, _ := vals[0].AsInt(); n != 7 {
				t.Fatalf("acme automaton saw %v, want its own event 7", vals)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("acme automaton never fired")
		}
		waitFor(t, 5*time.Second, "acme publish", func() bool {
			return len(selectRowsT(t, p.acme, `select v from Out`)) == 1
		})
		// The automaton must not have heard bravo's insert, nor published
		// into bravo's Out.
		select {
		case vals := <-a.Events():
			t.Fatalf("acme automaton fired for bravo's event: %v", vals)
		case <-time.After(50 * time.Millisecond):
		}
		if rows := selectRowsT(t, p.bravo, `select v from Out`); len(rows) != 0 {
			t.Fatalf("bravo Out has %d rows, want 0 (acme's publish leaked)", len(rows))
		}

		// Stats see exactly one automaton, on acme's side only.
		sta, _ := p.acme.Stats()
		stb, _ := p.bravo.Stats()
		if len(sta.Automata) != 1 || len(stb.Automata) != 0 {
			t.Fatalf("automata visible acme=%d bravo=%d, want 1/0", len(sta.Automata), len(stb.Automata))
		}
	})
}

// TestQuotaEventsPerSecAcrossBackends trips the events/sec token bucket on
// every backend: a single batch larger than the one-second burst is
// rejected outright, the sentinel survives the wire with errors.Is
// identity, and the other tenant is untouched.
func TestQuotaEventsPerSecAcrossBackends(t *testing.T) {
	quota := TenantQuota{MaxEventsPerSec: 4}
	forEachTenantBackend(t, Config{}, quota, func(t *testing.T, p tenantPair) {
		mustExecT(t, p.acme, `create table Flows (v integer)`)
		mustExecT(t, p.bravo, `create table Flows (v integer)`)
		rows := make([][]Value, 5)
		for i := range rows {
			rows[i] = []Value{types.Int(int64(i))}
		}
		err := p.acme.InsertBatch("Flows", rows)
		if !errors.Is(err, ErrQuotaExceeded) {
			t.Fatalf("oversized batch: got %v, want errors.Is ErrQuotaExceeded", err)
		}
		// The refusal is counted, and bravo's bucket is its own.
		st, _ := p.acme.Stats()
		if st.Tenant == nil || st.Tenant.Rejected == 0 {
			t.Fatalf("acme Rejected = %+v, want > 0", st.Tenant)
		}
		if err := p.bravo.InsertBatch("Flows", rows[:4]); err != nil {
			t.Fatalf("bravo within its own budget refused: %v", err)
		}
	})
}

// TestQuotaDimensions trips the table, automaton, WAL-byte and inbox-depth
// quotas on an embedded and a remote backend, checking sentinel identity
// and that the sibling tenant keeps its full allowance.
func TestQuotaDimensions(t *testing.T) {
	t.Run("tables", func(t *testing.T) {
		quota := TenantQuota{MaxTables: 2}
		eachEmbeddedRemote(t, Config{}, quota, false, func(t *testing.T, p tenantPair) {
			mustExecT(t, p.acme, `create table A (v integer)`)
			mustExecT(t, p.acme, `create table B (v integer)`)
			_, err := p.acme.Exec(`create table C (v integer)`)
			if !errors.Is(err, ErrQuotaExceeded) {
				t.Fatalf("third table: got %v, want ErrQuotaExceeded", err)
			}
			// bravo's count is independent.
			mustExecT(t, p.bravo, `create table A (v integer)`)
			// Dropping is not supported; the quota frees only on restart.
			// But the refusal is counted.
			st, _ := p.acme.Stats()
			if st.Tenant == nil || st.Tenant.Rejected == 0 {
				t.Fatal("table refusal not counted in Rejected")
			}
		})
	})
	t.Run("automata", func(t *testing.T) {
		quota := TenantQuota{MaxAutomata: 1}
		eachEmbeddedRemote(t, Config{}, quota, false, func(t *testing.T, p tenantPair) {
			mustExecT(t, p.acme, `create table In (v integer)`)
			mustExecT(t, p.bravo, `create table In (v integer)`)
			src := `subscribe e to In; behavior { send(e.v); }`
			a1, err := p.acme.Register(src)
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = a1.Close() }()
			if _, err := p.acme.Register(src); !errors.Is(err, ErrQuotaExceeded) {
				t.Fatalf("second automaton: got %v, want ErrQuotaExceeded", err)
			}
			b1, err := p.bravo.Register(src)
			if err != nil {
				t.Fatalf("bravo's first automaton refused: %v", err)
			}
			defer func() { _ = b1.Close() }()
		})
	})
	t.Run("wal-bytes", func(t *testing.T) {
		quota := TenantQuota{MaxWALBytes: 2048}
		eachEmbeddedRemote(t, Config{}, quota, true, func(t *testing.T, p tenantPair) {
			mustExecT(t, p.acme, `create table KV (v integer)`)
			mustExecT(t, p.bravo, `create table KV (v integer)`)
			var tripErr error
			for i := 0; i < 10000; i++ {
				if _, err := p.acme.Exec(fmt.Sprintf(`insert into KV values (%d)`, i)); err != nil {
					tripErr = err
					break
				}
			}
			if !errors.Is(tripErr, ErrQuotaExceeded) {
				t.Fatalf("WAL quota never tripped (last err %v)", tripErr)
			}
			// bravo's footprint is summed over its own domains only.
			if _, err := p.bravo.Exec(`insert into KV values (1)`); err != nil {
				t.Fatalf("bravo insert refused after acme's WAL trip: %v", err)
			}
			st, _ := p.acme.Stats()
			if st.Tenant == nil || st.Tenant.WALBytes == 0 {
				t.Fatalf("acme Tenant.WALBytes = %+v, want > 0", st.Tenant)
			}
		})
	})
	t.Run("inbox-clamp", func(t *testing.T) {
		// MaxInboxDepth turns an "unbounded" watch inbox into a bounded
		// one; with DropOldest and a stalled consumer, drops prove the
		// clamp bit. Embedded only: the remote variant would need the
		// stalled connection itself to answer the stats poll.
		quota := TenantQuota{MaxInboxDepth: 2}
		cfg := Config{TimerPeriod: -1, PrintWriter: &strings.Builder{}, OnRuntimeError: func(int64, error) {}}
		cfg.Tenants = twoTenantRegistry(t, quota)
		e, err := NewEmbedded(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = e.Close() }()
		acme, err := e.Tenant("acme")
		if err != nil {
			t.Fatal(err)
		}
		mustExecT(t, acme, `create table Flows (v integer)`)
		release := make(chan struct{})
		var once sync.Once
		w, err := acme.Watch("Flows", func(*Event) {
			<-release
		}, WatchQueue(-1), WatchPolicy(DropOldest))
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = w.Close() }()
		defer once.Do(func() { close(release) })
		for i := 0; i < 20; i++ {
			mustExecT(t, acme, fmt.Sprintf(`insert into Flows values (%d)`, i))
		}
		// Without the clamp the unbounded inbox would never shed; 20
		// events against a depth-2 DropOldest inbox must.
		waitFor(t, 5*time.Second, "clamped inbox drops", func() bool {
			st, err := w.Stats()
			return err == nil && st.Dropped > 0
		})
		once.Do(func() { close(release) })
	})
}

// eachEmbeddedRemote runs fn for an embedded two-tenant pair and a remote
// (authenticated RPC) one; durable adds a WAL under both.
func eachEmbeddedRemote(t *testing.T, cfg Config, quota TenantQuota, durable bool, fn func(t *testing.T, p tenantPair)) {
	t.Helper()
	if cfg.TimerPeriod == 0 {
		cfg.TimerPeriod = -1
	}
	if cfg.PrintWriter == nil {
		cfg.PrintWriter = &strings.Builder{}
	}
	if cfg.OnRuntimeError == nil {
		cfg.OnRuntimeError = func(int64, error) {}
	}
	t.Run("embedded", func(t *testing.T) {
		ecfg := cfg
		if durable {
			ecfg.DataDir = t.TempDir()
		}
		ecfg.Tenants = twoTenantRegistry(t, quota)
		e, err := NewEmbedded(ecfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = e.Close() })
		a, err := e.Tenant("acme")
		if err != nil {
			t.Fatal(err)
		}
		b, err := e.Tenant("bravo")
		if err != nil {
			t.Fatal(err)
		}
		fn(t, tenantPair{acme: a, bravo: b})
	})
	t.Run("remote", func(t *testing.T) {
		rcfg := cfg
		if durable {
			rcfg.DataDir = t.TempDir()
		}
		rcfg.Tenants = twoTenantRegistry(t, quota)
		c, err := cache.New(rcfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		srv := rpc.NewServer(c)
		fn(t, tenantPair{
			acme:  dialTenantRemote(t, srv, acmeToken),
			bravo: dialTenantRemote(t, srv, bravoToken),
		})
	})
}

// TestTenantAuthHandshake pins the RPC auth protocol's failure paths: no
// token, wrong token, re-auth, and a token offered to a single-tenant
// server.
func TestTenantAuthHandshake(t *testing.T) {
	cfg := Config{TimerPeriod: -1, PrintWriter: &strings.Builder{}, OnRuntimeError: func(int64, error) {}}
	mtCfg := cfg
	mtCfg.Tenants = twoTenantRegistry(t, TenantQuota{})
	mt, err := cache.New(mtCfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mt.Close)
	mtSrv := rpc.NewServer(mt)
	dial := func(srv *rpc.Server) *Remote {
		cEnd, sEnd := net.Pipe()
		go srv.ServeConn(sEnd)
		r := NewRemote(cEnd)
		t.Cleanup(func() { _ = r.Close() })
		return r
	}

	t.Run("unauthenticated connection is refused", func(t *testing.T) {
		r := dial(mtSrv)
		if _, err := r.Exec(`create table T (v integer)`); !errors.Is(err, ErrUnauthorized) {
			t.Fatalf("exec without auth: got %v, want ErrUnauthorized", err)
		}
		if _, err := r.Tables(); !errors.Is(err, ErrUnauthorized) {
			t.Fatalf("tables without auth: got %v, want ErrUnauthorized", err)
		}
		if _, err := r.Watch("T", func(*Event) {}); !errors.Is(err, ErrUnauthorized) {
			t.Fatalf("watch without auth: got %v, want ErrUnauthorized", err)
		}
		// Ping stays open pre-auth: it is the liveness probe.
		if err := r.Client().Ping(); err != nil {
			t.Fatalf("ping without auth refused: %v", err)
		}
	})
	t.Run("unknown token is refused", func(t *testing.T) {
		r := dial(mtSrv)
		if _, err := r.Auth("nope"); !errors.Is(err, ErrUnauthorized) {
			t.Fatalf("bad token: got %v, want ErrUnauthorized", err)
		}
		// Still unauthenticated afterwards.
		if _, err := r.Tables(); !errors.Is(err, ErrUnauthorized) {
			t.Fatalf("tables after failed auth: got %v, want ErrUnauthorized", err)
		}
	})
	t.Run("auth binds the tenant", func(t *testing.T) {
		r := dial(mtSrv)
		name, err := r.Auth(acmeToken)
		if err != nil || name != "acme" {
			t.Fatalf("Auth = %q, %v; want acme", name, err)
		}
		mustExecT(t, r, `create table T (v integer)`)
		if _, err := r.Auth(bravoToken); err == nil {
			t.Fatal("re-auth on a bound connection succeeded")
		}
	})
	t.Run("single-tenant server refuses tokens", func(t *testing.T) {
		st, err := cache.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(st.Close)
		r := dial(rpc.NewServer(st))
		if _, err := r.Auth(acmeToken); !errors.Is(err, ErrUnauthorized) {
			t.Fatalf("auth on single-tenant server: got %v, want ErrUnauthorized", err)
		}
		// And stays fully usable without one — the PR-9 behavior.
		mustExecT(t, r, `create table T (v integer)`)
	})
	t.Run("embedded engine without tenants refuses Tenant()", func(t *testing.T) {
		e, err := NewEmbedded(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = e.Close() })
		if _, err := e.Tenant("acme"); !errors.Is(err, ErrUnauthorized) {
			t.Fatalf("Tenant() without registry: got %v, want ErrUnauthorized", err)
		}
	})
	t.Run("unknown tenant name refused", func(t *testing.T) {
		ecfg := cfg
		ecfg.Tenants = twoTenantRegistry(t, TenantQuota{})
		e, err := NewEmbedded(ecfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = e.Close() })
		if _, err := e.Tenant("mallory"); !errors.Is(err, ErrUnauthorized) {
			t.Fatalf("unknown tenant: got %v, want ErrUnauthorized", err)
		}
	})
}

// TestTenantConcurrentIsolation hammers two tenants concurrently over one
// embedded cache — creates, commits, watches on colliding logical names —
// and checks the counts stayed disjoint. Run under -race this also proves
// the scoped views' admission paths are data-race free.
func TestTenantConcurrentIsolation(t *testing.T) {
	cfg := Config{TimerPeriod: -1, PrintWriter: &strings.Builder{}, OnRuntimeError: func(int64, error) {}}
	cfg.Tenants = twoTenantRegistry(t, TenantQuota{})
	e, err := NewEmbedded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = e.Close() }()

	const perTenant = 200
	var wg sync.WaitGroup
	counts := make([]int64, 2)
	var mu sync.Mutex
	for i, name := range []string{"acme", "bravo"} {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			eng, err := e.Tenant(name)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := eng.Exec(`create table Flows (v integer)`); err != nil {
				t.Error(err)
				return
			}
			w, err := eng.Watch("Flows", func(*Event) {
				mu.Lock()
				counts[i]++
				mu.Unlock()
			})
			if err != nil {
				t.Error(err)
				return
			}
			defer func() { _ = w.Close() }()
			for n := 0; n < perTenant; n++ {
				if err := eng.Insert("Flows", types.Int(int64(n))); err != nil {
					t.Error(err)
					return
				}
			}
			waitFor(t, 10*time.Second, name+" deliveries", func() bool {
				mu.Lock()
				defer mu.Unlock()
				return counts[i] >= perTenant
			})
		}(i, name)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if counts[0] != perTenant || counts[1] != perTenant {
		t.Fatalf("deliveries = %v, want exactly %d each (no cross-tenant leakage)", counts, perTenant)
	}
}

// --- small helpers (the conformance suite's mustExec/selectRows work on
// *cache.Cache; these are their Engine-facade twins) ---

func mustExecT(t *testing.T, eng Engine, src string) {
	t.Helper()
	if _, err := eng.Exec(src); err != nil {
		t.Fatalf("%s: %v", src, err)
	}
}

func selectRowsT(t *testing.T, eng Engine, q string) [][]Value {
	t.Helper()
	res, err := eng.Exec(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return res.Rows
}
