// Package unicache is a from-scratch Go reproduction of Sventek &
// Koliousis, "Unification of Publish/Subscribe Systems and Stream
// Databases: The Impact on Complex Event Processing" (Middleware 2012).
//
// The system is a centralised, topic-based publish/subscribe cache: every
// table is simultaneously a topic; ad hoc SQL queries (extended with the
// continuous operators `since τ`, `[range N seconds]` and `[rows N]`) read
// the cached streams and relations; and imperative GAPL automata —
// compiled to bytecode and animated one goroutine each — detect complex
// event patterns over them, publishing derived events back into the cache
// or send()ing notifications to their registering applications over RPC.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-versus-measured record of every evaluation
// figure. The packages live under internal/; cmd/ holds the daemon
// (cached), client (cachectl) and experiment runner (benchrunner);
// examples/ holds five runnable scenarios.
package unicache
