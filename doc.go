// Package unicache is a from-scratch Go reproduction of Sventek &
// Koliousis, "Unification of Publish/Subscribe Systems and Stream
// Databases: The Impact on Complex Event Processing" (Middleware 2012).
//
// The system is a centralised, topic-based publish/subscribe cache: every
// table is simultaneously a topic; ad hoc SQL queries (extended with the
// continuous operators `since τ`, `[range N seconds]` and `[rows N]`) read
// the cached streams and relations; and imperative GAPL automata —
// compiled to bytecode and animated one goroutine each — detect complex
// event patterns over them, publishing derived events back into the cache
// or send()ing notifications to their registering applications over RPC.
//
// # The batch-first, topic-sharded commit pipeline
//
// The write path is batch-first and sharded by topic. Every topic owns a
// commit domain — a mutex and a per-topic sequence counter — so commits
// into independent topics never serialise against each other.
// cache.CommitBatch coerces a run of rows, takes the topic's domain mutex
// once, assigns the batch a contiguous run of per-topic sequence numbers,
// bulk-inserts it into the table (table.InsertBatch — one ring-buffer
// head advance for streams, one critical section for persistent upserts)
// and hands the whole run to each subscriber with a single
// pubsub.DeliverBatch call (one inbox lock, one condvar signal per batch
// instead of per event). CommitInsert is a one-row batch. Because
// sequence assignment, storage and publication stay atomic under the
// domain mutex, the paper's §5 invariant is preserved as the paper states
// it — per stream: every subscriber of a topic observes the identical
// time-of-insertion order, gap-free and contiguous from 1 in that topic's
// own sequence space; all tuples of a batch share one timestamp (the
// batch commits at one instant). There is no global sequence space and no
// ordering across topics. Batching feeds in from every layer: multi-row
// SQL (`insert into T values (1), (2), (3)`) executes as one CommitBatch,
// the RPC protocol carries an InsertBatch opcode, and rpc.Batcher
// auto-flushes client-side rows on size (MaxRows, default 256) or time
// (MaxDelay, default 10ms) thresholds — rpc.MultiBatcher routes rows to
// per-table batchers; `cachectl load` bulk-loads CSV from stdin through
// it. BenchmarkBatchInsert measures the batching win (≳2.3x tuples/sec at
// batch 256 versus tuple-at-a-time).
//
// # The asynchronous, backpressure-aware delivery pipeline
//
// Delivery under the topic lock is enqueue-only: publication moves the run
// into each subscriber's inbox in O(1) per subscriber, and consumer code —
// automaton behaviours, Watch callbacks, RPC send() pushes — runs on
// dedicated dispatcher goroutines in commit order, off the commit path. An
// inbox may be bounded with a per-subscription overflow policy
// (pubsub.Block backpressure, pubsub.DropOldest shedding with counters,
// pubsub.Fail-and-detach); cache.WatchWith picks per tap, cache.Config
// per automaton fleet, and rpc.ClientConfig for the client's Events()
// buffer. The RPC server coalesces backlogged send() pushes into batched
// frames per connection, preserving per-automaton order.
// BenchmarkShardedCommitMultiTopic measures the sharding win and
// BenchmarkAsyncDeliverySlowTap the dispatch win: a 2ms-per-event tap
// under DropOldest costs its topic almost nothing, where a synchronous
// subscriber once collapsed it by orders of magnitude.
//
// # The location-transparent Engine façade
//
// This package is itself the public API: Engine is the canonical surface
// of the unified system — Exec/Insert/InsertBatch/CreateTable (the
// stream-database face), Watch (the pub/sub face), Register (the CEP
// face), Stats and Close — implemented three times. Embedded wraps an
// in-process cache; Remote wraps an RPC connection to a cached server;
// Cluster hash-partitions the topic space across several cached servers
// with a consistent-hash ring (each topic wholly owned by one node, so
// the §5 per-stream ordering invariant holds per topic exactly as on one
// node) and routes every call to the owner — inserts through per-node
// batchers, watches to the owner's tap, cross-node automata through a
// bridge that replays the source topic onto the automaton's home node in
// commit order. The same program text runs on any backend by swapping
// one constructor (NewEmbedded vs DialRemote vs Cluster — or Dial, which
// picks Remote or Cluster from the address spec), and the conformance
// suite in conformance_test.go pins that the behavioral contract — watch
// ordering, per-automaton inbox options, stats counters, sentinel errors
// — is identical. Watch and Automaton are first-class handles (Stats,
// Events, Close); the sentinel errors (ErrNoSuchTable, ErrTableExists,
// ErrBadSchema, ErrClosed, ErrNoSuchAutomaton) keep their errors.Is
// identity across the wire, carried as numeric codes next to the message.
//
// # Concurrency contract
//
// Engine implementations are safe for concurrent use by multiple
// goroutines. A Watch callback runs on one goroutine per tap (Embedded:
// the tap's dispatcher; Remote: the connection's read loop) and receives
// the topic's events in commit order; it must not call the handle's own
// Close (that waits for the in-flight callback) — close from another
// goroutine instead. A Remote watch callback that blocks stalls RPC
// replies on its connection, so long-running work belongs on the
// application's own goroutine. An Automaton handle's Events channel is
// fed by the engine and sheds its oldest buffered notification when the
// application stops draining — a full channel never stalls the automaton
// or the connection. Handle Close and engine Close are idempotent;
// engine Close detaches every handle it issued, and after it returns
// every Engine method reports ErrClosed. For Remote, connection death —
// graceful or not — tears down the connection's server-side watches and
// automata; the server guarantees no dispatcher goroutine or topic
// subscriber outlives the connection that created it. A Cluster engine
// inherits that per-connection guarantee node by node: when the client
// dies, every node unwinds its own share (watches, automata, bridge
// taps) independently. Cluster ordering is per topic — one topic's
// events arrive in its owner's commit order everywhere, including
// through a bridge, but no order holds across topics (exactly the
// single-node contract; the paper has no cross-topic order either).
//
// See docs/ARCHITECTURE.md for the layer-by-layer tour and the §-to-code
// map, docs/BENCHMARKS.md for how to run and read the benchmarks, and
// examples/README.md for the runnable scenarios (quickstart, movingavg
// and stocks each take -remote addr to run against a live cached). The
// implementation packages live under internal/; cmd/ holds the daemon
// (cached), client (cachectl) and experiment runner (benchrunner).
package unicache
