module unicache

go 1.24
