package experiments

import (
	"testing"
	"time"

	"unicache/internal/gapl"
	"unicache/internal/types"
)

func TestPaperProgramsCompile(t *testing.T) {
	sources := map[string]string{
		"fig2":      ProgContinuousQuery("Topic", "attribute", 10),
		"fig4":      ProgBandwidth,
		"fig8":      DelayProbeProgram("A", 1000),
		"fig11-1":   StressProgram(false),
		"fig11-2":   StressProgram(true),
		"fig14":     ProgFrequentImperative(100),
		"frequent":  ProgFrequentBuiltin(100),
		"q1":        ProgQ1,
		"q2":        ProgQ2,
		"q3-detect": ProgQ3Detector(5),
		"q3-report": ProgQ3Reporter,
	}
	for name, src := range sources {
		if _, err := gapl.Compile(src); err != nil {
			t.Errorf("%s does not compile: %v", name, err)
		}
	}
	for _, bc := range BuiltinCostCases(1000) {
		if _, err := gapl.Compile(BuiltinCostProgram(bc)); err != nil {
			t.Errorf("builtin cost template %s does not compile: %v", bc.Name, err)
		}
	}
}

func TestFig7Small(t *testing.T) {
	rows, err := Fig7(Fig7Config{Iterations: 2000, Rounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9 built-ins", len(rows))
	}
	byName := map[string]Fig7Row{}
	for _, r := range rows {
		if r.Samples != 3 {
			t.Errorf("%s: %d samples, want 3", r.Builtin, r.Samples)
		}
		if r.Cost.Min < 0 || r.Cost.Max < r.Cost.Min {
			t.Errorf("%s: bad summary %+v", r.Builtin, r.Cost)
		}
		byName[r.Builtin] = r
	}
	// Paper shape: every built-in costs at least as much as the bare loop.
	// The paper's further observation that send (an RPC) costs more than
	// publish held while send wrote its message to the socket inside the
	// behaviour clause; since the push path became asynchronous (PR 3) a
	// send costs one wire encode plus a bounded-queue push, so at the call
	// site the two are within noise of each other — the wire cost is paid
	// by the connection's push dispatcher, off the automaton's goroutine.
	nothing := byName["nothing"].Cost.P50
	for _, name := range []string{"seqElement", "insert", "lookup", "Identifier", "publish", "send"} {
		if byName[name].Cost.P50 < nothing*0.5 {
			t.Errorf("%s median %.3fus below bare loop %.3fus", name, byName[name].Cost.P50, nothing)
		}
	}
}

func TestDelayExperimentSmall(t *testing.T) {
	res, err := DelayExperiment(DelayConfig{
		Automata: 2, Interarrival: 0, Events: 300, Batch: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Batches < 2*(300/50) {
		t.Errorf("batches = %d", res.Batches)
	}
	if res.MeanMs < 0 || res.MaxMs < res.MinMs {
		t.Errorf("delay stats: %+v", res)
	}
	// Delays on a loopback in-process path are well under a second.
	if res.MeanMs > 1000 {
		t.Errorf("implausible mean delay %v ms", res.MeanMs)
	}
}

func TestStressExperimentSmall(t *testing.T) {
	oneWay, err := StressExperiment(StressConfig{
		IntAttrs: 2, TwoWay: false, Duration: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if oneWay.Inserts == 0 || oneWay.InsertsPerSec <= 0 {
		t.Fatalf("one-way made no progress: %+v", oneWay)
	}
	twoWay, err := StressExperiment(StressConfig{
		IntAttrs: 2, TwoWay: true, Duration: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if twoWay.Echoed == 0 {
		t.Errorf("two-way echoed nothing: %+v", twoWay)
	}
	// Echo path must return one event per insert (allowing stragglers cut
	// off at close).
	if twoWay.Echoed > twoWay.Inserts {
		t.Errorf("echoed %d > inserts %d", twoWay.Echoed, twoWay.Inserts)
	}
}

func TestStressStringPayload(t *testing.T) {
	res, err := StressExperiment(StressConfig{
		StrLen: 2000, Duration: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserts == 0 {
		t.Error("string stress made no progress")
	}
}

func TestFig15Shape(t *testing.T) {
	rows := Fig15(7, 20_000, 500)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	if rows[0].Rank != 1 {
		t.Error("ranks should start at 1")
	}
	total := 0
	for i, r := range rows {
		total += r.Requests
		if i > 0 && r.Requests > rows[i-1].Requests {
			t.Fatal("rows not sorted by frequency")
		}
	}
	if total != 20_000 {
		t.Errorf("total requests = %d", total)
	}
	// Zipf: the head dominates.
	if rows[0].Requests < 10*rows[len(rows)-1].Requests {
		t.Errorf("distribution not skewed: head %d tail %d",
			rows[0].Requests, rows[len(rows)-1].Requests)
	}
}

func TestFig16Small(t *testing.T) {
	rows, err := Fig16(Fig16Config{Seed: 3, Requests: 4000, Hosts: 800, Ks: []int{10, 100}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.ImperativeUs <= 0 || r.BuiltinUs <= 0 {
			t.Errorf("k=%d: non-positive means %+v", r.K, r)
		}
		if r.ImperativeCV < 0 || r.BuiltinCV < 0 {
			t.Errorf("k=%d: negative CV %+v", r.K, r)
		}
	}
}

func TestFig18Small(t *testing.T) {
	// Symbol count matches the paper-scale configuration: the NFA's
	// per-event instance scan is proportional to live instances across
	// partitions, so too few symbols under-represents the baseline's work.
	rows, err := Fig18(Fig18Config{Seed: 11, Events: 16000, Symbols: 40, MinRun: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.CacheSec <= 0 || r.CayugaSec <= 0 {
			t.Errorf("%s: non-positive timings %+v", r.Query, r)
		}
	}
	// Q1: both engines pass every event through.
	if rows[0].CacheMatches != 16000 || rows[0].CayugaMatches != 16000 {
		t.Errorf("Q1 matches = %d / %d, want 16000 each",
			rows[0].CacheMatches, rows[0].CayugaMatches)
	}
	// Q2/Q3: both detect patterns in the planted trace; the Cache's
	// algorithmic detector reports maximal matches so it may find fewer
	// than the NFA's overlapping semantics, but never zero.
	for _, r := range rows[1:] {
		if r.CacheMatches == 0 {
			t.Errorf("%s: cache found no matches", r.Query)
		}
		if r.CayugaMatches == 0 {
			t.Errorf("%s: cayuga found no matches", r.Query)
		}
	}
	// The headline result: the Cache wins every query.
	for _, r := range rows {
		if r.Speedup <= 1 {
			t.Errorf("%s: cache not faster (speedup %.2f)", r.Query, r.Speedup)
		}
	}
}

func TestReplayRigPublishRouting(t *testing.T) {
	rig := newReplayRig(stockSchemas())
	if _, err := rig.register(ProgQ3Detector(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := rig.register(ProgQ3Reporter); err != nil {
		t.Fatal(err)
	}
	feed := func(name string, price float64) {
		t.Helper()
		vals := []types.Value{types.Str(name), types.Real(price), types.Int(100)}
		if err := rig.feed("Stocks", vals); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range []float64{1, 2, 3, 4, 1} {
		feed("ACME", p)
	}
	if len(rig.streams["Runs"]) != 1 {
		t.Fatalf("runs published = %d", len(rig.streams["Runs"]))
	}
	if len(rig.sent) != 1 {
		t.Fatalf("reporter sent = %d", len(rig.sent))
	}
}
