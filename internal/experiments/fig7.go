package experiments

import (
	"fmt"
	"net"
	"time"

	"unicache/internal/cache"
	"unicache/internal/rpc"
	"unicache/internal/stats"
	"unicache/internal/types"
)

// Fig7Config parameterises the built-in cost experiment (§6.1).
type Fig7Config struct {
	// Iterations per Timer tick (the paper's limit: 100000; publish and
	// send scale down as in the paper).
	Iterations int
	// Rounds is the number of Timer ticks measured (the paper ran each
	// automaton for 2 minutes, i.e. ~120 rounds).
	Rounds int
}

// Fig7Row is the five-number summary of one built-in's per-invocation cost
// in microseconds.
type Fig7Row struct {
	Builtin string
	Limit   int
	Samples int
	Cost    stats.FiveNum // µs per invocation
}

// Fig7 measures the execution cost of built-in functions using the Fig. 6
// template automaton, exactly as §6.1 does: the automaton times a tight
// loop of limit invocations per Timer tick and prints the per-invocation
// cost; the harness collects the printed samples.
func Fig7(cfg Fig7Config) ([]Fig7Row, error) {
	if cfg.Iterations <= 0 {
		cfg.Iterations = 100_000
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 20
	}
	var rows []Fig7Row
	for _, bc := range BuiltinCostCases(cfg.Iterations) {
		row, err := fig7One(bc, cfg.Rounds)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// fig7One measures one built-in. The automaton is registered through the
// real RPC system over TCP loopback, so send() pays its full cost — an RPC
// to the external registering application — while publish() pays only the
// in-cache commit path, as in the paper.
func fig7One(bc BuiltinCostCase, rounds int) (Fig7Row, error) {
	parser := newPrintParser()
	c, err := cache.New(cache.Config{
		TimerPeriod: -1, // ticks driven explicitly for determinism
		PrintWriter: parser,
	})
	if err != nil {
		return Fig7Row{}, err
	}
	defer c.Close()
	// publish() needs a target stream.
	if _, err := c.Exec(`create table Sink (v integer)`); err != nil {
		return Fig7Row{}, err
	}

	srv := rpc.NewServer(c)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return Fig7Row{}, err
	}
	go func() { _ = srv.Serve(ln) }()
	defer func() { _ = srv.Close() }()
	cl, err := rpc.Dial(ln.Addr().String())
	if err != nil {
		return Fig7Row{}, err
	}
	defer func() { _ = cl.Close() }()
	// The registering application drains send() notifications.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range cl.Events() {
		}
	}()

	if _, err := cl.Register(BuiltinCostProgram(bc)); err != nil {
		return Fig7Row{}, fmt.Errorf("fig7 %s: %w", bc.Name, err)
	}
	for i := 0; i < rounds; i++ {
		if err := c.TickTimer(); err != nil {
			return Fig7Row{}, err
		}
		// Let the tick drain before the next so rounds do not overlap.
		if !c.Registry().WaitIdle(time.Minute) {
			return Fig7Row{}, fmt.Errorf("fig7 %s: automaton did not quiesce", bc.Name)
		}
	}
	_ = cl.Close()
	<-drained
	samples := parser.values(bc.Name)
	if len(samples) == 0 {
		return Fig7Row{}, fmt.Errorf("fig7 %s: no samples collected", bc.Name)
	}
	return Fig7Row{
		Builtin: bc.Name,
		Limit:   bc.Limit,
		Samples: len(samples),
		Cost:    stats.Summary(samples),
	}, nil
}

// timerSchemaCols is shared by experiment rigs that need the Timer topic.
func timerSchema() *types.Schema {
	return mustSchema(cache.TimerTopic, types.Column{Name: "ts", Type: types.ColTstamp})
}
