package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"unicache/internal/gapl"
	"unicache/internal/types"
	"unicache/internal/vm"
)

// replayRig executes automata over an in-memory event replay, the way the
// paper timed the Cache against Cayuga ("we derive our timings by first
// appending all events in a window, and then iterate over the window and
// execute the queries", §6.5). It preserves the cache's delivery
// semantics — published tuples re-enter processing in insertion order —
// without the commit-path locking that a live cache pays.
type replayRig struct {
	schemas map[string]*types.Schema
	subs    map[string][]*vm.VM
	streams map[string][][]types.Value
	sent    [][]types.Value
	queue   []rigEvent
	clock   types.Timestamp
	seq     uint64
}

type rigEvent struct {
	topic string
	vals  []types.Value
}

var _ vm.Host = (*replayRig)(nil)

func newReplayRig(schemas map[string]*types.Schema) *replayRig {
	return &replayRig{
		schemas: schemas,
		subs:    make(map[string][]*vm.VM),
		streams: make(map[string][][]types.Value),
		clock:   1,
	}
}

// register compiles and binds an automaton source, wiring its
// subscriptions into the rig.
func (r *replayRig) register(source string) (*vm.VM, error) {
	prog, err := gapl.Compile(source)
	if err != nil {
		return nil, err
	}
	if err := prog.Bind(r.schemas); err != nil {
		return nil, err
	}
	m, err := vm.New(prog, r)
	if err != nil {
		return nil, err
	}
	if err := m.RunInit(); err != nil {
		return nil, err
	}
	for _, s := range prog.Subscriptions() {
		r.subs[s.Topic] = append(r.subs[s.Topic], m)
	}
	return m, nil
}

// feed delivers one event and drains any events published during its
// processing, in order.
func (r *replayRig) feed(topic string, vals []types.Value) error {
	r.queue = append(r.queue, rigEvent{topic: topic, vals: vals})
	for len(r.queue) > 0 {
		ev := r.queue[0]
		r.queue = r.queue[1:]
		r.clock++
		r.seq++
		schema := r.schemas[ev.topic]
		if schema == nil {
			return fmt.Errorf("replay: no schema for topic %q", ev.topic)
		}
		subs := r.subs[ev.topic]
		if len(subs) == 0 {
			continue
		}
		tuple := &types.Tuple{Seq: r.seq, TS: r.clock, Vals: ev.vals}
		event := &types.Event{Topic: ev.topic, Schema: schema, Tuple: tuple}
		for _, m := range subs {
			if err := m.Deliver(event); err != nil {
				return err
			}
		}
	}
	return nil
}

// Now implements vm.Host with a logical clock (the stock queries are not
// time-dependent; a logical clock avoids syscall noise in timings).
func (r *replayRig) Now() types.Timestamp { return r.clock }

// Publish implements vm.Host: materialise and queue for redelivery.
func (r *replayRig) Publish(topic string, vals []types.Value) error {
	if _, ok := r.schemas[topic]; !ok {
		return fmt.Errorf("replay: no such topic %q", topic)
	}
	r.streams[topic] = append(r.streams[topic], vals)
	r.queue = append(r.queue, rigEvent{topic: topic, vals: vals})
	return nil
}

// Send implements vm.Host.
func (r *replayRig) Send(vals []types.Value) error {
	r.sent = append(r.sent, vals)
	return nil
}

// Print implements vm.Host (discarded).
func (r *replayRig) Print(string) {}

// Associations are not used by the replay experiments.
func (r *replayRig) AssocLookup(tbl, _ string) (types.Value, bool, error) {
	return types.Nil, false, fmt.Errorf("replay: no association %q", tbl)
}

// AssocInsert implements vm.Host.
func (r *replayRig) AssocInsert(tbl, _ string, _ types.Value) error {
	return fmt.Errorf("replay: no association %q", tbl)
}

// AssocHas implements vm.Host.
func (r *replayRig) AssocHas(tbl, _ string) (bool, error) {
	return false, fmt.Errorf("replay: no association %q", tbl)
}

// AssocRemove implements vm.Host.
func (r *replayRig) AssocRemove(tbl, _ string) (bool, error) {
	return false, fmt.Errorf("replay: no association %q", tbl)
}

// AssocSize implements vm.Host.
func (r *replayRig) AssocSize(tbl string) (int, error) {
	return 0, fmt.Errorf("replay: no association %q", tbl)
}

// mustSchema builds a stream schema or panics (experiment-internal tables).
func mustSchema(name string, cols ...types.Column) *types.Schema {
	s, err := types.NewSchema(name, false, -1, cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// printParser collects "label: value" lines emitted by print() and makes
// the values available per label. It implements io.Writer for use as a
// cache PrintWriter.
type printParser struct {
	mu   sync.Mutex
	vals map[string][]float64
	buf  strings.Builder
}

func newPrintParser() *printParser {
	return &printParser{vals: make(map[string][]float64)}
}

func (p *printParser) Write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.buf.Write(b)
	for {
		s := p.buf.String()
		i := strings.IndexByte(s, '\n')
		if i < 0 {
			return len(b), nil
		}
		line := s[:i]
		p.buf.Reset()
		p.buf.WriteString(s[i+1:])
		if j := strings.Index(line, ": "); j > 0 {
			if f, err := strconv.ParseFloat(strings.TrimSpace(line[j+2:]), 64); err == nil {
				label := line[:j]
				p.vals[label] = append(p.vals[label], f)
			}
		}
	}
}

func (p *printParser) values(label string) []float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]float64(nil), p.vals[label]...)
}
