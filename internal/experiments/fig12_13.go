package experiments

import (
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"time"

	"unicache/internal/cache"
	"unicache/internal/rpc"
	"unicache/internal/types"
)

// StressConfig parameterises the performance-at-stress experiments (§6.3,
// Figs. 12 and 13): a single application inserting into a Test table as
// rapidly as possible over the RPC system.
type StressConfig struct {
	// IntAttrs > 0 gives Test that many integer columns (Fig. 12).
	IntAttrs int
	// StrLen > 0 gives Test one varchar column carrying strings of this
	// length (Fig. 13); exclusive with IntAttrs.
	StrLen int
	// TwoWay echoes every insert back to the application via send().
	TwoWay bool
	// Duration of the insert loop.
	Duration time.Duration
}

// StressResult reports the sustained insert rate.
type StressResult struct {
	Config        StressConfig
	Inserts       int
	Echoed        int
	InsertsPerSec float64
}

// StressExperiment runs the Fig. 11 automaton against a real TCP loopback
// connection: the client inserts as fast as the request/response protocol
// allows; in 2-way mode the automaton send()s each event back.
func StressExperiment(cfg StressConfig) (StressResult, error) {
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	if cfg.IntAttrs <= 0 && cfg.StrLen <= 0 {
		cfg.IntAttrs = 1
	}

	c, err := cache.New(cache.Config{
		TimerPeriod: time.Second,
		// Client tear-down races in-flight echoes; those send failures are
		// expected.
		OnRuntimeError: func(int64, error) {},
	})
	if err != nil {
		return StressResult{}, err
	}
	defer c.Close()

	var create strings.Builder
	create.WriteString("create table Test (")
	if cfg.IntAttrs > 0 {
		for i := 0; i < cfg.IntAttrs; i++ {
			if i > 0 {
				create.WriteString(", ")
			}
			fmt.Fprintf(&create, "a%d integer", i)
		}
	} else {
		create.WriteString("s varchar")
	}
	create.WriteString(")")
	if _, err := c.Exec(create.String()); err != nil {
		return StressResult{}, err
	}

	srv := rpc.NewServer(c)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return StressResult{}, err
	}
	go func() { _ = srv.Serve(ln) }()
	defer func() { _ = srv.Close() }()

	cl, err := rpc.Dial(ln.Addr().String())
	if err != nil {
		return StressResult{}, err
	}
	defer func() { _ = cl.Close() }()

	if _, err := cl.Register(StressProgram(cfg.TwoWay)); err != nil {
		return StressResult{}, err
	}

	// Drain echoes concurrently, counting only Test echoes (the automaton
	// also reports 'stress' counts on Timer ticks).
	var echoed atomic.Int64
	drainDone := make(chan struct{})
	go func() {
		defer close(drainDone)
		for ev := range cl.Events() {
			if len(ev.Vals) > 0 {
				if s, ok := ev.Vals[0].AsStr(); ok && s == "stress" {
					continue
				}
			}
			echoed.Add(1)
		}
	}()

	vals := make([]types.Value, 0, cfg.IntAttrs+1)
	if cfg.IntAttrs > 0 {
		for i := 0; i < cfg.IntAttrs; i++ {
			vals = append(vals, types.Int(int64(i)))
		}
	} else {
		vals = append(vals, types.Str(strings.Repeat("x", cfg.StrLen)))
	}

	// Warm up the connection, the schema coercion path and the runtime
	// before the timed window (the paper's runs lasted minutes; ours are
	// seconds, so cold-start would otherwise skew the first sweep point).
	warmup := time.Now().Add(cfg.Duration / 4)
	for time.Now().Before(warmup) {
		if err := cl.Insert("Test", vals...); err != nil {
			return StressResult{}, err
		}
	}
	// Let warm-up echoes drain, then count only the timed window's.
	time.Sleep(50 * time.Millisecond)
	echoed.Store(0)

	deadline := time.Now().Add(cfg.Duration)
	start := time.Now()
	inserts := 0
	for time.Now().Before(deadline) {
		if err := cl.Insert("Test", vals...); err != nil {
			return StressResult{}, err
		}
		inserts++
	}
	elapsed := time.Since(start)
	if cfg.TwoWay {
		// Give the echo path a moment to drain before counting.
		waitUntil := time.Now().Add(2 * time.Second)
		for int(echoed.Load()) < inserts && time.Now().Before(waitUntil) {
			time.Sleep(time.Millisecond)
		}
	}
	_ = cl.Close()
	<-drainDone

	return StressResult{
		Config:        cfg,
		Inserts:       inserts,
		Echoed:        int(echoed.Load()),
		InsertsPerSec: float64(inserts) / elapsed.Seconds(),
	}, nil
}

// Fig12 sweeps the number of integer attributes (the paper: 1,2,4,8,16),
// 1-way and 2-way.
func Fig12(attrs []int, dur time.Duration) ([]StressResult, error) {
	if len(attrs) == 0 {
		attrs = []int{1, 2, 4, 8, 16}
	}
	var out []StressResult
	for _, twoWay := range []bool{false, true} {
		for _, n := range attrs {
			r, err := StressExperiment(StressConfig{IntAttrs: n, TwoWay: twoWay, Duration: dur})
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// Fig13 sweeps the varchar payload size (the paper: 10^1..10^4 bytes),
// 1-way and 2-way; the 1024-byte RPC fragmentation shows as a linear drop
// past 1 KiB.
func Fig13(sizes []int, dur time.Duration) ([]StressResult, error) {
	if len(sizes) == 0 {
		sizes = []int{10, 100, 1000, 10000}
	}
	var out []StressResult
	for _, twoWay := range []bool{false, true} {
		for _, n := range sizes {
			r, err := StressExperiment(StressConfig{StrLen: n, TwoWay: twoWay, Duration: dur})
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
	}
	return out, nil
}
