package experiments

import (
	"unicache/internal/types"
	"unicache/internal/workload"
)

// StockRig is the exported form of the Fig. 18 Cache-side replay harness,
// used by the repository's benchmark targets: the given GAPL sources run
// over the stock topic set (Stocks, T, Runs) with in-memory delivery.
type StockRig struct {
	rig *replayRig
}

// NewStockRigE builds a rig with the stock schemas and registers each
// source.
func NewStockRigE(sources []string) (*StockRig, error) {
	rig := newReplayRig(stockSchemas())
	for _, src := range sources {
		if _, err := rig.register(src); err != nil {
			return nil, err
		}
	}
	return &StockRig{rig: rig}, nil
}

// NewStockRig is NewStockRigE with a fataler (testing.B satisfies it).
func NewStockRig(tb interface{ Fatal(args ...any) }, sources []string) *StockRig {
	r, err := NewStockRigE(sources)
	if err != nil {
		tb.Fatal(err)
	}
	return r
}

// Feed delivers one stock tick to the registered automata.
func (s *StockRig) Feed(ev workload.StockEvent) error {
	return s.rig.feed("Stocks", []types.Value{
		types.Str(ev.Name), types.Real(ev.Price), types.Int(ev.Volume),
	})
}

// Sent returns how many send() notifications the automata produced.
func (s *StockRig) Sent() int { return len(s.rig.sent) }

// StreamLen returns the number of tuples published into a stream.
func (s *StockRig) StreamLen(topic string) int { return len(s.rig.streams[topic]) }
