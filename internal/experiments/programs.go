// Package experiments contains one driver per measured table/figure of the
// paper's evaluation (§6), plus the GAPL listings from the paper as working
// programs. The drivers are shared by cmd/benchrunner and the repository's
// bench_test.go, and EXPERIMENTS.md records their output against the
// paper's reported shapes.
package experiments

import (
	"fmt"
	"strings"
)

// ProgContinuousQuery is Fig. 2: the Tapestry continuous-query execution
// model expressed as an automaton — batch events in a time window and ship
// the window on every Timer tick.
func ProgContinuousQuery(topic, attribute string, seconds int) string {
	return fmt.Sprintf(`
# Fig. 2: the continuous query execution model as an automaton.
subscribe event to %[1]s;
subscribe x to Timer;
window w;
initialization {
	w = Window(sequence, SECS, %[3]d);
}
behavior {
	if (currentTopic() == '%[1]s')
		append(w, Sequence(event.%[2]s));
	else
		if (currentTopic() == 'Timer') {
			send(w);
			w = Window(sequence, SECS, %[3]d);
		}
}
`, topic, attribute, seconds)
}

// ProgBandwidth is Fig. 4: the hybrid bandwidth-usage automaton over the
// Fig. 3 tables (attribute names follow the Fig. 3 schema).
const ProgBandwidth = `
# Fig. 4: bandwidth usage consumption.
subscribe f to Flows;
associate a with Allowances;
associate b with BWUsage;
int n, limit;
identifier ip;
sequence s;
behavior {
	ip = Identifier(f.dstip);
	if (hasEntry(a, ip)) {
		limit = seqElement(lookup(a, ip), 1);
		if (hasEntry(b, ip))
			n = seqElement(lookup(b, ip), 1);
		else
			n = 0;
		n += f.nbytes;
		s = Sequence(f.dstip, n);
		if (n > limit)
			send(s, limit, 'limit exceeded');
		insert(b, ip, s);
	}
}
`

// BuiltinCostCase parameterises the Fig. 6 template for one built-in.
type BuiltinCostCase struct {
	Name  string
	Limit int    // loop iterations per Timer tick
	Decl  string // extra declarations
	Init  string // extra initialization statements
	Call  string // the invocation placed in the loop body
}

// BuiltinCostCases are the nine built-ins whose costs Fig. 7 reports, with
// the paper's iteration limits (100000 default, 50000 for publish, 1000
// for send).
func BuiltinCostCases(limit int) []BuiltinCostCase {
	if limit <= 0 {
		limit = 100_000
	}
	pub := limit / 2
	if pub < 1 {
		pub = 1
	}
	snd := limit / 100
	if snd < 1 {
		snd = 1
	}
	return []BuiltinCostCase{
		{Name: "nothing", Limit: limit},
		{
			Name: "seqElement", Limit: limit,
			Decl: "sequence s;\nint v;",
			Init: "s = Sequence(1, 2, 3);",
			Call: "v = seqElement(s, 1);",
		},
		{
			Name: "hourInDay", Limit: limit,
			Decl: "tstamp ts;\nint v;",
			Init: "ts = tstampNow();",
			Call: "v = hourInDay(ts);",
		},
		{
			Name: "insert", Limit: limit,
			Decl: "map m;\nidentifier id;",
			Init: "m = Map(int);\nid = Identifier('key');",
			Call: "insert(m, id, i);",
		},
		{
			Name: "hasEntry", Limit: limit,
			Decl: "map m;\nidentifier id;\nbool b;",
			Init: "m = Map(int);\nid = Identifier('key');\ninsert(m, id, 1);",
			Call: "b = hasEntry(m, id);",
		},
		{
			Name: "lookup", Limit: limit,
			Decl: "map m;\nidentifier id;\nint v;",
			Init: "m = Map(int);\nid = Identifier('key');\ninsert(m, id, 1);",
			Call: "v = lookup(m, id);",
		},
		{
			Name: "Identifier", Limit: limit,
			Decl: "identifier id;",
			Call: "id = Identifier('10.20.30.40');",
		},
		{
			Name: "publish", Limit: pub,
			Call: "publish('Sink', i);",
		},
		{
			Name: "send", Limit: snd,
			Call: "send(i);",
		},
	}
}

// BuiltinCostProgram instantiates the Fig. 6 template for one case. The
// automaton prints "<name>: <microseconds-per-invocation>" once per Timer
// tick.
func BuiltinCostProgram(c BuiltinCostCase) string {
	var b strings.Builder
	fmt.Fprintf(&b, `
# Fig. 6: built-in cost template for %s.
subscribe t to Timer;
int i;
int limit;
tstamp start;
int diff;
`, c.Name)
	if c.Decl != "" {
		b.WriteString(c.Decl)
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "initialization {\n\tlimit = %d;\n", c.Limit)
	if c.Init != "" {
		b.WriteString("\t" + strings.ReplaceAll(c.Init, "\n", "\n\t") + "\n")
	}
	b.WriteString("}\n")
	b.WriteString("behavior {\n\ti = 0;\n\tstart = tstampNow();\n\twhile (i < limit) {\n")
	if c.Call != "" {
		b.WriteString("\t\t" + c.Call + "\n")
	}
	b.WriteString("\t\ti += 1;\n\t}\n")
	fmt.Fprintf(&b,
		"\tdiff = tstampDiff(tstampNow(), start);\n"+
			"\tprint(String('%s: ', float(diff) / (float(limit) * 1000.0)));\n}\n",
		c.Name)
	return b.String()
}

// DelayProbeProgram is Fig. 8: the performance-at-scale probe. Every
// event's insert-to-processing delay is accumulated; every batchSize events
// the automaton reports (id, ave, min, max) in milliseconds via send().
func DelayProbeProgram(id string, batchSize int) string {
	return fmt.Sprintf(`
# Fig. 8: performance at scale template.
subscribe f to Flows;
real min, max, ave, r;
int count, nsecs;
string id;
initialization {
	min = 1000.;
	max = 0.;
	ave = 0.;
	id = '%s';
	count = 0;
}
behavior {
	count = count + 1;
	nsecs = tstampDiff(tstampNow(), f.tstamp);
	r = float(nsecs) / 1000000.;
	ave = ave + (r - ave) / float(count);
	if (r > max)
		max = r;
	if (r < min)
		min = r;
	if (count >= %d) {
		send(id, ave, min, max);
		count = 0;
		min = 1000.;
		max = 0.;
		ave = 0.;
	}
}
`, id, batchSize)
}

// StressProgram is Fig. 11: the 1-way/2-way stress automaton. In 2-way
// mode every Test event is echoed back to the application via send().
func StressProgram(twoWay bool) string {
	echo := "# send(s); (1-way test)"
	if twoWay {
		echo = "send(s); # 2-way test"
	}
	return fmt.Sprintf(`
# Fig. 11: performance at stress template.
subscribe t to Timer;
subscribe s to Test;
int count;
initialization {
	count = 0;
}
behavior {
	if (currentTopic() == 'Timer') {
		if (count > 0)
			send('stress', count);
		count = 0;
	} else {
		count += 1;
		%s
	}
}
`, echo)
}

// ProgFrequentImperative is Fig. 14: the Misra-Gries frequent algorithm
// written imperatively in GAPL.
func ProgFrequentImperative(k int) string {
	return fmt.Sprintf(`
# Fig. 14: the "frequent" algorithm.
subscribe e to Urls;
map T;
iterator i;
identifier id;
int count;
int k;
initialization {
	k = %d;
	T = Map(int);
}
behavior {
	id = Identifier(e.host);
	if (hasEntry(T, id)) {
		count = lookup(T, id);
		count += 1;
		insert(T, id, count);
	} else if (mapSize(T) < (k-1))
		insert(T, id, 1);
	else {
		i = Iterator(T);
		while (hasNext(i)) {
			id = next(i);
			count = lookup(T, id);
			count -= 1;
			if (count == 0)
				remove(T, id);
			else
				insert(T, id, count);
		}
	}
}
`, k)
}

// ProgFrequentBuiltin is the §6.4 one-liner using the frequent() built-in.
func ProgFrequentBuiltin(k int) string {
	return fmt.Sprintf(`
# §6.4: built-in variant of the frequent algorithm.
subscribe e to Urls;
map T;
initialization { T = Map(int); }
behavior { frequent(T, Identifier(e.host), %d); }
`, k)
}

// ProgQ1 is the Cache side of Fig. 18's Q1: subscribe to Stocks and
// publish every event to stream T.
const ProgQ1 = `
# §6.5 Q1: SELECT * FROM Stocks PUBLISH T.
subscribe s to Stocks;
behavior { publish('T', s); }
`

// ProgQ2 is the Cache side of Q2: the algorithmic double-top (M-shaped)
// detector. Each entry of the map is a small state machine
// (state, A, B, C, prev); the algorithm backtracks to previous states or
// proceeds according to the current price, as §6.5 describes.
const ProgQ2 = `
# §6.5 Q2: double-top (M-shape) detection, one state machine per stock.
subscribe s to Stocks;
map st;
identifier id;
sequence m;
int state;
real p, a, b, c, prev;
initialization { st = Map(sequence); }
behavior {
	id = Identifier(s.name);
	p = s.price;
	if (!hasEntry(st, id)) {
		insert(st, id, Sequence(1, p, 0.0, 0.0, p));
	} else {
		m = lookup(st, id);
		state = seqElement(m, 0);
		a = seqElement(m, 1);
		b = seqElement(m, 2);
		c = seqElement(m, 3);
		prev = seqElement(m, 4);
		if (state == 1) {				# rising towards B
			if (p < prev) {
				if (prev > a) {			# first top found
					seqSet(m, 0, 2);
					seqSet(m, 2, prev);	# B
				} else
					seqSet(m, 1, p);	# restart anchor A
			}
		} else if (state == 2) {		# falling towards C
			if (p > prev) {
				if (prev > a) {			# valley found above anchor
					seqSet(m, 0, 3);
					seqSet(m, 3, prev);	# C
				} else {
					seqSet(m, 0, 1);	# backtrack: restart
					seqSet(m, 1, p);
				}
			} else if (p <= a) {
				seqSet(m, 0, 1);		# dipped below anchor: restart
				seqSet(m, 1, p);
			}
		} else if (state == 3) {		# rising towards D
			if (p < prev) {
				if (prev > c) {			# second top found
					seqSet(m, 0, 4);
				} else {
					seqSet(m, 0, 2);	# backtrack to descending leg
				}
			}
		} else if (state == 4) {		# falling towards E/F
			if (p < c) {				# closed below the valley: match
				send(s.name, a, b, c, p);
				seqSet(m, 0, 1);
				seqSet(m, 1, p);
			} else if (p > prev) {
				seqSet(m, 0, 3);		# backtrack: another run at a top
			}
		}
		seqSet(m, 4, p);
		insert(st, id, m);
	}
}
`

// ProgQ3Detector is the first of the two automata implementing Q3: detect
// continuous runs of increasing prices per stock and publish each completed
// run of at least minLen ticks into the Runs stream.
func ProgQ3Detector(minLen int) string {
	return fmt.Sprintf(`
# §6.5 Q3 (automaton 1 of 2): detect increasing-price runs per stock.
subscribe s to Stocks;
map last;
map runs;
identifier id;
sequence r;
real p, prev;
initialization {
	last = Map(real);
	runs = Map(sequence);
}
behavior {
	id = Identifier(s.name);
	p = s.price;
	if (hasEntry(last, id)) {
		prev = lookup(last, id);
		r = lookup(runs, id);
		if (p > prev) {
			append(r, p);
		} else {
			if (seqSize(r) >= %d)
				publish('Runs', s.name, seqSize(r));
			insert(runs, id, Sequence(p));
		}
	} else {
		insert(runs, id, Sequence(p));
	}
	insert(last, id, p);
}
`, minLen)
}

// ProgQ3Reporter is the second Q3 automaton: forward each completed run to
// the registering application.
const ProgQ3Reporter = `
# §6.5 Q3 (automaton 2 of 2): report completed runs.
subscribe r to Runs;
behavior { send(r); }
`
