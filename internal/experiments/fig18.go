package experiments

import (
	"fmt"
	"time"

	"unicache/internal/cayuga"
	"unicache/internal/types"
	"unicache/internal/workload"
)

// Fig18Config parameterises the Cayuga comparison (§6.5).
type Fig18Config struct {
	Seed    int64
	Events  int
	Symbols int
	// MinRun is Q3's minimum run length.
	MinRun int
}

// Fig18Row is the outcome for one query: wall-clock for both engines on
// the identical trace, match counts, and the Cache's speedup factor.
type Fig18Row struct {
	Query         string
	CacheSec      float64
	CayugaSec     float64
	CacheMatches  int
	CayugaMatches int
	Speedup       float64
}

// stockSchemas builds the topic schemas both Cache-side replays use.
func stockSchemas() map[string]*types.Schema {
	return map[string]*types.Schema{
		"Stocks": mustSchema("Stocks",
			types.Column{Name: "name", Type: types.ColVarchar},
			types.Column{Name: "price", Type: types.ColReal},
			types.Column{Name: "volume", Type: types.ColInt},
		),
		"T": mustSchema("T",
			types.Column{Name: "name", Type: types.ColVarchar},
			types.Column{Name: "price", Type: types.ColReal},
			types.Column{Name: "volume", Type: types.ColInt},
		),
		"Runs": mustSchema("Runs",
			types.Column{Name: "name", Type: types.ColVarchar},
			types.Column{Name: "len", Type: types.ColInt},
		),
		"Timer": timerSchema(),
	}
}

// Fig18 runs Q1 (passthrough publish), Q2 (double-top) and Q3 (FOLD
// rising runs) on both engines over the same synthetic stock trace,
// following the paper's methodology: all events are first materialised in
// memory, then each engine iterates over them (§6.5).
func Fig18(cfg Fig18Config) ([]Fig18Row, error) {
	if cfg.Events <= 0 {
		cfg.Events = workload.StockEvents
	}
	if cfg.Symbols <= 0 {
		cfg.Symbols = 50
	}
	// The paper's Q3 has no minimum run length beyond "a run": two or more
	// increasing prices. The non-deterministic FOLD therefore matches at
	// every extension of every suffix, which is exactly the work the
	// paper's imperative detector avoids.
	if cfg.MinRun < 2 {
		cfg.MinRun = 2
	}
	trace := workload.StockTrace(workload.StockConfig{
		Seed:       cfg.Seed,
		Events:     cfg.Events,
		Symbols:    cfg.Symbols,
		DoubleTops: cfg.Events / 500,
		RunLength:  cfg.MinRun + 3,
		Runs:       cfg.Events / 250,
	})

	type queryCase struct {
		name    string
		sources []string
		// cacheMatches extracts the match count from the rig after replay.
		cacheMatches func(r *replayRig) int
		cayugaQs     func() []*cayuga.Query
		// cayugaMatches names the output stream counted.
		outStream string
	}
	cases := []queryCase{
		{
			name:    "Q1",
			sources: []string{ProgQ1},
			cacheMatches: func(r *replayRig) int {
				return len(r.streams["T"])
			},
			cayugaQs: func() []*cayuga.Query {
				return []*cayuga.Query{cayuga.PassthroughQuery("Stocks", "T")}
			},
			outStream: "T",
		},
		{
			name:    "Q2",
			sources: []string{ProgQ2},
			cacheMatches: func(r *replayRig) int {
				return len(r.sent)
			},
			cayugaQs: func() []*cayuga.Query {
				return []*cayuga.Query{cayuga.DoubleTopQuery("Stocks", "M")}
			},
			outStream: "M",
		},
		{
			name:    "Q3",
			sources: []string{ProgQ3Detector(cfg.MinRun), ProgQ3Reporter},
			cacheMatches: func(r *replayRig) int {
				return len(r.sent)
			},
			cayugaQs: func() []*cayuga.Query {
				return []*cayuga.Query{cayuga.RisingRunQuery("Stocks", "Runs", cfg.MinRun)}
			},
			outStream: "Runs",
		},
	}

	var rows []Fig18Row
	for _, qc := range cases {
		// --- Cache side: automata over the replay rig.
		rig := newReplayRig(stockSchemas())
		for _, src := range qc.sources {
			if _, err := rig.register(src); err != nil {
				return nil, fmt.Errorf("fig18 %s: %w", qc.name, err)
			}
		}
		start := time.Now()
		for _, ev := range trace {
			vals := []types.Value{
				types.Str(ev.Name), types.Real(ev.Price), types.Int(ev.Volume),
			}
			if err := rig.feed("Stocks", vals); err != nil {
				return nil, fmt.Errorf("fig18 %s: %w", qc.name, err)
			}
		}
		cacheSec := time.Since(start).Seconds()
		cacheMatches := qc.cacheMatches(rig)

		// --- Cayuga side: the NFA engine over the identical trace. Both
		// engines convert raw ticks to their native event form inside the
		// timed region.
		eng := cayuga.NewEngine()
		for _, q := range qc.cayugaQs() {
			if err := eng.Register(q); err != nil {
				return nil, fmt.Errorf("fig18 %s: %w", qc.name, err)
			}
		}
		start = time.Now()
		for _, ev := range trace {
			eng.Process(cayuga.StockEvent(ev))
		}
		cayugaSec := time.Since(start).Seconds()
		cayugaMatches := len(eng.Stream(qc.outStream))

		speedup := 0.0
		if cacheSec > 0 {
			speedup = cayugaSec / cacheSec
		}
		rows = append(rows, Fig18Row{
			Query:         qc.name,
			CacheSec:      cacheSec,
			CayugaSec:     cayugaSec,
			CacheMatches:  cacheMatches,
			CayugaMatches: cayugaMatches,
			Speedup:       speedup,
		})
	}
	return rows, nil
}
