package experiments

import (
	"fmt"
	"sort"
	"time"

	"unicache/internal/stats"
	"unicache/internal/types"
	"unicache/internal/workload"
)

// Fig15Row is one rank of the Zipfian rank/frequency plot (§6.4, Fig. 15).
type Fig15Row struct {
	Rank     int
	Host     string
	Requests int
}

// Fig15 generates the synthetic Homework HTTP trace and computes the
// rank/frequency distribution. With the paper's dimensions (264,745
// requests, 5,572 hosts) the plot is the Zipfian line of Fig. 15.
func Fig15(seed int64, requests, hosts int) []Fig15Row {
	if requests <= 0 {
		requests = workload.HTTPRequests
	}
	if hosts <= 0 {
		hosts = workload.HTTPHosts
	}
	trace := workload.HTTPTrace(seed, requests, hosts)
	counts := make(map[string]int)
	for _, r := range trace {
		counts[r.Host]++
	}
	rows := make([]Fig15Row, 0, len(counts))
	for h, n := range counts {
		rows = append(rows, Fig15Row{Host: h, Requests: n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Requests != rows[j].Requests {
			return rows[i].Requests > rows[j].Requests
		}
		return rows[i].Host < rows[j].Host
	})
	for i := range rows {
		rows[i].Rank = i + 1
	}
	return rows
}

// Fig16Config parameterises the imperative-vs-built-in frequent comparison
// (§6.4, Fig. 16).
type Fig16Config struct {
	Seed     int64
	Requests int
	Hosts    int
	Ks       []int
}

// Fig16Row reports the coefficient of variation of per-event execution
// time for both implementations at one k.
type Fig16Row struct {
	K            int
	ImperativeCV float64
	BuiltinCV    float64
	ImperativeUs float64 // mean per-event µs
	BuiltinUs    float64
}

// Fig16 replays the HTTP trace through the Urls topic and times each
// behaviour execution of the imperative (Fig. 14) and built-in (§6.4)
// frequent automata. As in the paper, the imperative variant's cost
// becomes dominated by the O(k) decrement sweep as k grows, so its
// coefficient of variation rises with k while the built-in's stays flat.
func Fig16(cfg Fig16Config) ([]Fig16Row, error) {
	if cfg.Requests <= 0 {
		cfg.Requests = 50_000
	}
	if cfg.Hosts <= 0 {
		cfg.Hosts = workload.HTTPHosts
	}
	if len(cfg.Ks) == 0 {
		cfg.Ks = []int{10, 100, 1000}
	}
	trace := workload.HTTPTrace(cfg.Seed, cfg.Requests, cfg.Hosts)
	urls := mustSchema("Urls", types.Column{Name: "host", Type: types.ColVarchar})
	schemas := map[string]*types.Schema{"Urls": urls, "Timer": timerSchema()}

	var rows []Fig16Row
	for _, k := range cfg.Ks {
		row := Fig16Row{K: k}
		for _, variant := range []struct {
			src  string
			cv   *float64
			mean *float64
		}{
			{ProgFrequentImperative(k), &row.ImperativeCV, &row.ImperativeUs},
			{ProgFrequentBuiltin(k), &row.BuiltinCV, &row.BuiltinUs},
		} {
			rig := newReplayRig(schemas)
			m, err := rig.register(variant.src)
			if err != nil {
				return nil, fmt.Errorf("fig16 k=%d: %w", k, err)
			}
			costs := make([]float64, 0, len(trace))
			for i, req := range trace {
				ev := &types.Event{
					Topic:  "Urls",
					Schema: urls,
					Tuple: &types.Tuple{Seq: uint64(i + 1), TS: types.Timestamp(i + 1),
						Vals: []types.Value{types.Str(req.Host)}},
				}
				t0 := time.Now()
				if err := m.Deliver(ev); err != nil {
					return nil, fmt.Errorf("fig16 k=%d: %w", k, err)
				}
				costs = append(costs, float64(time.Since(t0).Nanoseconds())/1000.0)
			}
			*variant.cv = stats.CV(costs)
			*variant.mean = stats.Mean(costs)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
