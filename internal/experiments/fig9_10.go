package experiments

import (
	"fmt"
	"sync"
	"time"

	"unicache/internal/cache"
	"unicache/internal/stats"
	"unicache/internal/types"
)

// DelayConfig parameterises the performance-at-scale experiments (§6.2,
// Figs. 9 and 10): #automata subscribed to Flows and the tuple insertion
// period Δt.
type DelayConfig struct {
	Automata     int
	Interarrival time.Duration
	// Events inserted in total.
	Events int
	// Batch is the probe's reporting batch (the paper reports per 1000
	// events; scaled runs use smaller batches).
	Batch int
}

// DelayResult aggregates the probes' reports: the mean and standard
// deviation of the per-batch average delays across all automata, plus the
// extreme delays observed (all in milliseconds).
type DelayResult struct {
	Config  DelayConfig
	MeanMs  float64
	StdMs   float64
	MinMs   float64
	MaxMs   float64
	Batches int
}

// DelayExperiment runs the Fig. 8 probe automaton: delay is measured from
// tuple insertion (f.tstamp) to behaviour execution (tstampNow) inside
// each automaton.
func DelayExperiment(cfg DelayConfig) (DelayResult, error) {
	if cfg.Automata <= 0 {
		cfg.Automata = 1
	}
	if cfg.Events <= 0 {
		cfg.Events = 1000
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 100
	}
	c, err := cache.New(cache.Config{TimerPeriod: -1})
	if err != nil {
		return DelayResult{}, err
	}
	defer c.Close()
	if _, err := c.Exec(`create table Flows (protocol integer, srcip varchar(16), sport integer,
		dstip varchar(16), dport integer, npkts integer, nbytes integer)`); err != nil {
		return DelayResult{}, err
	}

	var mu sync.Mutex
	var aves, mins, maxs []float64
	sink := func(vals []types.Value) error {
		if len(vals) != 4 {
			return fmt.Errorf("probe report arity %d", len(vals))
		}
		ave, _ := vals[1].NumAsReal()
		lo, _ := vals[2].NumAsReal()
		hi, _ := vals[3].NumAsReal()
		mu.Lock()
		aves = append(aves, ave)
		mins = append(mins, lo)
		maxs = append(maxs, hi)
		mu.Unlock()
		return nil
	}
	for i := 0; i < cfg.Automata; i++ {
		src := DelayProbeProgram(fmt.Sprintf("A%d", i), cfg.Batch)
		if _, err := c.Register(src, sink); err != nil {
			return DelayResult{}, err
		}
	}

	vals := []types.Value{
		types.Int(6), types.Str("10.0.0.1"), types.Int(1234),
		types.Str("192.168.1.1"), types.Int(80), types.Int(10), types.Int(1500),
	}
	next := time.Now()
	for i := 0; i < cfg.Events; i++ {
		if cfg.Interarrival > 0 {
			next = next.Add(cfg.Interarrival)
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
		}
		if err := c.Insert("Flows", vals...); err != nil {
			return DelayResult{}, err
		}
	}
	if !c.Registry().WaitIdle(time.Minute) {
		return DelayResult{}, fmt.Errorf("delay experiment: automata did not quiesce")
	}

	mu.Lock()
	defer mu.Unlock()
	if len(aves) == 0 {
		return DelayResult{}, fmt.Errorf("delay experiment: no probe reports (events %d < batch %d?)",
			cfg.Events, cfg.Batch)
	}
	res := DelayResult{
		Config:  cfg,
		MeanMs:  stats.Mean(aves),
		StdMs:   stats.Stddev(aves),
		MinMs:   stats.Percentile(mins, 0),
		MaxMs:   stats.Percentile(maxs, 100),
		Batches: len(aves),
	}
	return res, nil
}

// Fig9 sweeps the number of automata at fixed Δt (the paper: 1,2,4,8 at
// Δt = 8 ms).
func Fig9(automata []int, dt time.Duration, events, batch int) ([]DelayResult, error) {
	if len(automata) == 0 {
		automata = []int{1, 2, 4, 8}
	}
	var out []DelayResult
	for _, n := range automata {
		r, err := DelayExperiment(DelayConfig{
			Automata: n, Interarrival: dt, Events: events, Batch: batch,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Fig10 sweeps Δt at a fixed number of automata (the paper: 4 automata,
// Δt ∈ {4,8,16,32,64} ms).
func Fig10(dts []time.Duration, automata, events, batch int) ([]DelayResult, error) {
	if len(dts) == 0 {
		dts = []time.Duration{4, 8, 16, 32, 64}
		for i := range dts {
			dts[i] *= time.Millisecond
		}
	}
	if automata <= 0 {
		automata = 4
	}
	var out []DelayResult
	for _, dt := range dts {
		r, err := DelayExperiment(DelayConfig{
			Automata: automata, Interarrival: dt, Events: events, Batch: batch,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
