// Package sql implements the cache's SQL dialect: create table / create
// persistenttable, insert (with on duplicate key update), and ad hoc select
// queries augmented with the paper's continuous extensions — `since τ`,
// `[range N seconds]` and `[rows N]` windows — plus where, group by,
// order by and limit, and update/delete over persistent tables (§3).
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct
)

type token struct {
	kind tokKind
	text string // identifiers lowercased copy in lower; literals raw
	raw  string // original spelling (for identifiers / errors)
	pos  int
}

type lexer struct {
	src    string
	pos    int
	tokens []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.tokens = append(l.tokens, tok)
		if tok.kind == tokEOF {
			return l.tokens, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// SQL line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, pos: l.pos}, nil

scan:
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(rune(c)):
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		raw := l.src[start:l.pos]
		return token{kind: tokIdent, text: strings.ToLower(raw), raw: raw, pos: start}, nil
	case c >= '0' && c <= '9':
		seenDot := false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == '.' && !seenDot {
				seenDot = true
				l.pos++
				continue
			}
			if ch < '0' || ch > '9' {
				break
			}
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], raw: l.src[start:l.pos], pos: start}, nil
	case c == '\'' || c == '"':
		quote := c
		l.pos++
		var b strings.Builder
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == quote {
				// Doubled quote escapes itself ('' -> ').
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == quote {
					b.WriteByte(quote)
					l.pos += 2
					continue
				}
				l.pos++
				return token{kind: tokString, text: b.String(), raw: b.String(), pos: start}, nil
			}
			b.WriteByte(ch)
			l.pos++
		}
		return token{}, fmt.Errorf("sql: unterminated string at offset %d", start)
	default:
		// Multi-char operators first.
		for _, op := range []string{"<=", ">=", "<>", "!="} {
			if strings.HasPrefix(l.src[l.pos:], op) {
				l.pos += len(op)
				return token{kind: tokPunct, text: op, raw: op, pos: start}, nil
			}
		}
		switch c {
		case '(', ')', ',', '*', '=', '<', '>', '+', '-', '/', '%', '[', ']', ';', '.':
			l.pos++
			s := string(c)
			return token{kind: tokPunct, text: s, raw: s, pos: start}, nil
		}
		return token{}, fmt.Errorf("sql: unexpected character %q at offset %d", c, start)
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
