package sql

import (
	"time"

	"unicache/internal/types"
)

// Stmt is any parsed SQL statement.
type Stmt interface{ stmt() }

// CreateStmt is `create table` / `create persistenttable`.
type CreateStmt struct {
	Schema *types.Schema
}

// InsertStmt is `insert into T [(cols)] values (...), (...), ...
// [on duplicate key update]`. Multi-row inserts commit as one batch: a
// single contiguous sequence run, published to each subscriber with one
// delivery.
type InsertStmt struct {
	Table string
	Cols  []string // empty means schema order
	Rows  [][]Expr // one value list per row
	OnDup bool
}

// WindowClause captures the continuous-query extensions on select.
type WindowClause struct {
	// Since restricts to tuples with TS strictly greater than the
	// expression's value (the paper's `since τ`).
	Since Expr
	// Range keeps tuples within the trailing duration (`[range N seconds]`).
	Range time.Duration
	// Rows keeps the most recent N tuples (`[rows N]`).
	Rows int
}

// SelectItem is one projection: a plain expression or an aggregate call.
type SelectItem struct {
	Agg  string // "", "count", "sum", "avg", "min", "max"
	Star bool   // count(*)
	Expr Expr   // nil for count(*)
	As   string // output column label
}

// OrderBy names the sort column and direction.
type OrderBy struct {
	Col  string
	Desc bool
}

// SelectStmt is an ad hoc query against one table.
type SelectStmt struct {
	Items   []SelectItem // nil means *
	Table   string
	Window  WindowClause
	Where   Expr
	GroupBy string
	Order   *OrderBy
	Limit   int // 0 = no limit
}

// UpdateStmt is `update T set c = e, ... [where p]` (persistent tables).
type UpdateStmt struct {
	Table string
	Cols  []string
	Vals  []Expr
	Where Expr
}

// DeleteStmt is `delete from T [where p]` (persistent tables).
type DeleteStmt struct {
	Table string
	Where Expr
}

// ShowTablesStmt is `show tables`: one row per table with its kind and
// current row count.
type ShowTablesStmt struct{}

// DescribeStmt is `describe T`: one row per column with name, type and
// key/kind information.
type DescribeStmt struct {
	Table string
}

func (*CreateStmt) stmt()     {}
func (*InsertStmt) stmt()     {}
func (*SelectStmt) stmt()     {}
func (*UpdateStmt) stmt()     {}
func (*DeleteStmt) stmt()     {}
func (*ShowTablesStmt) stmt() {}
func (*DescribeStmt) stmt()   {}

// Expr is an evaluable expression. Row context supplies column values; it
// is nil for row-free contexts (insert values, since clauses).
type Expr interface {
	Eval(row RowContext) (types.Value, error)
	// Name returns a display label for projection headers.
	Name() string
}

// RowContext resolves column references during evaluation.
type RowContext interface {
	Col(name string) (types.Value, error)
}

// Result is the answer to a select: column labels plus row values.
type Result struct {
	Cols []string
	Rows [][]types.Value
	// Affected counts rows written for insert/update/delete.
	Affected int
}
