package sql

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"unicache/internal/table"
	"unicache/internal/types"
)

// testEngine is a minimal Engine without pub/sub: inserts stamp and store.
type testEngine struct {
	tables map[string]table.Table
	clock  types.Timestamp
	seq    uint64
}

func newTestEngine() *testEngine {
	return &testEngine{tables: make(map[string]table.Table), clock: 1000}
}

func (e *testEngine) LookupTable(name string) (table.Table, error) {
	tb, ok := e.tables[name]
	if !ok {
		return nil, fmt.Errorf("no such table %q", name)
	}
	return tb, nil
}

func (e *testEngine) CreateTable(schema *types.Schema) error {
	if _, dup := e.tables[schema.Name]; dup {
		return fmt.Errorf("table %q already exists", schema.Name)
	}
	tb, err := table.New(schema, 1024)
	if err != nil {
		return err
	}
	e.tables[schema.Name] = tb
	return nil
}

func (e *testEngine) CommitInsert(name string, vals []types.Value) error {
	tb, err := e.LookupTable(name)
	if err != nil {
		return err
	}
	coerced, err := tb.Schema().Coerce(vals)
	if err != nil {
		return err
	}
	e.seq++
	e.clock++
	_, err = tb.Insert(&types.Tuple{Seq: e.seq, TS: e.clock, Vals: coerced})
	return err
}

func (e *testEngine) CommitBatch(name string, rows [][]types.Value) error {
	tb, err := e.LookupTable(name)
	if err != nil {
		return err
	}
	tuples := make([]*types.Tuple, len(rows))
	for i, vals := range rows {
		coerced, err := tb.Schema().Coerce(vals)
		if err != nil {
			return fmt.Errorf("batch row %d: %w", i, err)
		}
		e.seq++
		e.clock++
		tuples[i] = &types.Tuple{Seq: e.seq, TS: e.clock, Vals: coerced}
	}
	return tb.InsertBatch(tuples)
}

func (e *testEngine) DeleteRow(name, key string) (bool, error) {
	tb, err := e.LookupTable(name)
	if err != nil {
		return false, err
	}
	pt, ok := tb.(*table.Persistent)
	if !ok {
		return false, fmt.Errorf("table %q is not persistent", name)
	}
	return pt.Delete(key), nil
}

func (e *testEngine) Tables() []string {
	names := make([]string, 0, len(e.tables))
	for name := range e.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func (e *testEngine) Now() types.Timestamp { return e.clock }

func mustExec(t *testing.T, e *testEngine, src string) *Result {
	t.Helper()
	res, err := ExecString(e, src)
	if err != nil {
		t.Fatalf("exec %q: %v", src, err)
	}
	return res
}

func execErr(t *testing.T, e *testEngine, src string) error {
	t.Helper()
	_, err := ExecString(e, src)
	if err == nil {
		t.Fatalf("exec %q: expected error", src)
	}
	return err
}

func setupFlows(t *testing.T) *testEngine {
	t.Helper()
	e := newTestEngine()
	mustExec(t, e, `create table Flows (protocol integer, srcip varchar(16),
		sport integer, dstip varchar(16), dport integer, npkts integer, nbytes integer)`)
	return e
}

func TestCreateTableFromPaper(t *testing.T) {
	e := setupFlows(t)
	tb, err := e.LookupTable("Flows")
	if err != nil {
		t.Fatal(err)
	}
	s := tb.Schema()
	if s.Persistent || s.NumCols() != 7 || s.Key != -1 {
		t.Errorf("Flows schema wrong: %s", s)
	}
	if s.Cols[1].Width != 16 {
		t.Errorf("varchar width = %d", s.Cols[1].Width)
	}
}

func TestCreatePersistentTableFromPaper(t *testing.T) {
	e := newTestEngine()
	mustExec(t, e, `create persistenttable Allowances (ipaddr varchar(16) primary key, bytes integer)`)
	tb, _ := e.LookupTable("Allowances")
	s := tb.Schema()
	if !s.Persistent || s.Key != 0 {
		t.Errorf("Allowances schema wrong: %s", s)
	}
	// "create persistent table" (two words) also accepted.
	mustExec(t, e, `create persistent table BWUsage (ipaddr varchar(16) primary key, bytes integer)`)
	// Primary key defaults to the first field when not named.
	mustExec(t, e, `create persistenttable P2 (k varchar, v integer)`)
	tb, _ = e.LookupTable("P2")
	if tb.Schema().Key != 0 {
		t.Error("default primary key should be first column")
	}
}

func TestCreateErrors(t *testing.T) {
	e := newTestEngine()
	execErr(t, e, `create table`)
	execErr(t, e, `create table T`)
	execErr(t, e, `create table T (a integer, a integer)`)
	execErr(t, e, `create table T (a wibble)`)
	execErr(t, e, `create table T (a integer primary key, b integer primary key)`)
	execErr(t, e, `create banana T (a integer)`)
	mustExec(t, e, `create table T (a integer)`)
	execErr(t, e, `create table T (a integer)`) // duplicate
}

func TestInsertAndSelectStar(t *testing.T) {
	e := setupFlows(t)
	mustExec(t, e, `insert into Flows values (6, '10.0.0.1', 1234, '8.8.8.8', 80, 10, 1500)`)
	mustExec(t, e, `insert into Flows values (17, '10.0.0.2', 53, '1.1.1.1', 53, 2, 128)`)
	res := mustExec(t, e, `select * from Flows`)
	if len(res.Rows) != 2 || len(res.Cols) != 7 {
		t.Fatalf("select * = %d rows, %d cols", len(res.Rows), len(res.Cols))
	}
	if v, _ := res.Rows[0][0].AsInt(); v != 6 {
		t.Error("row order should be insertion order")
	}
}

func TestInsertWithColumnNames(t *testing.T) {
	e := newTestEngine()
	mustExec(t, e, `create table T (a integer, b varchar, c real)`)
	mustExec(t, e, `insert into T (c, a, b) values (1.5, 7, 'x')`)
	res := mustExec(t, e, `select a, b, c from T`)
	row := res.Rows[0]
	if row[0].String() != "7" || row[1].String() != "x" || row[2].String() != "1.5" {
		t.Errorf("reordered insert wrong: %v", row)
	}
	execErr(t, e, `insert into T (a, b) values (1, 'x')`)       // partial
	execErr(t, e, `insert into T (a, a, b) values (1, 2, 'x')`) // dup col
	execErr(t, e, `insert into T (a, b, z) values (1, 'x', 2)`) // unknown col
}

func TestInsertOnDuplicateKeyUpdate(t *testing.T) {
	e := newTestEngine()
	mustExec(t, e, `create persistenttable KV (k varchar primary key, v integer)`)
	mustExec(t, e, `insert into KV values ('a', 1)`)
	mustExec(t, e, `insert into KV values ('a', 2) on duplicate key update`)
	res := mustExec(t, e, `select v from KV where k = 'a'`)
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "2" {
		t.Errorf("upsert result: %+v", res.Rows)
	}
	// The modifier is rejected on streams.
	mustExec(t, e, `create table S (v integer)`)
	execErr(t, e, `insert into S values (1) on duplicate key update`)
}

func TestSelectWhereProjectionArithmetic(t *testing.T) {
	e := setupFlows(t)
	for i := 1; i <= 5; i++ {
		mustExec(t, e, fmt.Sprintf(
			`insert into Flows values (6, '10.0.0.%d', 1, 'd', 80, %d, %d)`, i, i, i*100))
	}
	res := mustExec(t, e, `select srcip, nbytes * 8 as bits from Flows where nbytes >= 300`)
	if len(res.Rows) != 3 {
		t.Fatalf("where filter kept %d rows", len(res.Rows))
	}
	if res.Cols[1] != "bits" {
		t.Errorf("alias not applied: %v", res.Cols)
	}
	if res.Rows[0][1].String() != "2400" {
		t.Errorf("arithmetic projection wrong: %v", res.Rows[0])
	}
	// Logical operators.
	res = mustExec(t, e, `select * from Flows where nbytes > 100 and nbytes < 500`)
	if len(res.Rows) != 3 {
		t.Errorf("and filter kept %d rows", len(res.Rows))
	}
	res = mustExec(t, e, `select * from Flows where nbytes = 100 or nbytes = 500`)
	if len(res.Rows) != 2 {
		t.Errorf("or filter kept %d rows", len(res.Rows))
	}
	res = mustExec(t, e, `select * from Flows where not (nbytes = 100)`)
	if len(res.Rows) != 4 {
		t.Errorf("not filter kept %d rows", len(res.Rows))
	}
}

func TestSelectSince(t *testing.T) {
	e := setupFlows(t)
	for i := 1; i <= 4; i++ {
		mustExec(t, e, fmt.Sprintf(`insert into Flows values (6,'s',1,'d',1,1,%d)`, i))
	}
	// Clock starts at 1000 and ticks once per insert: TS = 1001..1004.
	res := mustExec(t, e, `select nbytes from Flows since 1002`)
	if len(res.Rows) != 2 {
		t.Fatalf("since kept %d rows, want 2", len(res.Rows))
	}
	if res.Rows[0][0].String() != "3" {
		t.Errorf("since should keep strictly-later tuples: %v", res.Rows)
	}
	// tstamp pseudo-column usable in where/projection.
	res = mustExec(t, e, `select tstamp, nbytes from Flows where tstamp > 1003`)
	if len(res.Rows) != 1 || res.Rows[0][1].String() != "4" {
		t.Errorf("tstamp pseudo-column: %+v", res.Rows)
	}
}

func TestSelectWindowClauses(t *testing.T) {
	e := setupFlows(t)
	for i := 1; i <= 10; i++ {
		mustExec(t, e, fmt.Sprintf(`insert into Flows values (6,'s',1,'d',1,1,%d)`, i))
	}
	res := mustExec(t, e, `select nbytes from Flows [rows 3]`)
	if len(res.Rows) != 3 || res.Rows[0][0].String() != "8" {
		t.Errorf("[rows 3] = %+v", res.Rows)
	}
	// Range: clock is 1010 now; inserts at 1001..1010 (ns scale). A range of
	// 1 second covers everything; combined with since it narrows.
	res = mustExec(t, e, `select nbytes from Flows [range 1 seconds] since 1008`)
	if len(res.Rows) != 2 {
		t.Errorf("range+since = %d rows", len(res.Rows))
	}
	execErr(t, e, `select * from Flows [rows 0]`)
	execErr(t, e, `select * from Flows [banana 3]`)
	execErr(t, e, `select * from Flows [range 5 parsecs]`)
}

func TestSelectOrderByLimit(t *testing.T) {
	e := setupFlows(t)
	vals := []int{5, 2, 9, 1}
	for _, v := range vals {
		mustExec(t, e, fmt.Sprintf(`insert into Flows values (6,'s',1,'d',1,1,%d)`, v))
	}
	res := mustExec(t, e, `select nbytes from Flows order by nbytes`)
	got := []string{}
	for _, r := range res.Rows {
		got = append(got, r[0].String())
	}
	if strings.Join(got, ",") != "1,2,5,9" {
		t.Errorf("order by asc = %v", got)
	}
	res = mustExec(t, e, `select nbytes from Flows order by nbytes desc limit 2`)
	if len(res.Rows) != 2 || res.Rows[0][0].String() != "9" || res.Rows[1][0].String() != "5" {
		t.Errorf("order by desc limit = %+v", res.Rows)
	}
	execErr(t, e, `select nbytes from Flows order by nosuchcol`)
	execErr(t, e, `select nbytes from Flows limit 0`)
}

func TestSelectAggregates(t *testing.T) {
	e := setupFlows(t)
	data := []struct {
		src string
		n   int
	}{{"a", 100}, {"a", 200}, {"b", 50}}
	for _, d := range data {
		mustExec(t, e, fmt.Sprintf(`insert into Flows values (6,'%s',1,'d',1,1,%d)`, d.src, d.n))
	}
	res := mustExec(t, e, `select count(*), sum(nbytes), avg(nbytes), min(nbytes), max(nbytes) from Flows`)
	row := res.Rows[0]
	if row[0].String() != "3" || row[1].String() != "350" || row[3].String() != "50" || row[4].String() != "200" {
		t.Errorf("aggregates = %v", row)
	}
	if f, _ := row[2].AsReal(); f < 116 || f > 117 {
		t.Errorf("avg = %v", row[2])
	}

	res = mustExec(t, e, `select srcip, sum(nbytes) as total from Flows group by srcip order by total desc`)
	if len(res.Rows) != 2 {
		t.Fatalf("group by produced %d rows", len(res.Rows))
	}
	if res.Rows[0][0].String() != "a" || res.Rows[0][1].String() != "300" {
		t.Errorf("group a = %v", res.Rows[0])
	}
	if res.Rows[1][0].String() != "b" || res.Rows[1][1].String() != "50" {
		t.Errorf("group b = %v", res.Rows[1])
	}
}

func TestAggregateEdgeCases(t *testing.T) {
	e := setupFlows(t)
	// Aggregate over empty table yields one row.
	res := mustExec(t, e, `select count(*) from Flows`)
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "0" {
		t.Errorf("count over empty = %+v", res.Rows)
	}
	// sum over string column errors.
	mustExec(t, e, `insert into Flows values (6,'s',1,'d',1,1,10)`)
	execErr(t, e, `select sum(srcip) from Flows`)
	execErr(t, e, `select avg(srcip) from Flows`)
	// min/max over strings fine.
	res = mustExec(t, e, `select min(srcip), max(srcip) from Flows`)
	if res.Rows[0][0].String() != "s" {
		t.Errorf("min string = %v", res.Rows[0])
	}
	// sum(*) invalid.
	execErr(t, e, `select sum(*) from Flows`)
}

func TestUpdatePersistent(t *testing.T) {
	e := newTestEngine()
	mustExec(t, e, `create persistenttable KV (k varchar primary key, v integer)`)
	mustExec(t, e, `insert into KV values ('a', 1)`)
	mustExec(t, e, `insert into KV values ('b', 2)`)
	res := mustExec(t, e, `update KV set v = v * 10 where k = 'a'`)
	if res.Affected != 1 {
		t.Errorf("update affected %d", res.Affected)
	}
	got := mustExec(t, e, `select v from KV where k = 'a'`)
	if got.Rows[0][0].String() != "10" {
		t.Errorf("updated value = %v", got.Rows[0])
	}
	// Update all rows.
	res = mustExec(t, e, `update KV set v = 0`)
	if res.Affected != 2 {
		t.Errorf("update all affected %d", res.Affected)
	}
	// Update on stream rejected.
	mustExec(t, e, `create table S (v integer)`)
	execErr(t, e, `update S set v = 1`)
	execErr(t, e, `update KV set nosuch = 1`)
}

func TestDeletePersistent(t *testing.T) {
	e := newTestEngine()
	mustExec(t, e, `create persistenttable KV (k varchar primary key, v integer)`)
	for i := 0; i < 4; i++ {
		mustExec(t, e, fmt.Sprintf(`insert into KV values ('k%d', %d)`, i, i))
	}
	res := mustExec(t, e, `delete from KV where v >= 2`)
	if res.Affected != 2 {
		t.Errorf("delete affected %d", res.Affected)
	}
	got := mustExec(t, e, `select count(*) from KV`)
	if got.Rows[0][0].String() != "2" {
		t.Errorf("rows left = %v", got.Rows[0])
	}
	res = mustExec(t, e, `delete from KV`)
	if res.Affected != 2 {
		t.Errorf("delete all affected %d", res.Affected)
	}
	mustExec(t, e, `create table S (v integer)`)
	execErr(t, e, `delete from S`)
}

func TestParserErrors(t *testing.T) {
	e := newTestEngine()
	cases := []string{
		``,
		`banana`,
		`select`,
		`select * from`,
		`select * frm T`,
		`insert T values (1)`,
		`insert into T values`,
		`select * from T where`,
		`select * from T order by`,
		`select a from T group`,
		`select count( from T`,
		`select * from T since`,
		`select 'unterminated from T`,
		`select * from T; extra`,
		`select @ from T`,
	}
	for _, src := range cases {
		if _, err := ExecString(e, src); err == nil {
			t.Errorf("%q: expected parse/exec error", src)
		}
	}
}

func TestSelectAgainstMissingTable(t *testing.T) {
	e := newTestEngine()
	execErr(t, e, `select * from Nope`)
	execErr(t, e, `insert into Nope values (1)`)
	execErr(t, e, `update Nope set v = 1`)
	execErr(t, e, `delete from Nope`)
}

func TestStringEscapesAndComments(t *testing.T) {
	e := newTestEngine()
	mustExec(t, e, `create table T (s varchar) -- trailing comment`)
	mustExec(t, e, `insert into T values ('it''s')`)
	res := mustExec(t, e, `select s from T`)
	if res.Rows[0][0].String() != "it's" {
		t.Errorf("escaped quote = %q", res.Rows[0][0])
	}
	mustExec(t, e, `insert into T values ("double")`)
	res = mustExec(t, e, `select count(*) from T where s = "double"`)
	if res.Rows[0][0].String() != "1" {
		t.Error("double-quoted strings should work")
	}
}

func TestNowFunction(t *testing.T) {
	e := newTestEngine()
	mustExec(t, e, `create table T (v integer)`)
	mustExec(t, e, `insert into T values (1)`)
	// now() = clock (1001 after one insert); every tuple is older.
	res := mustExec(t, e, `select * from T where tstamp <= now()`)
	if len(res.Rows) != 1 {
		t.Errorf("now() comparison failed: %d rows", len(res.Rows))
	}
	res = mustExec(t, e, `select * from T since now()`)
	if len(res.Rows) != 0 {
		t.Errorf("since now() should exclude existing rows, got %d", len(res.Rows))
	}
}

func TestSelectBooleanLiteralsAndUnaryMinus(t *testing.T) {
	e := newTestEngine()
	mustExec(t, e, `create table B (flag boolean, v integer)`)
	mustExec(t, e, `insert into B values (true, -5)`)
	mustExec(t, e, `insert into B values (false, 5)`)
	res := mustExec(t, e, `select v from B where flag = true`)
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "-5" {
		t.Errorf("bool filter = %+v", res.Rows)
	}
	res = mustExec(t, e, `select v from B where v < -1`)
	if len(res.Rows) != 1 {
		t.Errorf("negative literal filter = %d rows", len(res.Rows))
	}
}
