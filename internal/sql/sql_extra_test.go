package sql

import (
	"fmt"
	"testing"
)

func TestSelectExpressionsWithoutTableColumns(t *testing.T) {
	e := newTestEngine()
	mustExec(t, e, `create table T (v integer)`)
	mustExec(t, e, `insert into T values (1)`)
	res := mustExec(t, e, `select 1 + 2 as three, 'label' from T`)
	if res.Rows[0][0].String() != "3" || res.Rows[0][1].String() != "label" {
		t.Errorf("constant projection = %+v", res.Rows[0])
	}
}

func TestWhereOnPersistentTemporalOrder(t *testing.T) {
	e := newTestEngine()
	mustExec(t, e, `create persistenttable KV (k varchar primary key, v integer)`)
	mustExec(t, e, `insert into KV values ('a', 1)`)
	mustExec(t, e, `insert into KV values ('b', 2)`)
	mustExec(t, e, `insert into KV values ('a', 3)`) // refresh: a moves last
	res := mustExec(t, e, `select k from KV`)
	if len(res.Rows) != 2 || res.Rows[0][0].String() != "b" || res.Rows[1][0].String() != "a" {
		t.Errorf("temporal order after upsert = %+v", res.Rows)
	}
}

func TestGroupByWithWhereAndWindow(t *testing.T) {
	e := newTestEngine()
	mustExec(t, e, `create table T (g varchar, v integer)`)
	for i := 1; i <= 10; i++ {
		g := "a"
		if i%2 == 0 {
			g = "b"
		}
		mustExec(t, e, fmt.Sprintf(`insert into T values ('%s', %d)`, g, i))
	}
	// Last 6 rows = 5..10; where v > 5 keeps 6..10; groups: a{7,9} b{6,8,10}.
	res := mustExec(t, e, `select g, count(*) as n, sum(v) as s from T [rows 6] where v > 5 group by g order by g`)
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	if res.Rows[0][0].String() != "a" || res.Rows[0][1].String() != "2" || res.Rows[0][2].String() != "16" {
		t.Errorf("group a = %+v", res.Rows[0])
	}
	if res.Rows[1][0].String() != "b" || res.Rows[1][1].String() != "3" || res.Rows[1][2].String() != "24" {
		t.Errorf("group b = %+v", res.Rows[1])
	}
}

func TestOrderByTstampDesc(t *testing.T) {
	e := newTestEngine()
	mustExec(t, e, `create table T (v integer)`)
	for i := 1; i <= 3; i++ {
		mustExec(t, e, fmt.Sprintf(`insert into T values (%d)`, i))
	}
	res := mustExec(t, e, `select tstamp, v from T order by tstamp desc limit 1`)
	if res.Rows[0][1].String() != "3" {
		t.Errorf("latest row = %+v", res.Rows[0])
	}
}

func TestAvgOfIntsIsReal(t *testing.T) {
	e := newTestEngine()
	mustExec(t, e, `create table T (v integer)`)
	mustExec(t, e, `insert into T values (1)`)
	mustExec(t, e, `insert into T values (2)`)
	res := mustExec(t, e, `select avg(v) from T`)
	if f, ok := res.Rows[0][0].AsReal(); !ok || f != 1.5 {
		t.Errorf("avg = %v", res.Rows[0][0])
	}
	// sum of ints stays int.
	res = mustExec(t, e, `select sum(v) from T`)
	if _, ok := res.Rows[0][0].AsInt(); !ok {
		t.Errorf("sum kind = %v", res.Rows[0][0].Kind())
	}
	// sum over reals is real.
	mustExec(t, e, `create table R (v real)`)
	mustExec(t, e, `insert into R values (1.5)`)
	res = mustExec(t, e, `select sum(v) from R`)
	if _, ok := res.Rows[0][0].AsReal(); !ok {
		t.Errorf("real sum kind = %v", res.Rows[0][0].Kind())
	}
}

func TestUpdateArithmeticReferencesOldRow(t *testing.T) {
	e := newTestEngine()
	mustExec(t, e, `create persistenttable KV (k varchar primary key, v integer)`)
	mustExec(t, e, `insert into KV values ('a', 10)`)
	mustExec(t, e, `update KV set v = v + v`)
	res := mustExec(t, e, `select v from KV`)
	if res.Rows[0][0].String() != "20" {
		t.Errorf("v = %v", res.Rows[0][0])
	}
}

func TestDivisionByZeroInWhereSurfaces(t *testing.T) {
	e := newTestEngine()
	mustExec(t, e, `create table T (v integer)`)
	mustExec(t, e, `insert into T values (0)`)
	execErr(t, e, `select * from T where 1 / v = 1`)
}

func TestWhereMustBeBoolean(t *testing.T) {
	e := newTestEngine()
	mustExec(t, e, `create table T (v integer)`)
	mustExec(t, e, `insert into T values (1)`)
	execErr(t, e, `select * from T where v`)
	execErr(t, e, `update T set v = 1 where v`)
}

func TestGroupByStarRequiresExplicitList(t *testing.T) {
	e := newTestEngine()
	mustExec(t, e, `create table T (g varchar, v integer)`)
	mustExec(t, e, `insert into T values ('a', 1)`)
	execErr(t, e, `select * from T group by g`)
}

func TestSinceWithExpression(t *testing.T) {
	e := newTestEngine()
	mustExec(t, e, `create table T (v integer)`)
	for i := 0; i < 3; i++ {
		mustExec(t, e, fmt.Sprintf(`insert into T values (%d)`, i))
	}
	// TS are 1001..1003; since 1000+1 excludes the first row.
	res := mustExec(t, e, `select count(*) from T since 1000 + 1`)
	if res.Rows[0][0].String() != "2" {
		t.Errorf("since expr = %v", res.Rows[0][0])
	}
	execErr(t, e, `select * from T since 'text'`)
}

func TestAggregatesRespectWhereBeforeGrouping(t *testing.T) {
	e := newTestEngine()
	mustExec(t, e, `create table T (g varchar, v integer)`)
	mustExec(t, e, `insert into T values ('a', 1)`)
	mustExec(t, e, `insert into T values ('a', 100)`)
	res := mustExec(t, e, `select g, max(v) from T where v < 50 group by g`)
	if res.Rows[0][1].String() != "1" {
		t.Errorf("where-then-group = %+v", res.Rows[0])
	}
}

func TestMinMaxOverTstamp(t *testing.T) {
	e := newTestEngine()
	mustExec(t, e, `create table T (v integer)`)
	mustExec(t, e, `insert into T values (1)`)
	mustExec(t, e, `insert into T values (2)`)
	res := mustExec(t, e, `select min(tstamp), max(tstamp) from T`)
	lo, _ := res.Rows[0][0].AsStamp()
	hi, _ := res.Rows[0][1].AsStamp()
	if lo >= hi {
		t.Errorf("tstamp min/max = %v, %v", lo, hi)
	}
}

func TestShowTablesAndDescribe(t *testing.T) {
	e := newTestEngine()
	mustExec(t, e, `create table S (v integer)`)
	mustExec(t, e, `create persistenttable P (k varchar primary key, v integer)`)
	mustExec(t, e, `insert into S values (1)`)
	mustExec(t, e, `insert into S values (2)`)

	res := mustExec(t, e, `show tables`)
	if len(res.Rows) != 2 {
		t.Fatalf("show tables rows = %d", len(res.Rows))
	}
	// Sorted: P then S.
	if res.Rows[0][0].String() != "P" || res.Rows[0][1].String() != "persistent" {
		t.Errorf("row P = %+v", res.Rows[0])
	}
	if res.Rows[1][0].String() != "S" || res.Rows[1][1].String() != "stream" ||
		res.Rows[1][2].String() != "2" {
		t.Errorf("row S = %+v", res.Rows[1])
	}

	res = mustExec(t, e, `describe P`)
	if len(res.Rows) != 2 {
		t.Fatalf("describe rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].String() != "k" || res.Rows[0][2].String() != "primary key" {
		t.Errorf("describe k = %+v", res.Rows[0])
	}
	// desc alias works; unknown table errors.
	mustExec(t, e, `desc S`)
	execErr(t, e, `describe Nope`)
	execErr(t, e, `show banana`)
}

func TestMultiRowInsert(t *testing.T) {
	e := newTestEngine()
	mustExec(t, e, `create table T (g varchar, v integer)`)
	res := mustExec(t, e, `insert into T values ('a', 1), ('b', 2), ('c', 3)`)
	if res.Affected != 3 {
		t.Fatalf("Affected = %d, want 3", res.Affected)
	}
	got := mustExec(t, e, `select g, v from T`)
	if len(got.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(got.Rows))
	}
	for i, want := range []string{"a", "b", "c"} {
		if got.Rows[i][0].String() != want ||
			got.Rows[i][1].String() != fmt.Sprint(i+1) {
			t.Errorf("row %d = %+v", i, got.Rows[i])
		}
	}
}

func TestMultiRowInsertWithColumnList(t *testing.T) {
	e := newTestEngine()
	mustExec(t, e, `create table T (a integer, b varchar)`)
	mustExec(t, e, `insert into T (b, a) values ('x', 1), ('y', 2)`)
	res := mustExec(t, e, `select a, b from T`)
	if len(res.Rows) != 2 ||
		res.Rows[0][0].String() != "1" || res.Rows[0][1].String() != "x" ||
		res.Rows[1][0].String() != "2" || res.Rows[1][1].String() != "y" {
		t.Errorf("column-list batch insert = %+v", res.Rows)
	}
}

func TestMultiRowInsertUpsertLastWins(t *testing.T) {
	e := newTestEngine()
	mustExec(t, e, `create persistenttable KV (k varchar primary key, v integer)`)
	mustExec(t, e, `insert into KV values ('a', 1), ('b', 2), ('a', 3)`)
	res := mustExec(t, e, `select k, v from KV where k = 'a'`)
	if len(res.Rows) != 1 || res.Rows[0][1].String() != "3" {
		t.Errorf("later duplicate key in batch should win: %+v", res.Rows)
	}
}

func TestMultiRowInsertBadRowRejectsWholeBatch(t *testing.T) {
	e := newTestEngine()
	mustExec(t, e, `create table T (v integer)`)
	execErr(t, e, `insert into T values (1), ('not-an-int'), (3)`)
	res := mustExec(t, e, `select count(*) as n from T`)
	if res.Rows[0][0].String() != "0" {
		t.Errorf("failed batch must not partially apply: %+v", res.Rows)
	}
}

func TestMultiRowInsertSyntaxErrors(t *testing.T) {
	e := newTestEngine()
	mustExec(t, e, `create table T (v integer)`)
	execErr(t, e, `insert into T values (1), `)
	execErr(t, e, `insert into T values (1),, (2)`)
	execErr(t, e, `insert into T values`)
}
