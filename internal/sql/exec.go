package sql

import (
	"fmt"
	"sort"

	"unicache/internal/table"
	"unicache/internal/types"
)

// Engine is the storage/commit surface the executor runs against. The
// cache implements it; inserts must flow through the cache commit path so
// that each stored tuple is also published on the table's topic. Every
// statement in this dialect targets exactly one table, so each statement
// commits inside exactly one of the engine's per-topic commit domains:
// concurrent statements against different tables never serialise against
// each other, while statements against the same table are totally ordered
// by that table's domain.
type Engine interface {
	// LookupTable resolves a table by name.
	LookupTable(name string) (table.Table, error)
	// CreateTable installs a new table (and its topic and commit domain).
	CreateTable(schema *types.Schema) error
	// CommitInsert coerces, stamps, stores and publishes one tuple.
	CommitInsert(tableName string, vals []types.Value) error
	// CommitBatch coerces, stamps, stores and publishes a run of tuples as
	// one commit under the table's commit domain: per-topic contiguous
	// sequence numbers, one shared timestamp, one publication per
	// subscriber. Multi-row inserts and update re-commits flow through it.
	CommitBatch(tableName string, rows [][]types.Value) error
	// DeleteRow removes a persistent row by key, reporting whether it
	// existed. The engine orders the delete within the table's commit
	// domain.
	DeleteRow(tableName, key string) (bool, error)
	// Tables lists the table (= topic) names.
	Tables() []string
	// Now returns the engine clock.
	Now() types.Timestamp
}

// Exec runs a parsed statement against the engine.
func Exec(eng Engine, st Stmt) (*Result, error) {
	switch s := st.(type) {
	case *CreateStmt:
		if err := eng.CreateTable(s.Schema); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *InsertStmt:
		return execInsert(eng, s)
	case *SelectStmt:
		return execSelect(eng, s)
	case *UpdateStmt:
		return execUpdate(eng, s)
	case *DeleteStmt:
		return execDelete(eng, s)
	case *ShowTablesStmt:
		return execShowTables(eng)
	case *DescribeStmt:
		return execDescribe(eng, s)
	}
	return nil, fmt.Errorf("sql: unsupported statement %T", st)
}

func execShowTables(eng Engine) (*Result, error) {
	res := &Result{Cols: []string{"table", "kind", "rows"}}
	for _, name := range eng.Tables() {
		tb, err := eng.LookupTable(name)
		if err != nil {
			return nil, err
		}
		kind := "stream"
		if tb.Schema().Persistent {
			kind = "persistent"
		}
		res.Rows = append(res.Rows, []types.Value{
			types.Str(name), types.Str(kind), types.Int(int64(tb.Len())),
		})
	}
	return res, nil
}

func execDescribe(eng Engine, s *DescribeStmt) (*Result, error) {
	tb, err := eng.LookupTable(s.Table)
	if err != nil {
		return nil, err
	}
	schema := tb.Schema()
	res := &Result{Cols: []string{"column", "type", "key"}}
	for i, col := range schema.Cols {
		key := ""
		if schema.Persistent && i == schema.Key {
			key = "primary key"
		} else if !schema.Persistent && i == 0 {
			// Informational: streams are keyed by insertion time.
		}
		res.Rows = append(res.Rows, []types.Value{
			types.Str(col.Name), types.Str(col.Type.String()), types.Str(key),
		})
	}
	return res, nil
}

// ExecString parses and runs one statement.
func ExecString(eng Engine, src string) (*Result, error) {
	p := &Parser{Now: eng.Now}
	st, err := p.ParseStmt(src)
	if err != nil {
		return nil, err
	}
	return Exec(eng, st)
}

func execInsert(eng Engine, s *InsertStmt) (*Result, error) {
	tb, err := eng.LookupTable(s.Table)
	if err != nil {
		return nil, err
	}
	schema := tb.Schema()
	// Note: the paper's on-duplicate-key-update modifier is implicit for
	// persistent tables in this implementation (upsert is the only insert
	// semantics a keyed heap supports); the parser accepts the modifier for
	// compatibility. Using it on an ephemeral table is an error.
	if s.OnDup && !schema.Persistent {
		return nil, fmt.Errorf("sql: on duplicate key update needs a persistent table, %s is a stream", s.Table)
	}
	rows := make([][]types.Value, len(s.Rows))
	for r, exprs := range s.Rows {
		vals := make([]types.Value, len(exprs))
		for i, e := range exprs {
			v, err := e.Eval(nil)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		if len(s.Cols) > 0 {
			reordered, err := reorderByColumns(schema, s.Cols, vals)
			if err != nil {
				return nil, err
			}
			vals = reordered
		}
		rows[r] = vals
	}
	if err := eng.CommitBatch(s.Table, rows); err != nil {
		return nil, err
	}
	return &Result{Affected: len(rows)}, nil
}

func reorderByColumns(schema *types.Schema, cols []string, vals []types.Value) ([]types.Value, error) {
	if len(cols) != len(vals) {
		return nil, fmt.Errorf("sql: %d columns but %d values", len(cols), len(vals))
	}
	if len(cols) != schema.NumCols() {
		return nil, fmt.Errorf("sql: table %s has %d columns, insert names %d (partial inserts are not supported)",
			schema.Name, schema.NumCols(), len(cols))
	}
	out := make([]types.Value, schema.NumCols())
	seen := make([]bool, schema.NumCols())
	for i, c := range cols {
		idx := schema.ColIndex(c)
		if idx < 0 {
			return nil, fmt.Errorf("sql: table %s has no column %q", schema.Name, c)
		}
		if seen[idx] {
			return nil, fmt.Errorf("sql: column %q named twice", c)
		}
		seen[idx] = true
		out[idx] = vals[i]
	}
	return out, nil
}

func execSelect(eng Engine, s *SelectStmt) (*Result, error) {
	tb, err := eng.LookupTable(s.Table)
	if err != nil {
		return nil, err
	}
	schema := tb.Schema()

	rows, err := gatherRows(eng, tb, &s.Window)
	if err != nil {
		return nil, err
	}

	if s.Where != nil {
		kept := rows[:0]
		for _, t := range rows {
			v, err := s.Where.Eval(tupleRow{schema: schema, tuple: t})
			if err != nil {
				return nil, err
			}
			b, ok := v.AsBool()
			if !ok {
				return nil, fmt.Errorf("sql: where clause must be boolean, got %s", v.Kind())
			}
			if b {
				kept = append(kept, t)
			}
		}
		rows = kept
	}

	hasAgg := false
	for _, item := range s.Items {
		if item.Agg != "" {
			hasAgg = true
			break
		}
	}

	var res *Result
	switch {
	case s.GroupBy != "" || hasAgg:
		res, err = aggregate(schema, s, rows)
	default:
		res, err = project(schema, s, rows)
	}
	if err != nil {
		return nil, err
	}

	if s.Order != nil {
		if err := orderResult(res, s.Order); err != nil {
			return nil, err
		}
	}
	if s.Limit > 0 && len(res.Rows) > s.Limit {
		res.Rows = res.Rows[:s.Limit]
	}
	return res, nil
}

func gatherRows(eng Engine, tb table.Table, w *WindowClause) ([]*types.Tuple, error) {
	var since types.Timestamp = -1
	if w.Since != nil {
		v, err := w.Since.Eval(nil)
		if err != nil {
			return nil, err
		}
		n, ok := v.NumAsInt()
		if !ok {
			return nil, fmt.Errorf("sql: since expects a tstamp, got %s", v.Kind())
		}
		since = types.Timestamp(n)
	}
	if w.Range > 0 {
		cut := eng.Now().Add(-w.Range)
		if cut > since {
			since = cut
		}
	}
	var rows []*types.Tuple
	collect := func(t *types.Tuple) bool {
		rows = append(rows, t)
		return true
	}
	if since >= 0 {
		tb.ScanSince(since, collect)
	} else {
		tb.Scan(collect)
	}
	if w.Rows > 0 && len(rows) > w.Rows {
		rows = rows[len(rows)-w.Rows:]
	}
	return rows, nil
}

func project(schema *types.Schema, s *SelectStmt, rows []*types.Tuple) (*Result, error) {
	res := &Result{}
	if s.Items == nil { // select *
		for _, c := range schema.Cols {
			res.Cols = append(res.Cols, c.Name)
		}
		for _, t := range rows {
			res.Rows = append(res.Rows, append([]types.Value(nil), t.Vals...))
		}
		return res, nil
	}
	for _, item := range s.Items {
		res.Cols = append(res.Cols, item.As)
	}
	for _, t := range rows {
		ctx := tupleRow{schema: schema, tuple: t}
		out := make([]types.Value, len(s.Items))
		for i, item := range s.Items {
			v, err := item.Expr.Eval(ctx)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

// aggState accumulates one aggregate over one group.
type aggState struct {
	count int64
	sum   float64
	sumI  int64
	isInt bool
	first bool
	min   types.Value
	max   types.Value
}

func (a *aggState) observe(v types.Value) error {
	a.count++
	switch v.Kind() {
	case types.KindInt, types.KindTstamp:
		n, _ := v.NumAsInt()
		a.sumI += n
		a.sum += float64(n)
		if !a.first {
			a.isInt = true
		}
	case types.KindReal:
		f, _ := v.AsReal()
		a.sum += f
		a.isInt = false
	default:
		// min/max still work for strings; sum/avg will reject later.
		a.sum = 0
	}
	if !a.first {
		a.first = true
		a.min, a.max = v, v
		return nil
	}
	if c, err := types.Compare(v, a.min); err == nil && c < 0 {
		a.min = v
	}
	if c, err := types.Compare(v, a.max); err == nil && c > 0 {
		a.max = v
	}
	return nil
}

func (a *aggState) result(fn string, argKind types.Kind) (types.Value, error) {
	switch fn {
	case "count":
		return types.Int(a.count), nil
	case "sum":
		if !argKind.Numeric() && a.count > 0 {
			return types.Nil, fmt.Errorf("sql: sum needs a numeric column")
		}
		if a.isInt {
			return types.Int(a.sumI), nil
		}
		return types.Real(a.sum), nil
	case "avg":
		if a.count == 0 {
			return types.Real(0), nil
		}
		if !argKind.Numeric() {
			return types.Nil, fmt.Errorf("sql: avg needs a numeric column")
		}
		return types.Real(a.sum / float64(a.count)), nil
	case "min":
		if !a.first {
			return types.Nil, nil
		}
		return a.min, nil
	case "max":
		if !a.first {
			return types.Nil, nil
		}
		return a.max, nil
	}
	return types.Nil, fmt.Errorf("sql: unknown aggregate %q", fn)
}

func aggregate(schema *types.Schema, s *SelectStmt, rows []*types.Tuple) (*Result, error) {
	if s.Items == nil {
		return nil, fmt.Errorf("sql: group by requires an explicit select list")
	}
	type group struct {
		key    string
		sample *types.Tuple
		states []*aggState
	}
	newGroup := func(key string, sample *types.Tuple) *group {
		g := &group{key: key, sample: sample, states: make([]*aggState, len(s.Items))}
		for i := range g.states {
			g.states[i] = &aggState{}
		}
		return g
	}

	groups := make(map[string]*group)
	var order []*group
	for _, t := range rows {
		key := ""
		if s.GroupBy != "" {
			ctx := tupleRow{schema: schema, tuple: t}
			kv, err := ctx.Col(s.GroupBy)
			if err != nil {
				return nil, err
			}
			key = types.KeyString(kv)
		}
		g, ok := groups[key]
		if !ok {
			g = newGroup(key, t)
			groups[key] = g
			order = append(order, g)
		}
		ctx := tupleRow{schema: schema, tuple: t}
		for i, item := range s.Items {
			if item.Agg == "" {
				continue
			}
			if item.Star {
				g.states[i].count++
				continue
			}
			v, err := item.Expr.Eval(ctx)
			if err != nil {
				return nil, err
			}
			if err := g.states[i].observe(v); err != nil {
				return nil, err
			}
		}
	}
	// Aggregates over zero rows (no group by) still produce one row.
	if len(order) == 0 && s.GroupBy == "" {
		order = append(order, newGroup("", nil))
	}

	res := &Result{}
	for _, item := range s.Items {
		res.Cols = append(res.Cols, item.As)
	}
	for _, g := range order {
		out := make([]types.Value, len(s.Items))
		for i, item := range s.Items {
			if item.Agg != "" {
				argKind := types.KindInt
				if !item.Star && g.sample != nil {
					ctx := tupleRow{schema: schema, tuple: g.sample}
					if v, err := item.Expr.Eval(ctx); err == nil {
						argKind = v.Kind()
					}
				}
				v, err := g.states[i].result(item.Agg, argKind)
				if err != nil {
					return nil, err
				}
				out[i] = v
				continue
			}
			// Non-aggregate item inside an aggregate query: evaluate on a
			// representative row of the group (the group-by column is the
			// intended use).
			if g.sample == nil {
				out[i] = types.Nil
				continue
			}
			v, err := item.Expr.Eval(tupleRow{schema: schema, tuple: g.sample})
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

func orderResult(res *Result, ob *OrderBy) error {
	idx := -1
	for i, c := range res.Cols {
		if eqFold(c, ob.Col) {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("sql: order by column %q is not in the select list", ob.Col)
	}
	var sortErr error
	sort.SliceStable(res.Rows, func(i, j int) bool {
		c, err := types.Compare(res.Rows[i][idx], res.Rows[j][idx])
		if err != nil && sortErr == nil {
			sortErr = err
		}
		if ob.Desc {
			return c > 0
		}
		return c < 0
	})
	return sortErr
}

func execUpdate(eng Engine, s *UpdateStmt) (*Result, error) {
	tb, err := eng.LookupTable(s.Table)
	if err != nil {
		return nil, err
	}
	schema := tb.Schema()
	if !schema.Persistent {
		return nil, fmt.Errorf("sql: update needs a persistent table, %s is an append-only stream", s.Table)
	}
	colIdx := make([]int, len(s.Cols))
	for i, c := range s.Cols {
		idx := schema.ColIndex(c)
		if idx < 0 {
			return nil, fmt.Errorf("sql: table %s has no column %q", s.Table, c)
		}
		colIdx[i] = idx
	}

	// Collect matching rows first, then re-insert through the commit path so
	// updates are published like any other event.
	var updated [][]types.Value
	var scanErr error
	tb.Scan(func(t *types.Tuple) bool {
		ctx := tupleRow{schema: schema, tuple: t}
		if s.Where != nil {
			v, err := s.Where.Eval(ctx)
			if err != nil {
				scanErr = err
				return false
			}
			b, ok := v.AsBool()
			if !ok {
				scanErr = fmt.Errorf("sql: where clause must be boolean")
				return false
			}
			if !b {
				return true
			}
		}
		vals := append([]types.Value(nil), t.Vals...)
		for i, e := range s.Vals {
			v, err := e.Eval(ctx)
			if err != nil {
				scanErr = err
				return false
			}
			vals[colIdx[i]] = v
		}
		updated = append(updated, vals)
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	// Re-commit all touched rows as one batch: subscribers see the whole
	// update as a contiguous run.
	if err := eng.CommitBatch(s.Table, updated); err != nil {
		return nil, err
	}
	return &Result{Affected: len(updated)}, nil
}

func execDelete(eng Engine, s *DeleteStmt) (*Result, error) {
	tb, err := eng.LookupTable(s.Table)
	if err != nil {
		return nil, err
	}
	schema := tb.Schema()
	pt, ok := tb.(*table.Persistent)
	if !ok || !schema.Persistent {
		return nil, fmt.Errorf("sql: delete needs a persistent table, %s is an append-only stream", s.Table)
	}
	var keys []string
	var scanErr error
	tb.Scan(func(t *types.Tuple) bool {
		if s.Where != nil {
			v, err := s.Where.Eval(tupleRow{schema: schema, tuple: t})
			if err != nil {
				scanErr = err
				return false
			}
			b, bok := v.AsBool()
			if !bok {
				scanErr = fmt.Errorf("sql: where clause must be boolean")
				return false
			}
			if !b {
				return true
			}
		}
		keys = append(keys, pt.KeyOf(t))
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	n := 0
	for _, key := range keys {
		existed, err := eng.DeleteRow(s.Table, key)
		if err != nil {
			return nil, err
		}
		if existed {
			n++
		}
	}
	return &Result{Affected: n}, nil
}
