package sql

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"unicache/internal/types"
)

// Parser turns SQL text into statements. Now supplies the clock used by the
// now() scalar function (defaults to wall clock).
type Parser struct {
	Now func() types.Timestamp

	toks []token
	pos  int
}

// Parse parses a single SQL statement (a trailing semicolon is allowed).
func Parse(src string) (Stmt, error) {
	p := &Parser{Now: types.Now}
	return p.ParseStmt(src)
}

// ParseStmt parses a single statement using the parser's clock.
func (p *Parser) ParseStmt(src string) (Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p.toks, p.pos = toks, 0
	if p.Now == nil {
		p.Now = types.Now
	}
	var st Stmt
	switch {
	case p.peekIdent("create"):
		st, err = p.parseCreate()
	case p.peekIdent("insert"):
		st, err = p.parseInsert()
	case p.peekIdent("select"):
		st, err = p.parseSelect()
	case p.peekIdent("update"):
		st, err = p.parseUpdate()
	case p.peekIdent("delete"):
		st, err = p.parseDelete()
	case p.peekIdent("show"):
		p.pos++
		err = p.expectIdentWord("tables")
		st = &ShowTablesStmt{}
	case p.peekIdent("describe"), p.peekIdent("desc"):
		p.pos++
		var name string
		name, err = p.expectName()
		st = &DescribeStmt{Table: name}
	default:
		return nil, fmt.Errorf("sql: expected a statement, got %q", p.peek().raw)
	}
	if err != nil {
		return nil, err
	}
	p.acceptPunct(";")
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("sql: trailing input starting at %q", p.peek().raw)
	}
	return st, nil
}

// --- token helpers ---

func (p *Parser) peek() token { return p.toks[p.pos] }

func (p *Parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *Parser) peekIdent(word string) bool {
	t := p.peek()
	return t.kind == tokIdent && t.text == word
}

func (p *Parser) acceptIdent(word string) bool {
	if p.peekIdent(word) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectIdentWord(word string) error {
	if !p.acceptIdent(word) {
		return fmt.Errorf("sql: expected %q, got %q", word, p.peek().raw)
	}
	return nil
}

func (p *Parser) acceptPunct(s string) bool {
	t := p.peek()
	if t.kind == tokPunct && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return fmt.Errorf("sql: expected %q, got %q", s, p.peek().raw)
	}
	return nil
}

func (p *Parser) expectName() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sql: expected a name, got %q", t.raw)
	}
	p.pos++
	return t.raw, nil
}

func (p *Parser) expectInt() (int, error) {
	t := p.peek()
	if t.kind != tokNumber || strings.Contains(t.text, ".") {
		return 0, fmt.Errorf("sql: expected an integer, got %q", t.raw)
	}
	p.pos++
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, fmt.Errorf("sql: bad integer %q: %w", t.raw, err)
	}
	return n, nil
}

// --- statements ---

func (p *Parser) parseCreate() (Stmt, error) {
	p.pos++ // create
	persistent := false
	switch {
	case p.acceptIdent("table"):
	case p.acceptIdent("persistenttable"):
		persistent = true
	case p.acceptIdent("persistent"):
		if err := p.expectIdentWord("table"); err != nil {
			return nil, err
		}
		persistent = true
	default:
		return nil, fmt.Errorf("sql: expected TABLE or PERSISTENTTABLE after CREATE, got %q", p.peek().raw)
	}
	name, err := p.expectName()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var cols []types.Column
	key := -1
	for {
		colName, err := p.expectName()
		if err != nil {
			return nil, err
		}
		col, err := p.parseColType(colName)
		if err != nil {
			return nil, err
		}
		if p.acceptIdent("primary") {
			if err := p.expectIdentWord("key"); err != nil {
				return nil, err
			}
			if key >= 0 {
				return nil, fmt.Errorf("sql: table %s declares two primary keys", name)
			}
			key = len(cols)
		}
		cols = append(cols, col)
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if persistent && key < 0 {
		key = 0 // the paper: the primary key is the first defined field
	}
	schema, err := types.NewSchema(name, persistent, key, cols...)
	if err != nil {
		return nil, fmt.Errorf("sql: %w", err)
	}
	return &CreateStmt{Schema: schema}, nil
}

func (p *Parser) parseColType(colName string) (types.Column, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return types.Column{}, fmt.Errorf("sql: expected a type for column %s, got %q", colName, t.raw)
	}
	p.pos++
	col := types.Column{Name: colName}
	switch t.text {
	case "integer", "int", "bigint":
		col.Type = types.ColInt
	case "real", "float", "double":
		col.Type = types.ColReal
	case "varchar", "text", "string":
		col.Type = types.ColVarchar
		if p.acceptPunct("(") {
			n, err := p.expectInt()
			if err != nil {
				return types.Column{}, err
			}
			col.Width = n
			if err := p.expectPunct(")"); err != nil {
				return types.Column{}, err
			}
		}
	case "boolean", "bool":
		col.Type = types.ColBool
	case "tstamp", "timestamp":
		col.Type = types.ColTstamp
	default:
		return types.Column{}, fmt.Errorf("sql: unknown column type %q", t.raw)
	}
	return col, nil
}

func (p *Parser) parseInsert() (Stmt, error) {
	p.pos++ // insert
	if err := p.expectIdentWord("into"); err != nil {
		return nil, err
	}
	name, err := p.expectName()
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: name}
	if p.acceptPunct("(") {
		for {
			col, err := p.expectName()
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, col)
			if p.acceptPunct(",") {
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectIdentWord("values"); err != nil {
		return nil, err
	}
	for {
		row, err := p.parseValueList()
		if err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if p.acceptIdent("on") {
		for _, w := range []string{"duplicate", "key", "update"} {
			if err := p.expectIdentWord(w); err != nil {
				return nil, err
			}
		}
		st.OnDup = true
	}
	return st, nil
}

// parseValueList parses one parenthesised, comma-separated expression list
// — a single VALUES row.
func (p *Parser) parseValueList() ([]Expr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var row []Expr
	for {
		e, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		row = append(row, e)
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return row, nil
}

func (p *Parser) parseSelect() (Stmt, error) {
	p.pos++ // select
	st := &SelectStmt{}
	if p.acceptPunct("*") {
		// all columns
	} else {
		for {
			item, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			st.Items = append(st.Items, item)
			if p.acceptPunct(",") {
				continue
			}
			break
		}
	}
	if err := p.expectIdentWord("from"); err != nil {
		return nil, err
	}
	name, err := p.expectName()
	if err != nil {
		return nil, err
	}
	st.Table = name

	for {
		switch {
		case p.acceptIdent("since"):
			e, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			st.Window.Since = e
		case p.acceptPunct("["):
			if err := p.parseWindowBracket(&st.Window); err != nil {
				return nil, err
			}
		case p.acceptIdent("where"):
			e, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			st.Where = e
		case p.acceptIdent("group"):
			if err := p.expectIdentWord("by"); err != nil {
				return nil, err
			}
			col, err := p.expectName()
			if err != nil {
				return nil, err
			}
			st.GroupBy = col
		case p.acceptIdent("order"):
			if err := p.expectIdentWord("by"); err != nil {
				return nil, err
			}
			col, err := p.expectName()
			if err != nil {
				return nil, err
			}
			ob := &OrderBy{Col: col}
			if p.acceptIdent("desc") {
				ob.Desc = true
			} else {
				p.acceptIdent("asc")
			}
			st.Order = ob
		case p.acceptIdent("limit"):
			n, err := p.expectInt()
			if err != nil {
				return nil, err
			}
			if n <= 0 {
				return nil, fmt.Errorf("sql: limit must be positive")
			}
			st.Limit = n
		default:
			return st, nil
		}
	}
}

func (p *Parser) parseWindowBracket(w *WindowClause) error {
	switch {
	case p.acceptIdent("range"):
		n, err := p.expectInt()
		if err != nil {
			return err
		}
		unit := time.Second
		switch {
		case p.acceptIdent("seconds"), p.acceptIdent("second"), p.acceptIdent("secs"), p.acceptIdent("sec"):
		case p.acceptIdent("minutes"), p.acceptIdent("minute"), p.acceptIdent("mins"), p.acceptIdent("min"):
			unit = time.Minute
		case p.acceptIdent("hours"), p.acceptIdent("hour"):
			unit = time.Hour
		case p.acceptIdent("milliseconds"), p.acceptIdent("ms"):
			unit = time.Millisecond
		default:
			return fmt.Errorf("sql: expected a time unit in [range ...], got %q", p.peek().raw)
		}
		w.Range = time.Duration(n) * unit
	case p.acceptIdent("rows"):
		n, err := p.expectInt()
		if err != nil {
			return err
		}
		if n <= 0 {
			return fmt.Errorf("sql: [rows N] needs N > 0")
		}
		w.Rows = n
	default:
		return fmt.Errorf("sql: expected RANGE or ROWS in window clause, got %q", p.peek().raw)
	}
	return p.expectPunct("]")
}

var aggNames = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	t := p.peek()
	if t.kind == tokIdent && aggNames[t.text] &&
		p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == "(" {
		agg := t.text
		p.pos += 2 // name (
		item := SelectItem{Agg: agg}
		if p.acceptPunct("*") {
			if agg != "count" {
				return SelectItem{}, fmt.Errorf("sql: %s(*) is not supported; only count(*)", agg)
			}
			item.Star = true
		} else {
			e, err := p.parseExpr(0)
			if err != nil {
				return SelectItem{}, err
			}
			item.Expr = e
		}
		if err := p.expectPunct(")"); err != nil {
			return SelectItem{}, err
		}
		item.As = agg + "(" + p.itemArgName(item) + ")"
		if p.acceptIdent("as") {
			name, err := p.expectName()
			if err != nil {
				return SelectItem{}, err
			}
			item.As = name
		}
		return item, nil
	}
	e, err := p.parseExpr(0)
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e, As: e.Name()}
	if p.acceptIdent("as") {
		name, err := p.expectName()
		if err != nil {
			return SelectItem{}, err
		}
		item.As = name
	}
	return item, nil
}

func (p *Parser) itemArgName(item SelectItem) string {
	if item.Star {
		return "*"
	}
	return item.Expr.Name()
}

func (p *Parser) parseUpdate() (Stmt, error) {
	p.pos++ // update
	name, err := p.expectName()
	if err != nil {
		return nil, err
	}
	if err := p.expectIdentWord("set"); err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: name}
	for {
		col, err := p.expectName()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		st.Cols = append(st.Cols, col)
		st.Vals = append(st.Vals, e)
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if p.acceptIdent("where") {
		e, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *Parser) parseDelete() (Stmt, error) {
	p.pos++ // delete
	if err := p.expectIdentWord("from"); err != nil {
		return nil, err
	}
	name, err := p.expectName()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: name}
	if p.acceptIdent("where") {
		e, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

// --- expressions (precedence climbing) ---

func binPrec(op string) int {
	switch op {
	case "or":
		return 1
	case "and":
		return 2
	case "=", "==", "<>", "!=", "<", "<=", ">", ">=":
		return 3
	case "+", "-":
		return 4
	case "*", "/", "%":
		return 5
	}
	return 0
}

func (p *Parser) peekBinOp() (string, bool) {
	t := p.peek()
	switch t.kind {
	case tokPunct:
		if binPrec(t.text) > 0 {
			return t.text, true
		}
	case tokIdent:
		if t.text == "and" || t.text == "or" {
			return t.text, true
		}
	}
	return "", false
}

func (p *Parser) parseExpr(minPrec int) (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op, ok := p.peekBinOp()
		if !ok || binPrec(op) <= minPrec {
			return left, nil
		}
		p.pos++
		right, err := p.parseExpr(binPrec(op))
		if err != nil {
			return nil, err
		}
		left = &binExpr{op: op, l: left, r: right}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.acceptPunct("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{op: "-", x: x}, nil
	}
	if p.acceptIdent("not") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{op: "not", x: x}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.pos++
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("sql: bad number %q: %w", t.raw, err)
			}
			return &litExpr{v: types.Real(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad number %q: %w", t.raw, err)
		}
		return &litExpr{v: types.Int(n)}, nil
	case tokString:
		p.pos++
		return &litExpr{v: types.Str(t.text)}, nil
	case tokIdent:
		switch t.text {
		case "true":
			p.pos++
			return &litExpr{v: types.Bool(true)}, nil
		case "false":
			p.pos++
			return &litExpr{v: types.Bool(false)}, nil
		case "now":
			if p.pos+1 < len(p.toks) && p.toks[p.pos+1].text == "(" {
				p.pos += 2
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				return &callExpr{fn: "now", now: p.Now}, nil
			}
		}
		p.pos++
		return &colExpr{col: t.raw}, nil
	case tokPunct:
		if t.text == "(" {
			p.pos++
			e, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("sql: unexpected token %q in expression", t.raw)
}
