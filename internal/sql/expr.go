package sql

import (
	"fmt"

	"unicache/internal/types"
)

// litExpr is a literal value.
type litExpr struct {
	v types.Value
}

func (e *litExpr) Eval(RowContext) (types.Value, error) { return e.v, nil }
func (e *litExpr) Name() string                         { return e.v.String() }

// colExpr references a column by name.
type colExpr struct {
	col string
}

func (e *colExpr) Eval(row RowContext) (types.Value, error) {
	if row == nil {
		return types.Nil, fmt.Errorf("column %q referenced outside a row context", e.col)
	}
	return row.Col(e.col)
}
func (e *colExpr) Name() string { return e.col }

// unaryExpr is -x or not x.
type unaryExpr struct {
	op string
	x  Expr
}

func (e *unaryExpr) Eval(row RowContext) (types.Value, error) {
	v, err := e.x.Eval(row)
	if err != nil {
		return types.Nil, err
	}
	switch e.op {
	case "-":
		return types.Neg(v)
	case "not":
		return types.Not(v)
	}
	return types.Nil, fmt.Errorf("unknown unary operator %q", e.op)
}
func (e *unaryExpr) Name() string { return e.op + e.x.Name() }

// binExpr is a binary operation.
type binExpr struct {
	op   string
	l, r Expr
}

func (e *binExpr) Eval(row RowContext) (types.Value, error) {
	// Short-circuit logical operators.
	switch e.op {
	case "and", "or":
		lv, err := e.l.Eval(row)
		if err != nil {
			return types.Nil, err
		}
		lb, ok := lv.AsBool()
		if !ok {
			return types.Nil, fmt.Errorf("%s needs bool operands", e.op)
		}
		if e.op == "and" && !lb {
			return types.Bool(false), nil
		}
		if e.op == "or" && lb {
			return types.Bool(true), nil
		}
		rv, err := e.r.Eval(row)
		if err != nil {
			return types.Nil, err
		}
		rb, ok := rv.AsBool()
		if !ok {
			return types.Nil, fmt.Errorf("%s needs bool operands", e.op)
		}
		return types.Bool(rb), nil
	}
	lv, err := e.l.Eval(row)
	if err != nil {
		return types.Nil, err
	}
	rv, err := e.r.Eval(row)
	if err != nil {
		return types.Nil, err
	}
	switch e.op {
	case "+":
		return types.Add(lv, rv)
	case "-":
		return types.Sub(lv, rv)
	case "*":
		return types.Mul(lv, rv)
	case "/":
		return types.Div(lv, rv)
	case "%":
		return types.Mod(lv, rv)
	case "=", "==":
		return types.CompareOp("==", lv, rv)
	case "<>", "!=":
		return types.CompareOp("!=", lv, rv)
	case "<", "<=", ">", ">=":
		return types.CompareOp(e.op, lv, rv)
	}
	return types.Nil, fmt.Errorf("unknown operator %q", e.op)
}
func (e *binExpr) Name() string { return e.l.Name() + e.op + e.r.Name() }

// callExpr supports the scalar function now().
type callExpr struct {
	fn  string
	now func() types.Timestamp
}

func (e *callExpr) Eval(RowContext) (types.Value, error) {
	if e.fn == "now" {
		return types.Stamp(e.now()), nil
	}
	return types.Nil, fmt.Errorf("unknown function %q", e.fn)
}
func (e *callExpr) Name() string { return e.fn + "()" }

// tupleRow adapts a tuple+schema to RowContext; the pseudo-column tstamp
// resolves to the insertion timestamp.
type tupleRow struct {
	schema *types.Schema
	tuple  *types.Tuple
}

func (r tupleRow) Col(name string) (types.Value, error) {
	if i := r.schema.ColIndex(name); i >= 0 {
		return r.tuple.Vals[i], nil
	}
	if eqFold(name, "tstamp") {
		return types.Stamp(r.tuple.TS), nil
	}
	return types.Nil, fmt.Errorf("table %s has no column %q", r.schema.Name, name)
}

func eqFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}
