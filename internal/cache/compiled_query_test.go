package cache

import (
	"testing"
	"time"

	"unicache/internal/cayuga"
	"unicache/internal/types"
)

// TestCompiledCayugaQueryOnLiveCache registers a ToGAPL-compiled Cayuga
// query against a running cache: the §8 vision of higher-level pattern
// languages compiling down to automata, end to end. Auto-created streams
// receive the compiled query's emissions with an inferred schema.
func TestCompiledCayugaQueryOnLiveCache(t *testing.T) {
	c, err := New(Config{TimerPeriod: -1, AutoCreateStreams: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	mustExec(t, c, `create table Stocks (name varchar, price real, volume integer)`)

	src, err := cayuga.ToGAPL(cayuga.RisingRunQuery("Stocks", "Runs", 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(src, func([]types.Value) error { return nil }); err != nil {
		t.Fatalf("compiled query rejected by cache: %v", err)
	}

	feed := func(name string, price float64) {
		t.Helper()
		if err := c.Insert("Stocks", types.Str(name), types.Real(price), types.Int(1)); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range []float64{10, 11, 12, 13, 9} {
		feed("ACME", p)
	}
	if !c.Registry().WaitIdle(5 * time.Second) {
		t.Fatal("not idle")
	}
	res, err := c.Exec(`select count(*) from Runs`)
	if err != nil {
		t.Fatalf("auto-created Runs stream missing: %v", err)
	}
	if res.Rows[0][0].String() != "1" {
		t.Errorf("compiled query found %v maximal runs, want 1", res.Rows[0][0])
	}

	// The compiled double-top query coexists on the same cache.
	src2, err := cayuga.ToGAPL(cayuga.DoubleTopQuery("Stocks", "M"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(src2, func([]types.Value) error { return nil }); err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{10, 14, 20, 17, 15, 17, 19, 16, 14, 13} {
		feed("ZZZ", p)
	}
	if !c.Registry().WaitIdle(5 * time.Second) {
		t.Fatal("not idle")
	}
	res, err = c.Exec(`select count(*) from M`)
	if err != nil {
		t.Fatalf("auto-created M stream missing: %v", err)
	}
	if res.Rows[0][0].String() != "1" {
		t.Errorf("compiled double-top found %v matches, want 1", res.Rows[0][0])
	}
}
