// Package cache implements the paper's core contribution: a centralised,
// topic-based publish/subscribe cache unifying stream-database tables with
// a publish/subscribe infrastructure (§3). Every table doubles as a topic;
// every insert is published to all subscribed automata; ad hoc SQL queries
// (with the continuous extensions) can be issued at any time; GAPL automata
// registered against the cache detect complex event patterns over the
// cached streams and relations.
//
// # Concurrency and ordering contract
//
// The write path is sharded into per-topic commit domains. Each topic owns
// a commitDomain — a mutex, a per-topic sequence counter, the topic's
// table handle and its pubsub.Topic publish handle — created when the
// table is created and resolved lock-free on every commit. A commitDomain
// guarantees, for its topic alone:
//
//   - Sequence numbers are unique, contiguous from 1, and assigned in
//     commit order; every tuple of one CommitBatch carries the same
//     timestamp and a contiguous sequence run.
//   - Sequence assignment, table insertion and topic publication happen
//     atomically under the domain mutex, so every subscriber of the topic
//     observes the identical time-of-insertion order — the paper's §5
//     invariant, which is a per-stream guarantee.
//   - DeleteRow on a persistent table takes the same mutex, so deletes are
//     totally ordered with the topic's commits.
//
// Nothing is guaranteed across topics: commits into different topics take
// different locks and proceed in parallel, and there is no global sequence
// space. A subscriber attached to several topics still sees each topic's
// stream in committed order (events are enqueued into every subscriber's
// inbox under the publishing domain's lock before CommitBatch returns),
// but the interleaving between topics is whatever the scheduler produced.
// Callers that need a cross-topic order must publish into one topic.
//
// Delivery itself is asynchronous: the commit path only enqueues into
// per-subscriber inboxes — consumer code (automaton behaviours, Watch
// callbacks) runs on dedicated dispatcher goroutines, in commit order, off
// the topic lock. A slow consumer therefore delays only itself until its
// bounded inbox fills; what happens then is the subscription's overflow
// policy (pubsub.Block backpressure, pubsub.DropOldest shedding, or
// pubsub.Fail detach — see WatchOpts and Config.AutomatonQueue/Policy).
//
// Watcher ids (Watch) come from a dedicated negative-id counter rather
// than any sequence space, so watcher registration never touches a commit
// domain and is safe while any set of topics is committing. Unsubscribe of
// a watcher stops its dispatcher: queued-but-undelivered events are
// discarded and the callback never runs after Unsubscribe returns.
package cache
