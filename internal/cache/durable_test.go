package cache

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"unicache/internal/automaton"
	"unicache/internal/types"
	"unicache/internal/wal"
)

func newDurableCache(t *testing.T, dir string, mutate func(*Config)) *Cache {
	t.Helper()
	cfg := Config{
		TimerPeriod:       -1,
		MaxAutomatonSteps: 50_000_000,
		PrintWriter:       &strings.Builder{},
		OnRuntimeError: func(id int64, err error) {
			t.Errorf("runtime error (automaton %d): %v", id, err)
		},
		DataDir: dir,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func waitIdle(t *testing.T, c *Cache) {
	t.Helper()
	if !c.Registry().WaitIdle(5 * time.Second) {
		t.Fatal("automata did not quiesce")
	}
}

func selectRows(t *testing.T, c *Cache, q string) [][]types.Value {
	t.Helper()
	res, err := c.Exec(q)
	if err != nil {
		t.Fatalf("exec %q: %v", q, err)
	}
	return res.Rows
}

// accumulator automaton: keeps a running total in an int variable and a
// ROWS window of the last 3 values, mirroring both into the Totals
// persistent table after every reading. Variable state surviving a
// clean restart is only observable if Close snapshots it and reopen
// restores it.
const accumulatorSrc = `
subscribe r to Readings;
associate tot with Totals;
int total, wsum;
window w;
iterator i;
identifier key;
initialization {
	w = Window(int, ROWS, 3);
}
behavior {
	total += r.v;
	append(w, r.v);
	wsum = 0;
	i = Iterator(w);
	while (hasNext(i))
		wsum += next(i);
	key = Identifier('acc');
	insert(tot, key, Sequence('acc', total, wsum));
}
`

func setupDurableTables(t *testing.T, c *Cache) {
	t.Helper()
	mustExec(t, c, `create table Readings (sensor varchar, v integer)`)
	mustExec(t, c, `create persistenttable Totals (name varchar(8) primary key, total integer, wsum integer)`)
}

func readTotals(t *testing.T, c *Cache) (total, wsum int64) {
	t.Helper()
	rows := selectRows(t, c, `select total, wsum from Totals where name = 'acc'`)
	if len(rows) != 1 {
		t.Fatalf("Totals has %d rows for 'acc', want 1", len(rows))
	}
	total, _ = rows[0][0].AsInt()
	wsum, _ = rows[0][1].AsInt()
	return total, wsum
}

func domainSeq(t *testing.T, c *Cache, topic string) uint64 {
	t.Helper()
	st, ok := c.Durability()
	if !ok {
		t.Fatal("Durability() reports not durable")
	}
	for _, d := range st.Domains {
		if d.Topic == topic {
			return d.Seq
		}
	}
	t.Fatalf("no durability domain for %q in %+v", topic, st.Domains)
	return 0
}

// TestDurableReopenEquivalence is the reopen-equivalence case: a cache
// closed cleanly and reopened from its DataDir behaves as if it never
// stopped — table contents, per-topic sequence numbers, and automaton
// variable state (including window contents) all carry over.
func TestDurableReopenEquivalence(t *testing.T) {
	dir := t.TempDir()
	c1 := newDurableCache(t, dir, nil)
	setupDurableTables(t, c1)
	if _, err := c1.Register(accumulatorSrc, automaton.DiscardSink); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		mustExec(t, c1, fmt.Sprintf(`insert into Readings values ('s1', %d)`, i*10))
	}
	waitIdle(t, c1)
	total1, wsum1 := readTotals(t, c1)
	if total1 != 150 || wsum1 != 120 { // 10+..+50; window holds 30,40,50
		t.Fatalf("pre-close totals = (%d, %d), want (150, 120)", total1, wsum1)
	}
	c1.Close()

	c2 := newDurableCache(t, dir, nil)
	defer c2.Close()
	// Tables and rows recovered.
	if got, want := domainSeq(t, c2, "Readings"), uint64(5); got != want {
		t.Fatalf("recovered Readings seq = %d, want %d", got, want)
	}
	if total, wsum := readTotals(t, c2); total != 150 || wsum != 120 {
		t.Fatalf("recovered totals = (%d, %d), want (150, 120)", total, wsum)
	}
	if rows := selectRows(t, c2, `select v from Readings`); len(rows) != 5 {
		t.Fatalf("recovered Readings has %d rows, want 5", len(rows))
	}
	// The automaton came back with its variables: one more reading folds
	// into the *old* running total and the old window tail.
	if got := c2.Registry().Len(); got != 1 {
		t.Fatalf("recovered registry has %d automata, want 1", got)
	}
	mustExec(t, c2, `insert into Readings values ('s1', 7)`)
	waitIdle(t, c2)
	total2, wsum2 := readTotals(t, c2)
	if total2 != 157 {
		t.Fatalf("post-reopen total = %d, want 157 (150 carried over + 7)", total2)
	}
	if wsum2 != 97 { // window now 40,50,7
		t.Fatalf("post-reopen wsum = %d, want 97 (window 40,50,7)", wsum2)
	}
	// Sequence numbers continue contiguously, no reuse.
	if got, want := domainSeq(t, c2, "Readings"), uint64(6); got != want {
		t.Fatalf("Readings seq after new insert = %d, want %d", got, want)
	}
}

// TestDurableCrashReopen abandons the first cache without Close —
// simulating a crash — and asserts every acked commit survives. Automata
// re-register from the meta log but restart from initialization state
// (variable snapshots are written at clean shutdown only).
func TestDurableCrashReopen(t *testing.T) {
	dir := t.TempDir()
	c1 := newDurableCache(t, dir, nil)
	setupDurableTables(t, c1)
	if _, err := c1.Register(accumulatorSrc, automaton.DiscardSink); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		mustExec(t, c1, fmt.Sprintf(`insert into Readings values ('s1', %d)`, i))
	}
	waitIdle(t, c1)
	// No Close: c1 is simply abandoned mid-flight.

	c2 := newDurableCache(t, dir, nil)
	defer c2.Close()
	if got := domainSeq(t, c2, "Readings"); got != 4 {
		t.Fatalf("recovered Readings seq = %d, want 4", got)
	}
	if rows := selectRows(t, c2, `select v from Readings`); len(rows) != 4 {
		t.Fatalf("recovered Readings has %d rows, want 4", len(rows))
	}
	// Totals rows were committed through the persistent domain by the
	// automaton, so they are durable even though its variables are not.
	if total, _ := readTotals(t, c2); total != 10 {
		t.Fatalf("recovered Totals total = %d, want 10", total)
	}
	if got := c2.Registry().Len(); got != 1 {
		t.Fatalf("recovered registry has %d automata, want 1", got)
	}
}

// TestDurableDeleteReplay checks that deletes are part of the log.
func TestDurableDeleteReplay(t *testing.T) {
	dir := t.TempDir()
	c1 := newDurableCache(t, dir, nil)
	mustExec(t, c1, `create persistenttable KV (k varchar(8) primary key, n integer)`)
	mustExec(t, c1, `insert into KV values ('a', 1)`)
	mustExec(t, c1, `insert into KV values ('b', 2)`)
	if existed, err := c1.DeleteRow("KV", "a"); err != nil || !existed {
		t.Fatalf("DeleteRow = (%v, %v)", existed, err)
	}
	// Crash-style reopen: the delete must replay from the log alone.
	c2 := newDurableCache(t, dir, nil)
	defer c2.Close()
	rows := selectRows(t, c2, `select k from KV`)
	if len(rows) != 1 || rows[0][0].String() != "b" {
		t.Fatalf("recovered KV rows = %v, want just 'b'", rows)
	}
	_ = c1
}

// TestDurableSnapshotTruncation drives enough volume through a small
// SnapshotBytes threshold to force snapshots, then verifies the state
// still reopens exactly and the log did not grow without bound.
func TestDurableSnapshotTruncation(t *testing.T) {
	dir := t.TempDir()
	c1 := newDurableCache(t, dir, func(cfg *Config) { cfg.SnapshotBytes = 4096 })
	mustExec(t, c1, `create persistenttable KV (k varchar(16) primary key, n integer)`)
	mustExec(t, c1, `create table S (v integer)`)
	const n = 300
	for i := 0; i < n; i++ {
		mustExec(t, c1, fmt.Sprintf(`insert into KV values ('key-%04d', %d)`, i%50, i))
		mustExec(t, c1, fmt.Sprintf(`insert into S values (%d)`, i))
	}
	st, ok := c1.Durability()
	if !ok || st.Snapshots == 0 {
		t.Fatalf("no snapshots taken (stats %+v)", st)
	}
	c1.Close()

	c2 := newDurableCache(t, dir, nil)
	defer c2.Close()
	if rows := selectRows(t, c2, `select k, n from KV`); len(rows) != 50 {
		t.Fatalf("recovered KV has %d rows, want 50", len(rows))
	}
	// The last writer wins per key: key-0049 last written at i=299.
	rows := selectRows(t, c2, `select n from KV where k = 'key-0049'`)
	if len(rows) != 1 {
		t.Fatalf("key-0049 rows = %v", rows)
	}
	if got, _ := rows[0][0].AsInt(); got != 299 {
		t.Fatalf("key-0049 n = %d, want 299", got)
	}
	// Ephemeral ring: snapshot + replayed tail must not duplicate rows.
	srows := selectRows(t, c2, `select v from S`)
	seen := make(map[int64]bool)
	for _, r := range srows {
		v, _ := r[0].AsInt()
		if seen[v] {
			t.Fatalf("duplicate ring row %d after snapshot replay", v)
		}
		seen[v] = true
	}
	if got, want := domainSeq(t, c2, "S"), uint64(n); got != want {
		t.Fatalf("recovered S seq = %d, want %d", got, want)
	}
}

// --- fault injection through Config.WALFS ---

// flakyFS arms write or fsync failures on demand; until armed it is the
// real filesystem.
type flakyFS struct {
	mu        sync.Mutex
	failWrite bool
	failSync  bool
}

func (f *flakyFS) arm(write, sync bool) {
	f.mu.Lock()
	f.failWrite, f.failSync = write, sync
	f.mu.Unlock()
}

func (f *flakyFS) MkdirAll(dir string) error            { return wal.OS.MkdirAll(dir) }
func (f *flakyFS) ReadFile(path string) ([]byte, error) { return wal.OS.ReadFile(path) }
func (f *flakyFS) ReadDir(dir string) ([]string, error) { return wal.OS.ReadDir(dir) }
func (f *flakyFS) Rename(o, n string) error             { return wal.OS.Rename(o, n) }
func (f *flakyFS) Remove(path string) error             { return wal.OS.Remove(path) }
func (f *flakyFS) Truncate(p string, s int64) error     { return wal.OS.Truncate(p, s) }
func (f *flakyFS) SyncDir(dir string) error             { return wal.OS.SyncDir(dir) }

func (f *flakyFS) OpenAppend(path string) (wal.File, error) {
	inner, err := wal.OS.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &flakyFile{fs: f, inner: inner}, nil
}

type flakyFile struct {
	fs    *flakyFS
	inner wal.File
}

func (ff *flakyFile) Write(b []byte) (int, error) {
	ff.fs.mu.Lock()
	fail := ff.fs.failWrite
	ff.fs.mu.Unlock()
	if fail {
		return 0, fmt.Errorf("injected write failure")
	}
	return ff.inner.Write(b)
}

func (ff *flakyFile) Sync() error {
	ff.fs.mu.Lock()
	fail := ff.fs.failSync
	ff.fs.mu.Unlock()
	if fail {
		return fmt.Errorf("injected fsync failure")
	}
	return ff.inner.Sync()
}

func (ff *flakyFile) Close() error { return ff.inner.Close() }

// TestDurableWriteFailureRollsBack: when the WAL append fails, the commit
// reports the error, the in-memory table never sees the batch, and a
// reopen shows exactly the acked prefix — zero loss, zero phantoms.
func TestDurableWriteFailureRollsBack(t *testing.T) {
	dir := t.TempDir()
	ffs := &flakyFS{}
	c1 := newDurableCache(t, dir, func(cfg *Config) { cfg.WALFS = ffs })
	mustExec(t, c1, `create persistenttable KV (k varchar(8) primary key, n integer)`)
	mustExec(t, c1, `insert into KV values ('a', 1)`)

	ffs.arm(true, false)
	if _, err := c1.Exec(`insert into KV values ('b', 2)`); err == nil {
		t.Fatal("insert with failing WAL write reported no error")
	}
	// The failed batch must not be visible in memory either.
	if rows := selectRows(t, c1, `select k from KV`); len(rows) != 1 {
		t.Fatalf("in-memory KV rows after failed commit = %v, want just 'a'", rows)
	}
	ffs.arm(false, false)
	// The failed write may have left torn bytes at the log's tail, and
	// replay stops there: a record appended after them could be fsynced
	// and acked yet be unrecoverable. The domain is latched failed — even
	// with the fault cleared, commits are refused until reopen.
	if _, err := c1.Exec(`insert into KV values ('c', 3)`); err == nil {
		t.Fatal("insert accepted on the same handle after a WAL write failure")
	}
	c1.Close()

	// Reopening repairs the tail; exactly the acked prefix survives and
	// the recovered domain accepts commits again.
	c2 := newDurableCache(t, dir, nil)
	defer c2.Close()
	mustExec(t, c2, `insert into KV values ('c', 3)`)
	rows := selectRows(t, c2, `select k from KV`)
	got := make(map[string]bool)
	for _, r := range rows {
		got[r[0].String()] = true
	}
	if len(got) != 2 || !got["a"] || !got["c"] {
		t.Fatalf("recovered keys = %v, want {a c}", got)
	}
	if seq := domainSeq(t, c2, "KV"); seq != 2 {
		t.Fatalf("recovered KV seq = %d, want 2 (failed commit's seq rolled back)", seq)
	}
}

// TestDurableFsyncFailureLatchesDomain: the row is written but the ack
// fails; the committer sees the error, and the domain is latched failed —
// a retried fsync on the same fd can falsely report success after the
// kernel dropped the dirty pages (fsyncgate), so no later commit may be
// acked through this handle. Reopening re-verifies from disk and resumes.
func TestDurableFsyncFailureLatchesDomain(t *testing.T) {
	dir := t.TempDir()
	ffs := &flakyFS{}
	c1 := newDurableCache(t, dir, func(cfg *Config) { cfg.WALFS = ffs })
	mustExec(t, c1, `create persistenttable KV (k varchar(8) primary key, n integer)`)

	ffs.arm(false, true)
	if _, err := c1.Exec(`insert into KV values ('a', 1)`); err == nil {
		t.Fatal("insert with failing fsync reported no error")
	}
	ffs.arm(false, false)
	if _, err := c1.Exec(`insert into KV values ('b', 2)`); err == nil {
		t.Fatal("insert accepted on the same handle after an fsync failure")
	}
	c1.Close()

	// The unacked row replays (its write landed; only the ack failed) and
	// the reopened domain accepts commits again.
	c2 := newDurableCache(t, dir, nil)
	defer c2.Close()
	mustExec(t, c2, `insert into KV values ('b', 2)`)
	if rows := selectRows(t, c2, `select k from KV`); len(rows) != 2 {
		t.Fatalf("recovered KV has %d rows, want 2", len(rows))
	}
}

// TestFsyncLatchRetryRecoversWithoutRestart: under FsyncErrorPolicy ==
// wal.FsyncLatchRetry an fsync failure still fails the commit and latches
// the domain, but once the fault clears the next commit restores the
// domain in place — suspect segment abandoned, covering snapshot of the
// in-memory state written past it, latch lifted — with no reopen. While
// the fault persists, recovery attempts fail and the latch stays on.
func TestFsyncLatchRetryRecoversWithoutRestart(t *testing.T) {
	dir := t.TempDir()
	ffs := &flakyFS{}
	c1 := newDurableCache(t, dir, func(cfg *Config) {
		cfg.WALFS = ffs
		cfg.FsyncErrorPolicy = wal.FsyncLatchRetry
		// Failed recovery attempts report through the WAL error hook;
		// here they are the injected fault doing its job, not a bug.
		cfg.OnRuntimeError = func(int64, error) {}
	})
	defer c1.Close()
	mustExec(t, c1, `create persistenttable KV (k varchar(8) primary key, n integer)`)
	mustExec(t, c1, `insert into KV values ('a', 1)`)

	ffs.arm(false, true)
	if _, err := c1.Exec(`insert into KV values ('b', 2)`); err == nil {
		t.Fatal("insert with failing fsync reported no error")
	}
	// The fault persists: the retry's covering snapshot cannot be made
	// durable either, so the commit fails and the domain stays latched.
	if _, err := c1.Exec(`insert into KV values ('c', 3)`); err == nil {
		t.Fatal("insert acked while the covering snapshot cannot be fsynced")
	}

	// Fault cleared: the next commit rotates past the suspect segment,
	// snapshots the authoritative in-memory state and lifts the latch —
	// same handle, no restart. 'b' was applied in memory before its ack
	// failed (exactly the row that replays after a reopen under poison),
	// so the covering snapshot carries it; 'c' never committed — the
	// failed retry latched its commit before the append.
	ffs.arm(false, false)
	mustExec(t, c1, `insert into KV values ('d', 4)`)
	want := map[string]bool{"a": true, "b": true, "d": true}
	keys := func(c *Cache) map[string]bool {
		got := make(map[string]bool)
		for _, r := range selectRows(t, c, `select k from KV`) {
			got[r[0].String()] = true
		}
		return got
	}
	if got := keys(c1); len(got) != len(want) || !got["a"] || !got["b"] || !got["d"] {
		t.Fatalf("post-recovery keys = %v, want {a b d}", got)
	}

	// Restart replays snapshot + post-recovery segment: nothing beyond the
	// covering snapshot resurfaces from the abandoned segment, everything
	// the snapshot covered survives.
	c1.Close()
	c2 := newDurableCache(t, dir, nil)
	defer c2.Close()
	if got := keys(c2); len(got) != len(want) || !got["a"] || !got["b"] || !got["d"] {
		t.Fatalf("recovered keys = %v, want {a b d}", got)
	}
}

// TestDurableUnregisterReplay: an unregistered automaton stays gone.
func TestDurableUnregisterReplay(t *testing.T) {
	dir := t.TempDir()
	c1 := newDurableCache(t, dir, nil)
	setupDurableTables(t, c1)
	a1, err := c1.Register(accumulatorSrc, automaton.DiscardSink)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := c1.Register(accumulatorSrc, automaton.DiscardSink)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Unregister(a1.ID()); err != nil {
		t.Fatal(err)
	}
	c1.Close()

	c2 := newDurableCache(t, dir, nil)
	defer c2.Close()
	if got := c2.Registry().Len(); got != 1 {
		t.Fatalf("recovered registry has %d automata, want 1", got)
	}
	if _, ok := c2.Registry().Get(a2.ID()); !ok {
		t.Fatalf("surviving automaton %d not found after recovery", a2.ID())
	}
	// New registrations do not reuse the old ID.
	a3, err := c2.Register(accumulatorSrc, automaton.DiscardSink)
	if err != nil {
		t.Fatal(err)
	}
	if a3.ID() <= a2.ID() {
		t.Fatalf("new automaton ID %d not above recovered max %d", a3.ID(), a2.ID())
	}
}

// TestInMemoryUnchanged: without DataDir nothing touches disk and
// Durability reports not-durable.
func TestInMemoryUnchanged(t *testing.T) {
	c := newTestCache(t)
	mustExec(t, c, `create table S (v integer)`)
	mustExec(t, c, `insert into S values (1)`)
	if _, ok := c.Durability(); ok {
		t.Fatal("in-memory cache claims to be durable")
	}
}

// TestSnapshotEncodingStable pins that encoding a domain's state is
// byte-deterministic: two encodes of the same state are identical. The
// persistent path feeds ScanOrdered into the encoder, so this regresses
// if map-iteration order ever leaks into snapshot bytes.
func TestSnapshotEncodingStable(t *testing.T) {
	dir := t.TempDir()
	c := newDurableCache(t, dir, nil)
	defer c.Close()
	mustExec(t, c, `create persistenttable KV (k varchar(8) primary key, n integer)`)
	mustExec(t, c, `create table S (v integer)`)
	for i := 0; i < 64; i++ {
		mustExec(t, c, fmt.Sprintf(`insert into KV values ('k%02d', %d)`, (i*37)%64, i))
		mustExec(t, c, fmt.Sprintf(`insert into S values (%d)`, i))
	}
	for _, topic := range []string{"KV", "S"} {
		d, err := c.lookupDomain(topic)
		if err != nil {
			t.Fatal(err)
		}
		encode := func() []byte {
			d.mu.Lock()
			defer d.mu.Unlock()
			payloads, err := encodeDomainState(d)
			if err != nil {
				t.Fatal(err)
			}
			var flat []byte
			for _, p := range payloads {
				flat = append(flat, p...)
			}
			return flat
		}
		a, b := encode(), encode()
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: two encodes of identical state differ (%d vs %d bytes)", topic, len(a), len(b))
		}
	}
}
