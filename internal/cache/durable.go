package cache

// This file is the cache half of the durability subsystem: it interprets
// the records the wal package stores — recovery rebuilds tables, sequence
// counters and automata from them, snapshots encode the live state back
// into them, and the registration hooks keep the meta log current. The
// consistency model is per-domain prefix consistency: each topic recovers
// to an exact prefix of its committed history (everything up to the last
// group commit that reached disk), and independent topics may recover to
// different cut points. See docs/ARCHITECTURE.md, "Durability".

import (
	"fmt"
	"os"
	"sort"
	"sync"

	"unicache/internal/automaton"
	"unicache/internal/pubsub"
	"unicache/internal/table"
	"unicache/internal/tenant"
	"unicache/internal/types"
	"unicache/internal/wal"
)

// snapshotRowsPerRecord bounds how many rows one snapshot record carries,
// keeping individual records well under the WAL's record-size cap.
const snapshotRowsPerRecord = 1024

// reportWALError surfaces a non-fatal durability error (snapshot or
// shutdown failures; commit-path errors are returned to the committer).
func (c *Cache) reportWALError(err error) {
	if c.cfg.OnRuntimeError != nil {
		c.cfg.OnRuntimeError(0, err)
		return
	}
	fmt.Fprintf(os.Stderr, "cache: durability: %v\n", err)
}

// openDurable opens the data directory and recovers every commit domain:
// tables are rebuilt, rows reinstated with their original sequence
// numbers and timestamps, and the per-topic sequence counters positioned
// so the next commit extends the recovered prefix contiguously.
func (c *Cache) openDurable() error {
	m, err := wal.Open(c.cfg.DataDir, wal.Options{
		FS:               c.cfg.WALFS,
		NoSync:           c.cfg.WALNoSync,
		SnapshotBytes:    c.cfg.SnapshotBytes,
		FsyncErrorPolicy: c.cfg.FsyncErrorPolicy,
	})
	if err != nil {
		return err
	}
	c.wal = m

	var mu sync.Mutex
	recovered := make(map[string]*domainRecovery)
	if err := m.Recover(func(name string) (wal.Sink, error) {
		r := &domainRecovery{c: c, name: name}
		mu.Lock()
		recovered[name] = r
		mu.Unlock()
		return r.apply, nil
	}); err != nil {
		return err
	}

	// Install the recovered domains in name order (deterministic topic
	// registration order for Tables()).
	names := make([]string, 0, len(recovered))
	for name := range recovered {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := recovered[name]
		if r.tb == nil {
			// A domain directory without a schema record can only be a
			// crash between directory creation and the schema append; the
			// table never existed as far as any client knows.
			continue
		}
		if err := r.flushRows(); err != nil {
			return fmt.Errorf("cache: recovering %q: %w", name, err)
		}
		if err := c.broker.CreateTopic(name); err != nil {
			return err
		}
		topic, err := c.broker.Topic(name)
		if err != nil {
			return err
		}
		c.domains.Store(name, &commitDomain{
			name:  name,
			table: r.tb,
			topic: topic,
			seq:   r.seq,
			wal:   m.Domain(name),
		})
	}
	return nil
}

// domainRecovery stages one commit domain's replay: the snapshot's rows
// are buffered and flushed (in sequence order, rebuilding the temporal
// order) before the first log record applies on top of them.
type domainRecovery struct {
	c      *Cache
	name   string
	tb     table.Table
	schema *types.Schema
	seq    uint64
	// pending buffers snapshot rows until the first log record (or
	// finalisation) flushes them sorted by sequence number.
	pending []*types.Tuple
}

func (r *domainRecovery) apply(rec any, fromSnapshot bool) error {
	if !fromSnapshot {
		if err := r.flushRows(); err != nil {
			return err
		}
	}
	switch rec := rec.(type) {
	case *wal.SchemaRec:
		if r.tb != nil {
			// The schema reappears when a snapshot's superseded segment
			// escaped its purge; the one already applied wins.
			return nil
		}
		tb, err := table.New(rec.Schema, r.c.cfg.EphemeralCapacity)
		if err != nil {
			return err
		}
		r.tb = tb
		r.schema = rec.Schema
		return nil
	case *wal.SeqRec:
		if rec.Seq > r.seq {
			r.seq = rec.Seq
		}
		return nil
	case *wal.RowsRec:
		if r.tb == nil {
			return fmt.Errorf("rows before schema")
		}
		r.pending = append(r.pending, rec.Tuples...)
		for _, t := range rec.Tuples {
			if t.Seq > r.seq {
				r.seq = t.Seq
			}
		}
		return nil
	case *wal.BatchRec:
		if r.tb == nil {
			return fmt.Errorf("batch before schema")
		}
		tupleArr := make([]types.Tuple, len(rec.Rows))
		tuples := make([]*types.Tuple, len(rec.Rows))
		for i, vals := range rec.Rows {
			tupleArr[i] = types.Tuple{
				Seq:  rec.FirstSeq + uint64(i),
				TS:   rec.TS,
				Vals: vals,
			}
			tuples[i] = &tupleArr[i]
		}
		if err := r.tb.InsertBatch(tuples); err != nil {
			return err
		}
		if last := rec.FirstSeq + uint64(len(rec.Rows)) - 1; last > r.seq {
			r.seq = last
		}
		return nil
	case *wal.DeleteRec:
		pt, ok := r.tb.(*table.Persistent)
		if !ok {
			return fmt.Errorf("delete on non-persistent table")
		}
		pt.Delete(rec.Key)
		return nil
	}
	return fmt.Errorf("unexpected record %T in domain log", rec)
}

// flushRows applies the buffered snapshot rows in ascending sequence
// order: persistent snapshots are written in primary-key order for
// byte-stability, and re-inserting by sequence number reconstructs the
// temporal order exactly.
func (r *domainRecovery) flushRows() error {
	if len(r.pending) == 0 {
		return nil
	}
	if r.tb == nil {
		return fmt.Errorf("rows before schema")
	}
	sort.Slice(r.pending, func(i, j int) bool { return r.pending[i].Seq < r.pending[j].Seq })
	err := r.tb.InsertBatch(r.pending)
	r.pending = nil
	return err
}

// --- snapshots ---

// snapshotDomain cuts one domain's state and supersedes its older log
// segments. The caller must have claimed the domain's snapshot attempt
// (WantsSnapshot or BeginSnapshot). The cut is atomic: the domain mutex
// is held across the segment rotation and the state encoding, so every
// commit is either inside the snapshot or in a post-rotation segment —
// never both, never neither.
func (c *Cache) snapshotDomain(d *commitDomain) error {
	d.mu.Lock()
	epoch, err := d.wal.Rotate()
	if err != nil {
		d.mu.Unlock()
		d.wal.AbortSnapshot()
		return err
	}
	payloads, err := encodeDomainState(d)
	d.mu.Unlock()
	if err != nil {
		d.wal.AbortSnapshot()
		return err
	}
	return d.wal.WriteSnapshot(epoch, payloads)
}

// encodeDomainState renders a domain's full state as snapshot record
// payloads: schema, sequence counter, then the rows in chunks. Persistent
// tables are walked in primary-key order (ScanOrdered) so identical
// contents encode to identical bytes regardless of update history;
// ephemeral rings are walked in ring order (their contents are the
// order). Called with d.mu held.
func encodeDomainState(d *commitDomain) ([][]byte, error) {
	payloads := [][]byte{
		wal.EncodeSchema(d.table.Schema()),
		wal.EncodeSeq(d.seq),
	}
	var tuples []*types.Tuple
	var encErr error
	flush := func() bool {
		if len(tuples) == 0 {
			return true
		}
		p, err := wal.EncodeRows(tuples)
		if err != nil {
			encErr = err
			return false
		}
		payloads = append(payloads, p)
		tuples = tuples[:0]
		return true
	}
	collect := func(t *types.Tuple) bool {
		tuples = append(tuples, t)
		if len(tuples) >= snapshotRowsPerRecord {
			return flush()
		}
		return true
	}
	if pt, ok := d.table.(*table.Persistent); ok {
		pt.ScanOrdered(collect)
	} else {
		d.table.Scan(collect)
	}
	if encErr == nil {
		flush()
	}
	if encErr != nil {
		return nil, encErr
	}
	return payloads, nil
}

// retryLatched attempts to restore a domain latched by a retryable fsync
// failure (Config.FsyncErrorPolicy == wal.FsyncLatchRetry). The suspect
// segment is abandoned, a fresh snapshot of the in-memory state — the
// authoritative state; every acked commit is in it — is written past it,
// and only once that snapshot is durable is the latch lifted. Ordering
// matters: clearing first would let new acked records land beyond a
// possibly-torn mid-chain segment, where recovery's gap quarantine would
// drop them. Failures leave the domain latched; the next commit retries.
func (c *Cache) retryLatched(d *commitDomain) {
	if !d.wal.BeginSnapshot() {
		return
	}
	d.mu.Lock()
	epoch, err := d.wal.RotateRetry()
	if err != nil {
		d.mu.Unlock()
		d.wal.AbortSnapshot()
		c.reportWALError(fmt.Errorf("retrying latched domain %s: %w", d.name, err))
		return
	}
	payloads, err := encodeDomainState(d)
	d.mu.Unlock()
	if err != nil {
		d.wal.AbortSnapshot()
		c.reportWALError(fmt.Errorf("retrying latched domain %s: %w", d.name, err))
		return
	}
	if err := d.wal.WriteSnapshot(epoch, payloads); err != nil {
		c.reportWALError(fmt.Errorf("retrying latched domain %s: %w", d.name, err))
		return
	}
	d.wal.ClearFailure()
}

// --- automata (the meta domain) ---

// logRegister is the registry's OnRegister hook: it makes a successful
// registration durable before the automaton's subscriptions attach.
func (c *Cache) logRegister(a *automaton.Automaton) {
	md := c.wal.Meta()
	if md == nil {
		return
	}
	c.metaMu.Lock()
	defer c.metaMu.Unlock()
	opts := a.InboxOptions()
	payload := wal.EncodeRegister(wal.RegisterRec{
		ID:            a.ID(),
		Source:        a.Source(),
		InboxCapacity: int64(opts.InboxCapacity),
		InboxPolicy:   uint8(opts.InboxPolicy),
		Namespace:     a.Namespace(),
	})
	off, err := md.Append(payload)
	if err == nil {
		err = md.Sync(off)
	}
	if err != nil {
		c.reportWALError(fmt.Errorf("logging registration of automaton %d: %w", a.ID(), err))
	}
}

// logUnregister is the registry's OnUnregister hook (never fired during
// Close: shutdown keeps automata in the durable record).
func (c *Cache) logUnregister(id int64) {
	md := c.wal.Meta()
	if md == nil {
		return
	}
	c.metaMu.Lock()
	defer c.metaMu.Unlock()
	off, err := md.Append(wal.EncodeUnregister(id))
	if err == nil {
		err = md.Sync(off)
	}
	if err != nil {
		c.reportWALError(fmt.Errorf("logging unregistration of automaton %d: %w", id, err))
	}
}

// recoverAutomata replays the meta domain and re-registers the surviving
// automata under their original ids. Variable state is reinstated from
// the last meta snapshot (a clean shutdown); registrations and
// unregistrations since then come from the log. Recovered automata send()
// into a discard sink — the registering application's connection did not
// survive the restart — and an automaton whose source no longer compiles
// is reported through OnRuntimeError and skipped rather than failing the
// open.
func (c *Cache) recoverAutomata() error {
	staged := make(map[int64]*wal.AutomatonRec)
	var nextID uint64
	if err := c.wal.RecoverMeta(func(rec any, _ bool) error {
		switch rec := rec.(type) {
		case *wal.AutomatonRec:
			staged[rec.ID] = rec
		case *wal.RegisterRec:
			// A register racing the snapshot cut may appear both as an
			// AutomatonRec and here; the snapshot's variable state wins.
			if _, dup := staged[rec.ID]; !dup {
				staged[rec.ID] = &wal.AutomatonRec{RegisterRec: *rec}
			}
		case *wal.UnregisterRec:
			delete(staged, rec.ID)
		case *wal.NextIDRec:
			if rec.NextID > nextID {
				nextID = rec.NextID
			}
		default:
			return fmt.Errorf("unexpected record %T in meta log", rec)
		}
		return nil
	}); err != nil {
		return err
	}
	c.reg.EnsureNextID(int64(nextID))

	ids := make([]int64, 0, len(staged))
	for id := range staged {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		rec := staged[id]
		opts := automaton.Options{
			InboxCapacity: int(rec.InboxCapacity),
			InboxPolicy:   pubsub.Policy(rec.InboxPolicy),
		}
		restore := func(st automaton.StateRestorer) error {
			now := c.clock()
			for _, v := range rec.Vars {
				if err := st.RestoreVar(v.Name, v.Value, now); err != nil {
					return err
				}
			}
			return nil
		}
		// A namespaced automaton recovers through its tenant's scoped view
		// so its publishes stay metered and its names stay prefixed; a
		// tenant struck from the config leaves its automata behind (they
		// come back if the tenant does).
		var svc automaton.Services
		if rec.Namespace != "" {
			var t *tenant.Tenant
			ok := false
			if c.cfg.Tenants != nil {
				t, ok = c.cfg.Tenants.Get(rec.Namespace)
			}
			if !ok {
				c.reportWALError(fmt.Errorf("recovering automaton %d: tenant %q not configured; skipped", id, rec.Namespace))
				continue
			}
			svc = c.Scope(t)
		}
		if _, err := c.reg.RegisterRecovered(id, rec.Source, automaton.DiscardSink, opts, svc, rec.Namespace, restore); err != nil {
			c.reportWALError(fmt.Errorf("recovering automaton %d: %w", id, err))
		}
	}
	return nil
}

// snapshotMeta writes the meta snapshot: the id allocator's high-water
// mark and every live automaton with its registration and variable state
// (pattern automata contribute their serialised matching state under
// cep.StateVar). Called from Close while automata are still alive, and
// periodically by the checkpointer. metaMu makes the rotate-and-write
// atomic against the registration hooks' concurrent appends.
func (c *Cache) snapshotMeta() {
	md := c.wal.Meta()
	if md == nil || md.Failed() != nil || !md.BeginSnapshot() {
		return
	}
	c.metaMu.Lock()
	defer c.metaMu.Unlock()
	epoch, err := md.Rotate()
	if err != nil {
		md.AbortSnapshot()
		c.reportWALError(fmt.Errorf("meta snapshot: %w", err))
		return
	}
	payloads := [][]byte{wal.EncodeNextID(uint64(c.reg.NextID()))}
	for _, a := range c.reg.Automata() {
		var vars []wal.VarState
		a.SnapshotVars(func(name string, v types.Value) {
			vars = append(vars, wal.VarState{Name: name, Value: v})
		})
		opts := a.InboxOptions()
		payload, err := wal.EncodeAutomaton(wal.RegisterRec{
			ID:            a.ID(),
			Source:        a.Source(),
			InboxCapacity: int64(opts.InboxCapacity),
			InboxPolicy:   uint8(opts.InboxPolicy),
			Namespace:     a.Namespace(),
		}, vars)
		if err != nil {
			c.reportWALError(fmt.Errorf("meta snapshot: automaton %d: %w", a.ID(), err))
			continue
		}
		payloads = append(payloads, payload)
	}
	if err := md.WriteSnapshot(epoch, payloads); err != nil {
		c.reportWALError(fmt.Errorf("meta snapshot: %w", err))
	}
}

// --- stats ---

// DomainDurability is one commit domain's durability row.
type DomainDurability struct {
	// Topic is the domain's table/topic name.
	Topic string
	// Seq is the domain's current sequence high-water mark.
	Seq uint64
	// WALBytes is the domain's live log footprint.
	WALBytes int64
}

// DurabilityStats reports the durable cache's write-ahead-log state; the
// zero value (Dir == "") means the cache is in-memory.
type DurabilityStats struct {
	// Dir is the data directory.
	Dir string
	// WALBytes is the total live log footprint across all domains.
	WALBytes int64
	// Fsyncs counts fsync calls since open (group commit batches many
	// commits into each).
	Fsyncs uint64
	// Snapshots counts snapshots written since open.
	Snapshots uint64
	// LastSnapshot is when the most recent snapshot was written (zero if
	// none this run).
	LastSnapshot types.Timestamp
	// Replayed counts records applied during recovery at open.
	Replayed uint64
	// TornTails counts log tails dropped during recovery because their
	// final record was torn or corrupt.
	TornTails uint64
	// Domains lists the per-topic rows, in topic-name order.
	Domains []DomainDurability
}

// Durability snapshots the durability counters; ok is false for an
// in-memory cache.
func (c *Cache) Durability() (DurabilityStats, bool) {
	if c.wal == nil {
		return DurabilityStats{}, false
	}
	ws := c.wal.ManagerStats()
	st := DurabilityStats{
		Dir:          ws.Dir,
		WALBytes:     ws.WALBytes,
		Fsyncs:       ws.Fsyncs,
		Snapshots:    ws.Snapshots,
		LastSnapshot: ws.LastSnapshot,
		Replayed:     ws.Replayed,
		TornTails:    ws.TornTails,
	}
	c.domains.Range(func(_, v any) bool {
		d := v.(*commitDomain)
		if d.wal == nil {
			return true
		}
		d.mu.Lock()
		seq := d.seq
		d.mu.Unlock()
		st.Domains = append(st.Domains, DomainDurability{
			Topic:    d.name,
			Seq:      seq,
			WALBytes: d.wal.LiveBytes(),
		})
		return true
	})
	sort.Slice(st.Domains, func(i, j int) bool { return st.Domains[i].Topic < st.Domains[j].Topic })
	return st, true
}
