// Package cache implements the paper's core contribution: a centralised,
// topic-based publish/subscribe cache unifying stream-database tables with
// a publish/subscribe infrastructure (§3). Every table doubles as a topic;
// every insert is published to all subscribed automata; ad hoc SQL queries
// (with the continuous extensions) can be issued at any time; GAPL automata
// registered against the cache detect complex event patterns over the
// cached streams and relations.
package cache

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"unicache/internal/automaton"
	"unicache/internal/pubsub"
	"unicache/internal/sql"
	"unicache/internal/table"
	"unicache/internal/types"
)

// TimerTopic is the built-in topic that delivers a punctuation tuple once
// per period (§4.2); its schema is Timer(ts tstamp).
const TimerTopic = "Timer"

// Config tunes a Cache.
type Config struct {
	// EphemeralCapacity is the ring-buffer size for stream tables
	// (default table.DefaultEphemeralCapacity).
	EphemeralCapacity int
	// TimerPeriod is the built-in Timer topic's period. The paper uses one
	// second; tests and benchmarks may shorten it. Zero means 1s; negative
	// disables the timer.
	TimerPeriod time.Duration
	// Clock overrides the time source (default wall clock).
	Clock func() types.Timestamp
	// PrintWriter receives automata print() output (default os.Stdout).
	PrintWriter io.Writer
	// OnRuntimeError observes automaton behaviour failures.
	OnRuntimeError func(id int64, err error)
	// MaxAutomatonSteps bounds instructions per clause execution (0 =
	// unlimited).
	MaxAutomatonSteps int
	// AutoCreateStreams enables the §8 future-work extension: publishing
	// into a topic that does not exist creates the stream on the fly with
	// a schema inferred from the published values.
	AutoCreateStreams bool
}

// Cache is a working instance of the unified system.
type Cache struct {
	cfg    Config
	broker *pubsub.Broker
	reg    *automaton.Registry
	clock  func() types.Timestamp

	// commitMu serialises the commit path: sequence assignment, table
	// insert and topic publish happen atomically, which is what guarantees
	// that every automaton observes the same global time-of-insertion
	// order (§5).
	commitMu sync.Mutex
	seq      uint64

	tablesMu sync.RWMutex
	tables   map[string]table.Table

	timerStop chan struct{}
	timerDone chan struct{}
	closeOnce sync.Once
}

var (
	_ sql.Engine         = (*Cache)(nil)
	_ automaton.Services = (*Cache)(nil)
	_ pubsub.Subscriber  = (*subscriberFunc)(nil)
)

// subscriberFunc adapts a function to pubsub.Subscriber (used by Watch).
type subscriberFunc struct {
	fn func(*types.Event)
}

func (s *subscriberFunc) Deliver(ev *types.Event) { s.fn(ev) }

func (s *subscriberFunc) DeliverBatch(evs []*types.Event) {
	for _, ev := range evs {
		s.fn(ev)
	}
}

// New creates a cache, installs the built-in Timer table/topic and starts
// the timer.
func New(cfg Config) (*Cache, error) {
	if cfg.Clock == nil {
		cfg.Clock = types.Now
	}
	if cfg.TimerPeriod == 0 {
		cfg.TimerPeriod = time.Second
	}
	c := &Cache{
		cfg:    cfg,
		broker: pubsub.NewBroker(),
		clock:  cfg.Clock,
		tables: make(map[string]table.Table),
	}
	c.reg = automaton.NewRegistry(c, automaton.Config{
		PrintWriter:    cfg.PrintWriter,
		OnRuntimeError: cfg.OnRuntimeError,
		MaxSteps:       cfg.MaxAutomatonSteps,
	})
	timerSchema, err := types.NewSchema(TimerTopic, false, -1,
		types.Column{Name: "ts", Type: types.ColTstamp})
	if err != nil {
		return nil, err
	}
	if err := c.CreateTable(timerSchema); err != nil {
		return nil, err
	}
	if cfg.TimerPeriod > 0 {
		c.timerStop = make(chan struct{})
		c.timerDone = make(chan struct{})
		go c.runTimer(cfg.TimerPeriod)
	}
	return c, nil
}

func (c *Cache) runTimer(period time.Duration) {
	defer close(c.timerDone)
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-c.timerStop:
			return
		case <-tick.C:
			if err := c.CommitInsert(TimerTopic, []types.Value{types.Stamp(c.clock())}); err != nil {
				if c.cfg.OnRuntimeError != nil {
					// The Timer is not an automaton; report under id 0.
					c.cfg.OnRuntimeError(0, fmt.Errorf("timer: %w", err))
				} else {
					fmt.Fprintf(os.Stderr, "cache: timer commit: %v\n", err)
				}
			}
		}
	}
}

// Close stops the timer and all automata.
func (c *Cache) Close() {
	c.closeOnce.Do(func() {
		if c.timerStop != nil {
			close(c.timerStop)
			<-c.timerDone
		}
		c.reg.Close()
	})
}

// Now implements sql.Engine and automaton.Services.
func (c *Cache) Now() types.Timestamp { return c.clock() }

// Registry exposes the automaton registry (for WaitIdle etc.).
func (c *Cache) Registry() *automaton.Registry { return c.reg }

// Broker exposes the pub/sub broker (read-only uses).
func (c *Cache) Broker() *pubsub.Broker { return c.broker }

// --- tables & topics ---

// CreateTable installs a table and its topic. Implements sql.Engine.
func (c *Cache) CreateTable(schema *types.Schema) error {
	if schema == nil {
		return fmt.Errorf("cache: nil schema")
	}
	c.tablesMu.Lock()
	defer c.tablesMu.Unlock()
	if _, dup := c.tables[schema.Name]; dup {
		return fmt.Errorf("cache: table %q already exists", schema.Name)
	}
	tb, err := table.New(schema, c.cfg.EphemeralCapacity)
	if err != nil {
		return err
	}
	if err := c.broker.CreateTopic(schema.Name); err != nil {
		return err
	}
	c.tables[schema.Name] = tb
	return nil
}

// LookupTable implements sql.Engine.
func (c *Cache) LookupTable(name string) (table.Table, error) {
	c.tablesMu.RLock()
	defer c.tablesMu.RUnlock()
	tb, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("cache: no such table %q", name)
	}
	return tb, nil
}

// PersistentTable implements automaton.Services.
func (c *Cache) PersistentTable(name string) (*table.Persistent, error) {
	tb, err := c.LookupTable(name)
	if err != nil {
		return nil, err
	}
	pt, ok := tb.(*table.Persistent)
	if !ok {
		return nil, fmt.Errorf("cache: table %q is not persistent", name)
	}
	return pt, nil
}

// Schemas implements automaton.Services.
func (c *Cache) Schemas() map[string]*types.Schema {
	c.tablesMu.RLock()
	defer c.tablesMu.RUnlock()
	out := make(map[string]*types.Schema, len(c.tables))
	for name, tb := range c.tables {
		out[name] = tb.Schema()
	}
	return out
}

// Tables returns the table names in topic order.
func (c *Cache) Tables() []string { return c.broker.Topics() }

// --- commit path ---

// CommitBatch coerces, stamps, stores and publishes a run of tuples into
// one table as a single commit: all rows are coerced up front (a bad row
// fails the batch before anything is stored), the commit mutex is taken
// once, the batch is assigned a contiguous run of global sequence numbers,
// the table absorbs it via InsertBatch, and the topic's subscribers each
// receive the whole run with one DeliverBatch call. Because sequence
// assignment, storage and publication still happen atomically under
// commitMu, every subscriber of a topic observes the identical global
// time-of-insertion order (§5) — batching amortises the locking and
// signalling cost without weakening that invariant. This is the core write
// path; CommitInsert is a one-row batch.
func (c *Cache) CommitBatch(tableName string, rows [][]types.Value) error {
	if len(rows) == 0 {
		return nil
	}
	tb, err := c.LookupTable(tableName)
	if err != nil {
		if c.cfg.AutoCreateStreams {
			tb, err = c.autoCreateStream(tableName, rows[0])
		}
		if err != nil {
			return err
		}
	}
	schema := tb.Schema()
	// One backing array per batch for tuples and events: the allocator is
	// visited twice per batch instead of twice per tuple.
	tupleArr := make([]types.Tuple, len(rows))
	tuples := make([]*types.Tuple, len(rows))
	for i, vals := range rows {
		coerced, err := schema.Coerce(vals)
		if err != nil {
			if len(rows) == 1 {
				return err
			}
			return fmt.Errorf("batch row %d: %w", i, err)
		}
		tupleArr[i].Vals = coerced
		tuples[i] = &tupleArr[i]
	}
	eventArr := make([]types.Event, len(tuples))
	events := make([]*types.Event, len(tuples))
	c.commitMu.Lock()
	defer c.commitMu.Unlock()
	// The batch commits atomically at one instant: all its tuples share
	// one clock reading, while sequence numbers stay unique and contiguous.
	ts := c.clock()
	for i, t := range tuples {
		c.seq++
		t.Seq = c.seq
		t.TS = ts
		eventArr[i] = types.Event{Topic: tableName, Schema: schema, Tuple: t}
		events[i] = &eventArr[i]
	}
	if err := tb.InsertBatch(tuples); err != nil {
		return err
	}
	if len(events) == 1 {
		return c.broker.Publish(events[0])
	}
	return c.broker.PublishBatch(events)
}

// CommitInsert coerces, stamps, stores and publishes one tuple: a one-row
// CommitBatch. It is the write path shared by SQL inserts, RPC inserts,
// automata publish() calls and the Timer. Implements sql.Engine and
// automaton.Services.
func (c *Cache) CommitInsert(tableName string, vals []types.Value) error {
	return c.CommitBatch(tableName, [][]types.Value{vals})
}

// autoCreateStream implements the §8 "create streams on the fly" extension:
// infer a schema from the published values.
func (c *Cache) autoCreateStream(name string, vals []types.Value) (table.Table, error) {
	if len(vals) == 0 {
		return nil, fmt.Errorf("cache: cannot infer a schema for empty tuple on %q", name)
	}
	cols := make([]types.Column, len(vals))
	for i, v := range vals {
		col := types.Column{Name: fmt.Sprintf("v%d", i)}
		switch v.Kind() {
		case types.KindInt:
			col.Type = types.ColInt
		case types.KindReal:
			col.Type = types.ColReal
		case types.KindBool:
			col.Type = types.ColBool
		case types.KindTstamp:
			col.Type = types.ColTstamp
		case types.KindString, types.KindIdentifier, types.KindSequence:
			// Sequences are stored in their textual form.
			col.Type = types.ColVarchar
		default:
			return nil, fmt.Errorf("cache: cannot infer a column type for %s", v.Kind())
		}
		cols[i] = col
	}
	schema, err := types.NewSchema(name, false, -1, cols...)
	if err != nil {
		return nil, err
	}
	if err := c.CreateTable(schema); err != nil {
		return nil, err
	}
	return c.LookupTable(name)
}

// DeleteRow implements sql.Engine.
func (c *Cache) DeleteRow(tableName, key string) (bool, error) {
	pt, err := c.PersistentTable(tableName)
	if err != nil {
		return false, err
	}
	return pt.Delete(key), nil
}

// Insert is the fast-path typed insert used by the RPC layer and
// applications (equivalent to `insert into` without SQL parsing). The
// batch equivalent is CommitBatch.
func (c *Cache) Insert(tableName string, vals ...types.Value) error {
	return c.CommitInsert(tableName, vals)
}

// Exec parses and executes one SQL statement.
func (c *Cache) Exec(src string) (*sql.Result, error) {
	return sql.ExecString(c, src)
}

// --- automata ---

// Register compiles and starts an automaton; the sink receives its send()
// events. On error (lexical, parse, bind, or initialization failure) the
// error is returned and nothing is registered.
func (c *Cache) Register(source string, sink automaton.Sink) (*automaton.Automaton, error) {
	return c.reg.Register(source, sink)
}

// Unregister stops an automaton by id.
func (c *Cache) Unregister(id int64) error { return c.reg.Unregister(id) }

// Subscribe implements automaton.Services.
func (c *Cache) Subscribe(id int64, topic string, sub pubsub.Subscriber) error {
	return c.broker.Subscribe(id, topic, sub)
}

// Unsubscribe implements automaton.Services.
func (c *Cache) Unsubscribe(id int64) { c.broker.Unsubscribe(id) }

// Watch attaches a raw event observer to a topic under a fresh negative id
// (application-side taps, used by tests and tools). It returns the id for
// Unsubscribe.
func (c *Cache) Watch(topic string, fn func(*types.Event)) (int64, error) {
	c.commitMu.Lock()
	c.seq++ // reuse the sequence space for watcher ids, negated
	id := -int64(c.seq)
	c.commitMu.Unlock()
	if err := c.broker.Subscribe(id, topic, &subscriberFunc{fn: fn}); err != nil {
		return 0, err
	}
	return id, nil
}

// TickTimer publishes one Timer tuple immediately (useful for tests and
// deterministic benchmarks that disable the periodic timer).
func (c *Cache) TickTimer() error {
	return c.CommitInsert(TimerTopic, []types.Value{types.Stamp(c.clock())})
}
