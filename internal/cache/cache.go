package cache

import (
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"unicache/internal/automaton"
	"unicache/internal/gapl"
	"unicache/internal/pubsub"
	"unicache/internal/sql"
	"unicache/internal/table"
	"unicache/internal/tenant"
	"unicache/internal/types"
	"unicache/internal/uerr"
	"unicache/internal/wal"
)

// TimerTopic is the built-in topic that delivers a punctuation tuple once
// per period (§4.2); its schema is Timer(ts tstamp). It aliases
// types.TimerTopic so low-level packages (the CEP pattern runtime) can
// name it without importing the cache.
const TimerTopic = types.TimerTopic

// DefaultCheckpointPeriod is the durable cache's default interval between
// periodic automaton-state checkpoints (meta snapshots). See
// Config.CheckpointPeriod.
const DefaultCheckpointPeriod = 30 * time.Second

// Config tunes a Cache.
type Config struct {
	// EphemeralCapacity is the ring-buffer size for stream tables
	// (default table.DefaultEphemeralCapacity).
	EphemeralCapacity int
	// TimerPeriod is the built-in Timer topic's period. The paper uses one
	// second; tests and benchmarks may shorten it. Zero means 1s; negative
	// disables the timer.
	TimerPeriod time.Duration
	// Clock overrides the time source (default wall clock).
	Clock func() types.Timestamp
	// PrintWriter receives automata print() output (default os.Stdout).
	PrintWriter io.Writer
	// OnRuntimeError observes automaton behaviour failures.
	OnRuntimeError func(id int64, err error)
	// MaxAutomatonSteps bounds instructions per clause execution (0 =
	// unlimited).
	MaxAutomatonSteps int
	// AutoCreateStreams enables the §8 future-work extension: publishing
	// into a topic that does not exist creates the stream on the fly with
	// a schema inferred from the published values.
	AutoCreateStreams bool
	// AutomatonQueue bounds each automaton's inbox (0 = unbounded, the
	// default: automata may publish into their own topics, and a bounded
	// Block inbox would deadlock such cycles once full).
	AutomatonQueue int
	// AutomatonPolicy is the overflow policy for bounded automaton inboxes
	// (default pubsub.Block — backpressure to the publishing topic).
	AutomatonPolicy pubsub.Policy
	// PoolEvents enables the zero-allocation steady-state event path:
	// commits into ephemeral tables acquire events (tuple + value storage)
	// from a reference-counted pool instead of the heap, released as the
	// ring evicts them and each subscriber finishes with them. The
	// trade-off is an ownership rule on consumers: a Watch callback or
	// automaton may use a delivered *Event only until it returns, and must
	// Clone (or Retain) it to keep it — see docs/ARCHITECTURE.md, "Event
	// ownership and pooling". Off by default; commits into persistent
	// tables always take the heap path (their rows live indefinitely).
	PoolEvents bool
	// CompileMode selects how automata execute: gapl.ModeAuto (default)
	// threads each clause through compiled Go closures, gapl.ModeVM forces
	// the bytecode switch interpreter. Outputs are identical; only
	// dispatch cost differs.
	CompileMode gapl.CompileMode
	// DataDir, when non-empty, makes the cache durable: every commit is
	// appended to a per-domain write-ahead log under this directory
	// before it is applied, and reopening a cache over the same
	// directory recovers tables, rows, sequence counters and registered
	// automata. Empty (the default) keeps the cache purely in-memory.
	// The built-in Timer topic is never logged: its ticks are synthetic
	// and its sequence restarts from 1 each run.
	DataDir string
	// WALNoSync skips every WAL fsync. Group commit degrades to
	// OS-scheduled flushing: much faster, but a machine crash may lose
	// recently acked commits (a process crash alone loses nothing).
	WALNoSync bool
	// SnapshotBytes is the per-domain log size that triggers a snapshot
	// and log truncation (0 = wal.DefaultSnapshotBytes; negative =
	// snapshot only at Close).
	SnapshotBytes int64
	// WALFS overrides the WAL's filesystem (nil = the real one). It is
	// the fault-injection seam for durability tests.
	WALFS wal.FS
	// CheckpointPeriod is the interval between periodic automaton-state
	// checkpoints on a durable cache: each checkpoint writes a meta
	// snapshot (every live automaton with its variable or pattern-match
	// state), so a crash loses at most one period of automaton state
	// rather than everything since the last clean shutdown. Zero means
	// DefaultCheckpointPeriod; negative disables periodic checkpoints
	// (state is still snapshotted at Close). Ignored by in-memory caches.
	CheckpointPeriod time.Duration
	// FsyncErrorPolicy selects what a failed commit-path fsync does to its
	// domain: wal.FsyncPoison (the default) latches the domain failed until
	// reopen, wal.FsyncLatchRetry lets later commits retry the sync and
	// un-latch the domain if the disk recovered. See wal.Options.
	FsyncErrorPolicy wal.FsyncErrorPolicy
	// Tenants, when non-nil, activates multi-tenancy: each tenant's
	// operations run through a Scope view that prefixes its table/topic
	// space and enforces its quotas. Nil (the default) keeps the cache
	// single-tenant with the namespace-free behaviour of prior releases.
	// Recovery uses the registry to reinstate namespaced automata under
	// their tenants' scoped views.
	Tenants *tenant.Registry
}

// commitDomain is the unit of commit serialisation: one per topic. The
// domain mutex makes sequence assignment, table insert and topic publish
// atomic for its topic, which is what guarantees that every subscriber of
// the topic observes the identical time-of-insertion order (§5). The
// paper's order invariant is per stream, so the domain is scoped to the
// topic: commits into different topics take different locks and proceed in
// parallel.
type commitDomain struct {
	name  string
	table table.Table
	topic *pubsub.Topic

	mu  sync.Mutex
	seq uint64 // per-topic sequence; contiguous from 1 under mu

	// wal is the domain's write-ahead log (nil when the cache is
	// in-memory, and always nil for the Timer domain). Appends happen
	// under mu, before the table insert; the group-commit fsync happens
	// after mu is released.
	wal *wal.Domain

	// Pooled-commit staging, guarded by mu and reused across batches so the
	// steady-state pooled path allocates nothing per commit. The slices are
	// cleared after each batch: stale pointers must not pin recycled blocks.
	evScratch  []*types.Event
	tupScratch []*types.Tuple
}

// Cache is a working instance of the unified system.
type Cache struct {
	cfg    Config
	broker *pubsub.Broker
	reg    *automaton.Registry
	clock  func() types.Timestamp

	// domains maps topic name -> *commitDomain. Reads (every commit) are
	// lock-free; writes happen only at table-creation time under createMu.
	domains sync.Map
	// createMu serialises CreateTable/autoCreateStream so domain creation,
	// table installation and topic registration stay atomic.
	createMu sync.Mutex
	// nextWatcher allocates Watch ids. Watcher ids live in their own
	// negative id space so they can never collide with automaton ids and
	// no longer consume commit sequence numbers.
	nextWatcher atomic.Int64
	// watchMu guards watchers, the id -> tap index for Watch taps;
	// Unsubscribe and Close stop a tap's dispatcher through it, and
	// TapStats enumerates it.
	watchMu  sync.Mutex
	watchers map[int64]*watchEntry
	// scopes interns the per-tenant Scoped views (tenant name -> *Scoped)
	// so every connection of one tenant shares one view and one set of
	// quota gates.
	scopes sync.Map

	// wal is the durability manager (nil for an in-memory cache).
	wal *wal.Manager
	// metaMu serialises all meta-log writers — the registration hooks'
	// appends and snapshotMeta's rotate-and-write — because the meta
	// domain's Rotate is not safe against a concurrent Append. Close-time
	// and periodic checkpoints share the same path.
	metaMu sync.Mutex

	timerStop chan struct{}
	timerDone chan struct{}
	ckptStop  chan struct{}
	ckptDone  chan struct{}
	closeOnce sync.Once
}

var (
	_ sql.Engine         = (*Cache)(nil)
	_ automaton.Services = (*Cache)(nil)
)

// New creates a cache, installs the built-in Timer table/topic and starts
// the timer.
func New(cfg Config) (*Cache, error) {
	if cfg.Clock == nil {
		cfg.Clock = types.Now
	}
	if cfg.TimerPeriod == 0 {
		cfg.TimerPeriod = time.Second
	}
	c := &Cache{
		cfg:      cfg,
		broker:   pubsub.NewBroker(),
		clock:    cfg.Clock,
		watchers: make(map[int64]*watchEntry),
	}
	regCfg := automaton.Config{
		PrintWriter:    cfg.PrintWriter,
		OnRuntimeError: cfg.OnRuntimeError,
		MaxSteps:       cfg.MaxAutomatonSteps,
		InboxCapacity:  cfg.AutomatonQueue,
		InboxPolicy:    cfg.AutomatonPolicy,
		CompileMode:    cfg.CompileMode,
	}
	if cfg.DataDir != "" {
		// Registration hooks write the meta log; they fire only after
		// recovery, so the meta domain is always open by then.
		regCfg.OnRegister = c.logRegister
		regCfg.OnUnregister = c.logUnregister
	}
	c.reg = automaton.NewRegistry(c, regCfg)
	if cfg.DataDir != "" {
		// Recover tables and rows before the Timer exists (the Timer is
		// never logged, so it cannot collide), and automata after it (a
		// recovered automaton may subscribe to the Timer).
		if err := c.openDurable(); err != nil {
			return nil, err
		}
	}
	timerSchema, err := types.NewSchema(TimerTopic, false, -1,
		types.Column{Name: "ts", Type: types.ColTstamp})
	if err != nil {
		return nil, err
	}
	if err := c.CreateTable(timerSchema); err != nil {
		return nil, err
	}
	if c.wal != nil {
		if err := c.recoverAutomata(); err != nil {
			return nil, err
		}
	}
	if cfg.TimerPeriod > 0 {
		c.timerStop = make(chan struct{})
		c.timerDone = make(chan struct{})
		go c.runTimer(cfg.TimerPeriod)
	}
	if c.wal != nil && cfg.CheckpointPeriod >= 0 {
		period := cfg.CheckpointPeriod
		if period == 0 {
			period = DefaultCheckpointPeriod
		}
		c.ckptStop = make(chan struct{})
		c.ckptDone = make(chan struct{})
		go c.runCheckpointer(period)
	}
	return c, nil
}

// runCheckpointer writes a meta snapshot every period, bounding how much
// automaton state (behaviour variables, pattern partial matches) a crash
// can lose.
func (c *Cache) runCheckpointer(period time.Duration) {
	defer close(c.ckptDone)
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-c.ckptStop:
			return
		case <-tick.C:
			c.snapshotMeta()
		}
	}
}

func (c *Cache) runTimer(period time.Duration) {
	defer close(c.timerDone)
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-c.timerStop:
			return
		case <-tick.C:
			if err := c.CommitInsert(TimerTopic, []types.Value{types.Stamp(c.clock())}); err != nil {
				if c.cfg.OnRuntimeError != nil {
					// The Timer is not an automaton; report under id 0.
					c.cfg.OnRuntimeError(0, fmt.Errorf("timer: %w", err))
				} else {
					fmt.Fprintf(os.Stderr, "cache: timer commit: %v\n", err)
				}
			}
		}
	}
}

// Close stops the timer, all automata and all Watch dispatchers. A
// durable cache snapshots its state first — automata (with their
// variables) while they are still alive, each commit domain after event
// processing stops — so a clean shutdown reopens from snapshots alone.
// Close does not drain: callers wanting every queued event processed
// before the snapshot should reach quiescence (WaitIdle) first.
func (c *Cache) Close() {
	c.closeOnce.Do(func() {
		if c.timerStop != nil {
			close(c.timerStop)
			<-c.timerDone
		}
		if c.ckptStop != nil {
			close(c.ckptStop)
			<-c.ckptDone
		}
		if c.wal != nil {
			c.snapshotMeta()
		}
		c.reg.Close()
		c.watchMu.Lock()
		taps := make([]*watchEntry, 0, len(c.watchers))
		for id, w := range c.watchers {
			taps = append(taps, w)
			delete(c.watchers, id)
		}
		c.watchMu.Unlock()
		for _, w := range taps {
			w.disp.Stop()
		}
		if c.wal != nil {
			c.domains.Range(func(_, v any) bool {
				d := v.(*commitDomain)
				// A failed (latched) domain is not snapshotted: its memory
				// may have diverged from the log, and the on-disk log —
				// re-verified at the next open — is the durable truth.
				if d.wal != nil && d.wal.Failed() == nil && d.wal.BeginSnapshot() {
					if err := c.snapshotDomain(d); err != nil {
						c.reportWALError(fmt.Errorf("close snapshot of %s: %w", d.name, err))
					}
				}
				return true
			})
			if err := c.wal.Close(); err != nil {
				c.reportWALError(fmt.Errorf("closing wal: %w", err))
			}
		}
	})
}

// Now implements sql.Engine and automaton.Services.
func (c *Cache) Now() types.Timestamp { return c.clock() }

// Registry exposes the automaton registry (for WaitIdle etc.).
func (c *Cache) Registry() *automaton.Registry { return c.reg }

// Automata lists every live automaton, id-sorted. It mirrors
// Scoped.Automata so tenant-scoped and whole-cache views answer the same
// question through the same method set.
func (c *Cache) Automata() []*automaton.Automaton { return c.reg.Automata() }

// Broker exposes the pub/sub broker (read-only uses).
func (c *Cache) Broker() *pubsub.Broker { return c.broker }

// --- tables & topics ---

// CreateTable installs a table, its topic and its commit domain.
// Implements sql.Engine.
func (c *Cache) CreateTable(schema *types.Schema) error {
	if schema == nil {
		return fmt.Errorf("cache: nil schema: %w", uerr.ErrBadSchema)
	}
	c.createMu.Lock()
	defer c.createMu.Unlock()
	if _, dup := c.domains.Load(schema.Name); dup {
		return fmt.Errorf("cache: table %q: %w", schema.Name, uerr.ErrTableExists)
	}
	tb, err := table.New(schema, c.cfg.EphemeralCapacity)
	if err != nil {
		return err
	}
	// Durable table creation precedes visibility: the domain directory and
	// its schema record are fsynced before the topic exists, so a table a
	// client ever observed survives a crash. The Timer is never logged.
	var wd *wal.Domain
	if c.wal != nil && schema.Name != TimerTopic {
		wd, err = c.wal.CreateDomain(schema.Name, schema)
		if err != nil {
			return fmt.Errorf("cache: creating durable domain %q: %w", schema.Name, err)
		}
	}
	// If a later step fails, the durable domain must be dropped again:
	// left in place it would resurrect a table no client ever observed on
	// the next open, and a retried CreateTable would find the directory
	// occupied.
	dropDomain := func() {
		if wd == nil {
			return
		}
		if derr := c.wal.DropDomain(schema.Name); derr != nil {
			c.reportWALError(fmt.Errorf("undoing durable domain %q: %w", schema.Name, derr))
		}
	}
	if err := c.broker.CreateTopic(schema.Name); err != nil {
		dropDomain()
		return err
	}
	topic, err := c.broker.Topic(schema.Name)
	if err != nil {
		dropDomain()
		return err
	}
	c.domains.Store(schema.Name, &commitDomain{name: schema.Name, table: tb, topic: topic, wal: wd})
	return nil
}

// lookupDomain resolves a topic's commit domain, lock-free on the hit
// path. A miss rechecks under createMu: CreateTable registers the broker
// topic before storing the domain, so without the recheck a concurrent
// creator's table could be observable (Tables, Subscribe) while its
// domain is still in flight.
func (c *Cache) lookupDomain(name string) (*commitDomain, error) {
	if d, ok := c.domains.Load(name); ok {
		return d.(*commitDomain), nil
	}
	c.createMu.Lock()
	defer c.createMu.Unlock()
	if d, ok := c.domains.Load(name); ok {
		return d.(*commitDomain), nil
	}
	return nil, fmt.Errorf("cache: %w: %q", uerr.ErrNoSuchTable, name)
}

// LookupTable implements sql.Engine.
func (c *Cache) LookupTable(name string) (table.Table, error) {
	d, err := c.lookupDomain(name)
	if err != nil {
		return nil, err
	}
	return d.table, nil
}

// PersistentTable implements automaton.Services.
func (c *Cache) PersistentTable(name string) (*table.Persistent, error) {
	tb, err := c.LookupTable(name)
	if err != nil {
		return nil, err
	}
	pt, ok := tb.(*table.Persistent)
	if !ok {
		return nil, fmt.Errorf("cache: table %q is not persistent", name)
	}
	return pt, nil
}

// Schemas implements automaton.Services.
func (c *Cache) Schemas() map[string]*types.Schema {
	out := make(map[string]*types.Schema)
	c.domains.Range(func(name, d any) bool {
		out[name.(string)] = d.(*commitDomain).table.Schema()
		return true
	})
	return out
}

// Tables returns the table names in topic order.
func (c *Cache) Tables() []string { return c.broker.Topics() }

// --- commit path ---

// CommitBatch coerces, stamps, stores and publishes a run of tuples into
// one table as a single commit: all rows are coerced up front (a bad row
// fails the batch before anything is stored), the topic's commit-domain
// mutex is taken once, the batch is assigned a contiguous run of per-topic
// sequence numbers, the table absorbs it via InsertBatch, and the topic's
// subscribers each receive the whole run with one DeliverBatch call.
// Because sequence assignment, storage and publication happen atomically
// under the domain mutex, every subscriber of the topic observes the
// identical time-of-insertion order (§5) — and because the mutex belongs
// to the topic, commits into independent topics never serialise against
// each other. This is the core write path; CommitInsert is a one-row
// batch.
func (c *Cache) CommitBatch(tableName string, rows [][]types.Value) error {
	if len(rows) == 0 {
		return nil
	}
	d, err := c.lookupDomain(tableName)
	if err != nil {
		if c.cfg.AutoCreateStreams {
			d, err = c.autoCreateStream(tableName, rows[0])
		}
		if err != nil {
			return err
		}
	}
	if d.wal != nil && c.cfg.FsyncErrorPolicy == wal.FsyncLatchRetry && d.wal.FailedRetryable() {
		c.retryLatched(d)
	}
	schema := d.table.Schema()
	if c.cfg.PoolEvents && !schema.Persistent {
		return c.commitBatchPooled(d, schema, rows)
	}
	// One backing array per batch for tuples and events: the allocator is
	// visited twice per batch instead of twice per tuple.
	tupleArr := make([]types.Tuple, len(rows))
	tuples := make([]*types.Tuple, len(rows))
	for i, vals := range rows {
		coerced, err := schema.Coerce(vals)
		if err != nil {
			if len(rows) == 1 {
				return fmt.Errorf("%w: %w", uerr.ErrBadSchema, err)
			}
			return fmt.Errorf("batch row %d: %w: %w", i, uerr.ErrBadSchema, err)
		}
		tupleArr[i].Vals = coerced
		tuples[i] = &tupleArr[i]
	}
	eventArr := make([]types.Event, len(tuples))
	events := make([]*types.Event, len(tuples))
	d.mu.Lock()
	// The batch commits atomically at one instant: all its tuples share
	// one clock reading, while the topic's sequence numbers stay unique
	// and contiguous.
	ts := c.clock()
	for i, t := range tuples {
		d.seq++
		t.Seq = d.seq
		t.TS = ts
		eventArr[i] = types.Event{Topic: tableName, Schema: schema, Tuple: t}
		events[i] = &eventArr[i]
	}
	// Write-ahead: the batch record is appended (under the domain mutex,
	// so log order equals commit order) before the table absorbs it. A
	// failed append rolls the sequence run back — nothing was stored,
	// published or logged.
	var off wal.Off
	if d.wal != nil {
		payload, err := wal.EncodeBatch(tuples[0].Seq, ts, tuples)
		if err == nil {
			off, err = d.wal.Append(payload)
		}
		if err != nil {
			d.seq -= uint64(len(tuples))
			d.mu.Unlock()
			return fmt.Errorf("cache: wal append: %w", err)
		}
	}
	if err := d.table.InsertBatch(tuples); err != nil {
		// Nothing was stored or published (today unreachable — coercion
		// pre-validates everything InsertBatch checks — but the documented
		// invariants must not depend on that). In-memory the consumed run
		// is returned so the sequence space stays contiguous; durable, the
		// batch record is already in the log (possibly durable), so reusing
		// its sequence numbers would put duplicates on disk — poison the
		// domain instead, failing every later commit until reopen.
		if d.wal != nil {
			d.wal.Poison(err)
		} else {
			d.seq -= uint64(len(tuples))
		}
		d.mu.Unlock()
		return err
	}
	if len(events) == 1 {
		d.topic.Publish(events[0])
	} else {
		d.topic.PublishBatch(events)
	}
	d.mu.Unlock()
	return c.syncCommit(d, off)
}

// syncCommit finishes a durable commit after the domain mutex is
// released: it group-commits the appended record (many committers share
// one fsync) and, when the log has outgrown its snapshot threshold,
// writes a snapshot and truncates the log. In-memory domains return
// immediately.
func (c *Cache) syncCommit(d *commitDomain, off wal.Off) error {
	if d.wal == nil {
		return nil
	}
	if err := d.wal.Sync(off); err != nil {
		// The commit is applied in memory but not acked durable; the
		// caller must treat it as failed.
		return fmt.Errorf("cache: wal fsync: %w", err)
	}
	if d.wal.WantsSnapshot() {
		if err := c.snapshotDomain(d); err != nil {
			c.reportWALError(fmt.Errorf("snapshot of %s: %w", d.name, err))
		}
	}
	return nil
}

// commitBatchPooled is CommitBatch on the zero-allocation path: events,
// tuples and value storage come from the reference-counted pool
// (types.AcquireEvent) and the staging slices are per-domain scratch, so a
// warm steady-state commit touches the allocator not at all. Reference flow:
// each event starts with the commit reference; the ephemeral ring takes one
// per stored tuple (released on eviction); the publisher takes one per
// subscriber (released at dispatch completion); the commit reference is
// dropped once the batch is published. Coercion runs under the domain mutex
// — it writes into pooled storage owned by this commit — which lengthens the
// critical section slightly versus the heap path's coerce-then-lock; the
// allocation savings dominate. Only ephemeral tables take this path: a
// persistent table retains rows indefinitely, which would pin pool blocks
// forever.
func (c *Cache) commitBatchPooled(d *commitDomain, schema *types.Schema, rows [][]types.Value) error {
	ncols := schema.NumCols()
	d.mu.Lock()
	events := d.evScratch[:0]
	tuples := d.tupScratch[:0]
	release := func() {
		for i := range events {
			events[i].Release()
			events[i] = nil
		}
		for i := range tuples {
			tuples[i] = nil
		}
		d.evScratch = events[:0]
		d.tupScratch = tuples[:0]
	}
	for i, vals := range rows {
		ev := types.AcquireEvent(d.name, schema, ncols)
		if err := schema.CoerceInto(ev.Tuple.Vals, vals); err != nil {
			ev.Release()
			release()
			d.mu.Unlock()
			if len(rows) == 1 {
				return fmt.Errorf("%w: %w", uerr.ErrBadSchema, err)
			}
			return fmt.Errorf("batch row %d: %w: %w", i, uerr.ErrBadSchema, err)
		}
		events = append(events, ev)
		tuples = append(tuples, ev.Tuple)
	}
	// The batch commits atomically at one instant, exactly as the heap path.
	ts := c.clock()
	for _, t := range tuples {
		d.seq++
		t.Seq = d.seq
		t.TS = ts
	}
	// Write-ahead, exactly as the heap path; the encoder copies the pooled
	// values out, so the record stays valid after the pool reclaims them.
	var off wal.Off
	if d.wal != nil {
		payload, err := wal.EncodeBatch(tuples[0].Seq, ts, tuples)
		if err == nil {
			off, err = d.wal.Append(payload)
		}
		if err != nil {
			d.seq -= uint64(len(tuples))
			release()
			d.mu.Unlock()
			return fmt.Errorf("cache: wal append: %w", err)
		}
	}
	// The ring takes one reference per stored tuple; it releases on evict.
	for _, t := range tuples {
		t.Retain()
	}
	if err := d.table.InsertBatch(tuples); err != nil {
		// Unreachable today (coercion pre-validates everything InsertBatch
		// checks), but the sequence-contiguity invariant and the reference
		// balance must not depend on that. As on the heap path: a durable
		// domain is poisoned rather than rolled back, since the appended
		// record may already be on disk with the consumed sequence numbers.
		if d.wal != nil {
			d.wal.Poison(err)
		} else {
			d.seq -= uint64(len(tuples))
		}
		for _, t := range tuples {
			t.Release()
		}
		release()
		d.mu.Unlock()
		return err
	}
	if len(events) == 1 {
		d.topic.Publish(events[0])
	} else {
		d.topic.PublishBatch(events)
	}
	release()
	d.mu.Unlock()
	return c.syncCommit(d, off)
}

// CommitInsert coerces, stamps, stores and publishes one tuple: a one-row
// CommitBatch. It is the write path shared by SQL inserts, RPC inserts,
// automata publish() calls and the Timer. Implements sql.Engine and
// automaton.Services.
func (c *Cache) CommitInsert(tableName string, vals []types.Value) error {
	return c.CommitBatch(tableName, [][]types.Value{vals})
}

// autoCreateStream implements the §8 "create streams on the fly" extension:
// infer a schema from the published values. Concurrent publishers racing to
// create the same stream are benign: the loser of the CreateTable race just
// resolves the winner's domain.
func (c *Cache) autoCreateStream(name string, vals []types.Value) (*commitDomain, error) {
	if len(vals) == 0 {
		return nil, fmt.Errorf("cache: cannot infer a schema for empty tuple on %q", name)
	}
	cols := make([]types.Column, len(vals))
	for i, v := range vals {
		col := types.Column{Name: fmt.Sprintf("v%d", i)}
		switch v.Kind() {
		case types.KindInt:
			col.Type = types.ColInt
		case types.KindReal:
			col.Type = types.ColReal
		case types.KindBool:
			col.Type = types.ColBool
		case types.KindTstamp:
			col.Type = types.ColTstamp
		case types.KindString, types.KindIdentifier, types.KindSequence:
			// Sequences are stored in their textual form.
			col.Type = types.ColVarchar
		default:
			return nil, fmt.Errorf("cache: cannot infer a column type for %s", v.Kind())
		}
		cols[i] = col
	}
	schema, err := types.NewSchema(name, false, -1, cols...)
	if err != nil {
		return nil, err
	}
	if err := c.CreateTable(schema); err != nil {
		if d, lerr := c.lookupDomain(name); lerr == nil {
			return d, nil
		}
		return nil, err
	}
	return c.lookupDomain(name)
}

// DeleteRow implements sql.Engine. The delete runs under the topic's
// commit-domain mutex so it is totally ordered with respect to the topic's
// commits: a delete can never interleave into the middle of a batch
// commit on the same table.
func (c *Cache) DeleteRow(tableName, key string) (bool, error) {
	d, err := c.lookupDomain(tableName)
	if err != nil {
		return false, err
	}
	pt, ok := d.table.(*table.Persistent)
	if !ok {
		return false, fmt.Errorf("cache: table %q is not persistent", tableName)
	}
	if d.wal != nil && c.cfg.FsyncErrorPolicy == wal.FsyncLatchRetry && d.wal.FailedRetryable() {
		c.retryLatched(d)
	}
	d.mu.Lock()
	var off wal.Off
	if d.wal != nil {
		off, err = d.wal.Append(wal.EncodeDelete(key))
		if err != nil {
			d.mu.Unlock()
			return false, fmt.Errorf("cache: wal append: %w", err)
		}
	}
	existed := pt.Delete(key)
	d.mu.Unlock()
	if err := c.syncCommit(d, off); err != nil {
		return existed, err
	}
	return existed, nil
}

// Insert is the fast-path typed insert used by the RPC layer and
// applications (equivalent to `insert into` without SQL parsing). The
// batch equivalent is CommitBatch.
func (c *Cache) Insert(tableName string, vals ...types.Value) error {
	return c.CommitInsert(tableName, vals)
}

// Exec parses and executes one SQL statement.
func (c *Cache) Exec(src string) (*sql.Result, error) {
	return sql.ExecString(c, src)
}

// --- automata ---

// Register compiles and starts an automaton; the sink receives its send()
// events. On error (lexical, parse, bind, or initialization failure) the
// error is returned and nothing is registered.
func (c *Cache) Register(source string, sink automaton.Sink) (*automaton.Automaton, error) {
	return c.reg.Register(source, sink)
}

// RegisterWith is Register with per-automaton Options: an inbox bound and
// overflow policy for this automaton alone, overriding the cache-wide
// Config.AutomatonQueue/AutomatonPolicy defaults.
func (c *Cache) RegisterWith(source string, sink automaton.Sink, opts automaton.Options) (*automaton.Automaton, error) {
	return c.reg.RegisterWith(source, sink, opts)
}

// Unregister stops an automaton by id.
func (c *Cache) Unregister(id int64) error { return c.reg.Unregister(id) }

// Subscribe implements automaton.Services.
func (c *Cache) Subscribe(id int64, topic string, sub pubsub.Subscriber) error {
	return c.broker.Subscribe(id, topic, sub)
}

// Unsubscribe implements automaton.Services. For a Watch tap it first
// stops the tap's dispatcher: queued-but-undelivered events are discarded,
// and once Unsubscribe returns the callback will never run again. The
// dispatcher stops BEFORE the broker detach on purpose — detaching takes
// the topic lock, which a publisher parked in a full Block inbox is
// holding, and only stopping the dispatcher (closing the inbox) unparks
// it. Deliveries that land between the stop and the detach fall into the
// closed inbox and are dropped, which is the discard semantics anyway.
func (c *Cache) Unsubscribe(id int64) {
	c.watchMu.Lock()
	w := c.watchers[id]
	delete(c.watchers, id)
	c.watchMu.Unlock()
	if w != nil {
		w.disp.Stop()
	}
	c.broker.Unsubscribe(id)
}

// watchEntry is one live Watch tap: its dispatcher plus the topic it is
// attached to (recorded so TapStats can report where a tap points) and the
// tenant namespace that owns it ("" for the unscoped cache).
type watchEntry struct {
	disp  *pubsub.Dispatcher
	topic string
	ns    string
}

// DefaultWatchQueue is the default bound of a Watch tap's inbox.
const DefaultWatchQueue = 1024

// WatchOpts tunes the bounded inbox behind a Watch tap.
type WatchOpts struct {
	// Queue bounds the tap's inbox depth (default DefaultWatchQueue;
	// negative means unbounded).
	Queue int
	// Policy is the overflow policy of a bounded inbox (default
	// pubsub.Block: the topic stalls rather than lose events once the tap
	// is Queue events behind; pubsub.DropOldest keeps the topic at full
	// speed and gives the tap a gapped suffix; pubsub.Fail detaches the
	// tap on overflow).
	Policy pubsub.Policy
}

// Watch attaches an event observer to a topic under a fresh negative id
// (application-side taps, used by tests and tools) and returns the id for
// Unsubscribe. Delivery is asynchronous: the commit path enqueues into a
// bounded inbox (DefaultWatchQueue deep, Block overflow) and a dedicated
// dispatcher goroutine invokes fn with the topic's events in commit order —
// a slow fn delays only this tap (until its queue fills) and never executes
// under the topic lock. fn must not call Unsubscribe for its own id, and a
// goroutine calling Unsubscribe must not hold a resource fn might be
// blocked on — Unsubscribe waits for the in-flight fn invocation (that is
// what makes "never runs after detach" true), so either cycle deadlocks.
// Watcher ids come from a
// dedicated counter, not the commit sequence space, so registering a
// watcher touches no commit domain and is always safe while any set of
// topics is committing.
func (c *Cache) Watch(topic string, fn func(*types.Event)) (int64, error) {
	return c.WatchWith(topic, fn, WatchOpts{})
}

// WatchWith is Watch with an explicit queue bound and overflow policy.
func (c *Cache) WatchWith(topic string, fn func(*types.Event), opts WatchOpts) (int64, error) {
	return c.watchWithNS(topic, fn, opts, "")
}

// watchWithNS is WatchWith recording the owning tenant namespace on the
// tap ("" for the unscoped cache); topic is already physical.
func (c *Cache) watchWithNS(topic string, fn func(*types.Event), opts WatchOpts, ns string) (int64, error) {
	depth := opts.Queue
	if depth == 0 {
		depth = DefaultWatchQueue
	} else if depth < 0 {
		depth = 0 // unbounded
	}
	id := -c.nextWatcher.Add(1)
	in := pubsub.NewInboxWith(pubsub.QueueOpts{Capacity: depth, Policy: opts.Policy})
	d := pubsub.NewDispatcher(in, fn, pubsub.DispatcherConfig{
		// A Fail-policy overflow detaches the tap entirely: the dispatcher
		// drains what was queued, then unsubscribes itself.
		OnFail: func() { c.Unsubscribe(id) },
	})
	c.watchMu.Lock()
	c.watchers[id] = &watchEntry{disp: d, topic: topic, ns: ns}
	c.watchMu.Unlock()
	if err := c.broker.Subscribe(id, topic, in); err != nil {
		c.watchMu.Lock()
		delete(c.watchers, id)
		c.watchMu.Unlock()
		d.Stop()
		if !c.broker.HasTopic(topic) {
			// Tables are topics: a tap on a missing topic is the same
			// condition as an insert into a missing table.
			return 0, fmt.Errorf("cache: %w: %q", uerr.ErrNoSuchTable, topic)
		}
		return 0, err
	}
	return id, nil
}

// WatchStats reports a live tap's queue depth and dropped-event count; ok
// is false once the tap is unsubscribed (including a Fail-policy detach).
func (c *Cache) WatchStats(id int64) (depth int, dropped uint64, ok bool) {
	c.watchMu.Lock()
	w := c.watchers[id]
	c.watchMu.Unlock()
	if w == nil {
		return 0, 0, false
	}
	return w.disp.Depth(), w.disp.Dropped(), true
}

// TapStat is one live Watch tap's observability row: which topic it taps
// and how far behind it is.
type TapStat struct {
	ID      int64
	Topic   string
	Depth   int
	Dropped uint64
}

// TapStats snapshots every live Watch tap (most recent first — watcher ids
// grow downward). It is the cache half of the engine Stats surface; the
// automaton half comes from Registry().Automata().
func (c *Cache) TapStats() []TapStat {
	c.watchMu.Lock()
	out := make([]TapStat, 0, len(c.watchers))
	for id, w := range c.watchers {
		out = append(out, TapStat{ID: id, Topic: w.topic, Depth: w.disp.Depth(), Dropped: w.disp.Dropped()})
	}
	c.watchMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID > out[j].ID })
	return out
}

// tapStatsNS snapshots the taps owned by one tenant namespace.
func (c *Cache) tapStatsNS(ns string) []TapStat {
	c.watchMu.Lock()
	out := make([]TapStat, 0, len(c.watchers))
	for id, w := range c.watchers {
		if w.ns != ns {
			continue
		}
		out = append(out, TapStat{ID: id, Topic: w.topic, Depth: w.disp.Depth(), Dropped: w.disp.Dropped()})
	}
	c.watchMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID > out[j].ID })
	return out
}

// TickTimer publishes one Timer tuple immediately (useful for tests and
// deterministic benchmarks that disable the periodic timer).
func (c *Cache) TickTimer() error {
	return c.CommitInsert(TimerTopic, []types.Value{types.Stamp(c.clock())})
}
