package cache

import (
	"fmt"
	"sync"
	"testing"

	"unicache/internal/pubsub"
	"unicache/internal/types"
)

// TestCommitOrderingInvariant drives the paper's §5 total-order guarantee
// through both write paths at once: multiple producer goroutines committing
// single tuples and batches into overlapping topics, with subscribers
// attached to each topic alone and to both. Every subscriber must observe
// (1) strictly increasing global sequence numbers, (2) for each topic, the
// identical gap-free event sequence every other subscriber of that topic
// observes, and (3) each producer's rows in program order. Run with -race:
// the concurrency is the point.
func TestCommitOrderingInvariant(t *testing.T) {
	const (
		producers  = 8
		opsPerProd = 200 // commit operations per producer
		maxBatch   = 7   // batch sizes cycle 1..maxBatch
		ringCap    = 1 << 16
	)
	topics := []string{"A", "B"}

	c, err := New(Config{TimerPeriod: -1, EphemeralCapacity: ringCap})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, name := range topics {
		if _, err := c.Exec(fmt.Sprintf(
			`create table %s (producer integer, n integer)`, name)); err != nil {
			t.Fatal(err)
		}
	}

	// Three subscriber groups: A only, B only, both. Two inboxes per group
	// so "identical sequence" is checked between peers as well as across
	// groups.
	subs := map[string][]*pubsub.Inbox{}
	id := int64(1000)
	for _, group := range []struct {
		name   string
		topics []string
	}{
		{"A", []string{"A"}},
		{"B", []string{"B"}},
		{"AB", []string{"A", "B"}},
	} {
		for i := 0; i < 2; i++ {
			in := pubsub.NewInbox()
			id++
			for _, topic := range group.topics {
				if err := c.Subscribe(id, topic, in); err != nil {
					t.Fatal(err)
				}
			}
			subs[group.name] = append(subs[group.name], in)
		}
	}

	// Producers alternate topics and write paths; every row carries
	// (producer, per-producer counter) so program order is checkable.
	perTopicCount := make(map[string]int)
	var countMu sync.Mutex
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			n := 0
			for op := 0; op < opsPerProd; op++ {
				topic := topics[(p+op)%len(topics)]
				batch := op%maxBatch + 1
				rows := make([][]types.Value, batch)
				for i := range rows {
					rows[i] = []types.Value{types.Int(int64(p)), types.Int(int64(n))}
					n++
				}
				var err error
				if batch == 1 {
					err = c.CommitInsert(topic, rows[0])
				} else {
					err = c.CommitBatch(topic, rows)
				}
				if err != nil {
					t.Error(err)
					return
				}
				countMu.Lock()
				perTopicCount[topic] += batch
				countMu.Unlock()
			}
		}(p)
	}
	wg.Wait()

	type obs struct {
		seq  uint64
		prod int64
		n    int64
	}
	drain := func(in *pubsub.Inbox) (map[string][]obs, []obs) {
		byTopic := make(map[string][]obs)
		var global []obs
		lastSeq := uint64(0)
		for {
			ev, ok := in.TryPop()
			if !ok {
				break
			}
			if ev.Tuple.Seq <= lastSeq {
				t.Fatalf("sequence not strictly increasing: %d after %d", ev.Tuple.Seq, lastSeq)
			}
			lastSeq = ev.Tuple.Seq
			prod, _ := ev.Tuple.Vals[0].AsInt()
			n, _ := ev.Tuple.Vals[1].AsInt()
			o := obs{ev.Tuple.Seq, prod, n}
			byTopic[ev.Topic] = append(byTopic[ev.Topic], o)
			global = append(global, o)
		}
		return byTopic, global
	}

	observed := make(map[string][]map[string][]obs) // group -> inbox -> topic -> events
	globals := make(map[string][][]obs)             // group -> inbox -> global stream
	for group, inboxes := range subs {
		for _, in := range inboxes {
			byTopic, global := drain(in)
			observed[group] = append(observed[group], byTopic)
			globals[group] = append(globals[group], global)
		}
	}

	// Canonical per-topic order comes from the first single-topic
	// subscriber; every other subscriber of that topic must match exactly.
	for _, topic := range topics {
		canon := observed[topic][0][topic]
		if len(canon) != perTopicCount[topic] {
			t.Fatalf("topic %s: canonical subscriber saw %d events, want %d (gap)",
				topic, len(canon), perTopicCount[topic])
		}
		check := func(label string, got []obs) {
			if len(got) != len(canon) {
				t.Fatalf("topic %s: %s saw %d events, canonical %d",
					topic, label, len(got), len(canon))
			}
			for i := range got {
				if got[i] != canon[i] {
					t.Fatalf("topic %s: %s diverges at %d: %+v vs %+v",
						topic, label, i, got[i], canon[i])
				}
			}
		}
		check("peer", observed[topic][1][topic])
		check("AB[0]", observed["AB"][0][topic])
		check("AB[1]", observed["AB"][1][topic])
	}

	// Per-producer program order within the AB subscribers' global streams:
	// a fixed producer's n counter must increase across both topics
	// combined, because the commit path serialises its commits.
	for _, all := range globals["AB"] {
		next := make(map[int64]int64)
		for _, o := range all {
			if o.n != next[o.prod] {
				t.Fatalf("producer %d rows out of program order: got n=%d, want %d",
					o.prod, o.n, next[o.prod])
			}
			next[o.prod] = o.n + 1
		}
	}
}
