package cache

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"unicache/internal/pubsub"
	"unicache/internal/types"
)

// TestCommitOrderingInvariant drives the paper's §5 order guarantee —
// per-stream total time-of-insertion order — through both write paths at
// once: multiple producer goroutines committing single tuples and batches
// into overlapping topics, with subscribers attached to each topic alone
// and to both. Every subscriber must observe (1) for each topic, strictly
// increasing sequence numbers contiguous from 1 (the per-topic commit
// domain's sequence space has no gaps and no duplicates), (2) for each
// topic, the identical event sequence every other subscriber of that topic
// observes, and (3) each producer's rows in program order across topics,
// because CommitBatch is synchronous through delivery. Run with -race: the
// concurrency is the point.
func TestCommitOrderingInvariant(t *testing.T) {
	const (
		producers  = 8
		opsPerProd = 200 // commit operations per producer
		maxBatch   = 7   // batch sizes cycle 1..maxBatch
		ringCap    = 1 << 16
	)
	topics := []string{"A", "B"}

	c, err := New(Config{TimerPeriod: -1, EphemeralCapacity: ringCap})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, name := range topics {
		if _, err := c.Exec(fmt.Sprintf(
			`create table %s (producer integer, n integer)`, name)); err != nil {
			t.Fatal(err)
		}
	}

	// Three subscriber groups: A only, B only, both. Two inboxes per group
	// so "identical sequence" is checked between peers as well as across
	// groups.
	subs := map[string][]*pubsub.Inbox{}
	id := int64(1000)
	for _, group := range []struct {
		name   string
		topics []string
	}{
		{"A", []string{"A"}},
		{"B", []string{"B"}},
		{"AB", []string{"A", "B"}},
	} {
		for i := 0; i < 2; i++ {
			in := pubsub.NewInbox()
			id++
			for _, topic := range group.topics {
				if err := c.Subscribe(id, topic, in); err != nil {
					t.Fatal(err)
				}
			}
			subs[group.name] = append(subs[group.name], in)
		}
	}

	// Producers alternate topics and write paths; every row carries
	// (producer, per-producer counter) so program order is checkable.
	perTopicCount := make(map[string]int)
	var countMu sync.Mutex
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			n := 0
			for op := 0; op < opsPerProd; op++ {
				topic := topics[(p+op)%len(topics)]
				batch := op%maxBatch + 1
				rows := make([][]types.Value, batch)
				for i := range rows {
					rows[i] = []types.Value{types.Int(int64(p)), types.Int(int64(n))}
					n++
				}
				var err error
				if batch == 1 {
					err = c.CommitInsert(topic, rows[0])
				} else {
					err = c.CommitBatch(topic, rows)
				}
				if err != nil {
					t.Error(err)
					return
				}
				countMu.Lock()
				perTopicCount[topic] += batch
				countMu.Unlock()
			}
		}(p)
	}
	wg.Wait()

	type obs struct {
		seq  uint64
		prod int64
		n    int64
	}
	drain := func(in *pubsub.Inbox) (map[string][]obs, []obs) {
		byTopic := make(map[string][]obs)
		var global []obs
		lastSeq := make(map[string]uint64) // per-topic: domains have independent sequence spaces
		for {
			ev, ok := in.TryPop()
			if !ok {
				break
			}
			if ev.Tuple.Seq <= lastSeq[ev.Topic] {
				t.Fatalf("topic %s: sequence not strictly increasing: %d after %d",
					ev.Topic, ev.Tuple.Seq, lastSeq[ev.Topic])
			}
			lastSeq[ev.Topic] = ev.Tuple.Seq
			prod, _ := ev.Tuple.Vals[0].AsInt()
			n, _ := ev.Tuple.Vals[1].AsInt()
			o := obs{ev.Tuple.Seq, prod, n}
			byTopic[ev.Topic] = append(byTopic[ev.Topic], o)
			global = append(global, o)
		}
		return byTopic, global
	}

	observed := make(map[string][]map[string][]obs) // group -> inbox -> topic -> events
	globals := make(map[string][][]obs)             // group -> inbox -> global stream
	for group, inboxes := range subs {
		for _, in := range inboxes {
			byTopic, global := drain(in)
			observed[group] = append(observed[group], byTopic)
			globals[group] = append(globals[group], global)
		}
	}

	// Canonical per-topic order comes from the first single-topic
	// subscriber; every other subscriber of that topic must match exactly.
	// The canonical stream must also be gap-free from sequence 1: each
	// topic's commit domain allocates its own contiguous sequence run.
	for _, topic := range topics {
		canon := observed[topic][0][topic]
		if len(canon) != perTopicCount[topic] {
			t.Fatalf("topic %s: canonical subscriber saw %d events, want %d (gap)",
				topic, len(canon), perTopicCount[topic])
		}
		for i := range canon {
			if canon[i].seq != uint64(i+1) {
				t.Fatalf("topic %s: sequence not contiguous from 1: position %d carries seq %d",
					topic, i, canon[i].seq)
			}
		}
		check := func(label string, got []obs) {
			if len(got) != len(canon) {
				t.Fatalf("topic %s: %s saw %d events, canonical %d",
					topic, label, len(got), len(canon))
			}
			for i := range got {
				if got[i] != canon[i] {
					t.Fatalf("topic %s: %s diverges at %d: %+v vs %+v",
						topic, label, i, got[i], canon[i])
				}
			}
		}
		check("peer", observed[topic][1][topic])
		check("AB[0]", observed["AB"][0][topic])
		check("AB[1]", observed["AB"][1][topic])
	}

	// Per-producer program order within the AB subscribers' global streams:
	// a fixed producer's n counter must increase across both topics
	// combined, because CommitBatch delivers into every inbox before it
	// returns — the producer cannot start its next commit (on either topic)
	// until the previous one is visible everywhere.
	for _, all := range globals["AB"] {
		next := make(map[int64]int64)
		for _, o := range all {
			if o.n != next[o.prod] {
				t.Fatalf("producer %d rows out of program order: got n=%d, want %d",
					o.prod, o.n, next[o.prod])
			}
			next[o.prod] = o.n + 1
		}
	}
}

// gateSub is a Subscriber whose delivery blocks until released: it pins the
// publishing topic's commit domain inside delivery, which is exactly the
// situation cross-topic liveness must survive.
type gateSub struct {
	entered chan struct{} // closed on first delivery
	release chan struct{} // delivery returns when closed
	once    sync.Once
}

func newGateSub() *gateSub {
	return &gateSub{entered: make(chan struct{}), release: make(chan struct{})}
}

func (g *gateSub) Deliver(*types.Event) {
	g.once.Do(func() { close(g.entered) })
	<-g.release
}

func (g *gateSub) DeliverBatch(evs []*types.Event) { g.Deliver(evs[0]) }

// TestCrossTopicLiveness pins the point of sharding the commit path: a
// commit stalled inside delivery on one topic (holding that topic's domain
// lock) must not block commits, watcher registration, or reads on any
// other topic. Under the pre-shard global commit mutex this test
// deadlocks; with per-topic domains only the slow topic stalls.
func TestCrossTopicLiveness(t *testing.T) {
	c, err := New(Config{TimerPeriod: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, s := range []string{"Slow", "Fast"} {
		if _, err := c.Exec(fmt.Sprintf(`create table %s (v integer)`, s)); err != nil {
			t.Fatal(err)
		}
	}
	gate := newGateSub()
	if err := c.Subscribe(1, "Slow", gate); err != nil {
		t.Fatal(err)
	}

	slowDone := make(chan error, 1)
	go func() {
		slowDone <- c.CommitInsert("Slow", []types.Value{types.Int(1)})
	}()
	select {
	case <-gate.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("Slow commit never reached its subscriber")
	}

	// Slow's domain lock is now held by a commit parked inside delivery.
	// Park a subscription change on the stalled topic too: it must wait
	// for Slow, but must not freeze subscription changes elsewhere.
	slowSubDone := make(chan error, 1)
	go func() {
		slowSubDone <- c.Subscribe(2, "Slow", pubsub.NewInbox())
	}()

	// Every operation on other topics must still complete.
	fastDone := make(chan error, 1)
	go func() {
		for i := 0; i < 100; i++ {
			if err := c.CommitInsert("Fast", []types.Value{types.Int(int64(i))}); err != nil {
				fastDone <- err
				return
			}
		}
		id, err := c.Watch("Fast", func(*types.Event) {})
		if err != nil {
			fastDone <- err
			return
		}
		// Unsubscribing from a healthy topic must not wait for the
		// stalled one either: the broker detaches an id by visiting only
		// the topics it is attached to.
		c.Unsubscribe(id)
		_, err = c.Exec(`select count(*) from Fast`)
		fastDone <- err
	}()
	select {
	case err := <-fastDone:
		if err != nil {
			t.Fatalf("Fast topic operation failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Fast topic blocked behind a stalled Slow commit: per-topic commit domains are not independent")
	}

	close(gate.release)
	if err := <-slowDone; err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-slowSubDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("subscription to the stalled topic never completed after release")
	}
}

// TestWatchAcrossTopics pins that watcher registration and removal are
// safe — and ids unique — while other topics commit concurrently. This is
// the regression guard for moving watcher ids off the global sequence
// counter: Watch no longer touches any commit domain, so it must never
// stall behind (or be corrupted by) a busy write path. Run with -race.
func TestWatchAcrossTopics(t *testing.T) {
	const (
		topics   = 4
		watchers = 25 // per topic, registered while every topic commits
		rows     = 300
	)
	c, err := New(Config{TimerPeriod: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	names := make([]string, topics)
	for i := range names {
		names[i] = fmt.Sprintf("W%d", i)
		if _, err := c.Exec(fmt.Sprintf(`create table %s (v integer)`, names[i])); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var committers sync.WaitGroup
	for _, name := range names {
		committers.Add(1)
		go func(name string) {
			defer committers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := c.CommitInsert(name, []types.Value{types.Int(int64(i))}); err != nil {
					t.Error(err)
					return
				}
			}
		}(name)
	}

	// Concurrently register watchers on every topic, verify each sees its
	// topic's stream in order, then unsubscribe half of them — all while
	// the committers above keep every domain hot.
	var (
		idMu  sync.Mutex
		ids   = make(map[int64]bool)
		watch sync.WaitGroup
	)
	for _, name := range names {
		for w := 0; w < watchers; w++ {
			watch.Add(1)
			go func(name string, w int) {
				defer watch.Done()
				var last uint64
				id, err := c.Watch(name, func(ev *types.Event) {
					// Runs on the tap's dispatcher goroutine: per-topic
					// order must hold from the first event this watcher
					// sees, and `last` needs no lock (one goroutine).
					if ev.Tuple.Seq <= last {
						t.Errorf("watcher on %s: seq %d after %d", name, ev.Tuple.Seq, last)
					}
					last = ev.Tuple.Seq
				})
				if err != nil {
					t.Error(err)
					return
				}
				if id >= 0 {
					t.Errorf("watcher id %d not negative", id)
				}
				idMu.Lock()
				if ids[id] {
					t.Errorf("watcher id %d allocated twice", id)
				}
				ids[id] = true
				idMu.Unlock()
				if w%2 == 0 {
					c.Unsubscribe(id)
				}
			}(name, w)
		}
	}
	watch.Wait()

	// Let every topic commit a few more rows under the surviving watchers,
	// then stop and verify the committers made progress on all topics.
	for _, name := range names {
		for i := 0; i < rows/topics; i++ {
			if err := c.CommitInsert(name, []types.Value{types.Int(-1)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	committers.Wait()

	if len(ids) != topics*watchers {
		t.Fatalf("allocated %d watcher ids, want %d", len(ids), topics*watchers)
	}
	for _, name := range names {
		tb, err := c.LookupTable(name)
		if err != nil {
			t.Fatal(err)
		}
		if tb.Len() < rows/topics {
			t.Errorf("topic %s: only %d rows committed", name, tb.Len())
		}
	}
}
