package cache

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"unicache/internal/automaton"
	"unicache/internal/pubsub"
	"unicache/internal/types"
)

// collectSink gathers the first value of every send() under a mutex.
type collectSink struct {
	mu   sync.Mutex
	vals []types.Value
}

func (s *collectSink) sink(vals []types.Value) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vals = append(s.vals, vals[0])
	return nil
}

func (s *collectSink) snapshot() []types.Value {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]types.Value(nil), s.vals...)
}

func newBatchTestCache(t *testing.T, cfg Config) *Cache {
	t.Helper()
	cfg.TimerPeriod = -1
	if cfg.OnRuntimeError == nil {
		cfg.OnRuntimeError = func(id int64, err error) { t.Errorf("automaton %d: %v", id, err) }
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if _, err := c.Exec(`create table T (v integer)`); err != nil {
		t.Fatal(err)
	}
	return c
}

func intRows(lo, hi int) [][]types.Value {
	rows := make([][]types.Value, 0, hi-lo+1)
	for v := lo; v <= hi; v++ {
		rows = append(rows, []types.Value{types.Int(int64(v))})
	}
	return rows
}

// TestBatchActivationEndToEnd drives a batchable windowed-aggregate
// automaton through the real commit path and checks that (a) it is
// classified batchable, (b) whole runs reach the VM as single activations,
// and (c) the final aggregate is independent of how the stream was split
// into runs.
func TestBatchActivationEndToEnd(t *testing.T) {
	c := newBatchTestCache(t, Config{})
	var sink collectSink
	a, err := c.Register(`
subscribe e to T;
window w;
initialization { w = Window(int, ROWS, 4); }
behavior {
	appendRun(w, e.v);
	send(winAvg(w));
}
`, sink.sink)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Batchable() {
		t.Fatal("windowed-aggregate program should be batchable")
	}
	const n = 256
	if err := c.CommitBatch("T", intRows(1, n)); err != nil {
		t.Fatal(err)
	}
	if !c.Registry().WaitIdle(5 * time.Second) {
		t.Fatal("automaton did not quiesce")
	}
	if got := a.Processed(); got != n {
		t.Fatalf("Processed = %d, want %d", got, n)
	}
	sends := sink.snapshot()
	// One send per ACTIVATION: strictly fewer than per-event delivery
	// would produce (the whole point), at least one.
	if len(sends) == 0 || len(sends) >= n {
		t.Fatalf("got %d sends for %d events; batch activation should produce 1..%d",
			len(sends), n, n-1)
	}
	// The last activation saw the full stream: window holds 253..256.
	last, _ := sends[len(sends)-1].NumAsReal()
	if want := float64(253+254+255+256) / 4; last != want {
		t.Fatalf("final winAvg = %v, want %v", last, want)
	}
}

// TestTimeWindowEvictionAcrossCommitBatches pins SECS/MSECS eviction at
// batch boundaries end to end: entries are stamped with their commit
// timestamp, and a later run evicts an aged-out earlier run in one step.
func TestTimeWindowEvictionAcrossCommitBatches(t *testing.T) {
	var clk atomic.Int64
	clk.Store(int64(1_000_000_000)) // 1s
	c := newBatchTestCache(t, Config{
		Clock: func() types.Timestamp { return types.Timestamp(clk.Load()) },
	})
	var sink collectSink
	if _, err := c.Register(`
subscribe e to T;
window w;
initialization { w = Window(int, MSECS, 10); }
behavior {
	appendRun(w, e.v);
	send(winSize(w));
}
`, sink.sink); err != nil {
		t.Fatal(err)
	}
	if err := c.CommitBatch("T", intRows(1, 3)); err != nil {
		t.Fatal(err)
	}
	if !c.Registry().WaitIdle(5 * time.Second) {
		t.Fatal("no quiesce after first batch")
	}
	// 20ms later the first batch is outside the 10ms span; the next run
	// must evict it at the batch boundary.
	clk.Add(int64(20 * time.Millisecond))
	if err := c.CommitBatch("T", intRows(4, 5)); err != nil {
		t.Fatal(err)
	}
	if !c.Registry().WaitIdle(5 * time.Second) {
		t.Fatal("no quiesce after second batch")
	}
	sends := sink.snapshot()
	if len(sends) != 2 {
		t.Fatalf("got %d sends, want 2 (one per idle-bracketed run)", len(sends))
	}
	if n, _ := sends[0].NumAsInt(); n != 3 {
		t.Fatalf("first run winSize = %d, want 3", n)
	}
	if n, _ := sends[1].NumAsInt(); n != 2 {
		t.Fatalf("second run winSize = %d, want 2 (first batch evicted whole)", n)
	}
}

// TestPerEventProgramIdenticalUnderBatchCommit pins the acceptance
// criterion that per-event programs stay bit-identical: a field-reading
// behaviour fed one batch of N produces exactly the sends of N single
// commits, in order.
func TestPerEventProgramIdenticalUnderBatchCommit(t *testing.T) {
	const src = `
subscribe e to T;
behavior { send(e.v); }
`
	run := func(t *testing.T, batch bool) []types.Value {
		c := newBatchTestCache(t, Config{})
		var sink collectSink
		a, err := c.Register(src, sink.sink)
		if err != nil {
			t.Fatal(err)
		}
		if a.Batchable() {
			t.Fatal("field-reading program must stay per-event")
		}
		if batch {
			if err := c.CommitBatch("T", intRows(1, 50)); err != nil {
				t.Fatal(err)
			}
		} else {
			for _, row := range intRows(1, 50) {
				if err := c.CommitInsert("T", row); err != nil {
					t.Fatal(err)
				}
			}
		}
		if !c.Registry().WaitIdle(5 * time.Second) {
			t.Fatal("no quiesce")
		}
		return sink.snapshot()
	}
	batched := run(t, true)
	singles := run(t, false)
	if len(batched) != 50 || len(singles) != 50 {
		t.Fatalf("send counts: batch %d, singles %d, want 50/50", len(batched), len(singles))
	}
	for i := range batched {
		b, _ := batched[i].NumAsInt()
		s, _ := singles[i].NumAsInt()
		if b != s || b != int64(i+1) {
			t.Fatalf("send %d: batch %d vs singles %d, want %d", i, b, s, i+1)
		}
	}
}

// TestRegisterWithPerAutomatonBounds pins the per-automaton inbox Options:
// a DropOldest bound on one automaton sheds its backlog deterministically
// while a default (unbounded) automaton on the same cache loses nothing.
func TestRegisterWithPerAutomatonBounds(t *testing.T) {
	c := newBatchTestCache(t, Config{})
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	var bounded collectSink
	blockingSink := func(vals []types.Value) error {
		once.Do(func() {
			close(entered)
			<-release
		})
		return bounded.sink(vals)
	}
	ab, err := c.RegisterWith(`
subscribe e to T;
behavior { send(e.v); }
`, blockingSink, automaton.Options{InboxCapacity: 4, InboxPolicy: pubsub.DropOldest})
	if err != nil {
		t.Fatal(err)
	}
	var free collectSink
	au, err := c.Register(`
subscribe e to T;
behavior { send(e.v); }
`, free.sink)
	if err != nil {
		t.Fatal(err)
	}

	// First event parks the bounded automaton inside its sink; the burst
	// then overflows its 4-deep inbox, which must shed all but the newest
	// 4, while the unbounded automaton absorbs everything.
	if err := c.CommitInsert("T", []types.Value{types.Int(0)}); err != nil {
		t.Fatal(err)
	}
	<-entered
	if err := c.CommitBatch("T", intRows(1, 100)); err != nil {
		t.Fatal(err)
	}
	close(release)
	if !c.Registry().WaitIdle(5 * time.Second) {
		t.Fatal("no quiesce")
	}
	if got := ab.Dropped(); got != 96 {
		t.Fatalf("bounded automaton dropped %d, want 96", got)
	}
	if got := len(bounded.snapshot()); got != 5 {
		t.Fatalf("bounded automaton sent %d, want 5 (1 parked + newest 4)", got)
	}
	if got, want := au.Processed(), uint64(101); got != want {
		t.Fatalf("unbounded automaton processed %d, want %d", got, want)
	}
	if au.Dropped() != 0 {
		t.Fatal("default automaton must not shed")
	}
}

// TestRegisterWithUnboundedOverride pins the negative-capacity escape
// hatch: a cache-wide Fail bound can be overridden per automaton.
func TestRegisterWithUnboundedOverride(t *testing.T) {
	failures := make(chan error, 16)
	c := newBatchTestCache(t, Config{
		AutomatonQueue:  2,
		AutomatonPolicy: pubsub.Fail,
		OnRuntimeError:  func(id int64, err error) { failures <- err },
	})
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	var sink collectSink
	blockingSink := func(vals []types.Value) error {
		once.Do(func() {
			close(entered)
			<-release
		})
		return sink.sink(vals)
	}
	a, err := c.RegisterWith(`
subscribe e to T;
behavior { send(e.v); }
`, blockingSink, automaton.Options{InboxCapacity: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CommitInsert("T", []types.Value{types.Int(0)}); err != nil {
		t.Fatal(err)
	}
	<-entered
	if err := c.CommitBatch("T", intRows(1, 100)); err != nil {
		t.Fatal(err)
	}
	close(release)
	if !c.Registry().WaitIdle(5 * time.Second) {
		t.Fatal("no quiesce")
	}
	if got := a.Processed(); got != 101 {
		t.Fatalf("processed %d, want 101 (unbounded override)", got)
	}
	select {
	case err := <-failures:
		t.Fatalf("unexpected runtime error: %v", err)
	default:
	}
}
