package cache

import (
	"sync/atomic"
	"testing"
	"time"

	"unicache/internal/pubsub"
	"unicache/internal/types"
)

// TestWatchSlowTapDoesNotStallCommit pins the point of the async delivery
// pipeline: a Watch tap that is orders of magnitude slower than the commit
// rate must not stall its topic when registered under DropOldest — the
// pre-PR3 synchronous tap executed its callback under the topic lock and
// collapsed commit throughput to the tap's rate.
func TestWatchSlowTapDoesNotStallCommit(t *testing.T) {
	c := newTestCache(t)
	mustExec(t, c, `create table T (v integer)`)
	var seen atomic.Int64
	id, err := c.WatchWith("T", func(*types.Event) {
		seen.Add(1)
		time.Sleep(2 * time.Millisecond) // an fsync-class consumer
	}, WatchOpts{Queue: 16, Policy: pubsub.DropOldest})
	if err != nil {
		t.Fatal(err)
	}
	// 2000 commits against a 2ms-per-event tap would take 4s delivered
	// synchronously; enqueue-only delivery finishes them in milliseconds.
	start := time.Now()
	for i := 0; i < 2000; i++ {
		if err := c.Insert("T", types.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if elapsed > 2*time.Second {
		t.Fatalf("2000 commits took %v behind a slow DropOldest tap", elapsed)
	}
	if _, dropped, ok := c.WatchStats(id); !ok || dropped == 0 {
		t.Errorf("slow tap should have shed events (dropped=%d ok=%v)", dropped, ok)
	}
	// Delivery is asynchronous: give the dispatcher a moment to wake.
	deadline := time.Now().Add(5 * time.Second)
	for seen.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("tap never saw an event")
		}
		time.Sleep(time.Millisecond)
	}
	c.Unsubscribe(id)
}

// TestUnsubscribeStopsWatchDelivery pins the unsubscription race of the
// async pipeline: Unsubscribe while the tap's dispatcher still holds
// queued-but-undelivered events must stop delivery promptly, and the
// callback must never run after Unsubscribe returns — even with commits
// still arriving concurrently. Run with -race.
func TestUnsubscribeStopsWatchDelivery(t *testing.T) {
	c := newTestCache(t)
	mustExec(t, c, `create table T (v integer)`)

	var calls atomic.Int64
	id, err := c.WatchWith("T", func(*types.Event) {
		calls.Add(1)
		time.Sleep(100 * time.Microsecond) // keep a queue backlog alive
	}, WatchOpts{Queue: -1})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	committed := make(chan int64, 1)
	go func() {
		var n int64
		for {
			select {
			case <-stop:
				committed <- n
				return
			default:
			}
			if err := c.Insert("T", types.Int(n)); err != nil {
				t.Error(err)
				committed <- n
				return
			}
			n++
		}
	}()

	// Let a backlog build, then detach mid-stream.
	deadline := time.Now().Add(5 * time.Second)
	for calls.Load() < 20 {
		if time.Now().After(deadline) {
			t.Fatal("tap never got going")
		}
		time.Sleep(time.Millisecond)
	}
	unsubStart := time.Now()
	c.Unsubscribe(id)
	unsubTook := time.Since(unsubStart)
	atCut := calls.Load()

	// Commits continue after the detach; the callback must not.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	n := <-committed
	if got := calls.Load(); got != atCut {
		t.Fatalf("callback ran after Unsubscribe returned: %d -> %d", atCut, got)
	}
	if atCut >= n {
		t.Logf("tap saw every commit (%d of %d) before detach; race window not exercised", atCut, n)
	}
	// Prompt means not draining a long backlog: with a 100µs callback and
	// an unbounded queue the backlog at detach can be thousands deep.
	if unsubTook > 2*time.Second {
		t.Fatalf("Unsubscribe took %v (drained instead of discarding?)", unsubTook)
	}
	if _, _, ok := c.WatchStats(id); ok {
		t.Error("WatchStats still reports the detached tap")
	}
}

// TestWatchFailPolicyDetachesTap: under the Fail policy an overflowing tap
// detaches itself instead of stalling the topic or shedding silently.
func TestWatchFailPolicyDetachesTap(t *testing.T) {
	c := newTestCache(t)
	mustExec(t, c, `create table T (v integer)`)
	id, err := c.WatchWith("T", func(*types.Event) {
		time.Sleep(time.Millisecond) // slow enough to overflow the queue
	}, WatchOpts{Queue: 8, Policy: pubsub.Fail})
	if err != nil {
		t.Fatal(err)
	}
	// Overflow the 8-slot queue; commits must never block on the tap.
	for i := 0; i < 200; i++ {
		if err := c.Insert("T", types.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, ok := c.WatchStats(id); !ok {
			break // detached
		}
		if time.Now().After(deadline) {
			t.Fatal("overflowing Fail tap never detached")
		}
		time.Sleep(time.Millisecond)
	}
	// The topic is healthy after the detach.
	if err := c.Insert("T", types.Int(-1)); err != nil {
		t.Fatal(err)
	}
}

// TestWatchBlockPolicyBackpressure: a bounded Block tap parks the committer
// once it is Queue events behind — and releases it as the tap drains.
func TestWatchBlockPolicyBackpressure(t *testing.T) {
	c := newTestCache(t)
	mustExec(t, c, `create table T (v integer)`)
	release := make(chan struct{}, 10)
	var seen atomic.Int64
	id, err := c.WatchWith("T", func(*types.Event) {
		seen.Add(1)
		<-release
	}, WatchOpts{Queue: 4, Policy: pubsub.Block})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Unsubscribe(id)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			if err := c.Insert("T", types.Int(int64(i))); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	select {
	case <-done:
		close(release) // unpark the tap so cleanup can stop it
		t.Fatal("10 commits outran a full 4-slot Block tap without parking")
	case <-time.After(50 * time.Millisecond):
	}
	for i := 0; i < 10; i++ {
		release <- struct{}{} // buffered: hands the tap one token per event
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		close(release)
		t.Fatal("commits never resumed after the tap drained")
	}
	close(release)
}

// TestUnsubscribeUnderBlockBackpressure pins the detach lock ordering:
// Unsubscribe stops the tap's dispatcher (closing the inbox, which unparks
// any committer blocked inside Deliver holding the topic lock) BEFORE
// asking the broker to detach. With committers continuously parked on a
// full 1-slot Block inbox and a slow callback, Unsubscribe must still
// return within about one callback invocation — not after draining the
// whole stream — and the parked committers must resume into the closed
// inbox. The in-flight callback is waited for (that is the no-delivery-
// after-detach contract), so the callback here is slow but terminating.
// Run with -race.
func TestUnsubscribeUnderBlockBackpressure(t *testing.T) {
	c := newTestCache(t)
	mustExec(t, c, `create table T (v integer)`)
	var seen atomic.Int64
	id, err := c.WatchWith("T", func(*types.Event) {
		seen.Add(1)
		time.Sleep(5 * time.Millisecond)
	}, WatchOpts{Queue: 1, Policy: pubsub.Block})
	if err != nil {
		t.Fatal(err)
	}
	const commits = 400 // ~2s of drain at the callback's rate
	committed := make(chan struct{})
	go func() {
		defer close(committed)
		for i := 0; i < commits; i++ {
			if err := c.Insert("T", types.Int(int64(i))); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Let the backpressure regime establish (committer parked, callback
	// mid-sleep), then detach.
	deadline := time.Now().Add(5 * time.Second)
	for seen.Load() < 3 {
		if time.Now().After(deadline) {
			t.Fatal("tap never got going")
		}
		time.Sleep(time.Millisecond)
	}
	unsubbed := make(chan struct{})
	go func() { c.Unsubscribe(id); close(unsubbed) }()
	select {
	case <-unsubbed:
	case <-time.After(2 * time.Second):
		t.Fatal("Unsubscribe stalled behind the backlog instead of discarding it")
	}
	atCut := seen.Load()
	// The unparked committers finish into the closed inbox at full speed.
	select {
	case <-committed:
	case <-time.After(5 * time.Second):
		t.Fatal("parked committer never resumed after Unsubscribe")
	}
	time.Sleep(30 * time.Millisecond)
	if got := seen.Load(); got != atCut {
		t.Fatalf("callback ran after Unsubscribe returned: %d -> %d", atCut, got)
	}
}
