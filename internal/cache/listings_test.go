package cache

import (
	"testing"
	"time"

	"unicache/internal/types"
)

// TestFig2ContinuousQueryModel runs the paper's Fig. 2 automaton — the
// Tapestry continuous-query execution model — against a live cache: events
// accumulate in a time window, and every Timer tick ships the window to
// the application and opens a fresh one.
func TestFig2ContinuousQueryModel(t *testing.T) {
	c := newTestCache(t)
	mustExec(t, c, `create table Topic (attribute integer)`)
	rec := newSinkRecorder()
	_, err := c.Register(`
subscribe event to Topic;
subscribe x to Timer;
window w;
initialization {
	w = Window(sequence, SECS, 3600);
}
behavior {
	if (currentTopic() == 'Topic')
		append(w, Sequence(event.attribute));
	else
		if (currentTopic() == 'Timer') {
			send(w);
			w = Window(sequence, SECS, 3600);
		}
}
`, rec.sink)
	if err != nil {
		t.Fatal(err)
	}

	for i := 1; i <= 3; i++ {
		if err := c.Insert("Topic", types.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.TickTimer(); err != nil {
		t.Fatal(err)
	}
	// Second batch: the window must have been reset.
	for i := 10; i <= 11; i++ {
		if err := c.Insert("Topic", types.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.TickTimer(); err != nil {
		t.Fatal(err)
	}

	evs := rec.waitFor(t, 2, 5*time.Second)
	w1 := evs[0][0].Win()
	if w1 == nil || w1.Len() != 3 {
		t.Fatalf("first window = %v", evs[0][0])
	}
	if seq := w1.At(0).Seq(); seq == nil || seq.At(0).String() != "1" {
		t.Errorf("first window head = %v", w1.At(0))
	}
	w2 := evs[1][0].Win()
	if w2 == nil || w2.Len() != 2 {
		t.Fatalf("second window = %v (window not reset between ticks?)", evs[1][0])
	}
	if seq := w2.At(0).Seq(); seq == nil || seq.At(0).String() != "10" {
		t.Errorf("second window head = %v", w2.At(0))
	}
}

// TestKleeneClosureMapOfWindows exercises the §7 idiom: SASE's Kleene
// closure over partition-contiguous events, implemented with a map of
// windows — one window of readings per partition, emitted when the closing
// condition fires.
func TestKleeneClosureMapOfWindows(t *testing.T) {
	c := newTestCache(t)
	mustExec(t, c, `create table Readings (part varchar, v integer)`)
	rec := newSinkRecorder()
	// Collect a+ b per partition: accumulate positive readings, emit the
	// accumulated closure when a zero arrives (the closing event).
	_, err := c.Register(`
subscribe r to Readings;
map W;
identifier id;
window w;
initialization { W = Map(window); }
behavior {
	id = Identifier(r.part);
	if (!hasEntry(W, id))
		insert(W, id, Window(int, ROWS, 64));
	w = lookup(W, id);
	if (r.v > 0)
		append(w, r.v);
	else {
		if (winSize(w) > 0) {
			send(r.part, w);
			insert(W, id, Window(int, ROWS, 64));
		}
	}
}
`, rec.sink)
	if err != nil {
		t.Fatal(err)
	}

	feed := func(part string, v int64) {
		t.Helper()
		if err := c.Insert("Readings", types.Str(part), types.Int(v)); err != nil {
			t.Fatal(err)
		}
	}
	// Interleaved partitions; closure is per-partition contiguous.
	feed("A", 1)
	feed("B", 7)
	feed("A", 2)
	feed("A", 3)
	feed("B", 8)
	feed("A", 0) // closes A: [1 2 3]
	feed("B", 0) // closes B: [7 8]
	feed("A", 0) // empty closure: no emission

	evs := rec.waitFor(t, 2, 5*time.Second)
	if got, _ := evs[0][0].AsStr(); got != "A" {
		t.Errorf("first closure from %q", got)
	}
	wa := evs[0][1].Win()
	if wa == nil || wa.Len() != 3 || wa.At(2).String() != "3" {
		t.Errorf("closure A = %v", evs[0][1])
	}
	wb := evs[1][1].Win()
	if wb == nil || wb.Len() != 2 || wb.At(0).String() != "7" {
		t.Errorf("closure B = %v", evs[1][1])
	}
	// The empty third closure must not have emitted.
	time.Sleep(10 * time.Millisecond)
	if rec.count() != 2 {
		t.Errorf("empty closure emitted: %d sends", rec.count())
	}
}

// TestTimerIsQueryable: the built-in Timer topic is an ordinary table.
func TestTimerIsQueryable(t *testing.T) {
	c := newTestCache(t)
	for i := 0; i < 3; i++ {
		if err := c.TickTimer(); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.Exec(`select count(*) from Timer`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].String() != "3" {
		t.Errorf("Timer rows = %v", res.Rows[0])
	}
}

// TestMaterializedViewChain: §3's "complex patterns presented as
// materialised views, and materialised views used to derive complex
// patterns" — a three-stage automaton chain where each stage's output
// stream is queryable.
func TestMaterializedViewChain(t *testing.T) {
	c := newTestCache(t)
	mustExec(t, c, `create table L0 (v integer)`)
	mustExec(t, c, `create table L1 (v integer)`)
	mustExec(t, c, `create table L2 (v integer)`)
	for _, prog := range []string{
		`subscribe e to L0; behavior { if (e.v % 2 == 0) publish('L1', e.v); }`,
		`subscribe e to L1; behavior { if (e.v % 3 == 0) publish('L2', e.v); }`,
	} {
		if _, err := c.Register(prog, func([]types.Value) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 30; i++ {
		if err := c.Insert("L0", types.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Registry().WaitIdle(5 * time.Second) {
		t.Fatal("not idle")
	}
	res, err := c.Exec(`select count(*) from L2`)
	if err != nil {
		t.Fatal(err)
	}
	// Multiples of 6 in 1..30: 5.
	if res.Rows[0][0].String() != "5" {
		t.Errorf("L2 rows = %v", res.Rows[0])
	}
}

// TestSelectSinceSupportsPolling exercises the Fig. 1 polling pattern: a
// client repeatedly selects `since τ` with τ = last seen timestamp.
func TestSelectSinceSupportsPolling(t *testing.T) {
	c := newTestCache(t)
	mustExec(t, c, `create table S (v integer)`)
	var last types.Timestamp // zero: everything is newer
	seen := 0
	poll := func() {
		t.Helper()
		var res *sqlResult
		r, err := c.Exec("select tstamp, v from S since " + types.Stamp(last).String())
		if err != nil {
			t.Fatal(err)
		}
		res = &sqlResult{r.Rows}
		for _, row := range res.rows {
			ts, _ := row[0].AsStamp()
			if ts <= last {
				t.Fatalf("since returned old tuple ts=%d last=%d", ts, last)
			}
			last = ts
			seen++
		}
	}
	for i := 0; i < 4; i++ {
		if err := c.Insert("S", types.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
		poll()
	}
	poll() // nothing new
	if seen != 4 {
		t.Errorf("polling saw %d tuples, want 4", seen)
	}
}

type sqlResult struct{ rows [][]types.Value }
