package cache

// This file is the cache half of multi-tenancy: a Scoped view wraps one
// Cache for one tenant, mapping the tenant's logical table/topic names onto
// a physical "<ns>/<name>" prefix and enforcing the tenant's quotas at the
// four admission points (CreateTable, Register, Watch inbox bounds, the
// commit path). Everything name-shaped — SQL via sql.Engine, automata via
// automaton.Services, watches, stats — flows through the view, so the
// layers above (RPC connections, the façade's per-tenant engines) get
// tenancy without knowing how names are spelled on disk. The shared Timer
// topic passes through unprefixed and uncounted. See
// docs/ARCHITECTURE.md, "Tenancy".

import (
	"fmt"
	"strings"
	"sync"

	"unicache/internal/automaton"
	"unicache/internal/pubsub"
	"unicache/internal/sql"
	"unicache/internal/table"
	"unicache/internal/tenant"
	"unicache/internal/types"
	"unicache/internal/uerr"
)

// Scoped is one tenant's view of a Cache. It implements the same engine
// surface as the Cache itself (sql.Engine, automaton.Services, tables,
// commits, watches, stats), with every table/topic name interpreted in the
// tenant's namespace and every operation subject to the tenant's quotas.
// There is exactly one Scoped per (cache, tenant) pair — Scope interns them
// — so admission checks can serialise on the view.
type Scoped struct {
	c  *Cache
	t  *tenant.Tenant
	ns string

	// admitMu serialises this tenant's count-and-admit checks (MaxTables,
	// MaxAutomata) so concurrent creators cannot jointly overshoot a limit.
	admitMu sync.Mutex
}

var (
	_ sql.Engine         = (*Scoped)(nil)
	_ automaton.Services = (*Scoped)(nil)
)

// Scope returns the tenant's scoped view of this cache, creating it on
// first use. Views are interned per tenant name: every connection of one
// tenant shares one view, and through it one set of quota gates.
func (c *Cache) Scope(t *tenant.Tenant) *Scoped {
	if v, ok := c.scopes.Load(t.Name()); ok {
		return v.(*Scoped)
	}
	v, _ := c.scopes.LoadOrStore(t.Name(), &Scoped{c: c, t: t, ns: t.Name()})
	return v.(*Scoped)
}

// TenantRegistry returns the tenant registry the cache was configured with
// (nil when the cache is single-tenant).
func (c *Cache) TenantRegistry() *tenant.Registry { return c.cfg.Tenants }

// Tenant returns the tenant this view is scoped to.
func (s *Scoped) Tenant() *tenant.Tenant { return s.t }

// Namespace returns the tenant's namespace prefix.
func (s *Scoped) Namespace() string { return s.ns }

// Cache returns the underlying cache (shared, unscoped).
func (s *Scoped) Cache() *Cache { return s.c }

// Now implements sql.Engine and automaton.Services.
func (s *Scoped) Now() types.Timestamp { return s.c.clock() }

// --- tables ---

// qualify maps a logical name into the namespace.
func (s *Scoped) qualify(name string) string { return tenant.Qualify(s.ns, name) }

// admitTable enforces MaxTables against the tenant's current table count.
// Callers hold admitMu when the subsequent create must not race another of
// this tenant's creates.
func (s *Scoped) admitTable() error {
	max := s.t.Quota().MaxTables
	if max <= 0 {
		return nil
	}
	if s.countTables() >= max {
		s.t.NoteRejected()
		return fmt.Errorf("tenant %s: %w: tables (limit %d)", s.ns, uerr.ErrQuotaExceeded, max)
	}
	return nil
}

// countTables counts the tenant's tables (the shared Timer is not counted).
func (s *Scoped) countTables() int {
	n := 0
	prefix := s.ns + "/"
	s.c.domains.Range(func(k, _ any) bool {
		if strings.HasPrefix(k.(string), prefix) {
			n++
		}
		return true
	})
	return n
}

// CreateTable installs the table under its physical name, subject to
// MaxTables. Implements sql.Engine.
func (s *Scoped) CreateTable(schema *types.Schema) error {
	if schema == nil {
		return s.c.CreateTable(nil)
	}
	if phys := s.qualify(schema.Name); phys != schema.Name {
		sc := *schema
		sc.Name = phys
		schema = &sc
	}
	s.admitMu.Lock()
	defer s.admitMu.Unlock()
	if err := s.admitTable(); err != nil {
		return err
	}
	return s.c.CreateTable(schema)
}

// LookupTable implements sql.Engine.
func (s *Scoped) LookupTable(name string) (table.Table, error) {
	return s.c.LookupTable(s.qualify(name))
}

// PersistentTable implements automaton.Services.
func (s *Scoped) PersistentTable(name string) (*table.Persistent, error) {
	return s.c.PersistentTable(s.qualify(name))
}

// Schemas implements automaton.Services: the tenant's tables (plus the
// shared Timer) under their logical names. Renamed schemas are shallow
// clones; the column slices are shared, read-only.
func (s *Scoped) Schemas() map[string]*types.Schema {
	out := make(map[string]*types.Schema)
	s.c.domains.Range(func(k, d any) bool {
		logical, ok := tenant.Logical(s.ns, k.(string))
		if !ok {
			return true
		}
		schema := d.(*commitDomain).table.Schema()
		if logical != schema.Name {
			sc := *schema
			sc.Name = logical
			schema = &sc
		}
		out[logical] = schema
		return true
	})
	return out
}

// Tables returns the tenant's table names (including the shared Timer) in
// sorted logical-name order.
func (s *Scoped) Tables() []string {
	var out []string
	for _, phys := range s.c.broker.Topics() {
		if logical, ok := tenant.Logical(s.ns, phys); ok {
			out = append(out, logical)
		}
	}
	return out
}

// --- commit path ---

// admitCommit runs the commit-path quota gates: the events/sec token
// bucket, then — on a durable cache with a WAL quota — the live log
// footprint. The footprint is recomputed from the domains' live bytes, so
// snapshot truncation frees quota the moment it happens.
func (s *Scoped) admitCommit(n int) error {
	if err := s.t.AllowEvents(s.c.clock(), n); err != nil {
		return err
	}
	if s.c.wal != nil && s.t.Quota().MaxWALBytes > 0 {
		s.t.SetWAL(s.walBytes())
		if err := s.t.CheckWAL(); err != nil {
			return err
		}
	}
	return nil
}

// walBytes sums the live WAL footprint of the tenant's domains.
func (s *Scoped) walBytes() int64 {
	var total int64
	prefix := s.ns + "/"
	s.c.domains.Range(func(k, v any) bool {
		if d := v.(*commitDomain); d.wal != nil && strings.HasPrefix(k.(string), prefix) {
			total += d.wal.LiveBytes()
		}
		return true
	})
	return total
}

// CommitBatch commits rows into the tenant's table, subject to the
// events/sec and WAL-byte quotas. Implements sql.Engine.
func (s *Scoped) CommitBatch(tableName string, rows [][]types.Value) error {
	if len(rows) == 0 {
		return nil
	}
	phys := s.qualify(tableName)
	if s.c.cfg.AutoCreateStreams && phys != tableName {
		// Publishing into a missing topic creates the stream on the fly;
		// that creation is a table the quota must see.
		if _, ok := s.c.domains.Load(phys); !ok {
			if err := s.admitTable(); err != nil {
				return err
			}
		}
	}
	if err := s.admitCommit(len(rows)); err != nil {
		return err
	}
	if err := s.c.CommitBatch(phys, rows); err != nil {
		return err
	}
	s.t.NoteCommitted(s.c.clock(), len(rows))
	return nil
}

// CommitInsert is a one-row CommitBatch. Implements sql.Engine and
// automaton.Services.
func (s *Scoped) CommitInsert(tableName string, vals []types.Value) error {
	return s.CommitBatch(tableName, [][]types.Value{vals})
}

// Insert is the fast-path typed insert, mirroring Cache.Insert.
func (s *Scoped) Insert(tableName string, vals ...types.Value) error {
	return s.CommitInsert(tableName, vals)
}

// DeleteRow implements sql.Engine. Deletes append to the WAL, so the
// WAL-byte quota applies; they carry no events, so the token bucket does
// not.
func (s *Scoped) DeleteRow(tableName, key string) (bool, error) {
	if s.c.wal != nil && s.t.Quota().MaxWALBytes > 0 {
		s.t.SetWAL(s.walBytes())
		if err := s.t.CheckWAL(); err != nil {
			return false, err
		}
	}
	return s.c.DeleteRow(s.qualify(tableName), key)
}

// Exec parses and executes one SQL statement in the tenant's namespace.
func (s *Scoped) Exec(src string) (*sql.Result, error) {
	return sql.ExecString(s, src)
}

// --- pub/sub ---

// renameSub rewrites each delivered event's physical topic back to the
// tenant-logical name before handing it on: automata and watch callbacks
// key their dispatch on ev.Topic and must see the name they subscribed
// under. The rewrite is a shallow copy — the copy shares the original's
// refcounted block, so the publisher's per-subscriber Retain and the
// consumer's Release stay balanced — and DeliverBatch builds a fresh slice
// because the publisher's slice is shared across subscribers and must not
// be mutated.
type renameSub struct {
	inner   pubsub.Subscriber
	logical string
}

func (r renameSub) Deliver(ev *types.Event) {
	ev2 := *ev
	ev2.Topic = r.logical
	r.inner.Deliver(&ev2)
}

func (r renameSub) DeliverBatch(evs []*types.Event) {
	copies := make([]types.Event, len(evs))
	out := make([]*types.Event, len(evs))
	for i, ev := range evs {
		copies[i] = *ev
		copies[i].Topic = r.logical
		out[i] = &copies[i]
	}
	r.inner.DeliverBatch(out)
}

// Subscribe implements automaton.Services: the subscription attaches to
// the physical topic, with delivered events renamed back to the logical
// name. The shared Timer passes through un-renamed.
func (s *Scoped) Subscribe(id int64, topic string, sub pubsub.Subscriber) error {
	phys := s.qualify(topic)
	if phys != topic {
		sub = renameSub{inner: sub, logical: topic}
	}
	return s.c.broker.Subscribe(id, phys, sub)
}

// Unsubscribe implements automaton.Services and detaches Watch taps. A
// negative id (a Watch tap) is checked for ownership: another tenant's tap
// id is a silent no-op, exactly as an unknown id is.
func (s *Scoped) Unsubscribe(id int64) {
	if id < 0 {
		s.c.watchMu.Lock()
		w := s.c.watchers[id]
		s.c.watchMu.Unlock()
		if w == nil || w.ns != s.ns {
			return
		}
	}
	s.c.Unsubscribe(id)
}

// --- watches ---

// Watch attaches an observer to the tenant's topic; see Cache.Watch for
// the delivery contract.
func (s *Scoped) Watch(topic string, fn func(*types.Event)) (int64, error) {
	return s.WatchWith(topic, fn, WatchOpts{})
}

// WatchWith is Watch with an explicit queue bound and overflow policy. The
// bound is clamped to the tenant's MaxInboxDepth quota — including
// "unbounded" requests, which become MaxInboxDepth-deep — and the
// requested overflow policy does the shedding from there.
func (s *Scoped) WatchWith(topic string, fn func(*types.Event), opts WatchOpts) (int64, error) {
	if s.t.Quota().MaxInboxDepth > 0 {
		eff := opts.Queue
		if eff == 0 {
			eff = DefaultWatchQueue
		} else if eff < 0 {
			eff = 0
		}
		if clamped, did := s.t.ClampInbox(eff); did {
			opts.Queue = clamped
		} else {
			opts.Queue = eff
		}
	}
	phys := s.qualify(topic)
	if phys != topic {
		inner := fn
		logical := topic
		fn = func(ev *types.Event) {
			ev2 := *ev
			ev2.Topic = logical
			inner(&ev2)
		}
	}
	return s.c.watchWithNS(phys, fn, opts, s.ns)
}

// WatchStats reports a live tap's queue depth and dropped-event count; a
// tap owned by another tenant reports ok == false.
func (s *Scoped) WatchStats(id int64) (depth int, dropped uint64, ok bool) {
	s.c.watchMu.Lock()
	w := s.c.watchers[id]
	s.c.watchMu.Unlock()
	if w == nil || w.ns != s.ns {
		return 0, 0, false
	}
	return w.disp.Depth(), w.disp.Dropped(), true
}

// TapStats snapshots the tenant's live Watch taps, topics in logical form.
func (s *Scoped) TapStats() []TapStat {
	all := s.c.tapStatsNS(s.ns)
	for i := range all {
		if logical, ok := tenant.Logical(s.ns, all[i].Topic); ok {
			all[i].Topic = logical
		}
	}
	return all
}

// --- automata ---

// Register compiles and starts an automaton in the tenant's namespace.
func (s *Scoped) Register(source string, sink automaton.Sink) (*automaton.Automaton, error) {
	return s.RegisterWith(source, sink, automaton.Options{})
}

// RegisterWith is Register with per-automaton Options, subject to the
// MaxAutomata quota and the MaxInboxDepth clamp.
func (s *Scoped) RegisterWith(source string, sink automaton.Sink, opts automaton.Options) (*automaton.Automaton, error) {
	s.admitMu.Lock()
	defer s.admitMu.Unlock()
	if max := s.t.Quota().MaxAutomata; max > 0 {
		n := 0
		for _, a := range s.c.reg.Automata() {
			if a.Namespace() == s.ns {
				n++
			}
		}
		if n >= max {
			s.t.NoteRejected()
			return nil, fmt.Errorf("tenant %s: %w: automata (limit %d)", s.ns, uerr.ErrQuotaExceeded, max)
		}
	}
	return s.c.reg.RegisterIn(s, s.ns, source, sink, s.clampOpts(opts))
}

// clampOpts applies the MaxInboxDepth quota to an automaton's requested
// inbox bound: the effective bound (per-automaton, or the cache-wide
// default when unset, with 0 meaning unbounded) is clamped to the quota
// depth.
func (s *Scoped) clampOpts(opts automaton.Options) automaton.Options {
	if s.t.Quota().MaxInboxDepth <= 0 {
		return opts
	}
	eff := opts.InboxCapacity
	if eff == 0 {
		eff = s.c.cfg.AutomatonQueue
	} else if eff < 0 {
		eff = 0
	}
	if clamped, did := s.t.ClampInbox(eff); did {
		opts.InboxCapacity = clamped
	} else if eff > 0 {
		opts.InboxCapacity = eff
	}
	return opts
}

// Unregister stops one of the tenant's automata; another tenant's id is
// ErrNoSuchAutomaton, indistinguishable from an unknown id.
func (s *Scoped) Unregister(id int64) error {
	a, ok := s.c.reg.Get(id)
	if !ok || a.Namespace() != s.ns {
		return fmt.Errorf("automaton: %w: id %d", uerr.ErrNoSuchAutomaton, id)
	}
	return s.c.reg.Unregister(id)
}

// Automata snapshots the tenant's live automata in id order.
func (s *Scoped) Automata() []*automaton.Automaton {
	var out []*automaton.Automaton
	for _, a := range s.c.reg.Automata() {
		if a.Namespace() == s.ns {
			out = append(out, a)
		}
	}
	return out
}

// --- stats ---

// TenantStats assembles the tenant's accounting rollup: the tenant-owned
// counters (events, rate, rejections) plus the live resource counts only
// the cache knows.
func (s *Scoped) TenantStats() tenant.Stats {
	if s.c.wal != nil {
		s.t.SetWAL(s.walBytes())
	}
	st := s.t.StatsSnapshot(s.c.clock())
	st.Tables = s.countTables()
	var dropped uint64
	for _, a := range s.Automata() {
		st.Automata++
		dropped += a.Dropped()
	}
	s.c.watchMu.Lock()
	for _, w := range s.c.watchers {
		if w.ns == s.ns {
			st.Watches++
			dropped += w.disp.Dropped()
		}
	}
	s.c.watchMu.Unlock()
	st.Dropped = dropped
	return st
}

// Durability reports the tenant's slice of the durability stats: its
// domains under logical names, WALBytes summed over them alone. The
// cache-wide counters (fsyncs, snapshots, recovery) are shared and
// reported as-is; ok is false for an in-memory cache.
func (s *Scoped) Durability() (DurabilityStats, bool) {
	st, ok := s.c.Durability()
	if !ok {
		return st, false
	}
	var own []DomainDurability
	var total int64
	for _, d := range st.Domains {
		logical, in := tenant.Logical(s.ns, d.Topic)
		if !in || logical == d.Topic {
			// Timer and unprefixed domains are shared, not the tenant's.
			if s.ns != "" {
				continue
			}
		}
		d.Topic = logical
		own = append(own, d)
		total += d.WALBytes
	}
	st.Domains = own
	st.WALBytes = total
	return st, true
}

// TenantStatsAll assembles every tenant's rollup (admin surface: `cachectl
// tenant`). Nil when the cache is single-tenant.
func (c *Cache) TenantStatsAll() []tenant.Stats {
	if c.cfg.Tenants == nil {
		return nil
	}
	out := make([]tenant.Stats, 0, c.cfg.Tenants.Len())
	for _, t := range c.cfg.Tenants.Tenants() {
		out = append(out, c.Scope(t).TenantStats())
	}
	tenant.SortStats(out)
	return out
}
