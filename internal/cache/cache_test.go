package cache

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"unicache/internal/automaton"
	"unicache/internal/types"
)

func newTestCache(t *testing.T) *Cache {
	t.Helper()
	c, err := New(Config{
		TimerPeriod:       -1, // deterministic tests drive TickTimer directly
		MaxAutomatonSteps: 50_000_000,
		PrintWriter:       &strings.Builder{},
		OnRuntimeError:    func(int64, error) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// sinkRecorder collects send() payloads thread-safely.
type sinkRecorder struct {
	mu   sync.Mutex
	evs  [][]types.Value
	cond *sync.Cond
}

func newSinkRecorder() *sinkRecorder {
	s := &sinkRecorder{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *sinkRecorder) sink(vals []types.Value) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.evs = append(s.evs, vals)
	s.cond.Broadcast()
	return nil
}

func (s *sinkRecorder) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.evs)
}

func (s *sinkRecorder) waitFor(t *testing.T, n int, timeout time.Duration) [][]types.Value {
	t.Helper()
	deadline := time.Now().Add(timeout)
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.evs) < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d send events (have %d)", n, len(s.evs))
		}
		s.mu.Unlock()
		time.Sleep(time.Millisecond)
		s.mu.Lock()
	}
	out := make([][]types.Value, len(s.evs))
	copy(out, s.evs)
	return out
}

func mustExec(t *testing.T, c *Cache, src string) {
	t.Helper()
	if _, err := c.Exec(src); err != nil {
		t.Fatalf("exec %q: %v", src, err)
	}
}

func TestEndToEndInsertTriggersAutomaton(t *testing.T) {
	c := newTestCache(t)
	mustExec(t, c, `create table Readings (sensor varchar, v integer)`)
	rec := newSinkRecorder()
	_, err := c.Register(`
subscribe r to Readings;
behavior {
	if (r.v > 100)
		send(Sequence(r.sensor, r.v), 'threshold');
}
`, rec.sink)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, c, `insert into Readings values ('s1', 50)`)
	mustExec(t, c, `insert into Readings values ('s2', 150)`)
	mustExec(t, c, `insert into Readings values ('s3', 250)`)

	evs := rec.waitFor(t, 2, 5*time.Second)
	if len(evs) != 2 {
		t.Fatalf("got %d notifications", len(evs))
	}
	seq := evs[0][0].Seq()
	if seq == nil || seq.At(0).String() != "s2" {
		t.Errorf("first notification = %+v", evs[0])
	}
}

func TestBandwidthScenarioFromPaper(t *testing.T) {
	c := newTestCache(t)
	// Fig. 3 tables.
	mustExec(t, c, `create table Flows (protocol integer, srcip varchar(16), sport integer,
		dstip varchar(16), dport integer, npkts integer, nbytes integer)`)
	mustExec(t, c, `create persistenttable Allowances (ipaddr varchar(16) primary key, bytes integer)`)
	mustExec(t, c, `create persistenttable BWUsage (ipaddr varchar(16) primary key, bytes integer)`)

	// A network-management utility populates the monthly allowances.
	mustExec(t, c, `insert into Allowances values ('192.168.1.10', 1000)`)

	rec := newSinkRecorder()
	// Fig. 4 automaton.
	_, err := c.Register(`
subscribe f to Flows;
associate a with Allowances;
associate b with BWUsage;
int n, limit;
identifier ip;
sequence s;
behavior {
	ip = Identifier(f.dstip);
	if (hasEntry(a, ip)) {
		limit = seqElement(lookup(a, ip), 1);
		if (hasEntry(b, ip))
			n = seqElement(lookup(b, ip), 1);
		else
			n = 0;
		n += f.nbytes;
		s = Sequence(f.dstip, n);
		if (n > limit)
			send(s, limit, 'limit exceeded');
		insert(b, ip, s);
	}
}
`, rec.sink)
	if err != nil {
		t.Fatal(err)
	}

	flow := func(dst string, nbytes int) {
		mustExec(t, c, fmt.Sprintf(
			`insert into Flows values (6, '10.0.0.1', 1234, '%s', 80, 10, %d)`, dst, nbytes))
	}
	flow("8.8.8.8", 400)      // unmonitored
	flow("192.168.1.10", 400) // 400/1000
	flow("192.168.1.10", 400) // 800/1000
	flow("192.168.1.10", 400) // 1200/1000 -> notify
	flow("192.168.1.10", 100) // 1300/1000 -> notify again

	evs := rec.waitFor(t, 2, 5*time.Second)
	if got := evs[0][2].String(); got != "limit exceeded" {
		t.Errorf("notification text = %q", got)
	}
	if lim, _ := evs[0][1].AsInt(); lim != 1000 {
		t.Errorf("notification limit = %d", lim)
	}

	// Global state is immediately visible to ad hoc queries.
	if !c.Registry().WaitIdle(5 * time.Second) {
		t.Fatal("automata did not quiesce")
	}
	res, err := c.Exec(`select bytes from BWUsage where ipaddr = '192.168.1.10'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "1300" {
		t.Errorf("BWUsage = %+v", res.Rows)
	}
	// Unmonitored IP never recorded.
	res, _ = c.Exec(`select count(*) from BWUsage`)
	if res.Rows[0][0].String() != "1" {
		t.Errorf("BWUsage rows = %v", res.Rows[0])
	}
}

func TestPublishCascadesBetweenAutomata(t *testing.T) {
	c := newTestCache(t)
	mustExec(t, c, `create table Raw (v integer)`)
	mustExec(t, c, `create table Derived (v integer)`)

	_, err := c.Register(`
subscribe r to Raw;
behavior { publish('Derived', r.v * 10); }
`, automaton.DiscardSink)
	if err != nil {
		t.Fatal(err)
	}

	rec := newSinkRecorder()
	_, err = c.Register(`
subscribe d to Derived;
behavior { send(d.v); }
`, rec.sink)
	if err != nil {
		t.Fatal(err)
	}

	for i := 1; i <= 3; i++ {
		if err := c.Insert("Raw", types.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	evs := rec.waitFor(t, 3, 5*time.Second)
	for i, ev := range evs {
		if n, _ := ev[0].AsInt(); n != int64((i+1)*10) {
			t.Errorf("cascaded value %d = %v", i, ev[0])
		}
	}
	// The Derived stream is also a queryable table (materialised view).
	if !c.Registry().WaitIdle(5 * time.Second) {
		t.Fatal("not idle")
	}
	res, err := c.Exec(`select count(*) from Derived`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].String() != "3" {
		t.Errorf("Derived rows = %v", res.Rows[0])
	}
}

func TestStrictInsertionOrderAcrossTopics(t *testing.T) {
	c := newTestCache(t)
	mustExec(t, c, `create table A (v integer)`)
	mustExec(t, c, `create table B (v integer)`)
	rec := newSinkRecorder()
	_, err := c.Register(`
subscribe a to A;
subscribe b to B;
behavior {
	if (currentTopic() == 'A')
		send('A', a.v);
	else
		send('B', b.v);
}
`, rec.sink)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		topic := "A"
		if i%2 == 1 {
			topic = "B"
		}
		if err := c.Insert(topic, types.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	evs := rec.waitFor(t, n, 10*time.Second)
	for i, ev := range evs {
		wantTopic := "A"
		if i%2 == 1 {
			wantTopic = "B"
		}
		if s, _ := ev[0].AsStr(); s != wantTopic {
			t.Fatalf("event %d came from %s, want %s (order violated)", i, s, wantTopic)
		}
		if v, _ := ev[1].AsInt(); v != int64(i) {
			t.Fatalf("event %d carries %d (order violated)", i, v)
		}
	}
}

func TestConcurrentInsertersGlobalOrder(t *testing.T) {
	c := newTestCache(t)
	mustExec(t, c, `create table T (src integer, v integer)`)
	var mu sync.Mutex
	var seqs []uint64
	if _, err := c.Watch("T", func(ev *types.Event) {
		mu.Lock()
		seqs = append(seqs, ev.Tuple.Seq)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_ = c.Insert("T", types.Int(int64(w)), types.Int(int64(i)))
			}
		}(w)
	}
	wg.Wait()
	// Watch delivery is asynchronous (a dispatcher drains the tap's inbox):
	// wait for the tap to observe every commit before checking order.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(seqs)
		mu.Unlock()
		if n == writers*per {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("observed %d events, want %d", n, writers*per)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("sequence order violated at %d: %d after %d", i, seqs[i], seqs[i-1])
		}
	}
}

func TestTimerTopicDelivers(t *testing.T) {
	c, err := New(Config{TimerPeriod: 5 * time.Millisecond, PrintWriter: &strings.Builder{}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rec := newSinkRecorder()
	if _, err := c.Register(`
subscribe t to Timer;
behavior { send(t.ts); }
`, rec.sink); err != nil {
		t.Fatal(err)
	}
	evs := rec.waitFor(t, 3, 5*time.Second)
	if ts, ok := evs[0][0].AsStamp(); !ok || ts == 0 {
		t.Errorf("timer tuple = %+v", evs[0])
	}
}

func TestTickTimerDeterministic(t *testing.T) {
	c := newTestCache(t)
	rec := newSinkRecorder()
	if _, err := c.Register(`
subscribe t to Timer;
int n;
behavior { n += 1; send(n); }
`, rec.sink); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.TickTimer(); err != nil {
			t.Fatal(err)
		}
	}
	evs := rec.waitFor(t, 3, 5*time.Second)
	if n, _ := evs[2][0].AsInt(); n != 3 {
		t.Errorf("third tick n = %d", n)
	}
}

func TestRegistrationErrorsReported(t *testing.T) {
	c := newTestCache(t)
	mustExec(t, c, `create table T (v integer)`)
	cases := []struct {
		name, src, want string
	}{
		{"parse error", `subscribe t to T behavior {}`, "expected"},
		{"compile error", `subscribe t to T; behavior { x = 1; }`, "undeclared"},
		{"bind error unknown topic", `subscribe t to Missing; behavior { print('x'); }`, "Missing"},
		{"bind error unknown attr", `subscribe t to T; int n; behavior { n = t.nope; }`, "nope"},
		{"assoc not persistent", `subscribe t to T; associate a with T; behavior { print('x'); }`, "not persistent"},
		{"assoc missing", `subscribe t to T; associate a with Nope; behavior { print('x'); }`, "Nope"},
		{"init failure", `subscribe t to T; int z, v; initialization { v = 1 / z; } behavior { print('x'); }`, "zero"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			_, err := c.Register(tt.src, automaton.DiscardSink)
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Errorf("want error containing %q, got %v", tt.want, err)
			}
		})
	}
	if c.Registry().Len() != 0 {
		t.Errorf("failed registrations must not leave automata behind: %d", c.Registry().Len())
	}
}

func TestRuntimeErrorKeepsAutomatonAlive(t *testing.T) {
	var mu sync.Mutex
	var errs []error
	c, err := New(Config{
		TimerPeriod: -1,
		PrintWriter: &strings.Builder{},
		OnRuntimeError: func(_ int64, e error) {
			mu.Lock()
			errs = append(errs, e)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	mustExec(t, c, `create table T (v integer)`)
	rec := newSinkRecorder()
	a, err := c.Register(`
subscribe t to T;
int x;
behavior {
	x = 10 / t.v;   # explodes when v == 0
	send(x);
}
`, rec.sink)
	if err != nil {
		t.Fatal(err)
	}
	_ = c.Insert("T", types.Int(0)) // error
	_ = c.Insert("T", types.Int(2)) // fine
	rec.waitFor(t, 1, 5*time.Second)
	mu.Lock()
	nerr := len(errs)
	mu.Unlock()
	if nerr != 1 {
		t.Errorf("runtime errors observed = %d, want 1", nerr)
	}
	if a.RuntimeErrors() != 1 {
		t.Errorf("RuntimeErrors() = %d", a.RuntimeErrors())
	}
	if got, _ := rec.evs[0][0].AsInt(); got != 5 {
		t.Errorf("post-error delivery = %v", rec.evs[0][0])
	}
}

func TestUnregisterStopsDelivery(t *testing.T) {
	c := newTestCache(t)
	mustExec(t, c, `create table T (v integer)`)
	rec := newSinkRecorder()
	a, err := c.Register(`subscribe t to T; behavior { send(t.v); }`, rec.sink)
	if err != nil {
		t.Fatal(err)
	}
	_ = c.Insert("T", types.Int(1))
	rec.waitFor(t, 1, 5*time.Second)
	if err := c.Unregister(a.ID()); err != nil {
		t.Fatal(err)
	}
	_ = c.Insert("T", types.Int(2))
	time.Sleep(20 * time.Millisecond)
	if rec.count() != 1 {
		t.Errorf("unregistered automaton still receiving: %d sends", rec.count())
	}
	if err := c.Unregister(a.ID()); err == nil {
		t.Error("double unregister should error")
	}
}

func TestAssocInsertPublishesOnTopic(t *testing.T) {
	c := newTestCache(t)
	mustExec(t, c, `create table Trigger (v integer)`)
	mustExec(t, c, `create persistenttable State (k varchar primary key, v integer)`)

	// Automaton B watches the persistent table's topic: materialised views
	// are event sources too (§3).
	rec := newSinkRecorder()
	if _, err := c.Register(`
subscribe s to State;
behavior { send(s.k, s.v); }
`, rec.sink); err != nil {
		t.Fatal(err)
	}
	// Automaton A writes to the persistent table via its association.
	if _, err := c.Register(`
subscribe t to Trigger;
associate st with State;
behavior { insert(st, Identifier('counter'), Sequence('counter', t.v)); }
`, automaton.DiscardSink); err != nil {
		t.Fatal(err)
	}
	_ = c.Insert("Trigger", types.Int(42))
	evs := rec.waitFor(t, 1, 5*time.Second)
	if k, _ := evs[0][0].AsStr(); k != "counter" {
		t.Errorf("state event key = %q", k)
	}
	if v, _ := evs[0][1].AsInt(); v != 42 {
		t.Errorf("state event value = %v", evs[0][1])
	}
}

func TestAutoCreateStreamsExtension(t *testing.T) {
	c, err := New(Config{
		TimerPeriod:       -1,
		AutoCreateStreams: true,
		PrintWriter:       &strings.Builder{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	mustExec(t, c, `create table In (v integer)`)
	if _, err := c.Register(`
subscribe i to In;
behavior { publish('OnTheFly', i.v, 'tag'); }
`, automaton.DiscardSink); err != nil {
		t.Fatal(err)
	}
	_ = c.Insert("In", types.Int(9))
	if !c.Registry().WaitIdle(5 * time.Second) {
		t.Fatal("not idle")
	}
	res, err := c.Exec(`select * from OnTheFly`)
	if err != nil {
		t.Fatalf("auto-created stream not queryable: %v", err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "9" {
		t.Errorf("OnTheFly rows = %+v", res.Rows)
	}
	// Without the extension, publishing to a missing topic is an error.
	c2 := newTestCache(t)
	mustExec(t, c2, `create table In (v integer)`)
	errCh := make(chan error, 1)
	c2e, err := New(Config{
		TimerPeriod: -1,
		PrintWriter: &strings.Builder{},
		OnRuntimeError: func(_ int64, e error) {
			select {
			case errCh <- e:
			default:
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c2e.Close()
	if _, err := c2e.Exec(`create table In (v integer)`); err != nil {
		t.Fatal(err)
	}
	if _, err := c2e.Register(`
subscribe i to In;
behavior { publish('Nope', i.v); }
`, automaton.DiscardSink); err != nil {
		t.Fatal(err)
	}
	_ = c2e.Insert("In", types.Int(1))
	select {
	case e := <-errCh:
		if !strings.Contains(e.Error(), "Nope") {
			t.Errorf("unexpected runtime error: %v", e)
		}
	case <-time.After(5 * time.Second):
		t.Error("publish to missing topic should produce a runtime error")
	}
}

func TestSQLOverCache(t *testing.T) {
	c := newTestCache(t)
	mustExec(t, c, `create table Stocks (name varchar, price real)`)
	for i := 0; i < 5; i++ {
		mustExec(t, c, fmt.Sprintf(`insert into Stocks values ('ACME', %d.5)`, 10+i))
	}
	res, err := c.Exec(`select name, max(price) as hi from Stocks group by name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].String() != "14.5" {
		t.Errorf("group-by result = %+v", res.Rows)
	}
	// The continuous form: select ... since.
	res, err = c.Exec(`select count(*) from Stocks since 0`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].String() != "5" {
		t.Errorf("since-0 count = %v", res.Rows[0])
	}
}

func TestCacheTableManagement(t *testing.T) {
	c := newTestCache(t)
	mustExec(t, c, `create table T (v integer)`)
	if _, err := c.Exec(`create table T (v integer)`); err == nil {
		t.Error("duplicate table should error")
	}
	if _, err := c.LookupTable("Nope"); err == nil {
		t.Error("missing table should error")
	}
	if _, err := c.PersistentTable("T"); err == nil {
		t.Error("PersistentTable on stream should error")
	}
	names := c.Tables()
	// Timer is built in.
	if len(names) != 2 || names[0] != "T" && names[1] != "T" {
		t.Errorf("tables = %v", names)
	}
	schemas := c.Schemas()
	if _, ok := schemas[TimerTopic]; !ok {
		t.Error("Timer schema missing")
	}
}

func TestWaitIdleTimesOut(t *testing.T) {
	c := newTestCache(t)
	if !c.Registry().WaitIdle(time.Second) {
		t.Error("empty registry should be idle")
	}
}
