package rpc

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"unicache/internal/automaton"
	"unicache/internal/pubsub"
	"unicache/internal/sql"
	"unicache/internal/types"
	"unicache/internal/uerr"
	"unicache/internal/wire"
)

// SendEvent is one send() notification pushed from a registered automaton
// to its application.
type SendEvent struct {
	AutomatonID int64
	Vals        []types.Value
}

// ClientConfig tunes a client's event-delivery behaviour.
type ClientConfig struct {
	// EventBuffer is the capacity of the Events() channel (default 4096).
	EventBuffer int
	// EventPolicy decides what the read loop does when the Events() buffer
	// is full because the application is not draining it:
	//
	//   - pubsub.Block (default): the read loop parks until the
	//     application consumes an event. Nothing is lost, but while parked
	//     no RPC replies are processed either — a stalled Events()
	//     consumer wedges every in-flight call (and, through TCP
	//     backpressure, eventually the server's push dispatcher).
	//   - pubsub.DropOldest: the oldest buffered notification is dropped
	//     (counted in DroppedEvents) and the read loop never blocks, so
	//     RPC replies keep flowing no matter how far behind the
	//     application falls.
	//
	// Other policies are not meaningful here and behave like Block.
	EventPolicy pubsub.Policy
	// Token authenticates the connection to a multi-tenant server: when
	// non-empty, DialWith performs the msgAuth handshake before returning,
	// so the client comes back already bound to its tenant (or an
	// ErrUnauthorized error). Leave empty for single-tenant servers.
	Token string
}

// Client is an application-side connection to the cache.
type Client struct {
	tr        *transport
	events    chan SendEvent
	policy    pubsub.Policy
	evDropped atomic.Uint64
	// nextStream allocates per-connection insert-stream ids. Ids are never
	// reused, so a server can tell a duplicate open from a stale one.
	nextStream atomic.Uint64

	// deliverMu serialises watch-event delivery: the read loop holds it
	// while invoking a watch callback (or staging an event whose WatchWith
	// call has not yet recorded its id), and WatchWith holds it while
	// installing the callback and replaying staged events — so a tap's
	// events reach its callback in wire order even across the
	// registration window.
	deliverMu sync.Mutex
	watches   map[int64]*clientWatch
	staged    map[int64][]*types.Event
	// retired records ids passed to Unwatch: watcher ids are never
	// reused, so late events for a retired id are discarded instead of
	// staged (staging is only for the registration race).
	retired map[int64]struct{}

	// schemaMu guards schemas, the per-connection describe cache that
	// makes watch events self-describing (see Client.Schema).
	schemaMu sync.Mutex
	schemas  map[string]*types.Schema

	mu      sync.Mutex
	nextID  uint32
	pending map[uint32]chan []byte
	err     error
	closed  bool
	done    chan struct{}
	// quit is closed by Close before it waits for the read loop: a read
	// loop parked in a Block-policy event send must be unblockable, or
	// Close could never return (closing the transport cannot interrupt a
	// channel send).
	quit chan struct{}
}

// Dial connects to a cache server over TCP with default config.
func Dial(addr string) (*Client, error) {
	return DialWith(addr, ClientConfig{})
}

// DialWith connects to a cache server over TCP. With a Token configured it
// also runs the tenant auth handshake, closing the connection on failure.
func DialWith(addr string, cfg ClientConfig) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := NewClientWith(conn, cfg)
	if cfg.Token != "" {
		if _, err := c.Auth(cfg.Token); err != nil {
			_ = c.Close()
			return nil, err
		}
	}
	return c, nil
}

// NewClient wraps an established connection (e.g. one side of net.Pipe)
// with default config.
func NewClient(conn net.Conn) *Client {
	return NewClientWith(conn, ClientConfig{})
}

// NewClientWith wraps an established connection.
func NewClientWith(conn net.Conn, cfg ClientConfig) *Client {
	if cfg.EventBuffer <= 0 {
		cfg.EventBuffer = 4096
	}
	c := &Client{
		tr:      newTransport(conn),
		events:  make(chan SendEvent, cfg.EventBuffer),
		policy:  cfg.EventPolicy,
		watches: make(map[int64]*clientWatch),
		staged:  make(map[int64][]*types.Event),
		retired: make(map[int64]struct{}),
		schemas: make(map[string]*types.Schema),
		pending: make(map[uint32]chan []byte),
		done:    make(chan struct{}),
		quit:    make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// Events returns the channel of send() notifications from automata this
// client registered. The channel closes when the connection dies. See
// ClientConfig.EventPolicy for what happens when the application stops
// draining it.
func (c *Client) Events() <-chan SendEvent { return c.events }

// DroppedEvents returns the number of send() notifications shed under the
// DropOldest event policy.
func (c *Client) DroppedEvents() uint64 { return c.evDropped.Load() }

// Close tears down the connection; pending calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	close(c.quit)
	err := c.tr.close()
	<-c.done
	return err
}

func (c *Client) readLoop() {
	defer close(c.done)
	for {
		msgID, payload, err := c.tr.readMessage()
		if err != nil {
			// A dead connection is a closed engine from the caller's side:
			// wrap ErrClosed so errors.Is can classify the failure.
			c.fail(fmt.Errorf("rpc: connection lost: %v: %w", err, uerr.ErrClosed))
			return
		}
		if len(payload) == 0 {
			continue
		}
		if msgID == 0 && (payload[0] == msgSendEvent || payload[0] == msgSendEventBatch) {
			d := wire.NewDecoder(payload[1:])
			n := uint32(1)
			if payload[0] == msgSendEventBatch {
				var err error
				if n, err = d.U32(); err != nil {
					continue
				}
			}
			for i := uint32(0); i < n; i++ {
				id, err := d.I64()
				if err != nil {
					break
				}
				if id < 0 {
					// Watch event: commit timestamp, sequence, tuple values.
					ts, err := d.I64()
					if err != nil {
						break
					}
					seq, err := d.U64()
					if err != nil {
						break
					}
					vals, err := d.Values()
					if err != nil {
						break
					}
					c.deliverWatchEvent(id, &types.Event{
						Tuple: &types.Tuple{Seq: seq, TS: types.Timestamp(ts), Vals: vals},
					})
					continue
				}
				vals, err := d.Values()
				if err != nil {
					break
				}
				c.deliverEvent(SendEvent{AutomatonID: id, Vals: vals})
			}
			continue
		}
		c.mu.Lock()
		ch, ok := c.pending[msgID]
		delete(c.pending, msgID)
		c.mu.Unlock()
		if ok {
			ch <- payload
		}
	}
}

// deliverEvent hands one push notification to the Events() channel,
// applying the configured overflow policy. Only the read loop calls it, so
// under DropOldest the drop-then-retry loop always terminates: there is no
// competing sender to steal the freed slot.
func (c *Client) deliverEvent(ev SendEvent) {
	if c.policy == pubsub.DropOldest {
		for {
			select {
			case c.events <- ev:
				return
			default:
			}
			select {
			case <-c.events:
				c.evDropped.Add(1)
			default:
			}
		}
	}
	// Block: parking here applies TCP backpressure to the server if the
	// application cannot keep up — and stalls RPC replies on this
	// connection until the application drains an event. Close unparks the
	// send via quit (the undelivered event is dropped with the dying
	// connection).
	select {
	case c.events <- ev:
	case <-c.quit:
	}
}

// clientWatch is one live server-side watch this client registered: the
// topic it taps (stamped onto reconstructed events), the topic's schema
// as of watch creation (stamped likewise; nil if it could not be
// resolved), and the application callback.
type clientWatch struct {
	topic  string
	schema *types.Schema
	fn     func(*types.Event)
}

// maxStagedPerWatch bounds the registration-race staging buffer: a
// correct peer cannot exceed it (it matches the server's default tap
// inbox), and a hostile or broken one must not grow client memory.
const maxStagedPerWatch = 4096

// deliverWatchEvent routes one pushed watch event to its callback on the
// read-loop goroutine, preserving wire order. An event whose WatchWith
// call has not yet recorded its id (the server releases watch events as
// soon as the msgWatchOK reply is on the wire, which can beat the caller
// goroutine to the bookkeeping) is staged and replayed, still in order,
// when WatchWith installs the callback; an event for an Unwatch-retired
// id is a late in-flight delivery and is discarded, as Unwatch promises.
func (c *Client) deliverWatchEvent(id int64, ev *types.Event) {
	c.deliverMu.Lock()
	w, ok := c.watches[id]
	if !ok {
		if _, dead := c.retired[id]; !dead && len(c.staged[id]) < maxStagedPerWatch {
			c.staged[id] = append(c.staged[id], ev)
		}
		c.deliverMu.Unlock()
		return
	}
	ev.Topic = w.topic
	ev.Schema = w.schema
	// Deliver under deliverMu: only the read loop and a WatchWith replay
	// invoke callbacks, and the lock is what keeps those two in order.
	w.fn(ev)
	c.deliverMu.Unlock()
}

func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	pending := c.pending
	c.pending = make(map[uint32]chan []byte)
	c.mu.Unlock()
	for _, ch := range pending {
		close(ch)
	}
	close(c.events)
}

// call performs one request/response round trip.
func (c *Client) call(payload []byte) ([]byte, error) {
	ch := make(chan []byte, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	if c.nextID == 0 { // id 0 is reserved for pushes
		c.nextID = 1
	}
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()

	if err := c.tr.writeMessage(id, payload); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, err
	}
	resp, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = fmt.Errorf("rpc: connection closed: %w", uerr.ErrClosed)
		}
		return nil, err
	}
	if resp[0] == msgErr {
		d := wire.NewDecoder(resp[1:])
		code, err := d.U16()
		if err != nil {
			return nil, err
		}
		msg, err := d.Str()
		if err != nil {
			return nil, err
		}
		// The code restores the error's sentinel identity, so errors.Is
		// answers the same over the wire as it does embedded.
		return nil, uerr.FromCode(code, msg)
	}
	return resp, nil
}

// Ping round-trips a no-op request.
func (c *Client) Ping() error {
	e := wire.NewEncoder(8)
	e.U8(msgPing)
	resp, err := c.call(e.Bytes())
	if err != nil {
		return err
	}
	if resp[0] != msgPingOK {
		return fmt.Errorf("rpc: unexpected reply %d", resp[0])
	}
	return nil
}

// Auth binds the connection to the tenant owning token and returns the
// tenant's name. On a multi-tenant server every request except Ping fails
// with uerr.ErrUnauthorized until Auth succeeds; a server without tenants
// rejects Auth outright. A connection authenticates at most once.
func (c *Client) Auth(token string) (string, error) {
	e := wire.NewEncoder(16 + len(token))
	e.U8(msgAuth)
	e.Str(token)
	resp, err := c.call(e.Bytes())
	if err != nil {
		return "", err
	}
	if resp[0] != msgAuthOK {
		return "", fmt.Errorf("rpc: unexpected reply %d", resp[0])
	}
	return wire.NewDecoder(resp[1:]).Str()
}

// Exec runs one SQL statement and returns its result.
func (c *Client) Exec(src string) (*sql.Result, error) {
	e := wire.NewEncoder(64 + len(src))
	e.U8(msgExec)
	e.Str(src)
	resp, err := c.call(e.Bytes())
	if err != nil {
		return nil, err
	}
	if resp[0] != msgExecOK {
		return nil, fmt.Errorf("rpc: unexpected reply %d", resp[0])
	}
	return wire.NewDecoder(resp[1:]).Result()
}

// Insert is the fast-path typed insert (no SQL parsing server-side).
func (c *Client) Insert(table string, vals ...types.Value) error {
	e := wire.NewEncoder(64)
	e.U8(msgInsert)
	e.Str(table)
	if err := e.Values(vals); err != nil {
		return err
	}
	resp, err := c.call(e.Bytes())
	if err != nil {
		return c.noteTableErr(table, err)
	}
	if resp[0] != msgInsertOK {
		return fmt.Errorf("rpc: unexpected reply %d", resp[0])
	}
	return nil
}

// InsertBatch commits a run of rows into one table. A batch whose encoding
// fits one stream chunk ships as a single msgInsertBatch round trip —
// server-side one commit-mutex acquisition, one contiguous sequence run and
// one publication per subscriber for the whole batch. A larger batch is
// poured through an insert stream in streamChunkBudget-sized chunks (each
// chunk committing as its own batch, in order) so an arbitrarily large load
// costs two round trips instead of one per chunk and never trips the
// message size limit. Use NewBatcher for automatic size/time-based
// flushing, or NewInsertStream to feed rows incrementally without holding
// them all in memory.
func (c *Client) InsertBatch(table string, rows [][]types.Value) error {
	if len(rows) == 0 {
		return nil
	}
	payload := wire.NewEncoder(64 * len(rows))
	// chunks records where each chunk's rows start in payload; a new chunk
	// opens when appending a row would push the current one past the budget.
	type chunkMark struct{ off, nrows int }
	chunks := []chunkMark{{0, 0}}
	for i, vals := range rows {
		before := payload.Len()
		if err := payload.Values(vals); err != nil {
			return fmt.Errorf("rpc: batch row %d: %w", i, err)
		}
		cur := &chunks[len(chunks)-1]
		if cur.nrows > 0 && payload.Len()-cur.off > streamChunkBudget {
			chunks = append(chunks, chunkMark{before, 1})
		} else {
			cur.nrows++
		}
	}
	buf := payload.Bytes()
	if len(chunks) == 1 {
		return c.insertBatchRaw(table, len(rows), buf)
	}
	st, err := c.NewInsertStream(table)
	if err != nil {
		return err
	}
	for i, ch := range chunks {
		end := len(buf)
		if i+1 < len(chunks) {
			end = chunks[i+1].off
		}
		if err := st.addChunk(ch.nrows, buf[ch.off:end]); err != nil {
			_, _ = st.Close() // release server-side stream state
			return err
		}
	}
	_, err = st.Close()
	return err
}

// insertBatchRaw ships nrows pre-encoded rows — a concatenation of
// Encoder.Values outputs — as one msgInsertBatch. The Batcher's
// size-bounded flush uses it so each row is wire-encoded exactly once no
// matter how the flush is chunked.
func (c *Client) insertBatchRaw(table string, nrows int, rowsPayload []byte) error {
	if nrows == 0 {
		return nil
	}
	e := wire.NewEncoder(16 + len(table) + len(rowsPayload))
	e.U8(msgInsertBatch)
	e.Str(table)
	e.U32(uint32(nrows))
	e.Raw(rowsPayload)
	return c.noteTableErr(table, c.callInsertBatch(e.Bytes(), nrows))
}

// callInsertBatch performs the msgInsertBatch round trip over an encoded
// request. The size guard is defensive: every sender now chunks at
// streamChunkBudget (far below maxMessageSize) and pours anything larger
// through an insert stream, so no batch, however big, can reach the
// server's connection-killing message limit.
func (c *Client) callInsertBatch(msg []byte, nrows int) error {
	if len(msg) > maxMessageSize {
		return fmt.Errorf("rpc: batch of %d rows encodes to %d bytes, over the %d-byte message limit",
			nrows, len(msg), maxMessageSize)
	}
	resp, err := c.call(msg)
	if err != nil {
		return err
	}
	if resp[0] != msgInsertBatchOK {
		return fmt.Errorf("rpc: unexpected reply %d", resp[0])
	}
	n, err := wire.NewDecoder(resp[1:]).U32()
	if err != nil {
		return err
	}
	if int(n) != nrows {
		return fmt.Errorf("rpc: batch committed %d of %d rows", n, nrows)
	}
	return nil
}

// InsertStream is an open streaming bulk insert into one table: rows are
// buffered into streamChunkBudget-sized chunks and poured down the
// connection without per-chunk acknowledgements (exactly two round trips —
// open and Close — no matter how many chunks flow between). Each chunk
// commits server-side as its own batch, in order; the first commit error is
// recorded on the stream and surfaces from Close, which also confirms the
// total row count. The stream holds at most one chunk in client memory, so
// a multi-GB load streams in bounded space, backpressured by TCP (the
// server commits a chunk before reading the next message).
//
// An InsertStream is not safe for concurrent use. Rows accepted after the
// chunk containing a failed commit are discarded server-side; Close reports
// how many rows actually committed.
type InsertStream struct {
	c     *Client
	id    uint64
	table string

	buf     *wire.Encoder // chunk under assembly (concatenated Values payloads)
	scratch *wire.Encoder // single-row staging, so a too-big row can't split
	nrows   int           // rows in buf
	shipped uint64        // rows sent in completed chunks
	err     error
	closed  bool
}

// NewInsertStream opens a streaming bulk insert into table. The open is one
// round trip; Add then streams without waiting, and Close flushes, confirms
// the committed row count, and releases the server-side stream state. The
// table's existence is checked when the first chunk commits, not at open.
func (c *Client) NewInsertStream(table string) (*InsertStream, error) {
	id := c.nextStream.Add(1)
	e := wire.NewEncoder(32 + len(table))
	e.U8(msgInsertStream)
	e.U64(id)
	e.Str(table)
	resp, err := c.call(e.Bytes())
	if err != nil {
		return nil, err
	}
	if resp[0] != msgInsertStreamOK {
		return nil, fmt.Errorf("rpc: unexpected reply %d", resp[0])
	}
	return &InsertStream{
		c:       c,
		id:      id,
		table:   table,
		buf:     wire.NewEncoder(4096),
		scratch: wire.NewEncoder(256),
	}, nil
}

// Add buffers one row, shipping the chunk under assembly when it reaches
// the chunk budget. A row that cannot be wire-encoded is rejected without
// poisoning the stream; a transport failure is sticky and also surfaces
// from Close.
func (s *InsertStream) Add(vals ...types.Value) error {
	if s.closed {
		return errors.New("rpc: insert stream is closed")
	}
	if s.err != nil {
		return s.err
	}
	s.scratch.Reset()
	if err := s.scratch.Values(vals); err != nil {
		return err
	}
	return s.addChunk(1, s.scratch.Bytes())
}

// addChunk splices nrows pre-encoded rows (concatenated Encoder.Values
// payloads) into the stream. Internal seam for InsertBatch and the Batcher,
// whose rows are already encoded: a payload at or past the budget ships
// directly, without a copy through buf.
func (s *InsertStream) addChunk(nrows int, payload []byte) error {
	if s.closed {
		return errors.New("rpc: insert stream is closed")
	}
	if s.err != nil {
		return s.err
	}
	if s.nrows == 0 && len(payload) >= streamChunkBudget {
		return s.send(nrows, payload)
	}
	if s.nrows > 0 && s.buf.Len()+len(payload) > streamChunkBudget {
		if err := s.flush(); err != nil {
			return err
		}
		if len(payload) >= streamChunkBudget {
			return s.send(nrows, payload)
		}
	}
	s.buf.Raw(payload)
	s.nrows += nrows
	if s.buf.Len() >= streamChunkBudget {
		return s.flush()
	}
	return nil
}

// flush ships the chunk under assembly, if any.
func (s *InsertStream) flush() error {
	if s.nrows == 0 {
		return nil
	}
	err := s.send(s.nrows, s.buf.Bytes())
	s.nrows = 0
	s.buf.Reset()
	return err
}

// send writes one msgInsertStreamChunk with message id 0: fire-and-forget,
// no reply slot, no round trip.
func (s *InsertStream) send(nrows int, rowsPayload []byte) error {
	e := wire.NewEncoder(16 + len(rowsPayload))
	e.U8(msgInsertStreamChunk)
	e.U64(s.id)
	e.U32(uint32(nrows))
	e.Raw(rowsPayload)
	if e.Len() > maxMessageSize {
		s.err = fmt.Errorf("rpc: stream chunk of %d rows encodes to %d bytes, over the %d-byte message limit",
			nrows, e.Len(), maxMessageSize)
		return s.err
	}
	if err := s.c.tr.writeMessage(0, e.Bytes()); err != nil {
		s.err = err
		return err
	}
	s.shipped += uint64(nrows)
	return nil
}

// Close flushes the final chunk, ends the stream (the second and last round
// trip), and returns the number of rows the server committed. The error is
// the stream's first failure from any source: a chunk commit server-side, a
// transport write, or a count mismatch. Close always sends the end message
// when the transport still works, so the server releases its stream state
// even on an errored stream.
func (s *InsertStream) Close() (uint64, error) {
	if s.closed {
		return s.shipped, s.err
	}
	s.closed = true
	if s.err == nil {
		_ = s.flush() // failure is sticky in s.err
	}
	e := wire.NewEncoder(16)
	e.U8(msgInsertStreamEnd)
	e.U64(s.id)
	resp, err := s.c.call(e.Bytes())
	if s.err != nil {
		return s.shipped, s.c.noteTableErr(s.table, s.err)
	}
	if err != nil {
		s.err = err
		return s.shipped, s.c.noteTableErr(s.table, err)
	}
	if resp[0] != msgInsertStreamEndOK {
		s.err = fmt.Errorf("rpc: unexpected reply %d", resp[0])
		return s.shipped, s.err
	}
	n, err := wire.NewDecoder(resp[1:]).U64()
	if err != nil {
		s.err = err
		return s.shipped, err
	}
	if n != s.shipped {
		s.err = fmt.Errorf("rpc: stream committed %d of %d rows", n, s.shipped)
		return n, s.err
	}
	return n, nil
}

// Register submits automaton source code. On success it returns the
// automaton id; compile/bind/init errors come back as errors.
func (c *Client) Register(source string) (int64, error) {
	e := wire.NewEncoder(64 + len(source))
	e.U8(msgRegister)
	e.Str(source)
	resp, err := c.call(e.Bytes())
	if err != nil {
		return 0, err
	}
	if resp[0] != msgRegisterOK {
		return 0, fmt.Errorf("rpc: unexpected reply %d", resp[0])
	}
	return wire.NewDecoder(resp[1:]).I64()
}

// RegisterWith is Register with per-automaton Options carried on the
// wire: the server registers the automaton with this inbox bound and
// overflow policy instead of the cache-wide defaults (capacity -1 forces
// an unbounded inbox even when the server default is bounded).
func (c *Client) RegisterWith(source string, opts automaton.Options) (int64, error) {
	e := wire.NewEncoder(80 + len(source))
	e.U8(msgRegisterWith)
	e.Str(source)
	e.I64(int64(opts.InboxCapacity))
	e.U8(uint8(opts.InboxPolicy))
	resp, err := c.call(e.Bytes())
	if err != nil {
		return 0, err
	}
	if resp[0] != msgRegisterOK {
		return 0, fmt.Errorf("rpc: unexpected reply %d", resp[0])
	}
	return wire.NewDecoder(resp[1:]).I64()
}

// Unregister stops an automaton previously registered on this connection.
func (c *Client) Unregister(id int64) error {
	e := wire.NewEncoder(16)
	e.U8(msgUnregister)
	e.I64(id)
	resp, err := c.call(e.Bytes())
	if err != nil {
		return err
	}
	if resp[0] != msgUnregOK {
		return fmt.Errorf("rpc: unexpected reply %d", resp[0])
	}
	return nil
}

// WatchOptions tunes a server-side watch tap (mirrors cache.WatchOpts:
// Queue 0 means the server default, negative unbounded).
type WatchOptions struct {
	Queue  int
	Policy pubsub.Policy
}

// Watch attaches a server-side tap to a topic with default options.
func (c *Client) Watch(topic string, fn func(*types.Event)) (int64, error) {
	return c.WatchWith(topic, fn, WatchOptions{})
}

// WatchWith attaches a server-side dispatcher-backed tap to a topic: the
// server watches the topic on this connection's behalf and pushes each
// event over the coalesced push path. fn runs on the client's read-loop
// goroutine in commit order — a blocking fn therefore stalls RPC replies
// on this connection, the same trade ClientConfig.EventPolicy documents
// for Events(). Reconstructed events carry the topic, commit timestamp,
// sequence number, tuple values, and the topic's schema resolved through
// the connection's describe cache (Schema is nil only if that resolution
// failed). The tap is torn down by Unwatch, Close, or connection death.
func (c *Client) WatchWith(topic string, fn func(*types.Event), opts WatchOptions) (int64, error) {
	e := wire.NewEncoder(32 + len(topic))
	e.U8(msgWatch)
	e.Str(topic)
	e.I64(int64(opts.Queue))
	e.U8(uint8(opts.Policy))
	resp, err := c.call(e.Bytes())
	if err != nil {
		return 0, err
	}
	if resp[0] != msgWatchOK {
		return 0, fmt.Errorf("rpc: unexpected reply %d", resp[0])
	}
	id, err := wire.NewDecoder(resp[1:]).I64()
	if err != nil {
		return 0, err
	}
	// Resolve the topic's schema so pushed events are self-describing.
	// Best-effort by design: the watch is already live server-side, and a
	// failed describe (e.g. a concurrent drop) must not tear it down —
	// events then carry a nil Schema, the pre-cache contract.
	schema, _ := c.Schema(topic)
	c.deliverMu.Lock()
	w := &clientWatch{topic: topic, schema: schema, fn: fn}
	c.watches[id] = w
	// Replay events that arrived between the reply hitting the read loop
	// and this bookkeeping, in order; the read loop is parked on deliverMu
	// if it has more, so order stays intact.
	for _, ev := range c.staged[id] {
		ev.Topic = topic
		ev.Schema = schema
		fn(ev)
	}
	delete(c.staged, id)
	c.deliverMu.Unlock()
	return id, nil
}

// Unwatch tears down a watch previously created on this connection. After
// it returns, the callback is no longer invoked (events already pushed
// and in flight are discarded by id).
func (c *Client) Unwatch(id int64) error {
	c.deliverMu.Lock()
	delete(c.watches, id)
	delete(c.staged, id)
	c.retired[id] = struct{}{}
	c.deliverMu.Unlock()
	e := wire.NewEncoder(16)
	e.U8(msgUnwatch)
	e.I64(id)
	resp, err := c.call(e.Bytes())
	if err != nil {
		return err
	}
	if resp[0] != msgUnwatchOK {
		return fmt.Errorf("rpc: unexpected reply %d", resp[0])
	}
	return nil
}

// WatchStat is one watch tap's server-side observability row.
type WatchStat struct {
	ID      int64
	Topic   string
	Depth   int
	Dropped uint64
}

// AutomatonStat is one automaton's server-side observability row.
type AutomatonStat struct {
	ID        int64
	Depth     int
	Dropped   uint64
	Processed uint64
}

// ServerStats is the msgStats reply: every live watch tap and automaton
// on the server, with their dispatch-pipeline depth and dropped counters,
// plus the server's durability counters when it runs with a WAL.
type ServerStats struct {
	Watches  []WatchStat
	Automata []AutomatonStat
	// Durability is nil when the server runs in-memory (or predates the
	// durability section of the stats reply).
	Durability *DurabilityStat
	// Tenant is the connection's own tenant rollup; nil unless the
	// connection is tenant-bound.
	Tenant *TenantStat
}

// TenantStat is one tenant's accounting rollup: live resource counts,
// cumulative commit/drop/reject counters, WAL footprint, and the
// configured quota (zero fields mean unlimited).
type TenantStat struct {
	Name         string
	Tables       int64
	Automata     int64
	Watches      int64
	Events       uint64
	EventsPerSec float64
	Dropped      uint64
	Rejected     uint64
	WALBytes     int64

	MaxTables       int64
	MaxAutomata     int64
	MaxInboxDepth   int64
	MaxEventsPerSec int64
	MaxWALBytes     int64
}

func decodeTenantStat(d *wire.Decoder) (TenantStat, error) {
	var ts TenantStat
	var err error
	if ts.Name, err = d.Str(); err != nil {
		return ts, err
	}
	for _, p := range []*int64{&ts.Tables, &ts.Automata, &ts.Watches} {
		if *p, err = d.I64(); err != nil {
			return ts, err
		}
	}
	if ts.Events, err = d.U64(); err != nil {
		return ts, err
	}
	if ts.EventsPerSec, err = d.F64(); err != nil {
		return ts, err
	}
	if ts.Dropped, err = d.U64(); err != nil {
		return ts, err
	}
	if ts.Rejected, err = d.U64(); err != nil {
		return ts, err
	}
	for _, p := range []*int64{&ts.WALBytes, &ts.MaxTables, &ts.MaxAutomata, &ts.MaxInboxDepth, &ts.MaxEventsPerSec, &ts.MaxWALBytes} {
		if *p, err = d.I64(); err != nil {
			return ts, err
		}
	}
	return ts, nil
}

// TenantStats fetches the connection's tenant rollup. It fails with
// uerr.ErrUnauthorized on a server without tenants.
func (c *Client) TenantStats() (TenantStat, error) {
	e := wire.NewEncoder(8)
	e.U8(msgTenantStats)
	resp, err := c.call(e.Bytes())
	if err != nil {
		return TenantStat{}, err
	}
	if resp[0] != msgTenantStatsOK {
		return TenantStat{}, fmt.Errorf("rpc: unexpected reply %d", resp[0])
	}
	return decodeTenantStat(wire.NewDecoder(resp[1:]))
}

// DurabilityStat mirrors the server cache's durability counters.
type DurabilityStat struct {
	Dir          string
	WALBytes     int64
	Fsyncs       uint64
	Snapshots    uint64
	LastSnapshot int64
	Replayed     uint64
	TornTails    uint64
	Domains      []DomainDurabilityStat
}

// DomainDurabilityStat is one commit domain's durability row.
type DomainDurabilityStat struct {
	Topic    string
	Seq      uint64
	WALBytes int64
}

// Stats fetches the server's per-subscription observability counters, so
// an operator can see which subscriptions are behind.
func (c *Client) Stats() (ServerStats, error) {
	e := wire.NewEncoder(8)
	e.U8(msgStats)
	resp, err := c.call(e.Bytes())
	if err != nil {
		return ServerStats{}, err
	}
	if resp[0] != msgStatsOK {
		return ServerStats{}, fmt.Errorf("rpc: unexpected reply %d", resp[0])
	}
	d := wire.NewDecoder(resp[1:])
	var st ServerStats
	nw, err := d.U32()
	if err != nil {
		return st, err
	}
	for i := uint32(0); i < nw; i++ {
		var w WatchStat
		if w.ID, err = d.I64(); err != nil {
			return st, err
		}
		if w.Topic, err = d.Str(); err != nil {
			return st, err
		}
		depth, err := d.I64()
		if err != nil {
			return st, err
		}
		w.Depth = int(depth)
		if w.Dropped, err = d.U64(); err != nil {
			return st, err
		}
		st.Watches = append(st.Watches, w)
	}
	na, err := d.U32()
	if err != nil {
		return st, err
	}
	for i := uint32(0); i < na; i++ {
		var a AutomatonStat
		if a.ID, err = d.I64(); err != nil {
			return st, err
		}
		depth, err := d.I64()
		if err != nil {
			return st, err
		}
		a.Depth = int(depth)
		if a.Dropped, err = d.U64(); err != nil {
			return st, err
		}
		if a.Processed, err = d.U64(); err != nil {
			return st, err
		}
		st.Automata = append(st.Automata, a)
	}
	// Optional trailing durability section: the flag itself is absent on
	// servers predating it, and 0 on in-memory servers (which may still
	// append the tenant section after it).
	present, err := d.U8()
	if err != nil {
		return st, nil
	}
	if present == 1 {
		if err := decodeDurability(d, &st); err != nil {
			return st, err
		}
	}
	// Optional trailing tenant section, present only on a tenant-bound
	// connection.
	tpresent, err := d.U8()
	if err != nil || tpresent == 0 {
		return st, nil
	}
	ts, err := decodeTenantStat(d)
	if err != nil {
		return st, err
	}
	st.Tenant = &ts
	return st, nil
}

func decodeDurability(d *wire.Decoder, st *ServerStats) error {
	var dur DurabilityStat
	var err error
	if dur.Dir, err = d.Str(); err != nil {
		return err
	}
	if dur.WALBytes, err = d.I64(); err != nil {
		return err
	}
	if dur.Fsyncs, err = d.U64(); err != nil {
		return err
	}
	if dur.Snapshots, err = d.U64(); err != nil {
		return err
	}
	if dur.LastSnapshot, err = d.I64(); err != nil {
		return err
	}
	if dur.Replayed, err = d.U64(); err != nil {
		return err
	}
	if dur.TornTails, err = d.U64(); err != nil {
		return err
	}
	nd, err := d.U32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < nd; i++ {
		var dd DomainDurabilityStat
		if dd.Topic, err = d.Str(); err != nil {
			return err
		}
		if dd.Seq, err = d.U64(); err != nil {
			return err
		}
		if dd.WALBytes, err = d.I64(); err != nil {
			return err
		}
		dur.Domains = append(dur.Domains, dd)
	}
	st.Durability = &dur
	return nil
}
