package rpc

import (
	"errors"
	"fmt"
	"time"

	"unicache/internal/sql"
	"unicache/internal/types"
	"unicache/internal/uerr"
	"unicache/internal/wire"
)

// Schema resolves a topic's schema through the connection's describe
// cache. The first call per topic round-trips a `describe` statement and
// reconstructs a *types.Schema from its rows; later calls return the
// cached pointer without touching the wire. WatchWith uses it to stamp
// pushed watch events with their schema, so remote events are
// self-describing like embedded ones.
//
// The cache is invalidated when an operation on the topic reports
// ErrNoSuchTable (the table was dropped — or dropped and recreated with a
// different shape — since the cache entry was taken); the next Schema
// call re-resolves. Events already stamped keep the schema that was
// current when their watch was created.
//
// Concurrency: safe for concurrent use with all other Client methods.
func (c *Client) Schema(topic string) (*types.Schema, error) {
	c.schemaMu.Lock()
	if s, ok := c.schemas[topic]; ok {
		c.schemaMu.Unlock()
		return s, nil
	}
	c.schemaMu.Unlock()

	// Resolve outside the lock: a describe is a full round trip and must
	// not serialise unrelated Schema calls. Concurrent misses for the same
	// topic both fetch; last store wins with an identical value.
	res, err := c.Exec("describe " + topic)
	if err != nil {
		return nil, err
	}
	schema, err := schemaFromDescribe(topic, res)
	if err != nil {
		return nil, err
	}
	c.schemaMu.Lock()
	c.schemas[topic] = schema
	c.schemaMu.Unlock()
	return schema, nil
}

// invalidateSchema drops a topic's cached schema.
func (c *Client) invalidateSchema(topic string) {
	c.schemaMu.Lock()
	delete(c.schemas, topic)
	c.schemaMu.Unlock()
}

// noteTableErr forwards err, first invalidating table's cached schema if
// the error says the table no longer exists.
func (c *Client) noteTableErr(table string, err error) error {
	if err != nil && errors.Is(err, uerr.ErrNoSuchTable) {
		c.invalidateSchema(table)
	}
	return err
}

// schemaFromDescribe rebuilds a *types.Schema from a `describe` result
// (rows of column name, type name, key marker).
func schemaFromDescribe(topic string, res *sql.Result) (*types.Schema, error) {
	cols := make([]types.Column, 0, len(res.Rows))
	key, persistent := -1, false
	for i, row := range res.Rows {
		if len(row) < 3 {
			return nil, fmt.Errorf("rpc: describe %s: row %d has %d fields", topic, i, len(row))
		}
		name, ok := row[0].AsStr()
		if !ok {
			return nil, fmt.Errorf("rpc: describe %s: row %d: column name is %s", topic, i, row[0].Kind())
		}
		typeName, ok := row[1].AsStr()
		if !ok {
			return nil, fmt.Errorf("rpc: describe %s: row %d: type is %s", topic, i, row[1].Kind())
		}
		ct, ok := colTypeByName(typeName)
		if !ok {
			return nil, fmt.Errorf("rpc: describe %s: unknown column type %q", topic, typeName)
		}
		if marker, ok := row[2].AsStr(); ok && marker == "primary key" {
			key, persistent = i, true
		}
		cols = append(cols, types.Column{Name: name, Type: ct})
	}
	return types.NewSchema(topic, persistent, key, cols...)
}

// colTypeByName inverts types.ColType.String.
func colTypeByName(name string) (types.ColType, bool) {
	for _, t := range []types.ColType{
		types.ColInt, types.ColReal, types.ColVarchar, types.ColBool, types.ColTstamp,
	} {
		if t.String() == name {
			return t, true
		}
	}
	return 0, false
}

// Quiesce blocks until the server's automaton registry is precisely idle
// — every inbox empty and no behaviour clause mid-flight, the same test
// an embedded engine's WaitIdle runs — or the timeout elapses, reporting
// which as (idle, nil). The server clamps excessive timeouts; callers
// wanting unbounded waits should re-issue. Unlike a stats-polling
// quiescence check, a true reply cannot race a still-draining inbox.
//
// Concurrency: safe for concurrent use; the wait parks only this
// request, not the connection's push delivery.
func (c *Client) Quiesce(timeout time.Duration) (bool, error) {
	e := wire.NewEncoder(16)
	e.U8(msgQuiesce)
	e.I64(int64(timeout))
	resp, err := c.call(e.Bytes())
	if err != nil {
		return false, err
	}
	if resp[0] != msgQuiesceOK {
		return false, fmt.Errorf("rpc: unexpected reply %d", resp[0])
	}
	v, err := wire.NewDecoder(resp[1:]).U8()
	if err != nil {
		return false, err
	}
	return v == 1, nil
}
