package rpc

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// FragSize is the fragmentation boundary of the RPC system.
const FragSize = 1024

// fragment header: u16 payload length | u32 message id | u8 flags.
const fragHeaderSize = 7

const flagLast = 0x1

// maxMessageSize bounds reassembled messages (16 MiB).
const maxMessageSize = 16 << 20

// Message type bytes.
const (
	msgExec          = 1 // str sql
	msgExecOK        = 2 // wire.Result
	msgErr           = 3 // u16 uerr code, str error
	msgInsert        = 4 // str table, values
	msgInsertOK      = 5
	msgRegister      = 6 // str source
	msgRegisterOK    = 7 // i64 id
	msgUnregister    = 8 // i64 id
	msgUnregOK       = 9
	msgSendEvent     = 10 // push: i64 id, values (id < 0: watch event)
	msgPing          = 11
	msgPingOK        = 12
	msgInsertBatch   = 13 // str table, rows — one batch commit server-side
	msgInsertBatchOK = 14 // u32 rows committed
	// msgSendEventBatch is the coalesced push: u32 count, then count
	// elements. The server's per-connection push dispatcher folds queued
	// msgSendEvent payloads into one of these per write, preserving
	// per-source order; clients decode both forms. Automaton send()s and
	// watch-tap events share this path, distinguished by the id's sign
	// (watcher ids live in the cache's negative id space): an element is
	// either (i64 id > 0, values) — an automaton send — or (i64 id < 0,
	// i64 commit timestamp, u64 sequence, values) — a watch event, whose
	// topic the client recalls from its own watch bookkeeping.
	msgSendEventBatch = 15
	// msgRegisterWith is msgRegister with per-automaton options on the
	// wire: str source, i64 inbox capacity (-1 forces unbounded), u8
	// overflow policy. Reply is msgRegisterOK.
	msgRegisterWith = 16
	msgWatch        = 17 // str topic, i64 queue bound, u8 policy
	msgWatchOK      = 18 // i64 watch id (negative)
	msgUnwatch      = 19 // i64 watch id
	msgUnwatchOK    = 20
	msgStats        = 21 // no body
	// msgStatsOK: u32 nwatch × (i64 id, str topic, i64 depth, u64 dropped),
	// then u32 nauto × (i64 id, i64 depth, u64 dropped, u64 processed),
	// then an optional durability section: u8 present, and when 1:
	// str dir, i64 walBytes, u64 fsyncs, u64 snapshots, i64 lastSnapshot,
	// u64 replayed, u64 tornTails, u32 ndomain × (str topic, u64 seq,
	// i64 walBytes). Decoders tolerate the section's absence (older
	// servers end the message after the automaton list). A tenant-bound
	// connection gets one more optional trailing section — u8 present,
	// and when 1 the msgTenantStatsOK row for its own tenant — absent on
	// servers without tenants, keeping the no-tenant reply byte-identical
	// to earlier releases.
	msgStatsOK = 22
	// Streaming bulk insert. A multi-MB load as one msgInsertBatch pays its
	// whole encoded size in client memory and is capped at maxMessageSize;
	// chunking it into independent msgInsertBatch calls pays one round trip
	// per chunk. A stream is the middle path: open once, pour bounded chunk
	// messages down the pipe without waiting for acks, close once. Exactly
	// two round trips total; TCP flow control bounds both sides' memory
	// (the server commits each chunk before reading the next message, so a
	// fast sender backpressures on the socket, not on server buffers).
	msgInsertStream   = 23 // u64 stream id, str table — open a stream
	msgInsertStreamOK = 24
	// msgInsertStreamChunk is fire-and-forget (sent with message id 0, no
	// reply): u64 stream id, u32 nrows, then nrows Values payloads. The
	// server commits each chunk as one batch; the first commit error is
	// recorded on the stream, later chunks are discarded, and the error
	// surfaces in the msgInsertStreamEnd reply.
	msgInsertStreamChunk = 25
	msgInsertStreamEnd   = 26 // u64 stream id — replies EndOK or msgErr
	msgInsertStreamEndOK = 27 // u64 total rows committed
	// msgQuiesce asks the server to block until its automaton registry is
	// precisely idle (every inbox empty, no behaviour clause in flight) or
	// the i64 timeout (nanoseconds, clamped server-side) elapses. The
	// reply reports which: u8 1 = idle, 0 = timed out. This makes a remote
	// WaitIdle exact — the same registry test an embedded engine uses —
	// instead of inferring quiescence from polled stats snapshots. The
	// wait parks only the requesting connection's serve loop; pushes keep
	// flowing and other connections are unaffected.
	msgQuiesce   = 28
	msgQuiesceOK = 29
	// msgAuth binds the connection to a tenant: str token. On a server with
	// no tenant registry it fails (there is nothing to bind to); on a
	// multi-tenant server every other request except msgPing fails with
	// ErrUnauthorized until a msgAuth succeeds, after which the
	// connection's whole request surface — tables, automata, watches,
	// stats — is the tenant's namespaced, quota-checked view.
	msgAuth   = 30 // str token
	msgAuthOK = 31 // str tenant name
	// msgTenantStats fetches the authenticated tenant's accounting rollup.
	// Reply: str name, i64 tables, i64 automata, i64 watches, u64 events,
	// f64 events/sec, u64 dropped, u64 rejected, i64 walBytes, then the
	// quota: i64 maxTables, i64 maxAutomata, i64 maxInboxDepth,
	// i64 maxEventsPerSec, i64 maxWALBytes (0 = unlimited).
	msgTenantStats   = 32 // no body
	msgTenantStatsOK = 33
)

// maxQuiesceWait caps how long one msgQuiesce may park its connection's
// serve loop. Clients wanting longer waits re-issue the request.
const maxQuiesceWait = 5 * 60 * 1_000_000_000 // 5 minutes in nanoseconds

// streamChunkBudget bounds one msgInsertStreamChunk's encoded rows (256
// KiB): big enough to amortise framing, small enough that a chunk commits —
// and publishes to subscribers — promptly, keeping the stream path's
// batch-commit granularity close to the Batcher's.
const streamChunkBudget = 256 << 10

// pushQueueDepth bounds the per-connection queue of encoded send() pushes
// awaiting the wire. The queue uses the Block policy: when a client stops
// reading, the sinks (and through their inboxes, ultimately the publishing
// topics) feel backpressure instead of the server buffering without bound.
const pushQueueDepth = 4096

// pushMaxRun and pushByteBudget bound one coalesced push write: at most
// pushMaxRun events and roughly pushByteBudget encoded bytes per
// msgSendEventBatch, keeping reassembled pushes far under maxMessageSize.
const (
	pushMaxRun     = 256
	pushByteBudget = 256 << 10
)

// transport frames messages over a net.Conn with fragmentation at FragSize
// and serialised writes (requests and pushes interleave safely).
type transport struct {
	conn    net.Conn
	writeMu sync.Mutex

	readBuf [fragHeaderSize]byte
	partial map[uint32][]byte
}

func newTransport(conn net.Conn) *transport {
	return &transport{conn: conn, partial: make(map[uint32][]byte)}
}

// writeMessage fragments and writes one message.
func (t *transport) writeMessage(msgID uint32, payload []byte) error {
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	var hdr [fragHeaderSize]byte
	for {
		n := len(payload)
		flags := byte(0)
		if n <= FragSize {
			flags = flagLast
		} else {
			n = FragSize
		}
		binary.BigEndian.PutUint16(hdr[0:2], uint16(n))
		binary.BigEndian.PutUint32(hdr[2:6], msgID)
		hdr[6] = flags
		// Header and fragment are written separately: each fragment is an
		// independent unit, mirroring the per-fragment cost the paper's
		// RPC system pays.
		if _, err := t.conn.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := t.conn.Write(payload[:n]); err != nil {
			return err
		}
		if flags&flagLast != 0 {
			return nil
		}
		payload = payload[n:]
	}
}

// readMessage reassembles and returns the next complete message.
func (t *transport) readMessage() (uint32, []byte, error) {
	for {
		if _, err := io.ReadFull(t.conn, t.readBuf[:]); err != nil {
			return 0, nil, err
		}
		n := binary.BigEndian.Uint16(t.readBuf[0:2])
		msgID := binary.BigEndian.Uint32(t.readBuf[2:6])
		flags := t.readBuf[6]
		if n > FragSize {
			return 0, nil, fmt.Errorf("rpc: oversized fragment (%d bytes)", n)
		}
		frag := make([]byte, n)
		if _, err := io.ReadFull(t.conn, frag); err != nil {
			return 0, nil, err
		}
		buf := append(t.partial[msgID], frag...)
		if len(buf) > maxMessageSize {
			return 0, nil, fmt.Errorf("rpc: message exceeds %d bytes", maxMessageSize)
		}
		if flags&flagLast != 0 {
			delete(t.partial, msgID)
			return msgID, buf, nil
		}
		t.partial[msgID] = buf
	}
}

func (t *transport) close() error { return t.conn.Close() }
