// Package rpc implements the RPC mechanism through which applications and
// the cache interact (§3, §5): SQL execution, fast-path inserts, automaton
// registration, and the reverse channel carrying send() events from
// automata back to their registering application.
//
// The wire protocol fragments and reassembles every message at 1024-byte
// boundaries, as the paper's RPC system does (§6.3 notes the linear
// throughput drop past 1 KiB that Fig. 13 shows).
//
// # Concurrency and ordering contract
//
// Each connection's requests are processed serially in arrival order (the
// paper's cache services RPCs in its main thread), so one client's
// inserts into a table commit in the order it sent them. Different
// connections proceed concurrently and are serialised only by the
// cache's per-topic commit domains: two connections inserting into
// different tables never contend, two inserting into the same table are
// ordered by that table's domain.
//
// A msgInsertBatch message carries rows for exactly one table and commits
// server-side as one cache.CommitBatch: one contiguous per-topic sequence
// run, one shared timestamp, one delivery per subscriber. Client-side,
// Batcher accumulates rows for one table and auto-flushes on size/delay
// thresholds (cutting oversized flushes into byte-bounded chunks with each
// row wire-encoded exactly once); MultiBatcher fronts a set of per-table
// Batchers and routes each row to its table's batcher, so an application
// feeding many topics still produces per-topic batch commits that land in
// distinct commit domains.
//
// # The push path
//
// send() notifications flow the other way through a per-connection push
// dispatcher: an automaton's sink encodes its payload once and enqueues it
// on a bounded Block queue, and the connection's push writer drains that
// queue on its own goroutine, coalescing a backlog into one
// msgSendEventBatch frame per write (single events still go out as
// msgSendEvent). Order is preserved end to end — sinks enqueue in delivery
// order, one writer drains FIFO, the client decodes frames in order — so
// each automaton's sends reach the application in the order they happened.
// A client that stops reading backpressures the queue, the sinks, and
// ultimately the publishing topics, rather than growing server memory.
//
// Client-side, send() notifications surface on Events(). The buffer's
// overflow behaviour is configurable (ClientConfig.EventPolicy): Block —
// the default — parks the read loop when the application stops draining,
// which also stalls RPC replies on that connection; DropOldest sheds the
// oldest notification (counted by DroppedEvents) and keeps replies
// flowing.
//
// # Watches, options and stats on the wire
//
// Watch/WatchWith create a server-side dispatcher-backed tap on a topic
// (msgWatch): the tap's events ride the same coalesced push path as
// send()s — a negative id marks a watch event, whose payload carries the
// commit timestamp, sequence number and tuple values — and the client
// invokes the watch callback on its read-loop goroutine in commit order
// (so a blocking callback stalls this connection's replies). Unwatch
// (msgUnwatch) detaches a tap; the server also detaches every watch and
// unregisters every automaton a connection created when that connection
// dies, so a crashed client leaves nothing behind. RegisterWith
// (msgRegisterWith) carries per-automaton inbox options end to end, and
// Stats (msgStats) returns the server's per-subscription depth/dropped
// counters. Error replies (msgErr) carry a numeric uerr code next to the
// message, so sentinel identity (errors.Is) survives the wire.
//
// # Quiesce, schema cache and the cluster ring
//
// Quiesce (msgQuiesce) asks the server's automaton registry to report
// exact idleness — every inbox empty and every behaviour between events —
// within a client-supplied timeout (clamped server-side); only the
// requesting connection's serve loop parks, so other connections and the
// push path keep flowing. Client.Schema resolves a topic's schema through
// a per-connection describe cache: one `describe` round trip per topic
// per connection, after which every watch event delivered on that
// connection is stamped with the cached *types.Schema (field access by
// name, no extra wire cost); the cache entry is invalidated when any
// operation on the table reports ErrNoSuchTable, so a drop/recreate
// re-resolves. The cache is guarded by its own mutex and safe for
// concurrent use.
//
// Ring is the client-side consistent-hash ring the cluster façade routes
// with: each node contributes VirtualNodes points (FNV-1a of name#replica
// finished with a splitmix64-style mixer, so short similar names spread),
// and a topic belongs to the first point clockwise of its hash. A ring is
// immutable after construction — lookups are lock-free and safe from any
// goroutine — and adding or removing one node moves only the topics that
// land on (or leave) that node's points.
package rpc
