// Package rpc implements the RPC mechanism through which applications and
// the cache interact (§3, §5): SQL execution, fast-path inserts, automaton
// registration, and the reverse channel carrying send() events from
// automata back to their registering application.
//
// The wire protocol fragments and reassembles every message at 1024-byte
// boundaries, as the paper's RPC system does (§6.3 notes the linear
// throughput drop past 1 KiB that Fig. 13 shows).
//
// # Concurrency and ordering contract
//
// Each connection's requests are processed serially in arrival order (the
// paper's cache services RPCs in its main thread), so one client's
// inserts into a table commit in the order it sent them. Different
// connections proceed concurrently and are serialised only by the
// cache's per-topic commit domains: two connections inserting into
// different tables never contend, two inserting into the same table are
// ordered by that table's domain.
//
// A msgInsertBatch message carries rows for exactly one table and commits
// server-side as one cache.CommitBatch: one contiguous per-topic sequence
// run, one shared timestamp, one delivery per subscriber. Client-side,
// Batcher accumulates rows for one table and auto-flushes on size/delay
// thresholds; MultiBatcher fronts a set of per-table Batchers and routes
// each row to its table's batcher, so an application feeding many topics
// still produces per-topic batch commits that land in distinct commit
// domains.
package rpc
