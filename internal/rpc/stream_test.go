package rpc

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"unicache/internal/types"
	"unicache/internal/uerr"
)

func TestInsertStreamRoundTrip(t *testing.T) {
	c := newServerCache(t)
	srv := NewServer(c)
	cl := pipeClient(t, srv)
	if _, err := cl.Exec(`create table T (name varchar, v integer)`); err != nil {
		t.Fatal(err)
	}
	st, err := cl.NewInsertStream("T")
	if err != nil {
		t.Fatal(err)
	}
	const rows = 10000
	for i := 0; i < rows; i++ {
		if err := st.Add(types.Str(fmt.Sprintf("row-%d", i)), types.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	n, err := st.Close()
	if err != nil {
		t.Fatal(err)
	}
	if n != rows {
		t.Fatalf("committed %d rows, want %d", n, rows)
	}
	res, err := cl.Exec(`select count(*) as n, sum(v) as s from T`)
	if err != nil {
		t.Fatal(err)
	}
	wantSum := fmt.Sprint(rows * (rows - 1) / 2)
	if res.Rows[0][0].String() != fmt.Sprint(rows) || res.Rows[0][1].String() != wantSum {
		t.Errorf("count/sum = %s/%s, want %d/%s", res.Rows[0][0], res.Rows[0][1], rows, wantSum)
	}
	// The stream is spent: further Adds and a second Close are rejected
	// without touching the wire.
	if err := st.Add(types.Str("late"), types.Int(1)); err == nil {
		t.Error("Add after Close should fail")
	}
	if n2, err := st.Close(); err != nil || n2 != rows {
		t.Errorf("second Close = (%d, %v), want (%d, nil)", n2, err, rows)
	}
}

// TestInsertStreamChunksMultiMB: a load far past one chunk budget flows as
// many chunks, all committed, and events reach a watch tap in order.
func TestInsertStreamChunksMultiMB(t *testing.T) {
	c := newServerCache(t)
	srv := NewServer(c)
	cl := pipeClient(t, srv)
	if _, err := cl.Exec(`create table T (s varchar)`); err != nil {
		t.Fatal(err)
	}
	st, err := cl.NewInsertStream("T")
	if err != nil {
		t.Fatal(err)
	}
	// 64 rows × 256 KiB ≈ 16 MiB: past the whole-message cap, dozens of
	// chunk messages.
	big := strings.Repeat("y", 256<<10)
	const rows = 64
	for i := 0; i < rows; i++ {
		if err := st.Add(types.Str(big)); err != nil {
			t.Fatal(err)
		}
	}
	n, err := st.Close()
	if err != nil {
		t.Fatal(err)
	}
	if n != rows {
		t.Fatalf("committed %d rows, want %d", n, rows)
	}
	res, err := cl.Exec(`select count(*) as n from T`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].String() != fmt.Sprint(rows) {
		t.Errorf("count = %s, want %d", res.Rows[0][0], rows)
	}
}

// TestInsertStreamErrorSurfacesAtClose: a mid-stream commit failure (bad
// arity) is recorded server-side; rows after it are discarded, and Close
// reports the first error with its sentinel identity intact.
func TestInsertStreamErrorSurfacesAtClose(t *testing.T) {
	c := newServerCache(t)
	srv := NewServer(c)
	cl := pipeClient(t, srv)
	if _, err := cl.Exec(`create table T (v integer)`); err != nil {
		t.Fatal(err)
	}
	st, err := cl.NewInsertStream("T")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Add(types.Int(1)); err != nil {
		t.Fatal(err)
	}
	// Wrong arity: the chunk containing this row fails to commit.
	if err := st.Add(types.Int(2), types.Int(3)); err != nil {
		t.Fatal(err)
	}
	if err := st.Add(types.Int(4)); err != nil {
		t.Fatal(err)
	}
	_, err = st.Close()
	if err == nil {
		t.Fatal("Close should surface the commit error")
	}
	if !errors.Is(err, uerr.ErrBadSchema) {
		t.Errorf("error should keep its sentinel identity, got %v", err)
	}
	// The connection survives an errored stream.
	if err := cl.Ping(); err != nil {
		t.Errorf("connection should survive: %v", err)
	}
}

func TestInsertStreamUnknownTable(t *testing.T) {
	c := newServerCache(t)
	srv := NewServer(c)
	cl := pipeClient(t, srv)
	st, err := cl.NewInsertStream("NoSuch")
	if err != nil {
		t.Fatal(err) // the open itself succeeds; the table check is per commit
	}
	if err := st.Add(types.Int(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Close(); !errors.Is(err, uerr.ErrNoSuchTable) {
		t.Errorf("Close = %v, want ErrNoSuchTable", err)
	}
}

func TestInsertStreamEndWithoutOpen(t *testing.T) {
	c := newServerCache(t)
	srv := NewServer(c)
	cl := pipeClient(t, srv)
	st := &InsertStream{c: cl, id: 999}
	if _, err := st.Close(); err == nil {
		t.Error("ending a never-opened stream should error")
	}
	if err := cl.Ping(); err != nil {
		t.Errorf("connection should survive: %v", err)
	}
}

// latencyPipe joins two net.Pipe pairs through store-and-forward pumps
// that deliver each captured read one-way-latency after it arrived. Unlike
// sleeping in Write, this lets back-to-back messages pipeline: a burst pays
// the latency once, while a request/response exchange pays it in both
// directions per round trip — the shape of a real network link.
func latencyPipe(delay time.Duration) (client, server net.Conn) {
	cEnd, cProxy := net.Pipe()
	sEnd, sProxy := net.Pipe()
	pump := func(dst, src net.Conn) {
		type pkt struct {
			due time.Time
			b   []byte
		}
		ch := make(chan pkt, 4096)
		go func() {
			for p := range ch {
				time.Sleep(time.Until(p.due))
				if _, err := dst.Write(p.b); err != nil {
					break
				}
			}
			_ = dst.Close()
		}()
		buf := make([]byte, 32<<10)
		for {
			n, err := src.Read(buf)
			if n > 0 {
				ch <- pkt{time.Now().Add(delay), append([]byte(nil), buf[:n]...)}
			}
			if err != nil {
				close(ch)
				return
			}
		}
	}
	go pump(sProxy, cProxy)
	go pump(cProxy, sProxy)
	return cEnd, sEnd
}

// TestStreamBeatsPerBatchRTT pins the reason streaming exists: over a link
// with latency, a multi-chunk load through one insert stream (two round
// trips total) must finish at least 2x faster than the same rows as
// per-chunk msgInsertBatch round trips.
func TestStreamBeatsPerBatchRTT(t *testing.T) {
	if raceEnabled {
		// Race instrumentation inflates the CPU side of both paths until
		// the fixed RTT no longer dominates; the 2x bar is a latency claim,
		// so it is pinned by the non-race run only.
		t.Skip("timing assertion is meaningless under -race instrumentation")
	}
	c := newServerCache(t)
	srv := NewServer(c)
	if _, err := c.Exec(`create table T (s varchar)`); err != nil {
		t.Fatal(err)
	}

	const oneWay = 2 * time.Millisecond
	dial := func() *Client {
		cEnd, sEnd := latencyPipe(oneWay)
		go srv.ServeConn(sEnd)
		cl := NewClient(cEnd)
		t.Cleanup(func() { _ = cl.Close() })
		return cl
	}

	// ~2 MiB in 64 KiB rows: 32 rows, several chunks at the 256 KiB budget.
	big := strings.Repeat("z", 64<<10)
	const rows = 32

	perBatch := dial()
	start := time.Now()
	for i := 0; i < rows; i++ {
		if err := perBatch.InsertBatch("T", [][]types.Value{{types.Str(big)}}); err != nil {
			t.Fatal(err)
		}
	}
	batchTime := time.Since(start)

	streamed := dial()
	start = time.Now()
	st, err := streamed.NewInsertStream("T")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if err := st.Add(types.Str(big)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Close(); err != nil {
		t.Fatal(err)
	}
	streamTime := time.Since(start)

	t.Logf("per-batch: %v, streamed: %v (%.1fx)", batchTime, streamTime,
		float64(batchTime)/float64(streamTime))
	if streamTime*2 > batchTime {
		t.Errorf("stream (%v) should be at least 2x faster than per-batch (%v)", streamTime, batchTime)
	}
}
