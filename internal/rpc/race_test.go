//go:build race

package rpc

// raceEnabled gates tests whose timing assertions are meaningless under
// the race detector's instrumentation.
const raceEnabled = true
