package rpc

import (
	"errors"
	"sync"

	"unicache/internal/types"
)

// MultiBatcher routes rows to per-table Batchers created on first use, so
// one producer feeding many topics still ships per-topic batch commits —
// the client-side mirror of the cache's per-topic commit domains. Rows for
// table A and table B coalesce into separate batches that commit in
// separate domains server-side; a slow or hot table never delays another
// table's flushes. It is safe for concurrent use.
type MultiBatcher struct {
	client *Client
	cfg    BatcherConfig

	mu       sync.Mutex
	batchers map[string]*Batcher
	closed   bool
}

// NewMultiBatcher returns a table-routing batcher writing through c. The
// config applies to every per-table batcher it creates; zero-valued fields
// take the Batcher defaults.
func (c *Client) NewMultiBatcher(cfg BatcherConfig) *MultiBatcher {
	return &MultiBatcher{client: c, cfg: cfg, batchers: make(map[string]*Batcher)}
}

// batcher returns (creating if needed) the batcher owning table's rows.
func (m *MultiBatcher) batcher(table string) (*Batcher, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, errors.New("rpc: multibatcher is closed")
	}
	b, ok := m.batchers[table]
	if !ok {
		b = m.client.NewBatcher(table, m.cfg)
		m.batchers[table] = b
	}
	return b, nil
}

// Add buffers one row for the named table, flushing that table's batch if
// its size threshold trips. Errors are scoped to the table's batcher: a
// failed flush on one table does not poison the others.
func (m *MultiBatcher) Add(table string, vals ...types.Value) error {
	b, err := m.batcher(table)
	if err != nil {
		return err
	}
	return b.Add(vals...)
}

// Tables returns the tables this batcher has accepted rows for.
func (m *MultiBatcher) Tables() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.batchers))
	for name := range m.batchers {
		out = append(out, name)
	}
	return out
}

// snapshot returns the current per-table batchers without holding the
// lock during the (potentially flushing) calls that follow. When
// markClosed is set the batcher also stops accepting Adds.
func (m *MultiBatcher) snapshot(markClosed bool) []*Batcher {
	m.mu.Lock()
	defer m.mu.Unlock()
	if markClosed {
		if m.closed {
			return nil
		}
		m.closed = true
	}
	batchers := make([]*Batcher, 0, len(m.batchers))
	for _, b := range m.batchers {
		batchers = append(batchers, b)
	}
	return batchers
}

// Len returns the number of currently buffered rows across all tables.
func (m *MultiBatcher) Len() int {
	n := 0
	for _, b := range m.snapshot(false) {
		n += b.Len()
	}
	return n
}

// Flush synchronously ships every table's buffered rows, returning the
// first error encountered (all tables are still attempted).
func (m *MultiBatcher) Flush() error {
	var first error
	for _, b := range m.snapshot(false) {
		if err := b.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close rejects further Adds, closes every per-table batcher (shipping
// their remainders) and returns the first error from any of them.
func (m *MultiBatcher) Close() error {
	var first error
	for _, b := range m.snapshot(true) {
		if err := b.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
