package rpc

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"unicache/internal/pubsub"
	"unicache/internal/types"
	"unicache/internal/uerr"
)

// TestSchemaCacheResolvesAndReuses pins the describe-cache contract: the
// first Schema call reconstructs the topic's full schema over the wire,
// and repeat calls return the identical cached pointer without another
// round trip.
func TestSchemaCacheResolvesAndReuses(t *testing.T) {
	c := newServerCache(t)
	srv := NewServer(c)
	cl := pipeClient(t, srv)

	if _, err := cl.Exec(`create table S (sym varchar, px real, n integer, ok boolean, at tstamp)`); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec(`create persistenttable KV (k varchar primary key, v integer)`); err != nil {
		t.Fatal(err)
	}

	s1, err := cl.Schema("S")
	if err != nil {
		t.Fatal(err)
	}
	wantCols := []struct {
		name string
		typ  types.ColType
	}{
		{"sym", types.ColVarchar}, {"px", types.ColReal}, {"n", types.ColInt},
		{"ok", types.ColBool}, {"at", types.ColTstamp},
	}
	if s1.Name != "S" || s1.Persistent || s1.Key != -1 || len(s1.Cols) != len(wantCols) {
		t.Fatalf("schema = %+v", s1)
	}
	for i, w := range wantCols {
		if s1.Cols[i].Name != w.name || s1.Cols[i].Type != w.typ {
			t.Errorf("col %d = %+v, want %s %s", i, s1.Cols[i], w.name, w.typ)
		}
	}

	s2, err := cl.Schema("S")
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("second Schema call did not return the cached pointer")
	}

	kv, err := cl.Schema("KV")
	if err != nil {
		t.Fatal(err)
	}
	if !kv.Persistent || kv.Key != 0 || kv.ColIndex("v") != 1 {
		t.Errorf("persistent schema = %+v", kv)
	}
}

// TestSchemaCacheInvalidation pins both halves of the invalidation
// contract: an ErrNoSuchTable on a table operation drops that topic's
// cache entry (the next Schema call re-resolves rather than returning the
// stale pointer), and errors for other topics or of other kinds leave the
// entry alone.
func TestSchemaCacheInvalidation(t *testing.T) {
	c := newServerCache(t)
	srv := NewServer(c)
	cl := pipeClient(t, srv)

	if _, err := cl.Exec(`create table T (v integer)`); err != nil {
		t.Fatal(err)
	}
	s1, err := cl.Schema("T")
	if err != nil {
		t.Fatal(err)
	}

	// Missing-table inserts surface ErrNoSuchTable through every insert
	// shape and invalidate only that topic's entry.
	if err := cl.Insert("Gone", types.Int(1)); !errors.Is(err, uerr.ErrNoSuchTable) {
		t.Fatalf("Insert(Gone) = %v, want ErrNoSuchTable", err)
	}
	if s2, _ := cl.Schema("T"); s2 != s1 {
		t.Error("unrelated table's error evicted T's cache entry")
	}

	// A no-such-table error attributed to T itself evicts the entry.
	_ = cl.noteTableErr("T", fmt.Errorf("wrapped: %w", uerr.ErrNoSuchTable))
	s3, err := cl.Schema("T")
	if err != nil {
		t.Fatal(err)
	}
	if s3 == s1 {
		t.Error("Schema returned the evicted pointer: cache was not invalidated")
	}

	// Non-sentinel errors do not evict.
	_ = cl.noteTableErr("T", errors.New("transient"))
	if s4, _ := cl.Schema("T"); s4 != s3 {
		t.Error("non-ErrNoSuchTable error evicted the cache entry")
	}
}

// TestWatchEventsCarrySchema pins the satellite's user-visible payoff:
// events pushed to a remote watch arrive with a non-nil Schema naming the
// topic's columns, so remote consumers can address fields by name exactly
// like embedded ones.
func TestWatchEventsCarrySchema(t *testing.T) {
	c := newServerCache(t)
	srv := NewServer(c)
	cl := pipeClient(t, srv)

	if _, err := cl.Exec(`create table W (sym varchar, px real)`); err != nil {
		t.Fatal(err)
	}
	got := make(chan *types.Event, 1)
	if _, err := cl.Watch("W", func(ev *types.Event) { got <- ev }); err != nil {
		t.Fatal(err)
	}
	if err := cl.Insert("W", types.Str("ibm"), types.Real(42.5)); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-got:
		if ev.Schema == nil {
			t.Fatal("watch event arrived with nil Schema")
		}
		if ev.Schema.ColIndex("px") != 1 {
			t.Errorf("schema = %+v", ev.Schema)
		}
		v, err := ev.Field("px")
		if err != nil {
			t.Fatalf("Field(px) not resolvable on remote event: %v", err)
		}
		if f, _ := v.AsReal(); f != 42.5 {
			t.Errorf("px = %v", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watch event not delivered")
	}
}

// TestQuiesceExact pins the quiesce opcode end to end. The automaton
// owner's Events channel is left undrained (capacity 1, Block policy), so
// once the server's push queue fills, the automaton's sink parks and its
// inbox holds a backlog no amount of waiting can clear: Quiesce must
// report not-idle — a stats-free, race-free "busy" observation. Draining
// the channel releases the pipeline and a bounded Quiesce then reports
// idle, which is exact: it cannot return before the inbox is empty.
func TestQuiesceExact(t *testing.T) {
	c := newServerCache(t)
	srv := NewServer(c)

	ownerEnd, srvEnd := net.Pipe()
	go srv.ServeConn(srvEnd)
	owner := NewClientWith(ownerEnd, ClientConfig{EventBuffer: 1, EventPolicy: pubsub.Block})
	defer func() { _ = owner.Close() }()
	ctl := pipeClient(t, srv) // separate connection: its replies never park behind owner's

	if _, err := ctl.Exec(`create table Q (v integer)`); err != nil {
		t.Fatal(err)
	}
	if _, err := owner.Register(`subscribe t to Q; behavior { send(t.v); }`); err != nil {
		t.Fatalf("register: %v", err)
	}

	// More events than the push pipeline can absorb (server push queue +
	// client buffer), so the sink wedges with the inbox still backlogged.
	const n = pushQueueDepth + 2000
	rows := make([][]types.Value, n)
	for i := range rows {
		rows[i] = []types.Value{types.Int(int64(i))}
	}
	if err := ctl.InsertBatch("Q", rows); err != nil {
		t.Fatal(err)
	}
	if idle, err := ctl.Quiesce(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	} else if idle {
		t.Error("Quiesce reported idle while the automaton sink was wedged with a backlog")
	}

	drained := make(chan struct{})
	go func() {
		defer close(drained)
		seen := 0
		for range owner.Events() {
			if seen++; seen == n {
				return
			}
		}
	}()
	idle, err := ctl.Quiesce(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !idle {
		t.Error("bounded Quiesce did not observe the drained registry")
	}
	select {
	case <-drained:
	case <-time.After(30 * time.Second):
		t.Fatal("events never fully delivered")
	}
}
