package rpc

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"unicache/internal/types"
	"unicache/internal/wire"
)

// batchByteBudget bounds the encoded size of one flushed msgInsertBatch: a
// flush at or under it ships as a single round trip; anything larger pours
// through an insert stream in chunks of the same size. It aliases
// streamChunkBudget so the commit granularity — and therefore what
// subscribers see as one publication — is identical on both paths.
const batchByteBudget = streamChunkBudget

// BatcherConfig tunes a Batcher's flush thresholds.
type BatcherConfig struct {
	// MaxRows flushes when this many rows are buffered (default 256).
	MaxRows int
	// MaxDelay flushes a non-empty buffer this long after its first row
	// arrived, so low-rate producers still see bounded latency
	// (default 10ms; negative disables the timer entirely).
	MaxDelay time.Duration
}

// Batcher accumulates rows for one table and ships them with
// Client.InsertBatch when either threshold trips: MaxRows rows buffered, or
// MaxDelay elapsed since the first buffered row. It is safe for concurrent
// use; rows from all goroutines coalesce into the same batches, and
// flushes are serialised so batches reach the server in the order their
// rows were buffered. Errors from asynchronous (timer-driven) flushes are
// reported on the next Add, Flush or Close call; Close waits for any
// in-flight timer flush, ships the remainder, and surfaces any deferred
// error, so a nil Close means every accepted row was committed.
type Batcher struct {
	client *Client
	table  string
	cfg    BatcherConfig

	// flushMu serialises flush RPCs: the buffer snapshot and the round
	// trip happen under it, so snapshot order is wire order. It is always
	// acquired before mu.
	flushMu sync.Mutex

	mu     sync.Mutex
	rows   [][]types.Value
	timer  *time.Timer
	err    error // first deferred flush error, handed to the next caller
	closed bool
}

// NewBatcher returns an auto-flushing batcher writing to table through c.
// Zero-valued config fields take the documented defaults.
func (c *Client) NewBatcher(table string, cfg BatcherConfig) *Batcher {
	if cfg.MaxRows <= 0 {
		cfg.MaxRows = 256
	}
	if cfg.MaxDelay == 0 {
		cfg.MaxDelay = 10 * time.Millisecond
	}
	return &Batcher{client: c, table: table, cfg: cfg}
}

// Add buffers one row, flushing if the size threshold trips. The returned
// error is either a deferred error from an earlier timer flush or the
// synchronous flush error this Add triggered.
func (b *Batcher) Add(vals ...types.Value) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return errors.New("rpc: batcher is closed")
	}
	if err := b.err; err != nil {
		b.err = nil
		b.mu.Unlock()
		return err
	}
	b.rows = append(b.rows, vals)
	full := len(b.rows) >= b.cfg.MaxRows
	if !full && b.timer == nil && b.cfg.MaxDelay > 0 {
		b.timer = time.AfterFunc(b.cfg.MaxDelay, b.timerFlush)
	}
	b.mu.Unlock()
	if full {
		return b.flush()
	}
	return nil
}

// Flush synchronously ships whatever is buffered (a no-op when empty) and
// reports any deferred timer-flush error.
func (b *Batcher) Flush() error {
	err := b.flush()
	b.mu.Lock()
	if err == nil && b.err != nil {
		err = b.err
		b.err = nil
	}
	b.mu.Unlock()
	return err
}

// Close rejects further Adds, waits for any in-flight timer flush, ships
// the remaining rows, and returns the first error from any of that.
func (b *Batcher) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	b.mu.Unlock()
	// Every row accepted before closed was set is either in the buffer
	// (shipped by this flush) or in an in-flight timer flush (whose
	// completion — and error, if any — this flush waits on via flushMu).
	return b.Flush()
}

// Len returns the number of currently buffered rows.
func (b *Batcher) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.rows)
}

// takeRows snapshots and clears the buffer, disarming the pending timer.
func (b *Batcher) takeRows() [][]types.Value {
	b.mu.Lock()
	defer b.mu.Unlock()
	rows := b.rows
	b.rows = nil
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return rows
}

// flush ships the current buffer under flushMu, so concurrent flushes
// cannot reorder batches on the wire. A failure is returned to the caller
// AND recorded sticky in b.err: the buffer held rows accepted from every
// producer, so the loss must also reach the producers (and Close) that
// didn't trigger this flush — the error may therefore be reported more
// than once.
func (b *Batcher) flush() error {
	b.flushMu.Lock()
	defer b.flushMu.Unlock()
	rows := b.takeRows()
	if len(rows) == 0 {
		return nil
	}
	err := b.ship(rows)
	if err != nil {
		b.mu.Lock()
		if b.err == nil {
			b.err = err
		}
		b.mu.Unlock()
	}
	return err
}

// ship sends the snapshot, cut incrementally at the byte budget (row count
// alone does not bound wire size — wide varchar rows add up fast). Each row
// is wire-encoded exactly once, into scratch, and spliced into the chunk
// under assembly; when a row would push the chunk past the budget the chunk
// closes and the row opens the next one. A snapshot that fits one chunk
// ships as a single msgInsertBatch round trip; a larger one opens an insert
// stream the moment the first chunk closes and pours every chunk down it
// without per-chunk acks — two round trips total instead of one per chunk.
// On error the remaining rows are dropped; the sticky error reports the
// loss.
func (b *Batcher) ship(rows [][]types.Value) error {
	chunk := wire.NewEncoder(4096)
	scratch := wire.NewEncoder(256)
	var stream *InsertStream
	count := 0
	shipChunk := func() error {
		if stream == nil {
			// First overflow: the snapshot spans more than one chunk, so
			// switch to the streaming path for this flush.
			st, err := b.client.NewInsertStream(b.table)
			if err != nil {
				return err
			}
			stream = st
		}
		return stream.addChunk(count, chunk.Bytes())
	}
	for i, row := range rows {
		scratch.Reset()
		if err := scratch.Values(row); err != nil {
			if stream != nil {
				_, _ = stream.Close()
			}
			return fmt.Errorf("rpc: batch row %d: %w", i, err)
		}
		if count > 0 && chunk.Len()+scratch.Len() > batchByteBudget {
			if err := shipChunk(); err != nil {
				if stream != nil {
					_, _ = stream.Close()
				}
				return err
			}
			chunk.Reset()
			count = 0
		}
		chunk.Raw(scratch.Bytes())
		count++
	}
	if stream == nil {
		return b.client.insertBatchRaw(b.table, count, chunk.Bytes())
	}
	if err := stream.addChunk(count, chunk.Bytes()); err != nil {
		_, _ = stream.Close()
		return err
	}
	_, err := stream.Close()
	return err
}

// timerFlush runs from the MaxDelay timer; it has no caller to return to,
// so it relies on flush recording failures sticky in b.err (done before
// flushMu is released, so a Flush/Close waiting on this flush observes
// the error).
func (b *Batcher) timerFlush() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.timer = nil
	b.mu.Unlock()
	_ = b.flush()
}
