package rpc

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"unicache/internal/cache"
	"unicache/internal/types"
)

func newServerCache(t *testing.T) *cache.Cache {
	t.Helper()
	c, err := cache.New(cache.Config{
		TimerPeriod: -1,
		PrintWriter: &strings.Builder{},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// pipeClient wires a client to the server over net.Pipe.
func pipeClient(t *testing.T, srv *Server) *Client {
	t.Helper()
	cEnd, sEnd := net.Pipe()
	go srv.ServeConn(sEnd)
	cl := NewClient(cEnd)
	t.Cleanup(func() { _ = cl.Close() })
	return cl
}

func TestPingExecInsertOverPipe(t *testing.T) {
	c := newServerCache(t)
	srv := NewServer(c)
	cl := pipeClient(t, srv)

	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec(`create table T (name varchar, v integer)`); err != nil {
		t.Fatal(err)
	}
	if err := cl.Insert("T", types.Str("a"), types.Int(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec(`insert into T values ('b', 2)`); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Exec(`select name, v from T order by v desc`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].String() != "b" {
		t.Errorf("rows = %+v", res.Rows)
	}
}

func TestExecErrorsPropagate(t *testing.T) {
	c := newServerCache(t)
	srv := NewServer(c)
	cl := pipeClient(t, srv)
	if _, err := cl.Exec(`select * from Missing`); err == nil ||
		!strings.Contains(err.Error(), "Missing") {
		t.Errorf("exec error = %v", err)
	}
	if err := cl.Insert("Missing", types.Int(1)); err == nil {
		t.Error("insert into missing table should error")
	}
	if _, err := cl.Register(`this is not gapl`); err == nil {
		t.Error("register with bad source should error")
	}
}

func TestRegisterAndReceiveSendEvents(t *testing.T) {
	c := newServerCache(t)
	srv := NewServer(c)
	cl := pipeClient(t, srv)

	if _, err := cl.Exec(`create table Readings (v integer)`); err != nil {
		t.Fatal(err)
	}
	id, err := cl.Register(`
subscribe r to Readings;
behavior { if (r.v > 10) send('alert', r.v); }
`)
	if err != nil {
		t.Fatal(err)
	}
	if id <= 0 {
		t.Fatalf("automaton id = %d", id)
	}
	for _, v := range []int64{5, 50, 7, 70} {
		if err := cl.Insert("Readings", types.Int(v)); err != nil {
			t.Fatal(err)
		}
	}
	var got []int64
	timeout := time.After(5 * time.Second)
	for len(got) < 2 {
		select {
		case ev := <-cl.Events():
			if ev.AutomatonID != id {
				t.Errorf("event from automaton %d, want %d", ev.AutomatonID, id)
			}
			n, _ := ev.Vals[1].AsInt()
			got = append(got, n)
		case <-timeout:
			t.Fatalf("timed out; got %v", got)
		}
	}
	if got[0] != 50 || got[1] != 70 {
		t.Errorf("alerts = %v", got)
	}
	if err := cl.Unregister(id); err != nil {
		t.Fatal(err)
	}
	if err := cl.Unregister(id); err == nil {
		t.Error("double unregister should error")
	}
}

func TestUnregisterForeignAutomatonRejected(t *testing.T) {
	c := newServerCache(t)
	srv := NewServer(c)
	cl1 := pipeClient(t, srv)
	cl2 := pipeClient(t, srv)
	if _, err := cl1.Exec(`create table T (v integer)`); err != nil {
		t.Fatal(err)
	}
	id, err := cl1.Register(`subscribe t to T; behavior { send(t.v); }`)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl2.Unregister(id); err == nil {
		t.Error("a connection must not unregister another connection's automaton")
	}
}

func TestConnectionCloseUnregistersAutomata(t *testing.T) {
	c := newServerCache(t)
	srv := NewServer(c)
	cl := pipeClient(t, srv)
	if _, err := cl.Exec(`create table T (v integer)`); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Register(`subscribe t to T; behavior { send(t.v); }`); err != nil {
		t.Fatal(err)
	}
	if c.Registry().Len() != 1 {
		t.Fatalf("registry len = %d", c.Registry().Len())
	}
	_ = cl.Close()
	deadline := time.Now().Add(5 * time.Second)
	for c.Registry().Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("automaton not unregistered after connection close")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFragmentationLargePayloads(t *testing.T) {
	c := newServerCache(t)
	srv := NewServer(c)
	cl := pipeClient(t, srv)
	if _, err := cl.Exec(`create table Big (s varchar)`); err != nil {
		t.Fatal(err)
	}
	// 10 KB string spans ~10 fragments in each direction.
	big := strings.Repeat("x", 10_000)
	if err := cl.Insert("Big", types.Str(big)); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Exec(`select s from Big`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].String(); got != big {
		t.Errorf("large string corrupted: len %d vs %d", len(got), len(big))
	}
}

func TestOverTCP(t *testing.T) {
	c := newServerCache(t)
	srv := NewServer(c)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	defer func() { _ = srv.Close() }()

	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cl.Close() }()

	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec(`create table T (v integer)`); err != nil {
		t.Fatal(err)
	}
	id, err := cl.Register(`subscribe t to T; behavior { send(t.v * 2); }`)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Insert("T", types.Int(21)); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-cl.Events():
		if ev.AutomatonID != id {
			t.Errorf("event automaton = %d", ev.AutomatonID)
		}
		if n, _ := ev.Vals[0].AsInt(); n != 42 {
			t.Errorf("event value = %v", ev.Vals[0])
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no event over TCP")
	}
}

func TestConcurrentClients(t *testing.T) {
	c := newServerCache(t)
	srv := NewServer(c)
	cl0 := pipeClient(t, srv)
	if _, err := cl0.Exec(`create table T (w integer, v integer)`); err != nil {
		t.Fatal(err)
	}
	const clients, per = 4, 100
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for w := 0; w < clients; w++ {
		cl := pipeClient(t, srv)
		wg.Add(1)
		go func(w int, cl *Client) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := cl.Insert("T", types.Int(int64(w)), types.Int(int64(i))); err != nil {
					errs <- fmt.Errorf("client %d: %w", w, err)
					return
				}
			}
		}(w, cl)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	res, err := cl0.Exec(`select count(*) from T`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].String() != fmt.Sprint(clients*per) {
		t.Errorf("total rows = %v", res.Rows[0][0])
	}
}

func TestClientFailsAfterClose(t *testing.T) {
	c := newServerCache(t)
	srv := NewServer(c)
	cl := pipeClient(t, srv)
	_ = cl.Close()
	if err := cl.Ping(); err == nil {
		t.Error("ping after close should fail")
	}
}

func TestServerCloseStopsServe(t *testing.T) {
	c := newServerCache(t)
	srv := NewServer(c)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	time.Sleep(10 * time.Millisecond)
	if srv.Addr() == nil {
		t.Error("Addr should be set while serving")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Errorf("Serve returned %v after Close", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
}
