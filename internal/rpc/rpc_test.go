package rpc

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"unicache/internal/cache"
	"unicache/internal/pubsub"
	"unicache/internal/types"
	"unicache/internal/wire"
)

func newServerCache(t *testing.T) *cache.Cache {
	t.Helper()
	c, err := cache.New(cache.Config{
		TimerPeriod: -1,
		PrintWriter: &strings.Builder{},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// pipeClient wires a client to the server over net.Pipe.
func pipeClient(t *testing.T, srv *Server) *Client {
	t.Helper()
	cEnd, sEnd := net.Pipe()
	go srv.ServeConn(sEnd)
	cl := NewClient(cEnd)
	t.Cleanup(func() { _ = cl.Close() })
	return cl
}

func TestPingExecInsertOverPipe(t *testing.T) {
	c := newServerCache(t)
	srv := NewServer(c)
	cl := pipeClient(t, srv)

	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec(`create table T (name varchar, v integer)`); err != nil {
		t.Fatal(err)
	}
	if err := cl.Insert("T", types.Str("a"), types.Int(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec(`insert into T values ('b', 2)`); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Exec(`select name, v from T order by v desc`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].String() != "b" {
		t.Errorf("rows = %+v", res.Rows)
	}
}

func TestExecErrorsPropagate(t *testing.T) {
	c := newServerCache(t)
	srv := NewServer(c)
	cl := pipeClient(t, srv)
	if _, err := cl.Exec(`select * from Missing`); err == nil ||
		!strings.Contains(err.Error(), "Missing") {
		t.Errorf("exec error = %v", err)
	}
	if err := cl.Insert("Missing", types.Int(1)); err == nil {
		t.Error("insert into missing table should error")
	}
	if _, err := cl.Register(`this is not gapl`); err == nil {
		t.Error("register with bad source should error")
	}
}

func TestRegisterAndReceiveSendEvents(t *testing.T) {
	c := newServerCache(t)
	srv := NewServer(c)
	cl := pipeClient(t, srv)

	if _, err := cl.Exec(`create table Readings (v integer)`); err != nil {
		t.Fatal(err)
	}
	id, err := cl.Register(`
subscribe r to Readings;
behavior { if (r.v > 10) send('alert', r.v); }
`)
	if err != nil {
		t.Fatal(err)
	}
	if id <= 0 {
		t.Fatalf("automaton id = %d", id)
	}
	for _, v := range []int64{5, 50, 7, 70} {
		if err := cl.Insert("Readings", types.Int(v)); err != nil {
			t.Fatal(err)
		}
	}
	var got []int64
	timeout := time.After(5 * time.Second)
	for len(got) < 2 {
		select {
		case ev := <-cl.Events():
			if ev.AutomatonID != id {
				t.Errorf("event from automaton %d, want %d", ev.AutomatonID, id)
			}
			n, _ := ev.Vals[1].AsInt()
			got = append(got, n)
		case <-timeout:
			t.Fatalf("timed out; got %v", got)
		}
	}
	if got[0] != 50 || got[1] != 70 {
		t.Errorf("alerts = %v", got)
	}
	if err := cl.Unregister(id); err != nil {
		t.Fatal(err)
	}
	if err := cl.Unregister(id); err == nil {
		t.Error("double unregister should error")
	}
}

func TestUnregisterForeignAutomatonRejected(t *testing.T) {
	c := newServerCache(t)
	srv := NewServer(c)
	cl1 := pipeClient(t, srv)
	cl2 := pipeClient(t, srv)
	if _, err := cl1.Exec(`create table T (v integer)`); err != nil {
		t.Fatal(err)
	}
	id, err := cl1.Register(`subscribe t to T; behavior { send(t.v); }`)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl2.Unregister(id); err == nil {
		t.Error("a connection must not unregister another connection's automaton")
	}
}

func TestConnectionCloseUnregistersAutomata(t *testing.T) {
	c := newServerCache(t)
	srv := NewServer(c)
	cl := pipeClient(t, srv)
	if _, err := cl.Exec(`create table T (v integer)`); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Register(`subscribe t to T; behavior { send(t.v); }`); err != nil {
		t.Fatal(err)
	}
	if c.Registry().Len() != 1 {
		t.Fatalf("registry len = %d", c.Registry().Len())
	}
	_ = cl.Close()
	deadline := time.Now().Add(5 * time.Second)
	for c.Registry().Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("automaton not unregistered after connection close")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFragmentationLargePayloads(t *testing.T) {
	c := newServerCache(t)
	srv := NewServer(c)
	cl := pipeClient(t, srv)
	if _, err := cl.Exec(`create table Big (s varchar)`); err != nil {
		t.Fatal(err)
	}
	// 10 KB string spans ~10 fragments in each direction.
	big := strings.Repeat("x", 10_000)
	if err := cl.Insert("Big", types.Str(big)); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Exec(`select s from Big`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].String(); got != big {
		t.Errorf("large string corrupted: len %d vs %d", len(got), len(big))
	}
}

func TestOverTCP(t *testing.T) {
	c := newServerCache(t)
	srv := NewServer(c)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	defer func() { _ = srv.Close() }()

	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cl.Close() }()

	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec(`create table T (v integer)`); err != nil {
		t.Fatal(err)
	}
	id, err := cl.Register(`subscribe t to T; behavior { send(t.v * 2); }`)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Insert("T", types.Int(21)); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-cl.Events():
		if ev.AutomatonID != id {
			t.Errorf("event automaton = %d", ev.AutomatonID)
		}
		if n, _ := ev.Vals[0].AsInt(); n != 42 {
			t.Errorf("event value = %v", ev.Vals[0])
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no event over TCP")
	}
}

func TestConcurrentClients(t *testing.T) {
	c := newServerCache(t)
	srv := NewServer(c)
	cl0 := pipeClient(t, srv)
	if _, err := cl0.Exec(`create table T (w integer, v integer)`); err != nil {
		t.Fatal(err)
	}
	const clients, per = 4, 100
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for w := 0; w < clients; w++ {
		cl := pipeClient(t, srv)
		wg.Add(1)
		go func(w int, cl *Client) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := cl.Insert("T", types.Int(int64(w)), types.Int(int64(i))); err != nil {
					errs <- fmt.Errorf("client %d: %w", w, err)
					return
				}
			}
		}(w, cl)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	res, err := cl0.Exec(`select count(*) from T`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].String() != fmt.Sprint(clients*per) {
		t.Errorf("total rows = %v", res.Rows[0][0])
	}
}

func TestClientFailsAfterClose(t *testing.T) {
	c := newServerCache(t)
	srv := NewServer(c)
	cl := pipeClient(t, srv)
	_ = cl.Close()
	if err := cl.Ping(); err == nil {
		t.Error("ping after close should fail")
	}
}

func TestServerCloseStopsServe(t *testing.T) {
	c := newServerCache(t)
	srv := NewServer(c)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	time.Sleep(10 * time.Millisecond)
	if srv.Addr() == nil {
		t.Error("Addr should be set while serving")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Errorf("Serve returned %v after Close", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
}

func TestInsertBatchOverPipe(t *testing.T) {
	c := newServerCache(t)
	srv := NewServer(c)
	cl := pipeClient(t, srv)

	if _, err := cl.Exec(`create table T (name varchar, v integer)`); err != nil {
		t.Fatal(err)
	}
	rows := make([][]types.Value, 100)
	for i := range rows {
		rows[i] = []types.Value{types.Str(fmt.Sprintf("r%d", i)), types.Int(int64(i))}
	}
	if err := cl.InsertBatch("T", rows); err != nil {
		t.Fatal(err)
	}
	if err := cl.InsertBatch("T", nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	res, err := cl.Exec(`select count(*) as n from T`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].String() != "100" {
		t.Errorf("count = %s, want 100", res.Rows[0][0])
	}
	// Rows arrive in batch order.
	res, err = cl.Exec(`select name from T [rows 2]`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].String() != "r98" || res.Rows[1][0].String() != "r99" {
		t.Errorf("tail rows = %+v", res.Rows)
	}
	// A bad row rejects the whole batch.
	bad := [][]types.Value{
		{types.Str("ok"), types.Int(1)},
		{types.Str("bad-arity")},
	}
	if err := cl.InsertBatch("T", bad); err == nil {
		t.Error("bad row in batch should error")
	}
	if err := cl.InsertBatch("Nope", rows[:1]); err == nil {
		t.Error("batch into missing table should error")
	}
}

func TestBatcherSizeFlush(t *testing.T) {
	c := newServerCache(t)
	srv := NewServer(c)
	cl := pipeClient(t, srv)
	if _, err := cl.Exec(`create table T (v integer)`); err != nil {
		t.Fatal(err)
	}
	b := cl.NewBatcher("T", BatcherConfig{MaxRows: 10, MaxDelay: -1})
	for i := 0; i < 25; i++ {
		if err := b.Add(types.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Two full batches flushed, five rows still buffered.
	res, err := cl.Exec(`select count(*) as n from T`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].String() != "20" {
		t.Errorf("count before close = %s, want 20", res.Rows[0][0])
	}
	if b.Len() != 5 {
		t.Errorf("buffered = %d, want 5", b.Len())
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	res, err = cl.Exec(`select count(*) as n from T`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].String() != "25" {
		t.Errorf("count after close = %s, want 25", res.Rows[0][0])
	}
	if err := b.Add(types.Int(99)); err == nil {
		t.Error("Add after Close should error")
	}
}

func TestBatcherDelayFlush(t *testing.T) {
	c := newServerCache(t)
	srv := NewServer(c)
	cl := pipeClient(t, srv)
	if _, err := cl.Exec(`create table T (v integer)`); err != nil {
		t.Fatal(err)
	}
	b := cl.NewBatcher("T", BatcherConfig{MaxRows: 1 << 20, MaxDelay: 5 * time.Millisecond})
	if err := b.Add(types.Int(1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		res, err := cl.Exec(`select count(*) as n from T`)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].String() == "1" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("delay flush never happened")
		}
		time.Sleep(time.Millisecond)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBatcherConcurrentProducers(t *testing.T) {
	c := newServerCache(t)
	srv := NewServer(c)
	cl := pipeClient(t, srv)
	if _, err := cl.Exec(`create table T (v integer)`); err != nil {
		t.Fatal(err)
	}
	b := cl.NewBatcher("T", BatcherConfig{MaxRows: 16})
	const producers, perProducer = 8, 100
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := b.Add(types.Int(int64(p*perProducer + i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Exec(`select count(*) as n from T`)
	if err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprint(producers * perProducer); res.Rows[0][0].String() != want {
		t.Errorf("count = %s, want %s", res.Rows[0][0], want)
	}
}

// TestBatcherCloseDoesNotDropConcurrentAdds pins the Close/Add race: every
// Add that returned nil before Close must be committed server-side by the
// time Close returns.
func TestBatcherCloseDoesNotDropConcurrentAdds(t *testing.T) {
	c := newServerCache(t)
	srv := NewServer(c)
	cl := pipeClient(t, srv)
	if _, err := cl.Exec(`create table T (v integer)`); err != nil {
		t.Fatal(err)
	}
	b := cl.NewBatcher("T", BatcherConfig{MaxRows: 8, MaxDelay: time.Millisecond})
	var accepted int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; ; i++ {
				if err := b.Add(types.Int(int64(i))); err != nil {
					return // closed (or deferred error): stop producing
				}
				atomic.AddInt64(&accepted, 1)
			}
		}()
	}
	close(start)
	time.Sleep(20 * time.Millisecond)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	res, err := cl.Exec(`select count(*) as n from T`)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Rows[0][0].String()
	want := fmt.Sprint(atomic.LoadInt64(&accepted))
	if got != want {
		t.Errorf("server has %s rows, accepted %s Adds", got, want)
	}
}

// TestBatcherSplitsOversizedFlush: a flush whose rows would exceed the
// 16 MiB RPC message limit is split into size-bounded chunks rather than
// erroring (and certainly rather than killing the connection).
func TestBatcherSplitsOversizedFlush(t *testing.T) {
	c := newServerCache(t)
	srv := NewServer(c)
	cl := pipeClient(t, srv)
	if _, err := cl.Exec(`create table T (s varchar)`); err != nil {
		t.Fatal(err)
	}
	// 20 rows of 1 MiB each: ~20 MiB total, over the 16 MiB cap.
	big := strings.Repeat("x", 1<<20)
	b := cl.NewBatcher("T", BatcherConfig{MaxRows: 1 << 20, MaxDelay: -1})
	for i := 0; i < 20; i++ {
		if err := b.Add(types.Str(big)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Exec(`select count(*) as n from T`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].String() != "20" {
		t.Errorf("count = %s, want 20", res.Rows[0][0])
	}
	// A direct InsertBatch past the single-message budget streams instead
	// of erroring: every row commits and the connection survives.
	rows := make([][]types.Value, 20)
	for i := range rows {
		rows[i] = []types.Value{types.Str(big)}
	}
	if err := cl.InsertBatch("T", rows); err != nil {
		t.Errorf("oversized direct InsertBatch should stream: %v", err)
	}
	res, err = cl.Exec(`select count(*) as n from T`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].String() != "40" {
		t.Errorf("count = %s, want 40", res.Rows[0][0])
	}
	if err := cl.Ping(); err != nil {
		t.Errorf("connection should survive the streamed batch: %v", err)
	}
}

func TestMultiBatcherRoutesByTable(t *testing.T) {
	c := newServerCache(t)
	srv := NewServer(c)
	cl := pipeClient(t, srv)
	tables := []string{"A", "B", "C"}
	for _, name := range tables {
		if _, err := cl.Exec(fmt.Sprintf(`create table %s (src integer, v integer)`, name)); err != nil {
			t.Fatal(err)
		}
	}
	mb := cl.NewMultiBatcher(BatcherConfig{MaxRows: 8, MaxDelay: -1})

	// Concurrent producers interleave rows across all three tables; every
	// row must land in its own table, in each producer's program order.
	const producers, rowsPerTable = 4, 50
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < rowsPerTable; i++ {
				for _, name := range tables {
					if err := mb.Add(name, types.Int(int64(p)), types.Int(int64(i))); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(p)
	}
	wg.Wait()
	if got := len(mb.Tables()); got != len(tables) {
		t.Errorf("Tables() = %d entries, want %d", got, len(tables))
	}
	if err := mb.Close(); err != nil {
		t.Fatal(err)
	}
	for _, name := range tables {
		res, err := cl.Exec(fmt.Sprintf(`select count(*) as n from %s`, name))
		if err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("%d", producers*rowsPerTable)
		if res.Rows[0][0].String() != want {
			t.Errorf("table %s: count = %s, want %s", name, res.Rows[0][0], want)
		}
		// Per-producer program order within each table (per-topic batches
		// must not reorder one producer's rows).
		res, err = cl.Exec(fmt.Sprintf(`select src, v from %s`, name))
		if err != nil {
			t.Fatal(err)
		}
		next := make(map[string]int64)
		for _, row := range res.Rows {
			src := row[0].String()
			v, _ := row[1].AsInt()
			if v != next[src] {
				t.Fatalf("table %s: producer %s rows out of order: got %d, want %d", name, src, v, next[src])
			}
			next[src] = v + 1
		}
	}
	if err := mb.Add("A", types.Int(0), types.Int(0)); err == nil {
		t.Error("Add after Close should error")
	}
}

// TestSendEventBatchDecode hand-builds a msgSendEventBatch push frame and
// feeds it to the client: both push forms must decode, in order, into
// Events().
func TestSendEventBatchDecode(t *testing.T) {
	cEnd, sEnd := net.Pipe()
	cl := NewClient(cEnd)
	t.Cleanup(func() { _ = cl.Close() })
	tr := newTransport(sEnd)

	e := wire.NewEncoder(256)
	e.U8(msgSendEventBatch)
	e.U32(3)
	for i := int64(1); i <= 3; i++ {
		e.I64(7) // automaton id
		if err := e.Values([]types.Value{types.Int(i * 10)}); err != nil {
			t.Fatal(err)
		}
	}
	go func() {
		if err := tr.writeMessage(0, e.Bytes()); err != nil {
			t.Error(err)
		}
	}()
	for i := int64(1); i <= 3; i++ {
		select {
		case ev := <-cl.Events():
			if ev.AutomatonID != 7 {
				t.Errorf("event %d: automaton id = %d", i, ev.AutomatonID)
			}
			if n, _ := ev.Vals[0].AsInt(); n != i*10 {
				t.Errorf("event %d: value %v, want %d (order violated?)", i, ev.Vals[0], i*10)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for batch event %d", i)
		}
	}
}

// TestSendEventsCoalescedEndToEnd drives enough pushes through one
// connection that the server's push dispatcher coalesces a backlog into
// msgSendEventBatch frames; every event must arrive, in per-automaton
// order.
func TestSendEventsCoalescedEndToEnd(t *testing.T) {
	c := newServerCache(t)
	srv := NewServer(c)
	cl := pipeClient(t, srv)
	if _, err := cl.Exec(`create table T (v integer)`); err != nil {
		t.Fatal(err)
	}
	id, err := cl.Register(`subscribe t to T; behavior { send(t.v); }`)
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	rows := make([][]types.Value, n)
	for i := range rows {
		rows[i] = []types.Value{types.Int(int64(i))}
	}
	if err := cl.InsertBatch("T", rows); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		select {
		case ev := <-cl.Events():
			if ev.AutomatonID != id {
				t.Fatalf("event %d from automaton %d, want %d", i, ev.AutomatonID, id)
			}
			if v, _ := ev.Vals[0].AsInt(); v != int64(i) {
				t.Fatalf("event %d carries %d: per-automaton order violated", i, v)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out at event %d of %d", i, n)
		}
	}
}

// TestEventsDropOldestKeepsRepliesFlowing pins the satellite fix for the
// unbounded-blocking send on Client.events: with DropOldest, an application
// that never drains Events() no longer wedges the read loop — RPC replies
// keep flowing, and the drop is counted.
func TestEventsDropOldestKeepsRepliesFlowing(t *testing.T) {
	c := newServerCache(t)
	srv := NewServer(c)
	cEnd, sEnd := net.Pipe()
	go srv.ServeConn(sEnd)
	cl := NewClientWith(cEnd, ClientConfig{EventBuffer: 4, EventPolicy: pubsub.DropOldest})
	t.Cleanup(func() { _ = cl.Close() })

	if _, err := cl.Exec(`create table T (v integer)`); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Register(`subscribe t to T; behavior { send(t.v); }`); err != nil {
		t.Fatal(err)
	}
	// 100 sends against a 4-slot undrained buffer: the old Block-only read
	// loop would park on the 5th and never process another reply.
	rows := make([][]types.Value, 100)
	for i := range rows {
		rows[i] = []types.Value{types.Int(int64(i))}
	}
	if err := cl.InsertBatch("T", rows); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for cl.DroppedEvents() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no events were dropped: buffer never overflowed?")
		}
		if err := cl.Ping(); err != nil { // replies must flow throughout
			t.Fatalf("ping failed while events backlogged: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	// The surviving buffered events are a suffix of the stream, in order.
	var last int64 = -1
	for drained := false; !drained; {
		select {
		case ev := <-cl.Events():
			v, _ := ev.Vals[0].AsInt()
			if v <= last {
				t.Fatalf("event order violated after drops: %d after %d", v, last)
			}
			last = v
		default:
			drained = true
		}
	}
	if last < 0 {
		t.Fatal("no events survived in the buffer")
	}
}

// TestRegisterInitializationSendDoesNotDeadlock: an initialization-clause
// send() executes on the serve goroutine inside Register, before the
// automaton id is known. It must go out (with id 0 — the client cannot
// attribute any id before the Register reply) rather than deadlock the
// connection.
func TestRegisterInitializationSendDoesNotDeadlock(t *testing.T) {
	c := newServerCache(t)
	srv := NewServer(c)
	cl := pipeClient(t, srv)
	if _, err := cl.Exec(`create table T (v integer)`); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	var id int64
	go func() {
		var err error
		id, err = cl.Register(`
subscribe t to T;
int n;
initialization { send(n); }
behavior { send(t.v); }
`)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Register deadlocked on the initialization-clause send()")
	}
	if err := cl.Ping(); err != nil {
		t.Fatalf("connection wedged after init send: %v", err)
	}
	// The init send arrives with automaton id 0; behaviour sends carry the
	// real id.
	select {
	case ev := <-cl.Events():
		if ev.AutomatonID != 0 {
			t.Errorf("init send carried id %d, want 0 (id unknown at init time)", ev.AutomatonID)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("initialization send never arrived")
	}
	if err := cl.Insert("T", types.Int(7)); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-cl.Events():
		if ev.AutomatonID != id {
			t.Errorf("behaviour send carried id %d, want %d", ev.AutomatonID, id)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("behaviour send never arrived")
	}
}

// TestCloseUnblocksParkedBlockDelivery: under the default Block event
// policy, Close must return even while the read loop is parked delivering
// into a full, undrained Events() buffer.
func TestCloseUnblocksParkedBlockDelivery(t *testing.T) {
	c := newServerCache(t)
	srv := NewServer(c)
	cEnd, sEnd := net.Pipe()
	go srv.ServeConn(sEnd)
	cl := NewClientWith(cEnd, ClientConfig{EventBuffer: 2, EventPolicy: pubsub.Block})

	if _, err := cl.Exec(`create table T (v integer)`); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Register(`subscribe t to T; behavior { send(t.v); }`); err != nil {
		t.Fatal(err)
	}
	rows := make([][]types.Value, 20)
	for i := range rows {
		rows[i] = []types.Value{types.Int(int64(i))}
	}
	// 20 sends against a 2-slot undrained buffer: the read loop parks on
	// the 3rd event. InsertBatch's own reply got through before that (the
	// server commits, replies, and only then the push backlog floods in),
	// but give the park a moment to establish either way.
	if err := cl.InsertBatch("T", rows); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	closed := make(chan error, 1)
	go func() { closed <- cl.Close() }()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung behind a parked Block-policy event delivery")
	}
}
