package rpc

import (
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is the number of ring points each node contributes
// when the caller does not choose: enough that a 3–10 node ring spreads
// topics within a few percent of even, small enough that building the
// ring stays trivial.
const DefaultVirtualNodes = 128

// Ring is a consistent-hash map from topic names onto a fixed set of
// nodes. Each node contributes many virtual points, placed by hashing
// the node's NAME (not its index), so the mapping depends only on the
// set of names: adding a node moves onto it exactly the topics it now
// owns and moves nothing between surviving nodes, and removing a node
// redistributes only that node's topics. Topic→node resolution is
// deterministic across processes — every client of the same node list
// routes identically, which is what makes a cluster of independent
// caches coherent without any coordination.
//
// Concurrency: a Ring is immutable after New; all methods are safe for
// concurrent use.
type Ring struct {
	names  []string
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node int
}

// NewRing builds a ring over the named nodes with vnodes virtual points
// per node (<= 0 means DefaultVirtualNodes). Node names must be distinct:
// a duplicated name would double that node's share while adding no
// capacity, so duplicates collapse to the first occurrence.
func NewRing(names []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{}
	seen := make(map[string]struct{}, len(names))
	for _, name := range names {
		if _, dup := seen[name]; dup {
			continue
		}
		seen[name] = struct{}{}
		node := len(r.names)
		r.names = append(r.names, name)
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(name, v), node: node})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Hash ties (vanishingly rare) break by name so the order — and
		// therefore the routing — never depends on input order.
		return r.names[a.node] < r.names[b.node]
	})
	return r
}

// Nodes returns the number of distinct nodes on the ring.
func (r *Ring) Nodes() int { return len(r.names) }

// Name returns the name of node i (the order nodes were first given).
func (r *Ring) Name(i int) string { return r.names[i] }

// Owner returns the index of the node owning topic: the first ring point
// clockwise from the topic's hash.
func (r *Ring) Owner(topic string) int {
	if len(r.points) == 0 {
		return 0
	}
	h := topicHash(topic)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point to the lowest
	}
	return r.points[i].node
}

// pointHash places one virtual point for a node. The name is hashed with
// a per-replica suffix so each node scatters across the whole ring.
func pointHash(name string, replica int) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	_, _ = h.Write([]byte{'#', byte(replica), byte(replica >> 8), byte(replica >> 16), byte(replica >> 24)})
	return mix64(h.Sum64())
}

func topicHash(topic string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(topic))
	return mix64(h.Sum64())
}

// mix64 finalizes a raw FNV value with a splitmix64-style avalanche. Raw
// FNV of short, similar keys ("n1#0", "n1#1", …) clusters badly in the
// upper bits, which a ring position — an absolute place on the full
// 64-bit circle — is entirely made of; the finalizer spreads every input
// bit across all output bits so arcs even out.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
