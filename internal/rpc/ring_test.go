package rpc

import (
	"fmt"
	"testing"
)

// testTopics returns a deterministic population of topic names.
func testTopics(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("Topic%d", i)
	}
	return out
}

// TestRingDeterministicRouting pins that topic→node mapping is a pure
// function of the node-name set: two rings built from the same names
// agree on every topic, regardless of the order the names were given.
func TestRingDeterministicRouting(t *testing.T) {
	names := []string{"10.0.0.1:7654", "10.0.0.2:7654", "10.0.0.3:7654"}
	a := NewRing(names, 0)
	b := NewRing(names, 0)
	shuffled := []string{names[2], names[0], names[1]}
	c := NewRing(shuffled, 0)
	for _, topic := range testTopics(500) {
		if a.Owner(topic) != b.Owner(topic) {
			t.Fatalf("same ring disagrees on %s", topic)
		}
		if a.Name(a.Owner(topic)) != c.Name(c.Owner(topic)) {
			t.Fatalf("ring routing depends on name order for %s: %s vs %s",
				topic, a.Name(a.Owner(topic)), c.Name(c.Owner(topic)))
		}
	}
}

// TestRingBalance sanity-checks the virtual-node spread: no node of a
// 3-node ring owns a wildly outsized share of a large topic population.
func TestRingBalance(t *testing.T) {
	names := []string{"n1", "n2", "n3"}
	r := NewRing(names, 0)
	counts := make([]int, len(names))
	topics := testTopics(3000)
	for _, topic := range topics {
		counts[r.Owner(topic)]++
	}
	for i, c := range counts {
		share := float64(c) / float64(len(topics))
		if share < 0.15 || share > 0.55 {
			t.Errorf("node %s owns %.0f%% of topics (counts=%v)", names[i], share*100, counts)
		}
	}
}

// TestRingAddNodeRedistribution pins consistent hashing's defining
// property: growing the ring by one node moves topics ONLY onto the new
// node — no topic moves between surviving nodes — and the moved fraction
// is bounded near 1/(n+1).
func TestRingAddNodeRedistribution(t *testing.T) {
	before := NewRing([]string{"n1", "n2", "n3"}, 0)
	after := NewRing([]string{"n1", "n2", "n3", "n4"}, 0)
	topics := testTopics(4000)
	moved := 0
	for _, topic := range topics {
		was, is := before.Name(before.Owner(topic)), after.Name(after.Owner(topic))
		if was == is {
			continue
		}
		moved++
		if is != "n4" {
			t.Fatalf("topic %s moved %s -> %s: adding a node must only move topics onto it", topic, was, is)
		}
	}
	frac := float64(moved) / float64(len(topics))
	if moved == 0 {
		t.Fatal("adding a node moved no topics at all")
	}
	// Expected share is 1/4; allow generous variance but catch a broken
	// ring that reshuffles half the keyspace.
	if frac > 0.45 {
		t.Errorf("adding 1 node to 3 moved %.0f%% of topics (want ~25%%)", frac*100)
	}
}

// TestRingRemoveNodeRedistribution is the mirror property: removing a
// node moves only the topics it owned, and every survivor keeps its own.
func TestRingRemoveNodeRedistribution(t *testing.T) {
	before := NewRing([]string{"n1", "n2", "n3", "n4"}, 0)
	after := NewRing([]string{"n1", "n2", "n3"}, 0)
	for _, topic := range testTopics(4000) {
		was, is := before.Name(before.Owner(topic)), after.Name(after.Owner(topic))
		if was != "n4" && was != is {
			t.Fatalf("topic %s moved %s -> %s though its owner survived", topic, was, is)
		}
		if was == "n4" && is == "n4" {
			t.Fatalf("topic %s still routed to the removed node", topic)
		}
	}
}

// TestRingDuplicateNamesCollapse pins that a repeated node name does not
// double that node's share: the duplicate collapses to one node.
func TestRingDuplicateNamesCollapse(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n1"}, 0)
	if r.Nodes() != 2 {
		t.Fatalf("Nodes() = %d, want 2 (duplicate collapsed)", r.Nodes())
	}
	for _, topic := range testTopics(100) {
		if o := r.Owner(topic); o < 0 || o >= 2 {
			t.Fatalf("Owner(%s) = %d out of range", topic, o)
		}
	}
}
