package rpc

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"unicache/internal/cache"
	"unicache/internal/types"
	"unicache/internal/wire"
)

// Server exposes a cache over the RPC protocol. Each connection's requests
// are processed serially (the paper's cache services RPCs in its main
// thread); different connections proceed concurrently, serialised only by
// the cache commit path.
type Server struct {
	cache *cache.Cache

	mu     sync.Mutex
	ln     net.Listener
	conns  map[*serverConn]struct{}
	closed bool
}

// NewServer wraps a cache.
func NewServer(c *cache.Cache) *Server {
	return &Server{cache: c, conns: make(map[*serverConn]struct{})}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections from ln until Close.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("rpc: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		go s.ServeConn(conn)
	}
}

// Addr returns the listener address (after Serve/ListenAndServe).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops the listener and all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	conns := make([]*serverConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.shutdown()
	}
	return err
}

// ServeConn serves one already-established connection (used directly with
// net.Pipe in tests). It returns when the connection dies.
func (s *Server) ServeConn(conn net.Conn) {
	sc := &serverConn{srv: s, tr: newTransport(conn)}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = conn.Close()
		return
	}
	s.conns[sc] = struct{}{}
	s.mu.Unlock()
	sc.serve()
	s.mu.Lock()
	delete(s.conns, sc)
	s.mu.Unlock()
}

type serverConn struct {
	srv *Server
	tr  *transport

	mu    sync.Mutex
	autos []int64 // automata registered by this connection
}

func (c *serverConn) shutdown() { _ = c.tr.close() }

func (c *serverConn) serve() {
	defer func() {
		// A reaction application going away takes its automata with it.
		c.mu.Lock()
		autos := append([]int64(nil), c.autos...)
		c.autos = nil
		c.mu.Unlock()
		for _, id := range autos {
			_ = c.srv.cache.Unregister(id)
		}
		_ = c.tr.close()
	}()
	for {
		msgID, payload, err := c.tr.readMessage()
		if err != nil {
			return
		}
		if len(payload) == 0 {
			c.replyErr(msgID, errors.New("rpc: empty message"))
			continue
		}
		if err := c.dispatch(msgID, payload[0], payload[1:]); err != nil {
			return // transport write failure: connection is gone
		}
	}
}

func (c *serverConn) reply(msgID uint32, msgType byte, body func(*wire.Encoder) error) error {
	e := wire.NewEncoder(64)
	e.U8(msgType)
	if body != nil {
		if err := body(e); err != nil {
			return c.replyErr(msgID, err)
		}
	}
	return c.tr.writeMessage(msgID, e.Bytes())
}

func (c *serverConn) replyErr(msgID uint32, err error) error {
	e := wire.NewEncoder(64)
	e.U8(msgErr)
	e.Str(err.Error())
	return c.tr.writeMessage(msgID, e.Bytes())
}

func (c *serverConn) dispatch(msgID uint32, msgType byte, body []byte) error {
	d := wire.NewDecoder(body)
	switch msgType {
	case msgPing:
		return c.reply(msgID, msgPingOK, nil)

	case msgExec:
		src, err := d.Str()
		if err != nil {
			return c.replyErr(msgID, err)
		}
		res, err := c.srv.cache.Exec(src)
		if err != nil {
			return c.replyErr(msgID, err)
		}
		return c.reply(msgID, msgExecOK, func(e *wire.Encoder) error {
			return e.Result(res)
		})

	case msgInsert:
		tbl, err := d.Str()
		if err != nil {
			return c.replyErr(msgID, err)
		}
		vals, err := d.Values()
		if err != nil {
			return c.replyErr(msgID, err)
		}
		if err := c.srv.cache.Insert(tbl, vals...); err != nil {
			return c.replyErr(msgID, err)
		}
		return c.reply(msgID, msgInsertOK, nil)

	case msgInsertBatch:
		tbl, err := d.Str()
		if err != nil {
			return c.replyErr(msgID, err)
		}
		rows, err := d.Rows()
		if err != nil {
			return c.replyErr(msgID, err)
		}
		if err := c.srv.cache.CommitBatch(tbl, rows); err != nil {
			return c.replyErr(msgID, err)
		}
		return c.reply(msgID, msgInsertBatchOK, func(e *wire.Encoder) error {
			e.U32(uint32(len(rows)))
			return nil
		})

	case msgRegister:
		src, err := d.Str()
		if err != nil {
			return c.replyErr(msgID, err)
		}
		var autoID int64
		sink := func(vals []types.Value) error {
			e := wire.NewEncoder(128)
			e.U8(msgSendEvent)
			e.I64(autoID)
			if err := e.Values(vals); err != nil {
				return err
			}
			// Pushes use message id 0 (never a request id).
			return c.tr.writeMessage(0, e.Bytes())
		}
		a, err := c.srv.cache.Register(src, sink)
		if err != nil {
			return c.replyErr(msgID, err)
		}
		autoID = a.ID()
		c.mu.Lock()
		c.autos = append(c.autos, autoID)
		c.mu.Unlock()
		return c.reply(msgID, msgRegisterOK, func(e *wire.Encoder) error {
			e.I64(autoID)
			return nil
		})

	case msgUnregister:
		id, err := d.I64()
		if err != nil {
			return c.replyErr(msgID, err)
		}
		c.mu.Lock()
		owned := false
		for i, a := range c.autos {
			if a == id {
				c.autos = append(c.autos[:i], c.autos[i+1:]...)
				owned = true
				break
			}
		}
		c.mu.Unlock()
		if !owned {
			return c.replyErr(msgID, fmt.Errorf("rpc: automaton %d is not registered on this connection", id))
		}
		if err := c.srv.cache.Unregister(id); err != nil {
			return c.replyErr(msgID, err)
		}
		return c.reply(msgID, msgUnregOK, nil)
	}
	return c.replyErr(msgID, fmt.Errorf("rpc: unknown message type %d", msgType))
}
