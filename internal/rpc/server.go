package rpc

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"unicache/internal/automaton"
	"unicache/internal/cache"
	"unicache/internal/pubsub"
	"unicache/internal/sql"
	"unicache/internal/tenant"
	"unicache/internal/types"
	"unicache/internal/uerr"
	"unicache/internal/wire"
)

// engineCore is the request surface a connection dispatches into. Both the
// whole cache and a tenant-scoped view satisfy it, so the dispatch switch
// is tenancy-blind: on a server without tenants every connection's core is
// the cache itself; on a multi-tenant server the core starts nil and a
// successful msgAuth installs the tenant's scoped view, which namespaces
// every table, automaton and watch and enforces the tenant's quotas.
type engineCore interface {
	Exec(src string) (*sql.Result, error)
	Insert(table string, vals ...types.Value) error
	CommitBatch(table string, rows [][]types.Value) error
	RegisterWith(source string, sink automaton.Sink, opts automaton.Options) (*automaton.Automaton, error)
	Unregister(id int64) error
	WatchWith(topic string, fn func(*types.Event), opts cache.WatchOpts) (int64, error)
	Unsubscribe(id int64)
	TapStats() []cache.TapStat
	Automata() []*automaton.Automaton
	Durability() (cache.DurabilityStats, bool)
}

var (
	_ engineCore = (*cache.Cache)(nil)
	_ engineCore = (*cache.Scoped)(nil)
)

// Server exposes a cache over the RPC protocol. Each connection's requests
// are processed serially (the paper's cache services RPCs in its main
// thread); different connections proceed concurrently, serialised only by
// the cache commit path.
type Server struct {
	cache *cache.Cache

	mu     sync.Mutex
	ln     net.Listener
	conns  map[*serverConn]struct{}
	closed bool
}

// NewServer wraps a cache.
func NewServer(c *cache.Cache) *Server {
	return &Server{cache: c, conns: make(map[*serverConn]struct{})}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections from ln until Close.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("rpc: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		go s.ServeConn(conn)
	}
}

// Addr returns the listener address (after Serve/ListenAndServe).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops the listener and all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	conns := make([]*serverConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.shutdown()
	}
	return err
}

// ServeConn serves one already-established connection (used directly with
// net.Pipe in tests). It returns when the connection dies.
func (s *Server) ServeConn(conn net.Conn) {
	sc := &serverConn{
		srv: s,
		tr:  newTransport(conn),
		pushes: pubsub.NewQueue[[]byte](pubsub.QueueOpts{
			Capacity: pushQueueDepth,
			Policy:   pubsub.Block,
		}),
		pushDone: make(chan struct{}),
	}
	if s.cache.TenantRegistry() == nil {
		// No tenants configured: the connection speaks to the whole cache,
		// exactly as before tenancy existed. With tenants, core stays nil
		// until msgAuth binds the connection to one.
		sc.core = s.cache
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = conn.Close()
		return
	}
	s.conns[sc] = struct{}{}
	s.mu.Unlock()
	sc.serve()
	s.mu.Lock()
	delete(s.conns, sc)
	s.mu.Unlock()
}

type serverConn struct {
	srv *Server
	tr  *transport

	// pushes carries wire-encoded send() payloads (i64 automaton id +
	// values, encoded once by the sink) from automaton dispatcher
	// goroutines to the connection's push writer, which coalesces queued
	// payloads into msgSendEventBatch messages. Bounded with the Block
	// policy: a client that stops reading backpressures the sinks instead
	// of growing server memory.
	pushes   *pubsub.Queue[[]byte]
	pushDone chan struct{}

	// core is what requests dispatch into: the cache itself on a server
	// without tenants, a tenant's scoped view after msgAuth, nil before.
	// scope is the same view when (and only when) the connection is
	// tenant-bound. Both are touched only by the serve goroutine.
	core  engineCore
	scope *cache.Scoped

	// streams holds this connection's open insert streams. Only the serve
	// goroutine touches it (stream opens, chunks and ends are all dispatched
	// serially there), so it needs no lock; it dies with the connection.
	streams map[uint64]*serverStream

	mu      sync.Mutex
	autos   []int64 // automata registered by this connection
	watches []int64 // watch taps registered by this connection
}

// serverStream is one open streaming bulk insert: chunks commit as they
// arrive; the first failure is recorded and later chunks are discarded, so
// the client's Close sees either the total committed or that first error.
type serverStream struct {
	table string
	total uint64
	err   error
}

func (c *serverConn) shutdown() { _ = c.tr.close() }

func (c *serverConn) serve() {
	go c.pushLoop()
	defer func() {
		// Close the transport first: a push writer blocked on a dead peer
		// errors out, sheds its queue, and frees any sink parked in Push —
		// without this, Unregister below could wait on an automaton that
		// is itself waiting on the full push queue.
		_ = c.tr.close()
		// A reaction application going away takes its automata and watch
		// taps with it: no dispatcher goroutine or topic subscriber may
		// outlive the connection that created it.
		c.mu.Lock()
		autos := append([]int64(nil), c.autos...)
		watches := append([]int64(nil), c.watches...)
		c.autos, c.watches = nil, nil
		c.mu.Unlock()
		// core is nil only on a never-authenticated multi-tenant
		// connection, which cannot have registered anything.
		if c.core != nil {
			for _, id := range autos {
				_ = c.core.Unregister(id)
			}
			for _, id := range watches {
				c.core.Unsubscribe(id)
			}
		}
		c.pushes.Close()
		<-c.pushDone
	}()
	for {
		msgID, payload, err := c.tr.readMessage()
		if err != nil {
			return
		}
		if len(payload) == 0 {
			c.replyErr(msgID, errors.New("rpc: empty message"))
			continue
		}
		if err := c.dispatch(msgID, payload[0], payload[1:]); err != nil {
			return // transport write failure: connection is gone
		}
	}
}

// pushLoop is the connection's push dispatcher: it drains the push queue
// on its own goroutine and writes the queued send() payloads, coalescing a
// backlog into one msgSendEventBatch per write (bounded by pushMaxRun
// events and ~pushByteBudget bytes) instead of one round trip per event.
// Order is preserved end to end: sinks enqueue in delivery order, one
// writer drains FIFO, and the client decodes batches in order — so each
// automaton's sends reach the application in the order they happened. On a
// write failure the connection is gone: the loop sheds the queue so sinks
// blocked in Push fail fast rather than wedging connection teardown.
func (c *serverConn) pushLoop() {
	defer close(c.pushDone)
	e := wire.NewEncoder(1024)
	var buf [][]byte
	for {
		batch, ok := c.pushes.PopBatch(pushMaxRun, buf)
		if !ok {
			return
		}
		buf = batch
		for start := 0; start < len(batch); {
			n, size := 0, 0
			for start+n < len(batch) && (n == 0 || size+len(batch[start+n]) <= pushByteBudget) {
				size += len(batch[start+n])
				n++
			}
			e.Reset()
			if n == 1 {
				e.U8(msgSendEvent)
			} else {
				e.U8(msgSendEventBatch)
				e.U32(uint32(n))
			}
			for _, p := range batch[start : start+n] {
				e.Raw(p)
			}
			// Pushes use message id 0 (never a request id).
			if err := c.tr.writeMessage(0, e.Bytes()); err != nil {
				c.pushes.Close()
				for {
					if _, ok := c.pushes.PopBatch(0, buf); !ok {
						return
					}
				}
			}
			start += n
		}
	}
}

func (c *serverConn) reply(msgID uint32, msgType byte, body func(*wire.Encoder) error) error {
	e := wire.NewEncoder(64)
	e.U8(msgType)
	if body != nil {
		if err := body(e); err != nil {
			return c.replyErr(msgID, err)
		}
	}
	return c.tr.writeMessage(msgID, e.Bytes())
}

// replyErr sends the error's message plus its uerr sentinel code, so the
// client can rebuild an error whose errors.Is identity matches what an
// embedded caller would have seen.
func (c *serverConn) replyErr(msgID uint32, err error) error {
	e := wire.NewEncoder(64)
	e.U8(msgErr)
	e.U16(uerr.Code(err))
	e.Str(err.Error())
	return c.tr.writeMessage(msgID, e.Bytes())
}

func (c *serverConn) dispatch(msgID uint32, msgType byte, body []byte) error {
	d := wire.NewDecoder(body)
	if c.core == nil && msgType != msgPing && msgType != msgAuth {
		if msgType == msgInsertStreamChunk {
			return nil // fire-and-forget: no reply slot to carry the error
		}
		return c.replyErr(msgID, fmt.Errorf("rpc: %w: authenticate first", uerr.ErrUnauthorized))
	}
	switch msgType {
	case msgPing:
		return c.reply(msgID, msgPingOK, nil)

	case msgAuth:
		token, err := d.Str()
		if err != nil {
			return c.replyErr(msgID, err)
		}
		reg := c.srv.cache.TenantRegistry()
		if reg == nil {
			return c.replyErr(msgID, fmt.Errorf("rpc: %w: server has no tenants configured", uerr.ErrUnauthorized))
		}
		if c.scope != nil {
			// Rebinding would orphan resources registered under the first
			// tenant (teardown unregisters through the current scope).
			return c.replyErr(msgID, fmt.Errorf("rpc: %w: connection is already authenticated as tenant %q",
				uerr.ErrUnauthorized, c.scope.Tenant().Name()))
		}
		t, ok := reg.Resolve(token)
		if !ok {
			return c.replyErr(msgID, fmt.Errorf("rpc: %w: unknown token", uerr.ErrUnauthorized))
		}
		sc := c.srv.cache.Scope(t)
		c.scope = sc
		c.core = sc
		return c.reply(msgID, msgAuthOK, func(e *wire.Encoder) error {
			e.Str(t.Name())
			return nil
		})

	case msgTenantStats:
		if c.scope == nil {
			return c.replyErr(msgID, fmt.Errorf("rpc: %w: server has no tenants configured", uerr.ErrUnauthorized))
		}
		ts := c.scope.TenantStats()
		return c.reply(msgID, msgTenantStatsOK, func(e *wire.Encoder) error {
			encodeTenantStats(e, ts)
			return nil
		})

	case msgExec:
		src, err := d.Str()
		if err != nil {
			return c.replyErr(msgID, err)
		}
		res, err := c.core.Exec(src)
		if err != nil {
			return c.replyErr(msgID, err)
		}
		return c.reply(msgID, msgExecOK, func(e *wire.Encoder) error {
			return e.Result(res)
		})

	case msgInsert:
		tbl, err := d.Str()
		if err != nil {
			return c.replyErr(msgID, err)
		}
		vals, err := d.Values()
		if err != nil {
			return c.replyErr(msgID, err)
		}
		if err := c.core.Insert(tbl, vals...); err != nil {
			return c.replyErr(msgID, err)
		}
		return c.reply(msgID, msgInsertOK, nil)

	case msgInsertBatch:
		tbl, err := d.Str()
		if err != nil {
			return c.replyErr(msgID, err)
		}
		rows, err := d.Rows()
		if err != nil {
			return c.replyErr(msgID, err)
		}
		if err := c.core.CommitBatch(tbl, rows); err != nil {
			return c.replyErr(msgID, err)
		}
		return c.reply(msgID, msgInsertBatchOK, func(e *wire.Encoder) error {
			e.U32(uint32(len(rows)))
			return nil
		})

	case msgInsertStream:
		id, err := d.U64()
		if err != nil {
			return c.replyErr(msgID, err)
		}
		tbl, err := d.Str()
		if err != nil {
			return c.replyErr(msgID, err)
		}
		if c.streams == nil {
			c.streams = make(map[uint64]*serverStream)
		}
		if _, dup := c.streams[id]; dup {
			return c.replyErr(msgID, fmt.Errorf("rpc: insert stream %d is already open", id))
		}
		c.streams[id] = &serverStream{table: tbl}
		return c.reply(msgID, msgInsertStreamOK, nil)

	case msgInsertStreamChunk:
		// Fire-and-forget (message id 0): never reply. A chunk for an
		// unknown stream is a protocol slip from a dead or buggy client and
		// is dropped; a chunk after the stream's first error is discarded so
		// the load stops at the failure point instead of committing a run
		// with a hole in it.
		id, err := d.U64()
		if err != nil {
			return nil
		}
		st := c.streams[id]
		if st == nil || st.err != nil {
			return nil
		}
		rows, err := d.Rows()
		if err != nil {
			st.err = err
			return nil
		}
		if err := c.core.CommitBatch(st.table, rows); err != nil {
			st.err = err
			return nil
		}
		st.total += uint64(len(rows))
		return nil

	case msgInsertStreamEnd:
		id, err := d.U64()
		if err != nil {
			return c.replyErr(msgID, err)
		}
		st := c.streams[id]
		if st == nil {
			return c.replyErr(msgID, fmt.Errorf("rpc: insert stream %d is not open", id))
		}
		delete(c.streams, id)
		if st.err != nil {
			return c.replyErr(msgID, st.err)
		}
		return c.reply(msgID, msgInsertStreamEndOK, func(e *wire.Encoder) error {
			e.U64(st.total)
			return nil
		})

	case msgRegister:
		src, err := d.Str()
		if err != nil {
			return c.replyErr(msgID, err)
		}
		return c.handleRegister(msgID, src, automaton.Options{})

	case msgRegisterWith:
		src, err := d.Str()
		if err != nil {
			return c.replyErr(msgID, err)
		}
		capacity, err := d.I64()
		if err != nil {
			return c.replyErr(msgID, err)
		}
		pol, err := d.U8()
		if err != nil {
			return c.replyErr(msgID, err)
		}
		return c.handleRegister(msgID, src, automaton.Options{
			InboxCapacity: int(capacity),
			InboxPolicy:   pubsub.Policy(pol),
		})

	case msgWatch:
		topic, err := d.Str()
		if err != nil {
			return c.replyErr(msgID, err)
		}
		queue, err := d.I64()
		if err != nil {
			return c.replyErr(msgID, err)
		}
		pol, err := d.U8()
		if err != nil {
			return c.replyErr(msgID, err)
		}
		// The tap's dispatcher may invoke fn before WatchWith returns the
		// id to this goroutine; unlike an automaton sink, fn may simply
		// wait for it — blocking the tap's own dispatcher only delays this
		// tap's delivery (its inbox absorbs the backlog per its policy),
		// and on the failure path no event was ever delivered, so Stop
		// never waits on a parked fn.
		idReady := make(chan struct{})
		var watchID int64
		fn := func(ev *types.Event) {
			<-idReady
			// Encode once: i64 id (negative marks a watch event), commit
			// timestamp, sequence, then the tuple values — what the client
			// needs to rebuild the event next to its recorded topic.
			e := wire.NewEncoder(128)
			e.I64(watchID)
			e.I64(int64(ev.Tuple.TS))
			e.U64(ev.Tuple.Seq)
			if err := e.Values(ev.Tuple.Vals); err != nil {
				return // unencodable tuple: drop this event, keep the tap
			}
			c.pushes.Push(e.Bytes())
		}
		id, err := c.core.WatchWith(topic, fn, cache.WatchOpts{
			Queue:  int(queue),
			Policy: pubsub.Policy(pol),
		})
		if err != nil {
			return c.replyErr(msgID, err)
		}
		watchID = id
		close(idReady)
		c.mu.Lock()
		c.watches = append(c.watches, id)
		c.mu.Unlock()
		return c.reply(msgID, msgWatchOK, func(e *wire.Encoder) error {
			e.I64(id)
			return nil
		})

	case msgUnwatch:
		id, err := d.I64()
		if err != nil {
			return c.replyErr(msgID, err)
		}
		c.mu.Lock()
		owned := false
		for i, w := range c.watches {
			if w == id {
				c.watches = append(c.watches[:i], c.watches[i+1:]...)
				owned = true
				break
			}
		}
		c.mu.Unlock()
		if !owned {
			return c.replyErr(msgID, fmt.Errorf("rpc: watch %d is not registered on this connection", id))
		}
		c.core.Unsubscribe(id)
		return c.reply(msgID, msgUnwatchOK, nil)

	case msgStats:
		taps := c.core.TapStats()
		autos := c.core.Automata()
		return c.reply(msgID, msgStatsOK, func(e *wire.Encoder) error {
			e.U32(uint32(len(taps)))
			for _, t := range taps {
				e.I64(t.ID)
				e.Str(t.Topic)
				e.I64(int64(t.Depth))
				e.U64(t.Dropped)
			}
			e.U32(uint32(len(autos)))
			for _, a := range autos {
				e.I64(a.ID())
				e.I64(int64(a.Depth()))
				e.U64(a.Dropped())
				e.U64(a.Processed())
			}
			if dur, ok := c.core.Durability(); ok {
				e.U8(1)
				e.Str(dur.Dir)
				e.I64(dur.WALBytes)
				e.U64(dur.Fsyncs)
				e.U64(dur.Snapshots)
				e.I64(int64(dur.LastSnapshot))
				e.U64(dur.Replayed)
				e.U64(dur.TornTails)
				e.U32(uint32(len(dur.Domains)))
				for _, dd := range dur.Domains {
					e.Str(dd.Topic)
					e.U64(dd.Seq)
					e.I64(dd.WALBytes)
				}
			} else {
				e.U8(0)
			}
			// Tenant section only on a tenant-bound connection, so the
			// no-tenant reply stays byte-identical to earlier releases.
			if c.scope != nil {
				e.U8(1)
				encodeTenantStats(e, c.scope.TenantStats())
			}
			return nil
		})

	case msgQuiesce:
		ns, err := d.I64()
		if err != nil {
			return c.replyErr(msgID, err)
		}
		if ns < 0 {
			ns = 0
		}
		if ns > maxQuiesceWait {
			ns = maxQuiesceWait
		}
		// This parks the serve goroutine, so only this connection's
		// requests wait; pushes ride their own dispatcher goroutine and
		// other connections keep committing (which is exactly what the
		// registry's idle test observes).
		idle := c.srv.cache.Registry().WaitIdle(time.Duration(ns))
		return c.reply(msgID, msgQuiesceOK, func(e *wire.Encoder) error {
			if idle {
				e.U8(1)
			} else {
				e.U8(0)
			}
			return nil
		})

	case msgUnregister:
		id, err := d.I64()
		if err != nil {
			return c.replyErr(msgID, err)
		}
		c.mu.Lock()
		owned := false
		for i, a := range c.autos {
			if a == id {
				c.autos = append(c.autos[:i], c.autos[i+1:]...)
				owned = true
				break
			}
		}
		c.mu.Unlock()
		if !owned {
			return c.replyErr(msgID, fmt.Errorf("rpc: %w: automaton %d is not registered on this connection", uerr.ErrNoSuchAutomaton, id))
		}
		if err := c.core.Unregister(id); err != nil {
			return c.replyErr(msgID, err)
		}
		return c.reply(msgID, msgUnregOK, nil)
	}
	return c.replyErr(msgID, fmt.Errorf("rpc: unknown message type %d", msgType))
}

// encodeTenantStats writes one msgTenantStatsOK row (also the stats
// reply's trailing tenant section).
func encodeTenantStats(e *wire.Encoder, ts tenant.Stats) {
	e.Str(ts.Name)
	e.I64(int64(ts.Tables))
	e.I64(int64(ts.Automata))
	e.I64(int64(ts.Watches))
	e.U64(ts.Events)
	e.F64(ts.EventsPerSec)
	e.U64(ts.Dropped)
	e.U64(ts.Rejected)
	e.I64(ts.WALBytes)
	e.I64(int64(ts.Quota.MaxTables))
	e.I64(int64(ts.Quota.MaxAutomata))
	e.I64(int64(ts.Quota.MaxInboxDepth))
	e.I64(int64(ts.Quota.MaxEventsPerSec))
	e.I64(ts.Quota.MaxWALBytes)
}

// handleRegister registers an automaton (with or without per-automaton
// options) whose sink pushes send() payloads onto this connection's push
// queue.
func (c *serverConn) handleRegister(msgID uint32, src string, opts automaton.Options) error {
	// The sink can run before RegisterWith returns the id to this
	// goroutine: an initialization-clause send() executes on this very
	// goroutine inside RegisterWith, and a behaviour send() can fire as
	// soon as the first subscription lands. The id is therefore an
	// atomic — those pre-registration sends go out with automaton id
	// 0, which is pre-PR3 behaviour and loses the client nothing (it
	// cannot attribute any id before the Register reply delivers it).
	// The sink must never block on registration completing: it would
	// deadlock the serve goroutine (init-clause send) or RegisterWith's
	// own failure path (disp.Stop waiting on a parked dispatcher).
	var autoID atomic.Int64
	sink := func(vals []types.Value) error {
		// Encode once, here: the payload (i64 id + values) is what both
		// push forms carry, so the writer only prepends an opcode and
		// splices. Encoding errors surface to this sink alone.
		e := wire.NewEncoder(128)
		e.I64(autoID.Load())
		if err := e.Values(vals); err != nil {
			return err
		}
		if !c.pushes.Push(e.Bytes()) {
			return errors.New("rpc: connection closed")
		}
		return nil
	}
	a, err := c.core.RegisterWith(src, sink, opts)
	if err != nil {
		return c.replyErr(msgID, err)
	}
	autoID.Store(a.ID())
	c.mu.Lock()
	c.autos = append(c.autos, a.ID())
	c.mu.Unlock()
	return c.reply(msgID, msgRegisterOK, func(e *wire.Encoder) error {
		e.I64(a.ID())
		return nil
	})
}
