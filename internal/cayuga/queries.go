package cayuga

import (
	"unicache/internal/types"
	"unicache/internal/workload"
)

// StockStream converts the synthetic stock trace into Cayuga events on the
// "Stocks" stream (the dataset both engines consume in Fig. 18).
func StockStream(trace []workload.StockEvent) []Event {
	out := make([]Event, len(trace))
	for i, s := range trace {
		out[i] = StockEvent(s)
	}
	return out
}

// StockEvent converts one tick into the engine's native event form.
func StockEvent(s workload.StockEvent) Event {
	return Event{
		Stream: "Stocks",
		Attrs: map[string]types.Value{
			"name":   types.Str(s.Name),
			"price":  types.Real(s.Price),
			"volume": types.Int(s.Volume),
		},
	}
}

// price and prev shorthands for the query definitions below.
var (
	price = Attr{Name: "price"}
	prev  = Env{Name: "prev"}
)

// PassthroughQuery is the paper's Q1: SELECT * FROM Stocks PUBLISH T.
// Every event spawns an instance that immediately accepts, materialising a
// copy on the output stream.
func PassthroughQuery(in, out string) *Query {
	return &Query{
		Name: "Q1-passthrough",
		In:   in,
		Out:  out,
		States: []State{{
			Forward: &Transition{
				Do:     []Action{BindAll{}},
				Target: 1,
			},
		}},
		Emit: nil, // SELECT *
	}
}

// DoubleTopQuery is the paper's Q2: detect the M-shaped double-top price
// formation per stock (states A-F of Fig. 17). The NFA binds A at the
// start, rides two rising and two falling legs, and accepts when the price
// closes below the valley C.
//
// State map (after the initial bind):
//
//	0: bind A             (every event)
//	1: rising leg to B    (loop while rising; forward on first fall, B must exceed A)
//	2: falling leg to C   (loop while falling above A; forward on first rise, C above A)
//	3: rising leg to D    (loop while rising; forward on first fall, D must exceed C)
//	4: falling leg to E/F (loop while falling above C; accept when price < C)
func DoubleTopQuery(in, out string) *Query {
	bindPrev := Bind{Var: "prev", From: price}
	rising := Cmp{Op: ">", L: price, R: prev}
	falling := Cmp{Op: "<", L: price, R: prev}

	return &Query{
		Name:      "Q2-double-top",
		In:        in,
		Out:       out,
		Partition: "name",
		States: []State{
			{ // 0: bind A on the triggering event
				Forward: &Transition{
					Do: []Action{
						Bind{Var: "name", From: Attr{Name: "name"}},
						Bind{Var: "A", From: price},
						bindPrev,
					},
					Target: 1,
				},
			},
			{ // 1: rise to B
				Loop: &Transition{Pred: rising, Do: []Action{bindPrev}},
				Forward: &Transition{
					Pred: And{L: falling, R: Cmp{Op: ">", L: prev, R: Env{Name: "A"}}},
					Do: []Action{
						Bind{Var: "B", From: prev},
						bindPrev,
					},
					Target: 2,
				},
			},
			{ // 2: fall to C (valley must stay above A)
				Loop: &Transition{
					Pred: And{L: falling, R: Cmp{Op: ">", L: price, R: Env{Name: "A"}}},
					Do:   []Action{bindPrev},
				},
				Forward: &Transition{
					Pred: And{L: rising, R: Cmp{Op: ">", L: prev, R: Env{Name: "A"}}},
					Do: []Action{
						Bind{Var: "C", From: prev},
						bindPrev,
					},
					Target: 3,
				},
			},
			{ // 3: rise to D (second top must exceed the valley)
				Loop: &Transition{Pred: rising, Do: []Action{bindPrev}},
				Forward: &Transition{
					Pred: And{L: falling, R: Cmp{Op: ">", L: prev, R: Env{Name: "C"}}},
					Do: []Action{
						Bind{Var: "D", From: prev},
						bindPrev,
					},
					Target: 4,
				},
			},
			{ // 4: fall through the valley -> accept
				Loop: &Transition{
					Pred: And{L: falling, R: Cmp{Op: ">=", L: price, R: Env{Name: "C"}}},
					Do:   []Action{bindPrev},
				},
				Forward: &Transition{
					Pred:   Cmp{Op: "<", L: price, R: Env{Name: "C"}},
					Do:     []Action{Bind{Var: "end", From: price}},
					Target: 5,
				},
			},
		},
		Emit: []EmitSpec{
			{Name: "name", From: Env{Name: "name"}},
			{Name: "A", From: Env{Name: "A"}},
			{Name: "B", From: Env{Name: "B"}},
			{Name: "C", From: Env{Name: "C"}},
			{Name: "D", From: Env{Name: "D"}},
			{Name: "end", From: Env{Name: "end"}},
		},
	}
}

// RisingRunQuery is the paper's Q3: the FOLD example — detect runs of
// increasing prices per stock of at least minLen events and emit the
// sequence of events constituting each run. The stop edge is enabled as
// soon as the run is long enough, whether or not the run continues: the
// genuine non-determinism of FOLD. The engine clones instances and emits
// every qualifying run — the work the paper's imperative automata avoid by
// detecting maximal runs directly.
func RisingRunQuery(in, out string, minLen int) *Query {
	if minLen < 2 {
		minLen = 2
	}
	return &Query{
		Name:      "Q3-rising-run",
		In:        in,
		Out:       out,
		Partition: "name",
		States: []State{
			{ // 0: bind the run start
				Forward: &Transition{
					Do: []Action{
						Bind{Var: "name", From: Attr{Name: "name"}},
						Bind{Var: "last", From: price},
						NewSeq{Var: "run", From: price},
					},
					Target: 1,
				},
			},
			{ // 1: FOLD while prices increase; stop any time once long enough
				Loop: &Transition{
					Pred: Cmp{Op: ">", L: price, R: Env{Name: "last"}},
					Do: []Action{
						Bind{Var: "last", From: price},
						AppendSeq{Var: "run", From: price},
					},
				},
				Forward: &Transition{
					Pred: SeqLenAtLeast{Var: "run", N: minLen},
					Do: []Action{
						// Snapshot: the looping sibling keeps extending the
						// shared accumulator.
						SnapshotSeq{Var: "run"},
						SeqLenInto{Var: "len", Seq: "run"},
					},
					Target: 2,
				},
			},
		},
		Emit: []EmitSpec{
			{Name: "name", From: Env{Name: "name"}},
			{Name: "len", From: Env{Name: "len"}},
			{Name: "run", From: Env{Name: "run"}},
		},
	}
}
