package cayuga

import (
	"testing"

	"unicache/internal/types"
)

func testEvent() Event {
	return Event{
		Stream: "S",
		Attrs: map[string]types.Value{
			"name":  types.Str("ACME"),
			"price": types.Real(10.5),
		},
	}
}

func TestExprLeaves(t *testing.T) {
	ev := testEvent()
	b := Binding{"x": types.Int(7)}
	if v := (Attr{Name: "name"}).Eval(b, ev); v.String() != "ACME" {
		t.Errorf("Attr = %v", v)
	}
	if v := (Env{Name: "x"}).Eval(b, ev); v.String() != "7" {
		t.Errorf("Env = %v", v)
	}
	if v := (Const{V: types.Bool(true)}).Eval(b, ev); v.String() != "true" {
		t.Errorf("Const = %v", v)
	}
	// Missing names evaluate to nil values, not panics.
	if v := (Attr{Name: "zz"}).Eval(b, ev); !v.IsNil() {
		t.Errorf("missing attr = %v", v)
	}
}

func TestCmpAndLogic(t *testing.T) {
	ev := testEvent()
	b := Binding{"lo": types.Real(10.0)}
	gt := Cmp{Op: ">", L: Attr{Name: "price"}, R: Env{Name: "lo"}}
	if v, _ := gt.Eval(b, ev).AsBool(); !v {
		t.Error("10.5 > 10.0 should hold")
	}
	lt := Cmp{Op: "<", L: Attr{Name: "price"}, R: Env{Name: "lo"}}
	if v, _ := lt.Eval(b, ev).AsBool(); v {
		t.Error("10.5 < 10.0 should not hold")
	}
	// Incomparable kinds yield false rather than an error (NFA guards
	// simply fail).
	bad := Cmp{Op: "<", L: Attr{Name: "name"}, R: Env{Name: "lo"}}
	if v, _ := bad.Eval(b, ev).AsBool(); v {
		t.Error("incomparable guard should be false")
	}
	and := And{L: gt, R: Not{X: lt}}
	if v, _ := and.Eval(b, ev).AsBool(); !v {
		t.Error("and/not wrong")
	}
	or := Or{L: lt, R: gt}
	if v, _ := or.Eval(b, ev).AsBool(); !v {
		t.Error("or wrong")
	}
	if !truthy(nil, b, ev) {
		t.Error("nil predicate is true")
	}
}

func TestActions(t *testing.T) {
	ev := testEvent()
	b := Binding{}
	Bind{Var: "p", From: Attr{Name: "price"}}.Apply(b, ev)
	if b["p"].String() != "10.5" {
		t.Errorf("Bind = %v", b["p"])
	}
	BindAll{}.Apply(b, ev)
	if b["name"].String() != "ACME" {
		t.Errorf("BindAll missing name: %v", b)
	}
	NewSeq{Var: "run", From: Attr{Name: "price"}}.Apply(b, ev)
	if b["run"].Seq().Len() != 1 {
		t.Error("NewSeq wrong")
	}
	AppendSeq{Var: "run", From: Const{V: types.Real(11)}}.Apply(b, ev)
	if b["run"].Seq().Len() != 2 {
		t.Error("AppendSeq wrong")
	}
	SeqLenInto{Var: "len", Seq: "run"}.Apply(b, ev)
	if b["len"].String() != "2" {
		t.Errorf("SeqLenInto = %v", b["len"])
	}
	if v, _ := (SeqLenAtLeast{Var: "run", N: 2}).Eval(b, ev).AsBool(); !v {
		t.Error("SeqLenAtLeast(2) should hold")
	}
	if v, _ := (SeqLenAtLeast{Var: "run", N: 3}).Eval(b, ev).AsBool(); v {
		t.Error("SeqLenAtLeast(3) should not hold")
	}
	// Snapshot decouples the copy from the shared accumulator.
	shared := b["run"].Seq()
	SnapshotSeq{Var: "run"}.Apply(b, ev)
	shared.Append(types.Real(99))
	if b["run"].Seq().Len() != 2 {
		t.Error("SnapshotSeq did not decouple")
	}
}

func TestBindingClone(t *testing.T) {
	b := Binding{"a": types.Int(1)}
	c := b.clone()
	c["a"] = types.Int(2)
	if b["a"].String() != "1" {
		t.Error("clone aliases parent")
	}
}

func TestEmitHelpers(t *testing.T) {
	b := Binding{"x": types.Int(1), "y": types.Str("s")}
	out := emit([]EmitSpec{{Name: "only", From: Env{Name: "x"}}}, b)
	if len(out) != 1 || out["only"].String() != "1" {
		t.Errorf("emit = %v", out)
	}
	all := emitAll(b)
	if len(all) != 2 || all["y"].String() != "s" {
		t.Errorf("emitAll = %v", all)
	}
}

func TestStatsAccounting(t *testing.T) {
	e := NewEngine()
	_ = e.Register(PassthroughQuery("Stocks", "T"))
	for i := 0; i < 10; i++ {
		e.Process(stockEv("A", float64(i)))
	}
	st := e.Stats()
	if st.Events != 20 { // 10 raw + 10 materialised re-entries
		t.Errorf("Events = %d", st.Events)
	}
	if st.Spawned != 10 || st.Accepted != 10 || st.Materialised != 10 {
		t.Errorf("stats = %+v", st)
	}
}
