package cayuga

import (
	"strings"
	"testing"

	"unicache/internal/gapl"
	"unicache/internal/types"
	"unicache/internal/vm"
)

// gaplRunner executes a compiled-from-Cayuga automaton over stock events,
// collecting its publishes.
type gaplRunner struct {
	vm        *vm.VM
	published []publishedEvent
	clock     types.Timestamp
	schema    *types.Schema
	seq       uint64
}

type publishedEvent struct {
	topic string
	vals  []types.Value
}

func newGaplRunner(t *testing.T, q *Query) *gaplRunner {
	t.Helper()
	src, err := ToGAPL(q)
	if err != nil {
		t.Fatalf("ToGAPL: %v", err)
	}
	prog, err := gapl.Compile(src)
	if err != nil {
		t.Fatalf("compiled GAPL does not compile:\n%s\nerror: %v", src, err)
	}
	schema, err := types.NewSchema("Stocks", false, -1,
		types.Column{Name: "name", Type: types.ColVarchar},
		types.Column{Name: "price", Type: types.ColReal},
		types.Column{Name: "volume", Type: types.ColInt})
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Bind(map[string]*types.Schema{"Stocks": schema}); err != nil {
		t.Fatalf("bind: %v", err)
	}
	r := &gaplRunner{schema: schema}
	machine, err := vm.New(prog, r)
	if err != nil {
		t.Fatal(err)
	}
	machine.MaxSteps = 10_000_000
	if err := machine.RunInit(); err != nil {
		t.Fatal(err)
	}
	r.vm = machine
	return r
}

func (r *gaplRunner) feed(t *testing.T, name string, price float64) {
	t.Helper()
	r.seq++
	r.clock++
	ev := &types.Event{
		Topic:  "Stocks",
		Schema: r.schema,
		Tuple: &types.Tuple{Seq: r.seq, TS: r.clock,
			Vals: []types.Value{types.Str(name), types.Real(price), types.Int(100)}},
	}
	if err := r.vm.Deliver(ev); err != nil {
		t.Fatalf("deliver: %v", err)
	}
}

func (r *gaplRunner) Now() types.Timestamp { return r.clock }
func (r *gaplRunner) Publish(topic string, vals []types.Value) error {
	r.published = append(r.published, publishedEvent{topic: topic, vals: vals})
	return nil
}
func (r *gaplRunner) Send([]types.Value) error { return nil }
func (r *gaplRunner) Print(string)             {}
func (r *gaplRunner) AssocLookup(string, string) (types.Value, bool, error) {
	return types.Nil, false, nil
}
func (r *gaplRunner) AssocInsert(string, string, types.Value) error { return nil }
func (r *gaplRunner) AssocHas(string, string) (bool, error)         { return false, nil }
func (r *gaplRunner) AssocRemove(string, string) (bool, error)      { return false, nil }
func (r *gaplRunner) AssocSize(string) (int, error)                 { return 0, nil }

func TestToGAPLPassthrough(t *testing.T) {
	r := newGaplRunner(t, PassthroughQuery("Stocks", "T"))
	for i := 0; i < 5; i++ {
		r.feed(t, "ACME", float64(10+i))
	}
	if len(r.published) != 5 {
		t.Fatalf("passthrough published %d, want 5", len(r.published))
	}
	p := r.published[2]
	if p.topic != "T" || len(p.vals) != 3 {
		t.Fatalf("publish = %+v", p)
	}
	if p.vals[1].String() != "12.0" {
		t.Errorf("price attr = %v", p.vals[1])
	}
}

func TestToGAPLDoubleTop(t *testing.T) {
	r := newGaplRunner(t, DoubleTopQuery("Stocks", "M"))
	// The clean M: A=10 B=20 C=15 D=19 then fall through C.
	for _, p := range []float64{10, 14, 20, 17, 15, 17, 19, 16, 14, 13} {
		r.feed(t, "ACME", p)
	}
	if len(r.published) == 0 {
		t.Fatal("compiled double-top automaton found nothing")
	}
	m := r.published[0]
	if m.topic != "M" || len(m.vals) != 6 {
		t.Fatalf("match = %+v", m)
	}
	// Emit order: name, A, B, C, D, end.
	if m.vals[0].String() != "ACME" {
		t.Errorf("name = %v", m.vals[0])
	}
	if b, _ := m.vals[2].NumAsReal(); b != 20 {
		t.Errorf("B = %v", m.vals[2])
	}
	if c, _ := m.vals[3].NumAsReal(); c != 15 {
		t.Errorf("C = %v", m.vals[3])
	}
}

func TestToGAPLDoubleTopPartitioned(t *testing.T) {
	r := newGaplRunner(t, DoubleTopQuery("Stocks", "M"))
	acme := []float64{10, 20, 15, 19, 16, 14}
	flat := []float64{50, 50, 50, 50, 50, 50}
	for i := range acme {
		r.feed(t, "ACME", acme[i])
		r.feed(t, "FLAT", flat[i])
	}
	if len(r.published) == 0 {
		t.Fatal("interleaved M missed")
	}
	for _, p := range r.published {
		if p.vals[0].String() != "ACME" {
			t.Errorf("match from wrong partition: %v", p.vals[0])
		}
	}
}

func TestToGAPLRisingRun(t *testing.T) {
	r := newGaplRunner(t, RisingRunQuery("Stocks", "Runs", 3))
	for _, p := range []float64{10, 11, 12, 13, 9, 10, 11, 12, 8} {
		r.feed(t, "ACME", p)
	}
	// Deterministic semantics: maximal runs only — (10..13) and (9..12).
	if len(r.published) != 2 {
		t.Fatalf("runs published = %d, want 2 maximal runs", len(r.published))
	}
	if n, _ := r.published[0].vals[1].AsInt(); n != 4 {
		t.Errorf("first run length = %v", r.published[0].vals[1])
	}
	if n, _ := r.published[1].vals[1].AsInt(); n != 4 {
		t.Errorf("second run length = %v", r.published[1].vals[1])
	}
	// The run sequence itself is carried in the emission.
	runSeq := r.published[0].vals[2].Seq()
	if runSeq == nil || runSeq.Len() != 4 || runSeq.At(0).String() != "10.0" {
		t.Errorf("run sequence = %v", r.published[0].vals[2])
	}
}

func TestToGAPLAgreesWithEngineOnPlantedTrace(t *testing.T) {
	// On a clean planted pattern both semantics must find it; the NFA may
	// find more (overlaps), never fewer.
	q := DoubleTopQuery("Stocks", "M")
	r := newGaplRunner(t, q)
	eng := NewEngine()
	_ = eng.Register(DoubleTopQuery("Stocks", "M"))
	prices := []float64{10, 14, 20, 17, 15, 17, 19, 16, 14, 13, 30, 31, 28, 26,
		29, 33, 30, 27, 25, 24}
	for _, p := range prices {
		r.feed(t, "X", p)
		eng.Process(stockEv("X", p))
	}
	if len(r.published) == 0 {
		t.Fatal("compiled automaton found nothing")
	}
	if len(eng.Stream("M")) < len(r.published) {
		t.Errorf("NFA found %d, compiled automaton %d — NFA must find at least as many",
			len(eng.Stream("M")), len(r.published))
	}
}

func TestToGAPLValidation(t *testing.T) {
	if _, err := ToGAPL(nil); err == nil {
		t.Error("nil query rejected")
	}
	if _, err := ToGAPL(&Query{In: "S", Out: "T", States: []State{}}); err == nil {
		t.Error("empty states rejected")
	}
	// State 0 with a predicate is not a pure seeding state.
	bad := &Query{In: "S", Out: "T", States: []State{
		{Forward: &Transition{Pred: Cmp{Op: ">", L: price, R: Const{V: types.Real(1)}}, Target: 1}},
	}}
	if _, err := ToGAPL(bad); err == nil {
		t.Error("guarded state 0 rejected")
	}
}

func TestToGAPLSourceIsReadable(t *testing.T) {
	src, err := ToGAPL(RisingRunQuery("Stocks", "Runs", 2))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"subscribe ev to Stocks", "behavior {", "Map(sequence)", "publish('Runs'"} {
		if !strings.Contains(src, want) {
			t.Errorf("generated source missing %q:\n%s", want, src)
		}
	}
}
