package cayuga

import (
	"unicache/internal/types"
)

// Cayuga compiles its query language into predicate and action expression
// trees that the engine evaluates interpretively per instance per event —
// the same interpretation cost the Cache pays in its bytecode VM. This
// file is that expression layer.

// Expr evaluates against an instance environment and the incoming event.
type Expr interface {
	Eval(b Binding, ev Event) types.Value
}

// Attr references an attribute of the incoming event.
type Attr struct{ Name string }

// Env references a bound variable of the instance environment.
type Env struct{ Name string }

// Const is a literal.
type Const struct{ V types.Value }

// Cmp compares two subexpressions with a relational operator.
type Cmp struct {
	Op   string // "==", "!=", "<", "<=", ">", ">="
	L, R Expr
}

// And is logical conjunction; Or disjunction; Not negation.
type And struct{ L, R Expr }

// Or is logical disjunction.
type Or struct{ L, R Expr }

// Not is logical negation.
type Not struct{ X Expr }

// Eval implements Expr.
func (e Attr) Eval(_ Binding, ev Event) types.Value { return ev.Attrs[e.Name] }

// Eval implements Expr.
func (e Env) Eval(b Binding, _ Event) types.Value { return b[e.Name] }

// Eval implements Expr.
func (e Const) Eval(Binding, Event) types.Value { return e.V }

// Eval implements Expr.
func (e Cmp) Eval(b Binding, ev Event) types.Value {
	v, err := types.CompareOp(e.Op, e.L.Eval(b, ev), e.R.Eval(b, ev))
	if err != nil {
		return types.Bool(false)
	}
	return v
}

// Eval implements Expr.
func (e And) Eval(b Binding, ev Event) types.Value {
	if l, _ := e.L.Eval(b, ev).AsBool(); !l {
		return types.Bool(false)
	}
	r, _ := e.R.Eval(b, ev).AsBool()
	return types.Bool(r)
}

// Eval implements Expr.
func (e Or) Eval(b Binding, ev Event) types.Value {
	if l, _ := e.L.Eval(b, ev).AsBool(); l {
		return types.Bool(true)
	}
	r, _ := e.R.Eval(b, ev).AsBool()
	return types.Bool(r)
}

// Eval implements Expr.
func (e Not) Eval(b Binding, ev Event) types.Value {
	v, _ := e.X.Eval(b, ev).AsBool()
	return types.Bool(!v)
}

// truthy evaluates a predicate expression (nil = true).
func truthy(e Expr, b Binding, ev Event) bool {
	if e == nil {
		return true
	}
	v, _ := e.Eval(b, ev).AsBool()
	return v
}

// Action mutates an instance environment when a transition fires.
type Action interface {
	Apply(b Binding, ev Event)
}

// Bind sets an environment variable from an expression.
type Bind struct {
	Var  string
	From Expr
}

// BindAll copies every event attribute into the environment (SELECT *).
type BindAll struct{}

// AppendSeq appends an expression value to a sequence-valued variable.
type AppendSeq struct {
	Var  string
	From Expr
}

// NewSeq binds a fresh single-element sequence.
type NewSeq struct {
	Var  string
	From Expr
}

// SnapshotSeq replaces a sequence variable with a private copy (used when
// a forked instance must stop sharing its FOLD accumulator).
type SnapshotSeq struct{ Var string }

// SeqLenInto binds the current length of a sequence variable.
type SeqLenInto struct {
	Var string // destination
	Seq string // sequence variable
}

// Apply implements Action.
func (a Bind) Apply(b Binding, ev Event) { b[a.Var] = a.From.Eval(b, ev) }

// Apply implements Action.
func (BindAll) Apply(b Binding, ev Event) {
	for k, v := range ev.Attrs {
		b[k] = v
	}
}

// Apply implements Action.
func (a AppendSeq) Apply(b Binding, ev Event) {
	if s := b[a.Var].Seq(); s != nil {
		s.Append(a.From.Eval(b, ev))
	}
}

// Apply implements Action.
func (a NewSeq) Apply(b Binding, ev Event) {
	b[a.Var] = types.SeqV(types.NewSequence(a.From.Eval(b, ev)))
}

// Apply implements Action.
func (a SnapshotSeq) Apply(b Binding, _ Event) {
	if s := b[a.Var].Seq(); s != nil {
		b[a.Var] = types.SeqV(s.Clone())
	}
}

// Apply implements Action.
func (a SeqLenInto) Apply(b Binding, _ Event) {
	if s := b[a.Seq].Seq(); s != nil {
		b[a.Var] = types.Int(int64(s.Len()))
	}
}

// SeqLenAtLeast is a predicate on a sequence variable's length.
type SeqLenAtLeast struct {
	Var string
	N   int
}

// Eval implements Expr.
func (e SeqLenAtLeast) Eval(b Binding, _ Event) types.Value {
	s := b[e.Var].Seq()
	return types.Bool(s != nil && s.Len() >= e.N)
}

// EmitSpec projects one output attribute from the accepted environment.
type EmitSpec struct {
	Name string
	From Expr
}

// emit builds the output attribute map interpretively.
func emit(specs []EmitSpec, b Binding) map[string]types.Value {
	out := make(map[string]types.Value, len(specs))
	for _, s := range specs {
		out[s.Name] = s.From.Eval(b, Event{})
	}
	return out
}

// emitAll copies the whole environment (SELECT *).
func emitAll(b Binding) map[string]types.Value {
	out := make(map[string]types.Value, len(b))
	for k, v := range b {
		out[k] = v
	}
	return out
}
