package cayuga

import (
	"testing"

	"unicache/internal/types"
	"unicache/internal/workload"
)

func stockEv(name string, price float64) Event {
	return Event{
		Stream: "Stocks",
		Attrs: map[string]types.Value{
			"name":   types.Str(name),
			"price":  types.Real(price),
			"volume": types.Int(100),
		},
	}
}

func TestRegisterValidation(t *testing.T) {
	e := NewEngine()
	if err := e.Register(nil); err == nil {
		t.Error("nil query rejected")
	}
	if err := e.Register(&Query{In: "S"}); err == nil {
		t.Error("missing out stream rejected")
	}
	if err := e.Register(&Query{In: "S", Out: "T"}); err == nil {
		t.Error("no states rejected")
	}
}

func TestPassthroughQuery(t *testing.T) {
	e := NewEngine()
	q := PassthroughQuery("Stocks", "T")
	if err := e.Register(q); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		e.Process(stockEv("ACME", float64(10+i)))
	}
	out := e.Stream("T")
	if len(out) != 5 {
		t.Fatalf("materialised %d events, want 5", len(out))
	}
	if out[2].Attrs["price"].String() != "12.0" {
		t.Errorf("passthrough attrs = %v", out[2].Attrs)
	}
	st := e.Stats()
	if st.Accepted != 5 || st.Spawned != 5 {
		t.Errorf("stats = %+v", st)
	}
	if e.LiveInstances(q) != 0 {
		t.Errorf("passthrough should leave no live instances, got %d", e.LiveInstances(q))
	}
}

func TestDoubleTopDetectsMShape(t *testing.T) {
	e := NewEngine()
	q := DoubleTopQuery("Stocks", "M")
	if err := e.Register(q); err != nil {
		t.Fatal(err)
	}
	// A=10 rise to B=20 fall to C=15 rise to D=19 fall below C.
	prices := []float64{10, 14, 20, 17, 15, 17, 19, 16, 14}
	for _, p := range prices {
		e.Process(stockEv("ACME", p))
	}
	out := e.Stream("M")
	if len(out) == 0 {
		t.Fatal("double top not detected")
	}
	m := out[0].Attrs
	if m["name"].String() != "ACME" {
		t.Errorf("match name = %v", m["name"])
	}
	if b, _ := m["B"].AsReal(); b != 20 {
		t.Errorf("B = %v", m["B"])
	}
	if c, _ := m["C"].AsReal(); c != 15 {
		t.Errorf("C = %v", m["C"])
	}
	if d, _ := m["D"].AsReal(); d != 19 {
		t.Errorf("D = %v", m["D"])
	}
}

func TestDoubleTopRespectsPartition(t *testing.T) {
	e := NewEngine()
	q := DoubleTopQuery("Stocks", "M")
	_ = e.Register(q)
	// Interleave two stocks; only ACME forms the M shape.
	acme := []float64{10, 20, 15, 19, 16, 14}
	flat := []float64{50, 50, 50, 50, 50, 50}
	for i := range acme {
		e.Process(stockEv("ACME", acme[i]))
		e.Process(stockEv("FLAT", flat[i]))
	}
	for _, m := range e.Stream("M") {
		if m.Attrs["name"].String() != "ACME" {
			t.Errorf("match from wrong partition: %v", m.Attrs["name"])
		}
	}
	if len(e.Stream("M")) == 0 {
		t.Error("interleaved M shape missed")
	}
}

func TestDoubleTopRejectsValleyBelowStart(t *testing.T) {
	e := NewEngine()
	_ = e.Register(DoubleTopQuery("Stocks", "M"))
	// Valley dips below A: not a valid double top from A's anchor.
	for _, p := range []float64{10, 20, 5, 19, 3} {
		e.Process(stockEv("X", p))
	}
	for _, m := range e.Stream("M") {
		a, _ := m.Attrs["A"].AsReal()
		c, _ := m.Attrs["C"].AsReal()
		if c <= a {
			t.Errorf("accepted match with valley %v below start %v", c, a)
		}
	}
}

func TestRisingRunQuery(t *testing.T) {
	e := NewEngine()
	q := RisingRunQuery("Stocks", "Runs", 3)
	if err := e.Register(q); err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{10, 11, 12, 13, 9, 10, 9} {
		e.Process(stockEv("ACME", p))
	}
	out := e.Stream("Runs")
	if len(out) == 0 {
		t.Fatal("no runs detected")
	}
	// The longest run 10,11,12,13 must be among the emitted (overlapping
	// suffixes are legitimate FOLD matches).
	best := 0
	for _, ev := range out {
		if n, _ := ev.Attrs["len"].AsInt(); int(n) > best {
			best = int(n)
		}
	}
	if best != 4 {
		t.Errorf("longest emitted run = %d, want 4", best)
	}
}

func TestRisingRunMinLength(t *testing.T) {
	e := NewEngine()
	_ = e.Register(RisingRunQuery("Stocks", "Runs", 4))
	for _, p := range []float64{10, 11, 12, 9} { // run of 3 < minLen 4
		e.Process(stockEv("ACME", p))
	}
	if got := len(e.Stream("Runs")); got != 0 {
		t.Errorf("short run emitted %d matches", got)
	}
}

func TestIntermediateStreamsReenterEngine(t *testing.T) {
	e := NewEngine()
	_ = e.Register(PassthroughQuery("Stocks", "Mid"))
	_ = e.Register(PassthroughQuery("Mid", "Final"))
	e.Process(stockEv("ACME", 10))
	if len(e.Stream("Mid")) != 1 || len(e.Stream("Final")) != 1 {
		t.Errorf("chained streams: mid=%d final=%d",
			len(e.Stream("Mid")), len(e.Stream("Final")))
	}
}

func TestSelfFeedingQueryBounded(t *testing.T) {
	e := NewEngine()
	// Pathological: a query that publishes to its own input.
	_ = e.Register(PassthroughQuery("Loop", "Loop"))
	e.Process(Event{Stream: "Loop", Attrs: map[string]types.Value{"v": types.Int(1)}})
	// Must terminate (depth-bounded); the stream holds a bounded number of
	// copies.
	if n := len(e.Stream("Loop")); n == 0 || n > 64 {
		t.Errorf("self-feeding loop materialised %d events", n)
	}
}

func TestStockStreamConversion(t *testing.T) {
	trace := workload.StockTrace(workload.StockConfig{
		Seed: 1, Events: 100, Symbols: 5,
	})
	evs := StockStream(trace)
	if len(evs) != 100 {
		t.Fatalf("converted %d events", len(evs))
	}
	if evs[0].Stream != "Stocks" {
		t.Error("stream name wrong")
	}
	if _, ok := evs[0].Attrs["price"]; !ok {
		t.Error("price attribute missing")
	}
}

func TestPaperTraceFindsPatterns(t *testing.T) {
	if testing.Short() {
		t.Skip("full trace in -short mode")
	}
	trace := workload.StockTrace(workload.StockConfig{
		Seed: 42, Events: 20_000, Symbols: 20, DoubleTops: 50, RunLength: 8, Runs: 100,
	})
	e := NewEngine()
	_ = e.Register(DoubleTopQuery("Stocks", "M"))
	_ = e.Register(RisingRunQuery("Stocks", "Runs", 5))
	e.ProcessAll(StockStream(trace))
	if len(e.Stream("M")) == 0 {
		t.Error("planted double tops not detected in synthetic trace")
	}
	if len(e.Stream("Runs")) == 0 {
		t.Error("planted rising runs not detected in synthetic trace")
	}
}
