// Package cayuga reimplements the subset of the Cayuga complex-event
// engine the paper benchmarks against (§6.5): a non-deterministic finite
// automaton model in which each query compiles to an NFA, each partial
// match is an automaton *instance* carrying an attribute binding, every
// event may spawn a fresh instance (overlapping matches), and accepted
// matches are materialised as events on an output stream that re-enters
// the engine (Cayuga's intermediate event streams).
//
// These properties — per-instance bindings, instance multiplication, and
// intermediate stream materialisation — are precisely the costs the
// paper's imperative automata avoid, so reproducing them faithfully is
// what makes the Fig. 18 comparison meaningful.
package cayuga

import (
	"container/heap"
	"fmt"

	"unicache/internal/types"
)

// Event is one event instance: a named stream plus attribute values.
// Cayuga's algebra is schema-flexible, so attributes live in a map (the
// generality the engine pays for on every access).
type Event struct {
	Stream string
	Attrs  map[string]types.Value
}

// Binding is the variable environment an NFA instance carries.
type Binding map[string]types.Value

// clone copies a binding (instances must not alias environments).
func (b Binding) clone() Binding {
	out := make(Binding, len(b))
	for k, v := range b {
		out[k] = v
	}
	return out
}

// Transition is one guarded edge of the NFA. Guards and updates are
// interpreted expression/action trees (see expr.go), exactly as Cayuga
// evaluates its compiled query language at run time.
type Transition struct {
	// Pred guards the edge (nil = always).
	Pred Expr
	// Do updates the binding when the edge fires.
	Do []Action
	// Target is the destination state index; for Loop edges it is ignored.
	Target int
}

// State is one NFA state with an optional self-loop (the FOLD iterate
// edge) and an optional forward edge. Edge priority is loop first, then
// forward; if neither fires for an event in the instance's partition the
// instance dies (predicate-based garbage collection).
type State struct {
	Loop    *Transition
	Forward *Transition
}

// Query is one registered pattern: an NFA over an input stream publishing
// accepted matches to an output stream.
type Query struct {
	Name string
	// In is the input stream.
	In string
	// Out is the stream accepted matches are published to.
	Out string
	// Partition names the attribute that partitions instances (e.g. the
	// stock name); empty means no partitioning.
	Partition string
	// Start guards instance creation (nil = every event spawns one).
	Start Expr
	// OnStart seeds the binding of a fresh instance.
	OnStart []Action
	// States are the NFA states; an instance reaching state len(States)
	// accepts.
	States []State
	// Emit projects the accepted binding to the output event's attributes;
	// nil emits the whole environment (SELECT *).
	Emit []EmitSpec
}

// instance is one partial match.
type instance struct {
	state int
	env   Binding
	part  string
}

// queuedEvent is one entry of the engine's timestamp-ordered input queue
// (Cayuga processes events in temporal order through a priority queue;
// derived events re-enter the queue).
type queuedEvent struct {
	ts    uint64
	depth int
	ev    Event
}

// eventHeap is a min-heap on timestamps.
type eventHeap []queuedEvent

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].ts < h[j].ts }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(queuedEvent)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Stats counts the engine work performed; the Fig. 18 analysis uses them
// to show where Cayuga's time goes.
type Stats struct {
	Events       uint64 // events processed (including intermediate streams)
	Spawned      uint64 // instances created
	Transitions  uint64 // edges fired
	Died         uint64 // instances garbage-collected
	Accepted     uint64 // matches emitted
	Materialised uint64 // events appended to output streams
}

// Engine hosts registered queries and their live instances.
type Engine struct {
	queries  map[string][]*Query // input stream -> queries
	live     map[*Query][]*instance
	streams  map[string][]Event // materialised output streams
	queue    eventHeap
	nextTS   uint64
	stats    Stats
	maxDepth int
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{
		queries:  make(map[string][]*Query),
		live:     make(map[*Query][]*instance),
		streams:  make(map[string][]Event),
		maxDepth: 16,
	}
}

// Register installs a query.
func (e *Engine) Register(q *Query) error {
	if q == nil || q.In == "" || q.Out == "" {
		return fmt.Errorf("cayuga: query needs input and output streams")
	}
	if len(q.States) == 0 {
		return fmt.Errorf("cayuga: query %s has no states", q.Name)
	}
	e.queries[q.In] = append(e.queries[q.In], q)
	return nil
}

// Stats returns a copy of the work counters.
func (e *Engine) Stats() Stats { return e.stats }

// Stream returns the materialised contents of an output stream.
func (e *Engine) Stream(name string) []Event { return e.streams[name] }

// Process feeds one event through the engine's timestamp-ordered queue;
// any accepted matches are materialised on their output streams and
// re-enter the queue (bounded by a re-derivation depth to defend against
// self-feeding query graphs).
func (e *Engine) Process(ev Event) {
	e.enqueue(ev, 0)
	e.drain()
}

// ProcessAll feeds a batch in order.
func (e *Engine) ProcessAll(evs []Event) {
	for _, ev := range evs {
		e.enqueue(ev, 0)
		e.drain()
	}
}

func (e *Engine) enqueue(ev Event, depth int) {
	e.nextTS++
	heap.Push(&e.queue, queuedEvent{ts: e.nextTS, depth: depth, ev: ev})
}

func (e *Engine) drain() {
	for e.queue.Len() > 0 {
		qe := heap.Pop(&e.queue).(queuedEvent)
		if qe.depth > e.maxDepth {
			continue
		}
		e.stats.Events++
		for _, q := range e.queries[qe.ev.Stream] {
			e.advance(q, qe.ev, qe.depth)
		}
	}
}

func (e *Engine) advance(q *Query, ev Event, depth int) {
	part := ""
	if q.Partition != "" {
		part = types.KeyString(ev.Attrs[q.Partition])
	}

	// 1. Every event may start a new instance (overlapping matches). The
	// fresh instance participates in this event's transition evaluation,
	// so unary queries accept on the triggering event itself.
	if truthy(q.Start, nil, ev) {
		env := make(Binding, 8)
		for _, a := range q.OnStart {
			a.Apply(env, ev)
		}
		e.stats.Spawned++
		e.live[q] = append(e.live[q], &instance{state: 0, env: env, part: part})
	}

	// 2. Instances in this partition step with true NFA semantics: when
	// both the self-loop and the forward edge are enabled the instance is
	// cloned and both paths are explored (the non-determinism Cayuga's
	// FOLD is named for). An instance with no enabled edge dies.
	kept := e.live[q][:0]
	var accepted []Binding
	for _, in := range e.live[q] {
		if q.Partition != "" && in.part != part {
			kept = append(kept, in)
			continue
		}
		st := q.States[in.state]
		loopOK := st.Loop != nil && truthy(st.Loop.Pred, in.env, ev)
		fwdOK := st.Forward != nil && truthy(st.Forward.Pred, in.env, ev)
		if loopOK && fwdOK {
			// Clone for the forward path; the original keeps looping.
			fork := &instance{state: in.state, env: in.env.clone(), part: in.part}
			e.stats.Spawned++
			for _, a := range st.Forward.Do {
				a.Apply(fork.env, ev)
			}
			e.stats.Transitions++
			fork.state = st.Forward.Target
			if fork.state >= len(q.States) {
				accepted = append(accepted, fork.env)
				e.stats.Accepted++
			} else {
				kept = append(kept, fork)
			}
		}
		switch {
		case loopOK:
			for _, a := range st.Loop.Do {
				a.Apply(in.env, ev)
			}
			e.stats.Transitions++
			kept = append(kept, in)
		case fwdOK:
			for _, a := range st.Forward.Do {
				a.Apply(in.env, ev)
			}
			e.stats.Transitions++
			in.state = st.Forward.Target
			if in.state >= len(q.States) {
				accepted = append(accepted, in.env)
				e.stats.Accepted++
			} else {
				kept = append(kept, in)
			}
		default:
			e.stats.Died++
		}
	}
	e.live[q] = kept

	// 3. Materialise accepted matches and re-enter the engine through the
	// event queue.
	for _, env := range accepted {
		var attrs map[string]types.Value
		if q.Emit == nil {
			attrs = emitAll(env)
		} else {
			attrs = emit(q.Emit, env)
		}
		out := Event{Stream: q.Out, Attrs: attrs}
		e.streams[q.Out] = append(e.streams[q.Out], out)
		e.stats.Materialised++
		e.enqueue(out, depth+1)
	}
}

// LiveInstances returns the number of live instances for a query (tests).
func (e *Engine) LiveInstances(q *Query) int { return len(e.live[q]) }
