package cayuga

import (
	"fmt"
	"strings"

	"unicache/internal/types"
)

// ToGAPL compiles a Cayuga query into an equivalent GAPL automaton — the
// compilation path the paper names as started work in §8 ("compilation of
// stream expressions for complex event patterns, such as Cayuga's, into
// equivalent automata").
//
// The translation keeps one state machine per partition in a map (the
// §6.5 implementation style): each entry is a sequence holding the state
// index followed by the query's bound variables. Semantics are the
// deterministic approximation the paper's hand-written automata use —
// first match per partition, restarting from the current event after a
// match or a dead transition — rather than the NFA's overlapping-instance
// semantics. Accepted matches are published to the query's output stream.
//
// Requirements on the query shape (all of this package's queries satisfy
// them): state 0 must be a forward-only seeding state, and every referenced
// environment variable must be written by some action before use.
func ToGAPL(q *Query) (string, error) {
	if q == nil || len(q.States) == 0 {
		return "", fmt.Errorf("togapl: empty query")
	}
	s0 := q.States[0]
	if s0.Loop != nil || s0.Forward == nil || s0.Forward.Pred != nil {
		return "", fmt.Errorf("togapl: state 0 must be an unconditional seeding forward state")
	}
	tr := &translator{q: q, varIdx: map[string]int{}}
	// Collect environment variables in deterministic first-write order.
	for _, st := range q.States {
		for _, t := range []*Transition{st.Loop, st.Forward} {
			if t == nil {
				continue
			}
			for _, a := range t.Do {
				tr.collectAction(a)
			}
		}
	}
	return tr.emit()
}

type translator struct {
	q       *Query
	varIdx  map[string]int // env var -> sequence slot (slot 0 = state)
	order   []string
	bindAll bool
}

func (tr *translator) slot(name string) int {
	if i, ok := tr.varIdx[name]; ok {
		return i
	}
	i := len(tr.order) + 1 // slot 0 holds the state index
	tr.varIdx[name] = i
	tr.order = append(tr.order, name)
	return i
}

func (tr *translator) collectAction(a Action) {
	switch act := a.(type) {
	case Bind:
		tr.slot(act.Var)
	case NewSeq:
		tr.slot(act.Var)
	case AppendSeq:
		tr.slot(act.Var)
	case SnapshotSeq:
		tr.slot(act.Var)
	case SeqLenInto:
		tr.slot(act.Var)
		tr.slot(act.Seq)
	case BindAll:
		tr.bindAll = true
		tr.slot("*all")
	}
}

// expr renders a predicate/projection expression as GAPL source.
func (tr *translator) expr(e Expr) (string, error) {
	switch x := e.(type) {
	case Attr:
		return "ev." + x.Name, nil
	case Env:
		i, ok := tr.varIdx[x.Name]
		if !ok {
			return "", fmt.Errorf("togapl: variable %q read before any write", x.Name)
		}
		return fmt.Sprintf("seqElement(m, %d)", i), nil
	case Const:
		return gaplLiteral(x.V)
	case Cmp:
		l, err := tr.expr(x.L)
		if err != nil {
			return "", err
		}
		r, err := tr.expr(x.R)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("(%s %s %s)", l, x.Op, r), nil
	case And:
		l, err := tr.expr(x.L)
		if err != nil {
			return "", err
		}
		r, err := tr.expr(x.R)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("(%s && %s)", l, r), nil
	case Or:
		l, err := tr.expr(x.L)
		if err != nil {
			return "", err
		}
		r, err := tr.expr(x.R)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("(%s || %s)", l, r), nil
	case Not:
		s, err := tr.expr(x.X)
		if err != nil {
			return "", err
		}
		return "(!" + s + ")", nil
	case SeqLenAtLeast:
		i, ok := tr.varIdx[x.Var]
		if !ok {
			return "", fmt.Errorf("togapl: sequence %q read before any write", x.Var)
		}
		return fmt.Sprintf("(seqSize(seqElement(m, %d)) >= %d)", i, x.N), nil
	}
	return "", fmt.Errorf("togapl: unsupported expression %T", e)
}

func gaplLiteral(v types.Value) (string, error) {
	switch v.Kind() {
	case types.KindInt, types.KindReal, types.KindBool:
		return v.String(), nil
	case types.KindString, types.KindIdentifier:
		s, _ := v.AsStr()
		return "'" + strings.ReplaceAll(s, "'", "\\'") + "'", nil
	}
	return "", fmt.Errorf("togapl: unsupported literal kind %s", v.Kind())
}

// actions renders a transition's action list, indented.
func (tr *translator) actions(acts []Action, indent string) (string, error) {
	var b strings.Builder
	for _, a := range acts {
		switch act := a.(type) {
		case Bind:
			src, err := tr.expr(act.From)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "%sseqSet(m, %d, %s);\n", indent, tr.varIdx[act.Var], src)
		case NewSeq:
			src, err := tr.expr(act.From)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "%sseqSet(m, %d, Sequence(%s));\n", indent, tr.varIdx[act.Var], src)
		case AppendSeq:
			src, err := tr.expr(act.From)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "%sappend(seqElement(m, %d), %s);\n", indent, tr.varIdx[act.Var], src)
		case SnapshotSeq:
			// Deterministic translation has no forked sibling sharing the
			// accumulator; snapshotting is a no-op.
		case SeqLenInto:
			fmt.Fprintf(&b, "%sseqSet(m, %d, seqSize(seqElement(m, %d)));\n",
				indent, tr.varIdx[act.Var], tr.varIdx[act.Seq])
		case BindAll:
			// seqSet materialises the event to its attribute sequence.
			fmt.Fprintf(&b, "%sseqSet(m, %d, ev);\n", indent, tr.varIdx["*all"])
		default:
			return "", fmt.Errorf("togapl: unsupported action %T", a)
		}
	}
	return b.String(), nil
}

// emitPublish renders the accept-time publication.
func (tr *translator) emitPublish(indent string) (string, error) {
	if tr.q.Emit == nil {
		if !tr.bindAll {
			return "", fmt.Errorf("togapl: SELECT * emission without BindAll")
		}
		return fmt.Sprintf("%spublish('%s', seqElement(m, %d));\n",
			indent, tr.q.Out, tr.varIdx["*all"]), nil
	}
	args := make([]string, 0, len(tr.q.Emit)+1)
	args = append(args, "'"+tr.q.Out+"'")
	for _, spec := range tr.q.Emit {
		src, err := tr.expr(spec.From)
		if err != nil {
			return "", err
		}
		args = append(args, src)
	}
	return indent + "publish(" + strings.Join(args, ", ") + ");\n", nil
}

func (tr *translator) emit() (string, error) {
	q := tr.q
	var b strings.Builder
	fmt.Fprintf(&b, "# Compiled from Cayuga query %q (deterministic first-match semantics).\n", q.Name)
	fmt.Fprintf(&b, "subscribe ev to %s;\n", q.In)
	b.WriteString("map st;\nidentifier part;\nsequence m;\nint state;\n")
	b.WriteString("initialization { st = Map(sequence); }\n")
	b.WriteString("behavior {\n")
	if q.Partition != "" {
		fmt.Fprintf(&b, "\tpart = Identifier(ev.%s);\n", q.Partition)
	} else {
		b.WriteString("\tpart = Identifier('_global_');\n")
	}

	// Fresh machines start in state 0 with zeroed slots.
	zeros := make([]string, len(tr.order)+1)
	for i := range zeros {
		zeros[i] = "0"
	}
	fmt.Fprintf(&b, "\tif (!hasEntry(st, part))\n\t\tinsert(st, part, Sequence(%s));\n",
		strings.Join(zeros, ", "))
	b.WriteString("\tm = lookup(st, part);\n")
	b.WriteString("\tstate = seqElement(m, 0);\n")

	seed, err := tr.actions(q.States[0].Forward.Do, "\t\t")
	if err != nil {
		return "", err
	}
	reseed := strings.ReplaceAll(seed, "\t\t", "\t\t\t")

	accept := len(q.States)

	// State 0: unconditional seeding. A unary query (state 0 forwards
	// straight to accept) publishes immediately and stays in state 0.
	b.WriteString("\tif (state == 0) {\n")
	b.WriteString(seed)
	if q.States[0].Forward.Target >= accept {
		pub, err := tr.emitPublish("\t\t")
		if err != nil {
			return "", err
		}
		b.WriteString(pub)
	} else {
		b.WriteString("\t\tseqSet(m, 0, 1);\n")
	}
	b.WriteString("\t}\n")
	for i := 1; i < len(q.States); i++ {
		st := q.States[i]
		fmt.Fprintf(&b, "\telse if (state == %d) {\n", i)
		first := true
		branch := func(cond string) {
			if first {
				fmt.Fprintf(&b, "\t\tif (%s) {\n", cond)
				first = false
			} else {
				fmt.Fprintf(&b, "\t\telse if (%s) {\n", cond)
			}
		}
		if st.Loop != nil {
			cond := "true"
			if st.Loop.Pred != nil {
				cond, err = tr.expr(st.Loop.Pred)
				if err != nil {
					return "", err
				}
			}
			branch(cond)
			acts, err := tr.actions(st.Loop.Do, "\t\t\t")
			if err != nil {
				return "", err
			}
			b.WriteString(acts)
			b.WriteString("\t\t}\n")
		}
		if st.Forward != nil {
			cond := "true"
			if st.Forward.Pred != nil {
				cond, err = tr.expr(st.Forward.Pred)
				if err != nil {
					return "", err
				}
			}
			branch(cond)
			acts, err := tr.actions(st.Forward.Do, "\t\t\t")
			if err != nil {
				return "", err
			}
			b.WriteString(acts)
			if st.Forward.Target >= accept {
				pub, err := tr.emitPublish("\t\t\t")
				if err != nil {
					return "", err
				}
				b.WriteString(pub)
				// Restart from the current event.
				b.WriteString(reseed)
				b.WriteString("\t\t\tseqSet(m, 0, 1);\n")
			} else {
				fmt.Fprintf(&b, "\t\t\tseqSet(m, 0, %d);\n", st.Forward.Target)
			}
			b.WriteString("\t\t}\n")
		}
		// Dead transition: restart the machine from the current event.
		b.WriteString("\t\telse {\n")
		b.WriteString(reseed)
		b.WriteString("\t\t\tseqSet(m, 0, 1);\n\t\t}\n")
		b.WriteString("\t}\n")
	}
	b.WriteString("\tinsert(st, part, m);\n")
	b.WriteString("}\n")
	return b.String(), nil
}
