package gapl

import (
	"fmt"
	"strconv"
)

// Parse lexes and parses an automaton source into a Program.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseProgram()
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(line int, format string, args ...any) error {
	return fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...))
}

func (p *parser) acceptKeyword(word string) bool {
	t := p.peek()
	if t.Kind == TokKeyword && t.Text == word {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptPunct(s string) bool {
	t := p.peek()
	if t.Kind == TokPunct && t.Text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	t := p.peek()
	if t.Kind == TokPunct && t.Text == s {
		p.pos++
		return nil
	}
	return p.errf(t.Line, "expected %q, got %q", s, t.Text)
}

func (p *parser) expectKeyword(word string) error {
	t := p.peek()
	if t.Kind == TokKeyword && t.Text == word {
		p.pos++
		return nil
	}
	return p.errf(t.Line, "expected %q, got %q", word, t.Text)
}

func (p *parser) expectIdent() (Token, error) {
	t := p.peek()
	if t.Kind != TokIdent {
		return t, p.errf(t.Line, "expected an identifier, got %q", t.Text)
	}
	p.pos++
	return t, nil
}

func (p *parser) parseProgram() (*Program, error) {
	prog := &Program{}
	// Header section: subscriptions, associations, declarations in any
	// interleaving, then the clauses.
	for {
		t := p.peek()
		if t.Kind != TokKeyword {
			break
		}
		switch t.Text {
		case "subscribe":
			p.pos++
			v, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("to"); err != nil {
				return nil, err
			}
			topic, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
			prog.Subs = append(prog.Subs, SubDecl{Var: v.Text, Topic: topic.Text, Line: t.Line})
		case "associate":
			p.pos++
			v, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("with"); err != nil {
				return nil, err
			}
			tbl, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
			prog.Assocs = append(prog.Assocs, AssocDecl{Var: v.Text, Table: tbl.Text, Line: t.Line})
		default:
			if kind, ok := KindOfTypeWord(t.Text); ok {
				p.pos++
				for {
					name, err := p.expectIdent()
					if err != nil {
						return nil, err
					}
					prog.Decls = append(prog.Decls, VarDecl{Name: name.Text, Kind: kind, Line: name.Line})
					if p.acceptPunct(",") {
						continue
					}
					break
				}
				if err := p.expectPunct(";"); err != nil {
					return nil, err
				}
				continue
			}
			goto clauses
		}
	}

clauses:
	for {
		t := p.peek()
		switch {
		case t.Kind == TokKeyword && t.Text == "initialization":
			p.pos++
			if prog.Init != nil {
				return nil, p.errf(t.Line, "duplicate initialization clause")
			}
			b, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			prog.Init = b
		case t.Kind == TokKeyword && t.Text == "behavior":
			p.pos++
			if prog.Behav != nil {
				return nil, p.errf(t.Line, "duplicate behavior clause")
			}
			b, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			prog.Behav = b
		case t.Kind == TokKeyword && t.Text == "pattern":
			p.pos++
			if prog.Pattern != nil {
				return nil, p.errf(t.Line, "duplicate pattern clause")
			}
			pat, err := p.parsePatternClause(t.Line)
			if err != nil {
				return nil, err
			}
			prog.Pattern = pat
		case t.Kind == TokEOF:
			if prog.Behav == nil && prog.Pattern == nil {
				return nil, p.errf(t.Line, "automaton needs a behavior or pattern clause")
			}
			if prog.Behav != nil && prog.Pattern != nil {
				return nil, p.errf(t.Line, "automaton cannot have both a behavior and a pattern clause")
			}
			if len(prog.Subs) == 0 {
				return nil, p.errf(t.Line, "automaton must subscribe to at least one topic")
			}
			return prog, nil
		default:
			return nil, p.errf(t.Line, "expected initialization, behavior or pattern clause, got %q", t.Text)
		}
	}
}

// parsePatternClause parses the body of `pattern { ... }`:
//
//	match Term (then Term)* [within IntLit (SECS|MSECS)];
//	[where Expr;]
//	emit Expr (, Expr)* [into Topic];
//
// where Term is `[!] var [+]`.
func (p *parser) parsePatternClause(line int) (*PatternDecl, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	pat := &PatternDecl{Line: line}
	if err := p.expectKeyword("match"); err != nil {
		return nil, err
	}
	for {
		step := PatternStep{Line: p.peek().Line}
		if p.acceptPunct("!") {
			step.Negated = true
		}
		v, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		step.Var = v.Text
		if p.acceptPunct("+") {
			step.Kleene = true
		}
		pat.Steps = append(pat.Steps, step)
		if p.acceptKeyword("then") {
			continue
		}
		break
	}
	if p.acceptKeyword("within") {
		t := p.peek()
		if t.Kind != TokInt {
			return nil, p.errf(t.Line, "expected an integer after 'within', got %q", t.Text)
		}
		p.pos++
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf(t.Line, "bad integer literal %q", t.Text)
		}
		unit := p.peek()
		if unit.Kind != TokIdent || (unit.Text != "SECS" && unit.Text != "MSECS") {
			return nil, p.errf(unit.Line, "expected SECS or MSECS after the within bound, got %q", unit.Text)
		}
		p.pos++
		mul := int64(1e6) // MSECS
		if unit.Text == "SECS" {
			mul = 1e9
		}
		if n <= 0 || n > (1<<62)/mul {
			return nil, p.errf(t.Line, "within bound %d %s out of range", n, unit.Text)
		}
		pat.Within = n * mul
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if p.acceptKeyword("where") {
		x, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		pat.Where = x
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("emit"); err != nil {
		return nil, err
	}
	for {
		x, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		pat.Emit = append(pat.Emit, x)
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if p.acceptKeyword("into") {
		topic, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		pat.Into = topic.Text
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	return pat, nil
}

func (p *parser) parseBlock() (*Block, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	b := &Block{}
	for {
		t := p.peek()
		if t.Kind == TokPunct && t.Text == "}" {
			p.pos++
			return b, nil
		}
		if t.Kind == TokEOF {
			return nil, p.errf(t.Line, "unterminated block")
		}
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, st)
	}
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.peek()
	switch {
	case t.Kind == TokPunct && t.Text == "{":
		return p.parseBlock()
	case t.Kind == TokPunct && t.Text == ";":
		p.pos++
		return &Block{}, nil
	case t.Kind == TokKeyword && t.Text == "if":
		p.pos++
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Cond: cond, Then: then, Line: t.Line}
		if p.acceptKeyword("else") {
			els, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		return st, nil
	case t.Kind == TokKeyword && t.Text == "while":
		p.pos++
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Line: t.Line}, nil
	case t.Kind == TokIdent:
		// Assignment if followed by an assignment operator.
		if p.pos+1 < len(p.toks) {
			nxt := p.toks[p.pos+1]
			if nxt.Kind == TokPunct {
				switch nxt.Text {
				case "=", "+=", "-=", "*=", "/=", "%=":
					p.pos += 2
					x, err := p.parseExpr(0)
					if err != nil {
						return nil, err
					}
					if err := p.expectPunct(";"); err != nil {
						return nil, err
					}
					return &AssignStmt{Name: t.Text, Op: nxt.Text, X: x, Line: t.Line}, nil
				}
			}
		}
		fallthrough
	default:
		x, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &ExprStmt{X: x, Line: t.Line}, nil
	}
}

func binPrec(op string) int {
	switch op {
	case "||":
		return 1
	case "&&":
		return 2
	case "==", "!=":
		return 3
	case "<", "<=", ">", ">=":
		return 4
	case "+", "-":
		return 5
	case "*", "/", "%":
		return 6
	}
	return 0
}

func (p *parser) parseExpr(minPrec int) (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokPunct {
			return left, nil
		}
		prec := binPrec(t.Text)
		if prec == 0 || prec <= minPrec {
			return left, nil
		}
		p.pos++
		right, err := p.parseExpr(prec)
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: t.Text, L: left, R: right, Line: t.Line}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.peek()
	if t.Kind == TokPunct && (t.Text == "-" || t.Text == "!") {
		p.pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: t.Text, X: x, Line: t.Line}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.acceptPunct(".") {
		// Attribute names may collide with type keywords (e.g. the tstamp
		// pseudo-attribute of Fig. 8), so accept keywords here too.
		field := p.peek()
		if field.Kind != TokIdent && field.Kind != TokKeyword {
			return nil, p.errf(field.Line, "expected an attribute name, got %q", field.Text)
		}
		p.pos++
		v, ok := x.(*VarRef)
		if !ok {
			return nil, p.errf(field.Line, "attribute access requires a subscription variable on the left of '.'")
		}
		x = &FieldRef{Var: v.Name, Field: field.Text, Line: field.Line}
	}
	return x, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokInt:
		p.pos++
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf(t.Line, "bad integer literal %q", t.Text)
		}
		return &IntLit{V: n, Line: t.Line}, nil
	case TokReal:
		p.pos++
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errf(t.Line, "bad real literal %q", t.Text)
		}
		return &RealLit{V: f, Line: t.Line}, nil
	case TokString:
		p.pos++
		return &StrLit{V: t.Text, Line: t.Line}, nil
	case TokKeyword:
		switch t.Text {
		case "true":
			p.pos++
			return &BoolLit{V: true, Line: t.Line}, nil
		case "false":
			p.pos++
			return &BoolLit{V: false, Line: t.Line}, nil
		case "int", "string":
			// int(x) and string-typed conversion calls share their name
			// with type keywords.
			if p.pos+1 < len(p.toks) && p.toks[p.pos+1].Kind == TokPunct && p.toks[p.pos+1].Text == "(" {
				p.pos++
				return p.parseCall(t)
			}
		}
		return nil, p.errf(t.Line, "unexpected keyword %q in expression", t.Text)
	case TokIdent:
		p.pos++
		if p.peek().Kind == TokPunct && p.peek().Text == "(" {
			return p.parseCall(t)
		}
		return &VarRef{Name: t.Text, Line: t.Line}, nil
	case TokPunct:
		if t.Text == "(" {
			p.pos++
			x, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return x, nil
		}
	}
	return nil, p.errf(t.Line, "unexpected token %q in expression", t.Text)
}

func (p *parser) parseCall(name Token) (Expr, error) {
	// consume '('
	p.pos++
	call := &CallExpr{Name: name.Text, Line: name.Line}
	if p.acceptPunct(")") {
		return call, nil
	}
	for {
		arg, err := p.parseCallArg(name.Text)
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, arg)
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return call, nil
}

// parseCallArg allows type keywords (Map(int), Window(sequence, ...)) and
// window-mode words (SECS/ROWS/MSECS) as constructor arguments.
func (p *parser) parseCallArg(fn string) (Expr, error) {
	t := p.peek()
	if t.Kind == TokKeyword {
		if kind, ok := KindOfTypeWord(t.Text); ok && (fn == "Map" || fn == "Window") {
			p.pos++
			return &TypeArg{Kind: kind, Line: t.Line}, nil
		}
	}
	if t.Kind == TokIdent && fn == "Window" {
		switch t.Text {
		case "SECS", "ROWS", "MSECS":
			p.pos++
			return &ModeArg{Mode: t.Text, Line: t.Line}, nil
		}
	}
	return p.parseExpr(0)
}
