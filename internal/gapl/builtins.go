package gapl

import "unicache/internal/types"

// BuiltinID identifies a built-in function; ids index the VM's dispatch
// table (§6.1 of the paper characterises their costs).
type BuiltinID int

// The built-in functions and constructors of the language.
const (
	BSequence   BuiltinID = iota // Sequence(v...) -> sequence
	BMap                         // Map(type) -> map
	BWindow                      // Window(type, SECS|ROWS|MSECS, n) -> window
	BIdentifier                  // Identifier(v...) -> identifier
	BIterator                    // Iterator(map|window|sequence) -> iterator
	BString                      // String(v...) -> string (concatenation)

	BLookup   // lookup(map|assoc, id) -> value / row sequence
	BInsert   // insert(map|assoc, id, v)
	BHasEntry // hasEntry(map|assoc, id) -> bool
	BRemove   // remove(map|assoc, id)
	BMapSize  // mapSize(map|assoc) -> int

	BHasNext // hasNext(iterator) -> bool
	BNext    // next(iterator) -> value

	BSeqElement // seqElement(seq, i) -> value (0-based)
	BSeqSize    // seqSize(seq) -> int
	BSeqSet     // seqSet(seq, i, v) — replace element i

	BAppend  // append(window|sequence, v)
	BWinSize // winSize(window) -> int
	BDelete  // delete(aggregate) — advise storage release (clears it)

	BWinSum    // winSum(window) -> int|real (0 over an empty window)
	BWinAvg    // winAvg(window) -> real (error over an empty window)
	BWinMin    // winMin(window) -> value (error over an empty window)
	BWinMax    // winMax(window) -> value (error over an empty window)
	BWinStddev // winStddev(window) -> real population std dev (error over an empty window)
	BWinMedian // winMedian(window) -> real (error over an empty window)

	// Run-aware builtins: these observe the current activation's run (the
	// batch of events handed to one behaviour execution). Behaviours that
	// use them — and never observe an individual event — are classified
	// batchable and activated once per delivered run instead of once per
	// event.
	BAppendRun // appendRun(window, sub.attr | sub) — compiled to OpAppendRun
	BRunSize   // runSize() -> int (events in the current run; 1 per-event)

	BCurrentTopic // currentTopic() -> string
	BSend         // send(v...) — RPC to the registering application
	BPublish      // publish('Topic', v...) — insert into another stream

	BTstampNow  // tstampNow() -> tstamp
	BTstampDiff // tstampDiff(a, b) -> int (ns)
	BHourInDay  // hourInDay(tstamp) -> int
	BDayInWeek  // dayInWeek(tstamp) -> int

	BFloat // float(x) -> real
	BInt   // int(x) -> int (truncates)
	BPrint // print(v...)

	BAbs  // abs(x)
	BMin2 // min(a, b)
	BMax2 // max(a, b)
	BSqrt // sqrt(x) -> real
	BPow  // pow(a, b) -> real

	BFrequent // frequent(map, id, k) — built-in Misra-Gries step (§6.4)
	BLsf      // lsf(window) -> sequence(slope, intercept) least-squares fit

	NumBuiltins // sentinel
)

// BuiltinSig describes a built-in for the static checker.
type BuiltinSig struct {
	ID      BuiltinID
	Name    string
	MinArgs int
	MaxArgs int // -1 = variadic
	Result  types.Kind
}

// Builtins maps source names to signatures. Result KindNil means the result
// kind is dynamic (e.g. lookup) or the builtin is void.
var Builtins = map[string]BuiltinSig{
	"Sequence":   {BSequence, "Sequence", 0, -1, types.KindSequence},
	"Map":        {BMap, "Map", 1, 1, types.KindMap},
	"Window":     {BWindow, "Window", 3, 3, types.KindWindow},
	"Identifier": {BIdentifier, "Identifier", 1, -1, types.KindIdentifier},
	"Iterator":   {BIterator, "Iterator", 1, 1, types.KindIterator},
	"String":     {BString, "String", 0, -1, types.KindString},

	"lookup":   {BLookup, "lookup", 2, 2, types.KindNil},
	"insert":   {BInsert, "insert", 3, 3, types.KindNil},
	"hasEntry": {BHasEntry, "hasEntry", 2, 2, types.KindBool},
	"remove":   {BRemove, "remove", 2, 2, types.KindNil},
	"mapSize":  {BMapSize, "mapSize", 1, 1, types.KindInt},

	"hasNext": {BHasNext, "hasNext", 1, 1, types.KindBool},
	"next":    {BNext, "next", 1, 1, types.KindNil},

	"seqElement": {BSeqElement, "seqElement", 2, 2, types.KindNil},
	"seqSize":    {BSeqSize, "seqSize", 1, 1, types.KindInt},
	"seqSet":     {BSeqSet, "seqSet", 3, 3, types.KindNil},

	"append":  {BAppend, "append", 2, 2, types.KindNil},
	"winSize": {BWinSize, "winSize", 1, 1, types.KindInt},
	"delete":  {BDelete, "delete", 1, 1, types.KindNil},

	"winSum":    {BWinSum, "winSum", 1, 1, types.KindNil},
	"winAvg":    {BWinAvg, "winAvg", 1, 1, types.KindReal},
	"winMin":    {BWinMin, "winMin", 1, 1, types.KindNil},
	"winMax":    {BWinMax, "winMax", 1, 1, types.KindNil},
	"winStddev": {BWinStddev, "winStddev", 1, 1, types.KindReal},
	"winMedian": {BWinMedian, "winMedian", 1, 1, types.KindReal},

	"appendRun": {BAppendRun, "appendRun", 2, 2, types.KindNil},
	"runSize":   {BRunSize, "runSize", 0, 0, types.KindInt},

	"currentTopic": {BCurrentTopic, "currentTopic", 0, 0, types.KindString},
	"send":         {BSend, "send", 1, -1, types.KindNil},
	"publish":      {BPublish, "publish", 1, -1, types.KindNil},

	"tstampNow":  {BTstampNow, "tstampNow", 0, 0, types.KindTstamp},
	"tstampDiff": {BTstampDiff, "tstampDiff", 2, 2, types.KindInt},
	"hourInDay":  {BHourInDay, "hourInDay", 1, 1, types.KindInt},
	"dayInWeek":  {BDayInWeek, "dayInWeek", 1, 1, types.KindInt},

	"float": {BFloat, "float", 1, 1, types.KindReal},
	"int":   {BInt, "int", 1, 1, types.KindInt},
	"print": {BPrint, "print", 0, -1, types.KindNil},

	"abs":  {BAbs, "abs", 1, 1, types.KindNil},
	"min":  {BMin2, "min", 2, 2, types.KindNil},
	"max":  {BMax2, "max", 2, 2, types.KindNil},
	"sqrt": {BSqrt, "sqrt", 1, 1, types.KindReal},
	"pow":  {BPow, "pow", 2, 2, types.KindReal},

	"frequent": {BFrequent, "frequent", 3, 3, types.KindNil},
	"lsf":      {BLsf, "lsf", 1, 1, types.KindSequence},
}
