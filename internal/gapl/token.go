// Package gapl implements the Glasgow Automaton Programming Language: the
// imperative, C-like language in which cache users write automata (§4 of
// the paper). The package contains the lexer, parser, static checker and
// the compiler that lowers automata to bytecode for the stack machine in
// package vm.
//
// An automaton has the general form (§4.2):
//
//	subscribe f to Flows;
//	associate a with Allowances;
//	int n, limit;
//	identifier ip;
//	initialization { ... }
//	behavior { ... }
package gapl

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies lexical tokens.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokKeyword
	TokInt
	TokReal
	TokString
	TokPunct
)

// Token is one lexical token with its source line for error reporting.
type Token struct {
	Kind TokKind
	Text string
	Line int
}

var keywords = map[string]bool{
	"subscribe": true, "to": true, "associate": true, "with": true,
	"initialization": true, "behavior": true,
	"pattern": true, "match": true, "then": true, "within": true,
	"where": true, "emit": true, "into": true,
	"if": true, "else": true, "while": true,
	"true": true, "false": true,
	"int": true, "real": true, "bool": true, "string": true, "tstamp": true,
	"sequence": true, "map": true, "window": true, "identifier": true,
	"iterator": true,
}

// IsTypeKeyword reports whether word names a GAPL data type.
func IsTypeKeyword(word string) bool {
	switch word {
	case "int", "real", "bool", "string", "tstamp",
		"sequence", "map", "window", "identifier", "iterator":
		return true
	}
	return false
}

// Lex tokenizes GAPL source. Comments run from '#' or "//" to end of line.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(src[i])) {
				i++
			}
			word := src[start:i]
			kind := TokIdent
			if keywords[word] {
				kind = TokKeyword
			}
			toks = append(toks, Token{Kind: kind, Text: word, Line: line})
		case c >= '0' && c <= '9':
			start := i
			isReal := false
			for i < n {
				ch := src[i]
				if ch >= '0' && ch <= '9' {
					i++
					continue
				}
				if ch == '.' && !isReal {
					isReal = true
					i++
					continue
				}
				break
			}
			kind := TokInt
			if isReal {
				kind = TokReal
			}
			toks = append(toks, Token{Kind: kind, Text: src[start:i], Line: line})
		case c == '\'' || c == '"':
			quote := c
			i++
			var b strings.Builder
			closed := false
			for i < n {
				ch := src[i]
				if ch == '\\' && i+1 < n {
					i++
					switch src[i] {
					case 'n':
						b.WriteByte('\n')
					case 't':
						b.WriteByte('\t')
					case '\\':
						b.WriteByte('\\')
					case '\'':
						b.WriteByte('\'')
					case '"':
						b.WriteByte('"')
					default:
						return nil, fmt.Errorf("line %d: unknown escape \\%c", line, src[i])
					}
					i++
					continue
				}
				if ch == quote {
					i++
					closed = true
					break
				}
				if ch == '\n' {
					return nil, fmt.Errorf("line %d: newline in string literal", line)
				}
				b.WriteByte(ch)
				i++
			}
			if !closed {
				return nil, fmt.Errorf("line %d: unterminated string literal", line)
			}
			toks = append(toks, Token{Kind: TokString, Text: b.String(), Line: line})
		default:
			matched := false
			for _, op := range []string{"==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "%="} {
				if strings.HasPrefix(src[i:], op) {
					toks = append(toks, Token{Kind: TokPunct, Text: op, Line: line})
					i += len(op)
					matched = true
					break
				}
			}
			if matched {
				continue
			}
			switch c {
			case ';', ',', '(', ')', '{', '}', '.', '=', '<', '>', '+', '-', '*', '/', '%', '!':
				toks = append(toks, Token{Kind: TokPunct, Text: string(c), Line: line})
				i++
			default:
				return nil, fmt.Errorf("line %d: unexpected character %q", line, c)
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Line: line})
	return toks, nil
}

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
