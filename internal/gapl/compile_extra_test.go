package gapl

import (
	"strings"
	"testing"

	"unicache/internal/types"
)

func TestNestedControlFlowCompiles(t *testing.T) {
	src := `
subscribe t to Timer;
int i, j, acc;
behavior {
	i = 0;
	while (i < 3) {
		j = 0;
		while (j < 3) {
			if (i == j)
				acc += 1;
			else if (i > j) {
				acc += 10;
			} else {
				acc += 100;
				if (acc > 1000)
					acc = 1000;
			}
			j += 1;
		}
		i += 1;
	}
}
`
	c, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	// All jump targets must land inside the code.
	for i, ins := range c.Behavior {
		switch ins.Op {
		case OpJmp, OpJz, OpJzPeek, OpJnzPeek:
			if ins.A < 0 || int(ins.A) > len(c.Behavior) {
				t.Errorf("instr %d: jump target %d out of range", i, ins.A)
			}
		}
	}
}

func TestEmptyStatementAndBlocks(t *testing.T) {
	src := `
subscribe t to Timer;
behavior {
	;
	{ }
	{ ; ; }
	if (true) ; else ;
}
`
	if _, err := Compile(src); err != nil {
		t.Fatalf("empty statements should compile: %v", err)
	}
}

func TestDanglingElseBindsToNearestIf(t *testing.T) {
	prog, err := Parse(`
subscribe t to Timer;
int x;
behavior {
	if (true)
		if (false)
			x = 1;
		else
			x = 2;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	outer := prog.Behav.Stmts[0].(*IfStmt)
	if outer.Else != nil {
		t.Error("dangling else attached to outer if")
	}
	inner, ok := outer.Then.(*IfStmt)
	if !ok || inner.Else == nil {
		t.Error("dangling else should attach to the inner if")
	}
}

func TestAllBinaryOperatorPrecedences(t *testing.T) {
	// (1+2*3 < 10-2) && (4/2 == 2 || false) ==> true && true
	src := `
subscribe t to Timer;
bool r;
behavior { r = 1 + 2 * 3 < 10 - 2 && (4 / 2 == 2 || false); }
`
	if _, err := Compile(src); err != nil {
		t.Fatalf("operator soup should compile: %v", err)
	}
}

func TestWindowConstructorVariants(t *testing.T) {
	for _, src := range []string{
		`subscribe t to Timer; window w; behavior { w = Window(int, ROWS, 5); }`,
		`subscribe t to Timer; window w; behavior { w = Window(sequence, SECS, 60); }`,
		`subscribe t to Timer; window w; behavior { w = Window(real, MSECS, 250); }`,
		`subscribe t to Timer; window w; int n; behavior { n = 3; w = Window(int, ROWS, n * 2); }`,
	} {
		if _, err := Compile(src); err != nil {
			t.Errorf("%q: %v", src, err)
		}
	}
}

func TestMapConstructorAllTypes(t *testing.T) {
	for _, ty := range []string{"int", "real", "bool", "string", "tstamp",
		"sequence", "map", "window", "identifier"} {
		src := `subscribe t to Timer; map m; behavior { m = Map(` + ty + `); }`
		if _, err := Compile(src); err != nil {
			t.Errorf("Map(%s): %v", ty, err)
		}
	}
}

func TestCommentStylesAndWhitespace(t *testing.T) {
	src := "subscribe t to Timer;\r\n# hash comment\n// slash comment\nbehavior { print('x'); } # trailing"
	if _, err := Compile(src); err != nil {
		t.Fatalf("comments should lex: %v", err)
	}
}

func TestBindPreservesInitFieldRefs(t *testing.T) {
	// Field references inside initialization are bound too (they error at
	// run time if no event arrived, but must resolve).
	c, err := Compile(`
subscribe f to Flows;
int n;
initialization { n = 0; }
behavior { n = f.nbytes; }
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Bind(testSchemas(t)); err != nil {
		t.Fatal(err)
	}
}

func TestCompiledSourceRetained(t *testing.T) {
	src := minimalAutomaton
	c, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Source != src {
		t.Error("compiled unit should retain its source for management tools")
	}
}

func TestSlotSpecKinds(t *testing.T) {
	c, err := Compile(`
subscribe f to Flows;
associate a with P;
window w;
tstamp ts;
behavior { print('x'); }
`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]types.Kind{}
	roles := map[string]SlotKind{}
	for _, s := range c.Slots {
		kinds[s.Name] = s.Kind
		roles[s.Name] = s.Role
	}
	if roles["f"] != SlotSub || kinds["f"] != types.KindEvent {
		t.Error("subscription slot wrong")
	}
	if roles["a"] != SlotAssoc || kinds["a"] != types.KindAssoc {
		t.Error("association slot wrong")
	}
	if roles["w"] != SlotVar || kinds["w"] != types.KindWindow {
		t.Error("window slot wrong")
	}
	if kinds["ts"] != types.KindTstamp {
		t.Error("tstamp slot wrong")
	}
}

func TestErrorMessagesCarryLineNumbers(t *testing.T) {
	_, err := Compile("subscribe t to Timer;\nint x;\nbehavior {\n\tx = 'nope';\n}\n")
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Errorf("error should carry line 4: %v", err)
	}
}
