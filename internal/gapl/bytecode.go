package gapl

import (
	"fmt"

	"unicache/internal/types"
)

// CompileMode selects how the VM executes a bound program's clauses.
type CompileMode uint8

const (
	// ModeAuto (the default) lowers each clause to chained Go closures —
	// one per instruction, operands pre-decoded at compile time — and
	// threads execution through them, falling back to the bytecode switch
	// interpreter for any clause the closure compiler declines. Outputs are
	// bit-identical to ModeVM; only dispatch cost differs.
	ModeAuto CompileMode = iota
	// ModeVM forces the bytecode switch interpreter. It exists as the
	// reference semantics for differential tests and as an escape hatch.
	ModeVM
)

// String names the mode for flags and logs.
func (m CompileMode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeVM:
		return "vm"
	}
	return "unknown"
}

// Op is a stack-machine opcode.
type Op uint8

// The instruction set of the automaton stack machine (§5).
const (
	OpNop   Op = iota
	OpConst    // push Consts[A]
	OpLoad     // push slot A
	OpStore    // slot A = pop (converted to the slot's declared kind)
	OpField    // push attribute B of the event in subscription slot A
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpNeg
	OpNot
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpJmp     // jump to A
	OpJz      // pop; jump to A if false
	OpJzPeek  // jump to A if peek is false (for &&)
	OpJnzPeek // jump to A if peek is true (for ||)
	OpPop
	OpCall // call builtin A with B args
	OpHalt
	// OpAppendRun pops a window and appends one value per event of the
	// current activation's run whose topic matches subscription slot A:
	// attribute B of each event (-1 = the tstamp pseudo-attribute, -2 = the
	// whole event as a sequence), stamped with the event's commit timestamp,
	// with constraint eviction run once for the whole run. It pushes nil
	// (appendRun is a statement). Before Bind, B indexes FieldNames.
	OpAppendRun
)

var opNames = [...]string{
	OpNop: "nop", OpConst: "const", OpLoad: "load", OpStore: "store",
	OpField: "field", OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div",
	OpMod: "mod", OpNeg: "neg", OpNot: "not", OpEq: "eq", OpNe: "ne",
	OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge", OpJmp: "jmp", OpJz: "jz",
	OpJzPeek: "jzpeek", OpJnzPeek: "jnzpeek", OpPop: "pop", OpCall: "call",
	OpHalt: "halt", OpAppendRun: "appendrun",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Instr is one instruction. A and B are opcode-specific operands; Line maps
// back to source for runtime error reports.
type Instr struct {
	Op   Op
	A, B int32
	Line int32
}

// SlotKind describes what lives in a VM slot.
type SlotKind uint8

// Slot roles.
const (
	SlotVar   SlotKind = iota // declared local variable
	SlotSub                   // subscription variable (holds the last event)
	SlotAssoc                 // association variable (holds an Assoc handle)
)

// SlotSpec describes one VM slot.
type SlotSpec struct {
	Name string
	Role SlotKind
	Kind types.Kind // declared kind for SlotVar; KindEvent/KindAssoc otherwise
	// Topic is the subscribed topic for SlotSub; Table the associated
	// persistent table for SlotAssoc.
	Topic string
	Table string
}

// Compiled is an automaton lowered to bytecode, ready to Bind against the
// cache's schemas and then execute on the VM.
type Compiled struct {
	Source     string
	Slots      []SlotSpec
	Consts     []types.Value
	FieldNames []string // attribute-name pool for pre-bind OpField operands
	Init       []Instr
	Behavior   []Instr
	// BatchableBehavior reports the compiler's activation classification:
	// true when the behavior clause is run-aware (calls appendRun or
	// runSize) AND never observes an individual event (no attribute read,
	// no use of a subscription variable as a value, no currentTopic()).
	// Batchable behaviours execute ONCE per delivered run of events;
	// everything else keeps the per-event activation of the paper, with
	// output bit-identical to tuple-at-a-time delivery.
	BatchableBehavior bool
	// Pattern is the CEP pattern clause for declarative pattern automata.
	// When set, Init/Behavior are empty and the program is executed by the
	// NFA machine in internal/cep instead of the VM; Slots still carries
	// the subscription (and association) declarations.
	Pattern *PatternDecl

	bound bool
}

// Subscriptions returns the topic of every subscription slot, in
// declaration order, with the owning slot index.
func (c *Compiled) Subscriptions() []SlotSpec {
	var out []SlotSpec
	for _, s := range c.Slots {
		if s.Role == SlotSub {
			out = append(out, s)
		}
	}
	return out
}

// Associations returns every association slot in declaration order.
func (c *Compiled) Associations() []SlotSpec {
	var out []SlotSpec
	for _, s := range c.Slots {
		if s.Role == SlotAssoc {
			out = append(out, s)
		}
	}
	return out
}

// Bound reports whether Bind has completed successfully.
func (c *Compiled) Bound() bool { return c.bound }

// Bind resolves event attribute references against the topics' schemas,
// rewriting OpField operands from field-name-pool indices to column
// indices (-1 = the tstamp pseudo-attribute). It must be called once,
// before execution; unknown topics or attributes are reported as
// registration errors, exactly as the paper's cache reports compilation
// problems back to the registering application.
func (c *Compiled) Bind(schemas map[string]*types.Schema) error {
	if c.bound {
		return fmt.Errorf("automaton already bound")
	}
	for _, s := range c.Slots {
		if s.Role == SlotSub {
			if _, ok := schemas[s.Topic]; !ok {
				return fmt.Errorf("subscription %s: no such topic %q", s.Name, s.Topic)
			}
		}
	}
	rewrite := func(code []Instr) error {
		for i := range code {
			ins := &code[i]
			if ins.Op != OpField && ins.Op != OpAppendRun {
				continue
			}
			if ins.Op == OpAppendRun && ins.B == -2 {
				continue // whole-event form; nothing to resolve
			}
			slot := c.Slots[ins.A]
			schema := schemas[slot.Topic]
			name := c.FieldNames[ins.B]
			col := schema.ColIndex(name)
			if col < 0 {
				if eqFold(name, "tstamp") {
					ins.B = -1
					continue
				}
				return fmt.Errorf("line %d: topic %s has no attribute %q",
					ins.Line, slot.Topic, name)
			}
			ins.B = int32(col)
		}
		return nil
	}
	if err := rewrite(c.Init); err != nil {
		return err
	}
	if err := rewrite(c.Behavior); err != nil {
		return err
	}
	c.bound = true
	return nil
}

func eqFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}
