package gapl

import (
	"strings"
	"testing"

	"unicache/internal/types"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`subscribe f to Flows; # comment
		int n; // also comment
		n = 1 + 2.5 * 'str';`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
	}
	// Spot checks.
	if toks[0].Kind != TokKeyword || toks[0].Text != "subscribe" {
		t.Errorf("tok0 = %+v", toks[0])
	}
	if toks[1].Kind != TokIdent || toks[1].Text != "f" {
		t.Errorf("tok1 = %+v", toks[1])
	}
	if toks[len(toks)-1].Kind != TokEOF {
		t.Error("missing EOF token")
	}
	found := false
	for _, tok := range toks {
		if tok.Kind == TokReal && tok.Text == "2.5" {
			found = true
		}
	}
	if !found {
		t.Errorf("real literal not lexed: %v", kinds)
	}
}

func TestLexTrailingDotReal(t *testing.T) {
	// Fig. 8 of the paper writes `min = 1000.;`
	toks, err := Lex(`min = 1000.;`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Kind != TokReal || toks[2].Text != "1000." {
		t.Errorf("trailing-dot real = %+v", toks[2])
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := Lex(`s = 'a\n\t\'b';`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Text != "a\n\t'b" {
		t.Errorf("escaped string = %q", toks[2].Text)
	}
	if _, err := Lex(`s = 'unterminated`); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, err := Lex(`s = 'bad\q';`); err == nil {
		t.Error("unknown escape should fail")
	}
	if _, err := Lex("s = 'new\nline';"); err == nil {
		t.Error("newline in string should fail")
	}
	if _, err := Lex("@"); err == nil {
		t.Error("stray character should fail")
	}
}

func TestLexLineNumbers(t *testing.T) {
	toks, err := Lex("a\nb\nc")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[1].Line != 2 || toks[2].Line != 3 {
		t.Errorf("line numbers: %+v", toks[:3])
	}
}

const minimalAutomaton = `
subscribe t to Timer;
behavior { print('tick'); }
`

func TestParseMinimal(t *testing.T) {
	prog, err := Parse(minimalAutomaton)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Subs) != 1 || prog.Subs[0].Topic != "Timer" {
		t.Errorf("subs = %+v", prog.Subs)
	}
	if prog.Init != nil {
		t.Error("no init expected")
	}
	if prog.Behav == nil || len(prog.Behav.Stmts) != 1 {
		t.Error("behavior missing")
	}
}

func TestParseFullHeader(t *testing.T) {
	prog, err := Parse(`
subscribe f to Flows;
subscribe x to Timer;
associate a with Allowances;
int n, limit;
identifier ip;
window w;
initialization { n = 0; }
behavior { n += 1; }
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Subs) != 2 || len(prog.Assocs) != 1 {
		t.Errorf("header: %d subs %d assocs", len(prog.Subs), len(prog.Assocs))
	}
	if len(prog.Decls) != 4 {
		t.Errorf("decls = %+v", prog.Decls)
	}
	if prog.Decls[0].Kind != types.KindInt || prog.Decls[3].Kind != types.KindWindow {
		t.Error("decl kinds wrong")
	}
	if prog.Init == nil {
		t.Error("init missing")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"no behavior", `subscribe t to Timer;`, "behavior"},
		{"no subscription", `behavior { print('x'); }`, "subscribe"},
		{"bad subscribe", `subscribe to Timer; behavior {}`, "identifier"},
		{"missing to", `subscribe t Timer; behavior {}`, `"to"`},
		{"missing semicolon", `subscribe t to Timer behavior {}`, `";"`},
		{"dup behavior", minimalAutomaton + `behavior { print('x'); }`, "duplicate"},
		{"dup init", `subscribe t to Timer; initialization {} initialization {} behavior {}`, "duplicate"},
		{"unterminated block", `subscribe t to Timer; behavior { print('x');`, "unterminated"},
		{"garbage clause", `subscribe t to Timer; wibble {}`, "clause"},
		{"bad expr", `subscribe t to Timer; behavior { x = ; }`, "unexpected"},
		{"missing paren", `subscribe t to Timer; behavior { if (true print('x'); }`, `")"`},
		{"field on literal", `subscribe t to Timer; behavior { x = 3.a; }`, ""},
		{"keyword in expr", `subscribe t to Timer; behavior { x = while; }`, "keyword"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse(tt.src)
			if err == nil {
				t.Fatalf("expected error for %q", tt.src)
			}
			if tt.want != "" && !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

func TestParsePrecedence(t *testing.T) {
	prog, err := Parse(`
subscribe t to Timer;
int x;
behavior { x = 1 + 2 * 3; }
`)
	if err != nil {
		t.Fatal(err)
	}
	assign := prog.Behav.Stmts[0].(*AssignStmt)
	add, ok := assign.X.(*BinaryExpr)
	if !ok || add.Op != "+" {
		t.Fatalf("top op = %+v", assign.X)
	}
	mul, ok := add.R.(*BinaryExpr)
	if !ok || mul.Op != "*" {
		t.Fatalf("rhs = %+v", add.R)
	}
}

func TestCompileMinimal(t *testing.T) {
	c, err := Compile(minimalAutomaton)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Slots) != 1 || c.Slots[0].Role != SlotSub {
		t.Errorf("slots = %+v", c.Slots)
	}
	if c.Init != nil {
		t.Error("no init code expected")
	}
	if len(c.Behavior) == 0 || c.Behavior[len(c.Behavior)-1].Op != OpHalt {
		t.Error("behavior must end with halt")
	}
	if c.Bound() {
		t.Error("fresh compile must not be bound")
	}
}

func TestCompileStaticErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"undeclared var", `subscribe t to Timer; behavior { x = 1; }`, "undeclared"},
		{"undeclared in expr", `subscribe t to Timer; int x; behavior { x = y; }`, "undeclared"},
		{"assign to subscription", `subscribe t to Timer; behavior { t = 1; }`, "subscription"},
		{"assign to assoc", `subscribe t to Timer; associate a with T; behavior { a = 1; }`, "association"},
		{"dup variable", `subscribe t to Timer; int x; real x; behavior {}`, "twice"},
		{"dup sub/var", `subscribe t to Timer; int t; behavior {}`, "twice"},
		{"kind mismatch", `subscribe t to Timer; int x; behavior { x = 'str'; }`, "cannot assign"},
		{"real to int", `subscribe t to Timer; int x; behavior { x = 1.5; }`, "cannot assign"},
		{"bad condition", `subscribe t to Timer; behavior { if (1) print('x'); }`, "bool"},
		{"bad while cond", `subscribe t to Timer; behavior { while ('s') print('x'); }`, "bool"},
		{"unknown function", `subscribe t to Timer; behavior { wibble(); }`, "unknown function"},
		{"too few args", `subscribe t to Timer; behavior { tstampDiff(1); }`, "at least"},
		{"too many args", `subscribe t to Timer; behavior { mapSize(1, 2); }`, "at most"},
		{"map needs type", `subscribe t to Timer; map m; behavior { m = Map(3); }`, "type name"},
		{"window needs mode", `subscribe t to Timer; window w; behavior { w = Window(int, 5, 5); }`, "SECS"},
		{"stray type arg", `subscribe t to Timer; behavior { print(int); }`, "keyword"},
		{"arith on strings", `subscribe t to Timer; int x; behavior { x = 'a' - 'b'; }`, "numeric"},
		{"mod on real", `subscribe t to Timer; int x; behavior { x = 1.5 % 2; }`, "int operands"},
		{"logic on ints", `subscribe t to Timer; behavior { if (1 && true) print('x'); }`, "bool"},
		{"not on int", `subscribe t to Timer; behavior { if (!1) print('x'); }`, "bool"},
		{"neg on string", `subscribe t to Timer; int x; behavior { x = -'a'; }`, "numeric"},
		{"field on non-sub", `subscribe t to Timer; int x; behavior { x = x.foo; }`, "subscription"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Compile(tt.src)
			if err == nil {
				t.Fatalf("expected compile error")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

func TestCompileAllowedConversions(t *testing.T) {
	// int -> real widening, tstamp <-> int, identifier <-> string.
	src := `
subscribe t to Timer;
real r;
tstamp ts;
int n;
string s;
identifier id;
behavior {
	r = 1;
	ts = 5;
	n = ts;
	id = Identifier('x');
	s = id;
	r += n;
}
`
	if _, err := Compile(src); err != nil {
		t.Fatalf("legal conversions rejected: %v", err)
	}
}

func testSchemas(t *testing.T) map[string]*types.Schema {
	t.Helper()
	flows, err := types.NewSchema("Flows", false, -1,
		types.Column{Name: "srcip", Type: types.ColVarchar},
		types.Column{Name: "nbytes", Type: types.ColInt},
	)
	if err != nil {
		t.Fatal(err)
	}
	timer, err := types.NewSchema("Timer", false, -1,
		types.Column{Name: "ts", Type: types.ColTstamp},
	)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*types.Schema{"Flows": flows, "Timer": timer}
}

func TestBindResolvesFields(t *testing.T) {
	c, err := Compile(`
subscribe f to Flows;
int n;
tstamp ts;
behavior {
	n = f.nbytes;
	ts = f.tstamp;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Bind(testSchemas(t)); err != nil {
		t.Fatal(err)
	}
	if !c.Bound() {
		t.Error("Bound() should be true")
	}
	// Find the two OpField instructions: nbytes -> col 1, tstamp -> -1.
	var fields []int32
	for _, ins := range c.Behavior {
		if ins.Op == OpField {
			fields = append(fields, ins.B)
		}
	}
	if len(fields) != 2 || fields[0] != 1 || fields[1] != -1 {
		t.Errorf("bound field operands = %v, want [1 -1]", fields)
	}
	// Double bind rejected.
	if err := c.Bind(testSchemas(t)); err == nil {
		t.Error("second Bind should error")
	}
}

func TestBindErrors(t *testing.T) {
	c, err := Compile(`subscribe f to NoSuchTopic; behavior { print('x'); }`)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Bind(testSchemas(t)); err == nil || !strings.Contains(err.Error(), "NoSuchTopic") {
		t.Errorf("unknown topic: %v", err)
	}

	c, err = Compile(`subscribe f to Flows; int n; behavior { n = f.nosuch; }`)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Bind(testSchemas(t)); err == nil || !strings.Contains(err.Error(), "nosuch") {
		t.Errorf("unknown attribute: %v", err)
	}
}

func TestSubscriptionsAndAssociationsAccessors(t *testing.T) {
	c, err := Compile(`
subscribe f to Flows;
subscribe t to Timer;
associate a with Allowances;
behavior { print('x'); }
`)
	if err != nil {
		t.Fatal(err)
	}
	subs := c.Subscriptions()
	if len(subs) != 2 || subs[0].Topic != "Flows" || subs[1].Topic != "Timer" {
		t.Errorf("subscriptions = %+v", subs)
	}
	assocs := c.Associations()
	if len(assocs) != 1 || assocs[0].Table != "Allowances" {
		t.Errorf("associations = %+v", assocs)
	}
}

func TestConstPoolDeduplicates(t *testing.T) {
	c, err := Compile(`
subscribe t to Timer;
int a, b, c;
behavior { a = 7; b = 7; c = 7; }
`)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, v := range c.Consts {
		if n, ok := v.AsInt(); ok && n == 7 {
			count++
		}
	}
	if count != 1 {
		t.Errorf("constant 7 appears %d times in pool", count)
	}
}

func TestPaperProgramsParseAndCompile(t *testing.T) {
	// Fig. 2: the continuous query execution model as an automaton.
	fig2 := `
subscribe event to Topic;
subscribe x to Timer;
window w;
initialization {
	w = Window(sequence, SECS, 10);
}
behavior {
	if (currentTopic() == 'Topic')
		append(w, Sequence(event.attribute));
	else
		if (currentTopic() == 'Timer') {
			send(w);
			w = Window(sequence, SECS, 10);
		}
}
`
	// Fig. 14: the frequent algorithm.
	fig14 := `
subscribe e to Urls;
map T;
iterator i;
identifier id;
int count;
int k;
initialization {
	k = 100;
	T = Map(int);
}
behavior {
	id = Identifier(e.host);
	if (hasEntry(T, id)) {
		count = lookup(T, id);
		count += 1;
		insert(T, id, count);
	} else if (mapSize(T) < (k-1))
		insert(T, id, 1);
	else {
		i = Iterator(T);
		while (hasNext(i)) {
			id = next(i);
			count = lookup(T, id);
			count -= 1;
			if (count == 0)
				remove(T, id);
			else
				insert(T, id, count);
		}
	}
}
`
	for name, src := range map[string]string{"fig2": fig2, "fig14": fig14} {
		if _, err := Compile(src); err != nil {
			t.Errorf("%s does not compile: %v", name, err)
		}
	}
}

func TestOpString(t *testing.T) {
	if OpAdd.String() != "add" || OpCall.String() != "call" {
		t.Error("op names wrong")
	}
	if !strings.Contains(Op(200).String(), "200") {
		t.Error("unknown op should show number")
	}
}
