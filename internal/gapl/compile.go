package gapl

import (
	"fmt"

	"unicache/internal/types"
)

// Compile parses, checks and lowers an automaton source to bytecode. The
// returned Compiled must still be Bind()-ed against the cache's schemas
// before execution.
func Compile(src string) (*Compiled, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	c := &compiler{
		out:       &Compiled{Source: src},
		slotByVar: make(map[string]int),
		constIdx:  make(map[string]int),
		fieldIdx:  make(map[string]int),
	}
	return c.compile(prog)
}

type compiler struct {
	out       *Compiled
	slotByVar map[string]int
	constIdx  map[string]int
	fieldIdx  map[string]int
	code      []Instr
}

func (c *compiler) errf(line int, format string, args ...any) error {
	return fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...))
}

func (c *compiler) declare(name string, spec SlotSpec, line int) (int, error) {
	if _, dup := c.slotByVar[name]; dup {
		return 0, c.errf(line, "variable %q declared twice", name)
	}
	// Variables may shadow built-in names: the paper's Fig. 8 automaton
	// declares `real min, max`. Call syntax still resolves to the built-in.
	idx := len(c.out.Slots)
	c.out.Slots = append(c.out.Slots, spec)
	c.slotByVar[name] = idx
	return idx, nil
}

func (c *compiler) compile(prog *Program) (*Compiled, error) {
	for _, s := range prog.Subs {
		spec := SlotSpec{Name: s.Var, Role: SlotSub, Kind: types.KindEvent, Topic: s.Topic}
		if _, err := c.declare(s.Var, spec, s.Line); err != nil {
			return nil, err
		}
	}
	for _, a := range prog.Assocs {
		spec := SlotSpec{Name: a.Var, Role: SlotAssoc, Kind: types.KindAssoc, Table: a.Table}
		if _, err := c.declare(a.Var, spec, a.Line); err != nil {
			return nil, err
		}
	}
	for _, d := range prog.Decls {
		spec := SlotSpec{Name: d.Name, Role: SlotVar, Kind: d.Kind}
		if _, err := c.declare(d.Name, spec, d.Line); err != nil {
			return nil, err
		}
	}

	if prog.Pattern != nil {
		if err := c.checkPattern(prog); err != nil {
			return nil, err
		}
		c.out.Pattern = prog.Pattern
		return c.out, nil
	}

	if prog.Init != nil {
		c.code = nil
		if err := c.stmt(prog.Init); err != nil {
			return nil, err
		}
		c.emit(Instr{Op: OpHalt})
		c.out.Init = c.code
	}
	c.code = nil
	if err := c.stmt(prog.Behav); err != nil {
		return nil, err
	}
	c.emit(Instr{Op: OpHalt})
	c.out.Behavior = c.code
	c.out.BatchableBehavior = c.classifyBehavior()
	return c.out, nil
}

// checkPattern enforces the structural rules of the pattern clause. The
// deeper semantic checks (predicate placement, attribute existence,
// aggregate arguments) live in internal/cep, which compiles the pattern
// against the cache's schemas at registration time.
func (c *compiler) checkPattern(prog *Program) error {
	pat := prog.Pattern
	if len(prog.Decls) > 0 {
		return c.errf(prog.Decls[0].Line, "pattern automata declare no variables")
	}
	if prog.Init != nil {
		return c.errf(pat.Line, "pattern automata have no initialization clause")
	}
	if len(prog.Assocs) > 0 {
		return c.errf(prog.Assocs[0].Line, "pattern automata have no associations; use `emit ... into Topic` instead")
	}
	seen := make(map[string]bool, len(pat.Steps))
	positives := 0
	for i, st := range pat.Steps {
		slot, ok := c.slotByVar[st.Var]
		if !ok || c.out.Slots[slot].Role != SlotSub {
			return c.errf(st.Line, "pattern step %q is not a subscription variable", st.Var)
		}
		if seen[st.Var] {
			return c.errf(st.Line, "pattern step variable %q used twice", st.Var)
		}
		seen[st.Var] = true
		if st.Negated && st.Kleene {
			return c.errf(st.Line, "pattern step %q cannot be both negated and Kleene-iterated", st.Var)
		}
		if i == 0 && st.Negated {
			return c.errf(st.Line, "the first pattern step cannot be negated")
		}
		if !st.Negated {
			positives++
		}
	}
	if positives == 0 {
		return c.errf(pat.Line, "pattern needs at least one positive step")
	}
	last := pat.Steps[len(pat.Steps)-1]
	if (last.Negated || last.Kleene) && pat.Within == 0 {
		return c.errf(last.Line, "a trailing %s step needs a `within` bound to complete",
			map[bool]string{true: "negated", false: "Kleene"}[last.Negated])
	}
	if len(pat.Emit) == 0 {
		return c.errf(pat.Line, "pattern needs at least one emit expression")
	}
	return nil
}

// classifyBehavior decides the behaviour clause's activation mode. A
// behaviour is batchable — executed once per delivered run instead of once
// per event — iff it is run-aware (appendRun/runSize appear) and never
// observes an individual event: no attribute read (OpField), no use of a
// subscription variable as a value (OpLoad of a SlotSub slot), and no
// currentTopic() (a run may interleave several subscribed topics). The
// conservative default is per-event, which is bit-identical to
// tuple-at-a-time delivery for every pre-existing program.
func (c *compiler) classifyBehavior() bool {
	usesRun, observesEvent := false, false
	for _, ins := range c.out.Behavior {
		switch ins.Op {
		case OpAppendRun:
			usesRun = true
		case OpField:
			observesEvent = true
		case OpLoad:
			if c.out.Slots[ins.A].Role == SlotSub {
				observesEvent = true
			}
		case OpCall:
			switch BuiltinID(ins.A) {
			case BRunSize:
				usesRun = true
			case BCurrentTopic:
				observesEvent = true
			}
		}
	}
	return usesRun && !observesEvent
}

func (c *compiler) emit(ins Instr) int {
	c.code = append(c.code, ins)
	return len(c.code) - 1
}

func (c *compiler) patch(pc int, target int) {
	c.code[pc].A = int32(target)
}

func (c *compiler) constant(v types.Value) int32 {
	key := v.Kind().String() + "\x00" + v.String()
	if i, ok := c.constIdx[key]; ok {
		return int32(i)
	}
	i := len(c.out.Consts)
	c.out.Consts = append(c.out.Consts, v)
	c.constIdx[key] = i
	return int32(i)
}

func (c *compiler) fieldName(name string) int32 {
	if i, ok := c.fieldIdx[name]; ok {
		return int32(i)
	}
	i := len(c.out.FieldNames)
	c.out.FieldNames = append(c.out.FieldNames, name)
	c.fieldIdx[name] = i
	return int32(i)
}

// --- statements ---

func (c *compiler) stmt(s Stmt) error {
	switch st := s.(type) {
	case *Block:
		for _, sub := range st.Stmts {
			if err := c.stmt(sub); err != nil {
				return err
			}
		}
		return nil
	case *AssignStmt:
		return c.assign(st)
	case *IfStmt:
		return c.ifStmt(st)
	case *WhileStmt:
		return c.whileStmt(st)
	case *ExprStmt:
		kind, err := c.expr(st.X)
		if err != nil {
			return err
		}
		_ = kind
		c.emit(Instr{Op: OpPop, Line: int32(st.Line)})
		return nil
	}
	return fmt.Errorf("unknown statement %T", s)
}

func (c *compiler) assign(st *AssignStmt) error {
	slot, ok := c.slotByVar[st.Name]
	if !ok {
		return c.errf(st.Line, "undeclared variable %q", st.Name)
	}
	spec := c.out.Slots[slot]
	if spec.Role != SlotVar {
		return c.errf(st.Line, "cannot assign to %s variable %q",
			map[SlotKind]string{SlotSub: "subscription", SlotAssoc: "association"}[spec.Role], st.Name)
	}
	var srcKind types.Kind
	if st.Op == "=" {
		k, err := c.expr(st.X)
		if err != nil {
			return err
		}
		srcKind = k
	} else {
		// Compound assignment: load var, evaluate, combine.
		c.emit(Instr{Op: OpLoad, A: int32(slot), Line: int32(st.Line)})
		rk, err := c.expr(st.X)
		if err != nil {
			return err
		}
		var op Op
		switch st.Op {
		case "+=":
			op = OpAdd
		case "-=":
			op = OpSub
		case "*=":
			op = OpMul
		case "/=":
			op = OpDiv
		case "%=":
			op = OpMod
		default:
			return c.errf(st.Line, "unknown assignment operator %q", st.Op)
		}
		srcKind = c.arithKind(op, spec.Kind, rk)
		c.emit(Instr{Op: op, Line: int32(st.Line)})
	}
	if srcKind != types.KindNil && !types.AssignCompatible(spec.Kind, srcKind) {
		return c.errf(st.Line, "cannot assign %s to %s variable %q",
			srcKind, spec.Kind, st.Name)
	}
	c.emit(Instr{Op: OpStore, A: int32(slot), Line: int32(st.Line)})
	return nil
}

func (c *compiler) condition(x Expr, line int) error {
	kind, err := c.expr(x)
	if err != nil {
		return err
	}
	if kind != types.KindNil && kind != types.KindBool {
		return c.errf(line, "condition must be bool, got %s", kind)
	}
	return nil
}

func (c *compiler) ifStmt(st *IfStmt) error {
	if err := c.condition(st.Cond, st.Line); err != nil {
		return err
	}
	jz := c.emit(Instr{Op: OpJz, Line: int32(st.Line)})
	if err := c.stmt(st.Then); err != nil {
		return err
	}
	if st.Else == nil {
		c.patch(jz, len(c.code))
		return nil
	}
	jmp := c.emit(Instr{Op: OpJmp, Line: int32(st.Line)})
	c.patch(jz, len(c.code))
	if err := c.stmt(st.Else); err != nil {
		return err
	}
	c.patch(jmp, len(c.code))
	return nil
}

func (c *compiler) whileStmt(st *WhileStmt) error {
	start := len(c.code)
	if err := c.condition(st.Cond, st.Line); err != nil {
		return err
	}
	jz := c.emit(Instr{Op: OpJz, Line: int32(st.Line)})
	if err := c.stmt(st.Body); err != nil {
		return err
	}
	c.emit(Instr{Op: OpJmp, A: int32(start), Line: int32(st.Line)})
	c.patch(jz, len(c.code))
	return nil
}

// --- expressions ---

// expr compiles x and returns its statically inferred kind (KindNil when
// unknown until runtime).
func (c *compiler) expr(x Expr) (types.Kind, error) {
	switch e := x.(type) {
	case *IntLit:
		c.emit(Instr{Op: OpConst, A: c.constant(types.Int(e.V)), Line: int32(e.Line)})
		return types.KindInt, nil
	case *RealLit:
		c.emit(Instr{Op: OpConst, A: c.constant(types.Real(e.V)), Line: int32(e.Line)})
		return types.KindReal, nil
	case *StrLit:
		c.emit(Instr{Op: OpConst, A: c.constant(types.Str(e.V)), Line: int32(e.Line)})
		return types.KindString, nil
	case *BoolLit:
		c.emit(Instr{Op: OpConst, A: c.constant(types.Bool(e.V)), Line: int32(e.Line)})
		return types.KindBool, nil
	case *VarRef:
		slot, ok := c.slotByVar[e.Name]
		if !ok {
			return 0, c.errf(e.Line, "undeclared variable %q", e.Name)
		}
		c.emit(Instr{Op: OpLoad, A: int32(slot), Line: int32(e.Line)})
		return c.out.Slots[slot].Kind, nil
	case *FieldRef:
		slot, ok := c.slotByVar[e.Var]
		if !ok {
			return 0, c.errf(e.Line, "undeclared variable %q", e.Var)
		}
		if c.out.Slots[slot].Role != SlotSub {
			return 0, c.errf(e.Line, "%q is not a subscription variable; '.' needs one", e.Var)
		}
		c.emit(Instr{Op: OpField, A: int32(slot), B: c.fieldName(e.Field), Line: int32(e.Line)})
		return types.KindNil, nil // resolved at bind time
	case *UnaryExpr:
		kind, err := c.expr(e.X)
		if err != nil {
			return 0, err
		}
		if e.Op == "-" {
			if kind != types.KindNil && !kind.Numeric() {
				return 0, c.errf(e.Line, "operator - needs a numeric operand, got %s", kind)
			}
			c.emit(Instr{Op: OpNeg, Line: int32(e.Line)})
			return kind, nil
		}
		if kind != types.KindNil && kind != types.KindBool {
			return 0, c.errf(e.Line, "operator ! needs a bool operand, got %s", kind)
		}
		c.emit(Instr{Op: OpNot, Line: int32(e.Line)})
		return types.KindBool, nil
	case *BinaryExpr:
		return c.binary(e)
	case *CallExpr:
		return c.call(e)
	case *TypeArg:
		return 0, c.errf(e.Line, "type name only allowed inside Map() or Window()")
	case *ModeArg:
		return 0, c.errf(e.Line, "%s only allowed inside Window()", e.Mode)
	}
	return 0, fmt.Errorf("unknown expression %T", x)
}

func (c *compiler) binary(e *BinaryExpr) (types.Kind, error) {
	switch e.Op {
	case "&&", "||":
		if err := c.boolOperand(e.L, e.Line); err != nil {
			return 0, err
		}
		var jmp int
		if e.Op == "&&" {
			jmp = c.emit(Instr{Op: OpJzPeek, Line: int32(e.Line)})
		} else {
			jmp = c.emit(Instr{Op: OpJnzPeek, Line: int32(e.Line)})
		}
		c.emit(Instr{Op: OpPop, Line: int32(e.Line)})
		if err := c.boolOperand(e.R, e.Line); err != nil {
			return 0, err
		}
		c.patch(jmp, len(c.code))
		return types.KindBool, nil
	}

	lk, err := c.expr(e.L)
	if err != nil {
		return 0, err
	}
	rk, err := c.expr(e.R)
	if err != nil {
		return 0, err
	}
	switch e.Op {
	case "+", "-", "*", "/", "%":
		op := map[string]Op{"+": OpAdd, "-": OpSub, "*": OpMul, "/": OpDiv, "%": OpMod}[e.Op]
		if err := c.checkArith(op, lk, rk, e.Line); err != nil {
			return 0, err
		}
		c.emit(Instr{Op: op, Line: int32(e.Line)})
		return c.arithKind(op, lk, rk), nil
	case "==", "!=", "<", "<=", ">", ">=":
		op := map[string]Op{"==": OpEq, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe}[e.Op]
		c.emit(Instr{Op: op, Line: int32(e.Line)})
		return types.KindBool, nil
	}
	return 0, c.errf(e.Line, "unknown operator %q", e.Op)
}

func (c *compiler) boolOperand(x Expr, line int) error {
	kind, err := c.expr(x)
	if err != nil {
		return err
	}
	if kind != types.KindNil && kind != types.KindBool {
		return c.errf(line, "logical operator needs bool operands, got %s", kind)
	}
	return nil
}

func (c *compiler) checkArith(op Op, lk, rk types.Kind, line int) error {
	if lk == types.KindNil || rk == types.KindNil {
		return nil // dynamic
	}
	if op == OpAdd && (lk == types.KindString || lk == types.KindIdentifier) &&
		(rk == types.KindString || rk == types.KindIdentifier) {
		return nil
	}
	if !lk.Numeric() || !rk.Numeric() {
		return c.errf(line, "arithmetic needs numeric operands, got %s and %s", lk, rk)
	}
	if op == OpMod && (lk == types.KindReal || rk == types.KindReal) {
		return c.errf(line, "operator %% needs int operands")
	}
	return nil
}

// arithKind predicts the result kind of an arithmetic op.
func (c *compiler) arithKind(op Op, lk, rk types.Kind) types.Kind {
	if lk == types.KindNil || rk == types.KindNil {
		return types.KindNil
	}
	if op == OpAdd && (lk == types.KindString || lk == types.KindIdentifier) {
		return types.KindString
	}
	if lk == types.KindReal || rk == types.KindReal {
		return types.KindReal
	}
	if lk == types.KindTstamp && rk == types.KindTstamp {
		if op == OpSub {
			return types.KindInt
		}
		return types.KindTstamp
	}
	if lk == types.KindTstamp || rk == types.KindTstamp {
		return types.KindTstamp
	}
	return types.KindInt
}

func (c *compiler) call(e *CallExpr) (types.Kind, error) {
	sig, ok := Builtins[e.Name]
	if !ok {
		return 0, c.errf(e.Line, "unknown function %q", e.Name)
	}
	if len(e.Args) < sig.MinArgs {
		return 0, c.errf(e.Line, "%s expects at least %d argument(s), got %d",
			e.Name, sig.MinArgs, len(e.Args))
	}
	if sig.MaxArgs >= 0 && len(e.Args) > sig.MaxArgs {
		return 0, c.errf(e.Line, "%s expects at most %d argument(s), got %d",
			e.Name, sig.MaxArgs, len(e.Args))
	}
	switch sig.ID {
	case BMap:
		ta, ok := e.Args[0].(*TypeArg)
		if !ok {
			return 0, c.errf(e.Line, "Map() expects a type name, e.g. Map(int)")
		}
		c.emit(Instr{Op: OpConst, A: c.constant(types.Int(int64(ta.Kind))), Line: int32(e.Line)})
	case BWindow:
		ta, ok := e.Args[0].(*TypeArg)
		if !ok {
			return 0, c.errf(e.Line, "Window() expects a type name first, e.g. Window(sequence, SECS, 60)")
		}
		ma, ok := e.Args[1].(*ModeArg)
		if !ok {
			return 0, c.errf(e.Line, "Window() expects SECS, MSECS or ROWS second")
		}
		mode := map[string]int64{"ROWS": 1, "SECS": 2, "MSECS": 3}[ma.Mode]
		c.emit(Instr{Op: OpConst, A: c.constant(types.Int(int64(ta.Kind))), Line: int32(e.Line)})
		c.emit(Instr{Op: OpConst, A: c.constant(types.Int(mode)), Line: int32(e.Line)})
		if _, err := c.expr(e.Args[2]); err != nil {
			return 0, err
		}
	case BAppendRun:
		// appendRun(w, sub.attr) / appendRun(w, sub) lowers to a dedicated
		// instruction: the event operand is not an expression evaluated once
		// but a per-run extraction rule (subscription slot + attribute),
		// applied by the VM to every event of the activation's run.
		if _, err := c.expr(e.Args[0]); err != nil {
			return 0, err
		}
		var slot int
		fieldB := int32(-2)
		switch arg := e.Args[1].(type) {
		case *FieldRef:
			s, ok := c.slotByVar[arg.Var]
			if !ok {
				return 0, c.errf(arg.Line, "undeclared variable %q", arg.Var)
			}
			slot = s
			fieldB = c.fieldName(arg.Field)
		case *VarRef:
			s, ok := c.slotByVar[arg.Name]
			if !ok {
				return 0, c.errf(arg.Line, "undeclared variable %q", arg.Name)
			}
			slot = s
		default:
			return 0, c.errf(e.Line,
				"appendRun() needs a subscription variable or attribute second, e.g. appendRun(w, e.price)")
		}
		if c.out.Slots[slot].Role != SlotSub {
			return 0, c.errf(e.Line,
				"appendRun() needs a subscription variable or attribute second, e.g. appendRun(w, e.price)")
		}
		c.emit(Instr{Op: OpAppendRun, A: int32(slot), B: fieldB, Line: int32(e.Line)})
		return types.KindNil, nil
	default:
		for _, a := range e.Args {
			if _, err := c.expr(a); err != nil {
				return 0, err
			}
		}
	}
	c.emit(Instr{Op: OpCall, A: int32(sig.ID), B: int32(len(e.Args)), Line: int32(e.Line)})
	return sig.Result, nil
}
