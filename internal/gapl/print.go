package gapl

import (
	"fmt"
	"strconv"
	"strings"

	"unicache/internal/types"
)

// Print renders a parsed Program back to GAPL source. The output is
// canonical: binary and unary expressions are fully parenthesised, so
// Parse(Print(p)) yields a structurally identical program and printing
// is a fixpoint (print ∘ parse ∘ print = print). The fuzz harness leans
// on this to prove the parser and printer agree.
func Print(prog *Program) string {
	var b strings.Builder
	for _, s := range prog.Subs {
		fmt.Fprintf(&b, "subscribe %s to %s;\n", s.Var, s.Topic)
	}
	for _, a := range prog.Assocs {
		fmt.Fprintf(&b, "associate %s with %s;\n", a.Var, a.Table)
	}
	for _, d := range prog.Decls {
		fmt.Fprintf(&b, "%s %s;\n", wordOfKind(d.Kind), d.Name)
	}
	if prog.Init != nil {
		b.WriteString("initialization ")
		printBlock(&b, prog.Init, 0)
		b.WriteByte('\n')
	}
	if prog.Behav != nil {
		b.WriteString("behavior ")
		printBlock(&b, prog.Behav, 0)
		b.WriteByte('\n')
	}
	if prog.Pattern != nil {
		printPattern(&b, prog.Pattern)
	}
	return b.String()
}

func printPattern(b *strings.Builder, pat *PatternDecl) {
	b.WriteString("pattern {\n\tmatch ")
	for i, st := range pat.Steps {
		if i > 0 {
			b.WriteString(" then ")
		}
		if st.Negated {
			b.WriteByte('!')
		}
		b.WriteString(st.Var)
		if st.Kleene {
			b.WriteByte('+')
		}
	}
	if pat.Within > 0 {
		if pat.Within%1e9 == 0 {
			fmt.Fprintf(b, " within %d SECS", pat.Within/1e9)
		} else {
			fmt.Fprintf(b, " within %d MSECS", pat.Within/1e6)
		}
	}
	b.WriteString(";\n")
	if pat.Where != nil {
		b.WriteString("\twhere ")
		printExpr(b, pat.Where)
		b.WriteString(";\n")
	}
	b.WriteString("\temit ")
	for i, e := range pat.Emit {
		if i > 0 {
			b.WriteString(", ")
		}
		printExpr(b, e)
	}
	if pat.Into != "" {
		b.WriteString(" into ")
		b.WriteString(pat.Into)
	}
	b.WriteString(";\n}\n")
}

func printBlock(b *strings.Builder, blk *Block, depth int) {
	b.WriteString("{\n")
	for _, st := range blk.Stmts {
		printIndent(b, depth+1)
		printStmt(b, st, depth+1)
		b.WriteByte('\n')
	}
	printIndent(b, depth)
	b.WriteByte('}')
}

func printIndent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteByte('\t')
	}
}

func printStmt(b *strings.Builder, st Stmt, depth int) {
	switch s := st.(type) {
	case *Block:
		printBlock(b, s, depth)
	case *AssignStmt:
		fmt.Fprintf(b, "%s %s ", s.Name, s.Op)
		printExpr(b, s.X)
		b.WriteByte(';')
	case *IfStmt:
		b.WriteString("if (")
		printExpr(b, s.Cond)
		b.WriteString(") ")
		printStmt(b, s.Then, depth)
		if s.Else != nil {
			b.WriteString(" else ")
			printStmt(b, s.Else, depth)
		}
	case *WhileStmt:
		b.WriteString("while (")
		printExpr(b, s.Cond)
		b.WriteString(") ")
		printStmt(b, s.Body, depth)
	case *ExprStmt:
		printExpr(b, s.X)
		b.WriteByte(';')
	default:
		fmt.Fprintf(b, "/*?stmt %T*/", st)
	}
}

func printExpr(b *strings.Builder, x Expr) {
	switch e := x.(type) {
	case *IntLit:
		fmt.Fprintf(b, "%d", e.V)
	case *RealLit:
		s := strconv.FormatFloat(e.V, 'f', -1, 64)
		if !strings.Contains(s, ".") {
			s += ".0"
		}
		b.WriteString(s)
	case *StrLit:
		b.WriteByte('\'')
		for i := 0; i < len(e.V); i++ {
			switch c := e.V[i]; c {
			case '\n':
				b.WriteString("\\n")
			case '\t':
				b.WriteString("\\t")
			case '\\':
				b.WriteString("\\\\")
			case '\'':
				b.WriteString("\\'")
			default:
				b.WriteByte(c)
			}
		}
		b.WriteByte('\'')
	case *BoolLit:
		if e.V {
			b.WriteString("true")
		} else {
			b.WriteString("false")
		}
	case *VarRef:
		b.WriteString(e.Name)
	case *FieldRef:
		fmt.Fprintf(b, "%s.%s", e.Var, e.Field)
	case *UnaryExpr:
		b.WriteByte('(')
		b.WriteString(e.Op)
		printExpr(b, e.X)
		b.WriteByte(')')
	case *BinaryExpr:
		b.WriteByte('(')
		printExpr(b, e.L)
		fmt.Fprintf(b, " %s ", e.Op)
		printExpr(b, e.R)
		b.WriteByte(')')
	case *CallExpr:
		b.WriteString(e.Name)
		b.WriteByte('(')
		for i, a := range e.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			printExpr(b, a)
		}
		b.WriteByte(')')
	case *TypeArg:
		b.WriteString(wordOfKind(e.Kind))
	case *ModeArg:
		b.WriteString(e.Mode)
	default:
		fmt.Fprintf(b, "/*?expr %T*/", x)
	}
}

// wordOfKind is the inverse of KindOfTypeWord.
func wordOfKind(k types.Kind) string {
	for _, w := range []string{
		"int", "real", "bool", "string", "tstamp",
		"sequence", "map", "window", "identifier", "iterator",
	} {
		if kk, ok := KindOfTypeWord(w); ok && kk == k {
			return w
		}
	}
	return "int"
}
