package gapl

import (
	"testing"
)

// FuzzPatternParse fuzzes the parser, with pattern-clause sources
// seeding the corpus: the parser must never panic, and for every source
// it accepts, Print must produce source the parser accepts again with a
// structurally identical result (print ∘ parse is a fixpoint).
func FuzzPatternParse(f *testing.F) {
	seeds := []string{
		"subscribe a to A;\npattern { match a; emit a.v; }",
		"subscribe a to A;\nsubscribe b to B;\npattern { match a then b within 5 SECS; where b.u == a.u; emit a.v, b.v; }",
		"subscribe a to A;\nsubscribe b to B;\npattern { match a then !b within 300 MSECS; emit a.u; }",
		"subscribe s to T;\nsubscribe m to T2;\nsubscribe e to T3;\npattern { match s then m+ then e within 60 SECS; where m.v > s.v; emit s.v, count(m), sum(m.v) into Out; }",
		"subscribe a to A;\nsubscribe b to B;\nsubscribe c to C;\npattern { match a then !b then c+ within 2 SECS; where (a.v + 1) * 2 <= c.v && b.u != a.u; emit first(c.v), last(c.v), avg(c.v); }",
		"subscribe f to Flows;\nint n;\nbehavior { n += 1; if (n > 2) { publish(Alerts, f.src); } }",
		"subscribe a to A;\npattern { match a then within; emit; }",
		"pattern pattern pattern",
		"subscribe a to A;\npattern { match !a+; emit 1; }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src) // must not panic
		if err != nil {
			return
		}
		printed := Print(prog)
		prog2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed source does not re-parse: %v\ninput: %q\nprinted: %q", err, src, printed)
		}
		printed2 := Print(prog2)
		if printed2 != printed {
			t.Fatalf("print is not a fixpoint\ninput: %q\nfirst: %q\nsecond: %q", src, printed, printed2)
		}
	})
}
