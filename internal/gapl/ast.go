package gapl

import "unicache/internal/types"

// Program is a parsed automaton: subscriptions, associations, variable
// declarations and the clauses. Exactly one of Behav and Pattern is set:
// a program is either an imperative behaviour automaton or a declarative
// CEP pattern automaton.
type Program struct {
	Subs    []SubDecl
	Assocs  []AssocDecl
	Decls   []VarDecl
	Init    *Block       // may be nil
	Behav   *Block       // required unless Pattern is set
	Pattern *PatternDecl // CEP pattern clause; mutually exclusive with Behav
}

// PatternDecl is the `pattern { ... }` clause: an ordered list of steps
// over subscription variables, an optional application-time window, an
// optional predicate and the emitted expressions.
//
//	pattern {
//		match a then b+ then !c within 5 SECS;
//		where b.v > a.v;
//		emit a.v, count(b) into Matches;
//	}
type PatternDecl struct {
	Steps  []PatternStep
	Within int64  // application-time window in ns; 0 = unbounded
	Where  Expr   // may be nil
	Emit   []Expr // at least one
	Into   string // optional topic the match tuple is committed to
	Line   int
}

// PatternStep is one term of the match statement: a subscription
// variable, optionally negated (`!b`) or Kleene-iterated (`b+`).
type PatternStep struct {
	Var     string
	Negated bool
	Kleene  bool
	Line    int
}

// SubDecl is `subscribe var to Topic;`.
type SubDecl struct {
	Var   string
	Topic string
	Line  int
}

// AssocDecl is `associate var with Table;`.
type AssocDecl struct {
	Var   string
	Table string
	Line  int
}

// VarDecl declares one local variable of a GAPL kind.
type VarDecl struct {
	Name string
	Kind types.Kind
	Line int
}

// Stmt is any statement.
type Stmt interface{ stmtNode() }

// Block is `{ stmt* }`.
type Block struct {
	Stmts []Stmt
}

// AssignStmt is `name op expr;` where op is one of = += -= *= /= %=.
type AssignStmt struct {
	Name string
	Op   string
	X    Expr
	Line int
}

// IfStmt is if (cond) stmt [else stmt].
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
	Line int
}

// WhileStmt is while (cond) stmt.
type WhileStmt struct {
	Cond Expr
	Body Stmt
	Line int
}

// ExprStmt is an expression evaluated for effect (a call).
type ExprStmt struct {
	X    Expr
	Line int
}

func (*Block) stmtNode()      {}
func (*AssignStmt) stmtNode() {}
func (*IfStmt) stmtNode()     {}
func (*WhileStmt) stmtNode()  {}
func (*ExprStmt) stmtNode()   {}

// Expr is any expression.
type Expr interface{ exprNode() }

// IntLit / RealLit / StrLit / BoolLit are literals.
type IntLit struct {
	V    int64
	Line int
}

// RealLit is a real literal.
type RealLit struct {
	V    float64
	Line int
}

// StrLit is a string literal.
type StrLit struct {
	V    string
	Line int
}

// BoolLit is true/false.
type BoolLit struct {
	V    bool
	Line int
}

// VarRef references a declared variable, subscription or association.
type VarRef struct {
	Name string
	Line int
}

// FieldRef is `var.attr`, an attribute of the last event received on the
// subscription bound to var.
type FieldRef struct {
	Var   string
	Field string
	Line  int
}

// UnaryExpr is -x or !x.
type UnaryExpr struct {
	Op   string
	X    Expr
	Line int
}

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	Op   string
	L, R Expr
	Line int
}

// CallExpr invokes a built-in function or constructor.
type CallExpr struct {
	Name string
	Args []Expr
	Line int
}

// TypeArg is a type keyword used as a constructor argument, e.g.
// Map(int) or Window(sequence, SECS, t).
type TypeArg struct {
	Kind types.Kind
	Line int
}

// ModeArg is the SECS/ROWS/MSECS argument of the Window constructor.
type ModeArg struct {
	Mode string // "SECS", "ROWS", "MSECS"
	Line int
}

func (*IntLit) exprNode()     {}
func (*RealLit) exprNode()    {}
func (*StrLit) exprNode()     {}
func (*BoolLit) exprNode()    {}
func (*VarRef) exprNode()     {}
func (*FieldRef) exprNode()   {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*CallExpr) exprNode()   {}
func (*TypeArg) exprNode()    {}
func (*ModeArg) exprNode()    {}

// KindOfTypeWord maps a type keyword to its value kind.
func KindOfTypeWord(word string) (types.Kind, bool) {
	switch word {
	case "int":
		return types.KindInt, true
	case "real":
		return types.KindReal, true
	case "bool":
		return types.KindBool, true
	case "string":
		return types.KindString, true
	case "tstamp":
		return types.KindTstamp, true
	case "sequence":
		return types.KindSequence, true
	case "map":
		return types.KindMap, true
	case "window":
		return types.KindWindow, true
	case "identifier":
		return types.KindIdentifier, true
	case "iterator":
		return types.KindIterator, true
	}
	return types.KindNil, false
}
