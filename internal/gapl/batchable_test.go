package gapl

import (
	"strings"
	"testing"

	"unicache/internal/types"
)

func TestAppendRunCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"literal-second-arg", `
subscribe f to Flows;
window w;
initialization { w = Window(int, ROWS, 4); }
behavior { appendRun(w, 1 + 2); }
`, "subscription variable or attribute"},
		{"declared-var-second-arg", `
subscribe f to Flows;
window w;
int x;
initialization { w = Window(int, ROWS, 4); }
behavior { appendRun(w, x); }
`, "subscription variable or attribute"},
		{"undeclared-var", `
subscribe f to Flows;
window w;
initialization { w = Window(int, ROWS, 4); }
behavior { appendRun(w, nosuch.attr); }
`, "undeclared variable"},
		{"arity", `
subscribe f to Flows;
window w;
behavior { appendRun(w); }
`, "at least 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile(tc.src)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Compile: got %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestAppendRunBindResolvesAttribute(t *testing.T) {
	prog, err := Compile(`
subscribe f to Flows;
window w;
initialization { w = Window(int, ROWS, 4); }
behavior { appendRun(w, f.nbytes); appendRun(w, f.tstamp); appendRun(w, f); }
`)
	if err != nil {
		t.Fatal(err)
	}
	flows, err := types.NewSchema("Flows", false, -1,
		types.Column{Name: "srcip", Type: types.ColVarchar},
		types.Column{Name: "nbytes", Type: types.ColInt})
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Bind(map[string]*types.Schema{"Flows": flows}); err != nil {
		t.Fatal(err)
	}
	var got []int32
	for _, ins := range prog.Behavior {
		if ins.Op == OpAppendRun {
			got = append(got, ins.B)
		}
	}
	if len(got) != 3 || got[0] != 1 || got[1] != -1 || got[2] != -2 {
		t.Fatalf("OpAppendRun operands after bind = %v, want [1 -1 -2]", got)
	}
}

func TestAppendRunBindRejectsUnknownAttribute(t *testing.T) {
	prog, err := Compile(`
subscribe f to Flows;
window w;
behavior { appendRun(w, f.nosuch); }
`)
	if err != nil {
		t.Fatal(err)
	}
	flows, err := types.NewSchema("Flows", false, -1,
		types.Column{Name: "nbytes", Type: types.ColInt})
	if err != nil {
		t.Fatal(err)
	}
	err = prog.Bind(map[string]*types.Schema{"Flows": flows})
	if err == nil || !strings.Contains(err.Error(), "no attribute") {
		t.Fatalf("Bind: got %v, want no-attribute error", err)
	}
}
