package csvload

import (
	"errors"
	"strings"
	"testing"

	"unicache/internal/types"
)

func TestLoadParsesTypedRows(t *testing.T) {
	in := strings.TrimLeft(`
# comment line
1,hello,3.5,true,42
2, spaced,0.25,0,7
"#tag",x,1,false,0
`, "\n")
	var rows [][]types.Value
	n, err := Load(strings.NewReader(in),
		[]string{"varchar", "varchar", "real", "boolean", "tstamp"},
		func(vals []types.Value) error {
			rows = append(rows, vals)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || len(rows) != 3 {
		t.Fatalf("loaded %d rows (%d sunk), want 3", n, len(rows))
	}
	// Declared types win over lexical shape: "1" loads into varchar as a
	// string; a quoted leading '#' is data, not a comment.
	if rows[0][0] != types.Str("1") || rows[0][2] != types.Real(3.5) ||
		rows[0][3] != types.Bool(true) || rows[0][4] != types.Stamp(42) {
		t.Errorf("row 0 = %v", rows[0])
	}
	if rows[1][1] != types.Str("spaced") || rows[1][3] != types.Bool(false) {
		t.Errorf("row 1 = %v (leading space should be trimmed)", rows[1])
	}
	if rows[2][0] != types.Str("#tag") {
		t.Errorf("row 2 = %v (quoted # is data)", rows[2])
	}
}

func TestLoadErrorsCarryPosition(t *testing.T) {
	n, err := Load(strings.NewReader("1\nx\n3\n"), []string{"integer"},
		func([]types.Value) error { return nil })
	if n != 1 {
		t.Errorf("accepted %d rows before the error, want 1", n)
	}
	if err == nil || !strings.Contains(err.Error(), "line 2, column 1") {
		t.Errorf("err = %v, want line 2, column 1 position", err)
	}
	// Arity mismatches surface from the csv layer.
	if _, err := Load(strings.NewReader("1,2\n"), []string{"integer"},
		func([]types.Value) error { return nil }); err == nil {
		t.Error("wrong field count should error")
	}
}

func TestLoadStopsOnSinkError(t *testing.T) {
	sinkErr := errors.New("sink full")
	calls := 0
	n, err := Load(strings.NewReader("1\n2\n3\n"), []string{"integer"},
		func([]types.Value) error {
			calls++
			if calls == 2 {
				return sinkErr
			}
			return nil
		})
	if !errors.Is(err, sinkErr) {
		t.Fatalf("err = %v, want the sink error", err)
	}
	if n != 1 || calls != 2 {
		t.Errorf("n = %d, calls = %d; want 1 accepted, 2 attempted", n, calls)
	}
}

func TestParseValueRejections(t *testing.T) {
	for _, tc := range []struct{ s, typ string }{
		{"abc", "integer"}, {"abc", "real"}, {"yes", "boolean"}, {"abc", "tstamp"},
	} {
		if _, err := ParseValue(tc.s, tc.typ); err == nil {
			t.Errorf("ParseValue(%q, %s) should fail", tc.s, tc.typ)
		}
	}
	if v, err := ParseValue("anything at all", "varchar"); err != nil || v != types.Str("anything at all") {
		t.Errorf("varchar passthrough = %v, %v", v, err)
	}
}
