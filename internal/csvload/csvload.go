// Package csvload parses CSV rows into typed values for bulk loading —
// the shared front half of `cachectl load` (which streams rows over RPC)
// and cached's -load flag (which commits them straight into the embedded
// cache). Fields are parsed against the table's declared column types, so
// `123` loads into a varchar column as the string "123", not a rejected
// integer.
//
// Concurrency: a Load call reads its io.Reader from the calling goroutine
// only and keeps no state between calls; distinct Load calls are
// independent. The sink function runs on the caller's goroutine, one row
// at a time, and owns each row slice it receives.
package csvload

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"unicache/internal/types"
)

// Load parses CSV rows from r against colTypes (describe-output type names,
// one per column) and hands each typed row to sink in input order. Lines
// starting with '#' are comments — quote the first field (`"#tag",1`) to
// load a literal leading '#'. It returns the number of rows sink accepted;
// errors carry the input line and column. The sink owns each row slice.
func Load(r io.Reader, colTypes []string, sink func(vals []types.Value) error) (int, error) {
	cr := csv.NewReader(bufio.NewReaderSize(r, 1<<20))
	cr.Comment = '#'
	cr.TrimLeadingSpace = true
	cr.FieldsPerRecord = len(colTypes)
	cr.ReuseRecord = true
	n := 0
	for {
		fields, err := cr.Read()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err // csv errors carry the input line number
		}
		vals := make([]types.Value, len(fields))
		for i, f := range fields {
			v, err := ParseValue(f, colTypes[i])
			if err != nil {
				line, _ := cr.FieldPos(i)
				return n, fmt.Errorf("line %d, column %d: %w", line, i+1, err)
			}
			vals[i] = v
		}
		if err := sink(vals); err != nil {
			return n, err
		}
		n++
	}
}

// ParseValue parses one CSV field as the column's declared type.
func ParseValue(s, colType string) (types.Value, error) {
	switch colType {
	case "integer":
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return types.Nil, fmt.Errorf("%q is not an integer", s)
		}
		return types.Int(i), nil
	case "real":
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return types.Nil, fmt.Errorf("%q is not a real", s)
		}
		return types.Real(f), nil
	case "boolean":
		switch s {
		case "true", "1":
			return types.Bool(true), nil
		case "false", "0":
			return types.Bool(false), nil
		}
		return types.Nil, fmt.Errorf("%q is not a boolean", s)
	case "tstamp":
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return types.Nil, fmt.Errorf("%q is not a tstamp (nanoseconds since epoch)", s)
		}
		return types.Stamp(types.Timestamp(i)), nil
	default: // varchar; CSV quoting was already resolved by the reader
		return types.Str(s), nil
	}
}
