package vm

import (
	"strings"
	"testing"

	"unicache/internal/types"
)

func TestSeqSetBuiltin(t *testing.T) {
	h := newFakeHost()
	m := compileVM(t, h, `
subscribe t to Timer;
sequence s;
int v;
behavior {
	s = Sequence(1, 2, 3);
	seqSet(s, 1, 99);
	v = seqElement(s, 1);
}
`)
	if err := m.Deliver(timerEvent(t, 1)); err != nil {
		t.Fatal(err)
	}
	if got := slotInt(t, m, "v"); got != 99 {
		t.Errorf("seqSet result = %d", got)
	}
}

func TestSeqSetErrors(t *testing.T) {
	h := newFakeHost()
	m := compileVM(t, h, `
subscribe t to Timer;
sequence s;
behavior {
	s = Sequence(1);
	seqSet(s, 5, 0);
}
`)
	err := m.Deliver(timerEvent(t, 1))
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("seqSet out of range: %v", err)
	}
}

func TestIteratorOverWindowAndSequenceInGAPL(t *testing.T) {
	h := newFakeHost()
	m := compileVM(t, h, `
subscribe t to Timer;
window w;
sequence s;
iterator i;
int wsum, ssum;
initialization {
	w = Window(int, ROWS, 8);
}
behavior {
	append(w, 5); append(w, 6);
	i = Iterator(w);
	while (hasNext(i))
		wsum += next(i);
	s = Sequence(1, 2, 3);
	i = Iterator(s);
	while (hasNext(i))
		ssum += next(i);
}
`)
	if err := m.Deliver(timerEvent(t, 1)); err != nil {
		t.Fatal(err)
	}
	if slotInt(t, m, "wsum") != 11 {
		t.Errorf("window iterator sum = %d", slotInt(t, m, "wsum"))
	}
	if slotInt(t, m, "ssum") != 6 {
		t.Errorf("sequence iterator sum = %d", slotInt(t, m, "ssum"))
	}
}

func TestMsecsWindow(t *testing.T) {
	h := newFakeHost()
	m := compileVM(t, h, `
subscribe t to Timer;
window w;
int n;
initialization { w = Window(int, MSECS, 50); }
behavior {
	append(w, 1);
	n = winSize(w);
}
`)
	if err := m.Deliver(timerEvent(t, 1)); err != nil {
		t.Fatal(err)
	}
	if slotInt(t, m, "n") != 1 {
		t.Fatal("first append missing")
	}
	// Advance the fake clock by 60 ms: entry expires.
	h.clock = h.clock.Add(60_000_000)
	if err := m.Deliver(timerEvent(t, 2)); err != nil {
		t.Fatal(err)
	}
	if slotInt(t, m, "n") != 1 {
		t.Errorf("after expiry winSize = %d, want 1 (only the fresh append)", slotInt(t, m, "n"))
	}
}

func TestIntOfBoolAndFloatErrors(t *testing.T) {
	h := newFakeHost()
	m := compileVM(t, h, `
subscribe t to Timer;
int a, b;
behavior {
	a = int(true);
	b = int(false);
}
`)
	if err := m.Deliver(timerEvent(t, 1)); err != nil {
		t.Fatal(err)
	}
	if slotInt(t, m, "a") != 1 || slotInt(t, m, "b") != 0 {
		t.Error("int(bool) wrong")
	}

	m2 := compileVM(t, h, `
subscribe t to Timer;
real r;
behavior { r = float('nope'); }
`)
	if err := m2.Deliver(timerEvent(t, 1)); err == nil {
		t.Error("float(string) should error")
	}
}

func TestHourDayErrors(t *testing.T) {
	h := newFakeHost()
	m := compileVM(t, h, `
subscribe t to Timer;
int x;
behavior { x = hourInDay(5); }
`)
	if err := m.Deliver(timerEvent(t, 1)); err == nil {
		t.Error("hourInDay(int) should error (needs tstamp)")
	}
}

func TestStringOfAggregates(t *testing.T) {
	h := newFakeHost()
	m := compileVM(t, h, `
subscribe t to Timer;
map T;
window w;
string s;
initialization {
	T = Map(int);
	insert(T, Identifier('a'), 1);
	w = Window(int, ROWS, 4);
	append(w, 9);
}
behavior {
	s = String(T, ' / ', w, ' / ', Sequence(1, 'x'));
}
`)
	if err := m.Deliver(timerEvent(t, 1)); err != nil {
		t.Fatal(err)
	}
	v, _ := m.Slot("s")
	got, _ := v.AsStr()
	if got != "{a: 1} / [9] / (1, x)" {
		t.Errorf("String of aggregates = %q", got)
	}
}

func TestFrequentBuiltinErrors(t *testing.T) {
	h := newFakeHost()
	m := compileVM(t, h, `
subscribe e to Urls;
map T;
initialization { T = Map(int); }
behavior { frequent(T, Identifier(e.host), 1); }
`)
	if err := m.Deliver(urlEvent(t, 1, "h")); err == nil ||
		!strings.Contains(err.Error(), "k >= 2") {
		t.Errorf("frequent k=1: %v", err)
	}

	m2 := compileVM(t, h, `
subscribe e to Urls;
int x;
behavior { x = 0; frequent(x, Identifier(e.host), 5); }
`)
	if err := m2.Deliver(urlEvent(t, 1, "h")); err == nil {
		t.Error("frequent on int should error")
	}
}

func TestLsfErrors(t *testing.T) {
	h := newFakeHost()
	cases := []struct {
		name, src, want string
	}{
		{"too few points", `
subscribe t to Timer;
window w;
sequence f;
initialization { w = Window(sequence, ROWS, 8); }
behavior { append(w, Sequence(1, 2.0)); f = lsf(w); }`, "at least 2"},
		{"degenerate x", `
subscribe t to Timer;
window w;
sequence f;
initialization { w = Window(sequence, ROWS, 8); }
behavior {
	append(w, Sequence(1, 2.0));
	append(w, Sequence(1, 3.0));
	f = lsf(w);
}`, "degenerate"},
		{"non numeric", `
subscribe t to Timer;
window w;
sequence f;
initialization { w = Window(sequence, ROWS, 8); }
behavior {
	append(w, Sequence('a', 'b'));
	append(w, Sequence('c', 'd'));
	f = lsf(w);
}`, "numeric"},
		{"not a window", `
subscribe t to Timer;
sequence f;
int x;
behavior { x = 1; f = lsf(x); }`, "window"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			m := compileVM(t, h, tt.src)
			err := m.Deliver(timerEvent(t, 1))
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Errorf("want %q, got %v", tt.want, err)
			}
		})
	}
}

func TestLsfScalarWindowUsesIndex(t *testing.T) {
	h := newFakeHost()
	m := compileVM(t, h, `
subscribe t to Timer;
window w;
sequence f;
real slope;
initialization { w = Window(real, ROWS, 8); }
behavior {
	append(w, 10.0);
	append(w, 12.0);
	append(w, 14.0);
	f = lsf(w);
	slope = seqElement(f, 0);
}
`)
	if err := m.Deliver(timerEvent(t, 1)); err != nil {
		t.Fatal(err)
	}
	v, _ := m.Slot("slope")
	if f, _ := v.AsReal(); f < 1.999 || f > 2.001 {
		t.Errorf("scalar-window slope = %v, want 2", f)
	}
}

func TestTstampDiffOrderAndMixed(t *testing.T) {
	h := newFakeHost()
	m := compileVM(t, h, `
subscribe t to Timer;
tstamp a, bts;
int d1, d2;
behavior {
	a = 100;
	bts = 40;
	d1 = tstampDiff(a, bts);
	d2 = tstampDiff(bts, a);
}
`)
	if err := m.Deliver(timerEvent(t, 1)); err != nil {
		t.Fatal(err)
	}
	if slotInt(t, m, "d1") != 60 || slotInt(t, m, "d2") != -60 {
		t.Errorf("tstampDiff = %d, %d", slotInt(t, m, "d1"), slotInt(t, m, "d2"))
	}
}

func TestSendEventDirectly(t *testing.T) {
	// Fig. 11 does send(s) with s a subscription variable.
	h := newFakeHost()
	m := compileVM(t, h, `
subscribe f to Flows;
behavior { send(f); }
`)
	if err := m.Deliver(flowEvent(t, 1, "src", "dst", 77)); err != nil {
		t.Fatal(err)
	}
	if len(h.sent) != 1 {
		t.Fatal("send(event) did not send")
	}
	seq := h.sent[0][0].Seq()
	if seq == nil || seq.Len() != 4 {
		t.Fatalf("sent event should materialise as its attribute sequence: %v", h.sent[0][0])
	}
	if n, _ := seq.At(3).AsInt(); n != 77 {
		t.Errorf("sent nbytes = %v", seq.At(3))
	}
}

func TestPublishStringTopicRequired(t *testing.T) {
	h := newFakeHost()
	m := compileVM(t, h, `
subscribe t to Timer;
behavior { publish(7, 1); }
`)
	err := m.Deliver(timerEvent(t, 1))
	if err == nil || !strings.Contains(err.Error(), "topic name") {
		t.Errorf("publish(int,...) should error: %v", err)
	}
}

func TestDeliverAfterRuntimeErrorStillWorks(t *testing.T) {
	h := newFakeHost()
	m := compileVM(t, h, `
subscribe f to Flows;
int acc;
behavior {
	acc += 100 / f.nbytes;
}
`)
	if err := m.Deliver(flowEvent(t, 1, "s", "d", 0)); err == nil {
		t.Fatal("expected division by zero")
	}
	// The VM must remain usable: state intact, next event processed.
	if err := m.Deliver(flowEvent(t, 2, "s", "d", 4)); err != nil {
		t.Fatal(err)
	}
	if got := slotInt(t, m, "acc"); got != 25 {
		t.Errorf("acc = %d, want 25", got)
	}
}

func TestValueKindConversionsOnStore(t *testing.T) {
	h := newFakeHost()
	m := compileVM(t, h, `
subscribe t to Timer;
real r;
tstamp ts;
identifier id;
string s;
behavior {
	r = 3;           # int literal into real slot
	ts = 12345;      # int into tstamp slot
	id = Identifier('k');
	s = id;          # identifier into string slot
}
`)
	if err := m.Deliver(timerEvent(t, 1)); err != nil {
		t.Fatal(err)
	}
	r, _ := m.Slot("r")
	if r.Kind() != types.KindReal {
		t.Errorf("r kind = %s", r.Kind())
	}
	ts, _ := m.Slot("ts")
	if ts.Kind() != types.KindTstamp {
		t.Errorf("ts kind = %s", ts.Kind())
	}
	s, _ := m.Slot("s")
	if s.Kind() != types.KindString {
		t.Errorf("s kind = %s", s.Kind())
	}
}
