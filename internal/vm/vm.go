// Package vm implements the stack machine that animates compiled automata
// (§5 of the paper). Each automaton's initialization and behavior clauses
// are byte-code sequences bound to one VM instance; the automaton runtime
// calls RunInit once and Deliver for every event arriving on a subscribed
// topic.
package vm

import (
	"fmt"

	"unicache/internal/gapl"
	"unicache/internal/types"
)

// Host is the surface through which an automaton reaches the rest of the
// system: the cache clock, publish/send, and the persistent tables bound by
// associate headers. The automaton runtime implements it.
type Host interface {
	// Now returns the cache clock.
	Now() types.Timestamp
	// Publish inserts a tuple into another table/topic (the publish()
	// built-in); it flows through the cache commit path and may trigger
	// other automata.
	Publish(topic string, vals []types.Value) error
	// Send delivers values to the registering application over RPC (the
	// send() built-in).
	Send(vals []types.Value) error
	// Print emits a diagnostic line (the print() built-in).
	Print(s string)
	// AssocLookup returns the row for key as a sequence.
	AssocLookup(tbl, key string) (types.Value, bool, error)
	// AssocInsert upserts a row (a sequence, or a scalar for two-column
	// tables) under key.
	AssocInsert(tbl, key string, v types.Value) error
	// AssocHas reports whether a row exists for key.
	AssocHas(tbl, key string) (bool, error)
	// AssocRemove deletes the row for key, reporting whether it existed.
	AssocRemove(tbl, key string) (bool, error)
	// AssocSize returns the number of rows.
	AssocSize(tbl string) (int, error)
}

// VM executes one compiled automaton.
type VM struct {
	prog *gapl.Compiled
	host Host
	// MaxSteps bounds the number of instructions per clause execution;
	// 0 means unlimited. It protects tests against accidental infinite
	// loops in behaviour clauses.
	MaxSteps int
	// Mode selects the execution strategy: gapl.ModeAuto (default)
	// threads each clause through compiled closures, gapl.ModeVM forces
	// the switch interpreter. Set before the first RunInit/Deliver.
	Mode gapl.CompileMode

	slots     []types.Value
	stack     []types.Value
	topicSlot map[string]int
	curTopic  string

	// run is the batch of events bound to the current activation: the
	// whole drained run for a batchable behaviour under DeliverBatch, a
	// single event under Deliver. The run-aware builtins (appendRun,
	// runSize) read it; one holds the per-event case without allocating.
	run []*types.Event
	one [1]*types.Event
	// batchVals/batchTs are scratch buffers reused by OpAppendRun so a
	// batch append costs no per-activation allocation once warm.
	batchVals []types.Value
	batchTs   []types.Timestamp

	// Compiled closure chains for the two clauses (ModeAuto), built
	// lazily on first execution; nil with the flag set means the clause
	// declined compilation and stays on the interpreter.
	initSteps    []step
	behSteps     []step
	initCompiled bool
	behCompiled  bool
}

// New binds a compiled-and-bound automaton to a host.
func New(prog *gapl.Compiled, host Host) (*VM, error) {
	if prog == nil || host == nil {
		return nil, fmt.Errorf("vm: nil program or host")
	}
	if !prog.Bound() {
		return nil, fmt.Errorf("vm: program must be bound against schemas before execution")
	}
	m := &VM{
		prog:      prog,
		host:      host,
		slots:     make([]types.Value, len(prog.Slots)),
		stack:     make([]types.Value, 0, 64),
		topicSlot: make(map[string]int),
	}
	for i, s := range prog.Slots {
		switch s.Role {
		case gapl.SlotSub:
			if _, dup := m.topicSlot[s.Topic]; dup {
				return nil, fmt.Errorf("vm: automaton subscribes to topic %q twice", s.Topic)
			}
			m.topicSlot[s.Topic] = i
		case gapl.SlotAssoc:
			m.slots[i] = types.AssocV(&types.Assoc{Table: s.Table})
		case gapl.SlotVar:
			m.slots[i] = zeroValue(s.Kind)
		}
	}
	return m, nil
}

// zeroValue gives declared scalars a C-like zero initialisation; aggregates
// stay nil until constructed.
func zeroValue(k types.Kind) types.Value {
	switch k {
	case types.KindInt:
		return types.Int(0)
	case types.KindReal:
		return types.Real(0)
	case types.KindBool:
		return types.Bool(false)
	case types.KindString:
		return types.Str("")
	case types.KindIdentifier:
		return types.Ident("")
	case types.KindTstamp:
		return types.Stamp(0)
	}
	return types.Nil
}

// RunInit executes the initialization clause (if any).
func (m *VM) RunInit() error {
	if m.prog.Init == nil {
		return nil
	}
	return m.exec(m.prog.Init)
}

// Deliver binds ev to its subscription variable and executes the behavior
// clause — one activation per event, the paper's semantics. The current
// run is the single event, so run-aware builtins degenerate correctly
// (runSize() == 1, appendRun appends one value).
func (m *VM) Deliver(ev *types.Event) error {
	slot, ok := m.topicSlot[ev.Topic]
	if !ok {
		return fmt.Errorf("vm: not subscribed to topic %q", ev.Topic)
	}
	// The subscription slot holds the event across activations (GAPL code
	// may read f.attr on a later activation of another subscription): take
	// the VM's own reference on the new event and drop the one on the
	// event it displaces. No-ops for unpooled events.
	ev.Retain()
	if old := m.slots[slot].Event(); old != nil {
		old.Release()
	}
	m.slots[slot] = types.EventV(ev)
	m.curTopic = ev.Topic
	m.one[0] = ev
	m.run = m.one[:]
	return m.exec(m.prog.Behavior)
}

// DeliverBatch binds a whole drained run and executes the behavior clause
// ONCE for all of it — the batch activation that amortises interpreter
// dispatch over the run. It is only legal for programs the compiler
// classified batchable (Compiled.BatchableBehavior): such behaviours never
// observe an individual event, so executing once per run is their defined
// semantics. Events of several subscribed topics may interleave in one
// run; appendRun filters by its subscription's topic. The caller must not
// mutate evs until DeliverBatch returns; the VM does not retain the slice.
func (m *VM) DeliverBatch(evs []*types.Event) error {
	if len(evs) == 0 {
		return nil
	}
	if !m.prog.BatchableBehavior {
		return fmt.Errorf("vm: behaviour is per-event, not batchable; use Deliver")
	}
	for _, ev := range evs {
		if _, ok := m.topicSlot[ev.Topic]; !ok {
			return fmt.Errorf("vm: not subscribed to topic %q", ev.Topic)
		}
	}
	// Subscription slots stay unbound on purpose: a batchable behaviour is
	// statically barred from reading them, and skipping the per-event slot
	// stores is part of the amortisation.
	m.curTopic = evs[0].Topic
	m.run = evs
	return m.exec(m.prog.Behavior)
}

// VisitVars calls fn with every declared variable slot (SlotVar) and its
// current value, in slot order. The automaton runtime uses it to cut a
// durable snapshot of automaton state; the caller must hold whatever lock
// serialises it against Deliver.
func (m *VM) VisitVars(fn func(name string, v types.Value)) {
	for i, s := range m.prog.Slots {
		if s.Role == gapl.SlotVar {
			fn(s.Name, m.slots[i])
		}
	}
}

// RestoreVar reinstates a snapshotted variable after RunInit. Scalars
// replace the slot value. A saved window merges into the window the init
// clause constructed — the snapshot carries contents (values and their
// append timestamps), the init clause carries the eviction policy — and
// the constraint is re-applied at now; if init built no window the saved
// row-constrained snapshot is installed as-is. Unknown names are ignored:
// the automaton source may have changed since the snapshot.
func (m *VM) RestoreVar(name string, v types.Value, now types.Timestamp) error {
	for i, s := range m.prog.Slots {
		if s.Role != gapl.SlotVar || s.Name != name {
			continue
		}
		if v.Kind() == types.KindWindow {
			if cur := m.slots[i].Win(); cur != nil {
				saved := v.Win()
				for j := 0; j < saved.Len(); j++ {
					if err := cur.Append(saved.At(j), saved.TsAt(j)); err != nil {
						return fmt.Errorf("vm: restoring window %q: %w", name, err)
					}
				}
				cur.ExpireAt(now)
				return nil
			}
		}
		if s.Kind != types.KindNil && v.Kind() != s.Kind {
			conv, err := types.ConvertAssign(s.Kind, v)
			if err != nil {
				return fmt.Errorf("vm: restoring %q: %w", name, err)
			}
			v = conv
		}
		m.slots[i] = v
		return nil
	}
	return nil
}

// Slot returns the current value of the named variable (test hook).
func (m *VM) Slot(name string) (types.Value, bool) {
	for i, s := range m.prog.Slots {
		if s.Name == name {
			return m.slots[i], true
		}
	}
	return types.Nil, false
}

// appendRun implements OpAppendRun: pop a window, then append attribute
// ins.B (-1 = tstamp pseudo-attribute, -2 = the whole event as a sequence)
// of every run event whose topic matches subscription slot ins.A. Values
// are stamped with their event's commit timestamp and the window's
// ROWS/SECS/MSECS constraint is enforced once for the whole run — the
// batch-append amortisation.
func (m *VM) appendRun(ins gapl.Instr) error {
	w := m.pop().Win()
	if w == nil {
		return fmt.Errorf("appendRun() needs a window first")
	}
	topic := m.prog.Slots[ins.A].Topic
	col := int(ins.B)
	vals := m.batchVals[:0]
	tss := m.batchTs[:0]
	for _, ev := range m.run {
		if ev.Topic != topic {
			continue
		}
		if col == -2 {
			vals = append(vals, types.SeqV(ev.AsSequence()))
		} else {
			vals = append(vals, ev.FieldAt(col))
		}
		tss = append(tss, ev.Tuple.TS)
	}
	var err error
	if len(vals) > 0 {
		err = w.AppendBatch(vals, tss, m.host.Now())
	}
	// Keep the grown backing arrays for the next run, but release the
	// values: a quiescent automaton must not pin the last run's data (the
	// same rule Queue.PopBatch applies to its reused buffer).
	for i := range vals {
		vals[i] = types.Nil
	}
	m.batchVals = vals[:0]
	m.batchTs = tss[:0]
	return err
}

func (m *VM) push(v types.Value) { m.stack = append(m.stack, v) }

func (m *VM) pop() types.Value {
	v := m.stack[len(m.stack)-1]
	m.stack = m.stack[:len(m.stack)-1]
	return v
}

func (m *VM) runtimeErr(ins gapl.Instr, err error) error {
	return fmt.Errorf("line %d: %w", ins.Line, err)
}

// exec routes a clause to the compiled closure chain (ModeAuto) or the
// switch interpreter (ModeVM, or a clause the closure compiler declined).
func (m *VM) exec(code []gapl.Instr) error {
	if m.Mode != gapl.ModeVM && len(code) > 0 {
		if steps := m.stepsFor(code); steps != nil {
			return m.execSteps(steps)
		}
	}
	return m.execSwitch(code)
}

func (m *VM) execSwitch(code []gapl.Instr) error {
	m.stack = m.stack[:0]
	pc := 0
	steps := 0
	for {
		if m.MaxSteps > 0 {
			steps++
			if steps > m.MaxSteps {
				return fmt.Errorf("vm: exceeded %d steps (possible infinite loop)", m.MaxSteps)
			}
		}
		ins := code[pc]
		switch ins.Op {
		case gapl.OpNop:
			pc++
		case gapl.OpConst:
			m.push(m.prog.Consts[ins.A])
			pc++
		case gapl.OpLoad:
			m.push(m.slots[ins.A])
			pc++
		case gapl.OpStore:
			v := m.pop()
			spec := m.prog.Slots[ins.A]
			if spec.Kind != types.KindNil && v.Kind() != spec.Kind {
				conv, err := types.ConvertAssign(spec.Kind, v)
				if err != nil {
					return m.runtimeErr(ins, fmt.Errorf("assigning to %q: %w", spec.Name, err))
				}
				v = conv
			}
			m.slots[ins.A] = v
			pc++
		case gapl.OpField:
			ev := m.slots[ins.A].Event()
			if ev == nil {
				return m.runtimeErr(ins, fmt.Errorf(
					"no event received yet on subscription %q", m.prog.Slots[ins.A].Name))
			}
			m.push(ev.FieldAt(int(ins.B)))
			pc++
		case gapl.OpAdd, gapl.OpSub, gapl.OpMul, gapl.OpDiv, gapl.OpMod:
			b := m.pop()
			a := m.pop()
			var v types.Value
			var err error
			switch ins.Op {
			case gapl.OpAdd:
				v, err = types.Add(a, b)
			case gapl.OpSub:
				v, err = types.Sub(a, b)
			case gapl.OpMul:
				v, err = types.Mul(a, b)
			case gapl.OpDiv:
				v, err = types.Div(a, b)
			default:
				v, err = types.Mod(a, b)
			}
			if err != nil {
				return m.runtimeErr(ins, err)
			}
			m.push(v)
			pc++
		case gapl.OpNeg:
			v, err := types.Neg(m.pop())
			if err != nil {
				return m.runtimeErr(ins, err)
			}
			m.push(v)
			pc++
		case gapl.OpNot:
			v, err := types.Not(m.pop())
			if err != nil {
				return m.runtimeErr(ins, err)
			}
			m.push(v)
			pc++
		case gapl.OpEq, gapl.OpNe, gapl.OpLt, gapl.OpLe, gapl.OpGt, gapl.OpGe:
			b := m.pop()
			a := m.pop()
			op := map[gapl.Op]string{
				gapl.OpEq: "==", gapl.OpNe: "!=", gapl.OpLt: "<",
				gapl.OpLe: "<=", gapl.OpGt: ">", gapl.OpGe: ">=",
			}[ins.Op]
			v, err := types.CompareOp(op, a, b)
			if err != nil {
				return m.runtimeErr(ins, err)
			}
			m.push(v)
			pc++
		case gapl.OpJmp:
			pc = int(ins.A)
		case gapl.OpJz:
			v := m.pop()
			b, err := v.Truthy()
			if err != nil {
				return m.runtimeErr(ins, err)
			}
			if !b {
				pc = int(ins.A)
			} else {
				pc++
			}
		case gapl.OpJzPeek, gapl.OpJnzPeek:
			v := m.stack[len(m.stack)-1]
			b, err := v.Truthy()
			if err != nil {
				return m.runtimeErr(ins, err)
			}
			jump := (ins.Op == gapl.OpJzPeek && !b) || (ins.Op == gapl.OpJnzPeek && b)
			if jump {
				pc = int(ins.A)
			} else {
				pc++
			}
		case gapl.OpPop:
			m.pop()
			pc++
		case gapl.OpCall:
			argc := int(ins.B)
			base := len(m.stack) - argc
			// Builtins receive a view of the stack; none retains the
			// slice (values are copied into any structure that outlives
			// the call).
			v, err := m.callBuiltin(gapl.BuiltinID(ins.A), m.stack[base:])
			m.stack = m.stack[:base]
			if err != nil {
				return m.runtimeErr(ins, err)
			}
			m.push(v)
			pc++
		case gapl.OpAppendRun:
			if err := m.appendRun(ins); err != nil {
				return m.runtimeErr(ins, err)
			}
			m.push(types.Nil)
			pc++
		case gapl.OpHalt:
			return nil
		default:
			return m.runtimeErr(ins, fmt.Errorf("unknown opcode %v", ins.Op))
		}
	}
}
