package vm

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"unicache/internal/gapl"
	"unicache/internal/types"
)

// materialize converts an event value into its sequence form; every other
// value passes through. Used wherever an automaton hands a subscription
// variable to send(), publish(), Sequence() or append().
func materialize(v types.Value) types.Value {
	if ev := v.Event(); ev != nil {
		return types.SeqV(ev.AsSequence())
	}
	return v
}

func (m *VM) callBuiltin(id gapl.BuiltinID, args []types.Value) (types.Value, error) {
	switch id {
	case gapl.BSequence:
		s := types.NewSequence()
		for _, a := range args {
			s.Append(materialize(a))
		}
		return types.SeqV(s), nil

	case gapl.BMap:
		kind, _ := args[0].AsInt()
		return types.MapV(types.NewMap(types.Kind(kind))), nil

	case gapl.BWindow:
		kind, _ := args[0].AsInt()
		mode, _ := args[1].AsInt()
		n, ok := args[2].NumAsInt()
		if !ok {
			return types.Nil, fmt.Errorf("Window() constraint must be numeric, got %s", args[2].Kind())
		}
		switch mode {
		case 1: // ROWS
			w, err := types.NewRowWindow(types.Kind(kind), int(n))
			if err != nil {
				return types.Nil, err
			}
			return types.WinV(w), nil
		case 2: // SECS
			w, err := types.NewTimeWindow(types.Kind(kind), time.Duration(n)*time.Second)
			if err != nil {
				return types.Nil, err
			}
			return types.WinV(w), nil
		case 3: // MSECS
			w, err := types.NewTimeWindow(types.Kind(kind), time.Duration(n)*time.Millisecond)
			if err != nil {
				return types.Nil, err
			}
			return types.WinV(w), nil
		}
		return types.Nil, fmt.Errorf("Window() mode must be ROWS, SECS or MSECS")

	case gapl.BIdentifier:
		if len(args) == 1 {
			return types.Ident(types.KeyString(materialize(args[0]))), nil
		}
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = types.KeyString(materialize(a))
		}
		return types.Ident(strings.Join(parts, "|")), nil

	case gapl.BIterator:
		switch {
		case args[0].Map() != nil:
			return types.IterV(types.NewMapIterator(args[0].Map())), nil
		case args[0].Win() != nil:
			return types.IterV(types.NewWindowIterator(args[0].Win())), nil
		case args[0].Seq() != nil:
			return types.IterV(types.NewSequenceIterator(args[0].Seq())), nil
		}
		return types.Nil, fmt.Errorf("Iterator() needs a map, window or sequence, got %s", args[0].Kind())

	case gapl.BString:
		var b strings.Builder
		for _, a := range args {
			b.WriteString(a.String())
		}
		return types.Str(b.String()), nil

	case gapl.BLookup:
		return m.lookup(args[0], args[1])
	case gapl.BInsert:
		return types.Nil, m.insert(args[0], args[1], args[2])
	case gapl.BHasEntry:
		return m.hasEntry(args[0], args[1])
	case gapl.BRemove:
		return m.remove(args[0], args[1])
	case gapl.BMapSize:
		return m.mapSize(args[0])

	case gapl.BHasNext:
		it := args[0].Iter()
		if it == nil {
			return types.Nil, fmt.Errorf("hasNext() needs an iterator, got %s", args[0].Kind())
		}
		return types.Bool(it.HasNext()), nil
	case gapl.BNext:
		it := args[0].Iter()
		if it == nil {
			return types.Nil, fmt.Errorf("next() needs an iterator, got %s", args[0].Kind())
		}
		return it.Next(), nil

	case gapl.BSeqElement:
		seq := args[0].Seq()
		if seq == nil {
			if ev := args[0].Event(); ev != nil {
				seq = ev.AsSequence()
			}
		}
		if seq == nil {
			return types.Nil, fmt.Errorf("seqElement() needs a sequence, got %s", args[0].Kind())
		}
		i, ok := args[1].NumAsInt()
		if !ok {
			return types.Nil, fmt.Errorf("seqElement() index must be int, got %s", args[1].Kind())
		}
		if i < 0 || int(i) >= seq.Len() {
			return types.Nil, fmt.Errorf("seqElement() index %d out of range (len %d)", i, seq.Len())
		}
		return seq.At(int(i)), nil

	case gapl.BSeqSize:
		seq := args[0].Seq()
		if seq == nil {
			return types.Nil, fmt.Errorf("seqSize() needs a sequence, got %s", args[0].Kind())
		}
		return types.Int(int64(seq.Len())), nil

	case gapl.BSeqSet:
		seq := args[0].Seq()
		if seq == nil {
			return types.Nil, fmt.Errorf("seqSet() needs a sequence, got %s", args[0].Kind())
		}
		i, ok := args[1].NumAsInt()
		if !ok {
			return types.Nil, fmt.Errorf("seqSet() index must be int, got %s", args[1].Kind())
		}
		if !seq.Set(int(i), materialize(args[2])) {
			return types.Nil, fmt.Errorf("seqSet() index %d out of range (len %d)", i, seq.Len())
		}
		return types.Nil, nil

	case gapl.BAppend:
		v := materialize(args[1])
		if w := args[0].Win(); w != nil {
			return types.Nil, w.Append(v, m.host.Now())
		}
		if s := args[0].Seq(); s != nil {
			s.Append(v)
			return types.Nil, nil
		}
		return types.Nil, fmt.Errorf("append() needs a window or sequence, got %s", args[0].Kind())

	case gapl.BWinSize:
		w := args[0].Win()
		if w == nil {
			return types.Nil, fmt.Errorf("winSize() needs a window, got %s", args[0].Kind())
		}
		w.ExpireAt(m.host.Now())
		return types.Int(int64(w.Len())), nil

	case gapl.BWinSum, gapl.BWinAvg, gapl.BWinMin, gapl.BWinMax,
		gapl.BWinStddev, gapl.BWinMedian:
		return m.winAggregate(id, args[0])

	case gapl.BRunSize:
		return types.Int(int64(len(m.run))), nil

	case gapl.BAppendRun:
		// Unreachable: the compiler lowers appendRun to OpAppendRun.
		return types.Nil, fmt.Errorf("appendRun() must be compiled to a dedicated instruction")

	case gapl.BDelete:
		switch {
		case args[0].Map() != nil:
			args[0].Map().Clear()
		case args[0].Win() != nil:
			args[0].Win().Clear()
		}
		// Scalars: advisory no-op (the Go GC owns reclamation).
		return types.Nil, nil

	case gapl.BCurrentTopic:
		return types.Str(m.curTopic), nil

	case gapl.BSend:
		vals := make([]types.Value, len(args))
		for i, a := range args {
			vals[i] = materialize(a)
		}
		return types.Nil, m.host.Send(vals)

	case gapl.BPublish:
		topic, ok := args[0].AsStr()
		if !ok {
			return types.Nil, fmt.Errorf("publish() needs a topic name first, got %s", args[0].Kind())
		}
		var vals []types.Value
		if len(args) == 2 {
			// Fast paths: republishing a whole event or sequence forwards
			// its attribute values without re-materialising. A pooled
			// event's storage is recycled after dispatch completes, and the
			// commit path may retain the slice it is handed (persistent
			// tables store it as the row), so pooled values are copied out.
			if ev := args[1].Event(); ev != nil {
				if ev.Pooled() {
					vals = append([]types.Value(nil), ev.Tuple.Vals...)
				} else {
					vals = ev.Tuple.Vals
				}
			} else if seq := args[1].Seq(); seq != nil {
				vals = seq.Values()
			}
		}
		if vals == nil {
			vals = make([]types.Value, 0, len(args)-1)
			for _, a := range args[1:] {
				vals = append(vals, materialize(a))
			}
		}
		return types.Nil, m.host.Publish(topic, vals)

	case gapl.BTstampNow:
		return types.Stamp(m.host.Now()), nil

	case gapl.BTstampDiff:
		a, aok := args[0].NumAsInt()
		b, bok := args[1].NumAsInt()
		if !aok || !bok {
			return types.Nil, fmt.Errorf("tstampDiff() needs tstamp arguments")
		}
		return types.Int(a - b), nil

	case gapl.BHourInDay:
		ts, ok := args[0].AsStamp()
		if !ok {
			return types.Nil, fmt.Errorf("hourInDay() needs a tstamp, got %s", args[0].Kind())
		}
		return types.Int(int64(ts.HourInDay())), nil

	case gapl.BDayInWeek:
		ts, ok := args[0].AsStamp()
		if !ok {
			return types.Nil, fmt.Errorf("dayInWeek() needs a tstamp, got %s", args[0].Kind())
		}
		return types.Int(int64(ts.DayInWeek())), nil

	case gapl.BFloat:
		f, ok := args[0].NumAsReal()
		if !ok {
			return types.Nil, fmt.Errorf("float() needs a numeric argument, got %s", args[0].Kind())
		}
		return types.Real(f), nil

	case gapl.BInt:
		if b, ok := args[0].AsBool(); ok {
			if b {
				return types.Int(1), nil
			}
			return types.Int(0), nil
		}
		n, ok := args[0].NumAsInt()
		if !ok {
			return types.Nil, fmt.Errorf("int() needs a numeric argument, got %s", args[0].Kind())
		}
		return types.Int(n), nil

	case gapl.BPrint:
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = a.String()
		}
		m.host.Print(strings.Join(parts, " "))
		return types.Nil, nil

	case gapl.BAbs:
		switch args[0].Kind() {
		case types.KindInt:
			n, _ := args[0].AsInt()
			if n < 0 {
				n = -n
			}
			return types.Int(n), nil
		case types.KindReal:
			f, _ := args[0].AsReal()
			return types.Real(math.Abs(f)), nil
		}
		return types.Nil, fmt.Errorf("abs() needs int or real, got %s", args[0].Kind())

	case gapl.BMin2, gapl.BMax2:
		c, err := types.Compare(args[0], args[1])
		if err != nil {
			return types.Nil, err
		}
		if (id == gapl.BMin2) == (c <= 0) {
			return args[0], nil
		}
		return args[1], nil

	case gapl.BSqrt:
		f, ok := args[0].NumAsReal()
		if !ok {
			return types.Nil, fmt.Errorf("sqrt() needs a numeric argument, got %s", args[0].Kind())
		}
		return types.Real(math.Sqrt(f)), nil

	case gapl.BPow:
		a, aok := args[0].NumAsReal()
		b, bok := args[1].NumAsReal()
		if !aok || !bok {
			return types.Nil, fmt.Errorf("pow() needs numeric arguments")
		}
		return types.Real(math.Pow(a, b)), nil

	case gapl.BFrequent:
		return types.Nil, m.frequentStep(args[0], args[1], args[2])

	case gapl.BLsf:
		return lsf(args[0])
	}
	return types.Nil, fmt.Errorf("unimplemented builtin %d", id)
}

// winAggregate implements the windowed aggregate builtins winSum, winAvg,
// winMin, winMax, winStddev and winMedian. Time-constrained windows are
// expired first, so the aggregate covers exactly the live SECS/MSECS span
// (or the last ROWS values). winSum over an empty window is int 0 (the
// empty sum); every other aggregate over an empty window is a runtime
// error — guard with winSize().
func (m *VM) winAggregate(id gapl.BuiltinID, arg types.Value) (types.Value, error) {
	name := winAggName(id)
	w := arg.Win()
	if w == nil {
		return types.Nil, fmt.Errorf("%s() needs a window, got %s", name, arg.Kind())
	}
	w.ExpireAt(m.host.Now())
	n := w.Len()
	switch id {
	case gapl.BWinSum, gapl.BWinAvg:
		if n == 0 {
			if id == gapl.BWinAvg {
				return types.Nil, fmt.Errorf("winAvg() over an empty window (guard with winSize)")
			}
			return types.Int(0), nil
		}
		var sumI int64
		var sumR float64
		real := false
		for i := 0; i < n; i++ {
			el := w.At(i)
			switch el.Kind() {
			case types.KindInt:
				v, _ := el.AsInt()
				sumI += v
				sumR += float64(v)
			case types.KindReal:
				v, _ := el.AsReal()
				sumR += v
				real = true
			default:
				return types.Nil, fmt.Errorf("%s() window elements must be numeric, got %s", name, el.Kind())
			}
		}
		if id == gapl.BWinAvg {
			return types.Real(sumR / float64(n)), nil
		}
		if real {
			return types.Real(sumR), nil
		}
		return types.Int(sumI), nil
	case gapl.BWinStddev:
		if n == 0 {
			return types.Nil, fmt.Errorf("winStddev() over an empty window (guard with winSize)")
		}
		var sum float64
		xs := make([]float64, n)
		for i := 0; i < n; i++ {
			f, ok := w.At(i).NumAsReal()
			if !ok {
				return types.Nil, fmt.Errorf("%s() window elements must be numeric, got %s", name, w.At(i).Kind())
			}
			xs[i] = f
			sum += f
		}
		mean := sum / float64(n)
		var ss float64
		for _, x := range xs {
			d := x - mean
			ss += d * d
		}
		// Population standard deviation: a window is the whole population
		// the automaton observes, not a sample of one. One element -> 0.
		return types.Real(math.Sqrt(ss / float64(n))), nil

	case gapl.BWinMedian:
		if n == 0 {
			return types.Nil, fmt.Errorf("winMedian() over an empty window (guard with winSize)")
		}
		xs := make([]float64, n)
		for i := 0; i < n; i++ {
			f, ok := w.At(i).NumAsReal()
			if !ok {
				return types.Nil, fmt.Errorf("%s() window elements must be numeric, got %s", name, w.At(i).Kind())
			}
			xs[i] = f
		}
		sort.Float64s(xs)
		if n%2 == 1 {
			return types.Real(xs[n/2]), nil
		}
		// Even count: the mean of the two middle values.
		return types.Real((xs[n/2-1] + xs[n/2]) / 2), nil

	default: // winMin, winMax
		if n == 0 {
			return types.Nil, fmt.Errorf("%s() over an empty window (guard with winSize)", name)
		}
		best := w.At(0)
		for i := 1; i < n; i++ {
			el := w.At(i)
			c, err := types.Compare(el, best)
			if err != nil {
				return types.Nil, fmt.Errorf("%s(): %w", name, err)
			}
			if (id == gapl.BWinMin && c < 0) || (id == gapl.BWinMax && c > 0) {
				best = el
			}
		}
		return best, nil
	}
}

// winAggName resolves a windowed aggregate's source name for error
// reports without allocating on the aggregate hot path.
func winAggName(id gapl.BuiltinID) string {
	switch id {
	case gapl.BWinSum:
		return "winSum"
	case gapl.BWinAvg:
		return "winAvg"
	case gapl.BWinMin:
		return "winMin"
	case gapl.BWinStddev:
		return "winStddev"
	case gapl.BWinMedian:
		return "winMedian"
	}
	return "winMax"
}

// --- map / association operations ---

func (m *VM) lookup(target, id types.Value) (types.Value, error) {
	key := types.KeyString(id)
	if mp := target.Map(); mp != nil {
		v, ok := mp.Lookup(key)
		if !ok {
			return types.Nil, fmt.Errorf("lookup(): no entry for %q (guard with hasEntry)", key)
		}
		return v, nil
	}
	if as := target.Assoc(); as != nil {
		v, ok, err := m.host.AssocLookup(as.Table, key)
		if err != nil {
			return types.Nil, err
		}
		if !ok {
			return types.Nil, fmt.Errorf("lookup(): table %s has no row %q (guard with hasEntry)", as.Table, key)
		}
		return v, nil
	}
	return types.Nil, fmt.Errorf("lookup() needs a map or association, got %s", target.Kind())
}

func (m *VM) insert(target, id, v types.Value) error {
	key := types.KeyString(id)
	if mp := target.Map(); mp != nil {
		return mp.Insert(key, materialize(v))
	}
	if as := target.Assoc(); as != nil {
		return m.host.AssocInsert(as.Table, key, materialize(v))
	}
	return fmt.Errorf("insert() needs a map or association, got %s", target.Kind())
}

func (m *VM) hasEntry(target, id types.Value) (types.Value, error) {
	key := types.KeyString(id)
	if mp := target.Map(); mp != nil {
		return types.Bool(mp.Has(key)), nil
	}
	if as := target.Assoc(); as != nil {
		ok, err := m.host.AssocHas(as.Table, key)
		if err != nil {
			return types.Nil, err
		}
		return types.Bool(ok), nil
	}
	return types.Nil, fmt.Errorf("hasEntry() needs a map or association, got %s", target.Kind())
}

func (m *VM) remove(target, id types.Value) (types.Value, error) {
	key := types.KeyString(id)
	if mp := target.Map(); mp != nil {
		mp.Remove(key)
		return types.Nil, nil
	}
	if as := target.Assoc(); as != nil {
		if _, err := m.host.AssocRemove(as.Table, key); err != nil {
			return types.Nil, err
		}
		return types.Nil, nil
	}
	return types.Nil, fmt.Errorf("remove() needs a map or association, got %s", target.Kind())
}

func (m *VM) mapSize(target types.Value) (types.Value, error) {
	if mp := target.Map(); mp != nil {
		return types.Int(int64(mp.Size())), nil
	}
	if as := target.Assoc(); as != nil {
		n, err := m.host.AssocSize(as.Table)
		if err != nil {
			return types.Nil, err
		}
		return types.Int(int64(n)), nil
	}
	return types.Nil, fmt.Errorf("mapSize() needs a map or association, got %s", target.Kind())
}

// frequentStep is the built-in variant of the Misra-Gries "frequent"
// algorithm (§6.4): one update of summary map mp with item id, keeping at
// most k-1 counters.
func (m *VM) frequentStep(target, id, kArg types.Value) error {
	mp := target.Map()
	if mp == nil {
		return fmt.Errorf("frequent() needs a local map, got %s", target.Kind())
	}
	k, ok := kArg.NumAsInt()
	if !ok || k < 2 {
		return fmt.Errorf("frequent() needs k >= 2")
	}
	key := types.KeyString(id)
	if v, found := mp.Lookup(key); found {
		n, _ := v.NumAsInt()
		return mp.Insert(key, types.Int(n+1))
	}
	if mp.Size() < int(k-1) {
		return mp.Insert(key, types.Int(1))
	}
	// Decrement all counters; drop the ones that reach zero.
	for _, existing := range mp.Keys() {
		v, _ := mp.Lookup(existing)
		n, _ := v.NumAsInt()
		n--
		if n == 0 {
			mp.Remove(existing)
		} else {
			if err := mp.Insert(existing, types.Int(n)); err != nil {
				return err
			}
		}
	}
	return nil
}

// lsf computes a least-squares linear fit over a window. Elements may be
// sequences (x = element 0, y = element 1) or plain numerics (x = index).
// It returns Sequence(slope, intercept).
func lsf(arg types.Value) (types.Value, error) {
	w := arg.Win()
	if w == nil {
		return types.Nil, fmt.Errorf("lsf() needs a window, got %s", arg.Kind())
	}
	n := w.Len()
	if n < 2 {
		return types.Nil, fmt.Errorf("lsf() needs at least 2 points, window has %d", n)
	}
	var sx, sy, sxx, sxy float64
	for i := 0; i < n; i++ {
		var x, y float64
		el := w.At(i)
		if seq := el.Seq(); seq != nil {
			if seq.Len() < 2 {
				return types.Nil, fmt.Errorf("lsf() window sequences need (x, y) elements")
			}
			xf, xok := seq.At(0).NumAsReal()
			yf, yok := seq.At(1).NumAsReal()
			if !xok || !yok {
				return types.Nil, fmt.Errorf("lsf() needs numeric (x, y) pairs")
			}
			x, y = xf, yf
		} else {
			yf, ok := el.NumAsReal()
			if !ok {
				return types.Nil, fmt.Errorf("lsf() window elements must be numeric or (x, y) sequences")
			}
			x, y = float64(i), yf
		}
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	fn := float64(n)
	den := fn*sxx - sx*sx
	if den == 0 {
		return types.Nil, fmt.Errorf("lsf(): degenerate x values")
	}
	slope := (fn*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / fn
	return types.SeqV(types.NewSequence(types.Real(slope), types.Real(intercept))), nil
}
