package vm

import (
	"fmt"

	"unicache/internal/gapl"
	"unicache/internal/types"
)

// Threaded dispatch: under gapl.ModeAuto each clause is lowered once, at
// first execution, to a chain of Go closures — one per instruction, with
// operands (constants, slot specs, jump targets, builtin ids) decoded at
// compile time instead of on every activation. The driver loop then calls
// closures through a function pointer rather than re-decoding opcodes
// through the switch interpreter. A step returns the next pc, or stepHalt to
// finish the clause; outputs are bit-identical to the interpreter, pinned by
// the conformance suite and the differential test in compile_test.go.

// step executes one compiled instruction and returns the pc to run next.
type step func() (int32, error)

// stepHalt is the next-pc sentinel ending a clause.
const stepHalt int32 = -1

// stepsFor returns the compiled form of code, compiling and caching it on
// first use, or nil when the clause is not compilable (the caller then runs
// the switch interpreter). code is identified by its backing array: a VM
// only ever executes its own program's Init and Behavior clauses.
func (m *VM) stepsFor(code []gapl.Instr) []step {
	switch {
	case len(m.prog.Behavior) > 0 && &code[0] == &m.prog.Behavior[0]:
		if !m.behCompiled {
			m.behSteps = m.compileSteps(code)
			m.behCompiled = true
		}
		return m.behSteps
	case len(m.prog.Init) > 0 && &code[0] == &m.prog.Init[0]:
		if !m.initCompiled {
			m.initSteps = m.compileSteps(code)
			m.initCompiled = true
		}
		return m.initSteps
	}
	return nil
}

// execSteps drives a compiled clause, enforcing MaxSteps exactly as the
// interpreter does (one step per instruction executed).
func (m *VM) execSteps(steps []step) error {
	m.stack = m.stack[:0]
	pc := int32(0)
	count := 0
	for {
		if m.MaxSteps > 0 {
			count++
			if count > m.MaxSteps {
				return fmt.Errorf("vm: exceeded %d steps (possible infinite loop)", m.MaxSteps)
			}
		}
		next, err := steps[pc]()
		if err != nil {
			return err
		}
		if next == stepHalt {
			return nil
		}
		pc = next
	}
}

// compileSteps lowers one clause to closures. Returns nil if any
// instruction is not compilable, in which case the clause stays on the
// interpreter.
func (m *VM) compileSteps(code []gapl.Instr) []step {
	steps := make([]step, len(code))
	for i := range code {
		ins := code[i]
		next := int32(i + 1)
		switch ins.Op {
		case gapl.OpNop:
			steps[i] = func() (int32, error) { return next, nil }

		case gapl.OpConst:
			v := m.prog.Consts[ins.A]
			steps[i] = func() (int32, error) {
				m.push(v)
				return next, nil
			}

		case gapl.OpLoad:
			slot := ins.A
			steps[i] = func() (int32, error) {
				m.push(m.slots[slot])
				return next, nil
			}

		case gapl.OpStore:
			slot := ins.A
			spec := m.prog.Slots[ins.A]
			steps[i] = func() (int32, error) {
				v := m.pop()
				if spec.Kind != types.KindNil && v.Kind() != spec.Kind {
					conv, err := types.ConvertAssign(spec.Kind, v)
					if err != nil {
						return 0, m.runtimeErr(ins, fmt.Errorf("assigning to %q: %w", spec.Name, err))
					}
					v = conv
				}
				m.slots[slot] = v
				return next, nil
			}

		case gapl.OpField:
			slot := ins.A
			col := int(ins.B)
			name := m.prog.Slots[ins.A].Name
			steps[i] = func() (int32, error) {
				ev := m.slots[slot].Event()
				if ev == nil {
					return 0, m.runtimeErr(ins, fmt.Errorf(
						"no event received yet on subscription %q", name))
				}
				m.push(ev.FieldAt(col))
				return next, nil
			}

		case gapl.OpAdd, gapl.OpSub, gapl.OpMul, gapl.OpDiv, gapl.OpMod:
			var fn func(a, b types.Value) (types.Value, error)
			switch ins.Op {
			case gapl.OpAdd:
				fn = types.Add
			case gapl.OpSub:
				fn = types.Sub
			case gapl.OpMul:
				fn = types.Mul
			case gapl.OpDiv:
				fn = types.Div
			default:
				fn = types.Mod
			}
			steps[i] = func() (int32, error) {
				b := m.pop()
				a := m.pop()
				v, err := fn(a, b)
				if err != nil {
					return 0, m.runtimeErr(ins, err)
				}
				m.push(v)
				return next, nil
			}

		case gapl.OpNeg:
			steps[i] = func() (int32, error) {
				v, err := types.Neg(m.pop())
				if err != nil {
					return 0, m.runtimeErr(ins, err)
				}
				m.push(v)
				return next, nil
			}

		case gapl.OpNot:
			steps[i] = func() (int32, error) {
				v, err := types.Not(m.pop())
				if err != nil {
					return 0, m.runtimeErr(ins, err)
				}
				m.push(v)
				return next, nil
			}

		case gapl.OpEq, gapl.OpNe, gapl.OpLt, gapl.OpLe, gapl.OpGt, gapl.OpGe:
			op := map[gapl.Op]string{
				gapl.OpEq: "==", gapl.OpNe: "!=", gapl.OpLt: "<",
				gapl.OpLe: "<=", gapl.OpGt: ">", gapl.OpGe: ">=",
			}[ins.Op]
			steps[i] = func() (int32, error) {
				b := m.pop()
				a := m.pop()
				v, err := types.CompareOp(op, a, b)
				if err != nil {
					return 0, m.runtimeErr(ins, err)
				}
				m.push(v)
				return next, nil
			}

		case gapl.OpJmp:
			target := ins.A
			steps[i] = func() (int32, error) { return target, nil }

		case gapl.OpJz:
			target := ins.A
			steps[i] = func() (int32, error) {
				b, err := m.pop().Truthy()
				if err != nil {
					return 0, m.runtimeErr(ins, err)
				}
				if !b {
					return target, nil
				}
				return next, nil
			}

		case gapl.OpJzPeek, gapl.OpJnzPeek:
			target := ins.A
			onTrue := ins.Op == gapl.OpJnzPeek
			steps[i] = func() (int32, error) {
				b, err := m.stack[len(m.stack)-1].Truthy()
				if err != nil {
					return 0, m.runtimeErr(ins, err)
				}
				if b == onTrue {
					return target, nil
				}
				return next, nil
			}

		case gapl.OpPop:
			steps[i] = func() (int32, error) {
				m.pop()
				return next, nil
			}

		case gapl.OpCall:
			id := gapl.BuiltinID(ins.A)
			argc := int(ins.B)
			steps[i] = func() (int32, error) {
				base := len(m.stack) - argc
				v, err := m.callBuiltin(id, m.stack[base:])
				m.stack = m.stack[:base]
				if err != nil {
					return 0, m.runtimeErr(ins, err)
				}
				m.push(v)
				return next, nil
			}

		case gapl.OpAppendRun:
			steps[i] = func() (int32, error) {
				if err := m.appendRun(ins); err != nil {
					return 0, m.runtimeErr(ins, err)
				}
				m.push(types.Nil)
				return next, nil
			}

		case gapl.OpHalt:
			steps[i] = func() (int32, error) { return stepHalt, nil }

		default:
			// Unknown opcode: decline the whole clause; the interpreter
			// reports it with its usual runtime error.
			return nil
		}
	}
	return steps
}
