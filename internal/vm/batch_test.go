package vm

import (
	"math"
	"strings"
	"testing"

	"unicache/internal/gapl"
	"unicache/internal/types"
)

// urlRun builds a run of n Urls events with ascending seq/commit
// timestamps starting at ts0.
func urlRun(t *testing.T, ts0 types.Timestamp, hosts ...string) []*types.Event {
	t.Helper()
	run := make([]*types.Event, len(hosts))
	for i, h := range hosts {
		run[i] = &types.Event{
			Topic:  "Urls",
			Schema: schemas(t)["Urls"],
			Tuple: &types.Tuple{Seq: uint64(i + 1), TS: ts0 + types.Timestamp(i),
				Vals: []types.Value{types.Str(h)}},
		}
	}
	return run
}

func flowRun(t *testing.T, ts0 types.Timestamp, nbytes ...int64) []*types.Event {
	t.Helper()
	run := make([]*types.Event, len(nbytes))
	for i, n := range nbytes {
		ev := flowEvent(t, uint64(i+1), "10.0.0.1", "10.0.0.2", n)
		ev.Tuple.TS = ts0 + types.Timestamp(i)
		run[i] = ev
	}
	return run
}

const progBatchAvg = `
subscribe f to Flows;
window w;
int activations;
real avg;
initialization { w = Window(int, ROWS, 4); }
behavior {
	appendRun(w, f.nbytes);
	activations += 1;
	if (winSize(w) > 0) {
		avg = winAvg(w);
	}
}
`

func TestDeliverBatchOneActivationPerRun(t *testing.T) {
	h := newFakeHost()
	m := compileVM(t, h, progBatchAvg)
	if !m.prog.BatchableBehavior {
		t.Fatal("program should be classified batchable")
	}
	run := flowRun(t, 100, 1, 2, 3, 4, 5, 6)
	if err := m.DeliverBatch(run); err != nil {
		t.Fatal(err)
	}
	if got := slotInt(t, m, "activations"); got != 1 {
		t.Fatalf("activations = %d, want 1 for a 6-event run", got)
	}
	// ROWS 4 window holds the last four values: 3,4,5,6 -> avg 4.5.
	v, _ := m.Slot("avg")
	if f, _ := v.AsReal(); f != 4.5 {
		t.Fatalf("avg = %v, want 4.5", v)
	}
}

// TestBatchMatchesPerEventWindowContents pins the segmentation-independence
// property: a batchable behaviour leaves the same window state whether its
// events arrive as one run of N, N runs of 1 (Deliver), or any split.
func TestBatchMatchesPerEventWindowContents(t *testing.T) {
	final := func(t *testing.T, deliver func(m *VM, run []*types.Event)) (int64, float64) {
		h := newFakeHost()
		m := compileVM(t, h, progBatchAvg)
		deliver(m, flowRun(t, 100, 10, 20, 30, 40, 50))
		sum := int64(0)
		// Recompute the aggregate through the VM to observe window state.
		v, _ := m.Slot("avg")
		f, _ := v.AsReal()
		return sum, f
	}
	_, batched := final(t, func(m *VM, run []*types.Event) {
		if err := m.DeliverBatch(run); err != nil {
			t.Fatal(err)
		}
	})
	_, perEvent := final(t, func(m *VM, run []*types.Event) {
		for _, ev := range run {
			if err := m.Deliver(ev); err != nil {
				t.Fatal(err)
			}
		}
	})
	_, split := final(t, func(m *VM, run []*types.Event) {
		if err := m.DeliverBatch(run[:2]); err != nil {
			t.Fatal(err)
		}
		if err := m.DeliverBatch(run[2:]); err != nil {
			t.Fatal(err)
		}
	})
	if batched != perEvent || batched != split {
		t.Fatalf("window contents depend on run segmentation: batch avg %v, per-event %v, split %v",
			batched, perEvent, split)
	}
	if batched != 35 { // last 4 of 10..50 -> (20+30+40+50)/4
		t.Fatalf("avg = %v, want 35", batched)
	}
}

func TestAppendRunWholeEventAndTstamp(t *testing.T) {
	h := newFakeHost()
	m := compileVM(t, h, `
subscribe f to Flows;
window rows, stamps;
int n;
initialization {
	rows = Window(sequence, ROWS, 8);
	stamps = Window(tstamp, ROWS, 8);
}
behavior {
	appendRun(rows, f);
	appendRun(stamps, f.tstamp);
	n = winSize(rows);
}
`)
	if !m.prog.BatchableBehavior {
		t.Fatal("program should be batchable")
	}
	if err := m.DeliverBatch(flowRun(t, 500, 7, 8)); err != nil {
		t.Fatal(err)
	}
	if got := slotInt(t, m, "n"); got != 2 {
		t.Fatalf("winSize = %d, want 2", got)
	}
	rows, _ := m.Slot("rows")
	seq := rows.Win().At(0).Seq()
	if seq == nil || seq.Len() != 4 {
		t.Fatalf("whole-event append should store the row sequence, got %v", rows.Win().At(0))
	}
	stamps, _ := m.Slot("stamps")
	if ts, _ := stamps.Win().At(1).AsStamp(); ts != 501 {
		t.Fatalf("tstamp pseudo-attribute append = %v, want 501", stamps.Win().At(1))
	}
}

func TestAppendRunFiltersByTopic(t *testing.T) {
	h := newFakeHost()
	m := compileVM(t, h, `
subscribe f to Flows;
subscribe u to Urls;
window w;
int n;
initialization { w = Window(int, ROWS, 16); }
behavior {
	appendRun(w, f.nbytes);
	n = runSize();
}
`)
	if !m.prog.BatchableBehavior {
		t.Fatal("program should be batchable")
	}
	run := flowRun(t, 100, 1, 2)
	run = append(run, urlRun(t, 200, "a", "b", "c")...)
	if err := m.DeliverBatch(run); err != nil {
		t.Fatal(err)
	}
	if got := slotInt(t, m, "n"); got != 5 {
		t.Fatalf("runSize = %d, want 5 (whole interleaved run)", got)
	}
	w, _ := m.Slot("w")
	if w.Win().Len() != 2 {
		t.Fatalf("window holds %d values, want only the 2 Flows events", w.Win().Len())
	}
}

func TestRunSizeIsOnePerEvent(t *testing.T) {
	h := newFakeHost()
	m := compileVM(t, h, `
subscribe u to Urls;
int last;
behavior { last = runSize(); }
`)
	if err := m.Deliver(urlRun(t, 10, "x")[0]); err != nil {
		t.Fatal(err)
	}
	if got := slotInt(t, m, "last"); got != 1 {
		t.Fatalf("runSize under Deliver = %d, want 1", got)
	}
	if err := m.DeliverBatch(urlRun(t, 10, "x", "y", "z")); err != nil {
		t.Fatal(err)
	}
	if got := slotInt(t, m, "last"); got != 3 {
		t.Fatalf("runSize under DeliverBatch = %d, want 3", got)
	}
}

func TestDeliverBatchRejectsPerEventProgram(t *testing.T) {
	h := newFakeHost()
	m := compileVM(t, h, `
subscribe u to Urls;
int n;
behavior { n += 1; }
`)
	if m.prog.BatchableBehavior {
		t.Fatal("program without run builtins must not be batchable")
	}
	err := m.DeliverBatch(urlRun(t, 10, "x", "y"))
	if err == nil || !strings.Contains(err.Error(), "per-event") {
		t.Fatalf("DeliverBatch on a per-event program should fail, got %v", err)
	}
}

func TestDeliverBatchUnknownTopic(t *testing.T) {
	h := newFakeHost()
	m := compileVM(t, h, `
subscribe u to Urls;
window w;
initialization { w = Window(string, ROWS, 4); }
behavior { appendRun(w, u.host); }
`)
	run := []*types.Event{flowRun(t, 1, 42)[0]}
	if err := m.DeliverBatch(run); err == nil {
		t.Fatal("DeliverBatch of an unsubscribed topic should fail")
	}
	if err := m.DeliverBatch(nil); err != nil {
		t.Fatalf("empty run should be a no-op, got %v", err)
	}
}

func TestWindowedAggregates(t *testing.T) {
	h := newFakeHost()
	m := compileVM(t, h, `
subscribe t to Timer;
window ints, reals;
int sumI, minI;
real sumR, avg, maxR;
initialization {
	ints = Window(int, ROWS, 8);
	reals = Window(real, ROWS, 8);
	append(ints, 4); append(ints, 2); append(ints, 9);
	append(reals, 1.5); append(reals, 2.5);
}
behavior {
	sumI = winSum(ints);
	minI = winMin(ints);
	sumR = winSum(reals);
	avg = winAvg(ints);
	maxR = winMax(reals);
}
`)
	if err := m.Deliver(timerEvent(t, 1)); err != nil {
		t.Fatal(err)
	}
	if got := slotInt(t, m, "sumI"); got != 15 {
		t.Fatalf("winSum(ints) = %d, want 15", got)
	}
	if got := slotInt(t, m, "minI"); got != 2 {
		t.Fatalf("winMin(ints) = %d, want 2", got)
	}
	if v, _ := m.Slot("sumR"); mustReal(t, v) != 4.0 {
		t.Fatalf("winSum(reals) = %v, want 4.0", v)
	}
	if v, _ := m.Slot("avg"); mustReal(t, v) != 5.0 {
		t.Fatalf("winAvg(ints) = %v, want 5.0", v)
	}
	if v, _ := m.Slot("maxR"); mustReal(t, v) != 2.5 {
		t.Fatalf("winMax(reals) = %v, want 2.5", v)
	}
}

// TestWinStddevMedian pins the dispersion aggregates: winStddev is the
// population standard deviation (a window is the whole population the
// automaton observes), winMedian averages the two middle values on even
// counts, and both promote mixed int/real windows to real.
func TestWinStddevMedian(t *testing.T) {
	h := newFakeHost()
	m := compileVM(t, h, `
subscribe t to Timer;
window odd, even, one, mixed;
real sdOdd, sdOne, medOdd, medEven, medMixed;
initialization {
	odd = Window(int, ROWS, 8);
	append(odd, 2); append(odd, 4); append(odd, 9);
	even = Window(int, ROWS, 8);
	append(even, 1); append(even, 3); append(even, 8); append(even, 10);
	one = Window(int, ROWS, 8);
	append(one, 7);
	mixed = Window(real, ROWS, 8);
	append(mixed, 1.5); append(mixed, 2.5); append(mixed, 10.0);
}
behavior {
	sdOdd = winStddev(odd);
	sdOne = winStddev(one);
	medOdd = winMedian(odd);
	medEven = winMedian(even);
	medMixed = winMedian(mixed);
}
`)
	if err := m.Deliver(timerEvent(t, 1)); err != nil {
		t.Fatal(err)
	}
	// Population stddev of {2, 4, 9}: mean 5, variance (9+1+16)/3.
	want := math.Sqrt(26.0 / 3.0)
	if v, _ := m.Slot("sdOdd"); math.Abs(mustReal(t, v)-want) > 1e-12 {
		t.Fatalf("winStddev({2,4,9}) = %v, want %v", v, want)
	}
	if v, _ := m.Slot("sdOne"); mustReal(t, v) != 0 {
		t.Fatalf("winStddev of one element = %v, want 0", v)
	}
	if v, _ := m.Slot("medOdd"); mustReal(t, v) != 4 {
		t.Fatalf("winMedian({2,4,9}) = %v, want 4", v)
	}
	if v, _ := m.Slot("medEven"); mustReal(t, v) != 5.5 {
		t.Fatalf("winMedian({1,3,8,10}) = %v, want 5.5", v)
	}
	if v, _ := m.Slot("medMixed"); mustReal(t, v) != 2.5 {
		t.Fatalf("winMedian({1.5,2.5,10}) = %v, want 2.5", v)
	}
}

func mustReal(t *testing.T, v types.Value) float64 {
	t.Helper()
	f, ok := v.NumAsReal()
	if !ok {
		t.Fatalf("value %v is not numeric", v)
	}
	return f
}

func TestAggregatesOverEmptyWindow(t *testing.T) {
	h := newFakeHost()
	mk := func(call string) error {
		m := compileVM(t, h, `
subscribe t to Timer;
window w;
real r;
initialization { w = Window(int, ROWS, 4); }
behavior { r = float(`+call+`); }
`)
		return m.Deliver(timerEvent(t, 1))
	}
	// The empty sum is 0; the other aggregates are undefined and must say
	// so (guard with winSize).
	if err := mk("winSum(w)"); err != nil {
		t.Fatalf("winSum over empty window should be 0, got error %v", err)
	}
	for _, call := range []string{"winAvg(w)", "winMin(w)", "winMax(w)", "winStddev(w)", "winMedian(w)"} {
		err := mk(call)
		if err == nil || !strings.Contains(err.Error(), "empty window") {
			t.Fatalf("%s over empty window: got %v, want empty-window error", call, err)
		}
	}
	// winSize itself over an empty window is plain 0.
	m := compileVM(t, h, `
subscribe t to Timer;
window w;
int n;
initialization { w = Window(int, ROWS, 4); }
behavior { n = winSize(w); }
`)
	if err := m.Deliver(timerEvent(t, 1)); err != nil {
		t.Fatal(err)
	}
	if got := slotInt(t, m, "n"); got != 0 {
		t.Fatalf("winSize(empty) = %d, want 0", got)
	}
}

func TestAggregateErrorsOnNonWindows(t *testing.T) {
	h := newFakeHost()
	for _, call := range []string{"winSum(1)", "winAvg(1)", "winMin(1)", "winMax(1)", "winStddev(1)", "winMedian(1)"} {
		m := compileVM(t, h, `
subscribe t to Timer;
int n;
behavior { n = int(`+call+`); }
`)
		if err := m.Deliver(timerEvent(t, 1)); err == nil ||
			!strings.Contains(err.Error(), "needs a window") {
			t.Fatalf("%s should fail with needs-a-window, got %v", call, err)
		}
	}
	// Non-numeric elements are rejected by the numeric aggregates.
	m := compileVM(t, h, `
subscribe t to Timer;
window w;
int n;
initialization { w = Window(string, ROWS, 4); append(w, 'x'); }
behavior { n = int(winSum(w)); }
`)
	if err := m.Deliver(timerEvent(t, 1)); err == nil ||
		!strings.Contains(err.Error(), "numeric") {
		t.Fatalf("winSum over strings: got %v, want numeric-elements error", err)
	}
}

// TestTimeWindowEvictionOnceAtRunBoundary pins the batch-append eviction
// contract: entries carry their event's commit timestamp and the
// SECS/MSECS constraint is applied once per run against the host clock.
func TestTimeWindowEvictionOnceAtRunBoundary(t *testing.T) {
	h := newFakeHost()
	m := compileVM(t, h, `
subscribe f to Flows;
window w;
int n;
initialization { w = Window(int, MSECS, 10); }
behavior {
	appendRun(w, f.nbytes);
	n = winSize(w);
}
`)
	ms := types.Timestamp(1_000_000) // 1ms in ns
	// First run commits at t=1000ms..1001ms; host clock just past them.
	h.clock = 1002 * ms
	run := flowRun(t, 1000*ms, 1, 2)
	run[1].Tuple.TS = 1001 * ms
	if err := m.DeliverBatch(run); err != nil {
		t.Fatal(err)
	}
	if got := slotInt(t, m, "n"); got != 2 {
		t.Fatalf("winSize after first run = %d, want 2", got)
	}
	// Second run arrives 10ms later: the first run's entries are now
	// outside the 10ms span and must be evicted at the run boundary.
	h.clock = 1012 * ms
	run2 := flowRun(t, 1010*ms, 3, 4, 5)
	if err := m.DeliverBatch(run2); err != nil {
		t.Fatal(err)
	}
	if got := slotInt(t, m, "n"); got != 3 {
		t.Fatalf("winSize after second run = %d, want 3 (old run evicted)", got)
	}
}

func TestBatchableClassification(t *testing.T) {
	cases := []struct {
		name      string
		src       string
		batchable bool
	}{
		{"append-run-aggregate", progBatchAvg, true},
		{"run-size-only", `
subscribe f to Flows;
int n;
behavior { n += runSize(); }
`, true},
		{"field-read", `
subscribe f to Flows;
window w;
initialization { w = Window(int, ROWS, 4); }
behavior { append(w, f.nbytes); }
`, false},
		{"sub-var-as-value", `
subscribe f to Flows;
behavior { publish('Urls', f); }
`, false},
		{"current-topic", `
subscribe f to Flows;
string s;
behavior { s = currentTopic(); runSize(); }
`, false},
		{"no-run-builtins", `
subscribe f to Flows;
int n;
behavior { n += 1; }
`, false},
		{"append-run-plus-field", `
subscribe f to Flows;
window w;
int n;
initialization { w = Window(int, ROWS, 4); }
behavior { appendRun(w, f.nbytes); n = f.nbytes; }
`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := gapl.Compile(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			if prog.BatchableBehavior != tc.batchable {
				t.Fatalf("BatchableBehavior = %v, want %v", prog.BatchableBehavior, tc.batchable)
			}
		})
	}
}
