package vm

import (
	"fmt"
	"strings"
	"testing"

	"unicache/internal/gapl"
	"unicache/internal/types"
)

// fakeHost implements Host over in-memory state.
type fakeHost struct {
	clock     types.Timestamp
	published []publishRec
	sent      [][]types.Value
	printed   []string
	assocs    map[string]*types.Map // table -> key -> row sequence
}

type publishRec struct {
	topic string
	vals  []types.Value
}

func newFakeHost() *fakeHost {
	return &fakeHost{clock: 1_000_000, assocs: make(map[string]*types.Map)}
}

func (h *fakeHost) Now() types.Timestamp { return h.clock }

func (h *fakeHost) Publish(topic string, vals []types.Value) error {
	h.published = append(h.published, publishRec{topic: topic, vals: vals})
	return nil
}

func (h *fakeHost) Send(vals []types.Value) error {
	h.sent = append(h.sent, vals)
	return nil
}

func (h *fakeHost) Print(s string) { h.printed = append(h.printed, s) }

func (h *fakeHost) table(tbl string) (*types.Map, error) {
	m, ok := h.assocs[tbl]
	if !ok {
		return nil, fmt.Errorf("no such table %q", tbl)
	}
	return m, nil
}

func (h *fakeHost) AssocLookup(tbl, key string) (types.Value, bool, error) {
	m, err := h.table(tbl)
	if err != nil {
		return types.Nil, false, err
	}
	v, ok := m.Lookup(key)
	return v, ok, nil
}

func (h *fakeHost) AssocInsert(tbl, key string, v types.Value) error {
	m, err := h.table(tbl)
	if err != nil {
		return err
	}
	return m.Insert(key, v)
}

func (h *fakeHost) AssocHas(tbl, key string) (bool, error) {
	m, err := h.table(tbl)
	if err != nil {
		return false, err
	}
	return m.Has(key), nil
}

func (h *fakeHost) AssocRemove(tbl, key string) (bool, error) {
	m, err := h.table(tbl)
	if err != nil {
		return false, err
	}
	return m.Remove(key), nil
}

func (h *fakeHost) AssocSize(tbl string) (int, error) {
	m, err := h.table(tbl)
	if err != nil {
		return 0, err
	}
	return m.Size(), nil
}

// --- helpers ---

func schemas(t *testing.T) map[string]*types.Schema {
	t.Helper()
	mk := func(name string, cols ...types.Column) *types.Schema {
		s, err := types.NewSchema(name, false, -1, cols...)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	return map[string]*types.Schema{
		"Timer": mk("Timer", types.Column{Name: "ts", Type: types.ColTstamp}),
		"Flows": mk("Flows",
			types.Column{Name: "protocol", Type: types.ColInt},
			types.Column{Name: "srcip", Type: types.ColVarchar},
			types.Column{Name: "dstip", Type: types.ColVarchar},
			types.Column{Name: "nbytes", Type: types.ColInt},
		),
		"Urls": mk("Urls", types.Column{Name: "host", Type: types.ColVarchar}),
	}
}

func compileVM(t *testing.T, h Host, src string) *VM {
	t.Helper()
	c, err := gapl.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := c.Bind(schemas(t)); err != nil {
		t.Fatalf("bind: %v", err)
	}
	m, err := New(c, h)
	if err != nil {
		t.Fatal(err)
	}
	m.MaxSteps = 10_000_000
	if err := m.RunInit(); err != nil {
		t.Fatalf("init: %v", err)
	}
	return m
}

func timerEvent(t *testing.T, ts types.Timestamp) *types.Event {
	t.Helper()
	return &types.Event{
		Topic:  "Timer",
		Schema: schemas(t)["Timer"],
		Tuple:  &types.Tuple{Seq: 1, TS: ts, Vals: []types.Value{types.Stamp(ts)}},
	}
}

func flowEvent(t *testing.T, seq uint64, src, dst string, nbytes int64) *types.Event {
	t.Helper()
	return &types.Event{
		Topic:  "Flows",
		Schema: schemas(t)["Flows"],
		Tuple: &types.Tuple{Seq: seq, TS: types.Timestamp(seq),
			Vals: []types.Value{types.Int(6), types.Str(src), types.Str(dst), types.Int(nbytes)}},
	}
}

func urlEvent(t *testing.T, seq uint64, host string) *types.Event {
	t.Helper()
	return &types.Event{
		Topic:  "Urls",
		Schema: schemas(t)["Urls"],
		Tuple:  &types.Tuple{Seq: seq, TS: types.Timestamp(seq), Vals: []types.Value{types.Str(host)}},
	}
}

func slotInt(t *testing.T, m *VM, name string) int64 {
	t.Helper()
	v, ok := m.Slot(name)
	if !ok {
		t.Fatalf("no slot %q", name)
	}
	n, ok := v.NumAsInt()
	if !ok {
		t.Fatalf("slot %q is %s, not numeric", name, v.Kind())
	}
	return n
}

// --- tests ---

func TestArithmeticAndControlFlow(t *testing.T) {
	h := newFakeHost()
	m := compileVM(t, h, `
subscribe t to Timer;
int sum, i;
initialization { sum = 0; }
behavior {
	i = 1;
	while (i <= 10) {
		if (i % 2 == 0)
			sum += i;
		i += 1;
	}
}
`)
	if err := m.Deliver(timerEvent(t, 1)); err != nil {
		t.Fatal(err)
	}
	if got := slotInt(t, m, "sum"); got != 30 {
		t.Errorf("sum of evens 1..10 = %d, want 30", got)
	}
}

func TestCompoundAssignOperators(t *testing.T) {
	h := newFakeHost()
	m := compileVM(t, h, `
subscribe t to Timer;
int a, b, c, d, e;
behavior {
	a = 10; a += 5;
	b = 10; b -= 3;
	c = 10; c *= 4;
	d = 10; d /= 3;
	e = 10; e %= 3;
}
`)
	if err := m.Deliver(timerEvent(t, 1)); err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]int64{"a": 15, "b": 7, "c": 40, "d": 3, "e": 1} {
		if got := slotInt(t, m, name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

func TestShortCircuitEvaluation(t *testing.T) {
	h := newFakeHost()
	// Division by zero on the right side must not be evaluated when the
	// left side short-circuits.
	m := compileVM(t, h, `
subscribe t to Timer;
int zero, hits;
bool b;
behavior {
	zero = 0;
	b = false && (1 / zero == 1);
	if (!b) hits += 1;
	b = true || (1 / zero == 1);
	if (b) hits += 1;
}
`)
	if err := m.Deliver(timerEvent(t, 1)); err != nil {
		t.Fatal(err)
	}
	if got := slotInt(t, m, "hits"); got != 2 {
		t.Errorf("hits = %d, want 2 (short-circuit failed)", got)
	}
}

func TestEventFieldAccessAndCurrentTopic(t *testing.T) {
	h := newFakeHost()
	m := compileVM(t, h, `
subscribe f to Flows;
subscribe t to Timer;
int n;
string topic;
tstamp ts;
behavior {
	topic = currentTopic();
	if (topic == 'Flows') {
		n += f.nbytes;
		ts = f.tstamp;
	}
}
`)
	if err := m.Deliver(flowEvent(t, 7, "a", "b", 100)); err != nil {
		t.Fatal(err)
	}
	if err := m.Deliver(flowEvent(t, 9, "a", "b", 50)); err != nil {
		t.Fatal(err)
	}
	if err := m.Deliver(timerEvent(t, 10)); err != nil {
		t.Fatal(err)
	}
	if got := slotInt(t, m, "n"); got != 150 {
		t.Errorf("n = %d, want 150", got)
	}
	if got := slotInt(t, m, "ts"); got != 9 {
		t.Errorf("ts = %d, want 9 (insertion tstamp pseudo-attribute)", got)
	}
	v, _ := m.Slot("topic")
	if s, _ := v.AsStr(); s != "Timer" {
		t.Errorf("currentTopic after Timer event = %q", s)
	}
}

func TestFieldAccessBeforeEventErrors(t *testing.T) {
	h := newFakeHost()
	m := compileVM(t, h, `
subscribe f to Flows;
subscribe t to Timer;
int n;
behavior { n = f.nbytes; }
`)
	err := m.Deliver(timerEvent(t, 1))
	if err == nil || !strings.Contains(err.Error(), "no event received") {
		t.Errorf("expected field-before-event error, got %v", err)
	}
}

func TestSequenceBuiltins(t *testing.T) {
	h := newFakeHost()
	m := compileVM(t, h, `
subscribe t to Timer;
sequence s;
int n, size;
behavior {
	s = Sequence('a', 2, 3.5);
	append(s, 99);
	size = seqSize(s);
	n = seqElement(s, 3);
}
`)
	if err := m.Deliver(timerEvent(t, 1)); err != nil {
		t.Fatal(err)
	}
	if got := slotInt(t, m, "size"); got != 4 {
		t.Errorf("seqSize = %d", got)
	}
	if got := slotInt(t, m, "n"); got != 99 {
		t.Errorf("seqElement(3) = %d", got)
	}
}

func TestMapBuiltins(t *testing.T) {
	h := newFakeHost()
	m := compileVM(t, h, `
subscribe t to Timer;
map T;
identifier id;
int size, v, removedSize;
bool has, hasAfter;
initialization { T = Map(int); }
behavior {
	id = Identifier('key1');
	insert(T, id, 10);
	insert(T, Identifier('key2'), 20);
	has = hasEntry(T, id);
	v = lookup(T, id);
	size = mapSize(T);
	remove(T, id);
	hasAfter = hasEntry(T, id);
	removedSize = mapSize(T);
}
`)
	if err := m.Deliver(timerEvent(t, 1)); err != nil {
		t.Fatal(err)
	}
	if got := slotInt(t, m, "v"); got != 10 {
		t.Errorf("lookup = %d", got)
	}
	if got := slotInt(t, m, "size"); got != 2 {
		t.Errorf("mapSize = %d", got)
	}
	if got := slotInt(t, m, "removedSize"); got != 1 {
		t.Errorf("size after remove = %d", got)
	}
	vHas, _ := m.Slot("has")
	vHasAfter, _ := m.Slot("hasAfter")
	if b, _ := vHas.AsBool(); !b {
		t.Error("hasEntry before remove should be true")
	}
	if b, _ := vHasAfter.AsBool(); b {
		t.Error("hasEntry after remove should be false")
	}
}

func TestIteratorOverMap(t *testing.T) {
	h := newFakeHost()
	m := compileVM(t, h, `
subscribe t to Timer;
map T;
iterator i;
identifier id;
int sum;
initialization {
	T = Map(int);
	insert(T, Identifier('a'), 1);
	insert(T, Identifier('b'), 2);
	insert(T, Identifier('c'), 4);
}
behavior {
	i = Iterator(T);
	while (hasNext(i)) {
		id = next(i);
		sum += lookup(T, id);
	}
}
`)
	if err := m.Deliver(timerEvent(t, 1)); err != nil {
		t.Fatal(err)
	}
	if got := slotInt(t, m, "sum"); got != 7 {
		t.Errorf("sum over map = %d, want 7", got)
	}
}

func TestWindowBuiltinsRowsAndTime(t *testing.T) {
	h := newFakeHost()
	m := compileVM(t, h, `
subscribe t to Timer;
window w, tw;
int n, tn;
initialization {
	w = Window(int, ROWS, 3);
	tw = Window(int, SECS, 10);
}
behavior {
	append(w, 1); append(w, 2); append(w, 3); append(w, 4);
	n = winSize(w);
	append(tw, 7);
	tn = winSize(tw);
}
`)
	if err := m.Deliver(timerEvent(t, 1)); err != nil {
		t.Fatal(err)
	}
	if got := slotInt(t, m, "n"); got != 3 {
		t.Errorf("row window size = %d, want 3", got)
	}
	if got := slotInt(t, m, "tn"); got != 1 {
		t.Errorf("time window size = %d, want 1", got)
	}
	// Advance the clock past the window span: winSize must expire entries.
	h.clock = h.clock.Add(11_000_000_000) // +11s
	m2src := m                            // reuse: deliver again, but only check tw via winSize
	if err := m2src.Deliver(timerEvent(t, 2)); err != nil {
		t.Fatal(err)
	}
	// After this delivery tw got one fresh element appended; the stale one
	// from the first delivery must be gone.
	if got := slotInt(t, m, "tn"); got != 1 {
		t.Errorf("time window after expiry = %d, want 1", got)
	}
}

func TestPublishFlattensSequencesAndEvents(t *testing.T) {
	h := newFakeHost()
	m := compileVM(t, h, `
subscribe f to Flows;
behavior {
	publish('T', Sequence(f.srcip, f.nbytes));
	publish('U', f.nbytes, 7);
	publish('V', f);
}
`)
	if err := m.Deliver(flowEvent(t, 1, "10.0.0.1", "d", 123)); err != nil {
		t.Fatal(err)
	}
	if len(h.published) != 3 {
		t.Fatalf("published %d", len(h.published))
	}
	p := h.published[0]
	if p.topic != "T" || len(p.vals) != 2 || p.vals[1].String() != "123" {
		t.Errorf("publish seq = %+v", p)
	}
	p = h.published[1]
	if p.topic != "U" || len(p.vals) != 2 || p.vals[0].String() != "123" || p.vals[1].String() != "7" {
		t.Errorf("publish scalars = %+v", p)
	}
	p = h.published[2]
	if p.topic != "V" || len(p.vals) != 4 {
		t.Errorf("publish event should flatten to attrs: %+v", p)
	}
}

func TestSendDeliversValues(t *testing.T) {
	h := newFakeHost()
	m := compileVM(t, h, `
subscribe f to Flows;
sequence s;
behavior {
	s = Sequence(f.dstip, f.nbytes);
	send(s, 100, 'limit exceeded');
}
`)
	if err := m.Deliver(flowEvent(t, 1, "s", "8.8.8.8", 500)); err != nil {
		t.Fatal(err)
	}
	if len(h.sent) != 1 {
		t.Fatalf("sent %d", len(h.sent))
	}
	vals := h.sent[0]
	if len(vals) != 3 {
		t.Fatalf("send arity = %d", len(vals))
	}
	if seq := vals[0].Seq(); seq == nil || seq.At(0).String() != "8.8.8.8" {
		t.Errorf("send[0] = %v", vals[0])
	}
	if vals[2].String() != "limit exceeded" {
		t.Errorf("send[2] = %v", vals[2])
	}
}

func TestTimeBuiltins(t *testing.T) {
	h := newFakeHost()
	h.clock = 5_000_000_000
	m := compileVM(t, h, `
subscribe t to Timer;
tstamp start;
int diff, hour, day;
behavior {
	start = tstampNow();
	diff = tstampDiff(tstampNow(), start);
	hour = hourInDay(start);
	day = dayInWeek(start);
}
`)
	if err := m.Deliver(timerEvent(t, 1)); err != nil {
		t.Fatal(err)
	}
	if got := slotInt(t, m, "start"); got != 5_000_000_000 {
		t.Errorf("tstampNow = %d", got)
	}
	if got := slotInt(t, m, "diff"); got != 0 {
		t.Errorf("tstampDiff = %d", got)
	}
	// 1970-01-01T00:00:05Z is hour 0, Thursday (4).
	if got := slotInt(t, m, "hour"); got != 0 {
		t.Errorf("hourInDay = %d", got)
	}
	if got := slotInt(t, m, "day"); got != 4 {
		t.Errorf("dayInWeek = %d", got)
	}
}

func TestConversionsAndMath(t *testing.T) {
	h := newFakeHost()
	m := compileVM(t, h, `
subscribe t to Timer;
real r, sq, pw;
int i, a, mn, mx;
behavior {
	r = float(7) / 2.0;
	i = int(3.9);
	a = abs(0 - 5);
	mn = min(3, 9);
	mx = max(3, 9);
	sq = sqrt(16.0);
	pw = pow(2.0, 10.0);
}
`)
	if err := m.Deliver(timerEvent(t, 1)); err != nil {
		t.Fatal(err)
	}
	v, _ := m.Slot("r")
	if f, _ := v.AsReal(); f != 3.5 {
		t.Errorf("float div = %v", f)
	}
	if got := slotInt(t, m, "i"); got != 3 {
		t.Errorf("int(3.9) = %d", got)
	}
	if got := slotInt(t, m, "a"); got != 5 {
		t.Errorf("abs = %d", got)
	}
	if slotInt(t, m, "mn") != 3 || slotInt(t, m, "mx") != 9 {
		t.Error("min/max wrong")
	}
	v, _ = m.Slot("sq")
	if f, _ := v.AsReal(); f != 4.0 {
		t.Errorf("sqrt = %v", f)
	}
	v, _ = m.Slot("pw")
	if f, _ := v.AsReal(); f != 1024.0 {
		t.Errorf("pow = %v", f)
	}
}

func TestPrintAndStringConcat(t *testing.T) {
	h := newFakeHost()
	m := compileVM(t, h, `
subscribe t to Timer;
behavior {
	print(String('value: ', 42, ' / ', 2.5));
	print('a', 'b');
}
`)
	if err := m.Deliver(timerEvent(t, 1)); err != nil {
		t.Fatal(err)
	}
	if len(h.printed) != 2 {
		t.Fatalf("printed %d lines", len(h.printed))
	}
	if h.printed[0] != "value: 42 / 2.5" {
		t.Errorf("String concat = %q", h.printed[0])
	}
	if h.printed[1] != "a b" {
		t.Errorf("print join = %q", h.printed[1])
	}
}

func TestDeleteClearsAggregates(t *testing.T) {
	h := newFakeHost()
	m := compileVM(t, h, `
subscribe t to Timer;
map T;
window w;
int msize, wsize;
initialization {
	T = Map(int);
	w = Window(int, ROWS, 8);
}
behavior {
	insert(T, Identifier('x'), 1);
	append(w, 1);
	delete(T);
	delete(w);
	msize = mapSize(T);
	wsize = winSize(w);
}
`)
	if err := m.Deliver(timerEvent(t, 1)); err != nil {
		t.Fatal(err)
	}
	if slotInt(t, m, "msize") != 0 || slotInt(t, m, "wsize") != 0 {
		t.Error("delete() should clear aggregates")
	}
}

func TestAssociationOps(t *testing.T) {
	h := newFakeHost()
	h.assocs["Allowances"] = types.NewMap(types.KindNil)
	_ = h.assocs["Allowances"].Insert("8.8.8.8",
		types.SeqV(types.NewSequence(types.Str("8.8.8.8"), types.Int(1000))))
	h.assocs["BWUsage"] = types.NewMap(types.KindNil)

	// The paper's Fig. 4 bandwidth automaton (attribute names per Fig. 3).
	m := compileVM(t, h, `
subscribe f to Flows;
associate a with Allowances;
associate b with BWUsage;
int n, limit;
identifier ip;
sequence s;
behavior {
	ip = Identifier(f.dstip);
	if (hasEntry(a, ip)) {
		limit = seqElement(lookup(a, ip), 1);
		if (hasEntry(b, ip))
			n = seqElement(lookup(b, ip), 1);
		else
			n = 0;
		n += f.nbytes;
		s = Sequence(f.dstip, n);
		if (n > limit)
			send(s, limit, 'limit exceeded');
		insert(b, ip, s);
	}
}
`)
	// Unmonitored destination: ignored.
	if err := m.Deliver(flowEvent(t, 1, "10.0.0.1", "1.1.1.1", 500)); err != nil {
		t.Fatal(err)
	}
	if h.assocs["BWUsage"].Size() != 0 {
		t.Error("unmonitored flow should not record usage")
	}
	// Monitored destination accumulates.
	if err := m.Deliver(flowEvent(t, 2, "10.0.0.1", "8.8.8.8", 600)); err != nil {
		t.Fatal(err)
	}
	if len(h.sent) != 0 {
		t.Error("no notification below the limit")
	}
	if err := m.Deliver(flowEvent(t, 3, "10.0.0.1", "8.8.8.8", 600)); err != nil {
		t.Fatal(err)
	}
	if len(h.sent) != 1 {
		t.Fatalf("limit exceeded should notify once, sent=%d", len(h.sent))
	}
	row, ok := h.assocs["BWUsage"].Lookup("8.8.8.8")
	if !ok {
		t.Fatal("usage row missing")
	}
	if n, _ := row.Seq().At(1).AsInt(); n != 1200 {
		t.Errorf("accumulated usage = %d, want 1200", n)
	}
}

func TestFrequentBuiltinMatchesMisraGries(t *testing.T) {
	h := newFakeHost()
	m := compileVM(t, h, `
subscribe e to Urls;
map T;
int k;
initialization {
	k = 4;
	T = Map(int);
}
behavior { frequent(T, Identifier(e.host), k); }
`)
	// Stream where "heavy" occurs > n/k times.
	stream := []string{
		"heavy", "a", "heavy", "b", "heavy", "c", "heavy", "d",
		"heavy", "e", "heavy", "f", "heavy", "g", "heavy", "h",
	}
	for i, hst := range stream {
		if err := m.Deliver(urlEvent(t, uint64(i+1), hst)); err != nil {
			t.Fatal(err)
		}
	}
	v, _ := m.Slot("T")
	mp := v.Map()
	if mp == nil {
		t.Fatal("T is not a map")
	}
	// Misra-Gries guarantee: any item with frequency > n/k must be present.
	// heavy appears 8 times in 16 events; n/k = 4 -> must be present.
	if !mp.Has("heavy") {
		t.Errorf("frequent lost the heavy hitter; summary = %s", mp)
	}
	if mp.Size() > 3 {
		t.Errorf("summary holds %d > k-1 entries", mp.Size())
	}
}

func TestLsfBuiltin(t *testing.T) {
	h := newFakeHost()
	m := compileVM(t, h, `
subscribe t to Timer;
window w;
sequence fit;
real slope, icept;
initialization { w = Window(sequence, ROWS, 16); }
behavior {
	append(w, Sequence(0, 1.0));
	append(w, Sequence(1, 3.0));
	append(w, Sequence(2, 5.0));
	append(w, Sequence(3, 7.0));
	fit = lsf(w);
	slope = seqElement(fit, 0);
	icept = seqElement(fit, 1);
}
`)
	if err := m.Deliver(timerEvent(t, 1)); err != nil {
		t.Fatal(err)
	}
	v, _ := m.Slot("slope")
	if f, _ := v.AsReal(); f < 1.999 || f > 2.001 {
		t.Errorf("slope = %v, want 2", f)
	}
	v, _ = m.Slot("icept")
	if f, _ := v.AsReal(); f < 0.999 || f > 1.001 {
		t.Errorf("intercept = %v, want 1", f)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"lookup missing", `subscribe t to Timer; map T; int v;
			initialization { T = Map(int); }
			behavior { v = lookup(T, Identifier('x')); }`, "no entry"},
		{"seq out of range", `subscribe t to Timer; sequence s; int v;
			behavior { s = Sequence(1); v = seqElement(s, 5); }`, "out of range"},
		{"div by zero", `subscribe t to Timer; int z, v;
			behavior { z = 0; v = 1 / z; }`, "zero"},
		{"iterator on int", `subscribe t to Timer; iterator i; int x;
			behavior { x = 1; i = Iterator(x); }`, "Iterator"},
		{"append on int", `subscribe t to Timer; int x;
			behavior { x = 1; append(x, 2); }`, "append"},
		{"bad window constraint", `subscribe t to Timer; window w;
			behavior { w = Window(int, ROWS, 0); }`, "positive"},
		{"assoc missing table", `subscribe t to Timer; associate a with NoTable; int n;
			behavior { n = mapSize(a); }`, "no such table"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			h := newFakeHost()
			m := compileVM(t, h, tt.src)
			err := m.Deliver(timerEvent(t, 1))
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Errorf("want error containing %q, got %v", tt.want, err)
			}
		})
	}
}

func TestMaxStepsGuard(t *testing.T) {
	h := newFakeHost()
	c, err := gapl.Compile(`
subscribe t to Timer;
behavior { while (true) { } }
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Bind(schemas(t)); err != nil {
		t.Fatal(err)
	}
	m, err := New(c, h)
	if err != nil {
		t.Fatal(err)
	}
	m.MaxSteps = 1000
	err = m.Deliver(timerEvent(t, 1))
	if err == nil || !strings.Contains(err.Error(), "steps") {
		t.Errorf("infinite loop should trip MaxSteps, got %v", err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, newFakeHost()); err == nil {
		t.Error("nil program rejected")
	}
	c, _ := gapl.Compile(minSrc)
	// Unbound program rejected.
	if _, err := New(c, newFakeHost()); err == nil {
		t.Error("unbound program rejected")
	}
}

const minSrc = `
subscribe t to Timer;
behavior { print('x'); }
`

func TestDeliverUnknownTopic(t *testing.T) {
	h := newFakeHost()
	m := compileVM(t, h, minSrc)
	err := m.Deliver(flowEvent(t, 1, "a", "b", 1))
	if err == nil || !strings.Contains(err.Error(), "not subscribed") {
		t.Errorf("unknown topic: %v", err)
	}
}

func TestDuplicateTopicSubscriptionRejected(t *testing.T) {
	h := newFakeHost()
	c, err := gapl.Compile(`
subscribe a to Timer;
subscribe b to Timer;
behavior { print('x'); }
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Bind(schemas(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := New(c, h); err == nil {
		t.Error("duplicate topic subscription should be rejected")
	}
}
