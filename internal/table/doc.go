// Package table implements the cache's two storage engines: ephemeral
// stream tables backed by a circular in-memory buffer (the reason the
// system is called "the Cache") and persistent relational tables stored in
// the heap and keyed on a primary-key column with on-duplicate-key-update
// semantics (§3 of the paper).
//
// # Concurrency and ordering contract
//
// Both engines are internally thread-safe: every method takes the table's
// own RWMutex, so raw reads (Scan, Len, Get) may run concurrently with
// writes from any goroutine. Ordering, however, is NOT this package's job.
// A table stores tuples in the order Insert/InsertBatch calls reach it;
// it is the cache's per-topic commit domain — which calls InsertBatch
// with the domain lock held — that makes this order the topic's committed
// time-of-insertion order (§5) and keeps it consistent with what
// subscribers observe. Writing to a table without going through the
// cache commit path stores data but bypasses sequence assignment and
// publication, and is only appropriate in tests.
//
// InsertBatch is the bulk arm of the batch-first commit pipeline: the
// whole run is absorbed inside a single critical section — ephemeral
// rings advance their head once, persistent tables apply the run of
// upserts in slice order (a later duplicate key in the same batch wins,
// exactly as sequential Inserts would).
//
// Scan and ScanSince iterate over an internal snapshot, so the callback
// may itself call back into the table (or commit through the cache)
// without deadlocking.
package table
