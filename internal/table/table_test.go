package table

import (
	"fmt"
	"testing"
	"testing/quick"

	"unicache/internal/types"
)

func streamSchema(t *testing.T) *types.Schema {
	t.Helper()
	s, err := types.NewSchema("S", false, -1,
		types.Column{Name: "v", Type: types.ColInt})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func kvSchema(t *testing.T) *types.Schema {
	t.Helper()
	s, err := types.NewSchema("KV", true, 0,
		types.Column{Name: "k", Type: types.ColVarchar},
		types.Column{Name: "v", Type: types.ColInt})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func tup(seq uint64, ts types.Timestamp, vals ...types.Value) *types.Tuple {
	return &types.Tuple{Seq: seq, TS: ts, Vals: vals}
}

func TestEphemeralBasics(t *testing.T) {
	e, err := NewEphemeral(streamSchema(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	if e.Capacity() != 4 {
		t.Fatalf("Capacity = %d", e.Capacity())
	}
	for i := 1; i <= 3; i++ {
		if _, err := e.Insert(tup(uint64(i), types.Timestamp(i), types.Int(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	if e.Len() != 3 {
		t.Fatalf("Len = %d, want 3", e.Len())
	}
	var got []int64
	e.Scan(func(tp *types.Tuple) bool {
		n, _ := tp.Vals[0].AsInt()
		got = append(got, n)
		return true
	})
	for i, n := range got {
		if n != int64(i+1) {
			t.Fatalf("scan order wrong: %v", got)
		}
	}
}

func TestEphemeralRingEviction(t *testing.T) {
	e, _ := NewEphemeral(streamSchema(t), 3)
	for i := 1; i <= 7; i++ {
		_, _ = e.Insert(tup(uint64(i), types.Timestamp(i), types.Int(int64(i))))
	}
	if e.Len() != 3 {
		t.Fatalf("Len = %d, want 3", e.Len())
	}
	var got []int64
	e.Scan(func(tp *types.Tuple) bool {
		n, _ := tp.Vals[0].AsInt()
		got = append(got, n)
		return true
	})
	want := []int64{5, 6, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ring contents = %v, want %v", got, want)
		}
	}
}

func TestEphemeralScanEarlyStopAndSince(t *testing.T) {
	e, _ := NewEphemeral(streamSchema(t), 8)
	for i := 1; i <= 5; i++ {
		_, _ = e.Insert(tup(uint64(i), types.Timestamp(i*10), types.Int(int64(i))))
	}
	count := 0
	e.Scan(func(*types.Tuple) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("early stop scan visited %d", count)
	}
	var since []int64
	e.ScanSince(30, func(tp *types.Tuple) bool {
		n, _ := tp.Vals[0].AsInt()
		since = append(since, n)
		return true
	})
	// TS 30 itself excluded (strictly greater).
	if len(since) != 2 || since[0] != 4 || since[1] != 5 {
		t.Errorf("ScanSince = %v, want [4 5]", since)
	}
}

func TestEphemeralValidation(t *testing.T) {
	if _, err := NewEphemeral(nil, 4); err == nil {
		t.Error("nil schema should be rejected")
	}
	ps := kvSchema(t)
	if _, err := NewEphemeral(ps, 4); err == nil {
		t.Error("persistent schema should be rejected by ephemeral store")
	}
	e, _ := NewEphemeral(streamSchema(t), 0)
	if e.Capacity() != DefaultEphemeralCapacity {
		t.Error("default capacity not applied")
	}
	if _, err := e.Insert(nil); err == nil {
		t.Error("nil tuple should be rejected")
	}
}

func TestPersistentUpsert(t *testing.T) {
	p, err := NewPersistent(kvSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	replaced, err := p.Insert(tup(1, 10, types.Str("a"), types.Int(1)))
	if err != nil || replaced {
		t.Fatalf("first insert replaced=%v err=%v", replaced, err)
	}
	replaced, err = p.Insert(tup(2, 20, types.Str("b"), types.Int(2)))
	if err != nil || replaced {
		t.Fatal("second insert should not replace")
	}
	if p.Len() != 2 {
		t.Fatalf("Len = %d, want 2", p.Len())
	}
	// Duplicate key updates.
	replaced, err = p.Insert(tup(3, 30, types.Str("a"), types.Int(100)))
	if err != nil || !replaced {
		t.Fatalf("upsert replaced=%v err=%v", replaced, err)
	}
	if p.Len() != 2 {
		t.Fatalf("Len after upsert = %d, want 2", p.Len())
	}
	row, ok := p.Get("a")
	if !ok {
		t.Fatal("row a missing")
	}
	if n, _ := row.Vals[1].AsInt(); n != 100 {
		t.Errorf("upsert value = %d, want 100", n)
	}
	// Temporal order: "a" was updated last, so it scans after "b".
	keys := p.Keys()
	if len(keys) != 2 || keys[0] != "b" || keys[1] != "a" {
		t.Errorf("temporal order = %v, want [b a]", keys)
	}
}

func TestPersistentDelete(t *testing.T) {
	p, _ := NewPersistent(kvSchema(t))
	_, _ = p.Insert(tup(1, 1, types.Str("a"), types.Int(1)))
	if !p.Delete("a") {
		t.Error("delete existing should report true")
	}
	if p.Delete("a") {
		t.Error("delete absent should report false")
	}
	if p.Len() != 0 || p.Has("a") {
		t.Error("row not deleted")
	}
}

func TestPersistentCompaction(t *testing.T) {
	p, _ := NewPersistent(kvSchema(t))
	const rounds = 500
	for i := 0; i < rounds; i++ {
		key := fmt.Sprintf("k%d", i%5)
		_, err := p.Insert(tup(uint64(i), types.Timestamp(i), types.Str(key), types.Int(int64(i))))
		if err != nil {
			t.Fatal(err)
		}
	}
	if p.Len() != 5 {
		t.Fatalf("Len = %d, want 5", p.Len())
	}
	// order slice must have been compacted well below rounds entries.
	if len(p.order) > 64 {
		t.Errorf("order not compacted: %d entries", len(p.order))
	}
	// Every key holds its latest value.
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("k%d", i)
		row, ok := p.Get(key)
		if !ok {
			t.Fatalf("missing %s", key)
		}
		want := int64(rounds - 5 + i)
		if n, _ := row.Vals[1].AsInt(); n != want {
			t.Errorf("%s = %d, want %d", key, n, want)
		}
	}
}

func TestPersistentScanSince(t *testing.T) {
	p, _ := NewPersistent(kvSchema(t))
	_, _ = p.Insert(tup(1, 10, types.Str("a"), types.Int(1)))
	_, _ = p.Insert(tup(2, 20, types.Str("b"), types.Int(2)))
	var got []string
	p.ScanSince(10, func(tp *types.Tuple) bool {
		s, _ := tp.Vals[0].AsStr()
		got = append(got, s)
		return true
	})
	if len(got) != 1 || got[0] != "b" {
		t.Errorf("ScanSince = %v, want [b]", got)
	}
}

func TestPersistentValidation(t *testing.T) {
	if _, err := NewPersistent(nil); err == nil {
		t.Error("nil schema rejected")
	}
	if _, err := NewPersistent(streamSchema(t)); err == nil {
		t.Error("ephemeral schema should be rejected by persistent store")
	}
	p, _ := NewPersistent(kvSchema(t))
	if _, err := p.Insert(nil); err == nil {
		t.Error("nil tuple rejected")
	}
	if _, err := p.Insert(tup(1, 1, types.Str("a"))); err == nil {
		t.Error("arity mismatch rejected")
	}
}

func TestNewDispatch(t *testing.T) {
	tb, err := New(kvSchema(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tb.(*Persistent); !ok {
		t.Error("persistent schema should build Persistent")
	}
	tb, err = New(streamSchema(t), 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tb.(*Ephemeral); !ok {
		t.Error("stream schema should build Ephemeral")
	}
}

// Property: ephemeral ring always returns the last min(n, cap) tuples in
// insertion order.
func TestEphemeralRingProperty(t *testing.T) {
	schema := streamSchema(t)
	f := func(capRaw uint8, nRaw uint16) bool {
		capacity := int(capRaw%32) + 1
		n := int(nRaw % 200)
		e, err := NewEphemeral(schema, capacity)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if _, err := e.Insert(tup(uint64(i), types.Timestamp(i), types.Int(int64(i)))); err != nil {
				return false
			}
		}
		want := n
		if want > capacity {
			want = capacity
		}
		if e.Len() != want {
			return false
		}
		expect := int64(n - want)
		ok := true
		e.Scan(func(tp *types.Tuple) bool {
			v, _ := tp.Vals[0].AsInt()
			if v != expect {
				ok = false
				return false
			}
			expect++
			return true
		})
		return ok && expect == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: persistent table behaves as a map from key to latest value.
func TestPersistentMapEquivalenceProperty(t *testing.T) {
	schema := kvSchema(t)
	f := func(ops []uint16) bool {
		p, err := NewPersistent(schema)
		if err != nil {
			return false
		}
		ref := map[string]int64{}
		for i, op := range ops {
			key := fmt.Sprintf("k%d", op%16)
			if op%5 == 0 {
				p.Delete(key)
				delete(ref, key)
				continue
			}
			if _, err := p.Insert(tup(uint64(i), types.Timestamp(i),
				types.Str(key), types.Int(int64(i)))); err != nil {
				return false
			}
			ref[key] = int64(i)
		}
		if p.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			row, ok := p.Get(k)
			if !ok {
				return false
			}
			if n, _ := row.Vals[1].AsInt(); n != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// --- InsertBatch -----------------------------------------------------------

func scanInts(tb Table) []int64 {
	var out []int64
	tb.Scan(func(t *types.Tuple) bool {
		n, _ := t.Vals[len(t.Vals)-1].AsInt()
		out = append(out, n)
		return true
	})
	return out
}

func intTups(from, n int) []*types.Tuple {
	out := make([]*types.Tuple, n)
	for i := range out {
		out[i] = tup(uint64(from+i), types.Timestamp(from+i), types.Int(int64(from+i)))
	}
	return out
}

// TestEphemeralInsertBatch cross-checks InsertBatch against sequential
// Inserts at every (preload, batch) combination around the ring boundary.
func TestEphemeralInsertBatch(t *testing.T) {
	const capacity = 8
	for preload := 0; preload <= capacity; preload++ {
		for batch := 0; batch <= 2*capacity+1; batch++ {
			batched, err := NewEphemeral(streamSchema(t), capacity)
			if err != nil {
				t.Fatal(err)
			}
			sequential, _ := NewEphemeral(streamSchema(t), capacity)
			for _, tp := range intTups(1, preload) {
				_, _ = batched.Insert(tp)
				_, _ = sequential.Insert(tp)
			}
			run := intTups(preload+1, batch)
			if err := batched.InsertBatch(run); err != nil {
				t.Fatalf("preload=%d batch=%d: %v", preload, batch, err)
			}
			for _, tp := range run {
				_, _ = sequential.Insert(tp)
			}
			got, want := scanInts(batched), scanInts(sequential)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("preload=%d batch=%d: batch scan %v, sequential scan %v",
					preload, batch, got, want)
			}
		}
	}
}

func TestEphemeralInsertBatchNilTuple(t *testing.T) {
	e, err := NewEphemeral(streamSchema(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.InsertBatch([]*types.Tuple{tup(1, 1, types.Int(1)), nil}); err == nil {
		t.Fatal("nil tuple in batch should error")
	}
	if e.Len() != 0 {
		t.Fatalf("failed batch must not partially apply, Len = %d", e.Len())
	}
}

// TestPersistentInsertBatch checks that a batch with duplicate keys behaves
// exactly like sequential upserts: the later row wins and order reflects
// the latest update.
func TestPersistentInsertBatch(t *testing.T) {
	p, err := NewPersistent(kvSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	batch := []*types.Tuple{
		tup(1, 10, types.Str("a"), types.Int(1)),
		tup(2, 20, types.Str("b"), types.Int(2)),
		tup(3, 30, types.Str("a"), types.Int(3)),
	}
	if err := p.InsertBatch(batch); err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 {
		t.Fatalf("Len = %d, want 2", p.Len())
	}
	row, ok := p.Get("a")
	if !ok {
		t.Fatal("key a missing")
	}
	if n, _ := row.Vals[1].AsInt(); n != 3 {
		t.Fatalf("a = %d, want the batch's later value 3", n)
	}
	if got := fmt.Sprint(p.Keys()); got != "[b a]" {
		t.Fatalf("Keys = %v, want [b a] (a refreshed by its update)", got)
	}
	if err := p.InsertBatch([]*types.Tuple{tup(4, 40, types.Str("c"))}); err == nil {
		t.Fatal("arity mismatch in batch should error")
	}
}

// TestScanOrderedDeterministic pins the key-ordered scan that snapshot
// encoding depends on: whatever order keys were inserted or upserted in,
// ScanOrdered yields them in ascending key order, and repeated scans of
// the same state yield identical sequences (no map-iteration leakage).
func TestScanOrderedDeterministic(t *testing.T) {
	orders := [][]int{
		{0, 1, 2, 3, 4, 5, 6, 7},
		{7, 6, 5, 4, 3, 2, 1, 0},
		{3, 0, 7, 1, 6, 2, 5, 4},
	}
	var dumps []string
	for _, order := range orders {
		p, err := NewPersistent(kvSchema(t))
		if err != nil {
			t.Fatal(err)
		}
		seq := uint64(0)
		for round := 0; round < 2; round++ { // second round upserts every key
			for _, i := range order {
				seq++
				if _, err := p.Insert(tup(seq, types.Timestamp(seq),
					types.Str(fmt.Sprintf("k%02d", i)), types.Int(int64(100*round+i)))); err != nil {
					t.Fatal(err)
				}
			}
		}
		var got []string
		prev := ""
		p.ScanOrdered(func(tp *types.Tuple) bool {
			k := p.KeyOf(tp)
			if prev != "" && k <= prev {
				t.Fatalf("ScanOrdered out of order: %q after %q", k, prev)
			}
			prev = k
			v, _ := tp.Vals[1].AsInt()
			got = append(got, fmt.Sprintf("%s=%d", k, v))
			return true
		})
		if len(got) != 8 {
			t.Fatalf("ScanOrdered visited %d rows, want 8", len(got))
		}
		dumps = append(dumps, fmt.Sprint(got))
	}
	// Same final logical state regardless of insertion order -> same scan.
	for i := 1; i < len(dumps); i++ {
		if dumps[i] != dumps[0] {
			t.Fatalf("ScanOrdered depends on insertion order:\n%s\nvs\n%s", dumps[0], dumps[i])
		}
	}
}

// TestScanOrderedEarlyStop: returning false stops the scan.
func TestScanOrderedEarlyStop(t *testing.T) {
	p, err := NewPersistent(kvSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := p.Insert(tup(uint64(i+1), 1, types.Str(fmt.Sprintf("k%d", i)), types.Int(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	p.ScanOrdered(func(*types.Tuple) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("scan visited %d rows after early stop, want 2", n)
	}
}
