package table

import (
	"fmt"
	"sort"
	"sync"

	"unicache/internal/types"
)

// DefaultEphemeralCapacity is the ring-buffer size used when a caller does
// not specify one.
const DefaultEphemeralCapacity = 16384

// Table is the common interface over both storage engines.
type Table interface {
	// Schema returns the table's schema.
	Schema() *types.Schema
	// Insert stores the (already coerced) tuple. For persistent tables an
	// existing row with the same primary key is updated in place; replaced
	// reports whether an update occurred.
	Insert(t *types.Tuple) (replaced bool, err error)
	// InsertBatch stores a run of (already coerced) tuples under one lock
	// acquisition, in slice order. It is the bulk arm of the batch-first
	// commit pipeline: ephemeral tables advance the ring head once,
	// persistent tables upsert the whole run inside a single critical
	// section.
	InsertBatch(ts []*types.Tuple) error
	// Len returns the number of rows currently held.
	Len() int
	// Scan calls fn for each row in time-of-insertion order (the default
	// retrieval order, §3). Iteration stops early if fn returns false.
	Scan(fn func(*types.Tuple) bool)
	// ScanSince is Scan restricted to rows with TS strictly greater than
	// since (the `select ... since τ` operator).
	ScanSince(since types.Timestamp, fn func(*types.Tuple) bool)
}

// Ephemeral is an append-only stream table stored in a circular buffer;
// its implicit primary key is the time of insertion. When the buffer is
// full the oldest tuple is overwritten.
type Ephemeral struct {
	mu     sync.RWMutex
	schema *types.Schema
	buf    []*types.Tuple
	head   int // index of oldest element
	n      int // number of live elements
}

var _ Table = (*Ephemeral)(nil)

// NewEphemeral creates a stream table with the given ring capacity
// (DefaultEphemeralCapacity if capacity <= 0).
func NewEphemeral(schema *types.Schema, capacity int) (*Ephemeral, error) {
	if schema == nil {
		return nil, fmt.Errorf("ephemeral table needs a schema")
	}
	if schema.Persistent {
		return nil, fmt.Errorf("table %s: persistent schema given to ephemeral store", schema.Name)
	}
	if capacity <= 0 {
		capacity = DefaultEphemeralCapacity
	}
	return &Ephemeral{schema: schema, buf: make([]*types.Tuple, capacity)}, nil
}

// Schema implements Table.
func (e *Ephemeral) Schema() *types.Schema { return e.schema }

// Capacity returns the ring-buffer capacity.
func (e *Ephemeral) Capacity() int { return len(e.buf) }

// Insert implements Table. It never replaces by key; replaced is always
// false. The oldest tuple is evicted when the ring is full.
//
// Pooled tuples: storing transfers one reference from the caller to the
// ring; eviction releases it. The cache commit path retains each pooled
// tuple before inserting. No-op for unpooled tuples.
func (e *Ephemeral) Insert(t *types.Tuple) (bool, error) {
	if t == nil {
		return false, fmt.Errorf("table %s: nil tuple", e.schema.Name)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.n == len(e.buf) {
		// Overwrite oldest, dropping the ring's reference on it.
		e.buf[e.head].Release()
		e.buf[e.head] = t
		e.head = (e.head + 1) % len(e.buf)
		return false, nil
	}
	e.buf[(e.head+e.n)%len(e.buf)] = t
	e.n++
	return false, nil
}

// InsertBatch implements Table: one lock acquisition and one head advance
// for the whole run. When the run is at least as large as the ring only the
// newest capacity-many tuples survive (the older ones would have been
// evicted anyway).
func (e *Ephemeral) InsertBatch(ts []*types.Tuple) error {
	if len(ts) == 0 {
		return nil
	}
	for _, t := range ts {
		if t == nil {
			return fmt.Errorf("table %s: nil tuple", e.schema.Name)
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	capacity := len(e.buf)
	if len(ts) >= capacity {
		// Everything currently stored is evicted, and the run's own oldest
		// tuples never make it into the ring: release the ring's reference
		// on all of them (no-op for unpooled tuples).
		for i := 0; i < e.n; i++ {
			e.buf[(e.head+i)%capacity].Release()
		}
		for _, t := range ts[:len(ts)-capacity] {
			t.Release()
		}
		copy(e.buf, ts[len(ts)-capacity:])
		e.head = 0
		e.n = capacity
		return nil
	}
	// Release the oldest tuples the incoming run will overwrite before the
	// segment copies land on their slots.
	if over := e.n + len(ts) - capacity; over > 0 {
		for i := 0; i < over; i++ {
			e.buf[(e.head+i)%capacity].Release()
		}
	}
	// Copy in at most two contiguous segments, then advance head/n once.
	tail := (e.head + e.n) % capacity
	first := copy(e.buf[tail:], ts)
	copy(e.buf, ts[first:])
	total := e.n + len(ts)
	if total > capacity {
		e.head = (e.head + total - capacity) % capacity
		e.n = capacity
	} else {
		e.n = total
	}
	return nil
}

// Len implements Table.
func (e *Ephemeral) Len() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.n
}

// Scan implements Table. The snapshot is taken under the read lock and
// iterated outside it; each snapshotted tuple is retained for the duration
// (eviction needs the write lock, so the ring's reference is live at retain
// time) and released when the scan finishes — a concurrent insert can evict
// a snapshot row but never recycle its pooled storage mid-scan.
func (e *Ephemeral) Scan(fn func(*types.Tuple) bool) {
	e.mu.RLock()
	snapshot := make([]*types.Tuple, 0, e.n)
	for i := 0; i < e.n; i++ {
		t := e.buf[(e.head+i)%len(e.buf)]
		t.Retain()
		snapshot = append(snapshot, t)
	}
	e.mu.RUnlock()
	defer func() {
		for _, t := range snapshot {
			t.Release()
		}
	}()
	for _, t := range snapshot {
		if !fn(t) {
			return
		}
	}
}

// ScanSince implements Table.
func (e *Ephemeral) ScanSince(since types.Timestamp, fn func(*types.Tuple) bool) {
	e.Scan(func(t *types.Tuple) bool {
		if t.TS <= since {
			return true
		}
		return fn(t)
	})
}

// Persistent is a time-varying relation stored in the heap, keyed on the
// schema's primary-key column. Inserting a duplicate key updates the row
// (the paper's `on duplicate key update` modifier) and refreshes its
// position in the temporal order.
type Persistent struct {
	mu     sync.RWMutex
	schema *types.Schema
	rows   map[string]*types.Tuple
	order  []*types.Tuple // temporal order; may contain superseded entries
	dead   int
}

var _ Table = (*Persistent)(nil)

// NewPersistent creates a persistent table for the given schema.
func NewPersistent(schema *types.Schema) (*Persistent, error) {
	if schema == nil {
		return nil, fmt.Errorf("persistent table needs a schema")
	}
	if !schema.Persistent || schema.Key < 0 {
		return nil, fmt.Errorf("table %s: ephemeral schema given to persistent store", schema.Name)
	}
	return &Persistent{schema: schema, rows: make(map[string]*types.Tuple)}, nil
}

// Schema implements Table.
func (p *Persistent) Schema() *types.Schema { return p.schema }

// KeyOf derives the canonical key string for a tuple of this table.
func (p *Persistent) KeyOf(t *types.Tuple) string {
	return types.KeyString(t.Vals[p.schema.Key])
}

// Insert implements Table: upsert keyed on the primary-key column.
func (p *Persistent) Insert(t *types.Tuple) (bool, error) {
	if t == nil {
		return false, fmt.Errorf("table %s: nil tuple", p.schema.Name)
	}
	if len(t.Vals) != p.schema.NumCols() {
		return false, fmt.Errorf("table %s: arity mismatch", p.schema.Name)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.insertLocked(t), nil
}

// insertLocked performs the keyed upsert with p.mu held.
func (p *Persistent) insertLocked(t *types.Tuple) bool {
	key := p.KeyOf(t)
	_, existed := p.rows[key]
	p.rows[key] = t
	p.order = append(p.order, t)
	if existed {
		p.dead++
		if p.dead > len(p.order)/2 && p.dead > 64 {
			p.compactLocked()
		}
	}
	return existed
}

// InsertBatch implements Table: the whole run of upserts happens inside a
// single critical section, in slice order (a later duplicate key in the
// same batch wins, exactly as sequential Inserts would).
func (p *Persistent) InsertBatch(ts []*types.Tuple) error {
	if len(ts) == 0 {
		return nil
	}
	for _, t := range ts {
		if t == nil {
			return fmt.Errorf("table %s: nil tuple", p.schema.Name)
		}
		if len(t.Vals) != p.schema.NumCols() {
			return fmt.Errorf("table %s: arity mismatch", p.schema.Name)
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, t := range ts {
		p.insertLocked(t)
	}
	return nil
}

// compactLocked rewrites order to contain only current rows.
func (p *Persistent) compactLocked() {
	live := p.order[:0]
	for _, t := range p.order {
		if p.rows[p.KeyOf(t)] == t {
			live = append(live, t)
		}
	}
	p.order = live
	p.dead = 0
}

// Get returns the current row for the given key string.
func (p *Persistent) Get(key string) (*types.Tuple, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	t, ok := p.rows[key]
	return t, ok
}

// Has reports whether a row exists for key.
func (p *Persistent) Has(key string) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	_, ok := p.rows[key]
	return ok
}

// Delete removes the row for key, reporting whether it existed.
func (p *Persistent) Delete(key string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.rows[key]; !ok {
		return false
	}
	delete(p.rows, key)
	p.dead++
	if p.dead > len(p.order)/2 && p.dead > 64 {
		p.compactLocked()
	}
	return true
}

// Len implements Table.
func (p *Persistent) Len() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.rows)
}

// Keys returns the current keys in temporal order (most recently
// inserted/updated last).
func (p *Persistent) Keys() []string {
	out := make([]string, 0, p.Len())
	p.Scan(func(t *types.Tuple) bool {
		out = append(out, p.KeyOf(t))
		return true
	})
	return out
}

// Scan implements Table: current rows in temporal order. A row updated via
// duplicate-key insert appears at the position of its latest update,
// maintaining the temporal order of events (§3).
func (p *Persistent) Scan(fn func(*types.Tuple) bool) {
	p.mu.RLock()
	snapshot := make([]*types.Tuple, 0, len(p.rows))
	for _, t := range p.order {
		if p.rows[p.KeyOf(t)] == t {
			snapshot = append(snapshot, t)
		}
	}
	p.mu.RUnlock()
	for _, t := range snapshot {
		if !fn(t) {
			return
		}
	}
}

// ScanOrdered calls fn for each current row in ascending primary-key
// order. Unlike Scan's temporal order — whose byte layout depends on the
// history of updates and compactions — key order is a pure function of
// the table's current contents, so durable snapshots built over it are
// byte-stable across runs. Iteration stops early if fn returns false.
func (p *Persistent) ScanOrdered(fn func(*types.Tuple) bool) {
	p.mu.RLock()
	snapshot := make([]*types.Tuple, 0, len(p.rows))
	for _, t := range p.rows {
		snapshot = append(snapshot, t)
	}
	p.mu.RUnlock()
	sort.Slice(snapshot, func(i, j int) bool {
		return p.KeyOf(snapshot[i]) < p.KeyOf(snapshot[j])
	})
	for _, t := range snapshot {
		if !fn(t) {
			return
		}
	}
}

// ScanSince implements Table.
func (p *Persistent) ScanSince(since types.Timestamp, fn func(*types.Tuple) bool) {
	p.Scan(func(t *types.Tuple) bool {
		if t.TS <= since {
			return true
		}
		return fn(t)
	})
}

// New creates the appropriate storage engine for the schema: a Persistent
// store when schema.Persistent, otherwise an Ephemeral ring with the given
// capacity.
func New(schema *types.Schema, ephemeralCapacity int) (Table, error) {
	if schema != nil && schema.Persistent {
		return NewPersistent(schema)
	}
	return NewEphemeral(schema, ephemeralCapacity)
}
