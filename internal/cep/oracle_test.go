package cep

// The reference-semantics oracle and the differential harness. The
// oracle restates the pattern semantics declaratively: for each
// candidate start event of the canonically ordered stream it runs one
// independent forward scan (no partial-match bookkeeping, no buffering,
// no watermark) and decides — match, kill, or expiry. Because selection
// is skip-till-next-match, partial matches never interact, so the
// per-start scan is a complete specification. The harness generates
// thousands of random (pattern, stream, segmentation, arrival-order)
// cases and requires the incremental NFA machine, fed in shuffled order
// and segmented arbitrarily — with snapshot/restore round trips
// mid-stream — to be bit-identical to the oracle.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"unicache/internal/gapl"
	"unicache/internal/types"
)

// oracleMatch is one completed match with its completion-order key.
type oracleMatch struct {
	ts       types.Timestamp // closing event time, or the deadline
	phase    int             // 0 = closed by an event, 1 = completed at the deadline
	topic    string          // closing event key (phase 0)
	seq      uint64
	startIdx int // canonical index of the start event
	vals     []types.Value
}

// oracleMatches computes every match of pat over the stream, assuming a
// final watermark at horizon. The stream may be in any order; the oracle
// sorts it canonically first.
func oracleMatches(pat *Pattern, stream []*types.Event, horizon types.Timestamp) [][]types.Value {
	evs := append([]*types.Event(nil), stream...)
	sort.Slice(evs, func(i, j int) bool { return evLess(evs[i], evs[j]) })
	var out []oracleMatch
	for si, start := range evs {
		if start.Tuple.TS > horizon {
			break
		}
		if m, ok := oracleScan(pat, evs, si, horizon); ok {
			m.startIdx = si
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.ts != b.ts {
			return a.ts < b.ts
		}
		if a.phase != b.phase {
			return a.phase < b.phase
		}
		if a.phase == 0 {
			if a.topic != b.topic {
				return a.topic < b.topic
			}
			if a.seq != b.seq {
				return a.seq < b.seq
			}
		}
		return a.startIdx < b.startIdx
	})
	vals := make([][]types.Value, 0, len(out))
	for _, m := range out {
		vals = append(vals, m.vals)
	}
	return vals
}

// oracleScan runs the declarative forward scan for one candidate start.
func oracleScan(pat *Pattern, evs []*types.Event, si int, horizon types.Timestamp) (oracleMatch, bool) {
	none := oracleMatch{}
	start := evs[si]
	if start.Topic != pat.Steps[0].Topic {
		return none, false
	}
	n := len(pat.Steps)
	bind := make([]*types.Event, n)
	insts := make([][]*types.Event, n)
	pass := func(i int, ev *types.Event) bool {
		st := &pat.Steps[i]
		if len(st.Filters) == 0 {
			return true
		}
		old := bind[i]
		bind[i] = ev
		e := env{p: pat, bind: bind, insts: insts}
		ok := true
		for _, f := range st.Filters {
			if !e.evalBool(f) {
				ok = false
				break
			}
		}
		bind[i] = old
		return ok
	}
	if !pass(0, start) {
		return none, false
	}
	deadline := types.Timestamp(int64(^uint64(0) >> 1))
	if pat.Within > 0 {
		deadline = start.Tuple.TS + types.Timestamp(pat.Within)
	}
	at, open := 0, false
	emitAt := func(ts types.Timestamp, phase int, topic string, seq uint64) (oracleMatch, bool) {
		e := env{p: pat, bind: bind, insts: insts}
		vals, err := e.evalEmit(pat.Emit)
		if err != nil {
			return none, false // same rule as Machine.emit
		}
		return oracleMatch{ts: ts, phase: phase, topic: topic, seq: seq, vals: vals}, true
	}
	if pat.Steps[0].Kleene {
		insts[0] = append(insts[0], start)
		open = true
	} else {
		bind[0] = start
		if np := pat.nextPos[0]; np >= 0 {
			at = np
		} else if pat.trailing {
			at = n
		} else {
			return emitAt(start.Tuple.TS, 0, start.Topic, start.Tuple.Seq)
		}
	}
	for _, e := range evs[si+1:] {
		if e.Tuple.TS > deadline || e.Tuple.TS > horizon {
			break
		}
		// Active negation guards: between the last bound positive step
		// and the next expected one.
		var lo, hi int
		switch {
		case at >= n:
			lo, hi = pat.lastPos, n
		case open:
			lo, hi = at, pat.nextPos[at]
			if hi < 0 {
				hi = n
			}
		default:
			lo, hi = pat.prevPos[at], at
		}
		killed := false
		for g := lo + 1; g < hi; g++ {
			st := &pat.Steps[g]
			if st.Negated && e.Topic == st.Topic && pass(g, e) {
				killed = true
				break
			}
		}
		if killed {
			return none, false
		}
		if at >= n {
			continue // pending behind trailing negation
		}
		cur := &pat.Steps[at]
		if open {
			if np := pat.nextPos[at]; np >= 0 {
				nst := &pat.Steps[np]
				if e.Topic == nst.Topic && pass(np, e) {
					bind[np] = e
					if np2 := pat.nextPos[np]; np2 >= 0 {
						at, open = np2, false
					} else if pat.trailing {
						at, open = n, false
					} else {
						return emitAt(e.Tuple.TS, 0, e.Topic, e.Tuple.Seq)
					}
					continue
				}
			}
			if e.Topic == cur.Topic && pass(at, e) {
				insts[at] = append(insts[at], e)
			}
			continue
		}
		if e.Topic == cur.Topic && pass(at, e) {
			if cur.Kleene {
				insts[at] = append(insts[at], e)
				open = true
				continue
			}
			bind[at] = e
			if np := pat.nextPos[at]; np >= 0 {
				at = np
			} else if pat.trailing {
				at = n
			} else {
				return emitAt(e.Tuple.TS, 0, e.Topic, e.Tuple.Seq)
			}
		}
	}
	// Stream exhausted (or the window closed): the match completes at
	// its deadline iff every positive step is bound and the watermark
	// passed the deadline.
	completable := at >= n || (open && pat.nextPos[at] < 0)
	if completable && deadline <= horizon {
		return emitAt(deadline, 1, "", 0)
	}
	return none, false
}

// ---------------------------------------------------------------------
// Random generation
// ---------------------------------------------------------------------

var oracleTopics = []string{"A", "B", "C"}

func oracleSchemas() map[string]*types.Schema {
	schemas := make(map[string]*types.Schema)
	for _, name := range oracleTopics {
		s, err := types.NewSchema(name, false, -1,
			types.Column{Name: "u", Type: types.ColInt},
			types.Column{Name: "v", Type: types.ColInt})
		if err != nil {
			panic(err)
		}
		schemas[name] = s
	}
	return schemas
}

// genPattern builds a random valid pattern source. The shape mirrors the
// grammar: 1–4 steps with negation and Kleene sprinkled in, per-step
// predicates that reference earlier positive steps, and emit lists that
// mix attributes, arithmetic and aggregates.
func genPattern(rng *rand.Rand) string {
	nsteps := 1 + rng.Intn(4)
	type stepSpec struct {
		v       string
		topic   string
		neg, kl bool
	}
	steps := make([]stepSpec, nsteps)
	for i := range steps {
		steps[i] = stepSpec{
			v:     fmt.Sprintf("s%d", i),
			topic: oracleTopics[rng.Intn(len(oracleTopics))],
		}
		if i > 0 && rng.Intn(4) == 0 {
			steps[i].neg = true
		} else if rng.Intn(4) == 0 {
			steps[i].kl = true
		}
	}
	// At least one positive step.
	positives := 0
	for _, s := range steps {
		if !s.neg {
			positives++
		}
	}
	if positives == 0 {
		steps[0].neg, steps[0].kl = false, false
	}
	last := steps[nsteps-1]
	within := ""
	if last.neg || last.kl || rng.Intn(5) > 0 {
		within = fmt.Sprintf(" within %d SECS", 1+rng.Intn(12))
	}

	var b strings.Builder
	for _, s := range steps {
		fmt.Fprintf(&b, "subscribe %s to %s;\n", s.v, s.topic)
	}
	b.WriteString("pattern {\n\tmatch ")
	for i, s := range steps {
		if i > 0 {
			b.WriteString(" then ")
		}
		if s.neg {
			b.WriteByte('!')
		}
		b.WriteString(s.v)
		if s.kl {
			b.WriteByte('+')
		}
	}
	b.WriteString(within)
	b.WriteString(";\n")

	// Predicates: per-step conjuncts comparing this step's attributes to
	// constants or to earlier positive steps (valid placement by
	// construction: the conjunct's latest variable is its own step).
	ops := []string{"==", "!=", "<", "<=", ">", ">="}
	var conjs []string
	for i, s := range steps {
		if rng.Intn(3) != 0 {
			continue
		}
		field := []string{"u", "v"}[rng.Intn(2)]
		lhs := fmt.Sprintf("%s.%s", s.v, field)
		rhs := fmt.Sprintf("%d", rng.Intn(4))
		for j := i - 1; j >= 0; j-- {
			if !steps[j].neg && rng.Intn(2) == 0 {
				rhs = fmt.Sprintf("%s.%s", steps[j].v, field)
				break
			}
		}
		conjs = append(conjs, fmt.Sprintf("%s %s %s", lhs, ops[rng.Intn(len(ops))], rhs))
	}
	if len(conjs) > 0 {
		fmt.Fprintf(&b, "\twhere %s;\n", strings.Join(conjs, " && "))
	}

	// Emit: attributes of positive steps, aggregates, arithmetic.
	var emits []string
	for _, s := range steps {
		if s.neg {
			continue
		}
		switch rng.Intn(4) {
		case 0:
			emits = append(emits, fmt.Sprintf("%s.v", s.v))
		case 1:
			emits = append(emits, fmt.Sprintf("count(%s)", s.v))
		case 2:
			fn := []string{"sum", "min", "max", "first", "last", "avg"}[rng.Intn(6)]
			emits = append(emits, fmt.Sprintf("%s(%s.v)", fn, s.v))
		case 3:
			emits = append(emits, fmt.Sprintf("%s.u + %s.v * 2", s.v, s.v))
		}
	}
	if len(emits) == 0 {
		emits = append(emits, "1")
	}
	fmt.Fprintf(&b, "\temit %s;\n}\n", strings.Join(emits, ", "))
	return b.String()
}

// genStream builds a random stream over the topic pool: mostly strictly
// increasing timestamps with occasional ties (the canonical key breaks
// them), per-topic commit sequences.
func genStream(rng *rand.Rand, schemas map[string]*types.Schema) []*types.Event {
	n := 5 + rng.Intn(36)
	evs := make([]*types.Event, 0, n)
	ts := int64(1e12)
	seqs := map[string]uint64{}
	for i := 0; i < n; i++ {
		if rng.Intn(8) != 0 {
			ts += int64(1+rng.Intn(30)) * 1e8 // 0.1s..3s
		} // else: timestamp tie
		topic := oracleTopics[rng.Intn(len(oracleTopics))]
		seqs[topic]++
		evs = append(evs, &types.Event{
			Topic:  topic,
			Schema: schemas[topic],
			Tuple: &types.Tuple{
				Seq: seqs[topic],
				TS:  types.Timestamp(ts),
				Vals: []types.Value{
					types.Int(int64(rng.Intn(4))),
					types.Int(int64(rng.Intn(10))),
				},
			},
		})
	}
	return evs
}

func valsKey(ms [][]types.Value) string {
	var b strings.Builder
	for _, vals := range ms {
		b.WriteByte('[')
		for i, v := range vals {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(v.Kind().String())
			b.WriteByte(':')
			b.WriteString(v.String())
		}
		b.WriteByte(']')
	}
	return b.String()
}

// TestDifferentialOracle is the headline proof: ≥2000 randomized
// (pattern, stream, segmentation, arrival-order) cases where the NFA
// machine must be bit-identical to the brute-force oracle — including
// cases with a snapshot/restore round trip in the middle of the stream.
func TestDifferentialOracle(t *testing.T) {
	const cases = 2500
	schemas := oracleSchemas()
	compiled := 0
	for c := 0; c < cases; c++ {
		seed := int64(0xCE9) + int64(c)
		rng := rand.New(rand.NewSource(seed))
		src := genPattern(rng)
		prog, err := gapl.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: generated pattern does not compile: %v\n%s", seed, err, src)
		}
		pat, err := CompilePattern(prog, schemas)
		if err != nil {
			t.Fatalf("seed %d: CompilePattern: %v\n%s", seed, err, src)
		}
		compiled++
		stream := genStream(rng, schemas)
		maxTS := stream[0].Tuple.TS
		for _, e := range stream {
			if e.Tuple.TS > maxTS {
				maxTS = e.Tuple.TS
			}
		}
		horizon := maxTS + types.Timestamp(pat.Within) + 1

		want := valsKey(oracleMatches(pat, stream, horizon))

		// Drive the machine: shuffled arrival order, random chunking,
		// watermark advances that never exceed the unfed minimum, and an
		// optional snapshot/restore round trip at a chunk boundary.
		m := NewMachine(pat)
		var got [][]types.Value
		onMatch := func(vals []types.Value) error {
			got = append(got, vals)
			return nil
		}
		m.OnMatch = onMatch

		order := rng.Perm(len(stream))
		snapAt := -1
		if rng.Intn(3) == 0 {
			snapAt = rng.Intn(len(order))
		}
		for i, idx := range order {
			if i == snapAt {
				snap, err := m.Snapshot()
				if err != nil {
					t.Fatalf("seed %d: snapshot: %v", seed, err)
				}
				m = NewMachine(pat)
				if err := m.Restore(snap); err != nil {
					t.Fatalf("seed %d: restore: %v", seed, err)
				}
				m.OnMatch = onMatch
			}
			m.Feed(stream[idx])
			if rng.Intn(4) == 0 {
				// A valid watermark promise: strictly below every event
				// not yet fed.
				unfed := horizon
				for _, j := range order[i+1:] {
					if stream[j].Tuple.TS < unfed {
						unfed = stream[j].Tuple.TS
					}
				}
				m.AdvanceTo(unfed - 1)
			}
		}
		m.AdvanceTo(horizon)

		if gk := valsKey(got); gk != want {
			t.Fatalf("seed %d: machine diverged from oracle\npattern:\n%s\nstream: %s\noracle:  %s\nmachine: %s",
				seed, src, streamKey(stream), want, gk)
		}
	}
	if compiled < cases {
		t.Fatalf("only %d/%d generated patterns compiled", compiled, cases)
	}
	t.Logf("%d randomized cases, machine bit-identical to oracle", compiled)
}

// TestDifferentialOracleInOrder drives the same differential through
// ObserveBatch — the system entry point — with canonical arrival order,
// random run segmentation and interleaved Timer punctuation.
func TestDifferentialOracleInOrder(t *testing.T) {
	const cases = 600
	schemas := oracleSchemas()
	timerSchema, err := types.NewSchema(types.TimerTopic, false, -1,
		types.Column{Name: "ts", Type: types.ColTstamp})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < cases; c++ {
		seed := int64(0xBEEF) + int64(c)
		rng := rand.New(rand.NewSource(seed))
		src := genPattern(rng)
		prog, err := gapl.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		pat, err := CompilePattern(prog, schemas)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		stream := genStream(rng, schemas)
		sorted := append([]*types.Event(nil), stream...)
		sort.Slice(sorted, func(i, j int) bool { return evLess(sorted[i], sorted[j]) })
		maxTS := sorted[len(sorted)-1].Tuple.TS
		horizon := maxTS + types.Timestamp(pat.Within) + 1

		want := valsKey(oracleMatches(pat, stream, horizon))

		m := NewMachine(pat)
		var got [][]types.Value
		m.OnMatch = func(vals []types.Value) error {
			got = append(got, vals)
			return nil
		}
		tick := func(ts types.Timestamp) *types.Event {
			return &types.Event{Topic: types.TimerTopic, Schema: timerSchema,
				Tuple: &types.Tuple{TS: ts, Vals: []types.Value{types.Stamp(ts)}}}
		}
		i := 0
		for i < len(sorted) {
			n := 1 + rng.Intn(6)
			if i+n > len(sorted) {
				n = len(sorted) - i
			}
			batch := append([]*types.Event(nil), sorted[i:i+n]...)
			tieAhead := i+n < len(sorted) && sorted[i+n].Tuple.TS == sorted[i+n-1].Tuple.TS
			if rng.Intn(2) == 0 && !tieAhead {
				// The node's timer fires between runs; its commit time is
				// ≥ every event already committed (a heartbeat at t
				// promises no later event ≤ t, so never tick into a
				// timestamp tie that is still in flight).
				batch = append(batch, tick(sorted[i+n-1].Tuple.TS))
			}
			m.ObserveBatch(batch)
			i += n
		}
		m.ObserveBatch([]*types.Event{tick(horizon)})

		if gk := valsKey(got); gk != want {
			t.Fatalf("seed %d: ObserveBatch diverged from oracle\npattern:\n%s\nstream: %s\noracle:  %s\nmachine: %s",
				seed, src, streamKey(stream), want, gk)
		}
	}
}

func streamKey(evs []*types.Event) string {
	var b strings.Builder
	for _, e := range evs {
		fmt.Fprintf(&b, "%s@%d(%s,%s) ", e.Topic, e.Tuple.TS, e.Tuple.Vals[0], e.Tuple.Vals[1])
	}
	return b.String()
}
