package cep

import (
	"fmt"

	"unicache/internal/gapl"
	"unicache/internal/types"
)

// Step is one compiled pattern step: a subscription variable bound to a
// topic, optionally negated or Kleene-iterated, plus the predicate
// conjuncts that qualify a candidate event for this step.
type Step struct {
	Var     string
	Topic   string
	Schema  *types.Schema
	Negated bool
	Kleene  bool
	// Filters are the `where` conjuncts whose latest-bound variable is
	// this step: they are evaluated when a candidate event for the step
	// arrives, with the candidate temporarily bound.
	Filters []gapl.Expr
}

// Pattern is a compiled CEP pattern, ready to instantiate Machines.
type Pattern struct {
	Steps  []Step
	Within int64 // application-time window in ns; 0 = unbounded
	Emit   []gapl.Expr
	Into   string // optional output topic for match tuples

	stepOf   map[string]int // subscription var -> step index
	schemaOf map[string]*types.Schema
	// nextPos[i] is the index of the next positive (non-negated) step
	// after i, or -1; prevPos[i] the previous positive step before i, or
	// -1. lastPos is the index of the last positive step.
	nextPos []int
	prevPos []int
	lastPos int
	// trailing reports whether negated steps follow the last positive
	// step (the match then completes at its deadline, not at an event).
	trailing bool
}

// Topics returns the distinct step topics in declaration order.
func (p *Pattern) Topics() []string {
	seen := make(map[string]bool, len(p.Steps))
	var out []string
	for _, s := range p.Steps {
		if !seen[s.Topic] {
			seen[s.Topic] = true
			out = append(out, s.Topic)
		}
	}
	return out
}

// aggFns are the aggregate builtins usable in emit expressions over a
// Kleene variable's collected instances (count takes the bare variable,
// the rest take var.field).
var aggFns = map[string]bool{
	"count": true, "sum": true, "avg": true,
	"min": true, "max": true, "first": true, "last": true,
}

// CompilePattern checks a parsed pattern clause against the program's
// subscriptions and the cache's schemas and returns the executable form.
// gapl.Compile has already enforced the structural rules (steps are
// distinct subscription variables, first step positive, negated steps not
// Kleene, trailing negation/Kleene requires within).
func CompilePattern(prog *gapl.Compiled, schemas map[string]*types.Schema) (*Pattern, error) {
	decl := prog.Pattern
	if decl == nil {
		return nil, fmt.Errorf("program has no pattern clause")
	}
	topicOf := make(map[string]string)
	for _, s := range prog.Subscriptions() {
		topicOf[s.Name] = s.Topic
	}
	p := &Pattern{
		Within:   decl.Within,
		Emit:     decl.Emit,
		Into:     decl.Into,
		stepOf:   make(map[string]int, len(decl.Steps)),
		schemaOf: make(map[string]*types.Schema),
		lastPos:  -1,
	}
	for i, st := range decl.Steps {
		topic := topicOf[st.Var]
		schema := schemas[topic]
		if schema == nil {
			return nil, fmt.Errorf("line %d: pattern step %q: no such topic %q", st.Line, st.Var, topic)
		}
		p.Steps = append(p.Steps, Step{
			Var: st.Var, Topic: topic, Schema: schema,
			Negated: st.Negated, Kleene: st.Kleene,
		})
		p.stepOf[st.Var] = i
		p.schemaOf[topic] = schema
		if !st.Negated {
			p.lastPos = i
		}
	}
	p.trailing = p.lastPos < len(p.Steps)-1
	p.nextPos = make([]int, len(p.Steps))
	p.prevPos = make([]int, len(p.Steps))
	for i := range p.Steps {
		p.nextPos[i], p.prevPos[i] = -1, -1
		for j := i + 1; j < len(p.Steps); j++ {
			if !p.Steps[j].Negated {
				p.nextPos[i] = j
				break
			}
		}
		for j := i - 1; j >= 0; j-- {
			if !p.Steps[j].Negated {
				p.prevPos[i] = j
				break
			}
		}
	}

	if decl.Where != nil {
		for _, conj := range conjuncts(decl.Where) {
			if err := p.placeConjunct(conj); err != nil {
				return nil, err
			}
		}
	}
	for _, e := range decl.Emit {
		if err := p.checkEmitExpr(e); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// conjuncts splits an expression on top-level && so each conjunct can be
// evaluated at the earliest step where all its variables are bound.
func conjuncts(e gapl.Expr) []gapl.Expr {
	if b, ok := e.(*gapl.BinaryExpr); ok && b.Op == "&&" {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []gapl.Expr{e}
}

// placeConjunct validates one where-conjunct and attaches it to the step
// at which it becomes evaluable (the latest step it references).
func (p *Pattern) placeConjunct(conj gapl.Expr) error {
	refs := map[int]bool{}
	if err := p.walkRefs(conj, refs, false); err != nil {
		return err
	}
	at := 0
	var negs []int
	for i := range refs {
		if i > at {
			at = i
		}
		if p.Steps[i].Negated {
			negs = append(negs, i)
		}
	}
	if len(negs) > 1 || (len(negs) == 1 && (negs[0] != at)) {
		return fmt.Errorf("pattern predicate references negated variable %q before it could be bound",
			p.Steps[negs[0]].Var)
	}
	p.Steps[at].Filters = append(p.Steps[at].Filters, conj)
	return nil
}

// checkEmitExpr validates an emit expression: aggregates only here, no
// references to negated variables (they are never bound in a match).
func (p *Pattern) checkEmitExpr(e gapl.Expr) error {
	refs := map[int]bool{}
	if err := p.walkRefs(e, refs, true); err != nil {
		return err
	}
	for i := range refs {
		if p.Steps[i].Negated {
			return fmt.Errorf("emit expression references negated variable %q, which is never bound",
				p.Steps[i].Var)
		}
	}
	return nil
}

// walkRefs records which steps an expression references and enforces the
// expression subset patterns support: step variables appear only as
// var.field (or as aggregate arguments when aggs is true), calls are
// aggregates-in-emit only.
func (p *Pattern) walkRefs(e gapl.Expr, refs map[int]bool, aggs bool) error {
	switch x := e.(type) {
	case *gapl.IntLit, *gapl.RealLit, *gapl.StrLit, *gapl.BoolLit:
		return nil
	case *gapl.VarRef:
		if i, ok := p.stepOf[x.Name]; ok {
			return fmt.Errorf("line %d: pattern variable %q can only be used as %s.attr or inside an aggregate",
				x.Line, x.Name, p.Steps[i].Var)
		}
		return fmt.Errorf("line %d: unknown variable %q in pattern expression", x.Line, x.Name)
	case *gapl.FieldRef:
		i, ok := p.stepOf[x.Var]
		if !ok {
			return fmt.Errorf("line %d: unknown pattern variable %q", x.Line, x.Var)
		}
		if p.Steps[i].Schema.ColIndex(x.Field) < 0 && !eqFold(x.Field, "tstamp") {
			return fmt.Errorf("line %d: topic %s has no attribute %q", x.Line, p.Steps[i].Topic, x.Field)
		}
		refs[i] = true
		return nil
	case *gapl.UnaryExpr:
		return p.walkRefs(x.X, refs, aggs)
	case *gapl.BinaryExpr:
		if err := p.walkRefs(x.L, refs, aggs); err != nil {
			return err
		}
		return p.walkRefs(x.R, refs, aggs)
	case *gapl.CallExpr:
		if !aggs {
			return fmt.Errorf("line %d: calls are not allowed in pattern predicates", x.Line)
		}
		if !aggFns[x.Name] {
			return fmt.Errorf("line %d: %s() is not a pattern aggregate (count/sum/avg/min/max/first/last)",
				x.Line, x.Name)
		}
		if len(x.Args) != 1 {
			return fmt.Errorf("line %d: %s() takes exactly one argument", x.Line, x.Name)
		}
		var i int
		switch a := x.Args[0].(type) {
		case *gapl.VarRef:
			if x.Name != "count" {
				return fmt.Errorf("line %d: %s() needs a var.attr argument", x.Line, x.Name)
			}
			var ok bool
			if i, ok = p.stepOf[a.Name]; !ok {
				return fmt.Errorf("line %d: unknown pattern variable %q", a.Line, a.Name)
			}
		case *gapl.FieldRef:
			if x.Name == "count" {
				return fmt.Errorf("line %d: count() takes the bare variable, not an attribute", x.Line)
			}
			var ok bool
			if i, ok = p.stepOf[a.Var]; !ok {
				return fmt.Errorf("line %d: unknown pattern variable %q", a.Line, a.Var)
			}
			if p.Steps[i].Schema.ColIndex(a.Field) < 0 && !eqFold(a.Field, "tstamp") {
				return fmt.Errorf("line %d: topic %s has no attribute %q", a.Line, p.Steps[i].Topic, a.Field)
			}
		default:
			return fmt.Errorf("line %d: %s() needs a pattern variable argument", x.Line, x.Name)
		}
		refs[i] = true
		return nil
	default:
		return fmt.Errorf("unsupported expression %T in pattern", e)
	}
}

func eqFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}
