package cep

import (
	"testing"

	"unicache/internal/gapl"
	"unicache/internal/types"
)

func testSchemas(t *testing.T) map[string]*types.Schema {
	t.Helper()
	schemas := make(map[string]*types.Schema)
	for _, name := range []string{"A", "B", "C"} {
		s, err := types.NewSchema(name, false, -1,
			types.Column{Name: "u", Type: types.ColInt},
			types.Column{Name: "v", Type: types.ColInt},
		)
		if err != nil {
			t.Fatal(err)
		}
		schemas[name] = s
	}
	return schemas
}

func mustPattern(t *testing.T, src string, schemas map[string]*types.Schema) *Pattern {
	t.Helper()
	prog, err := gapl.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	pat, err := CompilePattern(prog, schemas)
	if err != nil {
		t.Fatalf("pattern: %v", err)
	}
	return pat
}

var topicSeq = map[string]uint64{}

func ev(schemas map[string]*types.Schema, topic string, ts int64, u, v int64) *types.Event {
	topicSeq[topic]++
	return &types.Event{
		Topic:  topic,
		Schema: schemas[topic],
		Tuple: &types.Tuple{
			Seq:  topicSeq[topic],
			TS:   types.Timestamp(ts),
			Vals: []types.Value{types.Int(u), types.Int(v)},
		},
	}
}

func collect(m *Machine) *[][]types.Value {
	out := &[][]types.Value{}
	m.OnMatch = func(vals []types.Value) error {
		*out = append(*out, vals)
		return nil
	}
	return out
}

func fmtMatches(ms [][]types.Value) string {
	s := ""
	for _, vals := range ms {
		s += "["
		for i, v := range vals {
			if i > 0 {
				s += " "
			}
			s += v.Kind().String() + ":" + v.String()
		}
		s += "]"
	}
	return s
}

const sec = int64(1e9)

func TestSequenceWithin(t *testing.T) {
	schemas := testSchemas(t)
	pat := mustPattern(t, `
		subscribe a to A;
		subscribe b to B;
		pattern {
			match a then b within 5 SECS;
			where b.u == a.u;
			emit a.u, a.v, b.v;
		}`, schemas)
	m := NewMachine(pat)
	got := collect(m)

	m.Feed(ev(schemas, "A", 1*sec, 1, 10))
	m.Feed(ev(schemas, "A", 2*sec, 2, 20))
	m.Feed(ev(schemas, "B", 3*sec, 1, 30))  // matches the first A
	m.Feed(ev(schemas, "B", 8*sec, 2, 40))  // 6s after A(2): window expired
	m.Feed(ev(schemas, "B", 10*sec, 1, 50)) // no open A(1) partial anymore
	m.AdvanceTo(types.Timestamp(20 * sec))

	want := "[int:1 int:10 int:30]"
	if fmtMatches(*got) != want {
		t.Fatalf("matches = %s, want %s", fmtMatches(*got), want)
	}
}

func TestSkipTillNextMatchMultipleStarts(t *testing.T) {
	schemas := testSchemas(t)
	pat := mustPattern(t, `
		subscribe a to A;
		subscribe b to B;
		pattern {
			match a then b within 10 SECS;
			emit a.v, b.v;
		}`, schemas)
	m := NewMachine(pat)
	got := collect(m)

	m.Feed(ev(schemas, "A", 1*sec, 0, 1))
	m.Feed(ev(schemas, "A", 2*sec, 0, 2))
	m.Feed(ev(schemas, "B", 3*sec, 0, 9))
	m.AdvanceTo(types.Timestamp(30 * sec))

	// Every qualifying A starts its own partial match; both close on the
	// first B, in creation order.
	want := "[int:1 int:9][int:2 int:9]"
	if fmtMatches(*got) != want {
		t.Fatalf("matches = %s, want %s", fmtMatches(*got), want)
	}
}

func TestMidSequenceNegation(t *testing.T) {
	schemas := testSchemas(t)
	pat := mustPattern(t, `
		subscribe a to A;
		subscribe b to B;
		subscribe c to C;
		pattern {
			match a then !b then c within 10 SECS;
			where b.u == a.u && c.u == a.u;
			emit a.v, c.v;
		}`, schemas)
	m := NewMachine(pat)
	got := collect(m)

	m.Feed(ev(schemas, "A", 1*sec, 1, 1))
	m.Feed(ev(schemas, "A", 2*sec, 2, 2))
	m.Feed(ev(schemas, "B", 3*sec, 1, 0)) // kills the u=1 partial
	m.Feed(ev(schemas, "C", 4*sec, 1, 7))
	m.Feed(ev(schemas, "C", 5*sec, 2, 8))
	m.AdvanceTo(types.Timestamp(30 * sec))

	want := "[int:2 int:8]"
	if fmtMatches(*got) != want {
		t.Fatalf("matches = %s, want %s", fmtMatches(*got), want)
	}
}

func TestTrailingNegationCompletesAtDeadline(t *testing.T) {
	schemas := testSchemas(t)
	pat := mustPattern(t, `
		subscribe a to A;
		subscribe b to B;
		pattern {
			match a then !b within 5 SECS;
			where b.u == a.u;
			emit a.u, a.v;
		}`, schemas)
	m := NewMachine(pat)
	got := collect(m)

	m.Feed(ev(schemas, "A", 1*sec, 1, 10)) // B(u=1) follows: no match
	m.Feed(ev(schemas, "A", 2*sec, 2, 20)) // nothing follows: match at t=7s
	m.Feed(ev(schemas, "B", 3*sec, 1, 0))
	m.AdvanceTo(types.Timestamp(6 * sec))
	if len(*got) != 0 {
		t.Fatalf("match emitted before the deadline: %s", fmtMatches(*got))
	}
	m.AdvanceTo(types.Timestamp(7 * sec)) // watermark reaches 2s+5s
	want := "[int:2 int:20]"
	if fmtMatches(*got) != want {
		t.Fatalf("matches = %s, want %s", fmtMatches(*got), want)
	}
}

func TestKleeneCloseAndAggregates(t *testing.T) {
	schemas := testSchemas(t)
	pat := mustPattern(t, `
		subscribe s to A;
		subscribe m to B;
		subscribe e to C;
		pattern {
			match s then m+ then e within 60 SECS;
			where m.v > s.v;
			emit s.v, count(m), sum(m.v), avg(m.v), first(m.v), last(m.v), e.v;
		}`, schemas)
	m := NewMachine(pat)
	got := collect(m)

	m.Feed(ev(schemas, "A", 1*sec, 0, 3))
	m.Feed(ev(schemas, "B", 2*sec, 0, 5))
	m.Feed(ev(schemas, "B", 3*sec, 0, 2)) // fails m.v > s.v: skipped
	m.Feed(ev(schemas, "B", 4*sec, 0, 7))
	m.Feed(ev(schemas, "C", 5*sec, 0, 99))
	m.AdvanceTo(types.Timestamp(120 * sec))

	want := "[int:3 int:2 int:12 real:6.0 int:5 int:7 int:99]"
	if fmtMatches(*got) != want {
		t.Fatalf("matches = %s, want %s", fmtMatches(*got), want)
	}
}

func TestOutOfOrderArrivalReordered(t *testing.T) {
	schemas := testSchemas(t)
	pat := mustPattern(t, `
		subscribe a to A;
		subscribe b to B;
		pattern {
			match a then b within 10 SECS;
			emit a.v, b.v;
		}`, schemas)
	m := NewMachine(pat)
	got := collect(m)

	// B arrives first in system time but is later in application time;
	// the buffer reorders before the watermark releases them.
	m.Feed(ev(schemas, "B", 5*sec, 0, 2))
	m.Feed(ev(schemas, "A", 1*sec, 0, 1))
	if len(*got) != 0 {
		t.Fatalf("premature emission: %s", fmtMatches(*got))
	}
	m.AdvanceTo(types.Timestamp(6 * sec))
	want := "[int:1 int:2]"
	if fmtMatches(*got) != want {
		t.Fatalf("matches = %s, want %s", fmtMatches(*got), want)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	schemas := testSchemas(t)
	src := `
		subscribe a to A;
		subscribe b to B;
		subscribe c to C;
		pattern {
			match a then b+ then !c within 30 SECS;
			where b.u == a.u;
			emit a.v, count(b), sum(b.v);
		}`
	pat := mustPattern(t, src, schemas)

	m1 := NewMachine(pat)
	got1 := collect(m1)
	feed := func(m *Machine, evs ...*types.Event) {
		for _, e := range evs {
			m.Feed(e)
		}
	}
	e1 := ev(schemas, "A", 1*sec, 1, 10)
	e2 := ev(schemas, "B", 2*sec, 1, 5)
	e3 := ev(schemas, "B", 9*sec, 1, 6) // still buffered at snapshot time
	e4 := ev(schemas, "B", 12*sec, 1, 7)

	feed(m1, e1, e2, e3)
	m1.AdvanceTo(types.Timestamp(5 * sec))

	snap, err := m1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Restoring into a fresh machine must continue bit-identically.
	m2 := NewMachine(mustPattern(t, src, schemas))
	if err := m2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	got2 := collect(m2)
	*got2 = append([][]types.Value{}, *got1...)

	for _, m := range []*Machine{m1, m2} {
		feed(m, e4.Clone())
		m.AdvanceTo(types.Timestamp(60 * sec))
	}
	if fmtMatches(*got1) == "" {
		t.Fatal("expected at least one match")
	}
	if fmtMatches(*got1) != fmtMatches(*got2) {
		t.Fatalf("restored machine diverged:\n  orig:     %s\n  restored: %s",
			fmtMatches(*got1), fmtMatches(*got2))
	}

	// A second snapshot of the restored machine is byte-identical to a
	// snapshot of the original at the same point.
	s1, err := m1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if s1.String() != s2.String() {
		t.Fatal("post-restore snapshots differ")
	}
}

func TestObserveBatchTimerPunctuation(t *testing.T) {
	schemas := testSchemas(t)
	pat := mustPattern(t, `
		subscribe a to A;
		subscribe b to B;
		pattern {
			match a then !b within 2 SECS;
			emit a.v;
		}`, schemas)
	m := NewMachine(pat)
	got := collect(m)

	timerSchema, err := types.NewSchema(types.TimerTopic, false, -1,
		types.Column{Name: "ts", Type: types.ColTstamp})
	if err != nil {
		t.Fatal(err)
	}
	tick := func(ts int64) *types.Event {
		return &types.Event{Topic: types.TimerTopic, Schema: timerSchema,
			Tuple: &types.Tuple{TS: types.Timestamp(ts), Vals: []types.Value{types.Stamp(types.Timestamp(ts))}}}
	}

	m.ObserveBatch([]*types.Event{ev(schemas, "A", 1*sec, 0, 42)})
	if len(*got) != 0 {
		t.Fatalf("match before punctuation: %s", fmtMatches(*got))
	}
	// Without the timer the watermark cannot move past the silent B
	// topic; the heartbeat retires the pending match.
	m.ObserveBatch([]*types.Event{tick(4 * sec)})
	want := "[int:42]"
	if fmtMatches(*got) != want {
		t.Fatalf("matches = %s, want %s", fmtMatches(*got), want)
	}
}

func TestPatternCompileErrors(t *testing.T) {
	schemas := testSchemas(t)
	cases := []struct {
		name, src string
	}{
		{"negated-first", `subscribe a to A; pattern { match !a; emit 1; }`},
		{"negated-kleene", `subscribe a to A; subscribe b to B; pattern { match a then !b+ within 1 SECS; emit a.v; }`},
		{"dup-var", `subscribe a to A; pattern { match a then a within 1 SECS; emit a.v; }`},
		{"trailing-neg-no-within", `subscribe a to A; subscribe b to B; pattern { match a then !b; emit a.v; }`},
		{"trailing-kleene-no-within", `subscribe a to A; subscribe b to B; pattern { match a then b+; emit a.v; }`},
		{"not-a-sub", `subscribe a to A; pattern { match x; emit 1; }`},
		{"with-behavior", `subscribe a to A; behavior { } pattern { match a; emit 1; }`},
		{"with-decl", `subscribe a to A; int n; pattern { match a; emit 1; }`},
		{"with-assoc", `subscribe a to A; associate t with A; pattern { match a; emit 1; }`},
	}
	for _, tc := range cases {
		if _, err := gapl.Compile(tc.src); err == nil {
			t.Errorf("%s: compile accepted invalid pattern", tc.name)
		}
	}

	semCases := []struct {
		name, src string
	}{
		{"bad-field", `subscribe a to A; pattern { match a; emit a.nope; }`},
		{"neg-in-emit", `subscribe a to A; subscribe b to B; pattern { match a then !b within 1 SECS; emit b.v; }`},
		{"neg-before-bound", `subscribe a to A; subscribe b to B; subscribe c to C; pattern { match a then !b then c; where b.v == c.v; emit a.v; }`},
		{"agg-in-where", `subscribe a to A; subscribe b to B; pattern { match a then b+ within 1 SECS; where count(b) > 2; emit a.v; }`},
		{"bare-var", `subscribe a to A; pattern { match a; emit a; }`},
		{"count-field", `subscribe a to A; pattern { match a; emit count(a.v); }`},
		{"sum-bare", `subscribe a to A; pattern { match a; emit sum(a); }`},
	}
	for _, tc := range semCases {
		prog, err := gapl.Compile(tc.src)
		if err != nil {
			t.Errorf("%s: structural compile failed early: %v", tc.name, err)
			continue
		}
		if _, err := CompilePattern(prog, schemas); err == nil {
			t.Errorf("%s: CompilePattern accepted invalid pattern", tc.name)
		}
	}
}

func TestPrintRoundTripPattern(t *testing.T) {
	src := `
		subscribe a to A;
		subscribe b to B;
		pattern {
			match a then b+ within 1500 MSECS;
			where b.u == a.u;
			emit a.v, count(b) into C;
		}`
	prog, err := gapl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	printed := gapl.Print(prog)
	prog2, err := gapl.Parse(printed)
	if err != nil {
		t.Fatalf("reparse failed: %v\nprinted:\n%s", err, printed)
	}
	if printed2 := gapl.Print(prog2); printed2 != printed {
		t.Fatalf("print not a fixpoint:\n%s\nvs\n%s", printed, printed2)
	}
	if prog2.Pattern == nil || prog2.Pattern.Within != 1500*1e6 || prog2.Pattern.Into != "C" {
		t.Fatalf("round-tripped pattern lost fields: %+v", prog2.Pattern)
	}
}

func BenchmarkMachineSequence(b *testing.B) {
	schemas := make(map[string]*types.Schema)
	for _, name := range []string{"A", "B"} {
		s, _ := types.NewSchema(name, false, -1,
			types.Column{Name: "u", Type: types.ColInt},
			types.Column{Name: "v", Type: types.ColInt})
		schemas[name] = s
	}
	prog, err := gapl.Compile(`
		subscribe a to A;
		subscribe b to B;
		pattern { match a then b within 1 SECS; where b.u == a.u; emit a.v, b.v; }`)
	if err != nil {
		b.Fatal(err)
	}
	pat, err := CompilePattern(prog, schemas)
	if err != nil {
		b.Fatal(err)
	}
	m := NewMachine(pat)
	m.OnMatch = func([]types.Value) error { return nil }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts := int64(i) * sec
		topic := "A"
		if i%2 == 1 {
			topic = "B"
		}
		m.Feed(&types.Event{Topic: topic, Schema: schemas[topic],
			Tuple: &types.Tuple{Seq: uint64(i), TS: types.Timestamp(ts),
				Vals: []types.Value{types.Int(int64(i % 4)), types.Int(int64(i))}}})
		if i%64 == 63 {
			m.AdvanceTo(types.Timestamp(ts))
		}
	}
}
