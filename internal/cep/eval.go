package cep

import (
	"fmt"

	"unicache/internal/gapl"
	"unicache/internal/types"
)

// env is the evaluation environment for pattern predicates and emit
// expressions: the events bound so far, per step. For a Kleene step,
// bind holds the most recent instance and insts every collected one.
type env struct {
	p     *Pattern
	bind  []*types.Event
	insts [][]*types.Event
}

// eventOf resolves the event a plain var.field reference sees for step i:
// the bound event, or the last collected instance of a Kleene step.
func (v *env) eventOf(i int) *types.Event {
	if ev := v.bind[i]; ev != nil {
		return ev
	}
	if n := len(v.insts[i]); n > 0 {
		return v.insts[i][n-1]
	}
	return nil
}

// instancesOf returns the instance list an aggregate ranges over: all
// Kleene instances, or the single bound event.
func (v *env) instancesOf(i int) []*types.Event {
	if len(v.insts[i]) > 0 {
		return v.insts[i]
	}
	if v.bind[i] != nil {
		return []*types.Event{v.bind[i]}
	}
	return nil
}

// evalBool evaluates a predicate conjunct. A non-bool result or an
// evaluation error (e.g. a type mismatch) makes the candidate fail the
// filter — the reference oracle applies the identical rule.
func (v *env) evalBool(e gapl.Expr) bool {
	val, err := v.eval(e)
	if err != nil {
		return false
	}
	b, ok := val.AsBool()
	return ok && b
}

func (v *env) eval(e gapl.Expr) (types.Value, error) {
	switch x := e.(type) {
	case *gapl.IntLit:
		return types.Int(x.V), nil
	case *gapl.RealLit:
		return types.Real(x.V), nil
	case *gapl.StrLit:
		return types.Str(x.V), nil
	case *gapl.BoolLit:
		return types.Bool(x.V), nil
	case *gapl.FieldRef:
		i, ok := v.p.stepOf[x.Var]
		if !ok {
			return types.Nil, fmt.Errorf("unknown pattern variable %q", x.Var)
		}
		ev := v.eventOf(i)
		if ev == nil {
			return types.Nil, fmt.Errorf("pattern variable %q is not bound", x.Var)
		}
		return ev.Field(x.Field)
	case *gapl.UnaryExpr:
		val, err := v.eval(x.X)
		if err != nil {
			return types.Nil, err
		}
		if x.Op == "-" {
			return types.Neg(val)
		}
		return types.Not(val)
	case *gapl.BinaryExpr:
		return v.evalBinary(x)
	case *gapl.CallExpr:
		return v.evalAggregate(x)
	default:
		return types.Nil, fmt.Errorf("unsupported expression %T", e)
	}
}

func (v *env) evalBinary(x *gapl.BinaryExpr) (types.Value, error) {
	if x.Op == "&&" || x.Op == "||" {
		lv, err := v.eval(x.L)
		if err != nil {
			return types.Nil, err
		}
		lb, ok := lv.AsBool()
		if !ok {
			return types.Nil, fmt.Errorf("operator %s needs bool operands", x.Op)
		}
		if (x.Op == "&&" && !lb) || (x.Op == "||" && lb) {
			return types.Bool(lb), nil
		}
		rv, err := v.eval(x.R)
		if err != nil {
			return types.Nil, err
		}
		rb, ok := rv.AsBool()
		if !ok {
			return types.Nil, fmt.Errorf("operator %s needs bool operands", x.Op)
		}
		return types.Bool(rb), nil
	}
	lv, err := v.eval(x.L)
	if err != nil {
		return types.Nil, err
	}
	rv, err := v.eval(x.R)
	if err != nil {
		return types.Nil, err
	}
	switch x.Op {
	case "+":
		return types.Add(lv, rv)
	case "-":
		return types.Sub(lv, rv)
	case "*":
		return types.Mul(lv, rv)
	case "/":
		return types.Div(lv, rv)
	case "%":
		return types.Mod(lv, rv)
	default:
		return types.CompareOp(x.Op, lv, rv)
	}
}

// evalAggregate evaluates count/sum/avg/min/max/first/last over a
// (Kleene) variable's collected instances. avg always yields a real.
func (v *env) evalAggregate(x *gapl.CallExpr) (types.Value, error) {
	var i int
	field := ""
	switch a := x.Args[0].(type) {
	case *gapl.VarRef:
		i = v.p.stepOf[a.Name]
	case *gapl.FieldRef:
		i = v.p.stepOf[a.Var]
		field = a.Field
	}
	insts := v.instancesOf(i)
	if x.Name == "count" {
		return types.Int(int64(len(insts))), nil
	}
	if len(insts) == 0 {
		return types.Nil, fmt.Errorf("%s(): pattern variable %q has no instances", x.Name, v.p.Steps[i].Var)
	}
	switch x.Name {
	case "first":
		return insts[0].Field(field)
	case "last":
		return insts[len(insts)-1].Field(field)
	}
	acc, err := insts[0].Field(field)
	if err != nil {
		return types.Nil, err
	}
	for _, ev := range insts[1:] {
		fv, err := ev.Field(field)
		if err != nil {
			return types.Nil, err
		}
		switch x.Name {
		case "sum", "avg":
			if acc, err = types.Add(acc, fv); err != nil {
				return types.Nil, err
			}
		case "min", "max":
			c, err := types.Compare(fv, acc)
			if err != nil {
				return types.Nil, err
			}
			if (x.Name == "min" && c < 0) || (x.Name == "max" && c > 0) {
				acc = fv
			}
		}
	}
	if x.Name == "avg" {
		f, ok := acc.NumAsReal()
		if !ok {
			return types.Nil, fmt.Errorf("avg(): non-numeric attribute")
		}
		return types.Real(f / float64(len(insts))), nil
	}
	return acc, nil
}

// evalEmit evaluates the emit list into a match tuple.
func (v *env) evalEmit(emit []gapl.Expr) ([]types.Value, error) {
	out := make([]types.Value, len(emit))
	for i, e := range emit {
		val, err := v.eval(e)
		if err != nil {
			return nil, err
		}
		out[i] = val
	}
	return out, nil
}
