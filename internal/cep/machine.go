package cep

import (
	"fmt"
	"math"
	"sort"

	"unicache/internal/types"
	"unicache/internal/wire"
)

// Machine is the NFA runtime for one pattern automaton instance. It
// consumes events in arbitrary arrival order, buffers them until the
// watermark promises completeness, then runs them through the partial
// matches in canonical application-time order. See doc.go for the
// semantics and the concurrency contract.
type Machine struct {
	pat *Pattern

	// OnMatch receives each match tuple in completion order. OnError
	// receives emit-evaluation and sink errors. Neither may call back
	// into the Machine.
	OnMatch func(vals []types.Value) error
	OnError func(err error)

	wm        types.Timestamp            // watermark: all events ≤ wm processed
	heartbeat types.Timestamp            // latest Timer punctuation seen
	topicLast map[string]types.Timestamp // latest event time per step topic
	buf       []*types.Event             // fed but not yet released
	partials  []*partial                 // live partial matches, in creation order
	nextSeq   uint64
	nMatches  uint64
}

// partial is one partial match: the events bound so far and the position
// of the next positive step to satisfy. at == len(Steps) means all
// positive steps are bound and the match is pending its deadline behind
// trailing negation guards.
type partial struct {
	seq             uint64
	at              int
	open            bool // at is a Kleene step with ≥1 collected instance
	start, deadline types.Timestamp
	bind            []*types.Event
	insts           [][]*types.Event
}

type action uint8

const (
	keep action = iota
	kill
	complete
)

// NewMachine returns a Machine for the compiled pattern.
func NewMachine(pat *Pattern) *Machine {
	return &Machine{pat: pat, topicLast: make(map[string]types.Timestamp)}
}

// Pattern returns the compiled pattern the machine runs.
func (m *Machine) Pattern() *Pattern { return m.pat }

// Matches returns the number of matches emitted so far.
func (m *Machine) Matches() uint64 { return m.nMatches }

// Partials returns the number of live partial matches (buffered events
// not included).
func (m *Machine) Partials() int { return len(m.partials) }

// evLess is the canonical total order on events: application timestamp,
// then topic, then per-topic commit sequence. Every ordering decision in
// the machine — and in the reference oracle — uses this key.
func evLess(a, b *types.Event) bool {
	if a.Tuple.TS != b.Tuple.TS {
		return a.Tuple.TS < b.Tuple.TS
	}
	if a.Topic != b.Topic {
		return a.Topic < b.Topic
	}
	return a.Tuple.Seq < b.Tuple.Seq
}

// Feed hands the machine one event. The event is cloned (the caller may
// pool it); it is buffered until an AdvanceTo watermark releases it. An
// event at or before the current watermark is late: it is run through
// the partial matches immediately, best-effort. Events on topics no
// pattern step subscribes to are ignored — they can never bind.
func (m *Machine) Feed(ev *types.Event) {
	if _, ok := m.pat.schemaOf[ev.Topic]; !ok {
		return
	}
	cl := ev.Clone()
	if cl.Tuple.TS <= m.wm {
		m.process(cl)
		return
	}
	m.buf = append(m.buf, cl)
}

// AdvanceTo moves the watermark to t — a promise that no event with
// timestamp ≤ t will be fed later (Timer punctuation in-system). Buffered
// events up to t are released in canonical order and expired partial
// matches are retired: pending matches behind trailing negation or
// Kleene steps whose deadline has passed emit, everything else expired
// is dropped.
func (m *Machine) AdvanceTo(t types.Timestamp) {
	if t <= m.wm {
		return
	}
	m.wm = t
	sort.Slice(m.buf, func(i, j int) bool { return evLess(m.buf[i], m.buf[j]) })
	n := 0
	for n < len(m.buf) && m.buf[n].Tuple.TS <= t {
		m.retire(m.buf[n].Tuple.TS, false)
		m.process(m.buf[n])
		n++
	}
	m.buf = append(m.buf[:0:0], m.buf[n:]...)
	m.retire(t, true)
}

// ObserveBatch is the system entry point: one drained dispatcher run
// feeds the NFA in a single activation. Timer-topic events advance the
// heartbeat; everything else is fed and the per-topic watermark
// (min over step topics of max(last event time, heartbeat)) is advanced
// once at the end of the run.
func (m *Machine) ObserveBatch(evs []*types.Event) {
	for _, ev := range evs {
		ts := ev.Tuple.TS
		if ev.Topic == types.TimerTopic {
			if ts > m.heartbeat {
				m.heartbeat = ts
			}
			if _, subscribed := m.pat.schemaOf[types.TimerTopic]; !subscribed {
				continue
			}
		}
		if _, ok := m.pat.schemaOf[ev.Topic]; !ok {
			continue
		}
		if ts > m.topicLast[ev.Topic] {
			m.topicLast[ev.Topic] = ts
		}
		m.Feed(ev)
	}
	m.AdvanceTo(m.watermark())
}

// watermark computes the releasable horizon: an event at time t can only
// be ordered once every step topic has either shown an event ≥ t or the
// shared Timer heartbeat has passed t.
func (m *Machine) watermark() types.Timestamp {
	wm := types.Timestamp(math.MaxInt64)
	for _, topic := range m.pat.Topics() {
		last := m.topicLast[topic]
		if m.heartbeat > last {
			last = m.heartbeat
		}
		if last < wm {
			wm = last
		}
	}
	if wm == math.MaxInt64 {
		wm = m.heartbeat
	}
	return wm
}

// retire removes expired partial matches: deadline < t (or ≤ t when
// inclusive — the watermark itself proves no further event can reach the
// match). Completable matches — all positive steps bound, or an open
// trailing Kleene step — emit in (deadline, creation) order; the rest
// are dropped.
func (m *Machine) retire(t types.Timestamp, inclusive bool) {
	var done []*partial
	live := m.partials[:0]
	for _, pm := range m.partials {
		expired := pm.deadline < t || (inclusive && pm.deadline == t)
		if !expired {
			live = append(live, pm)
			continue
		}
		if pm.at == len(m.pat.Steps) || (pm.open && m.pat.nextPos[pm.at] < 0) {
			done = append(done, pm)
		}
	}
	m.partials = live
	sort.Slice(done, func(i, j int) bool {
		if done[i].deadline != done[j].deadline {
			return done[i].deadline < done[j].deadline
		}
		return done[i].seq < done[j].seq
	})
	for _, pm := range done {
		m.emit(pm)
	}
}

// process runs one released event through every live partial match in
// creation order (kill by negation guard, close/extend Kleene, bind the
// next step), then lets the event open a fresh partial match —
// skip-till-next-match: every qualifying first-step event starts its own
// match and irrelevant events are skipped, never consumed.
func (m *Machine) process(ev *types.Event) {
	live := m.partials[:0]
	for _, pm := range m.partials {
		switch m.step(pm, ev) {
		case keep:
			live = append(live, pm)
		case kill:
			// dropped
		case complete:
			m.emit(pm)
		}
	}
	m.partials = live
	m.tryStart(ev)
}

// step advances one partial match by one event.
func (m *Machine) step(pm *partial, ev *types.Event) action {
	lo, hi := m.guardRange(pm)
	for g := lo + 1; g < hi; g++ {
		st := &m.pat.Steps[g]
		if st.Negated && ev.Topic == st.Topic && m.pass(pm, g, ev) {
			return kill
		}
	}
	if pm.at >= len(m.pat.Steps) {
		return keep // pending behind trailing negation until the deadline
	}
	cur := &m.pat.Steps[pm.at]
	if pm.open {
		// Closing the Kleene run has priority over extending it.
		if np := m.pat.nextPos[pm.at]; np >= 0 {
			nst := &m.pat.Steps[np]
			if ev.Topic == nst.Topic && m.pass(pm, np, ev) {
				pm.bind[np] = ev
				return m.advance(pm, np)
			}
		}
		if ev.Topic == cur.Topic && m.pass(pm, pm.at, ev) {
			pm.insts[pm.at] = append(pm.insts[pm.at], ev)
		}
		return keep
	}
	if ev.Topic == cur.Topic && m.pass(pm, pm.at, ev) {
		if cur.Kleene {
			pm.insts[pm.at] = append(pm.insts[pm.at], ev)
			pm.open = true
			return keep
		}
		pm.bind[pm.at] = ev
		return m.advance(pm, pm.at)
	}
	return keep
}

// guardRange returns the exclusive step-index range (lo, hi) whose
// negated steps currently guard the partial match: the negations between
// the last bound positive step and the next expected one (an open Kleene
// step counts as bound).
func (m *Machine) guardRange(pm *partial) (lo, hi int) {
	if pm.at >= len(m.pat.Steps) {
		return m.pat.lastPos, len(m.pat.Steps)
	}
	if pm.open {
		hi = m.pat.nextPos[pm.at]
		if hi < 0 {
			hi = len(m.pat.Steps)
		}
		return pm.at, hi
	}
	return m.pat.prevPos[pm.at], pm.at
}

// advance moves past a freshly bound positive step: on to the next
// positive step, into the pending state behind trailing negations, or to
// completion.
func (m *Machine) advance(pm *partial, bound int) action {
	if np := m.pat.nextPos[bound]; np >= 0 {
		pm.at, pm.open = np, false
		return keep
	}
	if m.pat.trailing {
		pm.at, pm.open = len(m.pat.Steps), false
		return keep
	}
	return complete
}

// pass evaluates a step's filters with ev as the step's candidate
// binding.
func (m *Machine) pass(pm *partial, i int, ev *types.Event) bool {
	st := &m.pat.Steps[i]
	if len(st.Filters) == 0 {
		return true
	}
	old := pm.bind[i]
	pm.bind[i] = ev
	e := env{p: m.pat, bind: pm.bind, insts: pm.insts}
	ok := true
	for _, f := range st.Filters {
		if !e.evalBool(f) {
			ok = false
			break
		}
	}
	pm.bind[i] = old
	return ok
}

// tryStart opens a new partial match if ev qualifies for the first step.
func (m *Machine) tryStart(ev *types.Event) {
	st0 := &m.pat.Steps[0]
	if ev.Topic != st0.Topic {
		return
	}
	n := len(m.pat.Steps)
	pm := &partial{
		seq:   m.nextSeq,
		start: ev.Tuple.TS,
		bind:  make([]*types.Event, n),
		insts: make([][]*types.Event, n),
	}
	if !m.pass(pm, 0, ev) {
		return
	}
	m.nextSeq++
	pm.deadline = types.Timestamp(math.MaxInt64)
	if m.pat.Within > 0 {
		pm.deadline = pm.start + types.Timestamp(m.pat.Within)
	}
	if st0.Kleene {
		pm.insts[0] = append(pm.insts[0], ev)
		pm.open = true
		m.partials = append(m.partials, pm)
		return
	}
	pm.bind[0] = ev
	if m.advance(pm, 0) == complete {
		m.emit(pm)
		return
	}
	m.partials = append(m.partials, pm)
}

// emit evaluates the emit list over a completed match and hands the
// tuple to OnMatch. Evaluation errors skip the match and are reported
// through OnError — the oracle applies the identical rule.
func (m *Machine) emit(pm *partial) {
	e := env{p: m.pat, bind: pm.bind, insts: pm.insts}
	vals, err := e.evalEmit(m.pat.Emit)
	if err != nil {
		m.error(err)
		return
	}
	m.nMatches++
	if m.OnMatch != nil {
		if err := m.OnMatch(vals); err != nil {
			m.error(err)
		}
	}
}

func (m *Machine) error(err error) {
	if m.OnError != nil {
		m.OnError(err)
	}
}

// StateVar is the reserved variable name under which a pattern
// automaton's machine snapshot rides the WAL meta log. Pattern programs
// declare no variables, so the name cannot collide.
const StateVar = "__cep"

// snapshotVersion tags the wire layout of Snapshot/Restore.
const snapshotVersion = 1

// Snapshot serialises the machine's complete matching state — watermark,
// heartbeat, per-topic horizons, reorder buffer, partial matches and the
// match counter — into a string value that survives the WAL meta-log
// round trip (wal.EncodeAutomaton persists scalar variable values
// verbatim).
func (m *Machine) Snapshot() (types.Value, error) {
	enc := wire.NewEncoder(256)
	enc.U8(snapshotVersion)
	enc.I64(int64(m.wm))
	enc.I64(int64(m.heartbeat))
	topics := m.pat.Topics()
	enc.U32(uint32(len(topics)))
	for _, topic := range topics {
		enc.Str(topic)
		enc.I64(int64(m.topicLast[topic]))
	}
	buf := append([]*types.Event(nil), m.buf...)
	sort.Slice(buf, func(i, j int) bool { return evLess(buf[i], buf[j]) })
	enc.U32(uint32(len(buf)))
	for _, ev := range buf {
		if err := encodeEvent(enc, ev); err != nil {
			return types.Nil, err
		}
	}
	enc.U64(m.nextSeq)
	enc.U64(m.nMatches)
	enc.U32(uint32(len(m.partials)))
	for _, pm := range m.partials {
		enc.U64(pm.seq)
		enc.U32(uint32(pm.at))
		if pm.open {
			enc.U8(1)
		} else {
			enc.U8(0)
		}
		enc.I64(int64(pm.start))
		enc.I64(int64(pm.deadline))
		for i := range m.pat.Steps {
			if pm.bind[i] != nil {
				enc.U8(1)
				if err := encodeEvent(enc, pm.bind[i]); err != nil {
					return types.Nil, err
				}
			} else {
				enc.U8(0)
			}
			enc.U32(uint32(len(pm.insts[i])))
			for _, ev := range pm.insts[i] {
				if err := encodeEvent(enc, ev); err != nil {
					return types.Nil, err
				}
			}
		}
	}
	return types.Str(string(enc.Bytes())), nil
}

// Restore replaces the machine's state with a previously snapshotted
// one. The machine must be freshly created for the same pattern.
func (m *Machine) Restore(v types.Value) error {
	s, ok := v.AsStr()
	if !ok {
		return fmt.Errorf("cep: snapshot value has kind %s, want string", v.Kind())
	}
	d := wire.NewDecoder([]byte(s))
	ver, err := d.U8()
	if err != nil {
		return fmt.Errorf("cep: corrupt snapshot: %w", err)
	}
	if ver != snapshotVersion {
		return fmt.Errorf("cep: snapshot version %d not supported", ver)
	}
	wm, err := d.I64()
	if err != nil {
		return err
	}
	hb, err := d.I64()
	if err != nil {
		return err
	}
	m.wm, m.heartbeat = types.Timestamp(wm), types.Timestamp(hb)
	ntop, err := d.U32()
	if err != nil {
		return err
	}
	m.topicLast = make(map[string]types.Timestamp, ntop)
	for i := uint32(0); i < ntop; i++ {
		topic, err := d.Str()
		if err != nil {
			return err
		}
		ts, err := d.I64()
		if err != nil {
			return err
		}
		m.topicLast[topic] = types.Timestamp(ts)
	}
	nbuf, err := d.U32()
	if err != nil {
		return err
	}
	m.buf = m.buf[:0]
	for i := uint32(0); i < nbuf; i++ {
		ev, err := m.decodeEvent(d)
		if err != nil {
			return err
		}
		m.buf = append(m.buf, ev)
	}
	if m.nextSeq, err = d.U64(); err != nil {
		return err
	}
	if m.nMatches, err = d.U64(); err != nil {
		return err
	}
	npart, err := d.U32()
	if err != nil {
		return err
	}
	m.partials = m.partials[:0]
	for i := uint32(0); i < npart; i++ {
		pm := &partial{
			bind:  make([]*types.Event, len(m.pat.Steps)),
			insts: make([][]*types.Event, len(m.pat.Steps)),
		}
		if pm.seq, err = d.U64(); err != nil {
			return err
		}
		at, err := d.U32()
		if err != nil {
			return err
		}
		if int(at) > len(m.pat.Steps) {
			return fmt.Errorf("cep: snapshot partial position %d out of range", at)
		}
		pm.at = int(at)
		open, err := d.U8()
		if err != nil {
			return err
		}
		pm.open = open != 0
		start, err := d.I64()
		if err != nil {
			return err
		}
		deadline, err := d.I64()
		if err != nil {
			return err
		}
		pm.start, pm.deadline = types.Timestamp(start), types.Timestamp(deadline)
		for j := range m.pat.Steps {
			has, err := d.U8()
			if err != nil {
				return err
			}
			if has != 0 {
				if pm.bind[j], err = m.decodeEvent(d); err != nil {
					return err
				}
			}
			ninst, err := d.U32()
			if err != nil {
				return err
			}
			for k := uint32(0); k < ninst; k++ {
				ev, err := m.decodeEvent(d)
				if err != nil {
					return err
				}
				pm.insts[j] = append(pm.insts[j], ev)
			}
		}
		m.partials = append(m.partials, pm)
	}
	return nil
}

func encodeEvent(enc *wire.Encoder, ev *types.Event) error {
	enc.Str(ev.Topic)
	enc.U64(ev.Tuple.Seq)
	enc.I64(int64(ev.Tuple.TS))
	return enc.Values(ev.Tuple.Vals)
}

func (m *Machine) decodeEvent(d *wire.Decoder) (*types.Event, error) {
	topic, err := d.Str()
	if err != nil {
		return nil, err
	}
	schema := m.pat.schemaOf[topic]
	if schema == nil {
		return nil, fmt.Errorf("cep: snapshot references unknown topic %q", topic)
	}
	seq, err := d.U64()
	if err != nil {
		return nil, err
	}
	ts, err := d.I64()
	if err != nil {
		return nil, err
	}
	vals, err := d.Values()
	if err != nil {
		return nil, err
	}
	return &types.Event{
		Topic:  topic,
		Schema: schema,
		Tuple:  &types.Tuple{Seq: seq, TS: types.Timestamp(ts), Vals: vals},
	}, nil
}
