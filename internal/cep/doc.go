// Package cep is the complex-event-processing pattern layer: it compiles
// the GAPL `pattern { ... }` clause (sequence, negation, Kleene
// iteration — ROADMAP item 3, after Bucchi et al.'s Foundations of CEP
// and Barga et al.'s CEDR temporal model) into an NFA-style machine that
// the automaton registry runs in place of the bytecode VM.
//
// # Semantics
//
// Events are totally ordered by the canonical key (application
// timestamp, topic, per-topic commit sequence). Selection is
// skip-till-next-match: every event that qualifies for the first step
// opens its own partial match, each partial match extends with the first
// qualifying event per step, and irrelevant events are skipped, never
// consumed. Kleene steps are greedy with close-on-next-step priority; a
// negated step guards the gap it occupies and kills the partial match
// when a qualifying event arrives there. `within` is an application-time
// window anchored at the first matched event (span ≤ bound, inclusive);
// matches that end in trailing negation or Kleene steps complete when
// the watermark passes their deadline. Matches emit in completion order:
// the canonical key of the closing event, or the deadline for
// punctuation-completed matches.
//
// Out-of-order arrival is handled CEDR-style: fed events are buffered
// until the watermark — min over the step topics of max(latest event
// time, Timer heartbeat) — promises completeness, then released in
// canonical order. Events at or before the watermark are late and run
// through the machine immediately, best-effort. The built-in Timer topic
// is the punctuation vehicle: pattern automata subscribe to it
// implicitly and its tuples retire expired partial matches even when the
// step topics fall silent.
//
// The brute-force reference oracle in oracle_test.go restates these
// rules declaratively (an independent forward scan per candidate start
// event); the differential harness holds the machine bit-identical to it
// across thousands of randomized patterns, streams, segmentations and
// arrival orders.
//
// # Concurrency
//
// A Machine is NOT safe for concurrent use: it has no internal locking.
// The automaton registry serialises all access — ObserveBatch runs on
// the automaton's single dispatcher goroutine, and Snapshot/Restore are
// called under the same mutex that stops the dispatcher's delivery
// callback (automaton.SnapshotVars / registration-time restore). The
// OnMatch and OnError callbacks are invoked synchronously from inside
// ObserveBatch/AdvanceTo and must not call back into the Machine.
// CompilePattern and the resulting Pattern are immutable after
// construction and may be shared.
package cep
