// Package stats provides the summary statistics used by the experiment
// harness: percentiles (Fig. 7), mean/standard deviation and coefficient of
// variation (Fig. 16), online Welford accumulation (Fig. 8's probe), and
// least-squares fitting (the DEBS operator-10 trend detector).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the population standard deviation.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// CV returns the coefficient of variation σ/µ (0 when µ == 0).
func CV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return Stddev(xs) / m
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks. The input need not be sorted.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// FiveNum is the five-number summary the paper's Fig. 7 boxes report:
// minimum, 25th, 50th, 75th percentiles and maximum.
type FiveNum struct {
	Min, P25, P50, P75, Max float64
}

// Summary computes the five-number summary.
func Summary(xs []float64) FiveNum {
	return FiveNum{
		Min: Percentile(xs, 0),
		P25: Percentile(xs, 25),
		P50: Percentile(xs, 50),
		P75: Percentile(xs, 75),
		Max: Percentile(xs, 100),
	}
}

// String renders the summary as "min/p25/p50/p75/max".
func (f FiveNum) String() string {
	return fmt.Sprintf("%.3g/%.3g/%.3g/%.3g/%.3g", f.Min, f.P25, f.P50, f.P75, f.Max)
}

// Welford accumulates mean and variance online (one pass, numerically
// stable). The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add feeds one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the population variance.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Stddev returns the population standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest observation (0 if none).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 if none).
func (w *Welford) Max() float64 { return w.max }

// Reset clears the accumulator.
func (w *Welford) Reset() { *w = Welford{} }

// LeastSquares fits y = slope*x + intercept. It returns an error for fewer
// than two points or degenerate x values.
func LeastSquares(xs, ys []float64) (slope, intercept float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, fmt.Errorf("stats: x and y lengths differ (%d vs %d)", len(xs), len(ys))
	}
	n := len(xs)
	if n < 2 {
		return 0, 0, fmt.Errorf("stats: need at least 2 points, got %d", n)
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	fn := float64(n)
	den := fn*sxx - sx*sx
	if den == 0 {
		return 0, 0, fmt.Errorf("stats: degenerate x values")
	}
	slope = (fn*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / fn
	return slope, intercept, nil
}
