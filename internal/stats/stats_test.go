package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanStddevCV(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v", m)
	}
	if s := Stddev(xs); !approx(s, 2, 1e-9) {
		t.Errorf("Stddev = %v", s)
	}
	if cv := CV(xs); !approx(cv, 0.4, 1e-9) {
		t.Errorf("CV = %v", cv)
	}
	if Mean(nil) != 0 || Stddev(nil) != 0 || CV(nil) != 0 {
		t.Error("empty slices should give 0")
	}
	if CV([]float64{0, 0}) != 0 {
		t.Error("zero mean CV should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	if p := Percentile(xs, 0); p != 15 {
		t.Errorf("P0 = %v", p)
	}
	if p := Percentile(xs, 100); p != 50 {
		t.Errorf("P100 = %v", p)
	}
	if p := Percentile(xs, 50); p != 35 {
		t.Errorf("P50 = %v", p)
	}
	// Interpolated: rank 0.25*(5-1)=1 -> exactly 20.
	if p := Percentile(xs, 25); p != 20 {
		t.Errorf("P25 = %v", p)
	}
	// Between ranks: P40 -> rank 1.6 -> 20 + 0.6*15 = 29.
	if p := Percentile(xs, 40); !approx(p, 29, 1e-9) {
		t.Errorf("P40 = %v", p)
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
	// Input must not be mutated (sorted copy).
	ys := []float64{3, 1, 2}
	_ = Percentile(ys, 50)
	if ys[0] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestSummary(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	f := Summary(xs)
	if f.Min != 1 || f.Max != 5 || f.P50 != 3 || f.P25 != 2 || f.P75 != 4 {
		t.Errorf("Summary = %+v", f)
	}
	if f.String() == "" {
		t.Error("String empty")
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != len(xs) {
		t.Errorf("N = %d", w.N())
	}
	if !approx(w.Mean(), Mean(xs), 1e-9) {
		t.Errorf("Welford mean = %v vs %v", w.Mean(), Mean(xs))
	}
	if !approx(w.Stddev(), Stddev(xs), 1e-9) {
		t.Errorf("Welford stddev = %v vs %v", w.Stddev(), Stddev(xs))
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("min/max = %v/%v", w.Min(), w.Max())
	}
	w.Reset()
	if w.N() != 0 || w.Mean() != 0 || w.Var() != 0 {
		t.Error("Reset failed")
	}
}

func TestLeastSquares(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7}
	slope, icept, err := LeastSquares(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(slope, 2, 1e-9) || !approx(icept, 1, 1e-9) {
		t.Errorf("fit = %v, %v", slope, icept)
	}
	if _, _, err := LeastSquares([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should error")
	}
	if _, _, err := LeastSquares(xs, ys[:2]); err == nil {
		t.Error("length mismatch should error")
	}
	if _, _, err := LeastSquares([]float64{5, 5}, []float64{1, 2}); err == nil {
		t.Error("degenerate x should error")
	}
}

// Property: Welford matches batch statistics for arbitrary data.
func TestWelfordBatchEquivalenceProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		var w Welford
		for i, r := range raw {
			xs[i] = float64(r)
			w.Add(float64(r))
		}
		return approx(w.Mean(), Mean(xs), 1e-6) && approx(w.Stddev(), Stddev(xs), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []int16, aRaw, bRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		a := float64(aRaw) / 255 * 100
		b := float64(bRaw) / 255 * 100
		if a > b {
			a, b = b, a
		}
		pa, pb := Percentile(xs, a), Percentile(xs, b)
		lo, hi := Percentile(xs, 0), Percentile(xs, 100)
		return pa <= pb && pa >= lo && pb <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
