package workload

import (
	"math/rand"
)

// Linear Road (Arasu et al., VLDB'04) is the stream benchmark the paper
// names as its next comparative target (§8). This is a simplified variant
// of its position-report workload: cars drive along an expressway divided
// into segments, emitting periodic position reports; accidents (stopped
// cars) and the congestion they cause drive toll assessment.

// LRReport is one car position report.
type LRReport struct {
	// Tick is the reporting interval index (Linear Road reports every 30
	// simulated seconds; here one tick = one interval).
	Tick int64
	Car  int64
	// Speed in mph; 0 means stopped.
	Speed int64
	// Seg is the expressway segment (0..LRSegments-1).
	Seg int64
	// Pos is the position within the segment.
	Pos int64
}

// LRSegments is the number of segments per expressway.
const LRSegments = 100

// LRConfig parameterises the generator.
type LRConfig struct {
	Seed  int64
	Cars  int
	Ticks int
	// Accidents plants this many two-car pile-ups (two cars stopped at the
	// same position for several ticks).
	Accidents int
}

// DefaultLRConfig is a laptop-scale instance.
func DefaultLRConfig(seed int64) LRConfig {
	return LRConfig{Seed: seed, Cars: 500, Ticks: 120, Accidents: 4}
}

// LRTrace generates position reports in tick order (cars in arbitrary but
// deterministic order within a tick).
func LRTrace(cfg LRConfig) []LRReport {
	if cfg.Cars <= 0 || cfg.Ticks <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	type car struct {
		seg     int64
		pos     int64
		speed   int64
		stopped int // ticks remaining stopped (accident participant)
	}
	cars := make([]car, cfg.Cars)
	for i := range cars {
		cars[i] = car{
			seg:   int64(rng.Intn(LRSegments)),
			pos:   int64(rng.Intn(5280)),
			speed: int64(40 + rng.Intn(40)),
		}
	}
	// Plan accidents: pick a tick, a segment position, and two cars.
	type crash struct {
		tick    int
		a, b    int
		pos     int64
		seg     int64
		lasting int
	}
	var crashes []crash
	for i := 0; i < cfg.Accidents; i++ {
		crashes = append(crashes, crash{
			tick:    5 + rng.Intn(cfg.Ticks*2/3),
			a:       rng.Intn(cfg.Cars),
			b:       rng.Intn(cfg.Cars),
			pos:     int64(rng.Intn(5280)),
			seg:     int64(rng.Intn(LRSegments)),
			lasting: 6 + rng.Intn(6),
		})
	}

	out := make([]LRReport, 0, cfg.Cars*cfg.Ticks)
	for tick := 0; tick < cfg.Ticks; tick++ {
		for _, cr := range crashes {
			if cr.tick == tick && cr.a != cr.b {
				for _, idx := range []int{cr.a, cr.b} {
					cars[idx].seg = cr.seg
					cars[idx].pos = cr.pos
					cars[idx].speed = 0
					cars[idx].stopped = cr.lasting
				}
			}
		}
		for i := range cars {
			c := &cars[i]
			if c.stopped > 0 {
				c.stopped--
				c.speed = 0
				if c.stopped == 0 {
					c.speed = int64(30 + rng.Intn(30))
				}
			} else {
				// Drift speed, advance position, wrap segments.
				c.speed += int64(rng.Intn(11) - 5)
				if c.speed < 10 {
					c.speed = 10
				}
				if c.speed > 100 {
					c.speed = 100
				}
				c.pos += c.speed * 44 / 30 // roughly feet per interval (scaled)
				for c.pos >= 5280 {
					c.pos -= 5280
					c.seg = (c.seg + 1) % LRSegments
				}
			}
			out = append(out, LRReport{
				Tick:  int64(tick),
				Car:   int64(i),
				Speed: c.speed,
				Seg:   c.seg,
				Pos:   c.pos,
			})
		}
	}
	return out
}
