package workload

import "testing"

func TestLRTraceDeterministicAndWellFormed(t *testing.T) {
	cfg := LRConfig{Seed: 3, Cars: 50, Ticks: 40, Accidents: 2}
	a := LRTrace(cfg)
	b := LRTrace(cfg)
	if len(a) != 50*40 {
		t.Fatalf("reports = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same config must give identical traces")
		}
	}
	for _, r := range a {
		if r.Seg < 0 || r.Seg >= LRSegments {
			t.Fatalf("segment out of range: %+v", r)
		}
		if r.Pos < 0 || r.Pos >= 5280 {
			t.Fatalf("position out of range: %+v", r)
		}
		if r.Speed < 0 || r.Speed > 100 {
			t.Fatalf("speed out of range: %+v", r)
		}
	}
	// Ticks are non-decreasing (reports stream in interval order).
	for i := 1; i < len(a); i++ {
		if a[i].Tick < a[i-1].Tick {
			t.Fatal("ticks not ordered")
		}
	}
}

func TestLRTracePlantsAccidents(t *testing.T) {
	trace := LRTrace(LRConfig{Seed: 9, Cars: 100, Ticks: 60, Accidents: 3})
	// An accident shows as a car stopped (speed 0) at the same position
	// for at least 4 consecutive ticks.
	type key struct {
		car int64
		pos int64
	}
	streak := map[key]int{}
	found := false
	lastPos := map[int64]int64{}
	run := map[int64]int{}
	for _, r := range trace {
		if r.Speed == 0 && lastPos[r.Car] == r.Pos {
			run[r.Car]++
			if run[r.Car] >= 3 { // 4 consecutive reports incl. the first
				found = true
			}
		} else if r.Speed == 0 {
			run[r.Car] = 0
		} else {
			run[r.Car] = -1
		}
		lastPos[r.Car] = r.Pos
	}
	_ = streak
	if !found {
		t.Error("planted accidents not visible as stopped-car streaks")
	}
}

func TestLRTraceEdgeCases(t *testing.T) {
	if LRTrace(LRConfig{Cars: 0, Ticks: 5}) != nil {
		t.Error("zero cars should give nil")
	}
	if LRTrace(LRConfig{Cars: 5, Ticks: 0}) != nil {
		t.Error("zero ticks should give nil")
	}
	if got := DefaultLRConfig(1); got.Cars <= 0 || got.Ticks <= 0 {
		t.Error("default config malformed")
	}
}
