// Package workload generates the synthetic datasets the experiments run
// on. Each generator substitutes for a dataset the paper used but did not
// publish (see DESIGN.md §2):
//
//   - HTTPTrace replaces the Homework router's HTTP log — 264,745 requests
//     to 5,572 unique hosts with a Zipfian rank/frequency shape (Figs. 15
//     and 16).
//   - StockTrace replaces the Cayuga distribution's anonymised stock feed —
//     112,635 events with random-walk prices, planted double-top (M-shaped)
//     patterns and monotone runs (Fig. 18, queries Q1-Q3).
//   - FlowTrace generates network 5-tuple flow records (Figs. 9/10 and the
//     bandwidth example).
//   - DEBSTrace generates manufacturing-equipment sensor events in the
//     shape of the DEBS 2012 Grand Challenge feed (§5.1).
//
// All generators take explicit seeds and are fully deterministic.
package workload

import (
	"fmt"
	"math/rand"
)

// Paper-reported dataset dimensions.
const (
	// HTTPRequests is the size of the Homework HTTP log (§6.4).
	HTTPRequests = 264745
	// HTTPHosts is the number of unique hosts in that log.
	HTTPHosts = 5572
	// StockEvents is the size of the Cayuga stock dataset (§6.5).
	StockEvents = 112635
)

// HTTPRequest is one outgoing request observation.
type HTTPRequest struct {
	Host string
}

// HTTPTrace generates n requests over hosts hosts with a Zipfian
// popularity distribution (s ≈ 1.01 reproduces the rank/frequency slope of
// Fig. 15: the top host receives a few times 10^4 requests).
func HTTPTrace(seed int64, n, hosts int) []HTTPRequest {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.01, 1, uint64(hosts-1))
	out := make([]HTTPRequest, n)
	for i := range out {
		out[i] = HTTPRequest{Host: fmt.Sprintf("host%04d.example.org", zipf.Uint64())}
	}
	return out
}

// PaperHTTPTrace generates the full-size substitute for the Homework log.
func PaperHTTPTrace(seed int64) []HTTPRequest {
	return HTTPTrace(seed, HTTPRequests, HTTPHosts)
}

// StockEvent is one tick of the stock feed.
type StockEvent struct {
	Name   string
	Price  float64
	Volume int64
}

// StockConfig parameterises the stock generator.
type StockConfig struct {
	Seed    int64
	Events  int
	Symbols int
	// DoubleTops plants approximately this many M-shaped price patterns
	// (Q2's target). Zero plants none.
	DoubleTops int
	// RunLength plants monotone increasing runs of this length at random
	// points (Q3's target). Zero plants none.
	RunLength int
	Runs      int
}

// DefaultStockConfig matches the paper's dataset size.
func DefaultStockConfig(seed int64) StockConfig {
	return StockConfig{
		Seed:       seed,
		Events:     StockEvents,
		Symbols:    50,
		DoubleTops: 200,
		RunLength:  8,
		Runs:       400,
	}
}

// StockTrace generates the synthetic feed. Prices follow independent
// per-symbol random walks bounded away from zero; planted patterns overlay
// deterministic shapes on randomly chosen symbols.
func StockTrace(cfg StockConfig) []StockEvent {
	if cfg.Events <= 0 || cfg.Symbols <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	names := make([]string, cfg.Symbols)
	price := make([]float64, cfg.Symbols)
	for i := range names {
		names[i] = fmt.Sprintf("SYM%03d", i)
		price[i] = 20 + rng.Float64()*80
	}
	out := make([]StockEvent, 0, cfg.Events)

	// Plan planted patterns at random offsets.
	type plant struct {
		at   int
		kind int // 0 = double top, 1 = increasing run
		sym  int
		step int
	}
	var plants []plant
	for i := 0; i < cfg.DoubleTops; i++ {
		plants = append(plants, plant{at: rng.Intn(cfg.Events), kind: 0, sym: rng.Intn(cfg.Symbols)})
	}
	for i := 0; i < cfg.Runs; i++ {
		plants = append(plants, plant{at: rng.Intn(cfg.Events), kind: 1, sym: rng.Intn(cfg.Symbols)})
	}
	active := make(map[int]*plant) // sym -> in-progress plant
	next := make(map[int][]*plant) // at -> plants starting there
	for i := range plants {
		p := &plants[i]
		next[p.at] = append(next[p.at], p)
	}

	// The double-top shape: A(low) B(high) C(mid) D(high) E,F(low) over 12
	// steps: ascend, descend, ascend, descend below A.
	dtShape := []float64{0, +4, +8, +4, +2, +4, +8, +4, 0, -2, -3, -4}

	for i := 0; i < cfg.Events; i++ {
		for _, p := range next[i] {
			if _, busy := active[p.sym]; !busy {
				q := p
				q.step = 0
				active[p.sym] = q
			}
		}
		sym := rng.Intn(cfg.Symbols)
		if p, busy := active[sym]; busy {
			base := price[sym]
			switch p.kind {
			case 0:
				price[sym] = base + dtShape[p.step] - func() float64 {
					if p.step == 0 {
						return 0
					}
					return dtShape[p.step-1]
				}()
				p.step++
				if p.step >= len(dtShape) {
					delete(active, sym)
				}
			case 1:
				price[sym] = base + 0.5 + rng.Float64()
				p.step++
				if p.step >= cfg.RunLength {
					delete(active, sym)
				}
			}
		} else {
			price[sym] += rng.NormFloat64()
			if price[sym] < 1 {
				price[sym] = 1
			}
		}
		out = append(out, StockEvent{
			Name:   names[sym],
			Price:  float64(int(price[sym]*100)) / 100,
			Volume: int64(100 + rng.Intn(10_000)),
		})
	}
	return out
}

// Flow is one network flow record matching the paper's Flows schema
// (Fig. 3).
type Flow struct {
	Protocol int64
	SrcIP    string
	SrcPort  int64
	DstIP    string
	DstPort  int64
	NPkts    int64
	NBytes   int64
}

// FlowTrace generates n flow records over the given number of distinct
// destination hosts.
func FlowTrace(seed int64, n, hosts int) []Flow {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Flow, n)
	for i := range out {
		proto := int64(6)
		if rng.Intn(10) == 0 {
			proto = 17
		}
		out[i] = Flow{
			Protocol: proto,
			SrcIP:    fmt.Sprintf("10.0.0.%d", 1+rng.Intn(250)),
			SrcPort:  int64(1024 + rng.Intn(60000)),
			DstIP:    fmt.Sprintf("192.168.1.%d", 1+rng.Intn(hosts)),
			DstPort:  int64([]int{80, 443, 53, 22}[rng.Intn(4)]),
			NPkts:    int64(1 + rng.Intn(100)),
			NBytes:   int64(64 + rng.Intn(150_000)),
		}
	}
	return out
}

// DEBSEvent is a simplified manufacturing-equipment sensor event in the
// shape of the DEBS 2012 Grand Challenge feed: a monotone timestamp, two
// boolean valve signals whose transitions define states S5 and S8, and an
// analogue sensor reading.
type DEBSEvent struct {
	TS     int64 // ns
	Valve1 bool
	Valve2 bool
	Sensor float64
}

// DEBSTrace generates n sensor events with valve state transitions every
// ~transitionEvery events and a slow upward drift in the transition delay,
// so that the query-1 trend detector (least-squares over a 24h window) has
// an increase to find.
func DEBSTrace(seed int64, n, transitionEvery int) []DEBSEvent {
	rng := rand.New(rand.NewSource(seed))
	out := make([]DEBSEvent, n)
	v1, v2 := false, false
	ts := int64(0)
	for i := range out {
		ts += int64(900_000 + rng.Intn(200_000)) // ~1ms cadence
		if transitionEvery > 0 && i%transitionEvery == transitionEvery/2 {
			v1 = !v1
		}
		if transitionEvery > 0 && i%transitionEvery == 0 && i > 0 {
			// Drift: transitions of valve2 lag progressively further.
			lag := int64(i / transitionEvery * 1000)
			ts += lag
			v2 = !v2
		}
		out[i] = DEBSEvent{
			TS:     ts,
			Valve1: v1,
			Valve2: v2,
			Sensor: 50 + 10*rng.NormFloat64(),
		}
	}
	return out
}
