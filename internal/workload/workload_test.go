package workload

import (
	"math"
	"sort"
	"testing"
)

func TestHTTPTraceDeterministic(t *testing.T) {
	a := HTTPTrace(1, 1000, 100)
	b := HTTPTrace(1, 1000, 100)
	if len(a) != 1000 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give identical traces")
		}
	}
	c := HTTPTrace(2, 1000, 100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestHTTPTraceZipfShape(t *testing.T) {
	trace := HTTPTrace(7, 50_000, 2000)
	counts := map[string]int{}
	for _, r := range trace {
		counts[r.Host]++
	}
	freqs := make([]int, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	// Zipfian: the top host dominates; rank-1/rank-10 ratio is large, and
	// rank-frequency decays roughly like 1/rank (slope ~ -1 in log-log).
	if len(freqs) < 100 {
		t.Fatalf("only %d distinct hosts", len(freqs))
	}
	if freqs[0] < 5*freqs[9] {
		t.Errorf("not head-heavy: rank1=%d rank10=%d", freqs[0], freqs[9])
	}
	r1 := math.Log10(float64(freqs[0]) / float64(freqs[99]))
	rr := math.Log10(100.0)
	slope := r1 / rr
	if slope < 0.5 || slope > 1.8 {
		t.Errorf("log-log decay slope ≈ %.2f, expected roughly 1", slope)
	}
}

func TestPaperHTTPTraceDimensions(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size trace in -short mode")
	}
	trace := PaperHTTPTrace(15)
	if len(trace) != HTTPRequests {
		t.Fatalf("requests = %d", len(trace))
	}
	hosts := map[string]struct{}{}
	for _, r := range trace {
		hosts[r.Host] = struct{}{}
	}
	// The Zipf generator draws from HTTPHosts possible hosts; nearly all
	// should be hit at this volume.
	if len(hosts) < HTTPHosts/2 || len(hosts) > HTTPHosts {
		t.Errorf("distinct hosts = %d, want close to %d", len(hosts), HTTPHosts)
	}
}

func TestStockTraceDeterministicAndBounded(t *testing.T) {
	cfg := StockConfig{Seed: 3, Events: 5000, Symbols: 10, DoubleTops: 5, RunLength: 6, Runs: 10}
	a := StockTrace(cfg)
	b := StockTrace(cfg)
	if len(a) != 5000 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same config must give identical traces")
		}
	}
	syms := map[string]struct{}{}
	for _, ev := range a {
		if ev.Price < 0 {
			t.Fatalf("negative price %v", ev.Price)
		}
		if ev.Volume <= 0 {
			t.Fatalf("non-positive volume %v", ev.Volume)
		}
		syms[ev.Name] = struct{}{}
	}
	if len(syms) != 10 {
		t.Errorf("symbols = %d", len(syms))
	}
}

func TestStockTracePlantsRisingRuns(t *testing.T) {
	cfg := StockConfig{Seed: 5, Events: 20_000, Symbols: 5, RunLength: 8, Runs: 50}
	trace := StockTrace(cfg)
	// Look for at least one strictly increasing run of length >= 5 within a
	// single symbol's subsequence.
	last := map[string]float64{}
	runLen := map[string]int{}
	best := 0
	for _, ev := range trace {
		if prev, ok := last[ev.Name]; ok && ev.Price > prev {
			runLen[ev.Name]++
			if runLen[ev.Name] > best {
				best = runLen[ev.Name]
			}
		} else {
			runLen[ev.Name] = 0
		}
		last[ev.Name] = ev.Price
	}
	if best < 5 {
		t.Errorf("longest rising run = %d, planted runs missing", best)
	}
}

func TestStockTraceEdgeCases(t *testing.T) {
	if StockTrace(StockConfig{Events: 0, Symbols: 5}) != nil {
		t.Error("zero events should give nil")
	}
	if StockTrace(StockConfig{Events: 5, Symbols: 0}) != nil {
		t.Error("zero symbols should give nil")
	}
}

func TestDefaultStockConfig(t *testing.T) {
	cfg := DefaultStockConfig(9)
	if cfg.Events != StockEvents {
		t.Errorf("events = %d", cfg.Events)
	}
}

func TestFlowTrace(t *testing.T) {
	flows := FlowTrace(11, 1000, 16)
	if len(flows) != 1000 {
		t.Fatalf("len = %d", len(flows))
	}
	for _, f := range flows {
		if f.NBytes < 64 || f.NPkts < 1 {
			t.Fatalf("bad flow %+v", f)
		}
		if f.Protocol != 6 && f.Protocol != 17 {
			t.Fatalf("bad protocol %d", f.Protocol)
		}
	}
	// Determinism.
	again := FlowTrace(11, 1000, 16)
	if again[500] != flows[500] {
		t.Error("flow trace not deterministic")
	}
}

func TestDEBSTrace(t *testing.T) {
	evs := DEBSTrace(13, 10_000, 100)
	if len(evs) != 10_000 {
		t.Fatalf("len = %d", len(evs))
	}
	// Timestamps strictly increase.
	transitions := 0
	for i := 1; i < len(evs); i++ {
		if evs[i].TS <= evs[i-1].TS {
			t.Fatalf("timestamps not monotone at %d", i)
		}
		if evs[i].Valve1 != evs[i-1].Valve1 {
			transitions++
		}
	}
	if transitions < 50 {
		t.Errorf("valve transitions = %d, want ~100", transitions)
	}
}
