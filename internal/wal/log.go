package wal

import (
	"fmt"
	"path/filepath"
	"sync"
)

// segmentName renders the on-disk name of a log segment for an epoch.
func segmentName(epoch uint64) string { return fmt.Sprintf("wal-%08d.log", epoch) }

// snapName renders the on-disk name of a snapshot for an epoch; the
// snapshot covers every segment with a smaller epoch.
func snapName(epoch uint64) string { return fmt.Sprintf("snap-%08d", epoch) }

// logMagic opens every segment file; replay refuses files without it.
var logMagic = []byte("UNIWAL1\n")

// snapMagic opens every snapshot file.
var snapMagic = []byte("UNISNP1\n")

// log is one domain's append path: the current segment file plus the
// group-commit machinery. Appends are serialised by the caller (the
// cache's commit-domain mutex); Sync may be called concurrently by many
// committers and batches their fsyncs — the first waiter whose records
// are unsynced becomes the sync leader, fsyncs once for everything
// appended so far, and wakes the group.
type log struct {
	fs     FS
	dir    string
	nosync bool
	policy FsyncErrorPolicy

	mu      sync.Mutex
	cond    *sync.Cond
	f       File
	epoch   uint64
	size    int64 // bytes appended to the current segment (incl. magic)
	live    int64 // bytes across all live segments (stats + threshold)
	synced  int64 // current-segment bytes known durable
	syncing bool
	closed  bool
	failed  error // latched write/fsync failure; poisons the log until reopen
	// retryable marks the latched failure recoverable: a failed fsync under
	// FsyncLatchRetry, where the file holds no torn bytes we wrote — only
	// pages the kernel may have dropped. rotateRetry/clearFailure can then
	// restore the log; write errors and short writes are never retryable.
	retryable bool

	fsyncs uint64 // fsync calls issued (stats)
}

// openLogAt opens (creating if needed) the segment for epoch, whose
// current size on disk is size and which carries prior live bytes from
// older segments.
func openLogAt(fs FS, dir string, epoch uint64, size, priorLive int64, nosync bool, policy FsyncErrorPolicy) (*log, error) {
	path := filepath.Join(dir, segmentName(epoch))
	f, err := fs.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	l := &log{fs: fs, dir: dir, nosync: nosync, policy: policy, f: f, epoch: epoch, size: size, live: priorLive + size, synced: size}
	l.cond = sync.NewCond(&l.mu)
	if size == 0 {
		if err := l.writeLocked(logMagic); err != nil {
			_ = f.Close()
			return nil, err
		}
	}
	return l, nil
}

// failLocked latches err as the log's permanent failure and wakes every
// group-commit waiter. Once latched, Append, Sync and Rotate all fail
// until the file is reopened (recovery re-verifies the records and drops
// any torn tail): accepting appends after torn bytes would ack commits
// that replay can never reach, and retrying an fsync on the same fd can
// falsely succeed after the kernel dropped the dirty pages.
func (l *log) failLocked(err error) error {
	if l.failed == nil {
		l.failed = fmt.Errorf("wal: log failed: %w", err)
		l.retryable = false
	}
	l.cond.Broadcast()
	return l.failed
}

// failSyncLocked latches a group-commit fsync failure. Under
// FsyncLatchRetry the latch is marked retryable — the file carries no torn
// bytes of ours, only pages the kernel may have dropped, so abandoning the
// segment and snapshotting past it can restore the log.
func (l *log) failSyncLocked(err error) error {
	if l.failed == nil {
		l.failed = fmt.Errorf("wal: log failed: %w", err)
		l.retryable = l.policy == FsyncLatchRetry
	}
	l.cond.Broadcast()
	return l.failed
}

// writeLocked writes b fully to the current segment. A write error or
// short write latches the log failed: the torn bytes stay at the tail,
// and nothing may be appended after them (replay's checksum walk stops
// there, so anything past the tear would be acked-but-unrecoverable).
func (l *log) writeLocked(b []byte) error {
	n, err := l.f.Write(b)
	l.size += int64(n)
	l.live += int64(n)
	if err != nil {
		return l.failLocked(err)
	}
	if n != len(b) {
		return l.failLocked(fmt.Errorf("short write (%d of %d bytes)", n, len(b)))
	}
	return nil
}

// Off is a durability token: the segment epoch and offset a record ends
// at. Sync(off) returns once everything up to it is on stable storage.
type Off struct {
	epoch uint64
	off   int64
}

// Append frames payload and appends it to the current segment, returning
// the durability token Sync waits on.
func (l *log) Append(payload []byte) (Off, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return Off{}, fmt.Errorf("wal: log closed")
	}
	if l.failed != nil {
		return Off{}, l.failed
	}
	if err := l.writeLocked(appendFrame(nil, payload)); err != nil {
		return Off{}, err
	}
	return Off{epoch: l.epoch, off: l.size}, nil
}

// Sync blocks until the record behind the token is durable (group
// commit). A token from a rotated-away segment is already durable —
// Rotate fsyncs the outgoing segment before switching. With nosync it
// returns immediately: the OS flushes on its own schedule and crash
// recovery surfaces whatever made it to disk.
func (l *log) Sync(o Off) error {
	if l.nosync {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.epoch == o.epoch && l.synced < o.off {
		if l.closed {
			return fmt.Errorf("wal: log closed")
		}
		if l.failed != nil {
			// A previous write or fsync failed and the record is not yet
			// durable. No retry can make it so: the log is poisoned until
			// reopen.
			return l.failed
		}
		if l.syncing {
			// A leader's fsync is in flight; it may already cover our
			// records. Wait for its verdict.
			l.cond.Wait()
			continue
		}
		// Become the sync leader: fsync everything appended so far, so
		// commits that landed while the previous fsync ran ride this one.
		l.syncing = true
		target := l.size
		f := l.f
		l.mu.Unlock()
		err := f.Sync()
		l.mu.Lock()
		l.syncing = false
		l.fsyncs++
		if err != nil {
			// The kernel may have dropped the dirty pages while marking
			// them clean; a retried fsync on this fd could report success
			// for data that is gone. Latch the failure for every waiter
			// and every later commit (fsyncgate) — recoverably so under
			// FsyncLatchRetry.
			return l.failSyncLocked(err)
		}
		l.cond.Broadcast()
		if target > l.synced {
			l.synced = target
		}
	}
	return nil
}

// Rotate closes the current segment and starts a fresh one at epoch+1.
// The caller must guarantee no concurrent Append (the cache holds the
// commit-domain mutex); in-flight Sync waiters are woken and re-resolve
// against the already-synced watermark.
func (l *log) Rotate() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: log closed")
	}
	if l.failed != nil {
		return 0, l.failed
	}
	for l.syncing {
		l.cond.Wait()
	}
	if l.failed != nil {
		return 0, l.failed
	}
	// Make the outgoing segment durable before abandoning the handle —
	// its records are only superseded once the snapshot covering them is
	// on disk, and that write happens after this rotation.
	if !l.nosync {
		if err := l.f.Sync(); err != nil {
			return 0, l.failLocked(err)
		}
		l.fsyncs++
	}
	if err := l.f.Close(); err != nil {
		return 0, l.failLocked(err)
	}
	epoch := l.epoch + 1
	f, err := l.fs.OpenAppend(filepath.Join(l.dir, segmentName(epoch)))
	if err != nil {
		// The old handle is gone and no new one exists: nothing can be
		// appended safely until reopen.
		return 0, l.failLocked(err)
	}
	l.f = f
	l.epoch = epoch
	l.size = 0
	// Everything in the old segment is on disk; the new segment starts
	// clean. Waiters on old offsets are satisfied by construction, but
	// synced tracks the new segment now.
	l.synced = 0
	l.cond.Broadcast()
	if err := l.writeLocked(logMagic); err != nil {
		return 0, err
	}
	return epoch, nil
}

// dropLiveBelow subtracts purged segment bytes from the live counter.
func (l *log) dropLiveBelow(bytes int64) {
	l.mu.Lock()
	l.live -= bytes
	if l.live < l.size {
		l.live = l.size
	}
	l.mu.Unlock()
}

// Size returns the current segment's size in bytes.
func (l *log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// LiveBytes returns the bytes across all live (unpurged) segments.
func (l *log) LiveBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.live
}

// Failed returns the latched failure (nil while the log is healthy).
func (l *log) Failed() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// Fsyncs returns the number of fsync calls issued.
func (l *log) Fsyncs() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.fsyncs
}

// failedRetryable reports whether the log is latched with a recoverable
// fsync failure.
func (l *log) failedRetryable() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed != nil && l.retryable
}

// rotateRetry abandons the suspect segment of a retryably-latched log and
// opens a fresh one at the next epoch, returning that epoch. The latch
// stays on — appends keep failing — until clearFailure, which the owner
// calls only once a snapshot covering the abandoned segment is durable:
// clearing earlier would let acked records land beyond a possibly-torn
// mid-chain segment, where recovery's gap quarantine would drop them. The
// suspect segment itself is left on disk: its acked prefix is still the
// durable truth until the snapshot supersedes it. Any failure here makes
// the latch permanent.
func (l *log) rotateRetry() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: log closed")
	}
	if l.failed == nil {
		return 0, fmt.Errorf("wal: log is not failed")
	}
	if !l.retryable {
		return 0, l.failed
	}
	for l.syncing {
		l.cond.Wait()
	}
	// The fd is distrusted; its close verdict does not matter.
	_ = l.f.Close()
	epoch := l.epoch + 1
	f, err := l.fs.OpenAppend(filepath.Join(l.dir, segmentName(epoch)))
	if err != nil {
		l.retryable = false
		return 0, l.failed
	}
	l.f = f
	l.epoch = epoch
	l.size = 0
	l.synced = 0
	n, werr := l.f.Write(logMagic)
	l.size += int64(n)
	l.live += int64(n)
	if werr != nil || n != len(logMagic) {
		l.retryable = false
		return 0, l.failed
	}
	return epoch, nil
}

// clearFailure lifts a retryable latch after the owner made a covering
// snapshot durable; it reports whether the log is healthy afterwards.
func (l *log) clearFailure() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil && !l.retryable {
		return false
	}
	l.failed = nil
	l.retryable = false
	l.cond.Broadcast()
	return true
}

// poison latches err as the log's permanent failure: every later Append,
// Sync and Rotate fails until the file is reopened. The owner calls it
// when memory and log have diverged (a post-append apply failure) so
// neither side can drift further.
func (l *log) poison(err error) {
	l.mu.Lock()
	_ = l.failLocked(err)
	l.mu.Unlock()
}

// Close fsyncs (unless nosync, or when the log is already failed — a
// retried fsync on a failed fd can falsely succeed) and closes the
// segment.
func (l *log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	for l.syncing {
		l.cond.Wait()
	}
	l.closed = true
	l.cond.Broadcast()
	var err error
	if !l.nosync && l.failed == nil {
		err = l.f.Sync()
		l.fsyncs++
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}
