package wal

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is the writable handle the log appends through. It is the
// fault-injection surface for write-path failures: tests substitute a File
// whose Write short-writes or whose Sync fails on the Nth call.
type File interface {
	io.Writer
	io.Closer
	// Sync flushes the file's data to stable storage (fsync).
	Sync() error
}

// FS abstracts the filesystem operations the WAL performs, so tests can
// inject deterministic failures (write, fsync, rename) and torn final
// records without touching a real disk's failure modes. Production code
// uses OS.
type FS interface {
	// MkdirAll creates dir and its parents.
	MkdirAll(dir string) error
	// OpenAppend opens path for appending, creating it if absent.
	OpenAppend(path string) (File, error)
	// ReadFile returns the full contents of path.
	ReadFile(path string) ([]byte, error)
	// ReadDir returns the names (not paths) of dir's entries, sorted.
	ReadDir(dir string) ([]string, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
	// Truncate cuts path to size bytes (recovery drops a torn tail).
	Truncate(path string, size int64) error
	// SyncDir fsyncs a directory, making renames and creates durable.
	SyncDir(dir string) error
}

// OS is the production FS over the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(path string) error { return os.Remove(path) }

func (osFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
