package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"unicache/internal/types"
)

// --- fault-injection FS double ---

// faultFS wraps the real filesystem with deterministic failures: each
// countdown, once it reaches zero, fails every further call of that kind.
// A negative countdown never fires. shortWriteAt additionally makes the
// matching write a torn one: half the bytes land before the error.
type faultFS struct {
	inner FS

	mu            sync.Mutex
	writesLeft    int // fail writes after this many succeed (-1 = never)
	syncsLeft     int
	renamesLeft   int
	truncatesLeft int
	shortWrite    bool // the failing write lands half its bytes first
}

func newFaultFS() *faultFS {
	return &faultFS{inner: OS, writesLeft: -1, syncsLeft: -1, renamesLeft: -1, truncatesLeft: -1}
}

func (f *faultFS) MkdirAll(dir string) error            { return f.inner.MkdirAll(dir) }
func (f *faultFS) ReadFile(path string) ([]byte, error) { return f.inner.ReadFile(path) }
func (f *faultFS) ReadDir(dir string) ([]string, error) { return f.inner.ReadDir(dir) }
func (f *faultFS) Remove(path string) error             { return f.inner.Remove(path) }
func (f *faultFS) SyncDir(dir string) error             { return f.inner.SyncDir(dir) }

func (f *faultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	fail := f.renamesLeft == 0
	if f.renamesLeft > 0 {
		f.renamesLeft--
	}
	f.mu.Unlock()
	if fail {
		return fmt.Errorf("injected rename failure")
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *faultFS) Truncate(path string, size int64) error {
	f.mu.Lock()
	fail := f.truncatesLeft == 0
	if f.truncatesLeft > 0 {
		f.truncatesLeft--
	}
	f.mu.Unlock()
	if fail {
		return fmt.Errorf("injected truncate failure")
	}
	return f.inner.Truncate(path, size)
}

func (f *faultFS) OpenAppend(path string) (File, error) {
	inner, err := f.inner.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

type faultFile struct {
	fs    *faultFS
	inner File
}

func (ff *faultFile) Write(b []byte) (int, error) {
	ff.fs.mu.Lock()
	fail := ff.fs.writesLeft == 0
	short := ff.fs.shortWrite
	if ff.fs.writesLeft > 0 {
		ff.fs.writesLeft--
	}
	ff.fs.mu.Unlock()
	if fail {
		if short && len(b) > 1 {
			n, _ := ff.inner.Write(b[:len(b)/2])
			return n, fmt.Errorf("injected torn write")
		}
		return 0, fmt.Errorf("injected write failure")
	}
	return ff.inner.Write(b)
}

func (ff *faultFile) Sync() error {
	ff.fs.mu.Lock()
	fail := ff.fs.syncsLeft == 0
	if ff.fs.syncsLeft > 0 {
		ff.fs.syncsLeft--
	}
	ff.fs.mu.Unlock()
	if fail {
		return fmt.Errorf("injected fsync failure")
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Close() error { return ff.inner.Close() }

// --- helpers ---

func testSchema(t *testing.T) *types.Schema {
	t.Helper()
	s, err := types.NewSchema("KV", true, 0,
		types.Column{Name: "k", Type: types.ColVarchar},
		types.Column{Name: "n", Type: types.ColInt})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func batchPayload(t *testing.T, firstSeq uint64, key string, n int64) []byte {
	t.Helper()
	p, err := EncodeBatch(firstSeq, types.Timestamp(1000+int64(firstSeq)), []*types.Tuple{
		{Vals: []types.Value{types.Str(key), types.Int(n)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// openAndCommit opens a fresh manager over dir, creates domain KV and
// appends n one-row batches, syncing each.
func openAndCommit(t *testing.T, dir string, fs FS, n int) *Manager {
	t.Helper()
	m, err := Open(dir, Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.CreateDomain("KV", testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		off, err := d.Append(batchPayload(t, uint64(i), fmt.Sprintf("k%03d", i), int64(i)))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if err := d.Sync(off); err != nil {
			t.Fatalf("sync %d: %v", i, err)
		}
	}
	return m
}

// replayAll recovers dir and returns the decoded records per domain.
func replayAll(t *testing.T, dir string, fs FS) (map[string][]any, *Manager) {
	t.Helper()
	m, err := Open(dir, Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	recs := make(map[string][]any)
	var mu sync.Mutex
	if err := m.Recover(func(name string) (Sink, error) {
		return func(rec any, fromSnapshot bool) error {
			mu.Lock()
			recs[name] = append(recs[name], rec)
			mu.Unlock()
			return nil
		}, nil
	}); err != nil {
		t.Fatalf("recover: %v", err)
	}
	return recs, m
}

func batchSeqs(recs []any) []uint64 {
	var out []uint64
	for _, r := range recs {
		if b, ok := r.(*BatchRec); ok {
			out = append(out, b.FirstSeq)
		}
	}
	return out
}

func segPath(dir string, epoch uint64) string {
	return filepath.Join(dir, "domains", "KV", segmentName(epoch))
}

// --- round trip ---

func TestRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := openAndCommit(t, dir, OS, 5)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	recs, m2 := replayAll(t, dir, OS)
	defer m2.Close()
	kv := recs["KV"]
	if len(kv) != 6 { // schema + 5 batches
		t.Fatalf("replayed %d records, want 6: %#v", len(kv), kv)
	}
	if _, ok := kv[0].(*SchemaRec); !ok {
		t.Fatalf("first record is %T, want *SchemaRec", kv[0])
	}
	for i, seq := range batchSeqs(kv) {
		if seq != uint64(i+1) {
			t.Fatalf("batch %d has firstSeq %d, want %d", i, seq, i+1)
		}
	}
	if got := m2.ManagerStats().Replayed; got != 6 {
		t.Fatalf("Replayed = %d, want 6", got)
	}
	// The recovered domain accepts further appends.
	d := m2.Domain("KV")
	if d == nil {
		t.Fatal("recovered domain not resolvable")
	}
	off, err := d.Append(batchPayload(t, 6, "k006", 6))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(off); err != nil {
		t.Fatal(err)
	}
}

func TestDomainNameEncoding(t *testing.T) {
	for _, name := range []string{"KV", "weird/name", "ün!côde", "a%b", "..", "UPPER_lower-123"} {
		enc := encodeName(name)
		if strings.ContainsAny(enc, "/\\") {
			t.Fatalf("encodeName(%q) = %q contains a path separator", name, enc)
		}
		dec, err := decodeName(enc)
		if err != nil {
			t.Fatalf("decodeName(%q): %v", enc, err)
		}
		if dec != name {
			t.Fatalf("roundtrip %q -> %q -> %q", name, enc, dec)
		}
	}
}

// --- torn tails ---

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	m := openAndCommit(t, dir, OS, 4)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the final record: drop its last 3 bytes.
	path := segPath(dir, 0)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, int64(len(data)-3)); err != nil {
		t.Fatal(err)
	}

	recs, m2 := replayAll(t, dir, OS)
	kv := recs["KV"]
	if got := batchSeqs(kv); len(got) != 3 {
		t.Fatalf("replayed batches %v, want the 3-batch prefix", got)
	}
	st := m2.ManagerStats()
	if st.TornTails != 1 {
		t.Fatalf("TornTails = %d, want 1", st.TornTails)
	}
	// The tail was truncated away: appends continue cleanly and a second
	// recovery sees no damage.
	d := m2.Domain("KV")
	off, err := d.Append(batchPayload(t, 4, "k004", 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(off); err != nil {
		t.Fatal(err)
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}

	recs3, m3 := replayAll(t, dir, OS)
	defer m3.Close()
	if got := batchSeqs(recs3["KV"]); len(got) != 4 || got[3] != 4 {
		t.Fatalf("after repair replayed batches %v, want seqs 1..4", got)
	}
	if st := m3.ManagerStats(); st.TornTails != 0 {
		t.Fatalf("TornTails after repair = %d, want 0", st.TornTails)
	}
}

func TestTornWriteViaFaultFS(t *testing.T) {
	dir := t.TempDir()
	ffs := newFaultFS()
	m, err := Open(dir, Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.CreateDomain("KV", testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		off, err := d.Append(batchPayload(t, uint64(i), fmt.Sprintf("k%03d", i), int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Sync(off); err != nil {
			t.Fatal(err)
		}
	}
	// The next write tears: half the frame lands, then the error surfaces
	// to the committer.
	ffs.mu.Lock()
	ffs.writesLeft, ffs.shortWrite = 0, true
	ffs.mu.Unlock()
	if _, err := d.Append(batchPayload(t, 3, "k003", 3)); err == nil {
		t.Fatal("torn append reported no error")
	}
	ffs.mu.Lock()
	ffs.writesLeft, ffs.shortWrite = -1, false
	ffs.mu.Unlock()
	// Tear-then-continue: the torn bytes sit at the tail, so any record
	// appended after them could be fsynced and acked yet be unreachable by
	// replay (which stops at the tear). The log must be latched failed —
	// appends and syncs keep failing even though the injected fault is
	// gone — until a reopen repairs the tail.
	if _, err := d.Append(batchPayload(t, 3, "k003", 3)); err == nil {
		t.Fatal("append after a torn write was accepted; it would be acked but unrecoverable")
	}
	if err := d.Sync(Off{}); err != nil {
		// A zero token is already durable; only a latched log may fail it.
		t.Fatalf("sync of an already-durable token: %v", err)
	}
	_ = m.Close()

	// Recovery keeps the two acked batches and drops the torn bytes.
	recs, m2 := replayAll(t, dir, OS)
	defer m2.Close()
	if got := batchSeqs(recs["KV"]); len(got) != 2 {
		t.Fatalf("replayed batches %v, want the 2-batch acked prefix", got)
	}
	if st := m2.ManagerStats(); st.TornTails != 1 {
		t.Fatalf("TornTails = %d, want 1", st.TornTails)
	}
}

// writeSeg writes a raw KV segment file: magic followed by one frame per
// payload (torn/corrupt variants are built by mangling the result).
func writeSeg(t *testing.T, dir string, epoch uint64, payloads ...[]byte) {
	t.Helper()
	buf := append([]byte(nil), logMagic...)
	for _, p := range payloads {
		buf = appendFrame(buf, p)
	}
	if err := os.MkdirAll(filepath.Join(dir, "domains", "KV"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segPath(dir, epoch), buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestBadMagicNewestTruncated crashes "during Rotate's magic write": the
// newest segment holds a partial magic. No record in it was ever acked,
// so recovery truncates it to zero and reuses it as the append tail —
// leaving it in place poisoned would block every later open.
func TestBadMagicNewestTruncated(t *testing.T) {
	dir := t.TempDir()
	writeSeg(t, dir, 0, EncodeSchema(testSchema(t)), batchPayload(t, 1, "k001", 1))
	if err := os.WriteFile(segPath(dir, 1), logMagic[:3], 0o644); err != nil {
		t.Fatal(err)
	}

	recs, m := replayAll(t, dir, OS)
	if got := batchSeqs(recs["KV"]); len(got) != 1 || got[0] != 1 {
		t.Fatalf("replayed batches %v, want [1]", got)
	}
	if st := m.ManagerStats(); st.TornTails != 1 {
		t.Fatalf("TornTails = %d, want 1", st.TornTails)
	}
	// Appends continue into the repaired segment, and the next open sees a
	// clean chain with everything acked this run.
	d := m.Domain("KV")
	off, err := d.Append(batchPayload(t, 2, "k002", 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(off); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	recs2, m2 := replayAll(t, dir, OS)
	defer m2.Close()
	if got := batchSeqs(recs2["KV"]); len(got) != 2 || got[1] != 2 {
		t.Fatalf("post-repair replay %v, want seqs [1 2]", got)
	}
	if st := m2.ManagerStats(); st.TornTails != 0 {
		t.Fatalf("post-repair TornTails = %d, want 0", st.TornTails)
	}
}

// TestBadMagicMidChainQuarantined is the double-crash scenario: a
// bad-magic segment sits between valid ones. Since no record ever acked
// from it (records only follow a durable magic), the newer segments are
// not beyond a gap — replay must quarantine the poisoned file and keep
// going, rather than stop and silently skip the newer acked records.
func TestBadMagicMidChainQuarantined(t *testing.T) {
	dir := t.TempDir()
	writeSeg(t, dir, 0, EncodeSchema(testSchema(t)), batchPayload(t, 1, "k001", 1), batchPayload(t, 2, "k002", 2))
	if err := os.WriteFile(segPath(dir, 1), logMagic[:3], 0o644); err != nil {
		t.Fatal(err)
	}
	writeSeg(t, dir, 2, batchPayload(t, 3, "k003", 3), batchPayload(t, 4, "k004", 4))

	recs, m := replayAll(t, dir, OS)
	if got := batchSeqs(recs["KV"]); len(got) != 4 || got[3] != 4 {
		t.Fatalf("replayed batches %v, want seqs 1..4 (newer segment skipped?)", got)
	}
	if st := m.ManagerStats(); st.TornTails != 1 {
		t.Fatalf("TornTails = %d, want 1", st.TornTails)
	}
	if _, err := os.Stat(segPath(dir, 1)); !os.IsNotExist(err) {
		t.Fatal("poisoned segment left in place; it would block the next open")
	}
	if _, err := os.Stat(segPath(dir, 1) + badSuffix); err != nil {
		t.Fatalf("poisoned segment not quarantined for forensics: %v", err)
	}
	d := m.Domain("KV")
	off, err := d.Append(batchPayload(t, 5, "k005", 5))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(off); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	recs2, m2 := replayAll(t, dir, OS)
	defer m2.Close()
	if got := batchSeqs(recs2["KV"]); len(got) != 5 || got[4] != 5 {
		t.Fatalf("post-repair replay %v, want seqs 1..5", got)
	}
	if st := m2.ManagerStats(); st.TornTails != 0 {
		t.Fatalf("post-repair TornTails = %d, want 0", st.TornTails)
	}
}

// TestMidChainTornQuarantinesNewer corrupts a record in a non-newest
// segment (disk damage): replay keeps the longest valid prefix, truncates
// the damaged segment back to it, and quarantines the newer segments —
// their records lie beyond the gap. Crucially, records acked AFTER this
// recovery must survive the next open, which the old leave-in-place
// behaviour lost (replay stopped at the same damage again).
func TestMidChainTornQuarantinesNewer(t *testing.T) {
	dir := t.TempDir()
	buf := append([]byte(nil), logMagic...)
	buf = appendFrame(buf, EncodeSchema(testSchema(t)))
	buf = appendFrame(buf, batchPayload(t, 1, "k001", 1))
	frame := appendFrame(nil, batchPayload(t, 2, "k002", 2))
	buf = append(buf, frame[:len(frame)/2]...)
	if err := os.MkdirAll(filepath.Join(dir, "domains", "KV"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segPath(dir, 0), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	writeSeg(t, dir, 1, batchPayload(t, 9, "k009", 9))

	recs, m := replayAll(t, dir, OS)
	if got := batchSeqs(recs["KV"]); len(got) != 1 || got[0] != 1 {
		t.Fatalf("replayed batches %v, want [1] (beyond-gap records must not apply)", got)
	}
	if st := m.ManagerStats(); st.TornTails != 1 {
		t.Fatalf("TornTails = %d, want 1", st.TornTails)
	}
	if _, err := os.Stat(segPath(dir, 1)); !os.IsNotExist(err) {
		t.Fatal("beyond-gap segment left in place; a later open would replay it out of order")
	}
	if _, err := os.Stat(segPath(dir, 1) + badSuffix); err != nil {
		t.Fatalf("beyond-gap segment not quarantined: %v", err)
	}
	d := m.Domain("KV")
	off, err := d.Append(batchPayload(t, 2, "k002", 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(off); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	recs2, m2 := replayAll(t, dir, OS)
	defer m2.Close()
	if got := batchSeqs(recs2["KV"]); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("post-repair replay %v, want seqs [1 2]", got)
	}
	if st := m2.ManagerStats(); st.TornTails != 0 {
		t.Fatalf("post-repair TornTails = %d, want 0", st.TornTails)
	}
}

// --- corruption corpus ---

// TestCorruptionCorpus flips bits at every interesting frame position of
// the third record — length field, CRC field, first/middle/last payload
// byte — and asserts replay always recovers exactly the two-record prefix,
// without panicking, and truncates so the next open is clean.
func TestCorruptionCorpus(t *testing.T) {
	base := t.TempDir()
	pristine := filepath.Join(base, "pristine")
	m := openAndCommit(t, pristine, OS, 4)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(segPath(pristine, 0))
	if err != nil {
		t.Fatal(err)
	}

	// Locate the third batch's frame (frame 0 is the schema record).
	pos := len(logMagic)
	for skip := 0; skip < 3; skip++ {
		n := int(uint32(data[pos])<<24 | uint32(data[pos+1])<<16 | uint32(data[pos+2])<<8 | uint32(data[pos+3]))
		pos += frameHeaderSize + n
	}
	recLen := int(uint32(data[pos])<<24 | uint32(data[pos+1])<<16 | uint32(data[pos+2])<<8 | uint32(data[pos+3]))

	cases := []struct {
		name   string
		offset int
		bit    byte
	}{
		{"length-low-bit", pos + 3, 0x01},
		{"length-high-bit", pos + 0, 0x80},
		{"crc-bit", pos + 4, 0x10},
		{"payload-first", pos + frameHeaderSize, 0x04},
		{"payload-middle", pos + frameHeaderSize + recLen/2, 0x40},
		{"payload-last", pos + frameHeaderSize + recLen - 1, 0x01},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			corrupt := append([]byte(nil), data...)
			corrupt[tc.offset] ^= tc.bit
			if err := os.MkdirAll(filepath.Join(dir, "domains", "KV"), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(segPath(dir, 0), corrupt, 0o644); err != nil {
				t.Fatal(err)
			}

			recs, m2 := replayAll(t, dir, OS)
			kv := recs["KV"]
			// Schema + first two batches survive; the damaged record and
			// everything after it are gone.
			if got := batchSeqs(kv); len(got) != 2 || got[0] != 1 || got[1] != 2 {
				t.Fatalf("replayed batches %v, want seqs [1 2]", got)
			}
			if st := m2.ManagerStats(); st.TornTails != 1 {
				t.Fatalf("TornTails = %d, want 1", st.TornTails)
			}
			if err := m2.Close(); err != nil {
				t.Fatal(err)
			}
			// The truncation repaired the file: a second recovery is clean.
			recs2, m3 := replayAll(t, dir, OS)
			defer m3.Close()
			if got := batchSeqs(recs2["KV"]); len(got) != 2 {
				t.Fatalf("post-repair replay %v, want 2 batches", got)
			}
			if st := m3.ManagerStats(); st.TornTails != 0 {
				t.Fatalf("post-repair TornTails = %d, want 0", st.TornTails)
			}
		})
	}
}

// --- injected write/fsync/rename failures ---

func TestWriteFailureSurfacesToCommitter(t *testing.T) {
	dir := t.TempDir()
	ffs := newFaultFS()
	m, err := Open(dir, Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	d, err := m.CreateDomain("KV", testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	ffs.mu.Lock()
	ffs.writesLeft = 0
	ffs.mu.Unlock()
	if _, err := d.Append(batchPayload(t, 1, "k001", 1)); err == nil {
		t.Fatal("append with failing write reported no error")
	}
}

func TestFsyncFailureLatchesLog(t *testing.T) {
	dir := t.TempDir()
	ffs := newFaultFS()
	m, err := Open(dir, Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.CreateDomain("KV", testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	off, err := d.Append(batchPayload(t, 1, "k001", 1))
	if err != nil {
		t.Fatal(err)
	}
	ffs.mu.Lock()
	ffs.syncsLeft = 0
	ffs.mu.Unlock()
	if err := d.Sync(off); err == nil {
		t.Fatal("sync with failing fsync reported no error")
	}
	// A failed fsync may have dropped the dirty pages while marking them
	// clean, so a retry on the same fd can report success for data that is
	// gone (fsyncgate). The log must stay failed even after the injected
	// fault clears: no later Sync or Append may be acked until reopen.
	ffs.mu.Lock()
	ffs.syncsLeft = -1
	ffs.mu.Unlock()
	if err := d.Sync(off); err == nil {
		t.Fatal("sync retried after an fsync failure and reported success")
	}
	if _, err := d.Append(batchPayload(t, 2, "k002", 2)); err == nil {
		t.Fatal("append accepted on a log whose fsync failed")
	}
	_ = m.Close()

	// Reopening re-verifies the records from disk: whatever the checksum
	// walk proves durable is kept, and the domain accepts appends again.
	recs, m2 := replayAll(t, dir, OS)
	defer m2.Close()
	if got := batchSeqs(recs["KV"]); len(got) > 1 {
		t.Fatalf("replayed batches %v, want at most the one appended record", got)
	}
	d2 := m2.Domain("KV")
	off2, err := d2.Append(batchPayload(t, 2, "k002", 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.Sync(off2); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotRenameFailureKeepsLog(t *testing.T) {
	dir := t.TempDir()
	ffs := newFaultFS()
	m, err := Open(dir, Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.CreateDomain("KV", testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		off, err := d.Append(batchPayload(t, uint64(i), fmt.Sprintf("k%03d", i), int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Sync(off); err != nil {
			t.Fatal(err)
		}
	}
	if !d.BeginSnapshot() {
		t.Fatal("BeginSnapshot refused")
	}
	epoch, err := d.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	ffs.mu.Lock()
	ffs.renamesLeft = 0
	ffs.mu.Unlock()
	if err := d.WriteSnapshot(epoch, [][]byte{EncodeSeq(3)}); err == nil {
		t.Fatal("snapshot with failing rename reported no error")
	}
	_ = m.Close()

	// No snapshot landed, the log is intact: recovery replays everything.
	recs, m2 := replayAll(t, dir, OS)
	defer m2.Close()
	if got := batchSeqs(recs["KV"]); len(got) != 3 {
		t.Fatalf("replayed batches %v, want all 3 from the log", got)
	}
	for _, rec := range recs["KV"] {
		if _, ok := rec.(*SeqRec); ok {
			t.Fatal("a SeqRec from the failed snapshot leaked into replay")
		}
	}
}

// TestCreateDomainRefusesExistingAndDrop pins the creation-undo path:
// CreateDomain must refuse a directory that already holds log files
// (opening at offset zero would append a second magic+schema at the
// tail, which replay reads as a torn record), and DropDomain must remove
// the domain so a retried creation starts clean.
func TestCreateDomainRefusesExistingAndDrop(t *testing.T) {
	dir := t.TempDir()
	m := openAndCommit(t, dir, OS, 2)
	if _, err := m.CreateDomain("KV", testSchema(t)); err == nil {
		t.Fatal("CreateDomain over an existing on-disk domain succeeded")
	}
	if err := m.DropDomain("KV"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "domains", "KV")); !os.IsNotExist(err) {
		t.Fatal("dropped domain directory still on disk")
	}
	if m.Domain("KV") != nil {
		t.Fatal("dropped domain still resolvable")
	}
	// Re-creation after the drop starts a fresh, uncorrupted history.
	d, err := m.CreateDomain("KV", testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	off, err := d.Append(batchPayload(t, 1, "k001", 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(off); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	recs, m2 := replayAll(t, dir, OS)
	defer m2.Close()
	if got := batchSeqs(recs["KV"]); len(got) != 1 || got[0] != 1 {
		t.Fatalf("replayed batches %v, want the fresh history [1]", got)
	}
	if st := m2.ManagerStats(); st.TornTails != 0 {
		t.Fatalf("TornTails = %d, want 0 (no doubled magic mid-segment)", st.TornTails)
	}
}

// TestPoisonFailsLaterCommits pins the owner-side divergence latch: once
// memory and log disagree (an apply failure after a successful append),
// Poison must fail every later Append and Sync so the consumed sequence
// numbers are never handed out again while the log carries them.
func TestPoisonFailsLaterCommits(t *testing.T) {
	dir := t.TempDir()
	m := openAndCommit(t, dir, OS, 2)
	defer m.Close()
	d := m.Domain("KV")
	d.Poison(fmt.Errorf("apply diverged from log"))
	if _, err := d.Append(batchPayload(t, 3, "k003", 3)); err == nil {
		t.Fatal("append accepted on a poisoned domain")
	}
	off3 := Off{}
	if err := d.Sync(off3); err != nil {
		t.Fatalf("sync of an already-durable token on a poisoned domain: %v", err)
	}
}

// --- snapshot + truncation lifecycle ---

func TestSnapshotSupersedesLog(t *testing.T) {
	dir := t.TempDir()
	m := openAndCommit(t, dir, OS, 3)
	d := m.Domain("KV")

	if !d.BeginSnapshot() {
		t.Fatal("BeginSnapshot refused")
	}
	epoch, err := d.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := EncodeRows([]*types.Tuple{
		{Seq: 1, TS: 1001, Vals: []types.Value{types.Str("k001"), types.Int(1)}},
		{Seq: 2, TS: 1002, Vals: []types.Value{types.Str("k002"), types.Int(2)}},
		{Seq: 3, TS: 1003, Vals: []types.Value{types.Str("k003"), types.Int(3)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteSnapshot(epoch, [][]byte{EncodeSchema(testSchema(t)), EncodeSeq(3), rows}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(segPath(dir, 0)); !os.IsNotExist(err) {
		t.Fatal("superseded segment 0 was not purged")
	}
	// Post-snapshot commits land in the new segment.
	off, err := d.Append(batchPayload(t, 4, "k004", 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(off); err != nil {
		t.Fatal(err)
	}
	if st := m.ManagerStats(); st.Snapshots != 1 || st.LastSnapshot == 0 {
		t.Fatalf("stats after snapshot: %+v", st)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery: snapshot baseline first, then the post-snapshot batch.
	recs, m2 := replayAll(t, dir, OS)
	defer m2.Close()
	kv := recs["KV"]
	sawRows, sawSeq := false, false
	for _, rec := range kv {
		switch rec := rec.(type) {
		case *RowsRec:
			sawRows = true
			if len(rec.Tuples) != 3 {
				t.Fatalf("snapshot rows = %d, want 3", len(rec.Tuples))
			}
		case *SeqRec:
			sawSeq = true
			if rec.Seq != 3 {
				t.Fatalf("snapshot seq = %d, want 3", rec.Seq)
			}
		}
	}
	if !sawRows || !sawSeq {
		t.Fatalf("snapshot baseline missing from replay: %#v", kv)
	}
	if got := batchSeqs(kv); len(got) != 1 || got[0] != 4 {
		t.Fatalf("post-snapshot batches %v, want [4]", got)
	}
}

func TestGroupCommitConcurrentSyncs(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	d, err := m.CreateDomain("KV", testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	var wg sync.WaitGroup
	errs := make([]error, n)
	var mu sync.Mutex
	seq := uint64(0)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mu.Lock()
			seq++
			s := seq
			off, err := d.Append(batchPayload(t, s, fmt.Sprintf("k%03d", s), int64(s)))
			mu.Unlock()
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = d.Sync(off)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("committer %d: %v", i, err)
		}
	}
	st := m.ManagerStats()
	if st.Fsyncs == 0 {
		t.Fatal("no fsyncs issued")
	}
	if st.Fsyncs > n+2 {
		t.Fatalf("Fsyncs = %d for %d commits; group commit is not batching", st.Fsyncs, n)
	}
}

func TestNoSyncSkipsFsync(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.CreateDomain("KV", testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	off, err := d.Append(batchPayload(t, 1, "k001", 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(off); err != nil {
		t.Fatal(err)
	}
	if st := m.ManagerStats(); st.Fsyncs != 0 {
		t.Fatalf("Fsyncs = %d under NoSync, want 0", st.Fsyncs)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// The data still recovers: it reached the OS, just not via fsync.
	recs, m2 := replayAll(t, dir, OS)
	defer m2.Close()
	if got := batchSeqs(recs["KV"]); len(got) != 1 {
		t.Fatalf("replayed batches %v, want 1", got)
	}
}
