// Package wal provides per-commit-domain write-ahead logging, snapshots,
// and crash recovery for the cache's durable mode.
//
// Each commit domain (one per table, plus one meta domain for automaton
// registrations) owns a directory of numbered log segments and snapshot
// files. Records are length-prefixed and CRC32C-checksummed; recovery
// loads the newest readable snapshot, replays every later segment's
// longest valid prefix, truncates damaged segments back to that prefix,
// and quarantines (renames aside) files it judged unreadable so they can
// never block replay on a later open — appends always resume from a
// clean, repaired tail. Any write or fsync failure latches a domain
// failed: every later Append and Sync returns the latched error until
// the directory is reopened, because appending past torn tail bytes
// would ack records replay cannot reach, and a retried fsync can falsely
// succeed after the kernel drops the dirty pages. Snapshots are written
// to a temporary file,
// fsynced, renamed into place, and the directory fsynced, so a crash at
// any point leaves either the old or the new snapshot intact — never a
// partial one. Group commit batches fsyncs: concurrent committers ride
// the first waiter's fsync instead of issuing one each.
//
// The FS and File interfaces are the fault-injection seam: tests inject
// filesystems whose writes, fsyncs, or renames fail deterministically and
// whose files end in torn records; production code uses OS.
//
// # Concurrency
//
// A Manager is safe for concurrent use. Per Domain, the caller must
// serialise Append and Rotate (the cache holds its commit-domain mutex
// around both); Sync may be called concurrently from any goroutine and
// participates in group commit — it returns once the record behind its
// token is on stable storage. WantsSnapshot/BeginSnapshot claim a
// per-domain snapshot attempt with an atomic flag, so at most one
// snapshot is in flight per domain; WriteSnapshot and AbortSnapshot
// release the claim. Recover and RecoverMeta must complete before any
// Append; Recover replays domains in parallel, one goroutine per domain,
// and each domain's sink is called from that single goroutine only.
// Manager stats accessors are safe at any time.
package wal
