package wal

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"unicache/internal/types"
)

// DefaultSnapshotBytes is the per-domain log size that triggers a
// snapshot + truncation when Options.SnapshotBytes is zero.
const DefaultSnapshotBytes = 8 << 20

// badSuffix marks a quarantined segment: recovery judged it unreadable
// and renamed it aside so it can never block replay on a later open. The
// file is kept for forensics; nothing reads it again.
const badSuffix = ".bad"

// FsyncErrorPolicy selects what a failed group-commit fsync does to its
// log.
type FsyncErrorPolicy uint8

const (
	// FsyncPoison (the default) latches the log failed until the directory
	// is reopened: a retried fsync on the same fd can falsely succeed after
	// the kernel dropped the dirty pages (fsyncgate), so no later commit is
	// acked against a file in unknown state. Maximum safety, minimum
	// availability: the domain is down until restart.
	FsyncPoison FsyncErrorPolicy = iota
	// FsyncLatchRetry latches the failure as retryable: the domain still
	// fails every commit, but the owner may later abandon the suspect
	// segment, write a fresh snapshot of its in-memory state past it, and
	// clear the latch — restoring availability without a restart if the
	// disk recovered. Only fsync failures are retryable; write errors and
	// short writes leave torn bytes at the tail and stay permanent.
	FsyncLatchRetry
)

// Options tunes a Manager.
type Options struct {
	// FS is the filesystem seam (default OS). Tests inject failing
	// doubles here.
	FS FS
	// NoSync skips every fsync: group commit degrades to OS-scheduled
	// flushing. Crash recovery still works from whatever reached disk;
	// the zero-loss guarantee only covers acked commits when syncing.
	NoSync bool
	// SnapshotBytes is the per-domain current-segment size beyond which
	// the owner should snapshot and truncate (0 = DefaultSnapshotBytes,
	// < 0 = never suggest; snapshots then happen only at Close).
	SnapshotBytes int64
	// FsyncErrorPolicy selects the failure mode of a failed group-commit
	// fsync: FsyncPoison (default) or FsyncLatchRetry.
	FsyncErrorPolicy FsyncErrorPolicy
}

// Stats is the manager-wide durability counter snapshot.
type Stats struct {
	// Dir is the data directory.
	Dir string
	// WALBytes is the total bytes across all live log segments.
	WALBytes int64
	// Fsyncs is the number of fsync calls issued since open.
	Fsyncs uint64
	// Snapshots is the number of snapshots written since open.
	Snapshots uint64
	// LastSnapshot is the wall-clock time of the most recent snapshot
	// (zero if none this run).
	LastSnapshot types.Timestamp
	// Replayed is the number of records applied during recovery at open.
	Replayed uint64
	// TornTails is the number of log tails dropped during recovery
	// because their final record was torn or corrupt.
	TornTails uint64
}

// Manager owns one data directory: a log+snapshot pair per commit domain
// under domains/, plus one meta domain (automaton registrations) under
// meta/.
type Manager struct {
	dir  string
	fs   FS
	opts Options

	snapshots atomic.Uint64
	lastSnap  atomic.Int64
	replayed  atomic.Uint64
	tornTails atomic.Uint64

	mu      sync.Mutex
	domains map[string]*Domain
	meta    *Domain
	closed  bool
}

// Domain is the durable half of one commit domain: its segment log and
// snapshot chain inside one directory.
type Domain struct {
	m    *Manager
	name string
	dir  string
	log  *log

	// snapping serialises snapshot attempts per domain.
	snapping atomic.Bool
}

// Open prepares a manager over dir, creating the layout if absent. It
// does not replay anything — call Recover (domains) and RecoverMeta
// before appending.
func Open(dir string, opts Options) (*Manager, error) {
	if opts.FS == nil {
		opts.FS = OS
	}
	if opts.SnapshotBytes == 0 {
		opts.SnapshotBytes = DefaultSnapshotBytes
	}
	m := &Manager{dir: dir, fs: opts.FS, opts: opts, domains: make(map[string]*Domain)}
	for _, d := range []string{dir, filepath.Join(dir, "domains"), filepath.Join(dir, "meta")} {
		if err := m.fs.MkdirAll(d); err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
	}
	return m, nil
}

// Dir returns the data directory.
func (m *Manager) Dir() string { return m.dir }

// SnapshotBytes returns the configured snapshot threshold (< 0: never).
func (m *Manager) SnapshotBytes() int64 { return m.opts.SnapshotBytes }

// encodeName maps a table name to a filesystem-safe directory name:
// alphanumerics, '_' and '-' pass through, everything else becomes
// %XX hex escapes ('%' itself included).
func encodeName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-' {
			b.WriteByte(c)
		} else {
			fmt.Fprintf(&b, "%%%02X", c)
		}
	}
	return b.String()
}

// decodeName inverts encodeName.
func decodeName(enc string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(enc); i++ {
		if enc[i] != '%' {
			b.WriteByte(enc[i])
			continue
		}
		if i+2 >= len(enc) {
			return "", fmt.Errorf("wal: bad domain directory name %q", enc)
		}
		var c byte
		if _, err := fmt.Sscanf(enc[i+1:i+3], "%02X", &c); err != nil {
			return "", fmt.Errorf("wal: bad domain directory name %q", enc)
		}
		b.WriteByte(c)
		i += 2
	}
	return b.String(), nil
}

// Sink receives one decoded record during recovery. fromSnapshot reports
// whether it came from the snapshot (state baseline) or the log (replay).
type Sink func(rec any, fromSnapshot bool) error

// Recover scans the domains directory and replays every domain in
// parallel: for each, newSink is called first (from its own goroutine)
// and the returned sink then receives the snapshot records followed by
// the log records, in order. After Recover returns, Domain(name) resolves
// every recovered domain, positioned for appends.
func (m *Manager) Recover(newSink func(name string) (Sink, error)) error {
	names, err := m.fs.ReadDir(filepath.Join(m.dir, "domains"))
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var wg sync.WaitGroup
	errs := make([]error, len(names))
	doms := make([]*Domain, len(names))
	for i, enc := range names {
		wg.Add(1)
		go func(i int, enc string) {
			defer wg.Done()
			name, err := decodeName(enc)
			if err != nil {
				errs[i] = err
				return
			}
			sink, err := newSink(name)
			if err != nil {
				errs[i] = fmt.Errorf("wal: domain %q: %w", name, err)
				return
			}
			d, err := m.recoverDomain(name, filepath.Join(m.dir, "domains", enc), sink)
			if err != nil {
				errs[i] = fmt.Errorf("wal: domain %q: %w", name, err)
				return
			}
			doms[i] = d
		}(i, enc)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	m.mu.Lock()
	for _, d := range doms {
		if d != nil {
			m.domains[d.name] = d
		}
	}
	m.mu.Unlock()
	return nil
}

// RecoverMeta replays the meta domain (automaton registrations) into
// sink and positions it for appends. Call after Recover, so every table
// the automata bind against exists.
func (m *Manager) RecoverMeta(sink Sink) error {
	d, err := m.recoverDomain("meta", filepath.Join(m.dir, "meta"), sink)
	if err != nil {
		return fmt.Errorf("wal: meta: %w", err)
	}
	m.mu.Lock()
	m.meta = d
	m.mu.Unlock()
	return nil
}

// recoverDomain loads one domain directory: newest readable snapshot
// first, then every segment with epoch >= the snapshot's, in order. A
// torn or corrupt record ends replay — the longest valid prefix wins —
// the damaged segment is truncated back to that prefix, and any newer
// segments (whose records lie beyond the gap) are quarantined with
// badSuffix. A segment with torn or missing magic never held an acked
// record (records follow a successful magic write, and every ack's fsync
// covers the magic), so it is truncated to zero when newest and
// quarantined when mid-chain — replay of the valid newer segments
// continues past it. Either way recovery leaves a clean chain: appends
// resume at the repaired tail, and a later open is never blocked by a
// file this open already judged unreadable.
func (m *Manager) recoverDomain(name, dir string, sink Sink) (*Domain, error) {
	entries, err := m.fs.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var snaps, segs []uint64
	for _, e := range entries {
		var epoch uint64
		if n, err := fmt.Sscanf(e, "snap-%08d", &epoch); n == 1 && err == nil && e == snapName(epoch) {
			snaps = append(snaps, epoch)
		}
		if n, err := fmt.Sscanf(e, "wal-%08d.log", &epoch); n == 1 && err == nil && e == segmentName(epoch) {
			segs = append(segs, epoch)
		}
		if strings.HasSuffix(e, ".tmp") {
			_ = m.fs.Remove(filepath.Join(dir, e))
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })

	// Newest readable snapshot wins; fall back to an older one if the
	// newest fails its checksum walk (possible only when a purge was
	// interrupted — the normal steady state keeps exactly one).
	base := uint64(0)
	applied := false
	for i := len(snaps) - 1; i >= 0; i-- {
		recs, err := m.readSnapshot(filepath.Join(dir, snapName(snaps[i])))
		if err != nil {
			if i == 0 && !applied {
				return nil, fmt.Errorf("snapshot %s unreadable: %w", snapName(snaps[i]), err)
			}
			continue
		}
		for _, rec := range recs {
			if err := sink(rec, true); err != nil {
				return nil, err
			}
			m.replayed.Add(1)
		}
		base = snaps[i]
		applied = true
		break
	}

	// Replay segments at or after the snapshot's epoch.
	var liveBytes, lastSegSize int64
	lastEpoch := base
	haveSeg := false
	gap := false
	for _, epoch := range segs {
		if epoch < base {
			continue
		}
		path := filepath.Join(dir, segmentName(epoch))
		if gap {
			// Beyond a recovery gap: these records were dropped from the
			// recovered state. Quarantine the file — leaving it in place
			// would make a later open stop here again and silently skip
			// everything acked after this recovery (or, worse, replay
			// these stale records into the middle of the new history).
			if rerr := m.fs.Rename(path, path+badSuffix); rerr != nil {
				return nil, fmt.Errorf("quarantining %s: %w", segmentName(epoch), rerr)
			}
			continue
		}
		data, err := m.fs.ReadFile(path)
		if err != nil {
			return nil, err
		}
		if len(data) < len(logMagic) || string(data[:len(logMagic)]) != string(logMagic) {
			if len(data) == 0 {
				// An empty segment: a crash between file creation and the
				// magic write. A clean (empty) tail.
				lastEpoch, lastSegSize, haveSeg = epoch, 0, true
				continue
			}
			// Torn or missing magic: no record in this segment was ever
			// acked (records are appended only after the magic write
			// succeeds, and every ack's fsync covers the magic), so
			// discarding it wholesale loses nothing and the segments
			// after it are not beyond a gap.
			m.tornTails.Add(1)
			if epoch == segs[len(segs)-1] {
				// Newest segment (a crash during Rotate's magic write):
				// truncate it to zero and continue appending into it.
				if terr := m.fs.Truncate(path, 0); terr != nil {
					return nil, fmt.Errorf("truncating bad-magic %s: %w", segmentName(epoch), terr)
				}
				lastEpoch, lastSegSize, haveSeg = epoch, 0, true
				continue
			}
			// Mid-chain (left by an earlier open, or writes reordered on
			// the way to disk): quarantine it so it cannot block replay
			// of the valid newer segments, now or on a later open.
			if rerr := m.fs.Rename(path, path+badSuffix); rerr != nil {
				return nil, fmt.Errorf("quarantining %s: %w", segmentName(epoch), rerr)
			}
			continue
		}
		good, perr := parseFrames(data[len(logMagic):], func(payload []byte) error {
			rec, err := DecodeRecord(payload)
			if err != nil {
				// A checksummed-but-undecodable record is a format bug or
				// version skew, not disk damage (bit flips fail the CRC);
				// refuse to open rather than silently drop data.
				return fatalErr{fmt.Errorf("%s: %w", segmentName(epoch), err)}
			}
			if err := sink(rec, false); err != nil {
				return fatalErr{err}
			}
			m.replayed.Add(1)
			return nil
		})
		if fe, ok := perr.(fatalErr); ok {
			return nil, fe.error
		}
		if perr != nil {
			// Framing damage: a torn tail or corrupt record. Keep the
			// longest valid prefix and truncate the rest away, so appends
			// — and every later open — continue from a clean end.
			m.tornTails.Add(1)
			goodSize := int64(len(logMagic)) + good
			if terr := m.fs.Truncate(path, goodSize); terr != nil {
				return nil, fmt.Errorf("truncating torn tail of %s: %w", segmentName(epoch), terr)
			}
			lastEpoch, lastSegSize, haveSeg = epoch, goodSize, true
			liveBytes += goodSize
			if epoch != segs[len(segs)-1] {
				// Damage before the newest segment: the newer segments'
				// records lie beyond a gap. They are quarantined above
				// and appends continue here, at the repaired tail.
				gap = true
			}
			continue
		}
		lastEpoch, lastSegSize, haveSeg = epoch, int64(len(data)), true
		liveBytes += int64(len(data))
	}

	d := &Domain{m: m, name: name, dir: dir}
	var l *log
	switch {
	case haveSeg:
		// Clean (possibly repaired) tail: append to the last replayed
		// segment.
		l, err = openLogAt(m.fs, dir, lastEpoch, lastSegSize, liveBytes-lastSegSize, m.opts.NoSync, m.opts.FsyncErrorPolicy)
	case len(segs) == 0 && len(snaps) == 0:
		// Fresh directory (a crash between mkdir and the first append).
		l, err = openLogAt(m.fs, dir, 0, 0, 0, m.opts.NoSync, m.opts.FsyncErrorPolicy)
	default:
		// Only a snapshot (or quarantined segments) remains: appends go
		// to a fresh segment past everything we saw.
		maxEpoch := base
		if len(segs) > 0 && segs[len(segs)-1] > maxEpoch {
			maxEpoch = segs[len(segs)-1]
		}
		l, err = openLogAt(m.fs, dir, maxEpoch+1, 0, liveBytes, m.opts.NoSync, m.opts.FsyncErrorPolicy)
	}
	if err != nil {
		return nil, err
	}
	d.log = l
	return d, nil
}

// fatalErr marks a replay error that must abort recovery (an application
// error from the sink, or an undecodable record whose checksum passed)
// rather than truncate the log.
type fatalErr struct{ error }

// readSnapshot loads and frame-walks one snapshot file, returning its
// decoded records. Any framing or decode failure fails the whole
// snapshot: snapshots are written atomically, so damage means the file
// cannot be trusted as a baseline.
func (m *Manager) readSnapshot(path string) ([]any, error) {
	data, err := m.fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(snapMagic) || string(data[:len(snapMagic)]) != string(snapMagic) {
		return nil, fmt.Errorf("wal: %s: bad snapshot magic", filepath.Base(path))
	}
	var recs []any
	_, perr := parseFrames(data[len(snapMagic):], func(payload []byte) error {
		rec, err := DecodeRecord(payload)
		if err != nil {
			return err
		}
		recs = append(recs, rec)
		return nil
	})
	if perr != nil {
		return nil, perr
	}
	return recs, nil
}

// CreateDomain installs a fresh domain directory whose log opens with
// the given schema record, made durable before return (table creation
// must survive an immediate crash). It refuses a directory that already
// holds log or snapshot files: opening at offset zero would append a
// second magic+schema at the existing tail, which replay reads as a torn
// record. Such a directory belongs to Recover (or DropDomain first).
func (m *Manager) CreateDomain(name string, schema *types.Schema) (*Domain, error) {
	dir := filepath.Join(m.dir, "domains", encodeName(name))
	if err := m.fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if entries, err := m.fs.ReadDir(dir); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	} else if len(entries) > 0 {
		return nil, fmt.Errorf("wal: domain %q already exists on disk (%d files); recover or drop it first", name, len(entries))
	}
	l, err := openLogAt(m.fs, dir, 0, 0, 0, m.opts.NoSync, m.opts.FsyncErrorPolicy)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	d := &Domain{m: m, name: name, dir: dir, log: l}
	off, err := l.Append(EncodeSchema(schema))
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := l.Sync(off); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := m.fs.SyncDir(filepath.Join(m.dir, "domains")); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	m.mu.Lock()
	m.domains[name] = d
	m.mu.Unlock()
	return d, nil
}

// DropDomain closes a domain's log and deletes its directory. It exists
// so a caller can undo CreateDomain when a later step of its own
// multi-part creation fails — without it the half-created table would
// resurrect on the next open. Dropping an unknown name is a no-op.
func (m *Manager) DropDomain(name string) error {
	m.mu.Lock()
	d := m.domains[name]
	delete(m.domains, name)
	m.mu.Unlock()
	if d == nil {
		return nil
	}
	err := d.log.Close()
	if entries, rerr := m.fs.ReadDir(d.dir); rerr == nil {
		for _, e := range entries {
			if rerr := m.fs.Remove(filepath.Join(d.dir, e)); rerr != nil && err == nil {
				err = rerr
			}
		}
	} else if err == nil {
		err = rerr
	}
	if rerr := m.fs.Remove(d.dir); rerr != nil && err == nil {
		err = rerr
	}
	if serr := m.fs.SyncDir(filepath.Join(m.dir, "domains")); serr != nil && err == nil {
		err = serr
	}
	if err != nil {
		return fmt.Errorf("wal: dropping domain %q: %w", name, err)
	}
	return nil
}

// Domain resolves a recovered or created domain by table name.
func (m *Manager) Domain(name string) *Domain {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.domains[name]
}

// Meta returns the meta domain (nil before RecoverMeta).
func (m *Manager) Meta() *Domain {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.meta
}

// ManagerStats snapshots the durability counters.
func (m *Manager) ManagerStats() Stats {
	st := Stats{
		Dir:          m.dir,
		Snapshots:    m.snapshots.Load(),
		LastSnapshot: types.Timestamp(m.lastSnap.Load()),
		Replayed:     m.replayed.Load(),
		TornTails:    m.tornTails.Load(),
	}
	m.mu.Lock()
	doms := make([]*Domain, 0, len(m.domains)+1)
	for _, d := range m.domains {
		doms = append(doms, d)
	}
	if m.meta != nil {
		doms = append(doms, m.meta)
	}
	m.mu.Unlock()
	for _, d := range doms {
		st.WALBytes += d.log.LiveBytes()
		st.Fsyncs += d.log.Fsyncs()
	}
	return st
}

// Close closes every domain log. The owner snapshots before calling this.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	doms := make([]*Domain, 0, len(m.domains)+1)
	for _, d := range m.domains {
		doms = append(doms, d)
	}
	if m.meta != nil {
		doms = append(doms, m.meta)
	}
	m.mu.Unlock()
	var first error
	for _, d := range doms {
		if err := d.log.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// --- Domain append/snapshot surface ---

// Name returns the domain's table name ("meta" for the meta domain).
func (d *Domain) Name() string { return d.name }

// Append frames and appends one record payload, returning the durability
// token for Sync. The caller serialises appends per domain (the commit
// mutex).
func (d *Domain) Append(payload []byte) (Off, error) { return d.log.Append(payload) }

// Sync group-commits: it returns once the record behind the token is on
// stable storage (immediately under NoSync). Any write or fsync failure
// latches the domain failed — every later Append and Sync returns the
// latched error until the directory is reopened — because a retried
// fsync can falsely succeed after the kernel dropped the dirty pages,
// and appends after torn bytes would be acked yet unreachable by replay.
func (d *Domain) Sync(off Off) error { return d.log.Sync(off) }

// Failed returns the domain's latched failure (nil while healthy). A
// failed domain must not be snapshotted: its in-memory state is not
// trustworthy relative to the log, and the log on disk — which recovery
// re-verifies at the next open — is the durable truth.
func (d *Domain) Failed() error { return d.log.Failed() }

// Poison latches err as the domain's permanent failure: every later
// Append and Sync fails until reopen. The owner calls it when its
// in-memory state and the log have diverged (an apply failure after a
// successful append) so neither side can drift further — in particular,
// the consumed sequence numbers must not be handed out again while the
// log already carries them.
func (d *Domain) Poison(err error) { d.log.poison(err) }

// FailedRetryable reports whether the domain is latched with a
// recoverable fsync failure (Options.FsyncErrorPolicy ==
// FsyncLatchRetry). The owner may then attempt RotateRetry + snapshot +
// ClearFailure to restore availability without a restart.
func (d *Domain) FailedRetryable() bool { return d.log.failedRetryable() }

// RotateRetry abandons a retryably-latched domain's suspect segment and
// opens a fresh one, returning the epoch a covering snapshot must be
// written at (WriteSnapshot). The latch stays on until ClearFailure; the
// caller must hold its commit mutex, exactly as for Rotate.
func (d *Domain) RotateRetry() (uint64, error) { return d.log.rotateRetry() }

// ClearFailure lifts a retryable latch once the covering snapshot is
// durable; it reports whether the domain is healthy afterwards.
func (d *Domain) ClearFailure() bool { return d.log.clearFailure() }

// WantsSnapshot reports whether the current segment has outgrown the
// snapshot threshold and no snapshot attempt is already in flight; a true
// return claims the attempt — the caller must finish with EndSnapshot.
func (d *Domain) WantsSnapshot() bool {
	t := d.m.opts.SnapshotBytes
	if t < 0 {
		return false
	}
	if d.log.Size() < t {
		return false
	}
	return d.snapping.CompareAndSwap(false, true)
}

// BeginSnapshot claims a snapshot attempt unconditionally (Close-time
// snapshots); false means one is already in flight.
func (d *Domain) BeginSnapshot() bool { return d.snapping.CompareAndSwap(false, true) }

// Rotate switches appends to a fresh segment and returns its epoch; the
// snapshot that supersedes the older segments is then written with
// WriteSnapshot(epoch, ...). The caller must hold its commit mutex so the
// snapshot state cut and the segment switch are atomic.
func (d *Domain) Rotate() (uint64, error) { return d.log.Rotate() }

// WriteSnapshot writes the framed records as snap-<epoch> (tmp + fsync +
// rename + dir fsync), then purges segments and snapshots older than
// epoch. payloads are the record payloads in apply order.
func (d *Domain) WriteSnapshot(epoch uint64, payloads [][]byte) error {
	defer d.snapping.Store(false)
	buf := append([]byte(nil), snapMagic...)
	for _, p := range payloads {
		buf = appendFrame(buf, p)
	}
	tmp := filepath.Join(d.dir, snapName(epoch)+".tmp")
	f, err := d.m.fs.OpenAppend(tmp)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		_ = f.Close()
		_ = d.m.fs.Remove(tmp)
		return fmt.Errorf("wal: snapshot write: %w", err)
	}
	if !d.m.opts.NoSync {
		if err := f.Sync(); err != nil {
			_ = f.Close()
			_ = d.m.fs.Remove(tmp)
			return fmt.Errorf("wal: snapshot fsync: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		_ = d.m.fs.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := d.m.fs.Rename(tmp, filepath.Join(d.dir, snapName(epoch))); err != nil {
		_ = d.m.fs.Remove(tmp)
		return fmt.Errorf("wal: snapshot rename: %w", err)
	}
	if !d.m.opts.NoSync {
		if err := d.m.fs.SyncDir(d.dir); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	}
	d.m.snapshots.Add(1)
	d.m.lastSnap.Store(int64(types.Now()))
	// The snapshot covers everything below epoch: purge superseded
	// segments and older snapshots. Failures here leak files but never
	// correctness — recovery prefers the newest snapshot.
	if names, err := d.m.fs.ReadDir(d.dir); err == nil {
		var purged int64
		for _, e := range names {
			var old uint64
			if n, _ := fmt.Sscanf(e, "wal-%08d.log", &old); n == 1 && e == segmentName(old) && old < epoch {
				if data, err := d.m.fs.ReadFile(filepath.Join(d.dir, e)); err == nil {
					purged += int64(len(data))
				}
				_ = d.m.fs.Remove(filepath.Join(d.dir, e))
			}
			if n, _ := fmt.Sscanf(e, "snap-%08d", &old); n == 1 && e == snapName(old) && old < epoch {
				_ = d.m.fs.Remove(filepath.Join(d.dir, e))
			}
		}
		d.log.dropLiveBelow(purged)
	}
	return nil
}

// AbortSnapshot releases a claimed snapshot attempt that could not reach
// WriteSnapshot (whose defer releases it otherwise).
func (d *Domain) AbortSnapshot() { d.snapping.Store(false) }

// LiveBytes returns the bytes across this domain's live segments.
func (d *Domain) LiveBytes() int64 { return d.log.LiveBytes() }
