package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"unicache/internal/types"
	"unicache/internal/wire"
)

// Record type tags, the first byte of every framed payload. The on-disk
// format is append-only versioned: new tags may be added, existing tags
// must never change meaning.
const (
	// recSchema carries a types.AppendSchema encoding; it is the first
	// record of a fresh domain log and of every domain snapshot.
	recSchema byte = 1
	// recBatch is one committed batch: firstSeq u64, ts i64, rows (wire
	// Rows). The commit path appends exactly one per CommitBatch.
	recBatch byte = 2
	// recDelete is one keyed delete on a persistent table: key string.
	recDelete byte = 3
	// recSeq pins the domain's sequence counter (snapshot only): seq u64.
	recSeq byte = 4
	// recRows carries non-contiguous rows with explicit per-row seq/ts
	// (snapshot only): count u32 × (seq u64, ts i64, values).
	recRows byte = 5
	// recRegister is one automaton registration (meta log): id i64,
	// source str, inbox capacity i64, inbox policy u8.
	recRegister byte = 6
	// recUnregister is one automaton unregistration (meta log): id i64.
	recUnregister byte = 7
	// recAutomaton is one live automaton with its variable state (meta
	// snapshot only): the recRegister fields plus count u16 × (name str,
	// value).
	recAutomaton byte = 8
	// recNextID pins the automaton id allocator (meta snapshot only): u64.
	recNextID byte = 9
	// recRegisterNS is recRegister with the automaton's tenant namespace
	// appended (str). Written only for namespaced automata, so tenant-free
	// logs stay byte-identical to earlier versions.
	recRegisterNS byte = 10
	// recAutomatonNS is recAutomaton with the namespace str between the
	// register body and the variable count.
	recAutomatonNS byte = 11
)

// castagnoli is the CRC32C polynomial table (the checksum used by modern
// storage systems; hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameHeaderSize is the per-record overhead: u32 payload length + u32
// CRC32C of the payload.
const frameHeaderSize = 8

// maxRecordSize bounds a single record so a corrupt length prefix cannot
// drive a huge allocation during replay.
const maxRecordSize = 64 << 20

// appendFrame appends one length-prefixed, CRC32C-checksummed record.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.BigEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...)
}

// parseFrames walks buf record by record, calling fn with each payload.
// It returns the number of bytes consumed by valid records (the longest
// valid prefix) and a non-nil error describing the first invalid record,
// if any — a torn final record, a bad length, or a CRC mismatch. A replay
// error returned by fn aborts the walk (and is returned as-is with good
// covering the records already applied plus the failed one's frame).
func parseFrames(buf []byte, fn func(payload []byte) error) (good int64, err error) {
	pos := 0
	for pos < len(buf) {
		if len(buf)-pos < frameHeaderSize {
			return int64(pos), fmt.Errorf("wal: torn record header at offset %d (%d trailing bytes)", pos, len(buf)-pos)
		}
		n := int(binary.BigEndian.Uint32(buf[pos:]))
		sum := binary.BigEndian.Uint32(buf[pos+4:])
		if n > maxRecordSize {
			return int64(pos), fmt.Errorf("wal: implausible record length %d at offset %d", n, pos)
		}
		if pos+frameHeaderSize+n > len(buf) {
			return int64(pos), fmt.Errorf("wal: torn record at offset %d (want %d payload bytes, have %d)",
				pos, n, len(buf)-pos-frameHeaderSize)
		}
		payload := buf[pos+frameHeaderSize : pos+frameHeaderSize+n]
		if crc32.Checksum(payload, castagnoli) != sum {
			return int64(pos), fmt.Errorf("wal: checksum mismatch at offset %d", pos)
		}
		if len(payload) == 0 {
			return int64(pos), fmt.Errorf("wal: empty record at offset %d", pos)
		}
		pos += frameHeaderSize + n
		if err := fn(payload); err != nil {
			return int64(pos), err
		}
	}
	return int64(pos), nil
}

// --- typed payload encodings (decoded forms returned by DecodeRecord) ---

// SchemaRec is a decoded recSchema payload.
type SchemaRec struct{ Schema *types.Schema }

// BatchRec is a decoded recBatch payload: one committed batch whose rows
// occupy the contiguous sequence run [FirstSeq, FirstSeq+len(Rows)).
type BatchRec struct {
	FirstSeq uint64
	TS       types.Timestamp
	Rows     [][]types.Value
}

// DeleteRec is a decoded recDelete payload.
type DeleteRec struct{ Key string }

// SeqRec pins the domain sequence counter.
type SeqRec struct{ Seq uint64 }

// RowsRec carries snapshot rows with explicit per-row seq and ts.
type RowsRec struct{ Tuples []*types.Tuple }

// RegisterRec is a decoded recRegister/recRegisterNS payload.
type RegisterRec struct {
	ID            int64
	Source        string
	InboxCapacity int64
	InboxPolicy   uint8
	// Namespace is the tenant namespace the automaton was registered
	// under ("" for the default namespace; recovery re-scopes it).
	Namespace string
}

// UnregisterRec is a decoded recUnregister payload.
type UnregisterRec struct{ ID int64 }

// VarState is one automaton variable in a meta snapshot.
type VarState struct {
	Name  string
	Value types.Value
}

// AutomatonRec is a decoded recAutomaton payload: a registration plus the
// automaton's variable state at snapshot time.
type AutomatonRec struct {
	RegisterRec
	Vars []VarState
}

// NextIDRec pins the automaton id allocator.
type NextIDRec struct{ NextID uint64 }

// EncodeSchema builds a recSchema payload.
func EncodeSchema(s *types.Schema) []byte {
	return types.AppendSchema([]byte{recSchema}, s)
}

// EncodeBatch builds a recBatch payload from the commit path's already
// coerced tuples (their Vals; Seq/TS ride the header, contiguous).
func EncodeBatch(firstSeq uint64, ts types.Timestamp, tuples []*types.Tuple) ([]byte, error) {
	e := wire.NewEncoder(64 + 16*len(tuples))
	e.U8(recBatch)
	e.U64(firstSeq)
	e.I64(int64(ts))
	e.U32(uint32(len(tuples)))
	for _, t := range tuples {
		if err := e.Values(t.Vals); err != nil {
			return nil, err
		}
	}
	return e.Bytes(), nil
}

// EncodeDelete builds a recDelete payload.
func EncodeDelete(key string) []byte {
	e := wire.NewEncoder(16 + len(key))
	e.U8(recDelete)
	e.Str(key)
	return e.Bytes()
}

// EncodeSeq builds a recSeq payload.
func EncodeSeq(seq uint64) []byte {
	e := wire.NewEncoder(9)
	e.U8(recSeq)
	e.U64(seq)
	return e.Bytes()
}

// EncodeRows builds a recRows payload from snapshot tuples, each carrying
// its own seq and ts.
func EncodeRows(tuples []*types.Tuple) ([]byte, error) {
	e := wire.NewEncoder(64 + 24*len(tuples))
	e.U8(recRows)
	e.U32(uint32(len(tuples)))
	for _, t := range tuples {
		e.U64(t.Seq)
		e.I64(int64(t.TS))
		if err := e.Values(t.Vals); err != nil {
			return nil, err
		}
	}
	return e.Bytes(), nil
}

// EncodeRegister builds a recRegister payload (recRegisterNS when the
// automaton is namespaced).
func EncodeRegister(r RegisterRec) []byte {
	e := wire.NewEncoder(32 + len(r.Source) + len(r.Namespace))
	if r.Namespace != "" {
		e.U8(recRegisterNS)
		encodeRegisterBody(e, r)
		e.Str(r.Namespace)
	} else {
		e.U8(recRegister)
		encodeRegisterBody(e, r)
	}
	return e.Bytes()
}

func encodeRegisterBody(e *wire.Encoder, r RegisterRec) {
	e.I64(r.ID)
	e.Str(r.Source)
	e.I64(r.InboxCapacity)
	e.U8(r.InboxPolicy)
}

// EncodeUnregister builds a recUnregister payload.
func EncodeUnregister(id int64) []byte {
	e := wire.NewEncoder(9)
	e.U8(recUnregister)
	e.I64(id)
	return e.Bytes()
}

// EncodeAutomaton builds a recAutomaton payload. Variables whose values
// have no wire encoding (iterators, events, associations) are skipped:
// associations re-bind at registration, the rest are transient.
func EncodeAutomaton(r RegisterRec, vars []VarState) ([]byte, error) {
	e := wire.NewEncoder(64 + len(r.Source) + len(r.Namespace))
	if r.Namespace != "" {
		e.U8(recAutomatonNS)
		encodeRegisterBody(e, r)
		e.Str(r.Namespace)
	} else {
		e.U8(recAutomaton)
		encodeRegisterBody(e, r)
	}
	kept := make([]VarState, 0, len(vars))
	for _, v := range vars {
		switch v.Value.Kind() {
		case types.KindIterator, types.KindEvent, types.KindAssoc:
			continue
		}
		kept = append(kept, v)
	}
	e.U16(uint16(len(kept)))
	for _, v := range kept {
		e.Str(v.Name)
		if err := e.Value(v.Value); err != nil {
			return nil, err
		}
	}
	return e.Bytes(), nil
}

// EncodeNextID builds a recNextID payload.
func EncodeNextID(next uint64) []byte {
	e := wire.NewEncoder(9)
	e.U8(recNextID)
	e.U64(next)
	return e.Bytes()
}

// DecodeRecord decodes one framed payload into its typed form: one of
// *SchemaRec, *BatchRec, *DeleteRec, *SeqRec, *RowsRec, *RegisterRec,
// *UnregisterRec, *AutomatonRec, *NextIDRec.
func DecodeRecord(payload []byte) (any, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("wal: empty record")
	}
	switch payload[0] {
	case recSchema:
		s, _, err := types.DecodeSchema(payload[1:])
		if err != nil {
			return nil, fmt.Errorf("wal: schema record: %w", err)
		}
		return &SchemaRec{Schema: s}, nil
	case recBatch:
		d := wire.NewDecoder(payload[1:])
		firstSeq, err := d.U64()
		if err != nil {
			return nil, err
		}
		ts, err := d.I64()
		if err != nil {
			return nil, err
		}
		n, err := d.U32()
		if err != nil {
			return nil, err
		}
		capHint := int(n)
		if limit := d.Remaining() / 2; capHint > limit {
			capHint = limit
		}
		rows := make([][]types.Value, 0, capHint)
		for i := uint32(0); i < n; i++ {
			row, err := d.Values()
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
		return &BatchRec{FirstSeq: firstSeq, TS: types.Timestamp(ts), Rows: rows}, nil
	case recDelete:
		d := wire.NewDecoder(payload[1:])
		key, err := d.Str()
		if err != nil {
			return nil, err
		}
		return &DeleteRec{Key: key}, nil
	case recSeq:
		d := wire.NewDecoder(payload[1:])
		seq, err := d.U64()
		if err != nil {
			return nil, err
		}
		return &SeqRec{Seq: seq}, nil
	case recRows:
		d := wire.NewDecoder(payload[1:])
		n, err := d.U32()
		if err != nil {
			return nil, err
		}
		capHint := int(n)
		if limit := d.Remaining() / 18; capHint > limit {
			capHint = limit
		}
		tuples := make([]*types.Tuple, 0, capHint)
		for i := uint32(0); i < n; i++ {
			seq, err := d.U64()
			if err != nil {
				return nil, err
			}
			ts, err := d.I64()
			if err != nil {
				return nil, err
			}
			vals, err := d.Values()
			if err != nil {
				return nil, err
			}
			tuples = append(tuples, &types.Tuple{Seq: seq, TS: types.Timestamp(ts), Vals: vals})
		}
		return &RowsRec{Tuples: tuples}, nil
	case recRegister, recRegisterNS:
		d := wire.NewDecoder(payload[1:])
		r, err := decodeRegisterBody(d)
		if err != nil {
			return nil, err
		}
		if payload[0] == recRegisterNS {
			if r.Namespace, err = d.Str(); err != nil {
				return nil, err
			}
		}
		return &r, nil
	case recUnregister:
		d := wire.NewDecoder(payload[1:])
		id, err := d.I64()
		if err != nil {
			return nil, err
		}
		return &UnregisterRec{ID: id}, nil
	case recAutomaton, recAutomatonNS:
		d := wire.NewDecoder(payload[1:])
		r, err := decodeRegisterBody(d)
		if err != nil {
			return nil, err
		}
		if payload[0] == recAutomatonNS {
			if r.Namespace, err = d.Str(); err != nil {
				return nil, err
			}
		}
		n, err := d.U16()
		if err != nil {
			return nil, err
		}
		out := &AutomatonRec{RegisterRec: r}
		for i := uint16(0); i < n; i++ {
			name, err := d.Str()
			if err != nil {
				return nil, err
			}
			v, err := d.Value()
			if err != nil {
				return nil, err
			}
			out.Vars = append(out.Vars, VarState{Name: name, Value: v})
		}
		return out, nil
	case recNextID:
		d := wire.NewDecoder(payload[1:])
		next, err := d.U64()
		if err != nil {
			return nil, err
		}
		return &NextIDRec{NextID: next}, nil
	}
	return nil, fmt.Errorf("wal: unknown record type %d", payload[0])
}

func decodeRegisterBody(d *wire.Decoder) (RegisterRec, error) {
	var r RegisterRec
	var err error
	if r.ID, err = d.I64(); err != nil {
		return r, err
	}
	if r.Source, err = d.Str(); err != nil {
		return r, err
	}
	if r.InboxCapacity, err = d.I64(); err != nil {
		return r, err
	}
	if r.InboxPolicy, err = d.U8(); err != nil {
		return r, err
	}
	return r, nil
}
