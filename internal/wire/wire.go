// Package wire implements the binary codec used by the cache's RPC
// mechanism: values, tuples and query results are encoded into
// length-delimited binary form using only encoding/binary primitives.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"unicache/internal/sql"
	"unicache/internal/types"
)

// Encoder appends primitive and composite encodings to a byte buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with optional pre-allocated capacity.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset clears the buffer for reuse.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Raw appends bytes already encoded elsewhere (chunk assembly: callers that
// size-bound messages encode each element once into a scratch encoder and
// splice the result here, instead of re-encoding).
func (e *Encoder) Raw(b []byte) { e.buf = append(e.buf, b...) }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U16 appends a big-endian uint16.
func (e *Encoder) U16(v uint16) { e.buf = binary.BigEndian.AppendUint16(e.buf, v) }

// U32 appends a big-endian uint32.
func (e *Encoder) U32(v uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }

// U64 appends a big-endian uint64.
func (e *Encoder) U64(v uint64) { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }

// I64 appends an int64.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// F64 appends an IEEE-754 double.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Str appends a length-prefixed string.
func (e *Encoder) Str(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Value appends one value. Iterators, events and associations are not
// wire-able as such; events are materialised to sequences by the caller.
func (e *Encoder) Value(v types.Value) error {
	if ev := v.Event(); ev != nil {
		v = types.SeqV(ev.AsSequence())
	}
	e.U8(uint8(v.Kind()))
	switch v.Kind() {
	case types.KindNil:
	case types.KindInt:
		n, _ := v.AsInt()
		e.I64(n)
	case types.KindTstamp:
		ts, _ := v.AsStamp()
		e.I64(int64(ts))
	case types.KindReal:
		f, _ := v.AsReal()
		e.F64(f)
	case types.KindBool:
		b, _ := v.AsBool()
		if b {
			e.U8(1)
		} else {
			e.U8(0)
		}
	case types.KindString, types.KindIdentifier:
		s, _ := v.AsStr()
		e.Str(s)
	case types.KindSequence:
		seq := v.Seq()
		e.U32(uint32(seq.Len()))
		for i := 0; i < seq.Len(); i++ {
			if err := e.Value(seq.At(i)); err != nil {
				return err
			}
		}
	case types.KindMap:
		m := v.Map()
		e.U8(uint8(m.ElemKind()))
		keys := m.Keys()
		e.U32(uint32(len(keys)))
		for _, k := range keys {
			e.Str(k)
			val, _ := m.Lookup(k)
			if err := e.Value(val); err != nil {
				return err
			}
		}
	case types.KindWindow:
		w := v.Win()
		e.U8(uint8(w.ElemKind()))
		e.U32(uint32(w.Len()))
		for i := 0; i < w.Len(); i++ {
			e.I64(int64(w.TsAt(i)))
			if err := e.Value(w.At(i)); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("wire: %s values cannot be encoded", v.Kind())
	}
	return nil
}

// Values appends a u16-counted slice of values.
func (e *Encoder) Values(vals []types.Value) error {
	e.U16(uint16(len(vals)))
	for _, v := range vals {
		if err := e.Value(v); err != nil {
			return err
		}
	}
	return nil
}

// Rows appends a u32-counted slice of value rows (a batch insert payload).
func (e *Encoder) Rows(rows [][]types.Value) error {
	e.U32(uint32(len(rows)))
	for _, row := range rows {
		if err := e.Values(row); err != nil {
			return err
		}
	}
	return nil
}

// Result appends a query result.
func (e *Encoder) Result(r *sql.Result) error {
	e.U16(uint16(len(r.Cols)))
	for _, c := range r.Cols {
		e.Str(c)
	}
	e.U32(uint32(len(r.Rows)))
	for _, row := range r.Rows {
		if err := e.Values(row); err != nil {
			return err
		}
	}
	e.U32(uint32(r.Affected))
	return nil
}

// Decoder consumes encodings produced by Encoder.
type Decoder struct {
	buf []byte
	pos int
}

// NewDecoder wraps a buffer.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.pos }

func (d *Decoder) need(n int) error {
	if d.pos+n > len(d.buf) {
		return fmt.Errorf("wire: truncated message (need %d bytes, have %d)", n, len(d.buf)-d.pos)
	}
	return nil
}

// U8 reads one byte.
func (d *Decoder) U8() (uint8, error) {
	if err := d.need(1); err != nil {
		return 0, err
	}
	v := d.buf[d.pos]
	d.pos++
	return v, nil
}

// U16 reads a big-endian uint16.
func (d *Decoder) U16() (uint16, error) {
	if err := d.need(2); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint16(d.buf[d.pos:])
	d.pos += 2
	return v, nil
}

// U32 reads a big-endian uint32.
func (d *Decoder) U32() (uint32, error) {
	if err := d.need(4); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint32(d.buf[d.pos:])
	d.pos += 4
	return v, nil
}

// U64 reads a big-endian uint64.
func (d *Decoder) U64() (uint64, error) {
	if err := d.need(8); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint64(d.buf[d.pos:])
	d.pos += 8
	return v, nil
}

// I64 reads an int64.
func (d *Decoder) I64() (int64, error) {
	v, err := d.U64()
	return int64(v), err
}

// F64 reads an IEEE-754 double.
func (d *Decoder) F64() (float64, error) {
	v, err := d.U64()
	return math.Float64frombits(v), err
}

// Str reads a length-prefixed string.
func (d *Decoder) Str() (string, error) {
	n, err := d.U32()
	if err != nil {
		return "", err
	}
	if err := d.need(int(n)); err != nil {
		return "", err
	}
	s := string(d.buf[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s, nil
}

// Value reads one value.
func (d *Decoder) Value() (types.Value, error) {
	kb, err := d.U8()
	if err != nil {
		return types.Nil, err
	}
	switch types.Kind(kb) {
	case types.KindNil:
		return types.Nil, nil
	case types.KindInt:
		n, err := d.I64()
		return types.Int(n), err
	case types.KindTstamp:
		n, err := d.I64()
		return types.Stamp(types.Timestamp(n)), err
	case types.KindReal:
		f, err := d.F64()
		return types.Real(f), err
	case types.KindBool:
		b, err := d.U8()
		return types.Bool(b != 0), err
	case types.KindString:
		s, err := d.Str()
		return types.Str(s), err
	case types.KindIdentifier:
		s, err := d.Str()
		return types.Ident(s), err
	case types.KindSequence:
		n, err := d.U32()
		if err != nil {
			return types.Nil, err
		}
		seq := types.NewSequence()
		for i := uint32(0); i < n; i++ {
			v, err := d.Value()
			if err != nil {
				return types.Nil, err
			}
			seq.Append(v)
		}
		return types.SeqV(seq), nil
	case types.KindMap:
		elem, err := d.U8()
		if err != nil {
			return types.Nil, err
		}
		n, err := d.U32()
		if err != nil {
			return types.Nil, err
		}
		m := types.NewMap(types.Kind(elem))
		for i := uint32(0); i < n; i++ {
			k, err := d.Str()
			if err != nil {
				return types.Nil, err
			}
			v, err := d.Value()
			if err != nil {
				return types.Nil, err
			}
			if err := m.Insert(k, v); err != nil {
				return types.Nil, err
			}
		}
		return types.MapV(m), nil
	case types.KindWindow:
		elem, err := d.U8()
		if err != nil {
			return types.Nil, err
		}
		n, err := d.U32()
		if err != nil {
			return types.Nil, err
		}
		// Decoded windows are row-constrained snapshots: the receiver gets
		// the contents, not the eviction policy.
		capacity := int(n)
		if capacity == 0 {
			capacity = 1
		}
		w, err := types.NewRowWindow(types.Kind(elem), capacity)
		if err != nil {
			return types.Nil, err
		}
		for i := uint32(0); i < n; i++ {
			ts, err := d.I64()
			if err != nil {
				return types.Nil, err
			}
			v, err := d.Value()
			if err != nil {
				return types.Nil, err
			}
			if err := w.Append(v, types.Timestamp(ts)); err != nil {
				return types.Nil, err
			}
		}
		return types.WinV(w), nil
	}
	return types.Nil, fmt.Errorf("wire: unknown value kind %d", kb)
}

// Values reads a u16-counted slice of values.
func (d *Decoder) Values() ([]types.Value, error) {
	n, err := d.U16()
	if err != nil {
		return nil, err
	}
	out := make([]types.Value, n)
	for i := range out {
		v, err := d.Value()
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Rows reads a u32-counted slice of value rows.
func (d *Decoder) Rows() ([][]types.Value, error) {
	n, err := d.U32()
	if err != nil {
		return nil, err
	}
	// Each row costs at least its u16 value count on the wire; clamp the
	// prealloc hint so a corrupt or hostile count cannot force a huge
	// allocation — decoding still fails cleanly on the truncated payload.
	capHint := int(n)
	if limit := d.Remaining() / 2; capHint > limit {
		capHint = limit
	}
	out := make([][]types.Value, 0, capHint)
	for i := uint32(0); i < n; i++ {
		row, err := d.Values()
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// Result reads a query result.
func (d *Decoder) Result() (*sql.Result, error) {
	ncols, err := d.U16()
	if err != nil {
		return nil, err
	}
	r := &sql.Result{}
	for i := uint16(0); i < ncols; i++ {
		c, err := d.Str()
		if err != nil {
			return nil, err
		}
		r.Cols = append(r.Cols, c)
	}
	nrows, err := d.U32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nrows; i++ {
		row, err := d.Values()
		if err != nil {
			return nil, err
		}
		r.Rows = append(r.Rows, row)
	}
	aff, err := d.U32()
	if err != nil {
		return nil, err
	}
	r.Affected = int(aff)
	return r, nil
}
