package wire

import (
	"testing"
	"testing/quick"

	"unicache/internal/sql"
	"unicache/internal/types"
)

func roundTrip(t *testing.T, v types.Value) types.Value {
	t.Helper()
	e := NewEncoder(0)
	if err := e.Value(v); err != nil {
		t.Fatalf("encode %v: %v", v, err)
	}
	d := NewDecoder(e.Bytes())
	got, err := d.Value()
	if err != nil {
		t.Fatalf("decode %v: %v", v, err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("decode %v left %d bytes", v, d.Remaining())
	}
	return got
}

func TestValueRoundTripScalars(t *testing.T) {
	cases := []types.Value{
		types.Nil,
		types.Int(0), types.Int(-1), types.Int(1 << 62),
		types.Real(3.14159), types.Real(-0.0),
		types.Bool(true), types.Bool(false),
		types.Str(""), types.Str("hello"), types.Str("unicode: 日本語"),
		types.Ident("key|1"),
		types.Stamp(types.Timestamp(1234567890)),
	}
	for _, v := range cases {
		got := roundTrip(t, v)
		if got.Kind() != v.Kind() || !types.Equal(got, v) {
			t.Errorf("round trip %v (%s) = %v (%s)", v, v.Kind(), got, got.Kind())
		}
	}
}

func TestValueRoundTripNested(t *testing.T) {
	inner := types.NewSequence(types.Int(1), types.Str("x"))
	outer := types.NewSequence(types.SeqV(inner), types.Real(2.5), types.Nil)
	got := roundTrip(t, types.SeqV(outer))
	seq := got.Seq()
	if seq == nil || seq.Len() != 3 {
		t.Fatalf("outer = %v", got)
	}
	if in := seq.At(0).Seq(); in == nil || in.Len() != 2 || in.At(1).String() != "x" {
		t.Errorf("inner = %v", seq.At(0))
	}
}

func TestValueRoundTripMap(t *testing.T) {
	m := types.NewMap(types.KindInt)
	_ = m.Insert("a", types.Int(1))
	_ = m.Insert("b", types.Int(2))
	got := roundTrip(t, types.MapV(m)).Map()
	if got == nil || got.Size() != 2 || got.ElemKind() != types.KindInt {
		t.Fatalf("map round trip = %v", got)
	}
	keys := got.Keys()
	if keys[0] != "a" || keys[1] != "b" {
		t.Errorf("insertion order lost: %v", keys)
	}
	if v, _ := got.Lookup("b"); v.String() != "2" {
		t.Errorf("map value = %v", v)
	}
}

func TestValueRoundTripWindow(t *testing.T) {
	w, _ := types.NewRowWindow(types.KindInt, 8)
	_ = w.Append(types.Int(10), 100)
	_ = w.Append(types.Int(20), 200)
	got := roundTrip(t, types.WinV(w)).Win()
	if got == nil || got.Len() != 2 {
		t.Fatalf("window round trip = %v", got)
	}
	if got.TsAt(1) != 200 || got.At(1).String() != "20" {
		t.Errorf("window entry = ts %d v %v", got.TsAt(1), got.At(1))
	}
}

func TestEventEncodesAsSequence(t *testing.T) {
	schema, err := types.NewSchema("T", false, -1,
		types.Column{Name: "v", Type: types.ColInt})
	if err != nil {
		t.Fatal(err)
	}
	ev := &types.Event{Topic: "T", Schema: schema,
		Tuple: &types.Tuple{Vals: []types.Value{types.Int(7)}}}
	got := roundTrip(t, types.EventV(ev))
	if got.Kind() != types.KindSequence || got.Seq().At(0).String() != "7" {
		t.Errorf("event round trip = %v (%s)", got, got.Kind())
	}
}

func TestUnencodableKinds(t *testing.T) {
	e := NewEncoder(0)
	it := types.NewSequenceIterator(types.NewSequence())
	if err := e.Value(types.IterV(it)); err == nil {
		t.Error("iterator should not encode")
	}
	if err := e.Value(types.AssocV(&types.Assoc{Table: "T"})); err == nil {
		t.Error("association should not encode")
	}
}

func TestValuesRoundTrip(t *testing.T) {
	vals := []types.Value{types.Int(1), types.Str("two"), types.Real(3.0)}
	e := NewEncoder(0)
	if err := e.Values(vals); err != nil {
		t.Fatal(err)
	}
	got, err := NewDecoder(e.Bytes()).Values()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || !types.Equal(got[1], vals[1]) {
		t.Errorf("values round trip = %v", got)
	}
}

func TestResultRoundTrip(t *testing.T) {
	r := &sql.Result{
		Cols:     []string{"a", "b"},
		Rows:     [][]types.Value{{types.Int(1), types.Str("x")}, {types.Int(2), types.Str("y")}},
		Affected: 7,
	}
	e := NewEncoder(0)
	if err := e.Result(r); err != nil {
		t.Fatal(err)
	}
	got, err := NewDecoder(e.Bytes()).Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cols) != 2 || got.Cols[1] != "b" || got.Affected != 7 {
		t.Errorf("result header = %+v", got)
	}
	if len(got.Rows) != 2 || got.Rows[1][1].String() != "y" {
		t.Errorf("result rows = %+v", got.Rows)
	}
}

func TestDecoderTruncation(t *testing.T) {
	e := NewEncoder(0)
	_ = e.Value(types.Str("hello world"))
	full := e.Bytes()
	for cut := 0; cut < len(full); cut++ {
		d := NewDecoder(full[:cut])
		if _, err := d.Value(); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestDecoderUnknownKind(t *testing.T) {
	d := NewDecoder([]byte{255})
	if _, err := d.Value(); err == nil {
		t.Error("unknown kind byte should error")
	}
}

func TestPrimitiveRoundTripProperty(t *testing.T) {
	f := func(n int64, f64 float64, s string, b bool) bool {
		e := NewEncoder(0)
		e.I64(n)
		e.F64(f64)
		e.Str(s)
		if b {
			e.U8(1)
		} else {
			e.U8(0)
		}
		d := NewDecoder(e.Bytes())
		gn, err1 := d.I64()
		gf, err2 := d.F64()
		gs, err3 := d.Str()
		gb, err4 := d.U8()
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return false
		}
		if gn != n || gs != s || (gb == 1) != b {
			return false
		}
		// NaN != NaN; compare bit patterns via re-encode.
		if gf != f64 && !(f64 != f64 && gf != gf) {
			return false
		}
		return d.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntValueRoundTripProperty(t *testing.T) {
	f := func(n int64) bool {
		e := NewEncoder(0)
		if err := e.Value(types.Int(n)); err != nil {
			return false
		}
		v, err := NewDecoder(e.Bytes()).Value()
		if err != nil {
			return false
		}
		got, _ := v.AsInt()
		return got == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
