// Package types defines the value system shared by every layer of the
// unified cache: the five basic GAPL data types (int, real, tstamp, bool,
// string), the aggregate types (sequence, map, window) and their supporting
// types (identifier, iterator), plus the relational data plane (column
// types, schemas, tuples and events).
//
// The package corresponds to Tables 1 and 2 of the paper.
package types

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind discriminates the dynamic type of a Value.
type Kind uint8

// The kinds, mirroring Tables 1 and 2 of the paper. KindEvent represents a
// tuple delivered on a subscribed topic (the value bound to a subscription
// variable), and KindAssoc a persistent table bound via an `associate`
// header. KindNil is the zero Value.
const (
	KindNil Kind = iota
	KindInt
	KindReal
	KindTstamp
	KindBool
	KindString
	KindIdentifier
	KindSequence
	KindMap
	KindWindow
	KindIterator
	KindEvent
	KindAssoc
)

var kindNames = [...]string{
	KindNil:        "nil",
	KindInt:        "int",
	KindReal:       "real",
	KindTstamp:     "tstamp",
	KindBool:       "bool",
	KindString:     "string",
	KindIdentifier: "identifier",
	KindSequence:   "sequence",
	KindMap:        "map",
	KindWindow:     "window",
	KindIterator:   "iterator",
	KindEvent:      "event",
	KindAssoc:      "association",
}

// String returns the GAPL name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Scalar reports whether the kind is one of the five basic data types.
func (k Kind) Scalar() bool {
	switch k {
	case KindInt, KindReal, KindTstamp, KindBool, KindString:
		return true
	}
	return false
}

// Numeric reports whether values of the kind participate in arithmetic.
func (k Kind) Numeric() bool {
	return k == KindInt || k == KindReal || k == KindTstamp
}

// Value is a tagged union holding any GAPL value. The zero Value is nil.
//
// Scalars are stored inline (no heap allocation); aggregates are stored as a
// pointer in the agg field. Values are passed by value; aggregates therefore
// have reference semantics, exactly as in the paper's runtime.
type Value struct {
	kind Kind
	n    int64   // KindInt, KindTstamp (ns since epoch), KindBool (0/1)
	f    float64 // KindReal
	s    string  // KindString, KindIdentifier
	agg  any     // *Sequence, *Map, *Window, *Iterator, *Event, *Assoc
}

// Nil is the nil value.
var Nil = Value{}

// Int returns an int value.
func Int(v int64) Value { return Value{kind: KindInt, n: v} }

// Real returns a real (double-precision) value.
func Real(v float64) Value { return Value{kind: KindReal, f: v} }

// Bool returns a bool value.
func Bool(v bool) Value {
	var n int64
	if v {
		n = 1
	}
	return Value{kind: KindBool, n: n}
}

// Str returns a string value.
func Str(v string) Value { return Value{kind: KindString, s: v} }

// Ident returns an identifier value (a map key).
func Ident(v string) Value { return Value{kind: KindIdentifier, s: v} }

// Stamp returns a tstamp value from nanoseconds since the epoch.
func Stamp(ns Timestamp) Value { return Value{kind: KindTstamp, n: int64(ns)} }

// SeqV wraps a *Sequence.
func SeqV(s *Sequence) Value { return Value{kind: KindSequence, agg: s} }

// MapV wraps a *Map.
func MapV(m *Map) Value { return Value{kind: KindMap, agg: m} }

// WinV wraps a *Window.
func WinV(w *Window) Value { return Value{kind: KindWindow, agg: w} }

// IterV wraps an *Iterator.
func IterV(it *Iterator) Value { return Value{kind: KindIterator, agg: it} }

// EventV wraps an *Event.
func EventV(e *Event) Value { return Value{kind: KindEvent, agg: e} }

// AssocV wraps an *Assoc.
func AssocV(a *Assoc) Value { return Value{kind: KindAssoc, agg: a} }

// Kind returns the value's dynamic kind.
func (v Value) Kind() Kind { return v.kind }

// IsNil reports whether the value is the nil value.
func (v Value) IsNil() bool { return v.kind == KindNil }

// AsInt returns the int payload; ok is false if the kind is not int.
func (v Value) AsInt() (int64, bool) { return v.n, v.kind == KindInt }

// AsReal returns the real payload; ok is false if the kind is not real.
func (v Value) AsReal() (float64, bool) { return v.f, v.kind == KindReal }

// AsBool returns the bool payload; ok is false if the kind is not bool.
func (v Value) AsBool() (bool, bool) { return v.n != 0, v.kind == KindBool }

// AsStr returns the string payload for strings and identifiers.
func (v Value) AsStr() (string, bool) {
	return v.s, v.kind == KindString || v.kind == KindIdentifier
}

// AsStamp returns the tstamp payload; ok is false if the kind is not tstamp.
func (v Value) AsStamp() (Timestamp, bool) {
	return Timestamp(v.n), v.kind == KindTstamp
}

// Seq returns the wrapped sequence or nil.
func (v Value) Seq() *Sequence {
	if v.kind == KindSequence {
		return v.agg.(*Sequence)
	}
	return nil
}

// Map returns the wrapped map or nil.
func (v Value) Map() *Map {
	if v.kind == KindMap {
		return v.agg.(*Map)
	}
	return nil
}

// Win returns the wrapped window or nil.
func (v Value) Win() *Window {
	if v.kind == KindWindow {
		return v.agg.(*Window)
	}
	return nil
}

// Iter returns the wrapped iterator or nil.
func (v Value) Iter() *Iterator {
	if v.kind == KindIterator {
		return v.agg.(*Iterator)
	}
	return nil
}

// Event returns the wrapped event or nil.
func (v Value) Event() *Event {
	if v.kind == KindEvent {
		return v.agg.(*Event)
	}
	return nil
}

// Assoc returns the wrapped association or nil.
func (v Value) Assoc() *Assoc {
	if v.kind == KindAssoc {
		return v.agg.(*Assoc)
	}
	return nil
}

// Truthy reports whether the value is considered true in a condition.
// Only booleans are truthy/falsy; every other kind returns an error.
func (v Value) Truthy() (bool, error) {
	if v.kind != KindBool {
		return false, fmt.Errorf("condition must be bool, got %s", v.kind)
	}
	return v.n != 0, nil
}

// NumAsReal converts any numeric payload to float64.
func (v Value) NumAsReal() (float64, bool) {
	switch v.kind {
	case KindInt, KindTstamp:
		return float64(v.n), true
	case KindReal:
		return v.f, true
	}
	return 0, false
}

// NumAsInt converts any numeric payload to int64 (truncating reals).
func (v Value) NumAsInt() (int64, bool) {
	switch v.kind {
	case KindInt, KindTstamp:
		return v.n, true
	case KindReal:
		return int64(v.f), true
	}
	return 0, false
}

// String renders the value the way the print() built-in displays it.
func (v Value) String() string {
	switch v.kind {
	case KindNil:
		return "nil"
	case KindInt:
		return strconv.FormatInt(v.n, 10)
	case KindReal:
		return formatReal(v.f)
	case KindTstamp:
		return strconv.FormatUint(uint64(v.n), 10)
	case KindBool:
		if v.n != 0 {
			return "true"
		}
		return "false"
	case KindString, KindIdentifier:
		return v.s
	case KindSequence:
		return v.Seq().String()
	case KindMap:
		return v.Map().String()
	case KindWindow:
		return v.Win().String()
	case KindIterator:
		return "<iterator>"
	case KindEvent:
		return v.Event().String()
	case KindAssoc:
		return "<association " + v.Assoc().Table + ">"
	}
	return "<invalid>"
}

func formatReal(f float64) string {
	s := strconv.FormatFloat(f, 'g', -1, 64)
	// Keep reals visually distinct from ints, as the paper's print() does.
	if !strings.ContainsAny(s, ".eE") && !strings.Contains(s, "Inf") && !strings.Contains(s, "NaN") {
		s += ".0"
	}
	return s
}

// KeyString renders the canonical identifier form used for map keys and
// persistent-table primary keys. Sequences use a '|'-joined form so that a
// multi-attribute key is stable.
func KeyString(v Value) string {
	switch v.kind {
	case KindSequence:
		s := v.Seq()
		parts := make([]string, s.Len())
		for i := 0; i < s.Len(); i++ {
			parts[i] = KeyString(s.At(i))
		}
		return strings.Join(parts, "|")
	default:
		return v.String()
	}
}

// Equal reports deep equality of two values. Numeric kinds compare by value
// across int/real/tstamp; string and identifier compare by contents.
func Equal(a, b Value) bool {
	if a.kind.Numeric() && b.kind.Numeric() {
		af, _ := a.NumAsReal()
		bf, _ := b.NumAsReal()
		return af == bf
	}
	switch {
	case (a.kind == KindString || a.kind == KindIdentifier) &&
		(b.kind == KindString || b.kind == KindIdentifier):
		return a.s == b.s
	case a.kind != b.kind:
		return false
	}
	switch a.kind {
	case KindNil:
		return true
	case KindBool:
		return a.n == b.n
	case KindSequence:
		as, bs := a.Seq(), b.Seq()
		if as.Len() != bs.Len() {
			return false
		}
		for i := 0; i < as.Len(); i++ {
			if !Equal(as.At(i), bs.At(i)) {
				return false
			}
		}
		return true
	default:
		return a.agg == b.agg
	}
}

// Compare orders two values: -1, 0, +1. Numeric kinds are mutually
// comparable; strings/identifiers compare lexicographically; booleans order
// false < true. Mixed or aggregate comparisons return an error.
func Compare(a, b Value) (int, error) {
	if a.kind.Numeric() && b.kind.Numeric() {
		// Compare in int64 space when both sides are integral to avoid
		// float rounding on large timestamps.
		if a.kind != KindReal && b.kind != KindReal {
			switch {
			case a.n < b.n:
				return -1, nil
			case a.n > b.n:
				return 1, nil
			}
			return 0, nil
		}
		af, _ := a.NumAsReal()
		bf, _ := b.NumAsReal()
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		}
		return 0, nil
	}
	if (a.kind == KindString || a.kind == KindIdentifier) &&
		(b.kind == KindString || b.kind == KindIdentifier) {
		return strings.Compare(a.s, b.s), nil
	}
	if a.kind == KindBool && b.kind == KindBool {
		switch {
		case a.n < b.n:
			return -1, nil
		case a.n > b.n:
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("cannot compare %s with %s", a.kind, b.kind)
}
