package types

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

func TestSequenceBasics(t *testing.T) {
	s := NewSequence(Int(1), Str("two"))
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	s.Append(Real(3.0))
	if s.Len() != 3 {
		t.Fatalf("Len after append = %d, want 3", s.Len())
	}
	if got := s.At(1).String(); got != "two" {
		t.Errorf("At(1) = %q", got)
	}
	if !s.At(5).IsNil() || !s.At(-1).IsNil() {
		t.Error("out-of-range At should be nil")
	}
	if !s.Set(0, Int(9)) {
		t.Error("Set in range should succeed")
	}
	if s.Set(7, Int(9)) {
		t.Error("Set out of range should fail")
	}
	if got := s.String(); got != "(9, two, 3.0)" {
		t.Errorf("String = %q", got)
	}
	c := s.Clone()
	c.Set(0, Int(0))
	if v, _ := s.At(0).AsInt(); v != 9 {
		t.Error("Clone must not alias original")
	}
}

func TestSequenceConstructorCopiesInput(t *testing.T) {
	in := []Value{Int(1), Int(2)}
	s := NewSequence(in...)
	in[0] = Int(99)
	if v, _ := s.At(0).AsInt(); v != 1 {
		t.Error("NewSequence must copy its input slice")
	}
}

func TestMapInsertLookupRemove(t *testing.T) {
	m := NewMap(KindInt)
	if err := m.Insert("a", Int(1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Insert("b", Int(2)); err != nil {
		t.Fatal(err)
	}
	if m.Size() != 2 {
		t.Fatalf("Size = %d, want 2", m.Size())
	}
	if v, ok := m.Lookup("a"); !ok || v.String() != "1" {
		t.Errorf("Lookup(a) = %v, %v", v, ok)
	}
	if _, ok := m.Lookup("zz"); ok {
		t.Error("Lookup of absent key should fail")
	}
	if !m.Has("b") || m.Has("zz") {
		t.Error("Has wrong")
	}
	// Replace keeps size constant.
	if err := m.Insert("a", Int(10)); err != nil {
		t.Fatal(err)
	}
	if m.Size() != 2 {
		t.Errorf("Size after replace = %d, want 2", m.Size())
	}
	if v, _ := m.Lookup("a"); v.String() != "10" {
		t.Error("replace did not take")
	}
	if !m.Remove("a") {
		t.Error("Remove present key should report true")
	}
	if m.Remove("a") {
		t.Error("Remove absent key should report false")
	}
	if m.Size() != 1 || m.Has("a") {
		t.Error("Remove did not remove")
	}
}

func TestMapBoundKindEnforced(t *testing.T) {
	m := NewMap(KindInt)
	if err := m.Insert("a", Str("no")); err == nil {
		t.Error("inserting string into int-bound map should error")
	}
	unbound := NewMap(KindNil)
	if err := unbound.Insert("a", Str("yes")); err != nil {
		t.Errorf("unbound map should accept any kind: %v", err)
	}
}

func TestMapInsertionOrderPreserved(t *testing.T) {
	m := NewMap(KindInt)
	keys := []string{"z", "a", "m", "b"}
	for i, k := range keys {
		if err := m.Insert(k, Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	got := m.Keys()
	for i, k := range keys {
		if got[i] != k {
			t.Fatalf("Keys() = %v, want insertion order %v", got, keys)
		}
	}
}

func TestMapCompaction(t *testing.T) {
	m := NewMap(KindInt)
	const n = 100
	for i := 0; i < n; i++ {
		if err := m.Insert(fmt.Sprintf("k%03d", i), Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 2 {
		m.Remove(fmt.Sprintf("k%03d", i))
	}
	if m.Size() != n/2 {
		t.Fatalf("Size = %d, want %d", m.Size(), n/2)
	}
	// Every odd key still present with its value, order preserved.
	want := 1
	for _, k := range m.Keys() {
		exp := fmt.Sprintf("k%03d", want)
		if k != exp {
			t.Fatalf("key order after compaction: got %s want %s", k, exp)
		}
		v, ok := m.Lookup(k)
		if !ok {
			t.Fatalf("lost key %s", k)
		}
		if n, _ := v.AsInt(); n != int64(want) {
			t.Fatalf("lost value for %s: %v", k, v)
		}
		want += 2
	}
}

func TestMapClear(t *testing.T) {
	m := NewMap(KindNil)
	_ = m.Insert("a", Int(1))
	m.Clear()
	if m.Size() != 0 || m.Has("a") {
		t.Error("Clear did not clear")
	}
	if err := m.Insert("b", Int(2)); err != nil || m.Size() != 1 {
		t.Error("map unusable after Clear")
	}
}

func TestRowWindowEviction(t *testing.T) {
	w, err := NewRowWindow(KindInt, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if err := w.Append(Int(int64(i)), Timestamp(i)); err != nil {
			t.Fatal(err)
		}
	}
	if w.Len() != 3 {
		t.Fatalf("Len = %d, want 3", w.Len())
	}
	if got := w.String(); got != "[3, 4, 5]" {
		t.Errorf("window contents = %s, want [3, 4, 5]", got)
	}
	if v, _ := w.At(0).AsInt(); v != 3 {
		t.Error("oldest element should be 3")
	}
}

func TestTimeWindowEviction(t *testing.T) {
	w, err := NewTimeWindow(KindInt, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	base := Timestamp(0)
	for i := 0; i < 5; i++ {
		ts := base.Add(time.Duration(i) * 4 * time.Second) // 0s,4s,8s,12s,16s
		if err := w.Append(Int(int64(i)), ts); err != nil {
			t.Fatal(err)
		}
	}
	// At t=16s, the 10s window holds appends at 8s, 12s, 16s.
	if w.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (got %s)", w.Len(), w)
	}
	w.ExpireAt(base.Add(100 * time.Second))
	if w.Len() != 0 {
		t.Errorf("ExpireAt far future should empty window, len=%d", w.Len())
	}
}

func TestWindowBoundKindEnforced(t *testing.T) {
	w, _ := NewRowWindow(KindSequence, 4)
	if err := w.Append(Int(1), 0); err == nil {
		t.Error("appending int to sequence-bound window should error")
	}
	if err := w.Append(SeqV(NewSequence(Int(1))), 0); err != nil {
		t.Errorf("appending sequence should work: %v", err)
	}
}

func TestWindowConstructorValidation(t *testing.T) {
	if _, err := NewRowWindow(KindInt, 0); err == nil {
		t.Error("zero-row window should be rejected")
	}
	if _, err := NewTimeWindow(KindInt, 0); err == nil {
		t.Error("zero-span window should be rejected")
	}
}

func TestWindowTsAtAndClear(t *testing.T) {
	w, _ := NewRowWindow(KindInt, 8)
	_ = w.Append(Int(1), 100)
	_ = w.Append(Int(2), 200)
	if w.TsAt(1) != 200 {
		t.Errorf("TsAt(1) = %d, want 200", w.TsAt(1))
	}
	if w.TsAt(9) != 0 {
		t.Error("TsAt out of range should be 0")
	}
	w.Clear()
	if w.Len() != 0 {
		t.Error("Clear failed")
	}
}

func TestMapIteratorSnapshotsSource(t *testing.T) {
	m := NewMap(KindInt)
	for _, k := range []string{"a", "b", "c"} {
		_ = m.Insert(k, Int(1))
	}
	it := NewMapIterator(m)
	// Mutate during iteration, as the frequent algorithm does.
	var seen []string
	for it.HasNext() {
		id := it.Next()
		key, _ := id.AsStr()
		seen = append(seen, key)
		m.Remove(key)
	}
	if len(seen) != 3 {
		t.Fatalf("iterator saw %d keys, want 3", len(seen))
	}
	if m.Size() != 0 {
		t.Error("all keys should have been removed")
	}
	if !it.Next().IsNil() {
		t.Error("exhausted iterator should return nil")
	}
}

func TestWindowAndSequenceIterators(t *testing.T) {
	w, _ := NewRowWindow(KindInt, 4)
	_ = w.Append(Int(10), 0)
	_ = w.Append(Int(20), 0)
	it := NewWindowIterator(w)
	sum := int64(0)
	for it.HasNext() {
		n, _ := it.Next().AsInt()
		sum += n
	}
	if sum != 30 {
		t.Errorf("window iterator sum = %d, want 30", sum)
	}

	s := NewSequence(Int(1), Int(2), Int(3))
	sit := NewSequenceIterator(s)
	count := 0
	for sit.HasNext() {
		sit.Next()
		count++
	}
	if count != 3 {
		t.Errorf("sequence iterator count = %d, want 3", count)
	}
}

// Property: a row window never exceeds its capacity and always retains the
// most recent items in order.
func TestRowWindowInvariantProperty(t *testing.T) {
	f := func(capRaw uint8, n uint8) bool {
		capacity := int(capRaw%16) + 1
		w, err := NewRowWindow(KindInt, capacity)
		if err != nil {
			return false
		}
		total := int(n)
		for i := 0; i < total; i++ {
			if err := w.Append(Int(int64(i)), Timestamp(i)); err != nil {
				return false
			}
			if w.Len() > capacity {
				return false
			}
		}
		want := total
		if want > capacity {
			want = capacity
		}
		if w.Len() != want {
			return false
		}
		for i := 0; i < w.Len(); i++ {
			exp := int64(total - w.Len() + i)
			if v, _ := w.At(i).AsInt(); v != exp {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: map holds exactly the keys inserted and not removed.
func TestMapSetSemanticsProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		m := NewMap(KindInt)
		ref := map[string]int64{}
		for i, op := range ops {
			key := fmt.Sprintf("k%d", op%32)
			if op%3 == 0 {
				m.Remove(key)
				delete(ref, key)
			} else {
				if err := m.Insert(key, Int(int64(i))); err != nil {
					return false
				}
				ref[key] = int64(i)
			}
		}
		if m.Size() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := m.Lookup(k)
			if !ok {
				return false
			}
			if n, _ := got.AsInt(); n != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
