package types

import "fmt"

// Arithmetic and logic on values, shared by the GAPL VM and the SQL
// expression evaluator.
//
// Numeric promotion rules: int op int -> int; any real operand -> real;
// tstamp +/- int -> tstamp; tstamp - tstamp -> int (nanoseconds). String +
// string concatenates (a convenience extension; the paper's programs use the
// String() constructor for concatenation).

func numericPair(a, b Value, op string) (float64, float64, error) {
	af, aok := a.NumAsReal()
	bf, bok := b.NumAsReal()
	if !aok || !bok {
		return 0, 0, fmt.Errorf("operator %s needs numeric operands, got %s and %s",
			op, a.Kind(), b.Kind())
	}
	return af, bf, nil
}

func bothIntegral(a, b Value) bool {
	return a.Kind() != KindReal && b.Kind() != KindReal &&
		a.Kind().Numeric() && b.Kind().Numeric()
}

// Add computes a + b.
func Add(a, b Value) (Value, error) {
	if sa, ok := a.AsStr(); ok {
		if sb, ok2 := b.AsStr(); ok2 {
			return Str(sa + sb), nil
		}
	}
	if bothIntegral(a, b) {
		sum := a.n + b.n
		if a.Kind() == KindTstamp || b.Kind() == KindTstamp {
			return Stamp(Timestamp(sum)), nil
		}
		return Int(sum), nil
	}
	af, bf, err := numericPair(a, b, "+")
	if err != nil {
		return Nil, err
	}
	return Real(af + bf), nil
}

// Sub computes a - b.
func Sub(a, b Value) (Value, error) {
	if bothIntegral(a, b) {
		diff := a.n - b.n
		switch {
		case a.Kind() == KindTstamp && b.Kind() == KindTstamp:
			return Int(diff), nil // duration in ns
		case a.Kind() == KindTstamp:
			return Stamp(Timestamp(diff)), nil
		}
		return Int(diff), nil
	}
	af, bf, err := numericPair(a, b, "-")
	if err != nil {
		return Nil, err
	}
	return Real(af - bf), nil
}

// Mul computes a * b.
func Mul(a, b Value) (Value, error) {
	if a.Kind() == KindInt && b.Kind() == KindInt {
		return Int(a.n * b.n), nil
	}
	af, bf, err := numericPair(a, b, "*")
	if err != nil {
		return Nil, err
	}
	return Real(af * bf), nil
}

// Div computes a / b. Integer division truncates; division by zero is an
// error for integers and yields ±Inf for reals (IEEE semantics).
func Div(a, b Value) (Value, error) {
	if a.Kind() == KindInt && b.Kind() == KindInt {
		if b.n == 0 {
			return Nil, fmt.Errorf("integer division by zero")
		}
		return Int(a.n / b.n), nil
	}
	af, bf, err := numericPair(a, b, "/")
	if err != nil {
		return Nil, err
	}
	return Real(af / bf), nil
}

// Mod computes a % b for integers.
func Mod(a, b Value) (Value, error) {
	an, aok := a.AsInt()
	bn, bok := b.AsInt()
	if !aok || !bok {
		return Nil, fmt.Errorf("operator %% needs int operands, got %s and %s",
			a.Kind(), b.Kind())
	}
	if bn == 0 {
		return Nil, fmt.Errorf("integer modulo by zero")
	}
	return Int(an % bn), nil
}

// Neg computes -a.
func Neg(a Value) (Value, error) {
	switch a.Kind() {
	case KindInt:
		return Int(-a.n), nil
	case KindReal:
		return Real(-a.f), nil
	}
	return Nil, fmt.Errorf("operator - needs a numeric operand, got %s", a.Kind())
}

// Not computes !a.
func Not(a Value) (Value, error) {
	b, ok := a.AsBool()
	if !ok {
		return Nil, fmt.Errorf("operator ! needs a bool operand, got %s", a.Kind())
	}
	return Bool(!b), nil
}

// CompareOp evaluates a relational operator ("==", "!=", "<", "<=", ">",
// ">=") over two values.
func CompareOp(op string, a, b Value) (Value, error) {
	switch op {
	case "==":
		return Bool(Equal(a, b)), nil
	case "!=":
		return Bool(!Equal(a, b)), nil
	}
	c, err := Compare(a, b)
	if err != nil {
		return Nil, err
	}
	switch op {
	case "<":
		return Bool(c < 0), nil
	case "<=":
		return Bool(c <= 0), nil
	case ">":
		return Bool(c > 0), nil
	case ">=":
		return Bool(c >= 0), nil
	}
	return Nil, fmt.Errorf("unknown comparison operator %q", op)
}

// AssignCompatible reports whether a value of kind src may be stored in a
// variable declared with kind dst. Identifiers and strings interconvert;
// ints may be stored in tstamp variables (and vice versa, for durations).
func AssignCompatible(dst, src Kind) bool {
	if dst == src || src == KindNil {
		return true
	}
	switch dst {
	case KindTstamp:
		return src == KindInt
	case KindInt:
		return src == KindTstamp
	case KindReal:
		// Implicit int->real widening; the reverse requires int().
		return src == KindInt
	case KindString:
		return src == KindIdentifier
	case KindIdentifier:
		return src == KindString
	}
	return false
}

// ConvertAssign converts v for storage in a variable of kind dst, applying
// the AssignCompatible conversions.
func ConvertAssign(dst Kind, v Value) (Value, error) {
	if v.Kind() == dst || v.IsNil() {
		return v, nil
	}
	switch dst {
	case KindTstamp:
		if n, ok := v.AsInt(); ok {
			return Stamp(Timestamp(n)), nil
		}
	case KindInt:
		if ts, ok := v.AsStamp(); ok {
			return Int(int64(ts)), nil
		}
	case KindReal:
		if n, ok := v.AsInt(); ok {
			return Real(float64(n)), nil
		}
	case KindString:
		if s, ok := v.AsStr(); ok {
			return Str(s), nil
		}
	case KindIdentifier:
		if s, ok := v.AsStr(); ok {
			return Ident(s), nil
		}
	}
	return Nil, fmt.Errorf("cannot assign %s to %s variable", v.Kind(), dst)
}
