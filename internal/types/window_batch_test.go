package types

import (
	"testing"
	"time"
)

func TestAppendBatchRowsEvictsOnce(t *testing.T) {
	w, err := NewRowWindow(KindInt, 3)
	if err != nil {
		t.Fatal(err)
	}
	vals := []Value{Int(1), Int(2), Int(3), Int(4), Int(5)}
	if err := w.AppendBatch(vals, nil, 100); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 3 {
		t.Fatalf("Len = %d, want 3", w.Len())
	}
	for i, want := range []int64{3, 4, 5} {
		if got, _ := w.At(i).AsInt(); got != want {
			t.Fatalf("At(%d) = %v, want %d", i, w.At(i), want)
		}
	}
}

func TestAppendBatchTimeEvictsAtBatchBoundary(t *testing.T) {
	w, err := NewTimeWindow(KindInt, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	ms := Timestamp(time.Millisecond)
	// First batch at t = 0..1ms, evaluated at 2ms: all live.
	if err := w.AppendBatch([]Value{Int(1), Int(2)}, []Timestamp{0, 1 * ms}, 2*ms); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 2 {
		t.Fatalf("Len after first batch = %d, want 2", w.Len())
	}
	// Second batch lands at 12ms: the first batch has aged out and must be
	// evicted in this single call — eviction happens once per batch, at
	// the batch boundary.
	if err := w.AppendBatch([]Value{Int(3)}, []Timestamp{12 * ms}, 12*ms); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 1 {
		t.Fatalf("Len after second batch = %d, want 1", w.Len())
	}
	if got, _ := w.At(0).AsInt(); got != 3 {
		t.Fatalf("survivor = %v, want 3", w.At(0))
	}
	// Per-entry timestamps survive into TsAt.
	if w.TsAt(0) != 12*ms {
		t.Fatalf("TsAt(0) = %d, want %d", w.TsAt(0), 12*ms)
	}
}

func TestAppendBatchValidation(t *testing.T) {
	w, err := NewRowWindow(KindInt, 4)
	if err != nil {
		t.Fatal(err)
	}
	// A batch with any ill-kinded value is rejected whole.
	if err := w.AppendBatch([]Value{Int(1), Str("x")}, nil, 1); err == nil {
		t.Fatal("mixed-kind batch should be rejected")
	}
	if w.Len() != 0 {
		t.Fatalf("rejected batch must not append anything, Len = %d", w.Len())
	}
	if err := w.AppendBatch([]Value{Int(1)}, []Timestamp{1, 2}, 1); err == nil {
		t.Fatal("mismatched timestamp slice should be rejected")
	}
	// Empty batch is a no-op.
	if err := w.AppendBatch(nil, nil, 1); err != nil {
		t.Fatal(err)
	}
}
