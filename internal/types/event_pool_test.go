package types

import "testing"

func poolSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("S", false, -1,
		Column{Name: "name", Type: ColVarchar},
		Column{Name: "v", Type: ColInt})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAcquireEventLifecycle(t *testing.T) {
	s := poolSchema(t)
	ev := AcquireEvent("S", s, 2)
	if !ev.Pooled() {
		t.Fatal("acquired event should be pooled")
	}
	if got := ev.Refs(); got != 1 {
		t.Fatalf("fresh event refs = %d, want 1", got)
	}
	if len(ev.Tuple.Vals) != 2 {
		t.Fatalf("vals sized %d, want 2", len(ev.Tuple.Vals))
	}
	ev.Retain()
	ev.Retain()
	if got := ev.Refs(); got != 3 {
		t.Fatalf("refs = %d, want 3", got)
	}
	ev.Release()
	ev.Release()
	if got := ev.Refs(); got != 1 {
		t.Fatalf("refs = %d, want 1", got)
	}
	ev.Release() // back to the pool
}

func TestReleaseAfterZeroPanics(t *testing.T) {
	s := poolSchema(t)
	ev := AcquireEvent("S", s, 2)
	b := ev.block
	ev.Release()
	// The scrub detaches the public Event/Tuple from the block, so a stale
	// Release through them is absorbed as a no-op...
	ev.Release()
	// ...but a release racing the one that hit zero (both saw the block
	// before the scrub) drives the count negative and must fail loudly
	// rather than silently corrupt a recycled block.
	defer func() {
		if recover() == nil {
			t.Error("release past zero should panic loudly, not corrupt the pool")
		}
	}()
	b.release()
}

func TestUnpooledRetainReleaseNoop(t *testing.T) {
	ev := &Event{Topic: "S", Tuple: &Tuple{Vals: []Value{Int(1)}}}
	if ev.Pooled() {
		t.Fatal("heap event should not report pooled")
	}
	// Unconditional call sites rely on these being no-ops for heap events.
	ev.Retain()
	ev.Release()
	ev.Release()
	ev.Tuple.Retain()
	ev.Tuple.Release()
	if ev.Tuple.Vals[0] != Int(1) {
		t.Error("heap event mutated by no-op retain/release")
	}
}

func TestPooledCloneIsUnpooled(t *testing.T) {
	s := poolSchema(t)
	ev := AcquireEvent("S", s, 2)
	ev.Tuple.Vals[0] = Str("a")
	ev.Tuple.Vals[1] = Int(7)
	clone := ev.Clone()
	ev.Release()
	if clone.Pooled() {
		t.Error("clone must be a plain heap event")
	}
	if clone.Tuple.Vals[0] != Str("a") || clone.Tuple.Vals[1] != Int(7) {
		t.Errorf("clone vals = %v, want [a 7]", clone.Tuple.Vals)
	}
}

// TestReleaseScrubsAndRecycles: a released block comes back from the pool
// scrubbed — no values, schema or topic from its previous life.
func TestReleaseScrubsAndRecycles(t *testing.T) {
	s := poolSchema(t)
	ev := AcquireEvent("S", s, 2)
	ev.Tuple.Vals[0] = Str("secret")
	ev.Tuple.Vals[1] = Int(42)
	ev.Release()
	// sync.Pool gives no recycling guarantee, so scan a few acquisitions:
	// none may carry stale values.
	for i := 0; i < 16; i++ {
		re := AcquireEvent("S2", s, 2)
		for j, v := range re.Tuple.Vals {
			if v != Nil {
				t.Fatalf("recycled event vals[%d] = %v, want Nil", j, v)
			}
		}
		if re.Topic != "S2" || re.Tuple.Seq != 0 || re.Tuple.TS != 0 {
			t.Fatalf("recycled event carries stale identity: %+v", re)
		}
		re.Release()
	}
}

func TestCoerceInto(t *testing.T) {
	s := poolSchema(t)
	dst := make([]Value, 2)
	if err := s.CoerceInto(dst, []Value{Str("a"), Int(1)}); err != nil {
		t.Fatal(err)
	}
	if dst[0] != Str("a") || dst[1] != Int(1) {
		t.Errorf("dst = %v, want [a 1]", dst)
	}
	// Arity mismatch and uncoercible kinds fail like Coerce does.
	if err := s.CoerceInto(dst, []Value{Str("a")}); err == nil {
		t.Error("arity mismatch should fail")
	}
	if err := s.CoerceInto(dst, []Value{Str("a"), Str("nope")}); err == nil {
		t.Error("uncoercible kind should fail")
	}
	// Kinds that convert (int → real) convert in place.
	rs, err := NewSchema("R", false, -1, Column{Name: "x", Type: ColReal})
	if err != nil {
		t.Fatal(err)
	}
	rdst := make([]Value, 1)
	if err := rs.CoerceInto(rdst, []Value{Int(3)}); err != nil {
		t.Fatal(err)
	}
	if rdst[0].Kind() != KindReal {
		t.Errorf("int should coerce to real, got %v", rdst[0].Kind())
	}
}
