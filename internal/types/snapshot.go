package types

// This file holds the snapshot codecs: stable binary encodings for the
// durable state the WAL layer persists. They live in types (not wire)
// because wire depends on sql and is therefore off-limits to the storage
// layers below it; the encodings here use encoding/binary primitives
// directly and are part of the on-disk format — changing them invalidates
// existing data directories.

import (
	"encoding/binary"
	"fmt"
)

// AppendSchema appends a stable binary encoding of s to dst:
// name, persistent flag, key index, then each column's name/type/width.
func AppendSchema(dst []byte, s *Schema) []byte {
	dst = appendString(dst, s.Name)
	if s.Persistent {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(s.Key)))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(s.Cols)))
	for _, c := range s.Cols {
		dst = appendString(dst, c.Name)
		dst = append(dst, byte(c.Type))
		dst = binary.BigEndian.AppendUint32(dst, uint32(c.Width))
	}
	return dst
}

// DecodeSchema decodes a schema produced by AppendSchema, returning the
// schema and the number of bytes consumed. The schema is revalidated
// through NewSchema, so a corrupt-but-checksum-valid encoding cannot
// install an inconsistent schema.
func DecodeSchema(b []byte) (*Schema, int, error) {
	pos := 0
	name, n, err := decodeString(b[pos:])
	if err != nil {
		return nil, 0, fmt.Errorf("schema name: %w", err)
	}
	pos += n
	if pos+1+4+2 > len(b) {
		return nil, 0, fmt.Errorf("schema %s: truncated header", name)
	}
	persistent := b[pos] == 1
	pos++
	key := int(int32(binary.BigEndian.Uint32(b[pos:])))
	pos += 4
	ncols := int(binary.BigEndian.Uint16(b[pos:]))
	pos += 2
	cols := make([]Column, 0, ncols)
	for i := 0; i < ncols; i++ {
		cname, n, err := decodeString(b[pos:])
		if err != nil {
			return nil, 0, fmt.Errorf("schema %s column %d: %w", name, i, err)
		}
		pos += n
		if pos+1+4 > len(b) {
			return nil, 0, fmt.Errorf("schema %s column %d: truncated", name, i)
		}
		ctype := ColType(b[pos])
		pos++
		width := int(binary.BigEndian.Uint32(b[pos:]))
		pos += 4
		if ctype < ColInt || ctype > ColTstamp {
			return nil, 0, fmt.Errorf("schema %s column %s: bad column type %d", name, cname, ctype)
		}
		cols = append(cols, Column{Name: cname, Type: ctype, Width: width})
	}
	s, err := NewSchema(name, persistent, key, cols...)
	if err != nil {
		return nil, 0, err
	}
	return s, pos, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

func decodeString(b []byte) (string, int, error) {
	if len(b) < 4 {
		return "", 0, fmt.Errorf("truncated string length")
	}
	n := int(binary.BigEndian.Uint32(b))
	if 4+n > len(b) {
		return "", 0, fmt.Errorf("truncated string body (want %d bytes, have %d)", n, len(b)-4)
	}
	return string(b[4 : 4+n]), 4 + n, nil
}
