package types

import "time"

// Timestamp is nanoseconds since the Unix epoch, the paper's tstamp type
// (a 64-bit value; we use int64 internally, which covers dates to 2262).
type Timestamp int64

// Now returns the current wall-clock time as a Timestamp.
func Now() Timestamp { return Timestamp(time.Now().UnixNano()) }

// FromTime converts a time.Time to a Timestamp.
func FromTime(t time.Time) Timestamp { return Timestamp(t.UnixNano()) }

// Time converts the Timestamp to a time.Time.
func (t Timestamp) Time() time.Time { return time.Unix(0, int64(t)) }

// Add offsets the Timestamp by a duration.
func (t Timestamp) Add(d time.Duration) Timestamp { return t + Timestamp(d) }

// Sub returns the duration t-u.
func (t Timestamp) Sub(u Timestamp) time.Duration { return time.Duration(t - u) }

// HourInDay returns the hour of day (0-23) in UTC, matching the paper's
// hourInDay built-in.
func (t Timestamp) HourInDay() int { return t.Time().UTC().Hour() }

// DayInWeek returns the day of week (0=Sunday .. 6=Saturday) in UTC.
func (t Timestamp) DayInWeek() int { return int(t.Time().UTC().Weekday()) }
