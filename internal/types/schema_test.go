package types

import (
	"strings"
	"testing"
)

func flowsSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("Flows", false, -1,
		Column{Name: "protocol", Type: ColInt},
		Column{Name: "srcip", Type: ColVarchar, Width: 16},
		Column{Name: "nbytes", Type: ColInt},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema("", false, -1, Column{Name: "a", Type: ColInt}); err == nil {
		t.Error("empty table name should be rejected")
	}
	if _, err := NewSchema("T", false, -1); err == nil {
		t.Error("zero columns should be rejected")
	}
	if _, err := NewSchema("T", true, -1, Column{Name: "a", Type: ColInt}); err == nil {
		t.Error("persistent table without key should be rejected")
	}
	if _, err := NewSchema("T", true, 5, Column{Name: "a", Type: ColInt}); err == nil {
		t.Error("persistent table with out-of-range key should be rejected")
	}
	if _, err := NewSchema("T", false, -1,
		Column{Name: "a", Type: ColInt}, Column{Name: "A", Type: ColInt}); err == nil {
		t.Error("duplicate column names (case-insensitive) should be rejected")
	}
	if _, err := NewSchema("T", false, -1, Column{Type: ColInt}); err == nil {
		t.Error("unnamed column should be rejected")
	}
}

func TestSchemaColIndexCaseInsensitive(t *testing.T) {
	s := flowsSchema(t)
	if s.ColIndex("NBYTES") != 2 {
		t.Error("ColIndex should be case-insensitive")
	}
	if s.ColIndex("absent") != -1 {
		t.Error("absent column should return -1")
	}
	if s.NumCols() != 3 {
		t.Error("NumCols wrong")
	}
}

func TestSchemaKeyForcedForEphemeral(t *testing.T) {
	s, err := NewSchema("T", false, 2, Column{Name: "a", Type: ColInt})
	if err != nil {
		t.Fatal(err)
	}
	if s.Key != -1 {
		t.Errorf("ephemeral table Key = %d, want -1", s.Key)
	}
}

func TestSchemaCoerce(t *testing.T) {
	s := flowsSchema(t)
	vals := []Value{Int(6), Str("10.0.0.1"), Int(1500)}
	out, err := s.Coerce(vals)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatal("wrong arity out")
	}

	// Wrong arity.
	if _, err := s.Coerce([]Value{Int(1)}); err == nil {
		t.Error("arity mismatch should error")
	}
	// Identifier into varchar column.
	out, err = s.Coerce([]Value{Int(6), Ident("10.0.0.1"), Int(9)})
	if err != nil {
		t.Fatal(err)
	}
	if out[1].Kind() != KindString {
		t.Errorf("identifier should coerce to string, got %s", out[1].Kind())
	}
	// Incompatible.
	if _, err := s.Coerce([]Value{Str("x"), Str("y"), Int(1)}); err == nil {
		t.Error("string into int column should error")
	}
}

func TestSchemaCoerceNumericWidening(t *testing.T) {
	s, err := NewSchema("P", false, -1,
		Column{Name: "price", Type: ColReal},
		Column{Name: "ts", Type: ColTstamp},
		Column{Name: "ok", Type: ColBool},
	)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Coerce([]Value{Int(10), Int(123456), Bool(true)})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Kind() != KindReal {
		t.Errorf("int should widen to real, got %s", out[0].Kind())
	}
	if out[1].Kind() != KindTstamp {
		t.Errorf("int should widen to tstamp, got %s", out[1].Kind())
	}
	// Coerce must not mutate the caller's slice.
	orig := []Value{Int(10), Int(123456), Bool(true)}
	if _, err := s.Coerce(orig); err != nil {
		t.Fatal(err)
	}
	if orig[0].Kind() != KindInt {
		t.Error("Coerce mutated its input slice")
	}
}

func TestSchemaString(t *testing.T) {
	s, _ := NewSchema("Allowances", true, 0,
		Column{Name: "ipaddr", Type: ColVarchar, Width: 16},
		Column{Name: "bytes", Type: ColInt},
	)
	str := s.String()
	if !strings.Contains(str, "primary key") || !strings.Contains(str, "Allowances") {
		t.Errorf("schema string = %q", str)
	}
}

func TestEventFieldAccess(t *testing.T) {
	s := flowsSchema(t)
	tup := &Tuple{Seq: 1, TS: 999, Vals: []Value{Int(6), Str("1.2.3.4"), Int(100)}}
	ev := &Event{Topic: "Flows", Schema: s, Tuple: tup}

	v, err := ev.Field("nbytes")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := v.AsInt(); n != 100 {
		t.Errorf("Field(nbytes) = %v", v)
	}
	// Pseudo-attribute tstamp resolves to insertion time.
	v, err = ev.Field("tstamp")
	if err != nil {
		t.Fatal(err)
	}
	if ts, _ := v.AsStamp(); ts != 999 {
		t.Errorf("Field(tstamp) = %v", v)
	}
	if _, err := ev.Field("nosuch"); err == nil {
		t.Error("unknown attribute should error")
	}
	// FieldAt with -1 is the compiled pseudo-attribute.
	if ts, _ := ev.FieldAt(-1).AsStamp(); ts != 999 {
		t.Error("FieldAt(-1) should be insertion tstamp")
	}
	if !ev.FieldAt(17).IsNil() {
		t.Error("FieldAt out of range should be nil")
	}
	if got := ev.AsSequence().Len(); got != 3 {
		t.Errorf("AsSequence len = %d", got)
	}
	if !strings.HasPrefix(ev.String(), "Flows(") {
		t.Errorf("event string = %q", ev.String())
	}
}

func TestTupleClone(t *testing.T) {
	tup := &Tuple{Seq: 5, TS: 10, Vals: []Value{Int(1)}}
	c := tup.Clone()
	c.Vals[0] = Int(99)
	if n, _ := tup.Vals[0].AsInt(); n != 1 {
		t.Error("Clone must not alias Vals")
	}
}

func TestColTypeKindRoundTrip(t *testing.T) {
	pairs := map[ColType]Kind{
		ColInt: KindInt, ColReal: KindReal, ColVarchar: KindString,
		ColBool: KindBool, ColTstamp: KindTstamp,
	}
	for ct, k := range pairs {
		if ct.Kind() != k {
			t.Errorf("%v.Kind() = %v, want %v", ct, ct.Kind(), k)
		}
	}
}
