package types

// TimerTopic is the name of the built-in punctuation topic: the cache
// commits one `Timer(ts tstamp)` tuple per configured period. It lives in
// package types (rather than cache) so low-level packages — notably the
// CEP machine, which treats Timer events as watermark heartbeats — can
// name it without importing the cache.
const TimerTopic = "Timer"
