package types

import (
	"testing"
	"testing/quick"
)

func TestAdd(t *testing.T) {
	tests := []struct {
		a, b Value
		want string
	}{
		{Int(2), Int(3), "5"},
		{Int(2), Real(0.5), "2.5"},
		{Real(1.5), Real(1.5), "3.0"},
		{Stamp(100), Int(50), "150"},
		{Int(50), Stamp(100), "150"},
		{Str("ab"), Str("cd"), "abcd"},
	}
	for _, tt := range tests {
		got, err := Add(tt.a, tt.b)
		if err != nil {
			t.Errorf("Add(%v,%v): %v", tt.a, tt.b, err)
			continue
		}
		if got.String() != tt.want {
			t.Errorf("Add(%v,%v) = %v, want %s", tt.a, tt.b, got, tt.want)
		}
	}
	if v, _ := Add(Stamp(100), Int(50)); v.Kind() != KindTstamp {
		t.Error("tstamp + int should stay tstamp")
	}
	if _, err := Add(Bool(true), Int(1)); err == nil {
		t.Error("bool + int should error")
	}
}

func TestSub(t *testing.T) {
	if v, err := Sub(Stamp(150), Stamp(100)); err != nil || v.Kind() != KindInt || v.String() != "50" {
		t.Errorf("tstamp - tstamp = %v (%v), want int 50", v, err)
	}
	if v, err := Sub(Stamp(150), Int(100)); err != nil || v.Kind() != KindTstamp {
		t.Errorf("tstamp - int should be tstamp, got %v (%v)", v.Kind(), err)
	}
	if v, _ := Sub(Int(3), Int(5)); v.String() != "-2" {
		t.Error("int subtraction wrong")
	}
	if v, _ := Sub(Real(3), Int(1)); v.Kind() != KindReal || v.String() != "2.0" {
		t.Error("mixed subtraction should be real")
	}
	if _, err := Sub(Str("a"), Int(1)); err == nil {
		t.Error("string - int should error")
	}
}

func TestMulDivMod(t *testing.T) {
	if v, _ := Mul(Int(6), Int(7)); v.String() != "42" {
		t.Error("int mul wrong")
	}
	if v, _ := Mul(Int(2), Real(1.5)); v.Kind() != KindReal || v.String() != "3.0" {
		t.Error("mixed mul should be real")
	}
	if v, _ := Div(Int(7), Int(2)); v.String() != "3" {
		t.Error("int div should truncate")
	}
	if _, err := Div(Int(1), Int(0)); err == nil {
		t.Error("int division by zero should error")
	}
	if v, _ := Div(Real(1), Real(4)); v.String() != "0.25" {
		t.Error("real div wrong")
	}
	if v, _ := Mod(Int(7), Int(3)); v.String() != "1" {
		t.Error("mod wrong")
	}
	if _, err := Mod(Int(1), Int(0)); err == nil {
		t.Error("mod by zero should error")
	}
	if _, err := Mod(Real(1), Int(2)); err == nil {
		t.Error("mod on real should error")
	}
}

func TestNegNot(t *testing.T) {
	if v, _ := Neg(Int(5)); v.String() != "-5" {
		t.Error("neg int wrong")
	}
	if v, _ := Neg(Real(2.5)); v.String() != "-2.5" {
		t.Error("neg real wrong")
	}
	if _, err := Neg(Str("x")); err == nil {
		t.Error("neg string should error")
	}
	if v, _ := Not(Bool(true)); v.String() != "false" {
		t.Error("not wrong")
	}
	if _, err := Not(Int(1)); err == nil {
		t.Error("not int should error")
	}
}

func TestCompareOp(t *testing.T) {
	tests := []struct {
		op   string
		a, b Value
		want bool
	}{
		{"==", Int(1), Int(1), true},
		{"!=", Int(1), Int(2), true},
		{"<", Int(1), Int(2), true},
		{"<=", Int(2), Int(2), true},
		{">", Real(2.5), Int(2), true},
		{">=", Str("b"), Str("a"), true},
		{"==", Str("a"), Ident("a"), true},
	}
	for _, tt := range tests {
		v, err := CompareOp(tt.op, tt.a, tt.b)
		if err != nil {
			t.Errorf("CompareOp(%s,%v,%v): %v", tt.op, tt.a, tt.b, err)
			continue
		}
		if b, _ := v.AsBool(); b != tt.want {
			t.Errorf("CompareOp(%s,%v,%v) = %v, want %v", tt.op, tt.a, tt.b, b, tt.want)
		}
	}
	if _, err := CompareOp("<", Str("a"), Int(1)); err == nil {
		t.Error("ordering string vs int should error")
	}
	if _, err := CompareOp("~", Int(1), Int(1)); err == nil {
		t.Error("unknown operator should error")
	}
	// == on mixed kinds is false, not an error.
	if v, err := CompareOp("==", Str("a"), Int(1)); err != nil {
		t.Error(err)
	} else if b, _ := v.AsBool(); b {
		t.Error("string == int should be false")
	}
}

func TestConvertAssign(t *testing.T) {
	// int -> tstamp
	v, err := ConvertAssign(KindTstamp, Int(123))
	if err != nil || v.Kind() != KindTstamp {
		t.Errorf("int->tstamp: %v (%v)", v, err)
	}
	// tstamp -> int
	v, err = ConvertAssign(KindInt, Stamp(456))
	if err != nil || v.Kind() != KindInt {
		t.Errorf("tstamp->int: %v (%v)", v, err)
	}
	// identifier -> string and back
	v, err = ConvertAssign(KindString, Ident("x"))
	if err != nil || v.Kind() != KindString {
		t.Errorf("ident->string: %v (%v)", v, err)
	}
	v, err = ConvertAssign(KindIdentifier, Str("x"))
	if err != nil || v.Kind() != KindIdentifier {
		t.Errorf("string->ident: %v (%v)", v, err)
	}
	// incompatible
	if _, err = ConvertAssign(KindInt, Str("x")); err == nil {
		t.Error("string->int should error")
	}
	// same kind is identity
	if v, err = ConvertAssign(KindReal, Real(1)); err != nil || v.Kind() != KindReal {
		t.Error("identity convert failed")
	}
}

func TestAssignCompatible(t *testing.T) {
	if !AssignCompatible(KindTstamp, KindInt) || !AssignCompatible(KindInt, KindTstamp) {
		t.Error("int<->tstamp should be compatible")
	}
	if !AssignCompatible(KindString, KindIdentifier) {
		t.Error("identifier should store into string")
	}
	if AssignCompatible(KindInt, KindString) {
		t.Error("string into int should be incompatible")
	}
	if !AssignCompatible(KindMap, KindNil) {
		t.Error("nil is assignable anywhere")
	}
}

// Property: integer Add/Sub round-trips.
func TestAddSubRoundTripProperty(t *testing.T) {
	f := func(a, b int64) bool {
		sum, err := Add(Int(a), Int(b))
		if err != nil {
			return false
		}
		back, err := Sub(sum, Int(b))
		if err != nil {
			return false
		}
		n, _ := back.AsInt()
		return n == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Mod result has |r| < |b| and sign rules of Go.
func TestModRangeProperty(t *testing.T) {
	f := func(a int64, b int64) bool {
		if b == 0 {
			return true
		}
		v, err := Mod(Int(a), Int(b))
		if err != nil {
			return false
		}
		r, _ := v.AsInt()
		return r == a%b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
