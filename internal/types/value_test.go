package types

import (
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	tests := []struct {
		name string
		v    Value
		kind Kind
		str  string
	}{
		{"int", Int(42), KindInt, "42"},
		{"negative int", Int(-7), KindInt, "-7"},
		{"real", Real(2.5), KindReal, "2.5"},
		{"real integral", Real(3), KindReal, "3.0"},
		{"bool true", Bool(true), KindBool, "true"},
		{"bool false", Bool(false), KindBool, "false"},
		{"string", Str("abc"), KindString, "abc"},
		{"identifier", Ident("key"), KindIdentifier, "key"},
		{"tstamp", Stamp(1234), KindTstamp, "1234"},
		{"nil", Nil, KindNil, "nil"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.Kind(); got != tt.kind {
				t.Errorf("Kind() = %v, want %v", got, tt.kind)
			}
			if got := tt.v.String(); got != tt.str {
				t.Errorf("String() = %q, want %q", got, tt.str)
			}
		})
	}
}

func TestValueAccessorsRejectWrongKind(t *testing.T) {
	if _, ok := Str("x").AsInt(); ok {
		t.Error("AsInt on string should fail")
	}
	if _, ok := Int(1).AsStr(); ok {
		t.Error("AsStr on int should fail")
	}
	if _, ok := Int(1).AsBool(); ok {
		t.Error("AsBool on int should fail")
	}
	if _, ok := Int(1).AsStamp(); ok {
		t.Error("AsStamp on int should fail")
	}
	if Int(1).Seq() != nil || Int(1).Map() != nil || Int(1).Win() != nil {
		t.Error("aggregate accessors on scalar should return nil")
	}
}

func TestTruthy(t *testing.T) {
	if b, err := Bool(true).Truthy(); err != nil || !b {
		t.Errorf("Bool(true).Truthy() = %v, %v", b, err)
	}
	if b, err := Bool(false).Truthy(); err != nil || b {
		t.Errorf("Bool(false).Truthy() = %v, %v", b, err)
	}
	if _, err := Int(1).Truthy(); err == nil {
		t.Error("Int.Truthy() should error: conditions must be bool")
	}
}

func TestEqualNumericCoercion(t *testing.T) {
	if !Equal(Int(3), Real(3.0)) {
		t.Error("Int(3) should equal Real(3.0)")
	}
	if !Equal(Int(5), Stamp(5)) {
		t.Error("Int(5) should equal Stamp(5)")
	}
	if Equal(Int(3), Real(3.5)) {
		t.Error("Int(3) should not equal Real(3.5)")
	}
	if !Equal(Str("a"), Ident("a")) {
		t.Error("string and identifier with same contents should be equal")
	}
	if Equal(Str("a"), Int(0)) {
		t.Error("string should not equal int")
	}
	if !Equal(Nil, Nil) {
		t.Error("nil should equal nil")
	}
}

func TestEqualSequences(t *testing.T) {
	a := SeqV(NewSequence(Int(1), Str("x")))
	b := SeqV(NewSequence(Int(1), Str("x")))
	c := SeqV(NewSequence(Int(1), Str("y")))
	d := SeqV(NewSequence(Int(1)))
	if !Equal(a, b) {
		t.Error("equal sequences should compare equal")
	}
	if Equal(a, c) {
		t.Error("differing element should break equality")
	}
	if Equal(a, d) {
		t.Error("differing length should break equality")
	}
}

func TestCompare(t *testing.T) {
	tests := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(2), Int(2), 0},
		{Int(1), Real(1.5), -1},
		{Real(2.5), Int(2), 1},
		{Stamp(10), Stamp(20), -1},
		{Stamp(10), Int(10), 0},
		{Str("a"), Str("b"), -1},
		{Ident("b"), Str("a"), 1},
		{Bool(false), Bool(true), -1},
	}
	for _, tt := range tests {
		got, err := Compare(tt.a, tt.b)
		if err != nil {
			t.Errorf("Compare(%v, %v) error: %v", tt.a, tt.b, err)
			continue
		}
		if got != tt.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
	if _, err := Compare(Str("a"), Int(1)); err == nil {
		t.Error("comparing string with int should error")
	}
	if _, err := Compare(Bool(true), Int(1)); err == nil {
		t.Error("comparing bool with int should error")
	}
}

func TestCompareLargeTimestampsNoFloatRounding(t *testing.T) {
	// Two timestamps differing by 1 ns beyond float64 precision.
	a := Stamp(1 << 60)
	b := Stamp(1<<60 + 1)
	c, err := Compare(a, b)
	if err != nil || c != -1 {
		t.Errorf("Compare large timestamps = %d, %v; want -1, nil", c, err)
	}
}

func TestKeyString(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{Int(7), "7"},
		{Str("host"), "host"},
		{Ident("host"), "host"},
		{Real(1.5), "1.5"},
		{Bool(true), "true"},
		{SeqV(NewSequence(Str("a"), Int(2))), "a|2"},
	}
	for _, tt := range tests {
		if got := KeyString(tt.v); got != tt.want {
			t.Errorf("KeyString(%v) = %q, want %q", tt.v, got, tt.want)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindInt.String() != "int" || KindWindow.String() != "window" {
		t.Error("kind names wrong")
	}
	if !KindInt.Scalar() || KindSequence.Scalar() {
		t.Error("Scalar() classification wrong")
	}
	if !KindTstamp.Numeric() || KindString.Numeric() {
		t.Error("Numeric() classification wrong")
	}
}

// Property: Compare is antisymmetric and consistent with Equal for ints.
func TestCompareAntisymmetricProperty(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := Int(a), Int(b)
		c1, err1 := Compare(x, y)
		c2, err2 := Compare(y, x)
		if err1 != nil || err2 != nil {
			return false
		}
		if c1 != -c2 {
			return false
		}
		return (c1 == 0) == Equal(x, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: KeyString is injective over ints (decimal form).
func TestKeyStringIntInjectiveProperty(t *testing.T) {
	f := func(a, b int64) bool {
		if a == b {
			return KeyString(Int(a)) == KeyString(Int(b))
		}
		return KeyString(Int(a)) != KeyString(Int(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
