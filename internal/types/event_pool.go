package types

import (
	"sync"
	"sync/atomic"
)

// The steady-state event path (commit → publish → dispatcher → VM) can run
// without per-event heap allocation by recycling events through a pool.
// One eventBlock carries everything a committed event needs — the Event, its
// Tuple and the value storage — so acquiring an event is a single pool Get
// and releasing it returns all three at once.
//
// Ownership is reference-counted. The rules (docs/ARCHITECTURE.md, "Event
// ownership and pooling"):
//
//   - AcquireEvent returns a block with one reference, owned by the caller
//     (the commit path).
//   - Every holder that retains the event or its tuple past a function
//     boundary takes its own reference with Retain and drops it with Release:
//     the ephemeral table ring for stored tuples, each subscriber inbox for
//     queued events, the VM for the event bound to a subscription slot, and
//     table scans for snapshot rows.
//   - Release on an event that never came from the pool is a no-op, so call
//     sites are unconditional and unpooled operation is unaffected.
//
// When the count hits zero the value storage is zeroed (so pooled blocks do
// not pin aggregates or strings) and the block is returned for reuse.
// Releasing past zero panics: a use-after-release bug should fail loudly in
// tests rather than silently corrupt a recycled event.
type eventBlock struct {
	refs atomic.Int32
	ev   Event
	tup  Tuple
	vals []Value
}

var eventPool = sync.Pool{New: func() any { return new(eventBlock) }}

// AcquireEvent returns a pooled event for the given topic and schema with a
// value slice of ncols zero values and a reference count of one. The caller
// owns the reference and must Release it when done; typically the commit
// path fills Tuple.Vals via Schema.CoerceInto, stamps Seq/TS, publishes, and
// releases.
func AcquireEvent(topic string, schema *Schema, ncols int) *Event {
	b := eventPool.Get().(*eventBlock)
	b.refs.Store(1)
	if cap(b.vals) < ncols {
		b.vals = make([]Value, ncols)
	}
	b.vals = b.vals[:ncols]
	b.tup = Tuple{Vals: b.vals, block: b}
	b.ev = Event{Topic: topic, Schema: schema, Tuple: &b.tup, block: b}
	return &b.ev
}

func (b *eventBlock) retain() { b.refs.Add(1) }

func (b *eventBlock) release() {
	switch n := b.refs.Add(-1); {
	case n == 0:
		for i := range b.vals {
			b.vals[i] = Value{}
		}
		b.tup = Tuple{}
		b.ev = Event{}
		eventPool.Put(b)
	case n < 0:
		panic("types: pooled event released after its reference count hit zero")
	}
}

// Retain takes an additional reference on a pooled event. No-op for events
// that did not come from the pool.
func (e *Event) Retain() {
	if e != nil && e.block != nil {
		e.block.retain()
	}
}

// Release drops one reference on a pooled event, recycling the block when
// the count reaches zero. No-op for events that did not come from the pool.
func (e *Event) Release() {
	if e != nil && e.block != nil {
		e.block.release()
	}
}

// Pooled reports whether the event's storage is pool-managed (and therefore
// only valid while a reference is held).
func (e *Event) Pooled() bool { return e != nil && e.block != nil }

// Refs returns the current reference count (0 for unpooled events). It is an
// observability hook for lifecycle tests; production code should never branch
// on it.
func (e *Event) Refs() int32 {
	if e == nil || e.block == nil {
		return 0
	}
	return e.block.refs.Load()
}

// Retain takes an additional reference on the tuple's pooled block. No-op
// for tuples that did not come from the pool.
func (t *Tuple) Retain() {
	if t != nil && t.block != nil {
		t.block.retain()
	}
}

// Release drops one reference on the tuple's pooled block. No-op for tuples
// that did not come from the pool.
func (t *Tuple) Release() {
	if t != nil && t.block != nil {
		t.block.release()
	}
}

// Pooled reports whether the tuple's storage is pool-managed.
func (t *Tuple) Pooled() bool { return t != nil && t.block != nil }

// Clone returns an unpooled copy of the event with its own tuple and value
// storage. Subscribers that need an event past their callback (the only
// retention the delivery contract allows without Retain) copy it out.
func (e *Event) Clone() *Event {
	return &Event{Topic: e.Topic, Schema: e.Schema, Tuple: e.Tuple.Clone()}
}
