package types

import (
	"fmt"
	"strings"
)

// ColType is the declared SQL type of a table column.
type ColType uint8

// Column types accepted by create table statements.
const (
	ColInt ColType = iota + 1
	ColReal
	ColVarchar
	ColBool
	ColTstamp
)

func (t ColType) String() string {
	switch t {
	case ColInt:
		return "integer"
	case ColReal:
		return "real"
	case ColVarchar:
		return "varchar"
	case ColBool:
		return "boolean"
	case ColTstamp:
		return "tstamp"
	}
	return "coltype?"
}

// Kind returns the value kind stored in columns of this type.
func (t ColType) Kind() Kind {
	switch t {
	case ColInt:
		return KindInt
	case ColReal:
		return KindReal
	case ColVarchar:
		return KindString
	case ColBool:
		return KindBool
	case ColTstamp:
		return KindTstamp
	}
	return KindNil
}

// Column describes one attribute of a table schema.
type Column struct {
	Name string
	Type ColType
	// Width is the declared varchar(n) width; 0 means unbounded. It is
	// informational: values are not truncated.
	Width int
}

// Schema describes a table (and therefore a topic). Key is the index of the
// primary-key column for persistent tables, or -1 for ephemeral stream
// tables, whose implicit primary key is the time of insertion.
type Schema struct {
	Name       string
	Cols       []Column
	Key        int
	Persistent bool

	byName map[string]int
}

// NewSchema builds a schema and validates column-name uniqueness.
func NewSchema(name string, persistent bool, key int, cols ...Column) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("schema needs a table name")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("table %s needs at least one column", name)
	}
	if persistent && (key < 0 || key >= len(cols)) {
		return nil, fmt.Errorf("persistent table %s needs a primary key column", name)
	}
	if !persistent {
		key = -1
	}
	s := &Schema{Name: name, Cols: cols, Key: key, Persistent: persistent,
		byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("table %s: column %d has no name", name, i)
		}
		lower := strings.ToLower(c.Name)
		if _, dup := s.byName[lower]; dup {
			return nil, fmt.Errorf("table %s: duplicate column %q", name, c.Name)
		}
		s.byName[lower] = i
	}
	return s, nil
}

// ColIndex returns the index of the named column (case-insensitive), or -1.
func (s *Schema) ColIndex(name string) int {
	if i, ok := s.byName[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// NumCols returns the number of columns.
func (s *Schema) NumCols() int { return len(s.Cols) }

// Coerce validates vals against the schema, applying the numeric widenings
// users expect of an SQL layer (int literal into real column, int into
// tstamp column). It returns a new slice only when a conversion is needed.
func (s *Schema) Coerce(vals []Value) ([]Value, error) {
	if len(vals) != len(s.Cols) {
		return nil, fmt.Errorf("table %s expects %d values, got %d",
			s.Name, len(s.Cols), len(vals))
	}
	out := vals
	for i, v := range vals {
		want := s.Cols[i].Type.Kind()
		if v.Kind() == want {
			continue
		}
		conv, err := convertTo(v, want)
		if err != nil {
			return nil, fmt.Errorf("table %s column %s: %w", s.Name, s.Cols[i].Name, err)
		}
		if &out[0] == &vals[0] {
			out = append([]Value(nil), vals...)
		}
		out[i] = conv
	}
	return out, nil
}

// CoerceInto is Coerce writing into caller-provided storage: dst must have
// exactly len(s.Cols) elements and is overwritten in place, so the pooled
// commit path can coerce into recycled value slices without allocating.
func (s *Schema) CoerceInto(dst, vals []Value) error {
	if len(vals) != len(s.Cols) {
		return fmt.Errorf("table %s expects %d values, got %d",
			s.Name, len(s.Cols), len(vals))
	}
	for i, v := range vals {
		want := s.Cols[i].Type.Kind()
		if v.Kind() != want {
			conv, err := convertTo(v, want)
			if err != nil {
				return fmt.Errorf("table %s column %s: %w", s.Name, s.Cols[i].Name, err)
			}
			v = conv
		}
		dst[i] = v
	}
	return nil
}

func convertTo(v Value, want Kind) (Value, error) {
	switch want {
	case KindInt:
		if n, ok := v.NumAsInt(); ok {
			return Int(n), nil
		}
	case KindReal:
		if f, ok := v.NumAsReal(); ok {
			return Real(f), nil
		}
	case KindTstamp:
		if n, ok := v.NumAsInt(); ok {
			return Stamp(Timestamp(n)), nil
		}
	case KindString:
		if s, ok := v.AsStr(); ok {
			return Str(s), nil
		}
		// Sequences render to their textual form when stored in varchar
		// columns (automata may publish composite attributes).
		if v.Kind() == KindSequence {
			return Str(v.String()), nil
		}
	case KindBool:
		if b, ok := v.AsBool(); ok {
			return Bool(b), nil
		}
	}
	return Nil, fmt.Errorf("cannot store %s as %s", v.Kind(), want)
}

// String renders the schema as a create-table-ish signature.
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('(')
	for i, c := range s.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Type.String())
		if s.Persistent && i == s.Key {
			b.WriteString(" primary key")
		}
	}
	b.WriteByte(')')
	return b.String()
}

// Tuple is one row of a table / one event on a topic. Seq is the global
// insertion sequence number assigned by the cache commit path; TS is the
// time of insertion (the implicit primary key of ephemeral tables).
type Tuple struct {
	Seq  uint64
	TS   Timestamp
	Vals []Value

	// block is non-nil when the tuple's storage is pool-managed (see
	// event_pool.go); holders then bracket retention with Retain/Release.
	block *eventBlock
}

// Clone returns a copy with its own value slice.
func (t *Tuple) Clone() *Tuple {
	return &Tuple{Seq: t.Seq, TS: t.TS, Vals: append([]Value(nil), t.Vals...)}
}

// Event is a tuple as delivered to a subscriber: the tuple plus its topic
// and schema, so attribute access by name is possible. It is the value bound
// to a GAPL subscription variable.
type Event struct {
	Topic  string
	Schema *Schema
	Tuple  *Tuple

	// block is non-nil when the event's storage is pool-managed (see
	// event_pool.go); holders then bracket retention with Retain/Release.
	block *eventBlock
}

// Field returns the named attribute of the event. The pseudo-attribute
// "tstamp" resolves to the insertion timestamp when the schema does not
// define a column of that name (Fig. 8 of the paper reads f.tstamp).
func (e *Event) Field(name string) (Value, error) {
	if i := e.Schema.ColIndex(name); i >= 0 {
		return e.Tuple.Vals[i], nil
	}
	if strings.EqualFold(name, "tstamp") {
		return Stamp(e.Tuple.TS), nil
	}
	return Nil, fmt.Errorf("topic %s has no attribute %q", e.Topic, name)
}

// FieldAt returns the i-th attribute; i == -1 resolves the insertion
// timestamp (the compiled form of the pseudo-attribute).
func (e *Event) FieldAt(i int) Value {
	if i == -1 {
		return Stamp(e.Tuple.TS)
	}
	if i < 0 || i >= len(e.Tuple.Vals) {
		return Nil
	}
	return e.Tuple.Vals[i]
}

// AsSequence exposes the event's attributes as a sequence (used when an
// event value is passed to send(), publish() or Sequence()).
func (e *Event) AsSequence() *Sequence {
	return NewSequence(e.Tuple.Vals...)
}

// String renders the event as Topic(v1, v2, ...).
func (e *Event) String() string {
	var b strings.Builder
	b.WriteString(e.Topic)
	b.WriteString(e.AsSequence().String())
	return b.String()
}

// Assoc is the handle bound to a GAPL `associate` variable: a named
// persistent table reachable through the host interface. The automaton
// runtime interprets lookup/insert/hasEntry/remove/mapSize against it.
type Assoc struct {
	Table string
}
