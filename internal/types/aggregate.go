package types

import (
	"fmt"
	"strings"
	"time"
)

// Sequence is an ordered set of heterogeneous value instances (Table 2).
// It is the unit in which rows travel: lookups on associations return
// sequences, publish() and send() accept them, and events expose their
// attributes as one.
type Sequence struct {
	items []Value
}

// NewSequence builds a sequence from the given values.
func NewSequence(vals ...Value) *Sequence {
	return &Sequence{items: append([]Value(nil), vals...)}
}

// Len returns the number of elements.
func (s *Sequence) Len() int { return len(s.items) }

// At returns the i-th element (0-based); Nil if out of range.
func (s *Sequence) At(i int) Value {
	if i < 0 || i >= len(s.items) {
		return Nil
	}
	return s.items[i]
}

// Set replaces the i-th element; it reports whether i was in range.
func (s *Sequence) Set(i int, v Value) bool {
	if i < 0 || i >= len(s.items) {
		return false
	}
	s.items[i] = v
	return true
}

// Append adds a value to the end of the sequence.
func (s *Sequence) Append(v Value) { s.items = append(s.items, v) }

// Values returns the backing slice (callers must not mutate it).
func (s *Sequence) Values() []Value { return s.items }

// Clone returns a shallow copy of the sequence.
func (s *Sequence) Clone() *Sequence {
	return &Sequence{items: append([]Value(nil), s.items...)}
}

// String renders the sequence as (v1, v2, ...).
func (s *Sequence) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range s.items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Map maps identifiers to instances of a bound kind (Table 2). Iteration
// order is insertion order, which keeps automaton behaviour deterministic
// (the paper's frequent algorithm iterates while mutating).
type Map struct {
	elem Kind // bound element kind; KindNil means unconstrained
	idx  map[string]int
	keys []string
	vals []Value
	dead int
}

// NewMap creates a map bound to the given element kind. Pass KindNil for an
// unconstrained map.
func NewMap(elem Kind) *Map {
	return &Map{elem: elem, idx: make(map[string]int)}
}

// ElemKind returns the bound element kind.
func (m *Map) ElemKind() Kind { return m.elem }

// checkElem validates a value against the bound kind. Sequences may be
// stored in any map (they are the row representation); numeric widening is
// not applied.
func (m *Map) checkElem(v Value) error {
	if m.elem == KindNil || v.Kind() == m.elem {
		return nil
	}
	return fmt.Errorf("map bound to %s cannot hold %s", m.elem, v.Kind())
}

// Insert adds or replaces the entry for key.
func (m *Map) Insert(key string, v Value) error {
	if err := m.checkElem(v); err != nil {
		return err
	}
	if i, ok := m.idx[key]; ok {
		m.vals[i] = v
		return nil
	}
	m.idx[key] = len(m.keys)
	m.keys = append(m.keys, key)
	m.vals = append(m.vals, v)
	return nil
}

// Lookup returns the value for key.
func (m *Map) Lookup(key string) (Value, bool) {
	i, ok := m.idx[key]
	if !ok {
		return Nil, false
	}
	return m.vals[i], true
}

// Has reports whether key is present.
func (m *Map) Has(key string) bool {
	_, ok := m.idx[key]
	return ok
}

// Remove deletes the entry for key; it reports whether the key was present.
func (m *Map) Remove(key string) bool {
	i, ok := m.idx[key]
	if !ok {
		return false
	}
	delete(m.idx, key)
	m.keys[i] = ""
	m.vals[i] = Nil
	m.dead++
	if m.dead > len(m.keys)/2 && m.dead > 16 {
		m.compact()
	}
	return true
}

func (m *Map) compact() {
	keys := m.keys[:0]
	vals := m.vals[:0]
	for i, k := range m.keys {
		if k == "" {
			continue
		}
		keys = append(keys, k)
		vals = append(vals, m.vals[i])
	}
	m.keys = keys
	m.vals = vals
	m.idx = make(map[string]int, len(keys))
	for i, k := range keys {
		m.idx[k] = i
	}
	m.dead = 0
}

// Size returns the number of live entries.
func (m *Map) Size() int { return len(m.idx) }

// Keys returns the live keys in insertion order.
func (m *Map) Keys() []string {
	out := make([]string, 0, len(m.idx))
	for _, k := range m.keys {
		if k != "" {
			out = append(out, k)
		}
	}
	return out
}

// Clear removes all entries.
func (m *Map) Clear() {
	m.idx = make(map[string]int)
	m.keys = m.keys[:0]
	m.vals = m.vals[:0]
	m.dead = 0
}

// String renders the map as {k: v, ...} in insertion order.
func (m *Map) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for i, k := range m.keys {
		if k == "" {
			continue
		}
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(k)
		b.WriteString(": ")
		b.WriteString(m.vals[i].String())
	}
	b.WriteByte('}')
	return b.String()
}

// WindowMode selects the constraint applied to a window.
type WindowMode uint8

// Window constraint modes: a fixed number of rows or a fixed time interval
// (the paper's ROWS and SECS constructor arguments).
const (
	WindowRows WindowMode = iota + 1
	WindowTime
)

func (m WindowMode) String() string {
	switch m {
	case WindowRows:
		return "ROWS"
	case WindowTime:
		return "SECS"
	}
	return "window-mode?"
}

// windowEntry pairs a stored value with its append time (used for time-based
// eviction).
type windowEntry struct {
	ts Timestamp
	v  Value
}

// Window is a collection of bound-type instances constrained either to a
// fixed number of items or a fixed time interval (Table 2).
type Window struct {
	elem    Kind
	mode    WindowMode
	rows    int
	span    time.Duration
	entries []windowEntry
}

// NewRowWindow creates a window holding at most n items of kind elem.
func NewRowWindow(elem Kind, n int) (*Window, error) {
	if n <= 0 {
		return nil, fmt.Errorf("window row constraint must be positive, got %d", n)
	}
	return &Window{elem: elem, mode: WindowRows, rows: n}, nil
}

// NewTimeWindow creates a window holding items appended within the last span.
func NewTimeWindow(elem Kind, span time.Duration) (*Window, error) {
	if span <= 0 {
		return nil, fmt.Errorf("window time constraint must be positive, got %v", span)
	}
	return &Window{elem: elem, mode: WindowTime, span: span}, nil
}

// ElemKind returns the bound element kind.
func (w *Window) ElemKind() Kind { return w.elem }

// Mode returns the constraint mode.
func (w *Window) Mode() WindowMode { return w.mode }

// Append adds a value stamped at now, evicting items that violate the
// constraint.
func (w *Window) Append(v Value, now Timestamp) error {
	if w.elem != KindNil && v.Kind() != w.elem {
		return fmt.Errorf("window bound to %s cannot hold %s", w.elem, v.Kind())
	}
	w.entries = append(w.entries, windowEntry{ts: now, v: v})
	w.evict(now)
	return nil
}

// AppendBatch adds a run of values in one operation, evicting once at the
// end instead of once per value — the primitive behind the VM's batch
// activation (appendRun). tss, when non-nil, supplies a per-value append
// timestamp (the commit timestamp of the event the value came from) and
// must be the same length as vals and non-decreasing; a nil tss stamps
// every value with now. Kinds are validated up front: a batch with any
// ill-kinded value is rejected whole, before anything is appended.
func (w *Window) AppendBatch(vals []Value, tss []Timestamp, now Timestamp) error {
	if tss != nil && len(tss) != len(vals) {
		return fmt.Errorf("window batch append: %d values but %d timestamps", len(vals), len(tss))
	}
	if w.elem != KindNil {
		for _, v := range vals {
			if v.Kind() != w.elem {
				return fmt.Errorf("window bound to %s cannot hold %s", w.elem, v.Kind())
			}
		}
	}
	// Arena-style storage reuse: evict before appending, so the entries
	// slice never grows past the window bound just to be trimmed again.
	// For a row window only the last `rows` values of the batch can survive,
	// and any in-place entries they displace are dropped up front; for a
	// time window already-expired entries are compacted away first. After
	// warm-up the backing array is reused verbatim — batch activation
	// appends with zero allocation.
	keep := vals
	keepTss := tss
	switch w.mode {
	case WindowRows:
		if len(keep) >= w.rows {
			w.entries = w.entries[:0]
			keep = keep[len(keep)-w.rows:]
			if keepTss != nil {
				keepTss = keepTss[len(keepTss)-w.rows:]
			}
		} else if n := len(w.entries) + len(keep) - w.rows; n > 0 {
			w.entries = append(w.entries[:0], w.entries[n:]...)
		}
	case WindowTime:
		w.evict(now)
	}
	for i, v := range keep {
		ts := now
		if keepTss != nil {
			ts = keepTss[i]
		}
		w.entries = append(w.entries, windowEntry{ts: ts, v: v})
	}
	w.evict(now)
	return nil
}

func (w *Window) evict(now Timestamp) {
	switch w.mode {
	case WindowRows:
		if n := len(w.entries) - w.rows; n > 0 {
			w.entries = append(w.entries[:0], w.entries[n:]...)
		}
	case WindowTime:
		cut := now.Add(-w.span)
		i := 0
		for i < len(w.entries) && w.entries[i].ts < cut {
			i++
		}
		if i > 0 {
			w.entries = append(w.entries[:0], w.entries[i:]...)
		}
	}
}

// ExpireAt drops entries older than now-span for time windows; it is used by
// callers that want eviction without appending.
func (w *Window) ExpireAt(now Timestamp) {
	if w.mode == WindowTime {
		w.evict(now)
	}
}

// Len returns the number of items currently held.
func (w *Window) Len() int { return len(w.entries) }

// At returns the i-th oldest value; Nil if out of range.
func (w *Window) At(i int) Value {
	if i < 0 || i >= len(w.entries) {
		return Nil
	}
	return w.entries[i].v
}

// TsAt returns the append timestamp of the i-th oldest item.
func (w *Window) TsAt(i int) Timestamp {
	if i < 0 || i >= len(w.entries) {
		return 0
	}
	return w.entries[i].ts
}

// Values returns the stored values oldest-first.
func (w *Window) Values() []Value {
	out := make([]Value, len(w.entries))
	for i, e := range w.entries {
		out[i] = e.v
	}
	return out
}

// Clear removes all items.
func (w *Window) Clear() { w.entries = w.entries[:0] }

// String renders the window as [v1, v2, ...] oldest-first.
func (w *Window) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, e := range w.entries {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(e.v.String())
	}
	b.WriteByte(']')
	return b.String()
}

// Iterator walks the keys of a map or the values of a window (Table 2).
// It snapshots its source at construction, so the source may be mutated
// while iterating — the idiom the paper's frequent algorithm relies on.
type Iterator struct {
	vals []Value
	pos  int
}

// NewMapIterator returns an iterator over the map's keys (as identifiers) in
// insertion order.
func NewMapIterator(m *Map) *Iterator {
	keys := m.Keys()
	vals := make([]Value, len(keys))
	for i, k := range keys {
		vals[i] = Ident(k)
	}
	return &Iterator{vals: vals}
}

// NewWindowIterator returns an iterator over the window's values,
// oldest-first.
func NewWindowIterator(w *Window) *Iterator {
	return &Iterator{vals: w.Values()}
}

// NewSequenceIterator returns an iterator over the sequence's elements.
func NewSequenceIterator(s *Sequence) *Iterator {
	return &Iterator{vals: append([]Value(nil), s.Values()...)}
}

// HasNext reports whether another element is available.
func (it *Iterator) HasNext() bool { return it.pos < len(it.vals) }

// Next returns the next element, or Nil when exhausted.
func (it *Iterator) Next() Value {
	if it.pos >= len(it.vals) {
		return Nil
	}
	v := it.vals[it.pos]
	it.pos++
	return v
}
