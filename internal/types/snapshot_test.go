package types

import (
	"bytes"
	"testing"
)

func TestSchemaCodecRoundTrip(t *testing.T) {
	cases := []struct {
		name       string
		persistent bool
		key        int
		cols       []Column
	}{
		{"stream", false, -1, []Column{
			{Name: "v", Type: ColInt},
		}},
		{"persistent", true, 0, []Column{
			{Name: "k", Type: ColVarchar, Width: 16},
			{Name: "n", Type: ColInt},
			{Name: "w", Type: ColReal},
			{Name: "ok", Type: ColBool},
			{Name: "at", Type: ColTstamp},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewSchema("T", tc.persistent, tc.key, tc.cols...)
			if err != nil {
				t.Fatal(err)
			}
			buf := AppendSchema(nil, s)
			got, n, err := DecodeSchema(buf)
			if err != nil {
				t.Fatal(err)
			}
			if n != len(buf) {
				t.Fatalf("DecodeSchema consumed %d of %d bytes", n, len(buf))
			}
			if got.Name != s.Name || got.Persistent != s.Persistent || got.Key != s.Key {
				t.Fatalf("roundtrip header: %+v vs %+v", got, s)
			}
			if len(got.Cols) != len(s.Cols) {
				t.Fatalf("roundtrip cols: %d vs %d", len(got.Cols), len(s.Cols))
			}
			for i := range s.Cols {
				if got.Cols[i] != s.Cols[i] {
					t.Fatalf("col %d: %+v vs %+v", i, got.Cols[i], s.Cols[i])
				}
			}
			// The encoding is deterministic — snapshots depend on it.
			if !bytes.Equal(AppendSchema(nil, s), buf) {
				t.Fatal("AppendSchema is not deterministic")
			}
		})
	}
}

func TestDecodeSchemaRejectsDamage(t *testing.T) {
	s, err := NewSchema("T", true, 0,
		Column{Name: "k", Type: ColVarchar},
		Column{Name: "n", Type: ColInt})
	if err != nil {
		t.Fatal(err)
	}
	buf := AppendSchema(nil, s)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeSchema(buf[:cut]); err == nil {
			t.Fatalf("DecodeSchema accepted a %d-byte truncation of %d", cut, len(buf))
		}
	}
}
