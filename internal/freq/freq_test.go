package freq

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(1); err == nil {
		t.Error("k=1 rejected")
	}
	s, err := New(2)
	if err != nil || s.K() != 2 {
		t.Fatalf("New(2) = %v, %v", s, err)
	}
}

func TestBasicCounting(t *testing.T) {
	s, _ := New(10)
	for i := 0; i < 5; i++ {
		s.Observe("a")
	}
	s.Observe("b")
	if s.N() != 6 {
		t.Errorf("N = %d", s.N())
	}
	if s.Count("a") != 5 || s.Count("b") != 1 || s.Count("zz") != 0 {
		t.Errorf("counts: a=%d b=%d", s.Count("a"), s.Count("b"))
	}
	if !s.Has("a") || s.Has("zz") {
		t.Error("Has wrong")
	}
	items := s.Items()
	if len(items) != 2 || items[0].Key != "a" {
		t.Errorf("Items = %v", items)
	}
	s.Reset()
	if s.N() != 0 || s.Len() != 0 {
		t.Error("Reset failed")
	}
}

func TestCounterBound(t *testing.T) {
	s, _ := New(5)
	for i := 0; i < 1000; i++ {
		s.Observe(fmt.Sprintf("item%d", i%50))
	}
	if s.Len() >= 5 {
		t.Errorf("summary holds %d counters, must stay < k=5", s.Len())
	}
}

// The Misra-Gries guarantee: every item with true frequency > n/k is in the
// summary, and sketch counts never exceed true counts.
func TestMisraGriesGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s, _ := New(8)
	truth := map[string]int64{}
	// Skewed stream: item0 is heavy.
	for i := 0; i < 20_000; i++ {
		var item string
		if rng.Intn(3) == 0 {
			item = "heavy"
		} else {
			item = fmt.Sprintf("light%d", rng.Intn(500))
		}
		s.Observe(item)
		truth[item]++
	}
	threshold := s.N() / int64(s.K())
	for item, count := range truth {
		if count > threshold && !s.Has(item) {
			t.Errorf("guarantee violated: %s has %d > n/k=%d but is absent",
				item, count, threshold)
		}
	}
	for item := range truth {
		if s.Count(item) > truth[item] {
			t.Errorf("sketch overcounts %s: %d > %d", item, s.Count(item), truth[item])
		}
	}
}

// Property: guarantee holds for arbitrary small streams.
func TestGuaranteeProperty(t *testing.T) {
	f := func(stream []uint8, kRaw uint8) bool {
		k := int(kRaw%14) + 2
		s, err := New(k)
		if err != nil {
			return false
		}
		truth := map[string]int64{}
		for _, b := range stream {
			item := fmt.Sprintf("i%d", b%16)
			s.Observe(item)
			truth[item]++
		}
		if s.Len() >= k {
			return false
		}
		threshold := s.N() / int64(k)
		for item, count := range truth {
			if count > threshold && !s.Has(item) {
				return false
			}
			if s.Count(item) > count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestItemsDeterministicOrder(t *testing.T) {
	s, _ := New(10)
	for _, item := range []string{"b", "a", "b", "a", "c"} {
		s.Observe(item)
	}
	items := s.Items()
	// a and b tie at 2 -> ordered by key; c has 1.
	if items[0].Key != "a" || items[1].Key != "b" || items[2].Key != "c" {
		t.Errorf("order = %v", items)
	}
}
