// Package freq implements the Misra-Gries "frequent" algorithm for finding
// frequent items in data streams (§6.4 of the paper, after Cormode &
// Hadjieleftheriou). A Summary with parameter k stores at most k-1
// counters; after observing n items, every item whose true frequency
// exceeds n/k is guaranteed to be present.
package freq

import (
	"fmt"
	"sort"
)

// Summary is a Misra-Gries sketch.
type Summary struct {
	k      int
	counts map[string]int64
	n      int64
}

// New creates a summary with parameter k (at most k-1 counters); k must be
// at least 2.
func New(k int) (*Summary, error) {
	if k < 2 {
		return nil, fmt.Errorf("freq: k must be >= 2, got %d", k)
	}
	return &Summary{k: k, counts: make(map[string]int64, k)}, nil
}

// K returns the summary parameter.
func (s *Summary) K() int { return s.k }

// N returns the number of observed items.
func (s *Summary) N() int64 { return s.n }

// Len returns the number of counters currently held (always < k).
func (s *Summary) Len() int { return len(s.counts) }

// Observe feeds one item.
func (s *Summary) Observe(item string) {
	s.n++
	if _, ok := s.counts[item]; ok {
		s.counts[item]++
		return
	}
	if len(s.counts) < s.k-1 {
		s.counts[item] = 1
		return
	}
	for key, c := range s.counts {
		if c <= 1 {
			delete(s.counts, key)
		} else {
			s.counts[key] = c - 1
		}
	}
}

// Count returns the sketch counter for item (a lower bound on its true
// frequency; 0 if absent).
func (s *Summary) Count(item string) int64 { return s.counts[item] }

// Has reports whether item currently holds a counter.
func (s *Summary) Has(item string) bool {
	_, ok := s.counts[item]
	return ok
}

// Item is one (item, counter) pair.
type Item struct {
	Key   string
	Count int64
}

// Items returns the counters sorted by descending count, ties broken by
// key, so output is deterministic.
func (s *Summary) Items() []Item {
	out := make([]Item, 0, len(s.counts))
	for k, c := range s.counts {
		out = append(out, Item{Key: k, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Reset clears the summary.
func (s *Summary) Reset() {
	s.counts = make(map[string]int64, s.k)
	s.n = 0
}
