// Package automaton implements the execution model of §5: each registered
// automaton is compiled to bytecode, bound to its own dispatcher goroutine
// (the Go analogue of the paper's PThread-per-automaton), and driven by a
// FIFO inbox fed by the cache's publish path. The inbox is unbounded by
// default but may be bounded with an overflow policy — registry-wide via
// Config.InboxCapacity/InboxPolicy, per automaton via RegisterWith and
// Options: Block applies backpressure to the publishing topic, DropOldest
// sheds the oldest queued events, and Fail detaches the automaton on
// overflow, reporting through OnRuntimeError. The runtime guarantees
// tuples are delivered to an automaton in strict time-of-insertion order.
//
// Activation is batch-aware: the dispatcher drains the inbox in runs, and
// a behaviour the compiler classified batchable (run-aware and blind to
// individual events — see gapl.Compiled.BatchableBehavior and docs/GAPL.md)
// executes once per run via vm.DeliverBatch, amortising interpreter
// dispatch over the run. Every other behaviour executes once per event, in
// commit order, with output bit-identical to tuple-at-a-time delivery.
package automaton

import (
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"unicache/internal/cep"
	"unicache/internal/gapl"
	"unicache/internal/pubsub"
	"unicache/internal/table"
	"unicache/internal/types"
	"unicache/internal/uerr"
	"unicache/internal/vm"
)

// Sink receives the values of a send() call, i.e. the derived events an
// automaton reports to its registering application.
type Sink func(vals []types.Value) error

// DiscardSink drops send() output; use it for automata that only print or
// publish.
func DiscardSink([]types.Value) error { return nil }

// Services is the cache surface the runtime needs. The cache implements it.
type Services interface {
	// Now returns the cache clock.
	Now() types.Timestamp
	// CommitInsert inserts a tuple into a table, publishing it on the
	// table's topic (the commit path assigns the global sequence number).
	CommitInsert(tableName string, vals []types.Value) error
	// PersistentTable resolves an association target.
	PersistentTable(name string) (*table.Persistent, error)
	// Schemas returns a snapshot of all table schemas by name.
	Schemas() map[string]*types.Schema
	// Subscribe attaches a subscriber to a topic under the automaton id.
	Subscribe(id int64, topic string, sub pubsub.Subscriber) error
	// Unsubscribe detaches the automaton from all topics.
	Unsubscribe(id int64)
}

// Config tunes a Registry.
type Config struct {
	// PrintWriter receives print() output (default os.Stdout).
	PrintWriter io.Writer
	// OnRuntimeError observes behaviour-clause failures; the automaton
	// keeps running (default: write to os.Stderr).
	OnRuntimeError func(id int64, err error)
	// MaxSteps bounds instructions per clause execution (0 = unlimited).
	MaxSteps int
	// InboxCapacity bounds each automaton's inbox (0 = unbounded, the
	// default: an automaton may publish into a topic it subscribes to, and
	// a bounded Block inbox would deadlock that cycle once full).
	InboxCapacity int
	// InboxPolicy is the overflow policy for bounded inboxes. Under Fail,
	// an overflowing automaton is unregistered and the failure reported
	// through OnRuntimeError.
	InboxPolicy pubsub.Policy
	// CompileMode selects the VM execution strategy for every automaton of
	// this registry: gapl.ModeAuto (default) threads clauses through
	// compiled closures, gapl.ModeVM forces the switch interpreter.
	CompileMode gapl.CompileMode
	// OnRegister, when set, observes every successful registration (the
	// durable cache logs it to the write-ahead log). It runs after the
	// automaton is installed but before its subscriptions attach, so a
	// later OnUnregister for the same id always follows it. Recovery
	// re-registrations do not fire it.
	OnRegister func(a *Automaton)
	// OnUnregister, when set, observes every unregistration — including
	// Fail-policy self-unregisters — except those of Close: shutdown
	// stops automata without striking them from the durable record.
	OnUnregister func(id int64)
}

// Options tunes one automaton's registration, overriding the registry-wide
// Config defaults (the PR 3 bound was registry-wide; RegisterWith closes
// that gap). The zero value means "use the registry defaults".
type Options struct {
	// InboxCapacity bounds this automaton's inbox: 0 uses the registry's
	// Config.InboxCapacity, a positive value bounds the inbox at that
	// depth, and a negative value forces it unbounded regardless of the
	// registry default.
	InboxCapacity int
	// InboxPolicy is the overflow policy applied when InboxCapacity > 0
	// (ignored otherwise; the registry default bound keeps the registry
	// default policy). Block applies backpressure to the publishing topic,
	// DropOldest sheds the oldest queued events, Fail unregisters the
	// automaton on overflow.
	InboxPolicy pubsub.Policy
}

// Registry manages the set of live automata for one cache.
type Registry struct {
	svc    Services
	cfg    Config
	printM sync.Mutex

	mu      sync.Mutex
	autos   map[int64]*Automaton
	nextID  int64
	closing bool
}

// NewRegistry builds an empty registry over the given services.
func NewRegistry(svc Services, cfg Config) *Registry {
	if cfg.PrintWriter == nil {
		cfg.PrintWriter = os.Stdout
	}
	if cfg.OnRuntimeError == nil {
		cfg.OnRuntimeError = func(id int64, err error) {
			fmt.Fprintf(os.Stderr, "automaton %d: %v\n", id, err)
		}
	}
	return &Registry{svc: svc, cfg: cfg, autos: make(map[int64]*Automaton)}
}

// Automaton is one registered, running automaton.
type Automaton struct {
	id  int64
	reg *Registry
	// svc is the cache surface this automaton runs against: the registry
	// default, or a tenant-scoped view handed to RegisterIn that prefixes
	// every table/topic name with the tenant namespace.
	svc    Services
	ns     string
	prog   *gapl.Compiled
	source string
	opts   Options
	inbox  *pubsub.Inbox
	disp   *pubsub.Dispatcher
	// vmMu serialises behaviour execution against SnapshotVars, so a
	// durable snapshot never observes a half-executed activation.
	vmMu sync.Mutex
	// Exactly one of vm and pm is set: behaviour automata run the
	// bytecode VM, pattern automata the CEP machine.
	vm    *vm.VM
	pm    *cep.Machine
	sink  Sink
	nProc atomic.Uint64
	nErr  atomic.Uint64
}

// ID returns the management identifier handed to the registering
// application.
func (a *Automaton) ID() int64 { return a.id }

// Namespace returns the tenant namespace the automaton was registered
// under ("" for the default, unscoped namespace).
func (a *Automaton) Namespace() string { return a.ns }

// Processed returns the number of events whose behaviour execution has
// completed.
func (a *Automaton) Processed() uint64 { return a.nProc.Load() }

// RuntimeErrors returns the number of behaviour executions that failed.
func (a *Automaton) RuntimeErrors() uint64 { return a.nErr.Load() }

// Idle reports whether the automaton has an empty inbox and is not
// executing its behaviour clause.
func (a *Automaton) Idle() bool { return a.inbox.Len() == 0 && !a.disp.Busy() }

// Dropped returns the number of events this automaton's inbox shed
// (non-zero only for bounded DropOldest/Fail inboxes).
func (a *Automaton) Dropped() uint64 { return a.inbox.Dropped() }

// Depth returns the number of events queued in the automaton's inbox,
// not yet handed to the behaviour clause.
func (a *Automaton) Depth() int { return a.inbox.Len() }

// Batchable reports whether the automaton is activated once per drained
// run rather than per event: behaviour clauses the compiler classified
// batchable, and every pattern automaton (a run feeds the NFA in one
// activation).
func (a *Automaton) Batchable() bool { return a.pm != nil || a.prog.BatchableBehavior }

// Pattern reports whether this is a declarative CEP pattern automaton.
func (a *Automaton) Pattern() bool { return a.pm != nil }

// Matches returns the number of pattern matches emitted (0 for
// behaviour automata).
func (a *Automaton) Matches() uint64 {
	if a.pm == nil {
		return 0
	}
	a.vmMu.Lock()
	defer a.vmMu.Unlock()
	return a.pm.Matches()
}

// Source returns the GAPL source the automaton was registered with.
func (a *Automaton) Source() string { return a.source }

// InboxOptions returns the per-automaton options it was registered with.
func (a *Automaton) InboxOptions() Options { return a.opts }

// SnapshotVars calls fn with every declared variable and its current
// value, serialised against behaviour execution: the values form a
// consistent cut between activations. The durable cache uses it to
// snapshot automaton state. A pattern automaton yields a single
// reserved variable (cep.StateVar) holding the machine's serialised
// matching state — watermark, reorder buffer and partial matches.
func (a *Automaton) SnapshotVars(fn func(name string, v types.Value)) {
	a.vmMu.Lock()
	defer a.vmMu.Unlock()
	if a.pm != nil {
		v, err := a.pm.Snapshot()
		if err != nil {
			a.reg.cfg.OnRuntimeError(a.id, fmt.Errorf("snapshotting pattern state: %w", err))
			return
		}
		fn(cep.StateVar, v)
		return
	}
	a.vm.VisitVars(fn)
}

// StateRestorer reinstates one snapshotted variable; vm.VM implements it
// for behaviour automata and the registry adapts pattern machines to it.
// Unknown names are ignored (the source may have changed since the
// snapshot).
type StateRestorer interface {
	RestoreVar(name string, v types.Value, now types.Timestamp) error
}

// patternRestorer adapts a cep.Machine to StateRestorer: the reserved
// cep.StateVar carries the whole machine state.
type patternRestorer struct{ pm *cep.Machine }

func (p patternRestorer) RestoreVar(name string, v types.Value, _ types.Timestamp) error {
	if name != cep.StateVar {
		return nil
	}
	return p.pm.Restore(v)
}

// Register compiles, binds, initializes and starts an automaton with the
// registry-default inbox bound. Compile and bind problems — and
// initialization-clause failures — are returned to the registering
// application, mirroring the paper's error RPC. On success the returned
// automaton is already subscribed and processing events.
func (r *Registry) Register(source string, sink Sink) (*Automaton, error) {
	return r.RegisterWith(source, sink, Options{})
}

// RegisterWith is Register with per-automaton Options (inbox bound and
// overflow policy).
func (r *Registry) RegisterWith(source string, sink Sink, opts Options) (*Automaton, error) {
	return r.register(0, source, sink, opts, nil, nil, "")
}

// RegisterIn registers an automaton against an alternative Services — a
// tenant-scoped view that prefixes every table/topic with the ns
// namespace. The automaton's whole lifecycle (bind, subscriptions,
// publishes, associations, teardown) runs through svc, so its programs see
// only the namespace's tables; ns is recorded on the automaton for
// filtering and durable re-registration.
func (r *Registry) RegisterIn(svc Services, ns string, source string, sink Sink, opts Options) (*Automaton, error) {
	return r.register(0, source, sink, opts, nil, svc, ns)
}

// RegisterRecovered reinstates an automaton from the durable log under
// its original id: compile, bind and initialise as usual, then restore
// (when non-nil) reinstates snapshotted variable state — behaviour
// variables on the VM, pattern matching state on the CEP machine —
// before any event can arrive. The OnRegister hook does not fire — the
// durable record already carries this automaton.
// A namespaced automaton recovers with the same svc/ns pair it was
// registered with (svc nil means the registry default).
func (r *Registry) RegisterRecovered(id int64, source string, sink Sink, opts Options, svc Services, ns string, restore func(st StateRestorer) error) (*Automaton, error) {
	if id <= 0 {
		return nil, fmt.Errorf("automaton: recovered id must be positive, got %d", id)
	}
	return r.register(id, source, sink, opts, restore, svc, ns)
}

// register is the shared registration path. A zero forcedID allocates the
// next id and fires the registration hooks; a positive one reinstates a
// recovered automaton under its original id, hook-free. A nil svc uses the
// registry default (the unscoped cache).
func (r *Registry) register(forcedID int64, source string, sink Sink, opts Options, restore func(st StateRestorer) error, svc Services, ns string) (*Automaton, error) {
	if sink == nil {
		return nil, fmt.Errorf("automaton: nil sink (use DiscardSink)")
	}
	if svc == nil {
		svc = r.svc
	}
	prog, err := gapl.Compile(source)
	if err != nil {
		return nil, fmt.Errorf("automaton: compile: %w", err)
	}
	if err := prog.Bind(svc.Schemas()); err != nil {
		return nil, fmt.Errorf("automaton: bind: %w", err)
	}
	// Validate associations against persistent tables up front.
	for _, as := range prog.Associations() {
		if _, err := svc.PersistentTable(as.Table); err != nil {
			return nil, fmt.Errorf("automaton: association %s: %w", as.Name, err)
		}
	}

	r.mu.Lock()
	id := forcedID
	if id == 0 {
		r.nextID++
		id = r.nextID
	} else {
		if _, dup := r.autos[id]; dup {
			r.mu.Unlock()
			return nil, fmt.Errorf("automaton: recovered id %d already registered", id)
		}
		if id > r.nextID {
			r.nextID = id
		}
	}
	r.mu.Unlock()

	capacity, policy := r.cfg.InboxCapacity, r.cfg.InboxPolicy
	switch {
	case opts.InboxCapacity > 0:
		capacity, policy = opts.InboxCapacity, opts.InboxPolicy
	case opts.InboxCapacity < 0:
		capacity = 0 // explicitly unbounded
	}
	a := &Automaton{
		id:     id,
		reg:    r,
		svc:    svc,
		ns:     ns,
		prog:   prog,
		source: source,
		opts:   opts,
		inbox: pubsub.NewInboxWith(pubsub.QueueOpts{
			Capacity: capacity,
			Policy:   policy,
		}),
		sink: sink,
	}
	if prog.Pattern != nil {
		// Pattern programs bypass the VM entirely: the declarative clause
		// compiles to an NFA run by a cep.Machine on the batch-activation
		// path.
		pat, err := cep.CompilePattern(prog, svc.Schemas())
		if err != nil {
			return nil, fmt.Errorf("automaton: pattern: %w", err)
		}
		if pat.Into != "" {
			sch, ok := svc.Schemas()[pat.Into]
			if !ok {
				return nil, fmt.Errorf("automaton: pattern: into topic %q has no schema", pat.Into)
			}
			if sch.NumCols() != len(pat.Emit) {
				return nil, fmt.Errorf("automaton: pattern: emit arity %d does not match into topic %q (%d columns)",
					len(pat.Emit), pat.Into, sch.NumCols())
			}
		}
		pm := cep.NewMachine(pat)
		pm.OnMatch = func(vals []types.Value) error {
			if pat.Into != "" {
				if err := svc.CommitInsert(pat.Into, vals); err != nil {
					return fmt.Errorf("pattern emit into %s: %w", pat.Into, err)
				}
			}
			return a.sink(vals)
		}
		pm.OnError = func(err error) {
			a.nErr.Add(1)
			r.cfg.OnRuntimeError(id, err)
		}
		a.pm = pm
		// Recovery reinstates the snapshotted matching state (watermark,
		// reorder buffer, partial matches) before any event can arrive.
		if restore != nil {
			if err := restore(patternRestorer{pm: pm}); err != nil {
				return nil, fmt.Errorf("automaton: restoring state: %w", err)
			}
		}
	} else {
		machine, err := vm.New(prog, &host{a: a})
		if err != nil {
			return nil, fmt.Errorf("automaton: %w", err)
		}
		machine.MaxSteps = r.cfg.MaxSteps
		machine.Mode = r.cfg.CompileMode
		a.vm = machine

		// Initialization runs before any event can arrive (we subscribe
		// after).
		if err := machine.RunInit(); err != nil {
			return nil, fmt.Errorf("automaton: initialization: %w", err)
		}
		// Recovery reinstates snapshotted variable state on top of the init
		// clause's — windows keep their init-built eviction policy and merge
		// the saved contents back in.
		if restore != nil {
			if err := restore(machine); err != nil {
				return nil, fmt.Errorf("automaton: restoring state: %w", err)
			}
		}
	}

	// The dispatcher is the automaton's goroutine: it drains the inbox in
	// runs, in commit order. A behaviour the compiler classified batchable
	// rides the batch dispatcher — each run reaches the VM as ONE
	// activation, and Stop abandons queued runs whole. Every other
	// behaviour keeps the per-event dispatcher, preserving the pre-batch
	// contract exactly: one activation per event, and Stop/Unregister
	// abandon the remainder of an in-flight run between events. A
	// Fail-policy overflow unregisters the automaton (from the OnFail
	// goroutine — never the dispatcher's own) and surfaces the detach as a
	// runtime error. Dispatcher and registry entry exist BEFORE the first
	// subscription: the inbox cannot overflow until a topic feeds it, and
	// by then OnFail's Unregister must find the automaton.
	dcfg := pubsub.DispatcherConfig{
		OnFail: func() {
			r.cfg.OnRuntimeError(id, fmt.Errorf(
				"automaton: inbox overflowed its %d-event bound (%d dropped); unregistered under the Fail policy",
				capacity, a.inbox.Dropped()))
			_ = r.Unregister(id)
		},
	}
	switch {
	case a.pm != nil:
		a.disp = pubsub.NewBatchDispatcher(a.inbox, a.deliverPatternRun, dcfg)
	case prog.BatchableBehavior:
		a.disp = pubsub.NewBatchDispatcher(a.inbox, a.deliverRun, dcfg)
	default:
		a.disp = pubsub.NewDispatcher(a.inbox, a.deliver, dcfg)
	}
	r.mu.Lock()
	r.autos[id] = a
	r.mu.Unlock()
	// Fire the registration hook before the first subscription attaches:
	// every unregistration for this id — even a Fail-policy overflow
	// racing the subscribe loop — happens after, so the durable log never
	// records an unregister before its register.
	if forcedID == 0 && r.cfg.OnRegister != nil {
		r.cfg.OnRegister(a)
	}

	fail := func(err error) (*Automaton, error) {
		r.mu.Lock()
		delete(r.autos, id)
		r.mu.Unlock()
		if forcedID == 0 && r.cfg.OnUnregister != nil {
			r.cfg.OnUnregister(id)
		}
		// Stop before detaching: the broker detach takes topic locks that
		// a publisher parked in a full Block inbox may hold, and closing
		// the inbox (Stop) is what unparks it.
		a.disp.Stop()
		svc.Unsubscribe(id)
		return nil, err
	}
	// Pattern steps may share a topic (distinct variables over one
	// stream), so the subscription set is deduped; patterns additionally
	// subscribe to the Timer topic for the punctuation that advances the
	// watermark past stalled streams and fires deadline completions.
	subTopics := make([]string, 0, len(prog.Subscriptions())+1)
	seen := make(map[string]bool, len(prog.Subscriptions())+1)
	for _, sub := range prog.Subscriptions() {
		if !seen[sub.Topic] {
			seen[sub.Topic] = true
			subTopics = append(subTopics, sub.Topic)
		}
	}
	if a.pm != nil && !seen[types.TimerTopic] {
		subTopics = append(subTopics, types.TimerTopic)
	}
	for _, topic := range subTopics {
		if err := svc.Subscribe(id, topic, a.inbox); err != nil {
			return fail(fmt.Errorf("automaton: %w", err))
		}
	}
	// A Fail-policy overflow racing the subscription loop may already have
	// detached the automaton; sweep any subscription added after the
	// detach so no topic keeps feeding the dead inbox.
	r.mu.Lock()
	_, live := r.autos[id]
	r.mu.Unlock()
	if !live {
		svc.Unsubscribe(id)
		return nil, fmt.Errorf("automaton: inbox overflowed during registration")
	}
	return a, nil
}

// deliverRun consumes one drained run on a batchable automaton's
// dispatcher goroutine: the behaviour executes ONCE for the whole run —
// the batch activation that amortises interpreter dispatch. Per-event
// automata never come through here; they run deliver on the per-event
// dispatcher.
func (a *Automaton) deliverRun(evs []*types.Event) {
	a.vmMu.Lock()
	defer a.vmMu.Unlock()
	if err := a.vm.DeliverBatch(evs); err != nil {
		a.nErr.Add(1)
		a.reg.cfg.OnRuntimeError(a.id, err)
	}
	a.nProc.Add(uint64(len(evs)))
}

// deliverPatternRun feeds one drained run to the CEP machine on the
// automaton's dispatcher goroutine: buffering, watermark advance and
// match emission all happen inside ObserveBatch, under vmMu so a durable
// snapshot never sees a half-applied run.
func (a *Automaton) deliverPatternRun(evs []*types.Event) {
	a.vmMu.Lock()
	defer a.vmMu.Unlock()
	a.pm.ObserveBatch(evs)
	a.nProc.Add(uint64(len(evs)))
}

// deliver runs the behaviour clause for one event; it executes on the
// automaton's dispatcher goroutine.
func (a *Automaton) deliver(ev *types.Event) {
	a.vmMu.Lock()
	defer a.vmMu.Unlock()
	if err := a.vm.Deliver(ev); err != nil {
		a.nErr.Add(1)
		a.reg.cfg.OnRuntimeError(a.id, err)
	}
	a.nProc.Add(1)
}

// Get returns the automaton with the given id.
func (r *Registry) Get(id int64) (*Automaton, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	a, ok := r.autos[id]
	return a, ok
}

// Len returns the number of live automata.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.autos)
}

// Automata snapshots the live automata in id order (registration order).
// The returned handles stay valid for stats reads even if an automaton is
// unregistered concurrently.
func (r *Registry) Automata() []*Automaton {
	r.mu.Lock()
	out := make([]*Automaton, 0, len(r.autos))
	for _, a := range r.autos {
		out = append(out, a)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// Unregister detaches and stops the automaton, draining nothing: queued
// events are discarded, and an in-flight behaviour execution is the last —
// the dispatcher abandons the rest of its run. It blocks until the
// dispatcher goroutine exits; the behaviour clause never runs after
// Unregister returns.
func (r *Registry) Unregister(id int64) error {
	r.mu.Lock()
	a, ok := r.autos[id]
	delete(r.autos, id)
	notify := ok && !r.closing
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("automaton: %w: id %d", uerr.ErrNoSuchAutomaton, id)
	}
	if notify && r.cfg.OnUnregister != nil {
		r.cfg.OnUnregister(id)
	}
	// Stop before detaching: detaching takes topic locks, and a publisher
	// parked in a full Block inbox holds its topic's lock until the stop
	// closes the inbox and unparks it. Deliveries landing between stop and
	// detach drop into the closed inbox — the documented discard.
	a.disp.Stop()
	a.svc.Unsubscribe(id)
	return nil
}

// Close unregisters every automaton. The OnUnregister hook stays silent:
// shutdown stops automata without striking them from the durable record,
// so they come back on recovery.
func (r *Registry) Close() {
	r.mu.Lock()
	r.closing = true
	ids := make([]int64, 0, len(r.autos))
	for id := range r.autos {
		ids = append(ids, id)
	}
	r.mu.Unlock()
	for _, id := range ids {
		_ = r.Unregister(id)
	}
}

// NextID returns the id allocator's high-water mark (the last id handed
// out); the durable snapshot pins it so recovery never reuses an id.
func (r *Registry) NextID() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nextID
}

// EnsureNextID raises the id allocator to at least n (recovery restores
// the snapshotted high-water mark before re-registering automata).
func (r *Registry) EnsureNextID(n int64) {
	r.mu.Lock()
	if n > r.nextID {
		r.nextID = n
	}
	r.mu.Unlock()
}

// WaitIdle blocks until every automaton has drained its inbox (or the
// timeout elapses); it reports whether quiescence was reached. Benchmarks
// use it to bracket complete processing of a workload.
func (r *Registry) WaitIdle(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		idle := true
		r.mu.Lock()
		for _, a := range r.autos {
			if !a.Idle() {
				idle = false
				break
			}
		}
		r.mu.Unlock()
		if idle {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// host adapts an automaton to the vm.Host interface.
type host struct {
	a *Automaton
}

var _ vm.Host = (*host)(nil)

func (h *host) Now() types.Timestamp { return h.a.svc.Now() }

func (h *host) Publish(topic string, vals []types.Value) error {
	return h.a.svc.CommitInsert(topic, vals)
}

func (h *host) Send(vals []types.Value) error {
	return h.a.sink(vals)
}

func (h *host) Print(s string) {
	r := h.a.reg
	r.printM.Lock()
	defer r.printM.Unlock()
	fmt.Fprintln(r.cfg.PrintWriter, s)
}

func (h *host) AssocLookup(tbl, key string) (types.Value, bool, error) {
	pt, err := h.a.svc.PersistentTable(tbl)
	if err != nil {
		return types.Nil, false, err
	}
	row, ok := pt.Get(key)
	if !ok {
		return types.Nil, false, nil
	}
	return types.SeqV(types.NewSequence(row.Vals...)), true, nil
}

// AssocInsert builds a full row from v and commits it through the cache so
// the update is published on the table's topic. v may be a sequence (the
// full row) or, for two-column tables, a scalar value paired with the key.
func (h *host) AssocInsert(tbl, key string, v types.Value) error {
	pt, err := h.a.svc.PersistentTable(tbl)
	if err != nil {
		return err
	}
	schema := pt.Schema()
	var row []types.Value
	if seq := v.Seq(); seq != nil {
		row = append([]types.Value(nil), seq.Values()...)
	} else if schema.NumCols() == 2 && v.Kind().Scalar() {
		if schema.Key == 0 {
			row = []types.Value{types.Str(key), v}
		} else {
			row = []types.Value{v, types.Str(key)}
		}
	} else {
		return fmt.Errorf("insert() into %s needs a full row sequence", tbl)
	}
	if len(row) != schema.NumCols() {
		return fmt.Errorf("insert() into %s: row has %d values, table has %d columns",
			tbl, len(row), schema.NumCols())
	}
	if got := types.KeyString(row[schema.Key]); got != key {
		return fmt.Errorf("insert() into %s: key %q does not match row's primary key %q",
			tbl, key, got)
	}
	return h.a.svc.CommitInsert(tbl, row)
}

func (h *host) AssocHas(tbl, key string) (bool, error) {
	pt, err := h.a.svc.PersistentTable(tbl)
	if err != nil {
		return false, err
	}
	return pt.Has(key), nil
}

func (h *host) AssocRemove(tbl, key string) (bool, error) {
	pt, err := h.a.svc.PersistentTable(tbl)
	if err != nil {
		return false, err
	}
	return pt.Delete(key), nil
}

func (h *host) AssocSize(tbl string) (int, error) {
	pt, err := h.a.svc.PersistentTable(tbl)
	if err != nil {
		return 0, err
	}
	return pt.Len(), nil
}
