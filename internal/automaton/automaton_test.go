package automaton

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"unicache/internal/pubsub"
	"unicache/internal/table"
	"unicache/internal/types"
)

// fakeServices is a minimal cache stand-in: a broker plus a set of tables.
type fakeServices struct {
	broker *pubsub.Broker
	mu     sync.Mutex
	tables map[string]table.Table
	clock  types.Timestamp
	seq    uint64
}

func newFakeServices(t *testing.T) *fakeServices {
	t.Helper()
	svc := &fakeServices{
		broker: pubsub.NewBroker(),
		tables: make(map[string]table.Table),
		clock:  1000,
	}
	flows, err := types.NewSchema("Flows", false, -1,
		types.Column{Name: "dstip", Type: types.ColVarchar},
		types.Column{Name: "nbytes", Type: types.ColInt})
	if err != nil {
		t.Fatal(err)
	}
	svc.addTable(t, flows)
	usage, err := types.NewSchema("Usage", true, 0,
		types.Column{Name: "k", Type: types.ColVarchar},
		types.Column{Name: "v", Type: types.ColInt})
	if err != nil {
		t.Fatal(err)
	}
	svc.addTable(t, usage)
	wide, err := types.NewSchema("Wide", true, 1,
		types.Column{Name: "a", Type: types.ColInt},
		types.Column{Name: "k", Type: types.ColVarchar},
		types.Column{Name: "b", Type: types.ColInt})
	if err != nil {
		t.Fatal(err)
	}
	svc.addTable(t, wide)
	return svc
}

func (s *fakeServices) addTable(t *testing.T, schema *types.Schema) {
	t.Helper()
	tb, err := table.New(schema, 128)
	if err != nil {
		t.Fatal(err)
	}
	s.tables[schema.Name] = tb
	if err := s.broker.CreateTopic(schema.Name); err != nil {
		t.Fatal(err)
	}
}

func (s *fakeServices) Now() types.Timestamp {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clock++
	return s.clock
}

func (s *fakeServices) CommitInsert(name string, vals []types.Value) error {
	s.mu.Lock()
	tb, ok := s.tables[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("no such table %q", name)
	}
	coerced, err := tb.Schema().Coerce(vals)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	s.seq++
	s.clock++
	tup := &types.Tuple{Seq: s.seq, TS: s.clock, Vals: coerced}
	if _, err := tb.Insert(tup); err != nil {
		s.mu.Unlock()
		return err
	}
	ev := &types.Event{Topic: name, Schema: tb.Schema(), Tuple: tup}
	s.mu.Unlock()
	return s.broker.Publish(ev)
}

func (s *fakeServices) PersistentTable(name string) (*table.Persistent, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tb, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("no such table %q", name)
	}
	pt, ok := tb.(*table.Persistent)
	if !ok {
		return nil, fmt.Errorf("table %q is not persistent", name)
	}
	return pt, nil
}

func (s *fakeServices) Schemas() map[string]*types.Schema {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]*types.Schema, len(s.tables))
	for name, tb := range s.tables {
		out[name] = tb.Schema()
	}
	return out
}

func (s *fakeServices) Subscribe(id int64, topic string, sub pubsub.Subscriber) error {
	return s.broker.Subscribe(id, topic, sub)
}

func (s *fakeServices) Unsubscribe(id int64) { s.broker.Unsubscribe(id) }

func newRegistry(t *testing.T) (*fakeServices, *Registry) {
	t.Helper()
	svc := newFakeServices(t)
	reg := NewRegistry(svc, Config{
		PrintWriter:    &strings.Builder{},
		OnRuntimeError: func(int64, error) {},
		MaxSteps:       1_000_000,
	})
	t.Cleanup(reg.Close)
	return svc, reg
}

func flowVals(dst string, n int64) []types.Value {
	return []types.Value{types.Str(dst), types.Int(n)}
}

func TestRegisterRunsAndSends(t *testing.T) {
	svc, reg := newRegistry(t)
	var mu sync.Mutex
	var got [][]types.Value
	a, err := reg.Register(`
subscribe f to Flows;
behavior { send(f.nbytes * 2); }
`, func(vals []types.Value) error {
		mu.Lock()
		got = append(got, vals)
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.ID() <= 0 {
		t.Error("id should be positive")
	}
	if err := svc.CommitInsert("Flows", flowVals("d", 21)); err != nil {
		t.Fatal(err)
	}
	if !reg.WaitIdle(5 * time.Second) {
		t.Fatal("not idle")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 {
		t.Fatalf("sends = %d", len(got))
	}
	if n, _ := got[0][0].AsInt(); n != 42 {
		t.Errorf("send value = %v", got[0][0])
	}
	if a.Processed() != 1 || a.RuntimeErrors() != 0 {
		t.Errorf("counters: processed=%d errors=%d", a.Processed(), a.RuntimeErrors())
	}
}

func TestRegisterValidationErrors(t *testing.T) {
	_, reg := newRegistry(t)
	if _, err := reg.Register(`subscribe f to Flows; behavior { send(f.nbytes); }`, nil); err == nil {
		t.Error("nil sink should be rejected")
	}
	if _, err := reg.Register(`not gapl at all`, DiscardSink); err == nil {
		t.Error("parse error should surface")
	}
	if _, err := reg.Register(`subscribe f to Nope; behavior { send(1); }`, DiscardSink); err == nil {
		t.Error("bind error should surface")
	}
	if _, err := reg.Register(`
subscribe f to Flows;
associate u with Flows;
behavior { send(1); }
`, DiscardSink); err == nil {
		t.Error("association to ephemeral table should be rejected")
	}
	if reg.Len() != 0 {
		t.Errorf("failed registrations left %d automata", reg.Len())
	}
}

func TestUnregisterLifecycle(t *testing.T) {
	svc, reg := newRegistry(t)
	a, err := reg.Register(`subscribe f to Flows; behavior { send(f.nbytes); }`, DiscardSink)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := reg.Get(a.ID()); !ok || got != a {
		t.Error("Get should find the automaton")
	}
	if reg.Len() != 1 {
		t.Errorf("Len = %d", reg.Len())
	}
	if err := reg.Unregister(a.ID()); err != nil {
		t.Fatal(err)
	}
	if err := reg.Unregister(a.ID()); err == nil {
		t.Error("double unregister should error")
	}
	if _, ok := reg.Get(a.ID()); ok {
		t.Error("Get after unregister should fail")
	}
	// Events after unregister are dropped silently.
	if err := svc.CommitInsert("Flows", flowVals("d", 1)); err != nil {
		t.Fatal(err)
	}
}

func TestRuntimeErrorCallbackAndCounters(t *testing.T) {
	svc := newFakeServices(t)
	var mu sync.Mutex
	errCount := 0
	reg := NewRegistry(svc, Config{
		PrintWriter: &strings.Builder{},
		OnRuntimeError: func(_ int64, err error) {
			mu.Lock()
			errCount++
			mu.Unlock()
		},
	})
	defer reg.Close()
	a, err := reg.Register(`
subscribe f to Flows;
int x;
behavior { x = 1 / f.nbytes; }
`, DiscardSink)
	if err != nil {
		t.Fatal(err)
	}
	_ = svc.CommitInsert("Flows", flowVals("d", 0)) // division by zero
	_ = svc.CommitInsert("Flows", flowVals("d", 2)) // fine
	if !reg.WaitIdle(5 * time.Second) {
		t.Fatal("not idle")
	}
	mu.Lock()
	defer mu.Unlock()
	if errCount != 1 || a.RuntimeErrors() != 1 {
		t.Errorf("errors: callback=%d counter=%d", errCount, a.RuntimeErrors())
	}
	if a.Processed() != 2 {
		t.Errorf("processed = %d (failed deliveries still count)", a.Processed())
	}
}

func TestDefaultConfigDoesNotPanic(t *testing.T) {
	svc := newFakeServices(t)
	reg := NewRegistry(svc, Config{})
	defer reg.Close()
	if _, err := reg.Register(`subscribe f to Flows; behavior { send(1); }`, DiscardSink); err != nil {
		t.Fatal(err)
	}
}

func TestPrintGoesToConfiguredWriter(t *testing.T) {
	svc := newFakeServices(t)
	var buf strings.Builder
	var mu sync.Mutex
	syncW := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	reg := NewRegistry(svc, Config{PrintWriter: syncW})
	defer reg.Close()
	if _, err := reg.Register(`
subscribe f to Flows;
behavior { print(String('got: ', f.nbytes)); }
`, DiscardSink); err != nil {
		t.Fatal(err)
	}
	_ = svc.CommitInsert("Flows", flowVals("d", 7))
	if !reg.WaitIdle(5 * time.Second) {
		t.Fatal("not idle")
	}
	mu.Lock()
	defer mu.Unlock()
	if !strings.Contains(buf.String(), "got: 7") {
		t.Errorf("print output = %q", buf.String())
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestAssocInsertScalarConvenience(t *testing.T) {
	svc, reg := newRegistry(t)
	// Two-column table: insert(assoc, id, scalar) builds the row.
	if _, err := reg.Register(`
subscribe f to Flows;
associate u with Usage;
behavior { insert(u, Identifier(f.dstip), f.nbytes); }
`, DiscardSink); err != nil {
		t.Fatal(err)
	}
	_ = svc.CommitInsert("Flows", flowVals("10.0.0.9", 500))
	if !reg.WaitIdle(5 * time.Second) {
		t.Fatal("not idle")
	}
	pt, _ := svc.PersistentTable("Usage")
	row, ok := pt.Get("10.0.0.9")
	if !ok {
		t.Fatal("row missing")
	}
	if n, _ := row.Vals[1].AsInt(); n != 500 {
		t.Errorf("scalar convenience row = %v", row.Vals)
	}
}

func TestAssocInsertKeyMismatchRejected(t *testing.T) {
	svc := newFakeServices(t)
	var mu sync.Mutex
	var errs []error
	reg := NewRegistry(svc, Config{
		PrintWriter: &strings.Builder{},
		OnRuntimeError: func(_ int64, err error) {
			mu.Lock()
			errs = append(errs, err)
			mu.Unlock()
		},
	})
	defer reg.Close()
	// Row's primary key 'other' does not match the insert key.
	if _, err := reg.Register(`
subscribe f to Flows;
associate u with Usage;
behavior { insert(u, Identifier('mykey'), Sequence('other', 1)); }
`, DiscardSink); err != nil {
		t.Fatal(err)
	}
	_ = svc.CommitInsert("Flows", flowVals("d", 1))
	if !reg.WaitIdle(5 * time.Second) {
		t.Fatal("not idle")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "does not match") {
		t.Errorf("key mismatch error missing: %v", errs)
	}
}

func TestAssocInsertArityAndNonKeyedScalar(t *testing.T) {
	svc := newFakeServices(t)
	var mu sync.Mutex
	var errs []error
	reg := NewRegistry(svc, Config{
		PrintWriter: &strings.Builder{},
		OnRuntimeError: func(_ int64, err error) {
			mu.Lock()
			errs = append(errs, err)
			mu.Unlock()
		},
	})
	defer reg.Close()
	// Wide has 3 columns: a scalar insert cannot build the row, and a
	// 2-element sequence has the wrong arity.
	if _, err := reg.Register(`
subscribe f to Flows;
associate w with Wide;
behavior {
	insert(w, Identifier('k'), 5);
}
`, DiscardSink); err != nil {
		t.Fatal(err)
	}
	_ = svc.CommitInsert("Flows", flowVals("d", 1))
	if !reg.WaitIdle(5 * time.Second) {
		t.Fatal("not idle")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "full row sequence") {
		t.Errorf("arity error missing: %v", errs)
	}
}

func TestWideAssocRowInsertWithMidKey(t *testing.T) {
	svc, reg := newRegistry(t)
	// Wide's primary key is its second column.
	if _, err := reg.Register(`
subscribe f to Flows;
associate w with Wide;
behavior { insert(w, Identifier(f.dstip), Sequence(1, f.dstip, f.nbytes)); }
`, DiscardSink); err != nil {
		t.Fatal(err)
	}
	_ = svc.CommitInsert("Flows", flowVals("kk", 9))
	if !reg.WaitIdle(5 * time.Second) {
		t.Fatal("not idle")
	}
	pt, _ := svc.PersistentTable("Wide")
	if _, ok := pt.Get("kk"); !ok {
		t.Error("mid-key row not stored")
	}
}

func TestManyAutomataFanout(t *testing.T) {
	svc, reg := newRegistry(t)
	const n = 16
	var counter sync.Map
	for i := 0; i < n; i++ {
		id := i
		if _, err := reg.Register(`
subscribe f to Flows;
behavior { send(f.nbytes); }
`, func(vals []types.Value) error {
			v, _ := counter.LoadOrStore(id, new(int))
			*(v.(*int))++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	const events = 50
	for i := 0; i < events; i++ {
		if err := svc.CommitInsert("Flows", flowVals("d", int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if !reg.WaitIdle(10 * time.Second) {
		t.Fatal("not idle")
	}
	total := 0
	counter.Range(func(_, v any) bool {
		total += *(v.(*int))
		return true
	})
	if total != n*events {
		t.Errorf("fanout delivered %d, want %d", total, n*events)
	}
	reg.Close()
	if reg.Len() != 0 {
		t.Errorf("Close left %d automata", reg.Len())
	}
}

// TestUnregisterDiscardsQueuedEvents pins the async-pipeline unsubscription
// contract at the automaton layer: Unregister with queued-but-undelivered
// events must stop delivery promptly, and the behaviour clause never runs
// after Unregister returns. Run with -race.
func TestUnregisterDiscardsQueuedEvents(t *testing.T) {
	svc := newFakeServices(t)
	reg := NewRegistry(svc, Config{
		PrintWriter:    &strings.Builder{},
		OnRuntimeError: func(int64, error) {},
	})
	t.Cleanup(reg.Close)
	var processed atomic.Int64
	// The busy-loop makes each delivery expensive enough that a burst of
	// commits leaves a backlog in the inbox.
	a, err := reg.Register(`
subscribe f to Flows;
int i;
behavior {
	i = 0;
	while (i < 20000) { i += 1; }
	send(f.nbytes);
}
`, func([]types.Value) error { processed.Add(1); return nil })
	if err != nil {
		t.Fatal(err)
	}
	const events = 200
	for i := 0; i < events; i++ {
		if err := svc.CommitInsert("Flows", flowVals("d", int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := reg.Unregister(a.ID()); err != nil {
		t.Fatal(err)
	}
	atCut := processed.Load()
	time.Sleep(30 * time.Millisecond)
	if got := processed.Load(); got != atCut {
		t.Fatalf("behaviour ran after Unregister returned: %d -> %d", atCut, got)
	}
	if atCut == events {
		t.Logf("automaton drained all %d events before Unregister; discard window not exercised", events)
	}
}

// TestAutomatonFailPolicySelfDetaches: with a bounded Fail inbox, an
// automaton that falls too far behind is unregistered and the overflow
// reported through OnRuntimeError.
func TestAutomatonFailPolicySelfDetaches(t *testing.T) {
	svc := newFakeServices(t)
	failures := make(chan error, 16)
	reg := NewRegistry(svc, Config{
		PrintWriter:    &strings.Builder{},
		OnRuntimeError: func(_ int64, err error) { failures <- err },
		InboxCapacity:  8,
		InboxPolicy:    pubsub.Fail,
	})
	t.Cleanup(reg.Close)
	if _, err := reg.Register(`
subscribe f to Flows;
int i;
behavior {
	i = 0;
	while (i < 200000) { i += 1; }
}
`, DiscardSink); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := svc.CommitInsert("Flows", flowVals("d", int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case err := <-failures:
		if !strings.Contains(err.Error(), "overflowed") {
			t.Fatalf("unexpected runtime error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("overflow never reported")
	}
	deadline := time.Now().Add(10 * time.Second)
	for reg.Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("overflowed automaton still registered (len=%d)", reg.Len())
		}
		time.Sleep(time.Millisecond)
	}
}
