// Package loadgen is the façade-level load harness: it drives identical
// workloads — a grid of topics × batch size × producers × subscriber mix —
// against any unicache.Engine through the public API, so the embedded and
// RPC backends are measured by the same code path an application would
// use. Run reports end-to-end events/sec, per-InsertBatch p50/p99 commit
// latency, and client-process heap allocations per event.
//
// Concurrency: Run spawns the workload's producer goroutines internally
// and returns only after they and the engine's subscribers have finished;
// the Result is then immutable. Run calls on the same engine must not
// overlap (the allocation counters are process-wide); the harness itself
// holds no shared state between calls.
package loadgen

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"unicache"
	"unicache/internal/types"
)

// Workload is one load-grid row: how many topics share the engine, how
// rows are batched, how many producers commit concurrently, and what
// subscriber mix observes the flow.
type Workload struct {
	Name      string
	Topics    int // tables/topics the load spreads across
	BatchSize int // rows per InsertBatch call
	Producers int // concurrent producer goroutines
	Events    int // total rows committed across all producers
	Watchers  int // watch taps per topic
	Automata  int // counting automata per topic
}

// Result is one backend's measurement of one workload.
type Result struct {
	Backend      string
	Workload     Workload
	Elapsed      time.Duration
	EventsPerSec float64
	P50, P99     time.Duration // per-InsertBatch commit latency
	AllocsPerOp  float64       // client-process heap allocations per event
	Delivered    uint64        // events observed by watch taps
	Sent         uint64        // automaton send() notifications drained
}

// DefaultWorkloads is the standard grid: single topic vs fan-out, small vs
// large batches, lone producer vs contention, bare commits vs a live
// subscriber mix.
func DefaultWorkloads() []Workload {
	return []Workload{
		{Name: "1topic-b1-p1-bare", Topics: 1, BatchSize: 1, Producers: 1, Events: 50000},
		{Name: "1topic-b64-p1-bare", Topics: 1, BatchSize: 64, Producers: 1, Events: 200000},
		{Name: "4topic-b64-p4-bare", Topics: 4, BatchSize: 64, Producers: 4, Events: 200000},
		{Name: "1topic-b64-p1-watch", Topics: 1, BatchSize: 64, Producers: 1, Events: 100000, Watchers: 1},
		{Name: "4topic-b64-p4-mix", Topics: 4, BatchSize: 64, Producers: 4, Events: 100000, Watchers: 1, Automata: 1},
	}
}

// QuickWorkloads is the CI smoke grid: the same shapes at a size that
// finishes in well under a second per backend.
func QuickWorkloads() []Workload {
	ws := DefaultWorkloads()
	for i := range ws {
		ws[i].Events = 2000
	}
	return ws
}

// Run drives one workload against eng and measures it. The engine must be
// fresh (no colliding table names); tables are created as T0..Tn-1 with
// two integer columns. backend labels the result row.
func Run(eng unicache.Engine, backend string, w Workload) (Result, error) {
	if w.Topics < 1 || w.BatchSize < 1 || w.Producers < 1 || w.Events < 1 {
		return Result{}, fmt.Errorf("loadgen: workload %q needs positive topics, batch size, producers and events", w.Name)
	}
	tables := make([]string, w.Topics)
	for i := range tables {
		tables[i] = fmt.Sprintf("T%d", i)
		stmt := fmt.Sprintf("create table %s (src integer, v integer)", tables[i])
		if _, err := eng.Exec(stmt); err != nil {
			return Result{}, fmt.Errorf("loadgen: %s: %w", stmt, err)
		}
	}

	// Subscriber mix: counting watch taps and counting automata, so the
	// measured path includes dispatch fan-out, not just the commit.
	var delivered atomic.Uint64
	watches := make([]unicache.Watch, 0, w.Topics*w.Watchers)
	for _, tbl := range tables {
		for i := 0; i < w.Watchers; i++ {
			wh, err := eng.Watch(tbl, func(*unicache.Event) { delivered.Add(1) })
			if err != nil {
				return Result{}, fmt.Errorf("loadgen: watch %s: %w", tbl, err)
			}
			watches = append(watches, wh)
		}
	}
	defer func() {
		for _, wh := range watches {
			_ = wh.Close()
		}
	}()
	var sent atomic.Uint64
	var drainers sync.WaitGroup
	autos := make([]unicache.Automaton, 0, w.Topics*w.Automata)
	for _, tbl := range tables {
		for i := 0; i < w.Automata; i++ {
			src := fmt.Sprintf("subscribe r to %s; int n; behavior { n += 1; if (n %% 1000 == 0) { send(n); } }", tbl)
			a, err := eng.Register(src)
			if err != nil {
				return Result{}, fmt.Errorf("loadgen: register on %s: %w", tbl, err)
			}
			autos = append(autos, a)
			drainers.Add(1)
			go func(a unicache.Automaton) {
				defer drainers.Done()
				for range a.Events() {
					sent.Add(1)
				}
			}(a)
		}
	}
	closeAutos := func() {
		for _, a := range autos {
			_ = a.Close()
		}
		drainers.Wait()
	}

	// Producers: each commits its share of batches round-robining across
	// the topic list, recording one latency sample per InsertBatch. Rows
	// are rebuilt per batch from a reused backing slice — the harness
	// itself stays off the allocation profile as far as the public API
	// allows.
	perProducer := w.Events / w.Producers
	batches := make([][]time.Duration, w.Producers)
	var wg sync.WaitGroup
	var firstErr atomic.Value
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for p := 0; p < w.Producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rows := make([][]unicache.Value, 0, w.BatchSize)
			vals := make([]unicache.Value, 2*w.BatchSize)
			lat := make([]time.Duration, 0, perProducer/w.BatchSize+1)
			for done := 0; done < perProducer; {
				n := w.BatchSize
				if perProducer-done < n {
					n = perProducer - done
				}
				rows = rows[:0]
				for i := 0; i < n; i++ {
					row := vals[2*i : 2*i+2]
					row[0] = types.Int(int64(p))
					row[1] = types.Int(int64(done + i))
					rows = append(rows, row)
				}
				tbl := tables[(p+done)%len(tables)]
				t0 := time.Now()
				if err := eng.InsertBatch(tbl, rows); err != nil {
					firstErr.CompareAndSwap(nil, fmt.Errorf("loadgen: insert into %s: %w", tbl, err))
					return
				}
				lat = append(lat, time.Since(t0))
				done += n
			}
			batches[p] = lat
		}(p)
	}
	wg.Wait()
	committed := perProducer * w.Producers
	if err, _ := firstErr.Load().(error); err != nil {
		closeAutos()
		return Result{}, err
	}

	// Settle: commits have returned, but watch taps and automata drain
	// asynchronously. Wait for the taps to see every event and the automata
	// to go idle before stopping the clock — the workload isn't done until
	// its subscribers are.
	wantDelivered := uint64(committed) * uint64(w.Watchers)
	for deadline := time.Now().Add(30 * time.Second); delivered.Load() < wantDelivered; {
		if time.Now().After(deadline) {
			closeAutos()
			return Result{}, fmt.Errorf("loadgen: watch taps saw %d of %d events", delivered.Load(), wantDelivered)
		}
		time.Sleep(time.Millisecond)
	}
	if len(autos) > 0 && !unicache.WaitIdle(eng, 30*time.Second) {
		closeAutos()
		return Result{}, fmt.Errorf("loadgen: automata not idle after 30s")
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	closeAutos()

	var all []time.Duration
	for _, lat := range batches {
		all = append(all, lat...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res := Result{
		Backend:      backend,
		Workload:     w,
		Elapsed:      elapsed,
		EventsPerSec: float64(committed) / elapsed.Seconds(),
		AllocsPerOp:  float64(ms1.Mallocs-ms0.Mallocs) / float64(committed),
		Delivered:    delivered.Load(),
		Sent:         sent.Load(),
	}
	if len(all) > 0 {
		res.P50 = all[len(all)/2]
		res.P99 = all[len(all)*99/100]
	}
	return res, nil
}

// Table renders results as a markdown table, one row per (workload,
// backend) pair, in the order given.
func Table(results []Result) string {
	var b strings.Builder
	b.WriteString("| workload | backend | events/sec | p50 | p99 | allocs/event |\n")
	b.WriteString("|---|---|---|---|---|---|\n")
	for _, r := range results {
		fmt.Fprintf(&b, "| %s | %s | %.0f | %s | %s | %.2f |\n",
			r.Workload.Name, r.Backend, r.EventsPerSec,
			r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond), r.AllocsPerOp)
	}
	return b.String()
}
