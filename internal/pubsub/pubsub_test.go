package pubsub

import (
	"sync"
	"testing"
	"time"

	"unicache/internal/types"
)

func mkEvent(t *testing.T, topic string, seq uint64) *types.Event {
	t.Helper()
	schema, err := types.NewSchema(topic, false, -1,
		types.Column{Name: "v", Type: types.ColInt})
	if err != nil {
		t.Fatal(err)
	}
	return &types.Event{
		Topic:  topic,
		Schema: schema,
		Tuple:  &types.Tuple{Seq: seq, TS: types.Timestamp(seq), Vals: []types.Value{types.Int(int64(seq))}},
	}
}

type collector struct {
	mu  sync.Mutex
	evs []*types.Event
}

func (c *collector) Deliver(ev *types.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.evs = append(c.evs, ev)
}

func (c *collector) DeliverBatch(evs []*types.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.evs = append(c.evs, evs...)
}

func (c *collector) seqs() []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]uint64, len(c.evs))
	for i, ev := range c.evs {
		out[i] = ev.Tuple.Seq
	}
	return out
}

func TestBrokerTopicLifecycle(t *testing.T) {
	b := NewBroker()
	if err := b.CreateTopic("Flows"); err != nil {
		t.Fatal(err)
	}
	if err := b.CreateTopic("Flows"); err == nil {
		t.Error("duplicate topic should error")
	}
	if err := b.CreateTopic(""); err == nil {
		t.Error("empty topic name should error")
	}
	if !b.HasTopic("Flows") || b.HasTopic("Nope") {
		t.Error("HasTopic wrong")
	}
	_ = b.CreateTopic("Alpha")
	names := b.Topics()
	if len(names) != 2 || names[0] != "Alpha" || names[1] != "Flows" {
		t.Errorf("Topics() = %v", names)
	}
}

func TestSubscribePublishUnsubscribe(t *testing.T) {
	b := NewBroker()
	_ = b.CreateTopic("T")
	c1, c2 := &collector{}, &collector{}
	if err := b.Subscribe(1, "T", c1); err != nil {
		t.Fatal(err)
	}
	if err := b.Subscribe(2, "T", c2); err != nil {
		t.Fatal(err)
	}
	if err := b.Subscribe(1, "T", c1); err == nil {
		t.Error("duplicate subscription should error")
	}
	if err := b.Subscribe(3, "Nope", c1); err == nil {
		t.Error("subscribe to missing topic should error")
	}
	if err := b.Subscribe(3, "T", nil); err == nil {
		t.Error("nil subscriber should error")
	}
	if got := b.Subscribers("T"); got != 2 {
		t.Errorf("Subscribers = %d", got)
	}

	if err := b.Publish(mkEvent(t, "T", 1)); err != nil {
		t.Fatal(err)
	}
	if len(c1.seqs()) != 1 || len(c2.seqs()) != 1 {
		t.Error("both subscribers should receive the event")
	}

	b.Unsubscribe(1)
	if err := b.Publish(mkEvent(t, "T", 2)); err != nil {
		t.Fatal(err)
	}
	if len(c1.seqs()) != 1 {
		t.Error("unsubscribed collector should not receive")
	}
	if len(c2.seqs()) != 2 {
		t.Error("remaining collector should receive")
	}

	if err := b.Publish(mkEvent(t, "Nope", 3)); err == nil {
		t.Error("publish to missing topic should error")
	}
}

func TestPublishOrderPreservedPerSubscriber(t *testing.T) {
	b := NewBroker()
	_ = b.CreateTopic("T")
	c := &collector{}
	_ = b.Subscribe(1, "T", c)
	const n = 1000
	for i := uint64(1); i <= n; i++ {
		if err := b.Publish(mkEvent(t, "T", i)); err != nil {
			t.Fatal(err)
		}
	}
	seqs := c.seqs()
	if len(seqs) != n {
		t.Fatalf("received %d events, want %d", len(seqs), n)
	}
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("order violated at %d: %d", i, s)
		}
	}
}

func TestInboxFIFOAndClose(t *testing.T) {
	in := NewInbox()
	for i := uint64(1); i <= 5; i++ {
		in.Deliver(mkEvent(t, "T", i))
	}
	if in.Len() != 5 {
		t.Fatalf("Len = %d", in.Len())
	}
	for i := uint64(1); i <= 5; i++ {
		ev, ok := in.Pop()
		if !ok || ev.Tuple.Seq != i {
			t.Fatalf("Pop %d = %v, %v", i, ev, ok)
		}
	}
	if _, ok := in.TryPop(); ok {
		t.Error("TryPop on empty should fail")
	}
	in.Close()
	if _, ok := in.Pop(); ok {
		t.Error("Pop after close+drain should report closed")
	}
	in.Deliver(mkEvent(t, "T", 9))
	if in.Len() != 0 {
		t.Error("Deliver after close should drop")
	}
}

func TestInboxPopBlocksUntilDeliver(t *testing.T) {
	in := NewInbox()
	done := make(chan uint64, 1)
	go func() {
		ev, ok := in.Pop()
		if !ok {
			done <- 0
			return
		}
		done <- ev.Tuple.Seq
	}()
	// Give the consumer a moment to block.
	time.Sleep(10 * time.Millisecond)
	in.Deliver(mkEvent(t, "T", 42))
	select {
	case got := <-done:
		if got != 42 {
			t.Errorf("Pop returned %d, want 42", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Pop did not wake on Deliver")
	}
}

func TestInboxCloseWakesBlockedPop(t *testing.T) {
	in := NewInbox()
	done := make(chan bool, 1)
	go func() {
		_, ok := in.Pop()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	in.Close()
	select {
	case ok := <-done:
		if ok {
			t.Error("Pop after close on empty inbox should report !ok")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not wake blocked Pop")
	}
}

func TestInboxCompaction(t *testing.T) {
	in := NewInbox()
	// Push and pop enough to trigger prefix reclamation.
	for round := 0; round < 4; round++ {
		for i := uint64(0); i < 300; i++ {
			in.Deliver(mkEvent(t, "T", i))
		}
		for i := uint64(0); i < 300; i++ {
			ev, ok := in.Pop()
			if !ok || ev.Tuple.Seq != i {
				t.Fatalf("round %d: pop %d got %v %v", round, i, ev, ok)
			}
		}
	}
	if in.Len() != 0 {
		t.Errorf("Len = %d after drain", in.Len())
	}
}

// Concurrent publishers on different topics: each inbox must observe its
// own topic's events in publish order.
func TestConcurrentPublishOrderPerTopic(t *testing.T) {
	b := NewBroker()
	topics := []string{"A", "B", "C", "D"}
	inboxes := make(map[string]*Inbox)
	for i, name := range topics {
		_ = b.CreateTopic(name)
		in := NewInbox()
		inboxes[name] = in
		if err := b.Subscribe(int64(i+1), name, in); err != nil {
			t.Fatal(err)
		}
	}
	const perTopic = 500
	var wg sync.WaitGroup
	for _, name := range topics {
		wg.Add(1)
		go func(topic string) {
			defer wg.Done()
			for i := uint64(1); i <= perTopic; i++ {
				_ = b.Publish(mkEvent(t, topic, i))
			}
		}(name)
	}
	wg.Wait()
	for _, name := range topics {
		in := inboxes[name]
		if in.Len() != perTopic {
			t.Fatalf("topic %s inbox has %d events", name, in.Len())
		}
		for i := uint64(1); i <= perTopic; i++ {
			ev, ok := in.TryPop()
			if !ok || ev.Tuple.Seq != i {
				t.Fatalf("topic %s: event %d out of order (%v, %v)", name, i, ev, ok)
			}
		}
	}
}

// One subscriber on two topics: when publishes are serialized by the
// caller (as the cache commit path does), the inbox observes the global
// order.
func TestCrossTopicInterleavingPreserved(t *testing.T) {
	b := NewBroker()
	_ = b.CreateTopic("X")
	_ = b.CreateTopic("Y")
	in := NewInbox()
	_ = b.Subscribe(1, "X", in)
	_ = b.Subscribe(1, "Y", in)
	const n = 200
	for i := uint64(1); i <= n; i++ {
		topic := "X"
		if i%2 == 0 {
			topic = "Y"
		}
		if err := b.Publish(mkEvent(t, topic, i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= n; i++ {
		ev, ok := in.TryPop()
		if !ok || ev.Tuple.Seq != i {
			t.Fatalf("global order violated at %d: got %v %v", i, ev, ok)
		}
	}
}

// --- batch delivery --------------------------------------------------------

func mkBatch(t *testing.T, topic string, from, n uint64) []*types.Event {
	t.Helper()
	out := make([]*types.Event, n)
	for i := uint64(0); i < n; i++ {
		out[i] = mkEvent(t, topic, from+i)
	}
	return out
}

func TestPublishBatch(t *testing.T) {
	b := NewBroker()
	_ = b.CreateTopic("T")
	c1, c2 := &collector{}, &collector{}
	_ = b.Subscribe(1, "T", c1)
	_ = b.Subscribe(2, "T", c2)
	if err := b.PublishBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := b.PublishBatch(mkBatch(t, "T", 1, 5)); err != nil {
		t.Fatal(err)
	}
	for _, c := range []*collector{c1, c2} {
		seqs := c.seqs()
		if len(seqs) != 5 {
			t.Fatalf("got %d events, want 5", len(seqs))
		}
		for i, s := range seqs {
			if s != uint64(i+1) {
				t.Fatalf("order violated at %d: %d", i, s)
			}
		}
	}
	mixed := []*types.Event{mkEvent(t, "T", 6), mkEvent(t, "U", 7)}
	if err := b.PublishBatch(mixed); err == nil {
		t.Error("mixed-topic batch should error")
	}
	if err := b.PublishBatch(mkBatch(t, "Nope", 1, 1)); err == nil {
		t.Error("batch to missing topic should error")
	}
}

func TestInboxDeliverBatchAndPopBatch(t *testing.T) {
	in := NewInbox()
	in.DeliverBatch(mkBatch(t, "T", 1, 10))
	if in.Len() != 10 {
		t.Fatalf("Len = %d", in.Len())
	}
	batch, ok := in.PopBatch(4, nil)
	if !ok || len(batch) != 4 {
		t.Fatalf("PopBatch(4) = %d events, ok=%v", len(batch), ok)
	}
	for i, ev := range batch {
		if ev.Tuple.Seq != uint64(i+1) {
			t.Fatalf("batch order violated at %d: %d", i, ev.Tuple.Seq)
		}
	}
	// max <= 0 drains the rest, reusing the caller's buffer.
	rest, ok := in.PopBatch(0, batch)
	if !ok || len(rest) != 6 {
		t.Fatalf("PopBatch(0) = %d events, ok=%v", len(rest), ok)
	}
	if rest[0].Tuple.Seq != 5 || rest[5].Tuple.Seq != 10 {
		t.Fatalf("drain run wrong: %d..%d", rest[0].Tuple.Seq, rest[5].Tuple.Seq)
	}
	in.Close()
	if _, ok := in.PopBatch(0, nil); ok {
		t.Error("PopBatch after close+drain should report closed")
	}
	in.DeliverBatch(mkBatch(t, "T", 11, 2))
	if in.Len() != 0 {
		t.Error("DeliverBatch after close should drop")
	}
}

func TestInboxPopBatchBlocksUntilDeliver(t *testing.T) {
	in := NewInbox()
	done := make(chan int, 1)
	go func() {
		batch, ok := in.PopBatch(0, nil)
		if !ok {
			done <- -1
			return
		}
		done <- len(batch)
	}()
	time.Sleep(10 * time.Millisecond)
	in.DeliverBatch(mkBatch(t, "T", 1, 3))
	select {
	case got := <-done:
		if got != 3 {
			t.Errorf("PopBatch returned %d events, want 3", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("PopBatch did not wake on DeliverBatch")
	}
}

// TestTryPopReclaimsPrefix pins the fix for the TryPop leak: a consumer
// draining exclusively via TryPop must not grow the backing array without
// bound.
func TestTryPopReclaimsPrefix(t *testing.T) {
	in := NewInbox()
	for round := 0; round < 8; round++ {
		for i := uint64(0); i < 300; i++ {
			in.Deliver(mkEvent(t, "T", i))
		}
		for i := uint64(0); i < 300; i++ {
			ev, ok := in.TryPop()
			if !ok || ev.Tuple.Seq != i {
				t.Fatalf("round %d: TryPop %d got %v %v", round, i, ev, ok)
			}
		}
	}
	in.mu.Lock()
	qlen, head := len(in.q), in.head
	in.mu.Unlock()
	if head > 512 || qlen > 1024 {
		t.Fatalf("consumed prefix never reclaimed: head=%d len(q)=%d", head, qlen)
	}
}
