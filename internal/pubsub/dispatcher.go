package pubsub

import (
	"sync/atomic"

	"unicache/internal/types"
)

// DefaultDispatchRun bounds how many queued events a Dispatcher pops per
// inbox lock acquisition: long enough to amortise the lock/signal cost of
// tuple-at-a-time delivery, short enough that Stop stays responsive under
// sustained load.
const DefaultDispatchRun = 256

// DispatcherConfig tunes a Dispatcher.
type DispatcherConfig struct {
	// MaxRun bounds events popped per drain (default DefaultDispatchRun).
	MaxRun int
	// OnFail, if set, is invoked once — on a fresh goroutine, after the
	// drain loop has exited — when the inbox was closed by a Fail-policy
	// overflow rather than by Stop. It is where the owner detaches the
	// subscription (it may safely call Unsubscribe and Stop; neither is
	// legal from inside the consumer callback).
	OnFail func()
}

// Dispatcher drains an Inbox on its own goroutine, invoking the consumer
// callback for each event in commit order. It is the asynchronous half of
// the delivery pipeline: the commit path enqueues into the bounded Inbox in
// O(1) under the topic lock, and the Dispatcher executes the consumer on
// its own time. One Dispatcher owns one Inbox and one callback; the
// callback runs on the dispatcher goroutine, so it needs no locking of its
// own for state it alone touches, and it must not call Stop (or anything
// that waits for the dispatcher, like Cache.Unsubscribe of its own id) —
// that would deadlock the goroutine against itself.
type Dispatcher struct {
	in *Inbox
	fn func(*types.Event)
	// bfn, when set (NewBatchDispatcher), receives each drained run whole —
	// one invocation per PopBatch — instead of fn per event. The slice is
	// only valid for the duration of the call: the dispatcher reuses its
	// backing array for the next drain.
	bfn    func([]*types.Event)
	onFail func()
	maxRun int
	stop   atomic.Bool
	// processed counts callback invocations that have completed; compared
	// against the inbox's Consumed() (incremented atomically with the
	// pop), the difference is the number of popped-but-undelivered events
	// — which is what makes Busy free of the pop-then-flag window.
	processed atomic.Uint64
	done      chan struct{}
}

// NewDispatcher starts a dispatcher draining in into fn.
func NewDispatcher(in *Inbox, fn func(*types.Event), cfg DispatcherConfig) *Dispatcher {
	if cfg.MaxRun <= 0 {
		cfg.MaxRun = DefaultDispatchRun
	}
	d := &Dispatcher{
		in:     in,
		fn:     fn,
		onFail: cfg.OnFail,
		maxRun: cfg.MaxRun,
		done:   make(chan struct{}),
	}
	go d.run()
	return d
}

// NewBatchDispatcher starts a dispatcher draining in into fn one RUN at a
// time: every PopBatch drain (up to MaxRun events, in commit order) is
// handed to fn as a single invocation, which is what lets a batch-aware
// consumer (a batchable automaton behaviour) amortise its activation cost
// over the run. fn must not retain the slice after returning — the
// dispatcher reuses its backing array for the next drain. Stop semantics
// are per run: a run whose callback has started is finished, queued runs
// are discarded, and fn never runs after Stop returns.
func NewBatchDispatcher(in *Inbox, fn func([]*types.Event), cfg DispatcherConfig) *Dispatcher {
	if cfg.MaxRun <= 0 {
		cfg.MaxRun = DefaultDispatchRun
	}
	d := &Dispatcher{
		in:     in,
		bfn:    fn,
		onFail: cfg.OnFail,
		maxRun: cfg.MaxRun,
		done:   make(chan struct{}),
	}
	go d.run()
	return d
}

func (d *Dispatcher) run() {
	defer close(d.done)
	var buf []*types.Event
	for {
		batch, ok := d.in.PopBatch(d.maxRun, buf)
		if !ok {
			if d.in.Failed() && !d.stop.Load() && d.onFail != nil {
				// On a fresh goroutine: OnFail may call Stop, which waits
				// for this goroutine to exit.
				go d.onFail()
			}
			return
		}
		if d.bfn != nil {
			if d.stop.Load() {
				// The abandoned run still counts as handled: Busy must
				// not report a stopped dispatcher as forever in flight.
				d.processed.Add(uint64(len(batch)))
				releaseRun(batch)
				return
			}
			d.bfn(batch)
			d.processed.Add(uint64(len(batch)))
			releaseRun(batch)
			buf = batch
			continue
		}
		for i, ev := range batch {
			if d.stop.Load() {
				// The abandoned remainder still counts as handled: Busy
				// must not report a stopped dispatcher as forever in
				// flight.
				d.processed.Add(uint64(len(batch) - i))
				releaseRun(batch[i:])
				return
			}
			d.fn(ev)
			ev.Release()
			d.processed.Add(1)
		}
		buf = batch
	}
}

// releaseRun drops the dispatcher's reference on every event of a drained
// run — after the consumer callback returned, or for runs abandoned by Stop.
// No-op per event unless the event is pool-managed. This is the "dispatch
// completion" release point of the pooled event lifecycle: consumer
// callbacks must not retain a pooled event past their return (Clone or
// Retain it to keep it).
func releaseRun(batch []*types.Event) {
	for _, ev := range batch {
		ev.Release()
	}
}

// Inbox returns the inbox this dispatcher drains (subscribe it to topics).
func (d *Dispatcher) Inbox() *Inbox { return d.in }

// Busy reports whether the dispatcher holds popped-but-undelivered events.
// Idle consumers satisfy Depth() == 0 && !Busy(), with no false idle: the
// inbox's consumed count advances atomically with the pop, so an event can
// never be between the queue and the callback while both Depth and Busy
// read quiescent. (A stale read can report a false BUSY, which idle
// pollers absorb by retrying.)
func (d *Dispatcher) Busy() bool { return d.in.Consumed() != d.processed.Load() }

// Depth returns the number of queued, not-yet-dispatched events.
func (d *Dispatcher) Depth() int { return d.in.Len() }

// Dropped returns the inbox's dropped-event count (DropOldest evictions or
// a Fail overflow).
func (d *Dispatcher) Dropped() uint64 { return d.in.Dropped() }

// Stop closes the inbox, discards queued-but-undelivered events, and waits
// for the drain goroutine to exit. The callback is never invoked after
// Stop returns: an in-flight invocation is waited for, the rest of its run
// is abandoned. Closing the inbox first also unparks any Block-policy
// pusher before the wait, so Stop never deadlocks against a publisher
// holding a topic lock. Stop is idempotent, but must not be called from
// the callback itself — and a caller must not hold a resource the
// in-flight callback may be blocked on; either cycle deadlocks the wait.
func (d *Dispatcher) Stop() {
	d.stop.Store(true)
	d.in.Close()
	<-d.done
	// The drain goroutine is gone; anything still queued in the closed inbox
	// would otherwise hold its pooled reference forever. Drain and release
	// (no new elements can arrive: the inbox rejects pushes once closed).
	for {
		batch, ok := d.in.PopBatch(0, nil)
		if !ok {
			return
		}
		// Count the discarded leftovers as handled so Busy stays accurate
		// for anything still polling a stopped dispatcher.
		d.processed.Add(uint64(len(batch)))
		releaseRun(batch)
	}
}
